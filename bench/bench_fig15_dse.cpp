/**
 * @file
 * Figure 15 reproduction: full design space exploration for 4096-MAC
 * multichip accelerators over the table II memory grid, under a
 * 3 mm^2 chiplet-area constraint, for three benchmarks.  The paper
 * finds 5800 valid points out of >100k sweeps, the optimum always at
 * the 2-8-16-16 computation allocation, and model-dependent memory
 * allocations.
 *
 * This harness prints the energy/runtime scatter summarised per
 * chiplet count (the figure's colour classes) plus the optimum design
 * per model, then times the same sweep serially and with the parallel
 * engine, verifies the two produce bit-identical results, and writes
 * the timings and search counters to BENCH_dse.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "baton/baton.hpp"
#include "c3p/incremental.hpp"
#include "mapper/candidates.hpp"
#include "mapper/search.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/profile.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "common/util.hpp"

using namespace nnbaton;

namespace {

DseOptions
figureOptions()
{
    DseOptions opt;
    opt.totalMacs = 4096;
    opt.areaLimitMm2 = 3.0;
    opt.effort = SearchEffort::Sketch;
    opt.objective = Objective::MinEdp;
    return opt;
}

void
printModel(const Model &model, int threads)
{
    std::printf("\n--- model %s @%d ---\n", model.name().c_str(),
                model.inputResolution());
    DseOptions opt = figureOptions();
    opt.threads = threads;
    const DseResult r = explore(model, opt, defaultTech());
    std::printf("sweep: %lld combos, %zu valid, %lld over area, %lld "
                "infeasible (%.2f s)\n",
                static_cast<long long>(r.swept), r.points.size(),
                static_cast<long long>(r.areaRejected),
                static_cast<long long>(r.infeasible),
                r.elapsedSeconds);
    std::printf("search: %lld evaluated, %lld pruned, %lld cache hits "
                "/ %lld misses (%lld entries)\n",
                static_cast<long long>(r.search.evaluated),
                static_cast<long long>(r.search.pruned),
                static_cast<long long>(r.search.cacheHits),
                static_cast<long long>(r.search.cacheMisses),
                static_cast<long long>(r.cacheEntries));

    // The figure's colour classes: summarise the valid cloud per N_P.
    struct Class
    {
        int n = 0;
        double best_energy = 1e300;
        double best_runtime = 1e300;
    };
    std::map<int, Class> classes;
    for (const auto &p : r.points) {
        Class &c = classes[p.compute.chiplets];
        ++c.n;
        c.best_energy = std::min(c.best_energy, p.cost.energyMj());
        c.best_runtime = std::min(c.best_runtime, p.runtimeMs());
    }
    TextTable t({"chiplets", "valid points", "best energy mJ",
                 "best runtime ms"});
    for (const auto &[np, c] : classes) {
        t.newRow()
            .add(static_cast<int64_t>(np))
            .add(static_cast<int64_t>(c.n))
            .add(c.best_energy, 3)
            .add(c.best_runtime, 3);
    }
    t.print(std::cout);

    if (auto best = r.bestEdp()) {
        std::printf("optimum (min EDP) under 3 mm^2: %s\n",
                    r.points[*best].toString().c_str());
    }
}

void
printFigure(int threads)
{
    std::printf("=== Figure 15: 4096-MAC design space exploration "
                "(table II grid, 3 mm^2 limit) ===\n");
    printModel(makeVgg16(512), threads);
    printModel(makeResNet50(512), threads);
    printModel(makeDarkNet19(224), threads);
    std::printf(
        "\nexpected shape: designs with fewer chiplets trade area for "
        "lower EDP (layered point clouds); the optimal computation "
        "allocation under the constraint is stable across models "
        "while the recommended memory allocation is model-dependent "
        "(larger A-L1 for 512-input models, smaller W-L1 for "
        "DarkNet@224) (paper section VI-B.2).\n\n");
}

/** Same sweep classification and bit-identical design points.  This
 *  is what every search mode that promises exhaustive-equivalent
 *  winners must preserve; work counters are checked separately. */
bool
samePoints(const DseResult &a, const DseResult &b)
{
    if (a.swept != b.swept || a.areaRejected != b.areaRejected ||
        a.infeasible != b.infeasible ||
        a.points.size() != b.points.size())
        return false;
    for (size_t i = 0; i < a.points.size(); ++i) {
        const DesignPoint &p = a.points[i];
        const DesignPoint &q = b.points[i];
        if (p.compute.chiplets != q.compute.chiplets ||
            p.compute.cores != q.compute.cores ||
            p.compute.lanes != q.compute.lanes ||
            p.compute.vectorSize != q.compute.vectorSize ||
            p.memory.ol1Bytes != q.memory.ol1Bytes ||
            p.memory.al1Bytes != q.memory.al1Bytes ||
            p.memory.wl1Bytes != q.memory.wl1Bytes ||
            p.memory.al2Bytes != q.memory.al2Bytes)
            return false;
        // Bit-identical scores, not approximately equal.
        if (p.cost.energy.total() != q.cost.energy.total() ||
            p.edp() != q.edp())
            return false;
    }
    return true;
}

/** Everything the engine promises to keep thread-count independent. */
bool
identicalResults(const DseResult &a, const DseResult &b)
{
    return samePoints(a, b) &&
           a.search.evaluated == b.search.evaluated &&
           a.search.pruned == b.search.pruned &&
           a.search.cacheHits == b.search.cacheHits &&
           a.search.cacheMisses == b.search.cacheMisses;
}

double
pointsPerSecond(const DseResult &r)
{
    return r.elapsedSeconds > 0.0
               ? static_cast<double>(r.swept) / r.elapsedSeconds
               : 0.0;
}

/** One search mode's entry in the BENCH_dse.json "modes" block. */
void
writeModeEntry(JsonWriter &j, const char *name, const DseResult &r)
{
    j.key(name).beginObject();
    j.field("seconds", r.elapsedSeconds);
    j.field("points_per_sec", pointsPerSecond(r));
    j.field("evaluated", r.search.evaluated);
    j.field("pruned", r.search.pruned);
    j.field("nodes_opened", r.search.nodesOpened);
    j.field("subtrees_pruned", r.search.subtreesPruned);
    j.field("incumbent_updates", r.search.incumbentUpdates);
    j.field("refined", r.search.refined);
    j.field("refined_pruned", r.search.refinedPruned);
    j.endObject();
}

/** Timings and reuse counters of the incremental-evaluation
 *  micro-benchmark (the BENCH_dse.json "incremental" block). */
struct IncrementalBench
{
    int64_t candidates = 0;
    double fullSeconds = 0.0;
    double incrementalSeconds = 0.0;
    double deltaHitRatio = 0.0;
    double fallbackRatio = 0.0;
    double nestReuseRatio = 0.0;
    bool winnersIdentical = true;

    double speedup() const
    {
        return incrementalSeconds > 0.0
                   ? fullSeconds / incrementalSeconds
                   : 0.0;
    }
};

/**
 * The incremental evaluator against the full path on the exact
 * candidate streams the serial sweep evaluates: every Sketch-effort
 * candidate of every unique DarkNet@224 layer on the figure's optimal
 * configuration, in enumeration order.  Both paths must pick the same
 * winner per layer with a bit-identical score — the speedup is only
 * worth reporting if the answers cannot drift.
 */
IncrementalBench
benchIncremental()
{
    const Model model = makeDarkNet19(224);
    const AcceleratorConfig cfg =
        makeConfig({2, 8, 16, 16},
                   MemoryAllocation{96, 32_KB, 144_KB, 128_KB});
    const TechnologyModel &tech = defaultTech();
    constexpr int kReps = 5;

    IncrementalBench r;
    IncrementalStats totals;
    CandidateBlock block;
    for (const ConvLayer &layer : model.layers()) {
        enumerateCandidatesInto(layer, cfg, SearchEffort::Sketch,
                                block);
        if (block.empty())
            continue;
        r.candidates += static_cast<int64_t>(block.size()) * kReps;

        double best_full = 0.0, best_inc = 0.0;
        size_t win_full = 0, win_inc = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < kReps; ++rep) {
            for (size_t i = 0; i < block.size(); ++i) {
                const MappingChoice c = evaluateMapping(
                    layer, cfg, tech, block.mapping(i));
                const double edp = c.edp();
                benchmark::DoNotOptimize(edp);
                if (i == 0 || edp < best_full) {
                    best_full = edp;
                    win_full = i;
                }
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        MappingChoice c;
        for (int rep = 0; rep < kReps; ++rep) {
            IncrementalAnalyzer inc(layer, cfg);
            for (size_t i = 0; i < block.size(); ++i) {
                evaluateMappingIncrementalInto(layer, cfg, tech,
                                               block.mapping(i), inc, c);
                const double edp = c.edp();
                benchmark::DoNotOptimize(edp);
                if (i == 0 || edp < best_inc) {
                    best_inc = edp;
                    win_inc = i;
                }
            }
            if (rep == 0) {
                totals += inc.stats();
            }
        }
        const auto t2 = std::chrono::steady_clock::now();
        r.fullSeconds +=
            std::chrono::duration<double>(t1 - t0).count();
        r.incrementalSeconds +=
            std::chrono::duration<double>(t2 - t1).count();
        // Bit-identical winner per layer: same index, same score.
        if (win_full != win_inc || best_full != best_inc)
            r.winnersIdentical = false;
    }
    r.deltaHitRatio = totals.deltaHitRatio();
    r.fallbackRatio = totals.fallbackRatio();
    const int64_t terms = totals.nestReuses + totals.nestScans;
    r.nestReuseRatio =
        terms > 0 ? static_cast<double>(totals.nestReuses) / terms
                  : 0.0;
    return r;
}

/**
 * Serial-vs-parallel timing on the DarkNet@224 sweep (the smallest of
 * the three), with the determinism cross-check the parallel engine
 * guarantees.  Writes BENCH_dse.json for machine consumption.
 */
void
benchSweep(int threads)
{
    const Model model = makeDarkNet19(224);
    DseOptions opt = figureOptions();

    // The incremental-vs-full micro-benchmark runs first: its passes
    // are tens of milliseconds, so measuring them after minutes of
    // all-core sweeps would fold whatever load the machine has
    // accumulated by then into a 300 ns/candidate signal.  Both of its
    // passes still share identical conditions.
    const IncrementalBench inc = benchIncremental();

    // The timed serial and parallel sweeps run with tracing disabled
    // (its cost there is one relaxed load per span site), keeping the
    // numbers comparable across revisions.  A third, traced parallel
    // sweep supplies the per-phase breakdown for BENCH_dse.json and
    // measures the tracing-enabled overhead.
    opt.threads = 1;
    const DseResult serial = explore(model, opt, defaultTech());
    opt.threads = threads;
    const DseResult parallel = explore(model, opt, defaultTech());

    const size_t spansBefore = obs::snapshotTrace().size();
    obs::setTracingEnabled(true);
    const DseResult traced = explore(model, opt, defaultTech());
    obs::setTracingEnabled(false);
    std::vector<obs::TraceEvent> spans = obs::snapshotTrace();
    spans.erase(spans.begin(),
                spans.begin() + static_cast<int64_t>(std::min(
                                    spansBefore, spans.size())));
    const obs::ProfileReport profile = obs::buildProfile(spans);

    // Search-mode shoot-out on the same sweep, both serial so the
    // points/sec ratio isolates the search strategy itself.  The
    // branch-and-bound mode must reproduce the exhaustive winners
    // bit-for-bit while doing far fewer full C3P evaluations.
    opt.threads = 1;
    opt.searchMode = SearchMode::Bnb;
    const DseResult bnb = explore(model, opt, defaultTech());
    opt.searchMode = SearchMode::Exhaustive;
    const bool modes_identical = samePoints(serial, bnb);
    const double eval_ratio =
        bnb.search.evaluated > 0
            ? static_cast<double>(serial.search.evaluated) /
                  static_cast<double>(bnb.search.evaluated)
            : 0.0;
    const double pps_ratio =
        pointsPerSecond(serial) > 0.0
            ? pointsPerSecond(bnb) / pointsPerSecond(serial)
            : 0.0;

    const bool identical = identicalResults(serial, parallel) &&
                           identicalResults(parallel, traced);
    const double speedup =
        parallel.elapsedSeconds > 0.0
            ? serial.elapsedSeconds / parallel.elapsedSeconds
            : 0.0;
    const double trace_overhead =
        parallel.elapsedSeconds > 0.0
            ? traced.elapsedSeconds / parallel.elapsedSeconds - 1.0
            : 0.0;

    std::printf("=== DSE sweep engine: serial vs %d threads "
                "(darknet19@224) ===\n",
                threads);
    std::printf("serial:   %.2f s\n", serial.elapsedSeconds);
    std::printf("parallel: %.2f s  (speedup %.2fx)\n",
                parallel.elapsedSeconds, speedup);
    std::printf("traced:   %.2f s  (tracing overhead %+.1f%%)\n",
                traced.elapsedSeconds, 100.0 * trace_overhead);
    std::printf("results bit-identical: %s\n",
                identical ? "yes" : "NO (BUG)");
    std::printf("\n=== search modes: exhaustive vs branch-and-bound "
                "(serial) ===\n");
    std::printf("exhaustive: %.2f s, %.0f points/s, %lld evaluated\n",
                serial.elapsedSeconds, pointsPerSecond(serial),
                static_cast<long long>(serial.search.evaluated));
    std::printf("bnb:        %.2f s, %.0f points/s, %lld evaluated "
                "(%lld nodes, %lld subtrees pruned)\n",
                bnb.elapsedSeconds, pointsPerSecond(bnb),
                static_cast<long long>(bnb.search.evaluated),
                static_cast<long long>(bnb.search.nodesOpened),
                static_cast<long long>(bnb.search.subtreesPruned));
    std::printf("evaluation ratio: %.1fx fewer, points/sec ratio: "
                "%.2fx, winners identical: %s\n",
                eval_ratio, pps_ratio,
                modes_identical ? "yes" : "NO (BUG)");

    // Incremental evaluator vs the full path on the same candidate
    // streams (both serial, same enumeration order; measured up top
    // before the sweeps).
    const double inc_pps_full =
        inc.fullSeconds > 0.0
            ? static_cast<double>(inc.candidates) / inc.fullSeconds
            : 0.0;
    const double inc_pps =
        inc.incrementalSeconds > 0.0
            ? static_cast<double>(inc.candidates) /
                  inc.incrementalSeconds
            : 0.0;
    std::printf("\n=== incremental C3P evaluation vs full (serial, "
                "same candidate stream) ===\n");
    std::printf("full:        %.3f s, %.0f points/s (%lld "
                "candidates)\n",
                inc.fullSeconds, inc_pps_full,
                static_cast<long long>(inc.candidates));
    std::printf("incremental: %.3f s, %.0f points/s (speedup "
                "%.2fx)\n",
                inc.incrementalSeconds, inc_pps, inc.speedup());
    std::printf("delta hits %.1f%%, fallbacks %.1f%%, nest reuse "
                "%.1f%%, winners identical: %s\n",
                100.0 * inc.deltaHitRatio, 100.0 * inc.fallbackRatio,
                100.0 * inc.nestReuseRatio,
                inc.winnersIdentical ? "yes" : "NO (BUG)");
    std::printf("%s", obs::formatProfile(profile).c_str());

    std::ofstream out("BENCH_dse.json");
    JsonWriter j(out);
    j.beginObject();
    j.field("model", model.name());
    j.field("resolution", model.inputResolution());
    j.field("threads", threads);
    j.field("hardware_threads", hardwareThreads());
    j.field("serial_seconds", serial.elapsedSeconds);
    j.field("parallel_seconds", parallel.elapsedSeconds);
    j.field("speedup", speedup);
    j.field("traced_seconds", traced.elapsedSeconds);
    j.field("trace_overhead", trace_overhead);
    j.field("identical", identical);
    j.key("sweep").beginObject();
    j.field("swept", serial.swept);
    j.field("valid", static_cast<int64_t>(serial.points.size()));
    j.field("area_rejected", serial.areaRejected);
    j.field("infeasible", serial.infeasible);
    j.endObject();
    j.key("search").beginObject();
    j.field("evaluated", serial.search.evaluated);
    j.field("pruned", serial.search.pruned);
    j.field("cache_hits", serial.search.cacheHits);
    j.field("cache_misses", serial.search.cacheMisses);
    j.field("cache_entries", serial.cacheEntries);
    j.endObject();
    j.key("modes").beginObject();
    writeModeEntry(j, "exhaustive", serial);
    writeModeEntry(j, "bnb", bnb);
    j.field("winners_identical", modes_identical);
    j.field("eval_ratio", eval_ratio);
    j.field("points_per_sec_ratio", pps_ratio);
    j.endObject();
    j.key("incremental").beginObject();
    j.field("candidates", inc.candidates);
    j.field("full_seconds", inc.fullSeconds);
    j.field("incremental_seconds", inc.incrementalSeconds);
    j.field("points_per_sec_full", inc_pps_full);
    j.field("points_per_sec_incremental", inc_pps);
    j.field("speedup", inc.speedup());
    j.field("delta_hit_ratio", inc.deltaHitRatio);
    j.field("fallback_ratio", inc.fallbackRatio);
    j.field("nest_reuse_ratio", inc.nestReuseRatio);
    j.field("winners_identical", inc.winnersIdentical);
    j.endObject();
    j.key("profile");
    obs::writeProfileJson(j, profile);
    j.endObject();
    out << "\n";
    std::printf("wrote BENCH_dse.json\n\n");
}

void
BM_Fig15SingleConfig(benchmark::State &state)
{
    const Model model = makeDarkNet19(224);
    const AcceleratorConfig cfg =
        makeConfig({2, 8, 16, 16},
                   MemoryAllocation{96, 32_KB, 144_KB, 128_KB});
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapModel(model, cfg, defaultTech(),
                                          SearchEffort::Fast));
    }
}
BENCHMARK(BM_Fig15SingleConfig)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // --sweep-only: just the timed sweeps + BENCH_dse.json (the CI
    // mode-block check), skipping the figure tables and gbench runs.
    bool sweep_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--sweep-only")
            sweep_only = true;
    }
    const int threads = std::max(4, hardwareThreads());
    if (!sweep_only)
        printFigure(threads);
    benchSweep(threads);
    if (sweep_only)
        return 0;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
