/**
 * @file
 * Figure 15 reproduction: full design space exploration for 4096-MAC
 * multichip accelerators over the table II memory grid, under a
 * 3 mm^2 chiplet-area constraint, for three benchmarks.  The paper
 * finds 5800 valid points out of >100k sweeps, the optimum always at
 * the 2-8-16-16 computation allocation, and model-dependent memory
 * allocations.
 *
 * This harness prints the energy/runtime scatter summarised per
 * chiplet count (the figure's colour classes) plus the optimum design
 * per model.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>

#include "baton/baton.hpp"
#include "common/table.hpp"
#include "common/util.hpp"

using namespace nnbaton;

namespace {

void
printModel(const Model &model)
{
    std::printf("\n--- model %s @%d ---\n", model.name().c_str(),
                model.inputResolution());
    DseOptions opt;
    opt.totalMacs = 4096;
    opt.areaLimitMm2 = 3.0;
    opt.effort = SearchEffort::Sketch;
    opt.objective = Objective::MinEdp;
    const DseResult r = explore(model, opt, defaultTech());
    std::printf("sweep: %lld combos, %zu valid, %lld over area, %lld "
                "infeasible\n",
                static_cast<long long>(r.swept), r.points.size(),
                static_cast<long long>(r.areaRejected),
                static_cast<long long>(r.infeasible));

    // The figure's colour classes: summarise the valid cloud per N_P.
    struct Class
    {
        int n = 0;
        double best_energy = 1e300;
        double best_runtime = 1e300;
    };
    std::map<int, Class> classes;
    for (const auto &p : r.points) {
        Class &c = classes[p.compute.chiplets];
        ++c.n;
        c.best_energy = std::min(c.best_energy, p.cost.energyMj());
        c.best_runtime = std::min(c.best_runtime,
                                  p.cost.runtimeMs(0.5));
    }
    TextTable t({"chiplets", "valid points", "best energy mJ",
                 "best runtime ms"});
    for (const auto &[np, c] : classes) {
        t.newRow()
            .add(static_cast<int64_t>(np))
            .add(static_cast<int64_t>(c.n))
            .add(c.best_energy, 3)
            .add(c.best_runtime, 3);
    }
    t.print(std::cout);

    if (auto best = r.bestEdp()) {
        std::printf("optimum (min EDP) under 3 mm^2: %s\n",
                    r.points[*best].toString().c_str());
    }
}

void
printFigure()
{
    std::printf("=== Figure 15: 4096-MAC design space exploration "
                "(table II grid, 3 mm^2 limit) ===\n");
    printModel(makeVgg16(512));
    printModel(makeResNet50(512));
    printModel(makeDarkNet19(224));
    std::printf(
        "\nexpected shape: designs with fewer chiplets trade area for "
        "lower EDP (layered point clouds); the optimal computation "
        "allocation under the constraint is stable across models "
        "while the recommended memory allocation is model-dependent "
        "(larger A-L1 for 512-input models, smaller W-L1 for "
        "DarkNet@224) (paper section VI-B.2).\n\n");
}

void
BM_Fig15SingleConfig(benchmark::State &state)
{
    const Model model = makeDarkNet19(224);
    const AcceleratorConfig cfg =
        makeConfig({2, 8, 16, 16},
                   MemoryAllocation{96, 32_KB, 144_KB, 128_KB});
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapModel(model, cfg, defaultTech(),
                                          SearchEffort::Fast));
    }
}
BENCHMARK(BM_Fig15SingleConfig)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
