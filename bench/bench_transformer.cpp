/**
 * @file
 * Transformer workload benchmark: BERT-base (sequence 128) and
 * ViT-B/16 (224x224) mapped end to end on the paper's case-study
 * hardware.  Prints the per-model table (energy with its vector-ALU
 * share, runtime, search counters), cross-checks the exhaustive and
 * branch-and-bound winners on every distinct encoder shape, and
 * writes BENCH_transformer.json for machine consumption (the CI
 * assert step mirrors the BENCH_dse.json pattern).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hpp"
#include "common/table.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

namespace {

double
seconds(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - from)
        .count();
}

struct ModelRun
{
    std::string name;
    int batch = 1;
    ModelMappingResult result;
    double elapsed = 0.0;
};

ModelRun
runModel(const Model &model, int batch)
{
    Model scaled = model;
    if (batch > 1)
        scaled.scaleBatch(batch);
    const auto start = std::chrono::steady_clock::now();
    ModelRun run;
    run.result = mapModel(scaled, caseStudyConfig(), defaultTech(),
                          SearchEffort::Fast);
    run.elapsed = seconds(start);
    run.name = model.name();
    run.batch = batch;
    return run;
}

/**
 * Exhaustive-vs-bnb shoot-out over the distinct shapes of one BERT
 * encoder: the bound must stay sound on batched GEMMs with a
 * mapping-independent vector-energy term, so the winners have to
 * match bit for bit.
 */
bool
checkSearchModes(int64_t *exhaustive_evaluated, int64_t *bnb_evaluated)
{
    const Model bert = makeBertBase(128);
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    bool identical = true;
    *exhaustive_evaluated = 0;
    *bnb_evaluated = 0;
    for (const char *suffix : {"_attn_qkv", "_attn_scores", "_attn_ctx",
                               "_attn_proj", "_ffn1", "_ffn2"}) {
        const ConvLayer &layer =
            bert.layer("enc1" + std::string(suffix));
        SearchOptions ex_opt;
        SearchStats ex_stats;
        const auto ex =
            searchLayer(layer, cfg, tech, SearchEffort::Fast,
                        Objective::MinEnergy, ex_opt, &ex_stats);
        SearchOptions bnb_opt;
        bnb_opt.mode = SearchMode::Bnb;
        SearchStats bnb_stats;
        const auto bnb =
            searchLayer(layer, cfg, tech, SearchEffort::Fast,
                        Objective::MinEnergy, bnb_opt, &bnb_stats);
        *exhaustive_evaluated += ex_stats.evaluated;
        *bnb_evaluated += bnb_stats.evaluated;
        identical = identical && ex.has_value() && bnb.has_value() &&
                    ex->mapping.toString() == bnb->mapping.toString() &&
                    ex->energy.total() == bnb->energy.total();
    }
    return identical;
}

void
writeModelEntry(JsonWriter &j, const ModelRun &run)
{
    const ModelMappingResult &r = run.result;
    j.beginObject();
    j.field("batch", run.batch);
    j.field("feasible", r.feasible);
    j.field("layers", static_cast<int64_t>(r.choices.size()));
    j.field("seconds", run.elapsed);
    j.field("energy_mj", r.cost.energy.total() * 1e-9);
    j.field("vector_energy_mj", r.cost.energy.vector * 1e-9);
    j.field("cycles", r.cost.cycles);
    j.field("evaluated", r.stats.evaluated);
    j.field("pruned", r.stats.pruned);
    j.field("cache_hits", r.stats.cacheHits);
    j.field("cache_misses", r.stats.cacheMisses);
    j.endObject();
}

void
benchTransformers()
{
    std::printf("=== Transformer workloads on the case-study package "
                "===\n\n");
    TextTable t({"model", "batch", "layers", "energy mJ", "vector mJ",
                 "cycles", "map s", "cache hits"});
    std::vector<ModelRun> runs;
    for (int batch : {1, 4}) {
        runs.push_back(runModel(makeBertBase(128), batch));
        runs.push_back(runModel(makeVitB16(224), batch));
    }
    for (const ModelRun &run : runs) {
        const ModelMappingResult &r = run.result;
        t.newRow()
            .add(run.name)
            .add(static_cast<int64_t>(run.batch))
            .add(static_cast<int64_t>(r.choices.size()))
            .add(r.cost.energy.total() * 1e-9, 3)
            .add(r.cost.energy.vector * 1e-9, 4)
            .add(r.cost.cycles)
            .add(run.elapsed, 3)
            .add(r.stats.cacheHits);
    }
    t.print(std::cout);
    std::printf("\nexpected shape: the vector term is a small, "
                "nonzero slice (softmax only), weight-bound FFN "
                "GEMMs dominate energy, and the 12 identical "
                "encoders turn into cache hits.\n");

    int64_t ex_evals = 0;
    int64_t bnb_evals = 0;
    const bool identical = checkSearchModes(&ex_evals, &bnb_evals);
    std::printf("\nencoder search modes: exhaustive %lld vs bnb %lld "
                "evaluations, winners identical: %s\n\n",
                static_cast<long long>(ex_evals),
                static_cast<long long>(bnb_evals),
                identical ? "yes" : "NO (BUG)");

    std::ofstream out("BENCH_transformer.json");
    JsonWriter j(out);
    j.beginObject();
    j.key("models").beginObject();
    for (const ModelRun &run : runs) {
        j.key(run.name + (run.batch > 1
                              ? "@b" + std::to_string(run.batch)
                              : std::string()));
        writeModelEntry(j, run);
    }
    j.endObject();
    j.key("search_modes").beginObject();
    j.field("exhaustive_evaluated", ex_evals);
    j.field("bnb_evaluated", bnb_evals);
    j.field("winners_identical", identical);
    j.endObject();
    j.endObject();
    out << "\n";
    std::printf("wrote BENCH_transformer.json\n\n");
}

void
BM_MapBertBase128(benchmark::State &state)
{
    const Model model = makeBertBase(128);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapModel(model, caseStudyConfig(),
                                          defaultTech(),
                                          SearchEffort::Fast));
    }
}
BENCHMARK(BM_MapBertBase128)->Unit(benchmark::kMillisecond);

void
BM_MapVitB16(benchmark::State &state)
{
    const Model model = makeVitB16(224);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapModel(model, caseStudyConfig(),
                                          defaultTech(),
                                          SearchEffort::Fast));
    }
}
BENCHMARK(BM_MapVitB16)->Unit(benchmark::kMillisecond);

void
BM_SearchAttentionScores(benchmark::State &state)
{
    // The head-folded softmax GEMM: batch 12, postops 3.
    const Model bert = makeBertBase(128);
    const ConvLayer layer = bert.layer("enc1_attn_scores");
    for (auto _ : state) {
        benchmark::DoNotOptimize(searchLayer(layer, caseStudyConfig(),
                                             defaultTech(),
                                             SearchEffort::Fast));
    }
}
BENCHMARK(BM_SearchAttentionScores)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // --models-only: the table + BENCH_transformer.json without the
    // google-benchmark timing loops (the CI assert step).
    bool models_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--models-only")
            models_only = true;
    }
    benchTransformers();
    if (models_only)
        return 0;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
