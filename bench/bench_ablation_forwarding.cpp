/**
 * @file
 * Extension study: inter-layer on-chip forwarding (fusion-lite, see
 * baton/forwarding.hpp).  For each sequential zoo model, report how
 * many layer boundaries can skip the DRAM round trip given the
 * case-study hardware, and the resulting model-level energy saving on
 * top of the optimal per-layer mappings.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "baton/forwarding.hpp"
#include "common/table.hpp"

using namespace nnbaton;

namespace {

void
printStudy()
{
    const AcceleratorConfig cfg = caseStudyConfig();
    std::printf("=== Extension: inter-layer on-chip forwarding "
                "(sequential models, case-study hardware) ===\n\n");
    TextTable t({"model", "input", "boundaries", "forwardable",
                 "baseline mJ", "forwarded mJ", "extra savings %"});
    for (int resolution : {224, 512}) {
        for (const Model &model :
             {makeVgg16(resolution), makeDarkNet19(resolution)}) {
            PostDesignFlow flow(cfg, defaultTech(),
                                SearchEffort::Fast);
            const PostDesignReport report = flow.run(model);
            const ForwardingReport f =
                analyzeForwarding(model, report);
            t.newRow()
                .add(model.name())
                .add(static_cast<int64_t>(resolution))
                .add(static_cast<int64_t>(f.boundaries.size()))
                .add(static_cast<int64_t>(f.forwardedCount()))
                .add(f.baselineEnergyPj * 1e-9, 3)
                .add(f.forwardedEnergyPj * 1e-9, 3)
                .add(100.0 * f.savings(), 1);
        }
    }
    t.print(std::cout);
    std::printf(
        "\nforwardable boundaries are those whose tensor fits the "
        "package's combined A-L2 and whose consumer reads exactly the "
        "producer's output; early large-plane boundaries at 512x512 "
        "stay on DRAM.  This is an extension beyond the paper's "
        "layer-wise flow (Tangram-style cross-layer dataflow).\n\n");
}

void
BM_ForwardingAnalysis(benchmark::State &state)
{
    const Model model = makeDarkNet19(224);
    PostDesignFlow flow(caseStudyConfig(), defaultTech(),
                        SearchEffort::Fast);
    const PostDesignReport report = flow.run(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzeForwarding(model, report));
    }
}
BENCHMARK(BM_ForwardingAnalysis);

} // namespace

int
main(int argc, char **argv)
{
    printStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
