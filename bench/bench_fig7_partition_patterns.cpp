/**
 * @file
 * Figure 7 reproduction: redundant memory access of 1:4 and 1:1
 * planar partition patterns in two convolution layers (ResNet-50
 * conv1, 7x7/s2, and a VGG-16 3x3/s1 layer) at 512x512 input
 * resolution, as a function of the number of tiles.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "dataflow/partition.hpp"
#include "nn/model.hpp"

using namespace nnbaton;

namespace {

/** A near-square split with fh:fw ~ 1:1 covering @p parts tiles. */
PlanarSplit
squareSplit(int parts)
{
    int fh = static_cast<int>(std::sqrt(static_cast<double>(parts)));
    while (parts % fh != 0)
        --fh;
    return {fh, parts / fh};
}

/** Clamp a split to the plane (at most one tile per output pixel). */
PlanarSplit
clampSplit(PlanarSplit s, int ho, int wo)
{
    return {std::min(s.fh, ho), std::min(s.fw, wo)};
}

/** A stretched split with fh:fw ~ 1:4. */
PlanarSplit
rectSplit(int parts)
{
    int fh = static_cast<int>(std::sqrt(static_cast<double>(parts) / 4));
    fh = std::max(fh, 1);
    while (parts % fh != 0)
        --fh;
    return {fh, parts / fh};
}

void
printFigure()
{
    const Model resnet = makeResNet50(512);
    const Model vgg = makeVgg16(512);
    const ConvLayer layers[] = {resnet.layer("conv1"),
                                vgg.layer("conv3")};

    std::printf("=== Figure 7: redundant memory access vs planar "
                "partition pattern (512x512 input) ===\n");
    for (const ConvLayer &l : layers) {
        std::printf("\nlayer %s (k %dx%d, s %d, plane %dx%d)\n",
                    l.name.c_str(), l.kh, l.kw, l.stride, l.ho, l.wo);
        TextTable t({"#tiles", "1:1 split", "1:1 extra %", "1:4 split",
                     "1:4 extra %"});
        for (int parts : {4, 16, 64, 256, 1024, 4096, 16384}) {
            const PlanarSplit sq =
                clampSplit(squareSplit(parts), l.ho, l.wo);
            const PlanarSplit re =
                clampSplit(rectSplit(parts), l.ho, l.wo);
            t.newRow()
                .add(static_cast<int64_t>(parts))
                .add(sq.toString())
                .add(100.0 *
                         haloRedundancy(l.ho, l.wo, sq, l.kh, l.kw,
                                        l.stride),
                     1)
                .add(re.toString())
                .add(100.0 *
                         haloRedundancy(l.ho, l.wo, re, l.kh, l.kw,
                                        l.stride),
                     1);
        }
        t.print(std::cout);
    }
    std::printf(
        "\nexpected shape: square (1:1) <= rectangle (1:4); the gap "
        "narrows as tiles grow larger; the 7x7/s2 layer shows far "
        "higher redundancy (paper: up to ~650%%).\n\n");
}

void
BM_TiledInputPlane(benchmark::State &state)
{
    const int parts = static_cast<int>(state.range(0));
    const PlanarSplit sq = squareSplit(parts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tiledInputPlane(256, 256, sq, 7, 7, 2));
    }
}
BENCHMARK(BM_TiledInputPlane)->Arg(16)->Arg(256)->Arg(4096);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
