/**
 * @file
 * Table I reproduction: energy overhead and relative cost of typical
 * operations in the 16 nm multichip system, regenerated from the
 * technology model.  The google-benchmark suite times the energy
 * aggregation path the table feeds.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "cost/energy.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

namespace {

void
printTable()
{
    std::printf("=== Table I: energy of typical operations (16 nm "
                "multichip system) ===\n");
    std::printf("%s\n", defaultTech().tableOneString().c_str());
    std::printf("note: relative costs are recomputed from the anchors; "
                "the paper's D2D row prints 53.75x for 1.17 pJ/bit / "
                "0.024 pJ/op (= 48.75x recomputed).\n\n");
}

void
BM_ComputeEnergy(benchmark::State &state)
{
    AccessCounts c;
    c.dramReadActBits = 103456789;
    c.dramReadWeightBits = 20000000;
    c.dramWriteBits = 23456789;
    c.d2dBits = 3456789;
    c.al2ReadBits = c.al2WriteBits = 456789;
    c.al1ReadBits = c.al1WriteBits = 56789;
    c.wl1ReadBits = c.wl1WriteBits = 6789;
    c.ol1RmwBits = 789;
    c.macOps = 1 << 20;
    c.ol2Bytes = 16384;
    const AcceleratorConfig cfg = caseStudyConfig();
    for (auto _ : state) {
        benchmark::DoNotOptimize(computeEnergy(c, cfg, defaultTech()));
    }
}
BENCHMARK(BM_ComputeEnergy);

void
BM_SramEnergyFit(benchmark::State &state)
{
    const TechnologyModel &t = defaultTech();
    int64_t kb = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.sramEnergyPerBit(kb * 1024));
        kb = kb >= 256 ? 1 : kb * 2;
    }
}
BENCHMARK(BM_SramEnergyFit);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
