/**
 * @file
 * Ablation study of the architecture's dataflow mechanisms (DESIGN.md
 * section 4): the ring rotation of the package-shared tensor
 * (figure 3), the W-L1 buffer pooling (section III-A.2) and the
 * central-bus A-L2 multicast.  Each mechanism is disabled in turn and
 * the energy of the case-study layers re-evaluated under the *same*
 * best-with-everything mapping, isolating the mechanism's
 * contribution.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"

using namespace nnbaton;

namespace {

double
energyWith(const ConvLayer &layer, const AcceleratorConfig &cfg,
           const Mapping &mapping, const AnalysisOptions &options)
{
    return evaluateMapping(layer, cfg, defaultTech(), mapping, options)
        .energy.total();
}

void
printAblation()
{
    const AcceleratorConfig cfg = caseStudyConfig();
    std::printf("=== Ablation: dataflow mechanisms (case-study "
                "hardware, 224x224 layers) ===\n\n");
    const RepresentativeLayers reps = representativeLayers(224);
    const struct
    {
        const ConvLayer *layer;
        const char *role;
    } cases[] = {
        {&reps.activationIntensive, "activation-intensive"},
        {&reps.weightIntensive, "weight-intensive"},
        {&reps.largeKernel, "large kernel"},
        {&reps.pointWise, "point-wise"},
        {&reps.common, "common"},
    };

    TextTable t({"layer", "full mJ", "-rotation", "-wl1 pooling",
                 "-al2 multicast"});
    for (const auto &c : cases) {
        const auto best = searchLayer(*c.layer, cfg, defaultTech());
        const Mapping &m = best->mapping;
        const double full = best->energy.total();
        AnalysisOptions no_rot;
        no_rot.rotationSharing = false;
        AnalysisOptions no_pool;
        no_pool.wl1Pooling = false;
        AnalysisOptions no_mcast;
        no_mcast.al2Multicast = false;
        auto ratio = [&](const AnalysisOptions &o) {
            return energyWith(*c.layer, cfg, m, o) / full;
        };
        t.newRow()
            .add(c.role)
            .add(full * 1e-9, 4)
            .add(ratio(no_rot), 3)
            .add(ratio(no_pool), 3)
            .add(ratio(no_mcast), 3);
    }
    t.print(std::cout);
    std::printf(
        "\ncolumns show energy relative to the full design when one "
        "mechanism is disabled (>1.0 = the mechanism saves energy for "
        "that layer under its chosen mapping).  Rotation matters most "
        "where the package-shared tensor is large; pooling where "
        "plane-split cores share weights; multicast where channel "
        "groups share activations.\n\n");
}

void
BM_AblationEval(benchmark::State &state)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(224);
    const auto best = searchLayer(reps.common, cfg, defaultTech());
    AnalysisOptions no_rot;
    no_rot.rotationSharing = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluateMapping(
            reps.common, cfg, defaultTech(), best->mapping, no_rot));
    }
}
BENCHMARK(BM_AblationEval);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
