/**
 * @file
 * Figure 12 reproduction: normalized energy breakdown of the Simba
 * baseline weight-centric dataflow vs the NN-Baton-generated dataflow
 * in five distinct layers at two input resolutions, on identical
 * computation and memory resources.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "simba/simba.hpp"

using namespace nnbaton;

namespace {

void
printRow(TextTable &t, const std::string &label,
         const EnergyBreakdown &e, double norm)
{
    t.newRow()
        .add(label)
        .add(e.total() / norm, 3)
        .add(e.dram / norm, 3)
        .add((e.d2d + e.noc) / norm, 3)
        .add(e.sram() / norm, 3)
        .add(e.ol1 / norm, 3)
        .add(e.mac / norm, 3);
}

void
printFigure()
{
    const AcceleratorConfig cfg = caseStudyConfig();
    std::printf("=== Figure 12: normalized energy, Simba baseline vs "
                "NN-Baton (five layers, two resolutions) ===\n");
    for (int resolution : {224, 512}) {
        std::printf("\n--- input resolution %dx%d ---\n", resolution,
                    resolution);
        const RepresentativeLayers reps =
            representativeLayers(resolution);
        const struct
        {
            const ConvLayer *layer;
            const char *role;
        } cases[] = {
            {&reps.activationIntensive, "activation-intensive"},
            {&reps.weightIntensive, "weight-intensive"},
            {&reps.largeKernel, "large kernel"},
            {&reps.pointWise, "point-wise"},
            {&reps.common, "common"},
        };
        TextTable t({"layer / tool", "total", "dram", "d2d+noc",
                     "sram", "ol1(rf)", "mac"});
        for (const auto &c : cases) {
            const SimbaLayerCost simba =
                simbaLayerCost(*c.layer, cfg, defaultTech());
            const auto baton =
                searchLayer(*c.layer, cfg, defaultTech());
            const double norm = simba.energy.total();
            printRow(t, std::string(c.role) + " simba", simba.energy,
                     norm);
            printRow(t, std::string(c.role) + " baton",
                     baton->energy, norm);
        }
        t.print(std::cout);
    }
    std::printf(
        "\nexpected shape: NN-Baton <= 1.0 everywhere (normalized to "
        "Simba); biggest wins on activation-intensive and large-"
        "kernel layers at 512x512; near parity on weight-intensive "
        "and point-wise layers; Simba's d2d is consistently higher "
        "from 24-bit psum transfers (paper section VI-A.2).\n\n");
}

void
BM_SimbaLayerCost(benchmark::State &state)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(224);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simbaLayerCost(reps.common, cfg, defaultTech()));
    }
}
BENCHMARK(BM_SimbaLayerCost);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
