/**
 * @file
 * Figure 14 reproduction: chiplet-granularity exploration with 2048
 * MAC units.  All 63 (chiplet, core, lane, vector) allocations are
 * evaluated with memory proportional to compute; per chiplet count we
 * report the best energy without an area constraint and the best
 * design under the 2 mm^2 chiplet-area constraint, plus runtime and
 * EDP.  The paper's top pick is 4-4-16-8.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>

#include "baton/baton.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

using namespace nnbaton;

namespace {

void
printModel(const Model &model)
{
    std::printf("\n--- model %s @%d ---\n", model.name().c_str(),
                model.inputResolution());

    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    const DseResult open = explore(model, opt, defaultTech());
    opt.areaLimitMm2 = 2.0;
    const DseResult tight = explore(model, opt, defaultTech());

    // Best unconstrained energy and best constrained design per N_P.
    std::map<int, const DesignPoint *> best_open, best_tight;
    for (const auto &p : open.points) {
        auto &slot = best_open[p.compute.chiplets];
        if (!slot ||
            p.cost.energy.total() < slot->cost.energy.total()) {
            slot = &p;
        }
    }
    for (const auto &p : tight.points) {
        auto &slot = best_tight[p.compute.chiplets];
        if (!slot ||
            p.cost.energy.total() < slot->cost.energy.total()) {
            slot = &p;
        }
    }

    TextTable t({"chiplets", "best scheme", "energy mJ (no limit)",
                 "scheme @2mm2", "energy mJ", "runtime ms", "EDP",
                 "area mm2"});
    for (int np : {1, 2, 4, 8}) {
        t.newRow().add(static_cast<int64_t>(np));
        if (best_open.count(np)) {
            const DesignPoint *p = best_open[np];
            t.add(strprintf("%d-%d-%d-%d", np, p->compute.cores,
                            p->compute.lanes, p->compute.vectorSize));
            t.add(p->cost.energyMj(), 3);
        } else {
            t.add("--").add("--");
        }
        if (best_tight.count(np)) {
            const DesignPoint *p = best_tight[np];
            t.add(strprintf("%d-%d-%d-%d", np, p->compute.cores,
                            p->compute.lanes, p->compute.vectorSize));
            t.add(p->cost.energyMj(), 3);
            t.add(p->cost.runtimeMs(0.5), 3);
            t.add(p->edp() / 1e15, 3);
            t.add(p->area.total(), 2);
        } else {
            t.add("-- over budget --");
        }
    }
    t.print(std::cout);

    if (auto best = tight.bestEdp()) {
        const DesignPoint &p = tight.points[*best];
        std::printf("lowest-EDP design under 2 mm^2: %d-%d-%d-%d "
                    "(area %.2f mm^2)\n",
                    p.compute.chiplets, p.compute.cores,
                    p.compute.lanes, p.compute.vectorSize,
                    p.area.total());
    }
}

void
printFigure()
{
    std::printf("=== Figure 14: 2048-MAC hardware implementations, "
                "1/2/4/8 chiplets ===\n");
    std::printf("(memory proportional to compute; sweep = %zu "
                "compute allocations)\n",
                enumerateCompute(2048).size());
    printModel(makeAlexNet(224));
    printModel(makeVgg16(224));
    printModel(makeResNet50(224));
    printModel(makeDarkNet19(224));
    std::printf(
        "\nexpected shape: without an area constraint fewer chiplets "
        "give lower energy; no 1-chiplet design meets 2 mm^2; the "
        "4-chiplet 4-4-16-8 scheme is the recurring top pick under "
        "the constraint (paper section VI-B.1).\n\n");
}

void
BM_ExploreProportional(benchmark::State &state)
{
    Model probe("probe", 224);
    const Model resnet = makeResNet50(224);
    probe.addLayer(resnet.layer("res3a_branch2b"));
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explore(probe, opt, defaultTech()));
    }
}
BENCHMARK(BM_ExploreProportional)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
