/**
 * @file
 * Figure 10 reproduction: the (approximately linear) relationship
 * between memory size and overhead — SRAM access energy / area and RF
 * read-modify-write energy / area, scaled to 16 nm.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

namespace {

void
printFigure()
{
    const TechnologyModel &t = defaultTech();
    std::printf("=== Figure 10: memory size vs overhead (linear "
                "fits, 16 nm) ===\n\n");
    TextTable sram({"SRAM KB", "energy pJ/bit", "area mm2"});
    for (int kb : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
        sram.newRow()
            .add(static_cast<int64_t>(kb))
            .add(t.sramEnergyPerBit(static_cast<int64_t>(kb) * 1024),
                 3)
            .add(t.sramAreaMm2(static_cast<int64_t>(kb) * 1024), 4);
    }
    sram.print(std::cout);

    std::printf("\n");
    TextTable rf({"RF KB", "RMW energy pJ/bit", "area mm2"});
    for (double kb : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0}) {
        rf.newRow()
            .add(kb, 2)
            .add(t.rfEnergyPerBitRmw, 3)
            .add(t.rfAreaMm2(static_cast<int64_t>(kb * 1024)), 4);
    }
    rf.print(std::cout);
    std::printf("\nanchors: 1 KB SRAM -> 0.30 pJ/bit and 32 KB SRAM -> "
                "0.81 pJ/bit (table I); the fit is linear as the paper "
                "observes, enabling linear-regression extension of the "
                "memory search space.\n\n");
}

void
BM_AreaModel(benchmark::State &state)
{
    const TechnologyModel &t = defaultTech();
    int64_t kb = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.sramAreaMm2(kb * 1024));
        kb = kb >= 256 ? 1 : kb * 2;
    }
}
BENCHMARK(BM_AreaModel);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
