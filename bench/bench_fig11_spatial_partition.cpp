/**
 * @file
 * Figure 11 reproduction: energy estimation with breakdown of the six
 * spatial partition strategies — (C,C) (C,P) (C,H) (P,C) (P,P) (P,H)
 * — on five representative layer types at 224x224 and 512x512 input
 * resolutions, each with its best temporal strategy.
 *
 * Hardware: 4 chiplets, 8 cores, 8 lanes of 8-size vector MAC, 1.5KB
 * O-L1, 800B A-L1, 18KB W-L1 and 64KB A-L2 (paper section VI-A.1).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"

using namespace nnbaton;

namespace {

struct Combo
{
    PackagePartition pkg;
    ChipletPartition chip;
};

const Combo kCombos[] = {
    {PackagePartition::Channel, ChipletPartition::Channel},
    {PackagePartition::Channel, ChipletPartition::Plane},
    {PackagePartition::Channel, ChipletPartition::Hybrid},
    {PackagePartition::Plane, ChipletPartition::Channel},
    {PackagePartition::Plane, ChipletPartition::Plane},
    {PackagePartition::Plane, ChipletPartition::Hybrid},
};

void
printLayer(const AcceleratorConfig &cfg, const ConvLayer &layer,
           const char *role)
{
    std::printf("\nlayer: %s (%s)\n", layer.toString().c_str(), role);
    TextTable t({"spatial", "total mJ", "dram", "d2d", "al2", "al1",
                 "wl1", "ol1", "ol2+mac", "best temporal"});
    double best = 1e300;
    std::string best_label;
    for (const Combo &c : kCombos) {
        const auto r = searchLayerWithSpatial(layer, cfg, defaultTech(),
                                              c.pkg, c.chip);
        Mapping probe;
        probe.pkgSpatial = c.pkg;
        probe.chipSpatial = c.chip;
        if (!r) {
            // The paper also removes combos that mismatch the layer
            // (e.g. (C,C) on small-output-channel layers).
            t.newRow().add(probe.spatialLabel()).add("-- removed --");
            continue;
        }
        const EnergyBreakdown &e = r->energy;
        const double mj = 1e-9;
        t.newRow()
            .add(r->mapping.spatialLabel())
            .add(e.total() * mj, 4)
            .add(e.dram * mj, 4)
            .add(e.d2d * mj, 4)
            .add(e.al2 * mj, 4)
            .add(e.al1 * mj, 4)
            .add(e.wl1 * mj, 4)
            .add(e.ol1 * mj, 4)
            .add((e.ol2 + e.mac) * mj, 4)
            .add(std::string(toString(r->mapping.pkgOrder)) + "/" +
                 toString(r->mapping.chipOrder));
        if (e.total() < best) {
            best = e.total();
            best_label = r->mapping.spatialLabel();
        }
    }
    t.print(std::cout);
    std::printf("best spatial strategy: %s\n", best_label.c_str());
}

void
printFigure()
{
    const AcceleratorConfig cfg = caseStudyConfig();
    std::printf("=== Figure 11: energy of spatial partition "
                "strategies (best temporal each) ===\n");
    std::printf("hardware: %s\n", cfg.toString().c_str());
    for (int resolution : {224, 512}) {
        std::printf("\n--- input resolution %dx%d ---\n", resolution,
                    resolution);
        const RepresentativeLayers reps =
            representativeLayers(resolution);
        printLayer(cfg, reps.activationIntensive,
                   "activation-intensive");
        printLayer(cfg, reps.weightIntensive, "weight-intensive");
        printLayer(cfg, reps.largeKernel, "large kernel-size");
        printLayer(cfg, reps.pointWise, "point-wise");
        printLayer(cfg, reps.common, "common");
    }
    std::printf(
        "\nexpected shape: hybrid chiplet partitions ((C,H)/(P,H)) "
        "give overall low energy; P-type package suits activation-"
        "intensive and large-kernel layers, C-type suits weight-"
        "intensive and point-wise layers (paper section VI-A.1).\n\n");
}

void
BM_SearchLayerWithSpatial(benchmark::State &state)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(224);
    for (auto _ : state) {
        benchmark::DoNotOptimize(searchLayerWithSpatial(
            reps.common, cfg, defaultTech(), PackagePartition::Channel,
            ChipletPartition::Hybrid));
    }
}
BENCHMARK(BM_SearchLayerWithSpatial);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
