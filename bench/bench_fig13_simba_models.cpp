/**
 * @file
 * Figure 13 reproduction: whole-model energy comparison between the
 * Simba baseline dataflow and NN-Baton on VGG-16, ResNet-50 and
 * DarkNet-19 at 224x224 and 512x512 inputs (CONV + FC layers, FC
 * reorganised into point-wise layers).  The paper reports
 * 22.5%-44% energy savings.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "baton/baton.hpp"
#include "common/table.hpp"

using namespace nnbaton;

namespace {

void
printFigure()
{
    const AcceleratorConfig cfg = caseStudyConfig();
    std::printf("=== Figure 13: model-level energy, Simba vs NN-Baton "
                "===\nhardware: %s\n\n", cfg.toString().c_str());
    TextTable t({"model", "input", "simba mJ", "baton mJ",
                 "baton/simba", "savings %"});
    double min_savings = 1.0, max_savings = 0.0;
    for (int resolution : {224, 512}) {
        for (const Model &model :
             {makeVgg16(resolution), makeResNet50(resolution),
              makeDarkNet19(resolution)}) {
            const ComparisonReport r = compareWithSimba(model, cfg);
            t.newRow()
                .add(model.name())
                .add(static_cast<int64_t>(resolution))
                .add(r.simbaEnergy.total() * 1e-9, 3)
                .add(r.batonEnergy.total() * 1e-9, 3)
                .add(r.batonEnergy.total() / r.simbaEnergy.total(), 3)
                .add(100.0 * r.savings(), 1);
            min_savings = std::min(min_savings, r.savings());
            max_savings = std::max(max_savings, r.savings());
        }
    }
    t.print(std::cout);
    std::printf("\nmeasured savings range: %.1f%% - %.1f%% (paper: "
                "22.5%% - 44%%)\n", 100.0 * min_savings,
                100.0 * max_savings);
    std::printf("expected shape: savings at 512x512 exceed 224x224 "
                "(Simba is weak on large feature maps / halo "
                "regions); VGG-16 and DarkNet-19 save more than "
                "ResNet-50 (their feature maps shrink later).\n\n");
}

void
BM_CompareVgg224(benchmark::State &state)
{
    const Model model = makeVgg16(224);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compareWithSimba(model, caseStudyConfig()));
    }
}
BENCHMARK(BM_CompareVgg224)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
