/**
 * @file
 * Figure 8 reproduction: the DRAM access-conflict degree of square vs
 * rectangle package-level partition patterns.  A square 2x2 split of
 * the output plane makes the central halo data needed by all four
 * chiplets, while 1:4 stripes cap the sharing at two chiplets.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "dataflow/partition.hpp"
#include "nn/model.hpp"

using namespace nnbaton;

namespace {

void
printFigure()
{
    std::printf("=== Figure 8: halo sharing degree (DRAM conflict) of "
                "package partition patterns ===\n\n");
    const Model resnet = makeResNet50(512);
    const ConvLayer layers[] = {resnet.layer("conv1"),
                                resnet.layer("res2a_branch2b")};
    TextTable t({"layer", "pattern", "max chiplets sharing a halo "
                                     "element"});
    for (const ConvLayer &l : layers) {
        for (PlanarSplit s : {PlanarSplit{2, 2}, PlanarSplit{1, 4},
                              PlanarSplit{4, 1}}) {
            t.newRow().add(l.name).add(s.toString()).add(
                static_cast<int64_t>(maxHaloSharers(
                    l.ho, l.wo, s, l.kh, l.kw, l.stride)));
        }
    }
    t.print(std::cout);
    std::printf("\nexpected shape: the square 2:2 pattern creates a "
                "central region accessed by 4 chiplets; stripe "
                "patterns bound sharing at 2, avoiding DRAM access "
                "conflict (paper section IV-C).\n\n");
}

void
BM_MaxHaloSharers(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            maxHaloSharers(256, 256, {2, 2}, 7, 7, 2));
    }
}
BENCHMARK(BM_MaxHaloSharers);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
