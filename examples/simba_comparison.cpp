/**
 * @file
 * Baseline comparison example: evaluate the same model on the same
 * hardware under the Simba weight-centric dataflow and the NN-Baton
 * output-centric mappings, and print the per-layer and total energy
 * (the experiment behind paper figures 12 and 13).
 *
 * Usage: simba_comparison [model] [resolution]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "baton/baton.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

using namespace nnbaton;

namespace {

Model
pickModel(const char *name, int resolution)
{
    if (std::strcmp(name, "vgg16") == 0)
        return makeVgg16(resolution);
    if (std::strcmp(name, "resnet50") == 0)
        return makeResNet50(resolution);
    if (std::strcmp(name, "darknet19") == 0)
        return makeDarkNet19(resolution);
    if (std::strcmp(name, "alexnet") == 0)
        return makeAlexNet(resolution);
    std::fprintf(stderr, "unknown model '%s'\n", name);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "vgg16";
    const int resolution = argc > 2 ? std::atoi(argv[2]) : 224;
    const Model model = pickModel(name, resolution);
    const AcceleratorConfig cfg = caseStudyConfig();

    std::printf("Simba vs NN-Baton on %s @%d (hardware %s)\n\n",
                model.name().c_str(), resolution,
                cfg.toString().c_str());

    TextTable t({"layer", "simba mJ", "baton mJ", "savings %",
                 "simba arrangement", "baton mapping"});
    double simba_total = 0.0;
    double baton_total = 0.0;
    for (const ConvLayer &layer : model.layers()) {
        const SimbaLayerCost s =
            simbaLayerCost(layer, cfg, defaultTech());
        const auto b = searchLayer(layer, cfg, defaultTech());
        if (!b) {
            std::fprintf(stderr,
                         "no legal NN-Baton mapping for %s\n",
                         layer.name.c_str());
            return 1;
        }
        simba_total += s.energy.total();
        baton_total += b->energy.total();
        t.newRow()
            .add(layer.name)
            .add(s.energy.total() * 1e-9, 4)
            .add(b->energy.total() * 1e-9, 4)
            .add(100.0 * (1.0 - b->energy.total() / s.energy.total()),
                 1)
            .add(s.mapping.toString())
            .add(b->mapping.spatialLabel() + " " +
                 toString(b->mapping.pkgOrder) + "/" +
                 toString(b->mapping.chipOrder));
    }
    t.print(std::cout);
    std::printf("\nmodel total: simba %.3f mJ, baton %.3f mJ, "
                "savings %.1f%% (paper band: 22.5%%-44%%)\n",
                simba_total * 1e-9, baton_total * 1e-9,
                100.0 * (1.0 - baton_total / simba_total));
    return 0;
}
