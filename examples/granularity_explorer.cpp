/**
 * @file
 * Pre-design flow example: explore the chiplet granularity for a
 * target model under MAC-count and chiplet-area budgets, and print
 * the recommended computation and memory allocation (paper sections
 * IV-D and VI-B).
 *
 * Usage: granularity_explorer [macs] [area_mm2] [model] [resolution]
 *        granularity_explorer 2048 2.0 resnet50 224
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baton/baton.hpp"
#include "common/logging.hpp"

using namespace nnbaton;

namespace {

Model
pickModel(const char *name, int resolution)
{
    if (std::strcmp(name, "vgg16") == 0)
        return makeVgg16(resolution);
    if (std::strcmp(name, "resnet50") == 0)
        return makeResNet50(resolution);
    if (std::strcmp(name, "darknet19") == 0)
        return makeDarkNet19(resolution);
    if (std::strcmp(name, "alexnet") == 0)
        return makeAlexNet(resolution);
    std::fprintf(stderr, "unknown model '%s'\n", name);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const int64_t macs = argc > 1 ? std::atoll(argv[1]) : 2048;
    const double area = argc > 2 ? std::atof(argv[2]) : 2.0;
    const char *name = argc > 3 ? argv[3] : "resnet50";
    const int resolution = argc > 4 ? std::atoi(argv[4]) : 224;

    const Model model = pickModel(name, resolution);
    std::printf("exploring %lld-MAC designs for %s @%d under "
                "%.1f mm^2 per chiplet\n\n",
                static_cast<long long>(macs), model.name().c_str(),
                resolution, area);

    // Pass 1: chiplet granularity with proportional memory (fast).
    DseOptions opt;
    opt.totalMacs = macs;
    opt.areaLimitMm2 = area;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    PreDesignFlow coarse(opt);
    const PreDesignReport coarse_report = coarse.run(model);
    std::printf("--- pass 1: compute allocation (proportional "
                "memory) ---\n%s\n",
                coarse_report.toString().c_str());
    if (!coarse_report.recommended)
        return 1;

    // Pass 2: refine the memory allocation over the table II grid.
    opt.proportionalMem = false;
    opt.effort = SearchEffort::Sketch;
    PreDesignFlow fine(opt);
    const PreDesignReport fine_report = fine.run(model);
    std::printf("--- pass 2: memory allocation (table II grid) ---\n%s",
                fine_report.toString().c_str());

    if (fine_report.recommended) {
        const DesignPoint &p = *fine_report.recommended;
        std::printf("\nfinal recommendation:\n  %s\n  chiplet area: %s\n",
                    p.toString().c_str(), p.area.toString().c_str());
    }
    return 0;
}
