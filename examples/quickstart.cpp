/**
 * @file
 * Quickstart: map one convolution layer on the paper's case-study
 * hardware (4 chiplets x 8 cores x 8 lanes x 8-wide vector MAC) and
 * print the chosen mapping with its energy breakdown and runtime.
 */

#include <cstdio>

#include "baton/baton.hpp"

int
main()
{
    using namespace nnbaton;

    // The section VI-A hardware: 4 chiplets, 8 cores, 8 lanes of
    // 8-size vector MAC, 1.5KB O-L1, 800B A-L1, 18KB W-L1, 64KB A-L2.
    const AcceleratorConfig cfg = caseStudyConfig();
    std::printf("hardware: %s\n\n", cfg.toString().c_str());

    // VGG-16 conv1 at 224x224: the activation-intensive case study.
    const Model vgg = makeVgg16(224);
    const ConvLayer &layer = vgg.layer("conv1");
    std::printf("layer:    %s\n\n", layer.toString().c_str());

    PostDesignFlow flow(cfg);
    auto choice = flow.runLayer(layer);
    if (!choice) {
        std::printf("no legal mapping found\n");
        return 1;
    }

    std::printf("mapping:  %s\n", choice->mapping.toString().c_str());
    std::printf("energy:   %s\n", choice->energy.toString().c_str());
    std::printf("runtime:  %s\n", choice->runtime.toString().c_str());
    std::printf("accesses: %s\n",
                choice->analysis.counts.toString().c_str());
    return 0;
}
