/**
 * @file
 * Post-design flow example: orchestrate a whole DNN model on a fixed
 * multichip accelerator and print the per-layer mapping strategy —
 * the spatial partition dimension and pattern, the temporal loop
 * orders, the tile shapes, and the resulting energy/runtime — i.e.
 * the report a hardware compiler would consume (paper section IV-D).
 *
 * Usage: model_mapping [vgg16|resnet50|darknet19|alexnet] [224|512]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baton/baton.hpp"
#include "common/logging.hpp"

using namespace nnbaton;

namespace {

Model
pickModel(const char *name, int resolution)
{
    if (std::strcmp(name, "vgg16") == 0)
        return makeVgg16(resolution);
    if (std::strcmp(name, "resnet50") == 0)
        return makeResNet50(resolution);
    if (std::strcmp(name, "darknet19") == 0)
        return makeDarkNet19(resolution);
    if (std::strcmp(name, "alexnet") == 0)
        return makeAlexNet(resolution);
    std::fprintf(stderr,
                 "unknown model '%s' (expected vgg16 | resnet50 | "
                 "darknet19 | alexnet)\n",
                 name);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "resnet50";
    const int resolution = argc > 2 ? std::atoi(argv[2]) : 224;
    if (resolution != 224 && resolution != 512) {
        std::fprintf(stderr,
                     "resolution must be 224 or 512, got %d\n",
                     resolution);
        return 1;
    }

    const Model model = pickModel(name, resolution);
    const AcceleratorConfig cfg = caseStudyConfig();

    PostDesignFlow flow(cfg, defaultTech(), SearchEffort::Exhaustive);
    const PostDesignReport report = flow.run(model);
    std::printf("%s", report.toString().c_str());

    // Summarise how often each spatial strategy was selected — the
    // layer-wise diversity the paper argues for in section VI-A.1.
    int counts[2][3] = {};
    for (const MappingChoice &c : report.mappings) {
        counts[static_cast<int>(c.mapping.pkgSpatial)]
              [static_cast<int>(c.mapping.chipSpatial)]++;
    }
    std::printf("\nspatial strategy usage:\n");
    const char *pkg_names[] = {"C", "P"};
    const char *chip_names[] = {"C", "P", "H"};
    for (int p = 0; p < 2; ++p) {
        for (int c = 0; c < 3; ++c) {
            if (counts[p][c]) {
                std::printf("  (%s,%s): %d layers\n", pkg_names[p],
                            chip_names[c], counts[p][c]);
            }
        }
    }
    return 0;
}
