/**
 * @file
 * End-to-end reproduction checks of the paper's headline claims
 * (shape-level, not absolute numbers — see EXPERIMENTS.md):
 *
 *  - figure 12/13: NN-Baton beats the Simba weight-centric baseline,
 *    with larger savings at 512x512 inputs and in the double-digit
 *    percent range at model level (paper: 22.5%-44%);
 *  - figure 14: under the 2 mm^2 chiplet-area constraint no 1-chiplet
 *    2048-MAC design is valid and a multi-chiplet design wins EDP,
 *    while without the constraint fewer chiplets give lower energy;
 *  - figure 15: computation allocation is decided by the area
 *    constraint; memory allocation varies with the model.
 */

#include <gtest/gtest.h>

#include "baton/baton.hpp"

using namespace nnbaton;

TEST(PaperClaims, Fig13ModelLevelSavingsVsSimba)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    for (int resolution : {224, 512}) {
        for (const Model &model :
             {makeVgg16(resolution), makeResNet50(resolution),
              makeDarkNet19(resolution)}) {
            const ComparisonReport r = compareWithSimba(model, cfg);
            EXPECT_GT(r.savings(), 0.05)
                << model.name() << "@" << resolution;
            EXPECT_LT(r.savings(), 0.75)
                << model.name() << "@" << resolution;
        }
    }
}

TEST(PaperClaims, Fig12LargerSavingsOnActivationHeavyLayers)
{
    // Section VI-A.2: "significant advantages of NN-Baton in the
    // activation-intensive and large kernel-size layers, especially
    // in the 512x512 resolution case", while point-wise layers
    // "perform similarly".
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(512);

    auto savings = [&](const ConvLayer &l) {
        const auto baton = searchLayer(l, cfg, defaultTech());
        const auto simba = simbaLayerCost(l, cfg, defaultTech());
        return 1.0 - baton->energy.total() / simba.energy.total();
    };
    const double act = savings(reps.activationIntensive);
    const double pw = savings(reps.pointWise);
    EXPECT_GT(act, pw);
    EXPECT_GT(act, 0.10);
}

TEST(PaperClaims, Fig14AreaConstraintForcesMultiChiplet)
{
    Model model("probe", 224);
    // A representative slice of ResNet-50 keeps the sweep fast.
    const Model resnet = makeResNet50(224);
    model.addLayer(resnet.layer("conv1"));
    model.addLayer(resnet.layer("res2a_branch2b"));
    model.addLayer(resnet.layer("res4a_branch2a"));

    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    opt.areaLimitMm2 = 2.0;
    const DseResult constrained = explore(model, opt, defaultTech());
    ASSERT_FALSE(constrained.points.empty());
    for (const auto &p : constrained.points)
        EXPECT_GT(p.compute.chiplets, 1) << p.toString();

    const auto best = constrained.bestEdp();
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(constrained.points[*best].compute.chiplets, 2);
}

TEST(PaperClaims, Fig14FewerChipletsLowerEnergyWithoutConstraint)
{
    // "without any area constraint, the energy consumption is
    // generally higher with more chiplets".
    Model model("probe", 224);
    const Model resnet = makeResNet50(224);
    model.addLayer(resnet.layer("res3a_branch2b"));
    model.addLayer(resnet.layer("res4a_branch2a"));

    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    const DseResult r = explore(model, opt, defaultTech());

    auto best_for_chiplets = [&](int np) {
        double best = 1e300;
        for (const auto &p : r.points) {
            if (p.compute.chiplets == np)
                best = std::min(best, p.cost.energy.total());
        }
        return best;
    };
    const double e1 = best_for_chiplets(1);
    const double e8 = best_for_chiplets(8);
    EXPECT_LT(e1, e8);
}

TEST(PaperClaims, Fig15MemoryAllocationIsModelSensitive)
{
    // Section VI-B.2: the recommended computation allocation is fixed
    // by the area constraint while the memory allocation differs per
    // benchmark.  Probe with two very different workloads.
    Model act_heavy("act", 512);
    act_heavy.addLayer(makeConv("a", 256, 256, 64, 32, 3, 3, 1));
    Model wt_heavy("wt", 224);
    wt_heavy.addLayer(makeConv("w", 7, 7, 1024, 1024, 3, 3, 1));

    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = false;
    opt.effort = SearchEffort::Sketch;
    opt.areaLimitMm2 = 2.0;

    const DseResult ra = explore(act_heavy, opt, defaultTech());
    const DseResult rw = explore(wt_heavy, opt, defaultTech());
    ASSERT_TRUE(ra.bestEnergy() && rw.bestEnergy());
    const DesignPoint &pa = ra.points[*ra.bestEnergy()];
    const DesignPoint &pw = rw.points[*rw.bestEnergy()];
    // The weight-heavy probe prefers at least as much W-L1 and the
    // activation-heavy probe at least as much A-L1.
    EXPECT_GE(pw.memory.wl1Bytes, pa.memory.wl1Bytes);
    EXPECT_GE(pa.memory.al1Bytes + pa.memory.al2Bytes,
              pw.memory.al1Bytes);
}
