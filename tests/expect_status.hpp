/**
 * @file
 * Test helper replacing the old EXPECT_DEATH assertions.
 *
 * Library errors no longer abort the process; they throw StatusError
 * (see docs/resilience.md).  expectStatusThrow checks that a callable
 * throws a StatusError whose message contains the expected substring,
 * mirroring what EXPECT_DEATH used to match against stderr.
 */

#ifndef NNBATON_TESTS_EXPECT_STATUS_HPP
#define NNBATON_TESTS_EXPECT_STATUS_HPP

#include <gtest/gtest.h>

#include <string>

#include "common/status.hpp"

namespace nnbaton {

template <typename Fn>
void
expectStatusThrow(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        ADD_FAILURE() << "expected a StatusError containing '" << needle
                      << "', but nothing was thrown";
    } catch (const StatusError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "StatusError message '" << e.what()
            << "' does not contain '" << needle << "'";
    }
}

} // namespace nnbaton

#endif // NNBATON_TESTS_EXPECT_STATUS_HPP
