/**
 * @file
 * Tests for the planar partition-pattern math (figures 7 and 8):
 * exact tiled footprints, halo redundancy and conflict degree.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "dataflow/partition.hpp"
#include "nn/layer.hpp"

using namespace nnbaton;

TEST(SplitExtent, NearEqualChunks)
{
    EXPECT_EQ(splitExtent(10, 2), (std::vector<int>{5, 5}));
    EXPECT_EQ(splitExtent(10, 3), (std::vector<int>{4, 3, 3}));
    EXPECT_EQ(splitExtent(10, 4), (std::vector<int>{3, 3, 2, 2}));
    // More parts than elements: zero chunks dropped.
    EXPECT_EQ(splitExtent(2, 4), (std::vector<int>{1, 1}));
}

TEST(SplitExtent, SumInvariant)
{
    for (int n : {1, 7, 16, 100, 224}) {
        for (int f : {1, 2, 3, 4, 8}) {
            auto chunks = splitExtent(n, f);
            EXPECT_EQ(std::accumulate(chunks.begin(), chunks.end(), 0),
                      n)
                << n << "/" << f;
        }
    }
}

TEST(TiledInputPlane, NoSplitEqualsExact)
{
    // fh = fw = 1 reproduces the exact input plane: (ho-1)s + k.
    EXPECT_EQ(tiledInputPlane(56, 56, {1, 1}, 3, 3, 1), 58LL * 58);
    EXPECT_EQ(tiledInputPlane(112, 112, {1, 1}, 7, 7, 2), 229LL * 229);
}

TEST(TiledInputPlane, SplitAddsHalo)
{
    // Two tiles of 28 rows each consume (28-1)+3 = 30 rows: the
    // 2-row halo is loaded twice.
    EXPECT_EQ(tiledInputPlane(56, 56, {2, 1}, 3, 3, 1),
              2LL * 30 * 58);
}

TEST(TiledInputPlane, StrideEqualsKernelHasNoHalo)
{
    // stride == kernel (non-overlapping windows): tiling adds nothing.
    EXPECT_EQ(tiledInputPlane(32, 32, {4, 4}, 2, 2, 2),
              tiledInputPlane(32, 32, {1, 1}, 2, 2, 2));
}

TEST(HaloRedundancy, ZeroWithoutSplit)
{
    EXPECT_DOUBLE_EQ(haloRedundancy(56, 56, {1, 1}, 3, 3, 1), 0.0);
}

TEST(HaloRedundancy, GrowsWithParts)
{
    // More tiles -> more redundant halo (figure 7's rising curves).
    double prev = 0.0;
    for (int f : {2, 4, 8, 16}) {
        const double r = haloRedundancy(128, 128, {f, f}, 3, 3, 1);
        EXPECT_GT(r, prev) << f;
        prev = r;
    }
}

TEST(HaloRedundancy, SquareBeatsStripeAtSamePartCount)
{
    // Figure 7: with the same number of tiles, the square (1:1)
    // pattern has less redundant access than the stripe/rectangle.
    const double square = haloRedundancy(128, 128, {4, 4}, 3, 3, 1);
    const double stripe = haloRedundancy(128, 128, {16, 1}, 3, 3, 1);
    EXPECT_LT(square, stripe);
}

TEST(HaloRedundancy, LargeKernelWorseThanSmall)
{
    // Figure 7: the 7x7/s2 ResNet conv1 has much higher redundancy
    // than the 3x3/s1 VGG layer at equal tiling.
    const double k7 = haloRedundancy(256, 256, {8, 8}, 7, 7, 2);
    const double k3 = haloRedundancy(512, 512, {8, 8}, 3, 3, 1);
    EXPECT_GT(k7, k3);
}

TEST(HaloRedundancy, ResNetConv1FineTilingExceeds650Percent)
{
    // Paper figure 7: "up to 650% memory access increase" for the
    // 7x7/s2 first layer of a 512-input model under fine partitions.
    const ConvLayer conv1 = makeConv("c", 256, 256, 64, 3, 7, 7, 2);
    const double r =
        haloRedundancy(conv1.ho, conv1.wo, {256, 256}, 7, 7, 2);
    EXPECT_GT(r, 6.5);
}

TEST(MaxHaloSharers, SquareVsRectangle)
{
    // Figure 8: a 2x2 square package split makes the central halo
    // shared by 4 chiplets, while 1x4 stripes cap sharing at 2.
    EXPECT_EQ(maxHaloSharers(128, 128, {2, 2}, 3, 3, 1), 4);
    EXPECT_EQ(maxHaloSharers(128, 128, {1, 4}, 3, 3, 1), 2);
    EXPECT_EQ(maxHaloSharers(128, 128, {4, 1}, 3, 3, 1), 2);
}

TEST(MaxHaloSharers, NoOverlapNoSharing)
{
    EXPECT_EQ(maxHaloSharers(32, 32, {4, 4}, 2, 2, 2), 1);
    EXPECT_EQ(maxHaloSharers(32, 32, {1, 1}, 3, 3, 1), 1);
}

TEST(EnumerateSplits, MostSquareFirstAndFitting)
{
    const auto splits = enumerateSplits(4, 100, 100);
    ASSERT_FALSE(splits.empty());
    EXPECT_EQ(splits.front(), (PlanarSplit{2, 2}));
    for (const auto &s : splits)
        EXPECT_EQ(s.parts(), 4);
}

TEST(EnumerateSplits, RespectsPlaneBounds)
{
    // A 1-row plane cannot take fh > 1.
    for (const auto &s : enumerateSplits(4, 1, 1000))
        EXPECT_EQ(s.fh, 1);
    // Nothing fits when the plane has fewer cells than parts.
    EXPECT_TRUE(enumerateSplits(8, 2, 2).empty());
}

TEST(PlanarSplit, ToString)
{
    EXPECT_EQ((PlanarSplit{1, 4}).toString(), "1:4");
    EXPECT_EQ((PlanarSplit{2, 2}).toString(), "2:2");
}
