/**
 * @file
 * Tests for the DNN workload model: layer shape math and the model
 * zoo (AlexNet, VGG-16, ResNet-50, DarkNet-19).
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include "nn/layer.hpp"
#include "nn/model.hpp"

using namespace nnbaton;

TEST(ConvLayer, ShapeMath)
{
    const ConvLayer l = makeConv("t", 56, 56, 64, 3, 3, 3, 1);
    EXPECT_EQ(l.hi(), 58);
    EXPECT_EQ(l.wi(), 58);
    EXPECT_EQ(l.macs(), 56LL * 56 * 64 * 3 * 3 * 3);
    EXPECT_EQ(l.outputVolume(), 56LL * 56 * 64);
    EXPECT_EQ(l.weightVolume(), 3LL * 3 * 3 * 64);
    EXPECT_EQ(l.inputVolume(), 58LL * 58 * 3);
}

TEST(ConvLayer, StridedShapeMath)
{
    // ResNet-50 conv1 shape: 7x7 stride 2 on 224 input.
    const ConvLayer l = makeConv("conv1", 112, 112, 64, 3, 7, 7, 2);
    EXPECT_EQ(l.hi(), 229); // (112-1)*2 + 7
    EXPECT_EQ(l.wi(), 229);
}

TEST(ConvLayer, InputExtentHelper)
{
    EXPECT_EQ(inputExtent(8, 3, 1), 10);
    EXPECT_EQ(inputExtent(8, 7, 2), 21);
    EXPECT_EQ(inputExtent(1, 1, 1), 1);
    EXPECT_EQ(inputExtent(0, 3, 1), 0);
}

TEST(ConvLayer, PointWiseDetection)
{
    EXPECT_TRUE(makeConv("p", 56, 56, 64, 64, 1, 1, 1).isPointWise());
    EXPECT_FALSE(makeConv("c", 56, 56, 64, 64, 3, 3, 1).isPointWise());
}

TEST(ConvLayer, KindTaxonomy)
{
    // VGG-16 conv1: 3 input channels, huge plane -> activation heavy.
    EXPECT_EQ(makeConv("a", 224, 224, 64, 3, 3, 3, 1).kind(),
              LayerKind::ActivationIntensive);
    // VGG-16 conv12: 14x14 plane with 512x512 weights -> weight heavy.
    EXPECT_EQ(makeConv("w", 14, 14, 512, 512, 3, 3, 1).kind(),
              LayerKind::WeightIntensive);
    // ResNet-50 conv1: 7x7 kernel -> large kernel.
    EXPECT_EQ(makeConv("k", 112, 112, 64, 3, 7, 7, 2).kind(),
              LayerKind::LargeKernel);
    // res2a_branch2a: 1x1 kernel -> point-wise.
    EXPECT_EQ(makeConv("p", 56, 56, 64, 64, 1, 1, 1).kind(),
              LayerKind::PointWise);
    // res2a_branch2b: balanced 3x3 -> common.
    EXPECT_EQ(makeConv("c", 56, 56, 64, 64, 3, 3, 1).kind(),
              LayerKind::Common);
}

TEST(ConvLayer, FullyConnectedIsPointWise)
{
    const ConvLayer fc = makeFullyConnected("fc", 1000, 2048);
    EXPECT_TRUE(fc.isPointWise());
    EXPECT_EQ(fc.ho, 1);
    EXPECT_EQ(fc.wo, 1);
    EXPECT_EQ(fc.co, 1000);
    EXPECT_EQ(fc.ci, 2048);
    EXPECT_EQ(fc.macs(), 1000LL * 2048);
}

TEST(Vgg16, LayerTable224)
{
    const Model m = makeVgg16(224);
    EXPECT_EQ(m.layers().size(), 16u); // 13 conv + 3 fc
    const ConvLayer &c1 = m.layer("conv1");
    EXPECT_EQ(c1.ho, 224);
    EXPECT_EQ(c1.co, 64);
    EXPECT_EQ(c1.ci, 3);
    const ConvLayer &c12 = m.layer("conv12");
    EXPECT_EQ(c12.ho, 14);
    EXPECT_EQ(c12.co, 512);
    EXPECT_EQ(c12.ci, 512);
    const ConvLayer &c13 = m.layer("conv13");
    EXPECT_EQ(c13.ho, 14);
    // Total conv+fc MACs of VGG-16 at 224 are ~15.5 GMAC.
    EXPECT_NEAR(static_cast<double>(m.totalMacs()), 15.47e9, 0.2e9);
}

TEST(Vgg16, Resolution512ScalesPlanes)
{
    const Model m = makeVgg16(512);
    EXPECT_EQ(m.layer("conv1").ho, 512);
    EXPECT_EQ(m.layer("conv12").ho, 32);
    EXPECT_EQ(m.inputResolution(), 512);
}

TEST(ResNet50, LayerTable224)
{
    const Model m = makeResNet50(224);
    // 1 stem + 16 blocks x 3 + 4 projections + 1 fc = 54 layers.
    EXPECT_EQ(m.layers().size(), 54u);
    const ConvLayer &c1 = m.layer("conv1");
    EXPECT_EQ(c1.kh, 7);
    EXPECT_EQ(c1.stride, 2);
    EXPECT_EQ(c1.ho, 112);
    const ConvLayer &b2a = m.layer("res2a_branch2a");
    EXPECT_TRUE(b2a.isPointWise());
    EXPECT_EQ(b2a.ho, 56);
    EXPECT_EQ(b2a.co, 64);
    const ConvLayer &b2b = m.layer("res2a_branch2b");
    EXPECT_EQ(b2b.kh, 3);
    EXPECT_EQ(b2b.ci, 64);
    // Stage 5 reaches 2048 channels (paper: "wide models with up to
    // 2048 channels").
    EXPECT_EQ(m.layer("res5c_branch2c").co, 2048);
    // ResNet-50 conv MACs at 224 are ~4 GMAC.
    EXPECT_NEAR(static_cast<double>(m.totalMacs()), 4.1e9, 0.4e9);
}

TEST(ResNet50, DownsampleStrides)
{
    const Model m = makeResNet50(224);
    EXPECT_EQ(m.layer("res3a_branch2a").stride, 2);
    EXPECT_EQ(m.layer("res3a_branch1").stride, 2);
    EXPECT_EQ(m.layer("res2a_branch2a").stride, 1);
    EXPECT_EQ(m.layer("res4a_branch2a").ho, 14);
    EXPECT_EQ(m.layer("res5a_branch2a").ho, 7);
}

TEST(DarkNet19, LayerTable)
{
    const Model m = makeDarkNet19(224);
    EXPECT_EQ(m.layers().size(), 19u);
    EXPECT_EQ(m.layer("conv1").co, 32);
    EXPECT_EQ(m.layer("conv18").co, 1024);
    EXPECT_EQ(m.layer("conv19").co, 1000);
    // Alternating 3x3 / 1x1 structure.
    EXPECT_EQ(m.layer("conv4").kh, 1);
    EXPECT_EQ(m.layer("conv5").kh, 3);
}

TEST(DarkNet19, PeakConvWeightsExceedResNet)
{
    // Paper section VI-B.2: DarkNet's peak weight storage (the
    // 512->1024 3x3 layers, ~4.5 MB) exceeds the ResNet/VGG peak conv
    // layers (~2.25 MB).
    auto peak_conv_weights = [](const Model &m) {
        int64_t peak = 0;
        for (const auto &l : m.layers())
            if (!l.isPointWise() || l.ho > 1) // conv layers only
                peak = std::max(peak, l.weightVolume());
        return peak;
    };
    const int64_t dark = peak_conv_weights(makeDarkNet19(224));
    const int64_t res = peak_conv_weights(makeResNet50(224));
    EXPECT_EQ(makeDarkNet19(224).layer("conv14").weightVolume(),
              1024LL * 512 * 9); // ~4.7M weights = 4.5 MB at 8 bit
    EXPECT_GT(dark, res);
}

TEST(AlexNet, ExactStrideChain)
{
    const Model m = makeAlexNet(224);
    EXPECT_EQ(m.layers().size(), 8u);
    EXPECT_EQ(m.layer("conv1").ho, 55);
    EXPECT_EQ(m.layer("conv1").kh, 11);
    EXPECT_EQ(m.layer("conv2").ho, 27);
    EXPECT_EQ(m.layer("conv3").ho, 13);
    EXPECT_EQ(m.layer("conv5").co, 256);
}

TEST(AlexNet, DiverseKernelSizes)
{
    // Paper: "AlexNet contains convolution layer of diverse kernel
    // sizes, ranging from 3x3 to 11x11".
    const Model m = makeAlexNet(224);
    EXPECT_EQ(m.layer("conv1").kh, 11);
    EXPECT_EQ(m.layer("conv2").kh, 5);
    EXPECT_EQ(m.layer("conv3").kh, 3);
}

TEST(Model, PeakActivationsScaleWithResolution)
{
    // Paper section V-B: peak activation storage of the 512 models is
    // about 4x the 224 ones (early layers dominate).
    const Model a = makeVgg16(224);
    const Model b = makeVgg16(512);
    const double ratio = static_cast<double>(b.peakActivations()) /
                         static_cast<double>(a.peakActivations());
    EXPECT_NEAR(ratio, 512.0 * 512 / (224.0 * 224), 1.0);
}

TEST(Model, LayerLookupAndTotals)
{
    Model m("tiny", 32);
    m.addLayer(makeConv("a", 8, 8, 16, 3, 3, 3, 1));
    m.addLayer(makeConv("b", 8, 8, 16, 16, 1, 1, 1));
    EXPECT_EQ(m.layers().size(), 2u);
    EXPECT_EQ(m.layer("b").ci, 16);
    EXPECT_EQ(m.totalMacs(),
              m.layers()[0].macs() + m.layers()[1].macs());
    EXPECT_EQ(m.totalWeights(),
              m.layers()[0].weightVolume() +
                  m.layers()[1].weightVolume());
    EXPECT_FALSE(m.toString().empty());
}

TEST(RepresentativeLayers, MatchPaperTaxonomy)
{
    const RepresentativeLayers r = representativeLayers(224);
    EXPECT_EQ(r.activationIntensive.kind(),
              LayerKind::ActivationIntensive);
    EXPECT_EQ(r.weightIntensive.kind(), LayerKind::WeightIntensive);
    EXPECT_EQ(r.largeKernel.kind(), LayerKind::LargeKernel);
    EXPECT_EQ(r.pointWise.kind(), LayerKind::PointWise);
    EXPECT_EQ(r.common.kind(), LayerKind::Common);
}

TEST(MobileNetV2, LayerTable)
{
    const Model m = makeMobileNetV2(224);
    // Stem + 17 blocks (16 with expansion = 3 layers, 1 without = 2)
    // + head + fc = 1 + 16*3 + 2 + 1 + 1 = 53 layers.
    EXPECT_EQ(m.layers().size(), 53u);
    EXPECT_EQ(m.layer("conv1").co, 32);
    EXPECT_TRUE(m.layer("block1_dw").isDepthwise());
    EXPECT_EQ(m.layer("block2_expand").co, 16 * 6);
    EXPECT_EQ(m.layer("block17_project").co, 320);
    EXPECT_EQ(m.layer("conv_head").co, 1280);
}

TEST(MobileNetV2, DepthwiseShapeMath)
{
    const Model m = makeMobileNetV2(224);
    const ConvLayer &dw = m.layer("block2_dw");
    EXPECT_EQ(dw.groups, dw.ci);
    EXPECT_EQ(dw.ciPerGroup(), 1);
    // Depthwise MACs: ho*wo*co*kh*kw (one input channel per output).
    EXPECT_EQ(dw.macs(),
              static_cast<int64_t>(dw.ho) * dw.wo * dw.co * 9);
    EXPECT_EQ(dw.weightVolume(), static_cast<int64_t>(dw.co) * 9);
    EXPECT_EQ(dw.stride, 2); // first block of the 24-channel stage
}

TEST(MobileNetV2, FarFewerMacsThanVgg)
{
    // MobileNetV2 is designed to be ~50x cheaper than VGG-16.
    const int64_t mobile = makeMobileNetV2(224).totalMacs();
    const int64_t vgg = makeVgg16(224).totalMacs();
    EXPECT_LT(mobile * 20, vgg);
    EXPECT_NEAR(static_cast<double>(mobile), 0.32e9, 0.15e9);
}

TEST(DepthwiseLayer, ValidationRejectsPartialGroups)
{
    ConvLayer l = makeConv("g", 8, 8, 16, 16, 3, 3, 1);
    l.groups = 4; // grouped-but-not-depthwise is unsupported
    expectStatusThrow([&] { l.validate(); }, "depthwise");
}
