/**
 * @file
 * Tests for the text-format model parser and writer.
 */

#include <gtest/gtest.h>

#include <random>

#include "nn/parser.hpp"

using namespace nnbaton;

TEST(ParseModel, BasicDescription)
{
    const ParseResult r = parseModelString(
        "# a tiny model\n"
        "model tiny 64\n"
        "conv c1 32 32 16 3 3 3 1\n"
        "dwconv d1 16 16 16 3 2\n"
        "fc head 10 16\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.model->name(), "tiny");
    EXPECT_EQ(r.model->inputResolution(), 64);
    ASSERT_EQ(r.model->layers().size(), 3u);
    EXPECT_EQ(r.model->layer("c1").co, 16);
    EXPECT_TRUE(r.model->layer("d1").isDepthwise());
    EXPECT_EQ(r.model->layer("d1").stride, 2);
    EXPECT_TRUE(r.model->layer("head").isPointWise());
}

TEST(ParseModel, CommentsAndBlankLines)
{
    const ParseResult r = parseModelString(
        "\n"
        "   # leading comment\n"
        "model m 32   # trailing comment\n"
        "\n"
        "conv a 8 8 4 3 3 3 1 # another\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.model->layers().size(), 1u);
}

TEST(ParseModel, ErrorsCarryLineNumbers)
{
    EXPECT_NE(parseModelString("conv a 8 8 4 3 3 3 1\n")
                  .error.find("line 1"),
              std::string::npos); // model line missing
    EXPECT_NE(parseModelString("model m 32\nconv a 8 8\n")
                  .error.find("line 2"),
              std::string::npos); // wrong arity
    EXPECT_NE(parseModelString("model m 32\nconv a 8 8 x 3 3 3 1\n")
                  .error.find("bad integer"),
              std::string::npos);
    EXPECT_NE(parseModelString("model m 32\nblah a 1 2\n")
                  .error.find("unknown layer kind"),
              std::string::npos);
    EXPECT_NE(parseModelString("model m 32\nmodel n 32\n")
                  .error.find("duplicate"),
              std::string::npos);
}

TEST(ParseModel, RejectsEmptyAndZeroes)
{
    EXPECT_FALSE(parseModelString("").ok());
    EXPECT_FALSE(parseModelString("model m 32\n").ok());
    EXPECT_FALSE(
        parseModelString("model m 32\nconv a 0 8 4 3 3 3 1\n").ok());
    EXPECT_FALSE(
        parseModelString("model m 32\nconv a -4 8 4 3 3 3 1\n").ok());
}

TEST(ParseModel, FileErrorsMentionPath)
{
    const ParseResult r = parseModelFile("/nonexistent/nn.model");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("nonexistent"), std::string::npos);
}

TEST(WriteModelText, RoundTripsZooModels)
{
    for (const Model &m :
         {makeVgg16(224), makeResNet50(224), makeMobileNetV2(224)}) {
        const std::string text = writeModelText(m);
        const ParseResult r = parseModelString(text);
        ASSERT_TRUE(r.ok()) << m.name() << ": " << r.error;
        ASSERT_EQ(r.model->layers().size(), m.layers().size());
        for (size_t i = 0; i < m.layers().size(); ++i) {
            const ConvLayer &a = m.layers()[i];
            const ConvLayer &b = r.model->layers()[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.ho, b.ho);
            EXPECT_EQ(a.wo, b.wo);
            EXPECT_EQ(a.co, b.co);
            EXPECT_EQ(a.ci, b.ci);
            EXPECT_EQ(a.kh, b.kh);
            EXPECT_EQ(a.stride, b.stride);
            EXPECT_EQ(a.groups, b.groups);
            EXPECT_EQ(a.macs(), b.macs());
        }
    }
}

namespace {

/** Field-by-field layer equality (ConvLayer has no operator==). */
void
expectLayersEqual(const ConvLayer &a, const ConvLayer &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.ho, b.ho);
    EXPECT_EQ(a.wo, b.wo);
    EXPECT_EQ(a.co, b.co);
    EXPECT_EQ(a.ci, b.ci);
    EXPECT_EQ(a.kh, b.kh);
    EXPECT_EQ(a.kw, b.kw);
    EXPECT_EQ(a.stride, b.stride);
    EXPECT_EQ(a.groups, b.groups);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.gemmM, b.gemmM);
    EXPECT_EQ(a.gemmN, b.gemmN);
    EXPECT_EQ(a.gemmK, b.gemmK);
    EXPECT_EQ(a.postOps, b.postOps);
}

/** parse(write(m)) must reproduce m exactly. */
void
expectRoundTrips(const Model &m)
{
    const ParseResult r = parseModelString(writeModelText(m));
    ASSERT_TRUE(r.ok()) << m.name() << ": " << r.error;
    EXPECT_EQ(r.model->name(), m.name());
    EXPECT_EQ(r.model->inputResolution(), m.inputResolution());
    ASSERT_EQ(r.model->layers().size(), m.layers().size());
    for (size_t i = 0; i < m.layers().size(); ++i)
        expectLayersEqual(m.layers()[i], r.model->layers()[i]);
}

} // namespace

TEST(ParseModel, DepthwiseNonSquareKernelRoundTrips)
{
    // Regression: the writer used to emit a single kernel column for
    // dwconv, silently squaring non-square kernels on the way back in.
    Model m("t", 32);
    m.addLayer(makeDepthwiseConv("dw_rect", 16, 16, 32, 3, 5, 1));
    m.addLayer(makeDepthwiseConv("dw_sq", 8, 8, 64, 3, 2));
    const std::string text = writeModelText(m);
    EXPECT_NE(text.find("dwconv dw_rect 16 16 32 3 5 1"),
              std::string::npos)
        << text;
    expectRoundTrips(m);
}

TEST(ParseModel, DepthwiseLegacySquareFormStillParses)
{
    const ParseResult r = parseModelString(
        "model t 32\n"
        "dwconv dw 16 16 32 3 1\n");
    ASSERT_TRUE(r.ok()) << r.error;
    const ConvLayer &l = r.model->layers()[0];
    EXPECT_EQ(l.kh, 3);
    EXPECT_EQ(l.kw, 3);
    EXPECT_TRUE(l.isDepthwise());
}

TEST(ParseModel, DepthwiseRejectsWrongArity)
{
    EXPECT_FALSE(
        parseModelString("model t 32\ndwconv dw 16 16 32 3\n").ok());
    EXPECT_FALSE(
        parseModelString("model t 32\ndwconv dw 16 16 32 3 3 1 9\n")
            .ok());
}

TEST(WriteModelText, RoundTripPropertyOverFullZoo)
{
    // Every built-in model must survive write -> parse exactly; this
    // covers dense conv, depthwise (MobileNetV2), fc and the lowered
    // GEMM / attention layers of the transformer zoo.
    for (const Model &m :
         {makeAlexNet(224), makeVgg16(224), makeResNet50(224),
          makeDarkNet19(224), makeMobileNetV2(224), makeBertBase(128),
          makeVitB16(224)}) {
        expectRoundTrips(m);
    }
}

TEST(ParseModel, GemmBatchAndAttentionDirectives)
{
    const ParseResult r = parseModelString(
        "model t 32\n"
        "gemm g0 15 64 96\n"       // prime-ish M -> 3x5 plane
        "batch 4\n"
        "gemm g1 48 64 96 2\n"     // postops carried
        "attention a 24 96 4\n"    // expands to 4 gemm layers
        "batch 1\n"
        "fc head 10 96\n");
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.model->layers().size(), 7u);
    const ConvLayer &g0 = r.model->layer("g0");
    EXPECT_EQ(g0.op, LayerOp::Gemm);
    EXPECT_EQ(g0.gemmM, 15);
    EXPECT_EQ(static_cast<int64_t>(g0.ho) * g0.wo, 15);
    EXPECT_EQ(g0.batch, 1);
    const ConvLayer &g1 = r.model->layer("g1");
    EXPECT_EQ(g1.batch, 4);
    EXPECT_EQ(g1.postOps, 2);
    // Heads fold into the per-head GEMMs' batch; projections keep the
    // sequence batch.
    EXPECT_EQ(r.model->layer("a_qkv").batch, 4);
    EXPECT_EQ(r.model->layer("a_scores").batch, 16);
    EXPECT_EQ(r.model->layer("a_scores").postOps, 3);
    EXPECT_EQ(r.model->layer("a_ctx").batch, 16);
    EXPECT_EQ(r.model->layer("a_ctx").gemmN, 24);
    EXPECT_EQ(r.model->layer("a_proj").batch, 4);
    EXPECT_EQ(r.model->layer("head").batch, 1);
    expectRoundTrips(*r.model);
}

TEST(ParseModel, GemmAndAttentionErrors)
{
    EXPECT_FALSE(parseModelString("model t 32\ngemm g 8 8\n").ok());
    EXPECT_FALSE(
        parseModelString("model t 32\ngemm g 8 8 8 0\n").ok());
    EXPECT_FALSE(parseModelString("model t 32\nbatch 0\n").ok());
    EXPECT_FALSE(parseModelString("model t 32\nbatch\n").ok());
    EXPECT_NE(parseModelString("model t 32\nattention a 16 96 5\n")
                  .error.find("divisible"),
              std::string::npos);
    EXPECT_FALSE(
        parseModelString("model t 32\nattention a 16 96\n").ok());
}

TEST(WriteModelText, RoundTripPropertyOverRandomModels)
{
    // Seeded property test: randomized dense / depthwise / fc mixes.
    // Dense convs keep ho >= 2 so they cannot collide with the fc
    // written form (fc is re-parsed with stride 1 by definition).
    std::mt19937 rng(20260806u);
    auto pick = [&](int lo, int hi) {
        return lo + static_cast<int>(rng() % (hi - lo + 1));
    };
    for (int trial = 0; trial < 50; ++trial) {
        Model m("rand" + std::to_string(trial), pick(16, 512));
        const int layers = pick(1, 12);
        for (int i = 0; i < layers; ++i) {
            const std::string name = "l" + std::to_string(i);
            switch (pick(0, 4)) {
              case 0:
                m.addLayer(makeConv(name, pick(2, 64), pick(1, 64),
                                    pick(1, 512), pick(1, 512),
                                    pick(1, 7), pick(1, 7),
                                    pick(1, 3)));
                break;
              case 1:
                m.addLayer(makeDepthwiseConv(
                    name, pick(1, 64), pick(1, 64), pick(1, 512),
                    pick(1, 7), pick(1, 7), pick(1, 3)));
                break;
              case 2:
                m.addLayer(makeGemm(name, pick(1, 512), pick(1, 512),
                                    pick(1, 512), pick(1, 16),
                                    pick(0, 4)));
                break;
              case 3: {
                const int heads = pick(1, 8);
                appendAttentionBlock(m, name, pick(1, 64), 16 * heads,
                                     heads, pick(1, 8));
                break;
              }
              default:
                m.addLayer(makeFullyConnected(name, pick(1, 4096),
                                              pick(1, 4096)));
                break;
            }
        }
        expectRoundTrips(m);
    }
}
