/**
 * @file
 * Tests for the text-format model parser and writer.
 */

#include <gtest/gtest.h>

#include "nn/parser.hpp"

using namespace nnbaton;

TEST(ParseModel, BasicDescription)
{
    const ParseResult r = parseModelString(
        "# a tiny model\n"
        "model tiny 64\n"
        "conv c1 32 32 16 3 3 3 1\n"
        "dwconv d1 16 16 16 3 2\n"
        "fc head 10 16\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.model->name(), "tiny");
    EXPECT_EQ(r.model->inputResolution(), 64);
    ASSERT_EQ(r.model->layers().size(), 3u);
    EXPECT_EQ(r.model->layer("c1").co, 16);
    EXPECT_TRUE(r.model->layer("d1").isDepthwise());
    EXPECT_EQ(r.model->layer("d1").stride, 2);
    EXPECT_TRUE(r.model->layer("head").isPointWise());
}

TEST(ParseModel, CommentsAndBlankLines)
{
    const ParseResult r = parseModelString(
        "\n"
        "   # leading comment\n"
        "model m 32   # trailing comment\n"
        "\n"
        "conv a 8 8 4 3 3 3 1 # another\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.model->layers().size(), 1u);
}

TEST(ParseModel, ErrorsCarryLineNumbers)
{
    EXPECT_NE(parseModelString("conv a 8 8 4 3 3 3 1\n")
                  .error.find("line 1"),
              std::string::npos); // model line missing
    EXPECT_NE(parseModelString("model m 32\nconv a 8 8\n")
                  .error.find("line 2"),
              std::string::npos); // wrong arity
    EXPECT_NE(parseModelString("model m 32\nconv a 8 8 x 3 3 3 1\n")
                  .error.find("bad integer"),
              std::string::npos);
    EXPECT_NE(parseModelString("model m 32\nblah a 1 2\n")
                  .error.find("unknown layer kind"),
              std::string::npos);
    EXPECT_NE(parseModelString("model m 32\nmodel n 32\n")
                  .error.find("duplicate"),
              std::string::npos);
}

TEST(ParseModel, RejectsEmptyAndZeroes)
{
    EXPECT_FALSE(parseModelString("").ok());
    EXPECT_FALSE(parseModelString("model m 32\n").ok());
    EXPECT_FALSE(
        parseModelString("model m 32\nconv a 0 8 4 3 3 3 1\n").ok());
    EXPECT_FALSE(
        parseModelString("model m 32\nconv a -4 8 4 3 3 3 1\n").ok());
}

TEST(ParseModel, FileErrorsMentionPath)
{
    const ParseResult r = parseModelFile("/nonexistent/nn.model");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("nonexistent"), std::string::npos);
}

TEST(WriteModelText, RoundTripsZooModels)
{
    for (const Model &m :
         {makeVgg16(224), makeResNet50(224), makeMobileNetV2(224)}) {
        const std::string text = writeModelText(m);
        const ParseResult r = parseModelString(text);
        ASSERT_TRUE(r.ok()) << m.name() << ": " << r.error;
        ASSERT_EQ(r.model->layers().size(), m.layers().size());
        for (size_t i = 0; i < m.layers().size(); ++i) {
            const ConvLayer &a = m.layers()[i];
            const ConvLayer &b = r.model->layers()[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.ho, b.ho);
            EXPECT_EQ(a.wo, b.wo);
            EXPECT_EQ(a.co, b.co);
            EXPECT_EQ(a.ci, b.ci);
            EXPECT_EQ(a.kh, b.kh);
            EXPECT_EQ(a.stride, b.stride);
            EXPECT_EQ(a.groups, b.groups);
            EXPECT_EQ(a.macs(), b.macs());
        }
    }
}
