/**
 * @file
 * Unit tests for common utilities: arithmetic helpers, factor
 * enumeration, string formatting and the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/util.hpp"

using namespace nnbaton;

TEST(CeilDiv, ExactAndInexact)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 5), 1);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(5, 1), 5);
}

TEST(RoundUp, MultiplesAndRemainders)
{
    EXPECT_EQ(roundUp(12, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
    EXPECT_EQ(roundUp(1, 8), 8);
}

TEST(IsPow2, Values)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(-4));
    EXPECT_FALSE(isPow2(6));
}

TEST(Divisors, SmallNumbers)
{
    EXPECT_EQ(divisors(1), std::vector<int>({1}));
    EXPECT_EQ(divisors(12), std::vector<int>({1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(divisors(16), std::vector<int>({1, 2, 4, 8, 16}));
}

TEST(FactorPairs, ProductInvariant)
{
    for (int n : {1, 2, 8, 12, 36, 64}) {
        for (auto [a, b] : factorPairs(n)) {
            EXPECT_EQ(a * b, n) << "n=" << n;
            EXPECT_GE(a, 1);
            EXPECT_GE(b, 1);
        }
    }
}

TEST(FactorPairs, CountMatchesDivisors)
{
    EXPECT_EQ(factorPairs(36).size(), divisors(36).size());
}

TEST(SizeLiterals, KbMb)
{
    EXPECT_EQ(1_KB, 1024);
    EXPECT_EQ(64_KB, 65536);
    EXPECT_EQ(1_MB, 1048576);
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%.2f", 1.2345), "1.23");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(TextTable, AlignedOutputContainsCells)
{
    TextTable t({"A", "LongHeader"});
    t.newRow().add("x").add(static_cast<int64_t>(7));
    t.newRow().add("yy").add(3.14159, 2);
    std::ostringstream ss;
    t.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("LongHeader"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.newRow().add("1").add("2");
    std::ostringstream ss;
    t.printCsv(ss);
    EXPECT_EQ(ss.str(), "a,b\n1,2\n");
}

TEST(TextTable, AddWithoutNewRowStartsRow)
{
    TextTable t({"a"});
    t.add("cell");
    EXPECT_EQ(t.rowCount(), 1u);
}
