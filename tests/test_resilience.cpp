/**
 * @file
 * Tests for the resilient-sweep machinery: Status propagation,
 * cooperative cancellation, poisoned-point quarantine, checkpoint
 * round-trips and the kill/resume determinism guarantee.
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include <cstdio>
#include <random>
#include <string>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"
#include "verif/fault.hpp"

using namespace nnbaton;

namespace {

Model
miniModel()
{
    Model m("mini", 64);
    m.addLayer(makeConv("a", 32, 32, 128, 64, 3, 3, 1));
    m.addLayer(makeConv("b", 16, 16, 256, 128, 1, 1, 1));
    return m;
}

DseOptions
sweepOptions()
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    opt.threads = 2;
    return opt;
}

std::string
tmpPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** Exact (bit-for-bit) equality of two evaluated design points. */
void
expectSamePoint(const DesignPoint &a, const DesignPoint &b)
{
    EXPECT_EQ(a.compute.chiplets, b.compute.chiplets);
    EXPECT_EQ(a.compute.cores, b.compute.cores);
    EXPECT_EQ(a.compute.lanes, b.compute.lanes);
    EXPECT_EQ(a.compute.vectorSize, b.compute.vectorSize);
    EXPECT_EQ(a.memory.ol1Bytes, b.memory.ol1Bytes);
    EXPECT_EQ(a.memory.al1Bytes, b.memory.al1Bytes);
    EXPECT_EQ(a.memory.wl1Bytes, b.memory.wl1Bytes);
    EXPECT_EQ(a.memory.al2Bytes, b.memory.al2Bytes);
    EXPECT_EQ(a.area.total(), b.area.total());
    EXPECT_EQ(a.clockGhz, b.clockGhz);
    EXPECT_EQ(a.cost.cycles, b.cost.cycles);
    EXPECT_EQ(a.cost.energy.total(), b.cost.energy.total());
    EXPECT_EQ(a.cost.energy.dram, b.cost.energy.dram);
    EXPECT_EQ(a.cost.energy.mac, b.cost.energy.mac);
    EXPECT_EQ(a.edp(), b.edp());
    ASSERT_EQ(a.cost.layers.size(), b.cost.layers.size());
    for (size_t i = 0; i < a.cost.layers.size(); ++i) {
        EXPECT_EQ(a.cost.layers[i].cycles, b.cost.layers[i].cycles);
        EXPECT_EQ(a.cost.layers[i].energy.total(),
                  b.cost.layers[i].energy.total());
    }
}

void
expectSameResult(const DseResult &a, const DseResult &b)
{
    EXPECT_EQ(a.swept, b.swept);
    EXPECT_EQ(a.areaRejected, b.areaRejected);
    EXPECT_EQ(a.infeasible, b.infeasible);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); ++i)
        expectSamePoint(a.points[i], b.points[i]);
    ASSERT_EQ(a.bestEdp().has_value(), b.bestEdp().has_value());
    if (a.bestEdp())
        EXPECT_EQ(*a.bestEdp(), *b.bestEdp());
    ASSERT_EQ(a.bestEnergy().has_value(), b.bestEnergy().has_value());
    if (a.bestEnergy())
        EXPECT_EQ(*a.bestEnergy(), *b.bestEnergy());
}

/** RAII so a failing test cannot leave a fault plan armed. */
struct ScopedFaultPlan
{
    explicit ScopedFaultPlan(const verif::FaultPlan &plan)
    {
        verif::armFaultPlan(plan);
    }
    ~ScopedFaultPlan() { verif::disarmFaultPlan(); }
};

} // namespace

TEST(Status, CodesMessagesAndContext)
{
    const Status ok = Status::okStatus();
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.toString(), "OK");
    EXPECT_TRUE(ok.withContext("reading").ok());

    const Status s = errInvalidArgument("bad value %d", 7);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(s.message(), "bad value 7");
    EXPECT_NE(s.toString().find("INVALID_ARGUMENT"), std::string::npos);

    const Status chained =
        s.withContext("parsing --threads").withContext("startup");
    EXPECT_EQ(chained.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(chained.message(),
              "startup: parsing --threads: bad value 7");
}

TEST(Status, StatusOrValueAndError)
{
    StatusOr<int> good(42);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_TRUE(good.status().ok());

    StatusOr<int> bad(errNotFound("no such thing"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::NotFound);
    expectStatusThrow([&] { bad.value(); }, "no such thing");
}

TEST(Status, ThrowStatusUpgradesOk)
{
    // Throwing OK would silently drop an error path; it becomes an
    // Internal error instead.
    try {
        throwStatus(Status::okStatus());
        ADD_FAILURE() << "throwStatus returned";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::Internal);
    }
}

TEST(CancelToken, FlagAndDeadline)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_TRUE(token.toStatus().ok());

    token.requestCancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.toStatus().code(), StatusCode::Cancelled);

    token.reset();
    EXPECT_FALSE(token.cancelled());

    token.setDeadlineAfter(-1.0); // already expired
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.toStatus().code(), StatusCode::DeadlineExceeded);

    token.setDeadlineAfter(3600.0); // far future
    EXPECT_FALSE(token.cancelled());
    token.reset();
}

TEST(ResilientSweep, PoisonedPointIsQuarantined)
{
    const Model model = miniModel();
    const DseOptions opt = sweepOptions();
    const DseResult fresh = explore(model, opt, defaultTech());
    ASSERT_GT(fresh.swept, 4);

    verif::FaultPlan plan;
    plan.failAtPoint = 3;
    ScopedFaultPlan armed(plan);

    const DseResult r = explore(model, opt, defaultTech());
    EXPECT_TRUE(r.complete);
    ASSERT_EQ(r.poisoned.size(), 1u);
    EXPECT_EQ(r.poisoned[0].sweepIndex, 3);
    EXPECT_NE(r.poisoned[0].error.find("injected fault"),
              std::string::npos);
    EXPECT_NE(r.poisoned[0].error.find("INTERNAL"), std::string::npos);
    // Every other point is still evaluated.
    EXPECT_EQ(r.swept, fresh.swept);
    EXPECT_EQ(static_cast<int64_t>(r.points.size()) + r.areaRejected +
                  r.infeasible,
              fresh.swept - 1);
}

TEST(ResilientSweep, StrictModeRethrows)
{
    verif::FaultPlan plan;
    plan.failAtPoint = 2;
    ScopedFaultPlan armed(plan);

    DseOptions opt = sweepOptions();
    opt.strict = true;
    expectStatusThrow(
        [&] { explore(miniModel(), opt, defaultTech()); },
        "injected fault");
}

TEST(ResilientSweep, SearchBlockFaultIsQuarantinedToo)
{
    // A fault thrown deep inside pickBest() unwinds through
    // evaluatePoint and is quarantined like any other worker error.
    verif::FaultPlan plan;
    plan.failAtSearchBlock = 0;
    ScopedFaultPlan armed(plan);

    DseOptions opt = sweepOptions();
    opt.threads = 1; // deterministic victim
    const DseResult r = explore(miniModel(), opt, defaultTech());
    EXPECT_TRUE(r.complete);
    ASSERT_EQ(r.poisoned.size(), 1u);
    EXPECT_NE(r.poisoned[0].error.find("inside mapping search"),
              std::string::npos);
}

TEST(ResilientSweep, ExpiredDeadlineSkipsEverything)
{
    CancelToken token;
    token.setDeadlineAfter(-1.0);

    DseOptions opt = sweepOptions();
    opt.cancel = &token;
    const DseResult r = explore(miniModel(), opt, defaultTech());
    EXPECT_FALSE(r.complete);
    EXPECT_EQ(r.skipped, r.swept);
    EXPECT_TRUE(r.points.empty());
}

TEST(Checkpoint, RoundTripAndFingerprint)
{
    const Model model = miniModel();
    const DseOptions opt = sweepOptions();
    const std::string path = tmpPath("ckpt_roundtrip.json");
    std::remove(path.c_str());

    DseOptions with_ckpt = opt;
    with_ckpt.checkpointPath = path;
    with_ckpt.checkpointEvery = 4;
    const DseResult r = explore(model, with_ckpt, defaultTech());
    EXPECT_TRUE(r.complete);

    const SweepCheckpoint ckpt = loadSweepCheckpoint(path).value();
    EXPECT_TRUE(ckpt.complete);
    EXPECT_EQ(ckpt.fingerprint, sweepFingerprint(model, opt));
    EXPECT_EQ(static_cast<int64_t>(ckpt.entries.size()), r.swept);

    // Resuming a complete checkpoint re-evaluates nothing and
    // reproduces the result bit-for-bit.
    DseOptions resume = opt;
    resume.resumePath = path;
    const DseResult again = explore(model, resume, defaultTech());
    EXPECT_EQ(again.resumed, r.swept);
    expectSameResult(r, again);
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingAndMalformedFiles)
{
    EXPECT_EQ(loadSweepCheckpoint(tmpPath("nope_missing.json"))
                  .status()
                  .code(),
              StatusCode::NotFound);

    const std::string path = tmpPath("ckpt_bad.json");
    FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"format\": \"something-else\"}", f);
    std::fclose(f);
    EXPECT_EQ(loadSweepCheckpoint(path).status().code(),
              StatusCode::DataLoss);
    std::remove(path.c_str());
}

TEST(Checkpoint, FingerprintMismatchRefusesResume)
{
    const Model model = miniModel();
    const std::string path = tmpPath("ckpt_mismatch.json");

    DseOptions opt = sweepOptions();
    opt.checkpointPath = path;
    explore(model, opt, defaultTech());

    DseOptions other = sweepOptions();
    other.objective = Objective::MinEdp; // scores differently
    other.resumePath = path;
    expectStatusThrow(
        [&] { explore(model, other, defaultTech()); },
        "different sweep");
    std::remove(path.c_str());
}

TEST(Checkpoint, InjectedWriteFailureDoesNotAbortSweep)
{
    const std::string path = tmpPath("ckpt_failwrite.json");
    std::remove(path.c_str());

    verif::FaultPlan plan;
    plan.failNextCheckpointWrite = true;
    ScopedFaultPlan armed(plan);

    DseOptions opt = sweepOptions();
    opt.checkpointPath = path;
    opt.checkpointEvery = 4;
    const DseResult r = explore(miniModel(), opt, defaultTech());
    // The first flush fails (and is only counted), later flushes
    // succeed: the sweep completes and the final snapshot is whole.
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.poisoned.empty());
    const SweepCheckpoint ckpt = loadSweepCheckpoint(path).value();
    EXPECT_TRUE(ckpt.complete);
    EXPECT_EQ(static_cast<int64_t>(ckpt.entries.size()), r.swept);
    std::remove(path.c_str());
}

TEST(Checkpoint, KillResumeDeterminism)
{
    const Model model = miniModel();
    const DseOptions base = sweepOptions();
    const std::string path = tmpPath("ckpt_killresume.json");
    std::remove(path.c_str());

    // Reference: one uninterrupted sweep.
    const DseResult reference = explore(model, base, defaultTech());
    ASSERT_GT(reference.swept, 4);

    // Interrupted run: cancel after a seeded-random number of
    // completed points, checkpointing at every boundary.
    std::mt19937 gen(0xba70);
    std::uniform_int_distribution<int64_t> d(1, reference.swept - 2);
    const int64_t cut = d(gen);

    verif::FaultPlan plan;
    plan.cancelAfterPoints = cut;
    CancelToken token;
    {
        ScopedFaultPlan armed(plan);
        DseOptions interrupted = base;
        interrupted.checkpointPath = path;
        interrupted.checkpointEvery = 1;
        interrupted.cancel = &token;
        const DseResult partial =
            explore(model, interrupted, defaultTech());
        EXPECT_FALSE(partial.complete);
        EXPECT_GT(partial.skipped, 0);
    }

    const SweepCheckpoint ckpt = loadSweepCheckpoint(path).value();
    EXPECT_FALSE(ckpt.complete);
    EXPECT_GE(static_cast<int64_t>(ckpt.entries.size()), cut);
    EXPECT_LT(static_cast<int64_t>(ckpt.entries.size()),
              reference.swept);

    // Resume with a different thread count: identical points,
    // classification counts and winner.
    DseOptions resumed = base;
    resumed.resumePath = path;
    resumed.threads = 1;
    const DseResult full = explore(model, resumed, defaultTech());
    EXPECT_TRUE(full.complete);
    EXPECT_EQ(full.resumed,
              static_cast<int64_t>(ckpt.entries.size()));
    expectSameResult(reference, full);
    std::remove(path.c_str());
}
