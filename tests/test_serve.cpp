/**
 * @file
 * Tests for the persistent evaluation service: wire-protocol parsing,
 * the transport-free EvalService, and the Unix-socket Server under
 * concurrent clients.
 *
 * The acceptance bar: responses bit-identical to the equivalent
 * one-shot flow, warm cache hits across requests, and no aliasing
 * between requests carrying different technology models.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "baton/baton.hpp"
#include "baton/export.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "nn/parser.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "verif/fault.hpp"

#include <fstream>

using namespace nnbaton;
using namespace nnbaton::serve;

namespace {

// A workload small enough for an exhaustive search per request, and
// wide enough to be feasible on the paper's case-study hardware.
const char *kTinyModel = "model tiny 32\\n"
                         "conv c1 8 8 64 16 3 3 1\\n"
                         "fc head 64 128\\n";
const char *kTinyModelRaw = "model tiny 32\n"
                            "conv c1 8 8 64 16 3 3 1\n"
                            "fc head 64 128\n";
// A second shape so the daemon sees more than one key.
const char *kTinyModel2 = "model tiny2 32\\n"
                          "conv c1 12 12 64 24 3 3 1\\n";
const char *kTinyModel2Raw = "model tiny2 32\n"
                             "conv c1 12 12 64 24 3 3 1\n";

/** The bytes the one-shot CLI writes for this post query (--no-obs). */
std::string
expectedPost(const std::string &modelText, const TechnologyModel &tech)
{
    const ParseResult parsed = parseModelString(modelText);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    SearchOptions search;
    search.threads = 1;
    PostDesignFlow flow(caseStudyConfig(), tech,
                        SearchEffort::Exhaustive, Objective::MinEnergy,
                        search);
    const PostDesignReport report = flow.run(*parsed.model);
    std::ostringstream ss;
    exportPostDesign(report, ss, ExportOptions::lean());
    std::string s = ss.str();
    while (!s.empty() && s.back() == '\n')
        s.pop_back();
    return s;
}

/** Connect to the daemon, send one line, read one response line. */
std::string
roundTrip(const std::string &socketPath, std::string request)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(socketPath.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
    request.push_back('\n');
    size_t off = 0;
    while (off < request.size()) {
        const ssize_t n = ::send(fd, request.data() + off,
                                 request.size() - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        EXPECT_GT(n, 0) << std::strerror(errno);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    std::string buffer;
    char chunk[4096];
    while (buffer.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    const size_t nl = buffer.find('\n');
    return nl == std::string::npos ? buffer : buffer.substr(0, nl);
}

std::string
uniqueSocketPath(const char *tag)
{
    return "/tmp/nnb-test-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".sock";
}

bool
isErrorEnvelope(const std::string &response, const char *code)
{
    return response.rfind("{\"ok\":false", 0) == 0 &&
           response.find(std::string("\"code\":\"") + code + "\"") !=
               std::string::npos;
}

} // namespace

// ---------------------------------------------------------------------
// Protocol parsing.
// ---------------------------------------------------------------------

TEST(ServeProtocol, ParsesFullPostRequest)
{
    const auto r = parseRequest(
        "{\"op\":\"post\",\"model\":\"alexnet\",\"resolution\":512,"
        "\"config\":{\"chiplets\":2,\"al2Bytes\":32768},"
        "\"tech\":{\"dramEnergyPerBit\":4.5,\"frequencyGhz\":1},"
        "\"objective\":\"edp\",\"deadlineSeconds\":12.5}");
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const ServeRequest &req = r.value();
    EXPECT_EQ(req.op, Op::Post);
    EXPECT_EQ(req.model, "alexnet");
    EXPECT_EQ(req.resolution, 512);
    EXPECT_EQ(req.config.package.chiplets, 2);
    EXPECT_EQ(req.config.chiplet.al2Bytes, 32768);
    // Untouched members keep the paper's case-study values.
    EXPECT_EQ(req.config.chiplet.cores, caseStudyConfig().chiplet.cores);
    EXPECT_DOUBLE_EQ(req.tech.dramEnergyPerBit, 4.5);
    EXPECT_DOUBLE_EQ(req.tech.frequencyGhz, 1.0);
    EXPECT_DOUBLE_EQ(req.tech.macEnergyPerOp,
                     defaultTech().macEnergyPerOp);
    EXPECT_TRUE(req.edpObjective);
    EXPECT_DOUBLE_EQ(req.deadlineSeconds, 12.5);
}

TEST(ServeProtocol, RejectsMalformedAndUnknown)
{
    EXPECT_FALSE(parseRequest("{not json").ok());
    EXPECT_FALSE(parseRequest("[1,2]").ok());
    EXPECT_FALSE(parseRequest("{\"model\":\"vgg16\"}").ok()); // no op
    EXPECT_FALSE(parseRequest("{\"op\":\"dance\"}").ok());
    EXPECT_FALSE(
        parseRequest("{\"op\":\"post\",\"mdoel\":\"vgg16\"}").ok());
    EXPECT_FALSE(
        parseRequest(
            "{\"op\":\"post\",\"config\":{\"chiplts\":4}}")
            .ok());
    EXPECT_FALSE(
        parseRequest("{\"op\":\"post\",\"tech\":{\"dramEnergyPerBit\":"
                     "-1}}")
            .ok());
    EXPECT_FALSE(
        parseRequest("{\"op\":\"post\",\"resolution\":224.5}").ok());
    // model and modelText are mutually exclusive.
    EXPECT_FALSE(parseRequest("{\"op\":\"post\",\"model\":\"vgg16\","
                              "\"modelText\":\"model m 32\"}")
                     .ok());
}

TEST(ServeProtocol, ErrorResponseShape)
{
    const std::string line =
        errorResponse(errInvalidArgument("bad thing: %d", 7));
    EXPECT_TRUE(isErrorEnvelope(line, "INVALID_ARGUMENT")) << line;
    EXPECT_NE(line.find("bad thing: 7"), std::string::npos);
}

// ---------------------------------------------------------------------
// EvalService (no transport).
// ---------------------------------------------------------------------

TEST(EvalService, PingStatsAndShutdown)
{
    EvalService service{ServiceOptions{}};
    EXPECT_EQ(service.handleLine("{\"op\":\"ping\"}").response,
              "{\"pong\":true}");
    const HandleResult stats =
        service.handleLine("{\"op\":\"stats\"}");
    EXPECT_FALSE(stats.shutdown);
    EXPECT_NE(stats.response.find("\"requests\":2"), std::string::npos)
        << stats.response;
    EXPECT_NE(stats.response.find("\"cache\":"), std::string::npos);
    const HandleResult bye =
        service.handleLine("{\"op\":\"shutdown\"}");
    EXPECT_TRUE(bye.shutdown);
    EXPECT_EQ(bye.response, "{\"shuttingDown\":true}");
}

TEST(EvalService, StructuredErrorsNeverThrow)
{
    EvalService service{ServiceOptions{}};
    EXPECT_TRUE(isErrorEnvelope(service.handleLine("garbage").response,
                                "INVALID_ARGUMENT"));
    EXPECT_TRUE(isErrorEnvelope(
        service
            .handleLine("{\"op\":\"post\",\"model\":\"resnet51\"}")
            .response,
        "INVALID_ARGUMENT"));
    EXPECT_TRUE(isErrorEnvelope(
        service
            .handleLine("{\"op\":\"post\",\"modelText\":\"model m\"}")
            .response,
        "INVALID_ARGUMENT"));
}

TEST(EvalService, PostDeadlineExceededIsStructured)
{
    EvalService service{ServiceOptions{}};
    // A deadline far below any realistic search time: the evaluation
    // must abort cooperatively and report the status, not hang or die.
    const std::string response =
        service
            .handleLine("{\"op\":\"post\",\"model\":\"resnet50\","
                        "\"deadlineSeconds\":1e-9}")
            .response;
    EXPECT_TRUE(isErrorEnvelope(response, "DEADLINE_EXCEEDED"))
        << response;
}

TEST(EvalService, PostMatchesOneShotFlowBitForBit)
{
    EvalService service{ServiceOptions{}};
    const std::string request =
        std::string("{\"op\":\"post\",\"modelText\":\"") + kTinyModel +
        "\"}";
    const std::string served = service.handleLine(request).response;
    EXPECT_EQ(served, expectedPost(kTinyModelRaw, defaultTech()));

    // Same request again: answered from the warm cache, same bytes.
    const int64_t missesAfterFirst = service.cache().misses();
    EXPECT_GT(missesAfterFirst, 0);
    const std::string again = service.handleLine(request).response;
    EXPECT_EQ(again, served);
    EXPECT_GT(service.cache().hits(), 0);
    EXPECT_EQ(service.cache().misses(), missesAfterFirst);
}

TEST(EvalService, SharedCacheKeepsTechModelsApart)
{
    // The headline bugfix: one warm cache, two technology models —
    // each request must get the energies of a fresh single-tech run.
    EvalService service{ServiceOptions{}};
    const std::string base =
        std::string("{\"op\":\"post\",\"modelText\":\"") + kTinyModel +
        "\"";
    const std::string hotTech =
        ",\"tech\":{\"dramEnergyPerBit\":26.25}";

    const std::string a = service.handleLine(base + "}").response;
    const std::string b =
        service.handleLine(base + hotTech + "}").response;

    TechnologyModel hot = defaultTech();
    hot.dramEnergyPerBit = 26.25;
    EXPECT_EQ(a, expectedPost(kTinyModelRaw, defaultTech()));
    EXPECT_EQ(b, expectedPost(kTinyModelRaw, hot));
    EXPECT_NE(a, b);
}

TEST(EvalService, PreSweepAnswersAndReusesCache)
{
    EvalService service{ServiceOptions{}};
    const std::string request =
        std::string("{\"op\":\"pre\",\"modelText\":\"") + kTinyModel +
        "\",\"macs\":512}";
    const std::string first = service.handleLine(request).response;
    ASSERT_FALSE(first.empty());
    EXPECT_NE(first.rfind("{\"ok\":false", 0), 0u) << first;
    EXPECT_NE(first.find("\"recommended\""), std::string::npos)
        << first;
    // The sweep reuses the shared cache; a second run is all hits and
    // returns the same bytes.
    const int64_t misses = service.cache().misses();
    const std::string second = service.handleLine(request).response;
    EXPECT_EQ(first, second);
    EXPECT_EQ(service.cache().misses(), misses);
}

// ---------------------------------------------------------------------
// Access log, SLO accounting, metrics/flight ops, and the on-error
// flight-recorder dump.
// ---------------------------------------------------------------------

namespace {

std::string
uniqueTempFile(const char *tag)
{
    return "/tmp/nnb-test-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".tmp";
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

} // namespace

TEST(AccessLog, LinesRoundTripThroughJsonParser)
{
    const std::string logPath = uniqueTempFile("accesslog");
    std::remove(logPath.c_str());
    {
        ServiceOptions opt;
        opt.accessLogPath = logPath;
        EvalService service{opt};
        service.handleLine("{\"op\":\"ping\"}");
        service.handleLine(
            std::string("{\"op\":\"post\",\"modelText\":\"") +
            kTinyModel + "\"}");
        service.handleLine("not json at all");
    }
    const std::vector<std::string> lines = readLines(logPath);
    std::remove(logPath.c_str());
    ASSERT_EQ(lines.size(), 3u);

    double previousRid = 0;
    for (const std::string &line : lines) {
        const JsonParseResult parsed = parseJson(line);
        ASSERT_TRUE(parsed.ok()) << parsed.error << " in: " << line;
        const JsonValue &v = parsed.value;
        // Every line carries the full audit schema.
        for (const char *key :
             {"ts", "rid", "op", "outcome", "durationUs", "bytesIn",
              "bytesOut", "cacheHits", "cacheMisses", "search"}) {
            EXPECT_NE(v.find(key), nullptr)
                << key << " missing in: " << line;
        }
        EXPECT_TRUE(v.find("ts")->isString());
        const JsonValue *rid = v.find("rid");
        ASSERT_TRUE(rid->isNumber());
        EXPECT_GT(rid->number, previousRid); // ids are fresh, ordered
        previousRid = rid->number;
        EXPECT_GE(v.find("durationUs")->number, 0.0);
        EXPECT_GT(v.find("bytesIn")->number, 0.0);
        EXPECT_GT(v.find("bytesOut")->number, 0.0);
    }

    EXPECT_EQ(parseJson(lines[0]).value.find("op")->string, "ping");
    const JsonValue post = parseJson(lines[1]).value;
    EXPECT_EQ(post.find("op")->string, "post");
    EXPECT_EQ(post.find("outcome")->string, "OK");
    EXPECT_EQ(post.find("search")->string, "exhaustive");
    EXPECT_GT(post.find("cacheMisses")->number, 0.0);
    const JsonValue bad = parseJson(lines[2]).value;
    EXPECT_EQ(bad.find("op")->string, "invalid");
    EXPECT_EQ(bad.find("outcome")->string, "INVALID_ARGUMENT");
}

TEST(AccessLog, SloViolationsAreCounted)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.counter("serve.slo.violations").reset();

    ServiceOptions opt;
    opt.sloUs = 1; // any real evaluation takes longer than 1us
    EvalService service{opt};
    EXPECT_DOUBLE_EQ(reg.gauge("serve.slo.threshold_us").value(), 1.0);
    service.handleLine(
        std::string("{\"op\":\"post\",\"modelText\":\"") + kTinyModel +
        "\"}");
    EXPECT_GT(reg.counter("serve.slo.violations").value(), 0);
}

TEST(AccessLog, MetricsOpReturnsQuantilesAndCounters)
{
    EvalService service{ServiceOptions{}};
    service.handleLine(
        std::string("{\"op\":\"post\",\"modelText\":\"") + kTinyModel +
        "\"}");
    const std::string response =
        service.handleLine("{\"op\":\"metrics\"}").response;
    const JsonParseResult parsed = parseJson(response);
    ASSERT_TRUE(parsed.ok()) << parsed.error;

    // The scrape client (`nn-baton stats`) must be able to rebuild a
    // snapshot from these bytes...
    const StatusOr<obs::MetricsSnapshot> snap =
        obs::metricsSnapshotFromJson(parsed.value);
    ASSERT_TRUE(snap.ok()) << snap.status().toString();

    // ...and the request-latency histogram answers p50/p90/p99.
    const JsonValue *hists = parsed.value.find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *latency = hists->find("serve.request_us");
    ASSERT_NE(latency, nullptr);
    for (const char *key : {"count", "min", "max", "p50", "p90", "p99"})
        EXPECT_NE(latency->find(key), nullptr) << key;
    EXPECT_GE(latency->find("count")->number, 1.0);
    const JsonValue *counters = parsed.value.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("serve.requests"), nullptr);
    EXPECT_NE(counters->find("serve.cache.miss"), nullptr);
}

TEST(AccessLog, FlightOpAnswersWithRecentSpans)
{
    EvalService service{ServiceOptions{}};
    service.handleLine("{\"op\":\"ping\"}");
    const std::string response =
        service.handleLine("{\"op\":\"flight\"}").response;
    const JsonParseResult parsed = parseJson(response);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue *rec = parsed.value.find("flightRecorder");
    ASSERT_NE(rec, nullptr);
    EXPECT_NE(rec->find("threads"), nullptr);
}

TEST(AccessLog, FailedRequestDumpsFlightRecorderWithItsRid)
{
    const std::string dumpPath = uniqueTempFile("flightdump");
    std::remove(dumpPath.c_str());
    ServiceOptions opt;
    opt.flightDumpPath = dumpPath;
    EvalService service{opt};

    // Inject a fault inside the mapping search: the very first
    // prune-block poll of this request's evaluation throws.
    verif::FaultPlan plan;
    plan.failAtSearchBlock = 1;
    verif::armFaultPlan(plan);
    const std::string response =
        service
            .handleLine(
                std::string("{\"op\":\"post\",\"modelText\":\"") +
                kTinyModel + "\"}")
            .response;
    verif::disarmFaultPlan();

    // The client sees a structured envelope carrying the request id.
    EXPECT_TRUE(isErrorEnvelope(response, "INTERNAL")) << response;
    const JsonParseResult envelope = parseJson(response);
    ASSERT_TRUE(envelope.ok()) << envelope.error;
    const JsonValue *rid = envelope.value.find("rid");
    ASSERT_NE(rid, nullptr);
    ASSERT_TRUE(rid->isNumber());
    EXPECT_GT(rid->number, 0.0);

    // The daemon left a loadable postmortem tagged with that rid...
    const std::vector<std::string> dumpLines = readLines(dumpPath);
    std::remove(dumpPath.c_str());
    ASSERT_FALSE(dumpLines.empty());
    std::string dumpText;
    for (const std::string &l : dumpLines)
        dumpText += l + "\n";
    const JsonParseResult dump = parseJson(dumpText);
    ASSERT_TRUE(dump.ok())
        << dump.error << " at offset " << dump.errorOffset;
    const JsonValue *failedRid = dump.value.find("failedRequestId");
    ASSERT_NE(failedRid, nullptr);
    EXPECT_EQ(failedRid->number, rid->number);
    EXPECT_NE(dump.value.find("error"), nullptr);

    // ...whose ring still holds spans recorded under that request.
    const JsonValue *rec = dump.value.find("flightRecorder");
    ASSERT_NE(rec, nullptr);
    const JsonValue *threads = rec->find("threads");
    ASSERT_NE(threads, nullptr);
    bool sawFailingRequest = false;
    for (const JsonValue &t : threads->array) {
        const JsonValue *events = t.find("events");
        if (!events)
            continue;
        for (const JsonValue &e : events->array) {
            const JsonValue *eventRid = e.find("rid");
            if (eventRid && eventRid->number == rid->number)
                sawFailingRequest = true;
        }
    }
    EXPECT_TRUE(sawFailingRequest);
}

// ---------------------------------------------------------------------
// Server: concurrent clients over the Unix socket.
// ---------------------------------------------------------------------

TEST(ServeServer, StartRejectsBadSocketPath)
{
    ServerOptions opt;
    opt.socketPath = "";
    Server server(std::move(opt));
    EXPECT_FALSE(server.start().ok());

    ServerOptions longOpt;
    longOpt.socketPath = "/tmp/" + std::string(200, 'x');
    Server longServer(std::move(longOpt));
    EXPECT_FALSE(longServer.start().ok());
}

TEST(ServeServer, ConcurrentClientsBitIdenticalAndWarm)
{
    const std::string path = uniqueSocketPath("acc");
    ServerOptions opt;
    opt.socketPath = path;
    opt.threads = 4;
    Server server(std::move(opt));
    ASSERT_TRUE(server.start().ok());
    std::thread daemon([&] { server.run(); });

    // Expected bytes for the four request flavours, computed through
    // the one-shot flow the daemon must match bit for bit.
    TechnologyModel hot = defaultTech();
    hot.dramEnergyPerBit = 26.25;
    const std::string expectA = expectedPost(kTinyModelRaw, defaultTech());
    const std::string expectA2 = expectedPost(kTinyModel2Raw, defaultTech());
    const std::string expectB = expectedPost(kTinyModelRaw, hot);

    const std::string reqA =
        std::string("{\"op\":\"post\",\"modelText\":\"") + kTinyModel +
        "\"}";
    const std::string reqA2 =
        std::string("{\"op\":\"post\",\"modelText\":\"") + kTinyModel2 +
        "\"}";
    const std::string reqB =
        std::string("{\"op\":\"post\",\"modelText\":\"") + kTinyModel +
        "\",\"tech\":{\"dramEnergyPerBit\":26.25}}";

    // 12 concurrent clients: repeated shapes (warm-cache traffic),
    // a second shape, and a different technology model sharing the
    // same daemon cache.
    const int kClients = 12;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            const std::string &req = (c % 3 == 0)   ? reqB
                                     : (c % 3 == 1) ? reqA2
                                                    : reqA;
            responses[c] = roundTrip(path, req);
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (int c = 0; c < kClients; ++c) {
        const std::string &expect = (c % 3 == 0)   ? expectB
                                    : (c % 3 == 1) ? expectA2
                                                   : expectA;
        EXPECT_EQ(responses[c], expect) << "client " << c;
    }

    // Repeated shapes across different requests hit the shared cache.
    EXPECT_GT(server.service().cache().hits(), 0);
    const std::string stats = roundTrip(path, "{\"op\":\"stats\"}");
    EXPECT_NE(stats.find("\"hits\":"), std::string::npos) << stats;

    // A malformed request gets a structured error, not a hangup.
    EXPECT_TRUE(isErrorEnvelope(roundTrip(path, "][,"),
                                "INVALID_ARGUMENT"));

    // Shutdown op answers, then stops the daemon.
    EXPECT_EQ(roundTrip(path, "{\"op\":\"shutdown\"}"),
              "{\"shuttingDown\":true}");
    daemon.join();
}

TEST(ServeServer, MultipleRequestsPerConnection)
{
    const std::string path = uniqueSocketPath("multi");
    ServerOptions opt;
    opt.socketPath = path;
    opt.threads = 2;
    Server server(std::move(opt));
    ASSERT_TRUE(server.start().ok());
    std::thread daemon([&] { server.run(); });

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    // Two pipelined requests on one connection, answered in order.
    const std::string batch =
        "{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n";
    ASSERT_EQ(::send(fd, batch.data(), batch.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(batch.size()));
    std::string buffer;
    char chunk[4096];
    int newlines = 0;
    while (newlines < 2) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0);
        for (ssize_t i = 0; i < n; ++i)
            newlines += chunk[i] == '\n';
        buffer.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(buffer.rfind("{\"pong\":true}\n", 0), 0u) << buffer;
    EXPECT_NE(buffer.find("\"requests\":"), std::string::npos);

    server.requestStop();
    daemon.join();
}
