/**
 * @file
 * Tests for the directional ring rotation schedule (figure 3).
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include "sim/ring.hpp"

using namespace nnbaton;

TEST(RingRotation, SingleChipletNeedsNoSteps)
{
    const RotationPlan p = planRotation(1, 1 << 20, 128);
    EXPECT_TRUE(p.steps.empty());
    EXPECT_EQ(p.totalCycles(), 0);
    EXPECT_EQ(p.totalBits(), 0);
}

TEST(RingRotation, FourChipletsThreeSteps)
{
    // 4 chiplets sharing 4 Mbit: 1 Mbit chunks, 3 rotation steps.
    const RotationPlan p = planRotation(4, 4 << 20, 128);
    ASSERT_EQ(p.steps.size(), 3u);
    EXPECT_EQ(p.chunkBits, 1 << 20);
    for (const RotationStep &s : p.steps) {
        EXPECT_EQ(s.bitsPerLink, 1 << 20);
        EXPECT_EQ(s.cycles, (1 << 20) / 128);
    }
    // Each element crosses N_P - 1 links.
    EXPECT_EQ(p.bitsPerLink(), 3 << 20);
    EXPECT_EQ(p.totalBits(), 12LL << 20);
}

TEST(RingRotation, TotalBitsMatchAccessModelD2dFactor)
{
    // The access model charges shared_bits * (N_P - 1) of D2D traffic;
    // the per-link plan must aggregate to the same number.
    for (int np : {2, 4, 8}) {
        const int64_t shared = 9997 * np; // divisible chunking
        const RotationPlan p = planRotation(np, shared, 256);
        EXPECT_EQ(p.totalBits(), shared * (np - 1)) << np;
    }
}

TEST(RingRotation, ExposedCyclesOverlapWithCompute)
{
    const RotationPlan p = planRotation(4, 4 << 20, 128);
    const int64_t step_cycles = p.steps.front().cycles;
    // Compute longer than a transfer hides the rotation completely.
    EXPECT_EQ(p.exposedCycles(step_cycles + 10), 0);
    // Compute of zero exposes everything.
    EXPECT_EQ(p.exposedCycles(0), p.totalCycles());
    // Partial overlap exposes the per-step excess.
    EXPECT_EQ(p.exposedCycles(step_cycles / 2),
              3 * (step_cycles - step_cycles / 2));
}

TEST(RingRotation, CeilingChunking)
{
    // 10 bits over 4 chiplets -> 3-bit chunks (ceil), 3 steps.
    const RotationPlan p = planRotation(4, 10, 2);
    EXPECT_EQ(p.chunkBits, 3);
    EXPECT_EQ(p.steps.front().cycles, 2); // ceil(3/2)
}

TEST(RingRotation, NonPowerOfTwoChipletCounts)
{
    // Ring sizes off the power-of-two grid: N_P - 1 steps, ceiling
    // chunks, and conservation (every link carries every foreign
    // chunk exactly once).
    for (int np : {3, 5, 6, 7}) {
        const int64_t shared = 1000001; // prime-ish, never divisible
        const RotationPlan p = planRotation(np, shared, 128);
        ASSERT_EQ(p.steps.size(), static_cast<size_t>(np - 1)) << np;
        EXPECT_EQ(p.chunkBits, (shared + np - 1) / np) << np;
        for (const RotationStep &s : p.steps) {
            EXPECT_EQ(s.bitsPerLink, p.chunkBits) << np;
            EXPECT_EQ(s.cycles, (p.chunkBits + 127) / 128) << np;
        }
        // Ceiling chunking can only over-provision, never lose bits.
        EXPECT_GE(p.totalBits(), shared * (np - 1)) << np;
        EXPECT_LT(p.totalBits(), (shared + np) * (np - 1)) << np;
        EXPECT_EQ(p.bitsPerLink(), p.chunkBits * (np - 1)) << np;
    }
}

TEST(RingRotation, NonPowerOfTwoMatchesAccessModelWhenDivisible)
{
    // On divisible working sets the plan must aggregate to the access
    // model's shared_bits * (N_P - 1) D2D charge, power of two or not.
    for (int np : {3, 5, 6, 7, 12}) {
        const int64_t shared = static_cast<int64_t>(7680) * np;
        const RotationPlan p = planRotation(np, shared, 256);
        EXPECT_EQ(p.totalBits(), shared * (np - 1)) << np;
        EXPECT_EQ(p.chunkBits, shared / np) << np;
    }
}

TEST(RingRotation, NonPowerOfTwoExposedCyclesScaleWithSteps)
{
    // 5 chiplets -> 4 steps; a half-hidden step exposes its excess on
    // every one of the 4 forwards.
    const RotationPlan p = planRotation(5, 5 << 10, 128);
    ASSERT_EQ(p.steps.size(), 4u);
    const int64_t step_cycles = p.steps.front().cycles;
    EXPECT_EQ(p.exposedCycles(step_cycles), 0);
    EXPECT_EQ(p.exposedCycles(0), 4 * step_cycles);
    EXPECT_EQ(p.exposedCycles(step_cycles / 2),
              4 * (step_cycles - step_cycles / 2));
}

TEST(RingRotation, ToStringMentionsSteps)
{
    const RotationPlan p = planRotation(4, 1024, 128);
    EXPECT_NE(p.toString().find("3 steps"), std::string::npos);
}

TEST(RingRotationDeath, RejectsBadArguments)
{
    expectStatusThrow([] { planRotation(0, 100, 128); }, "chiplet");
    expectStatusThrow([] { planRotation(4, -1, 128); }, "bits");
    expectStatusThrow([] { planRotation(4, 100, 0); }, "bandwidth");
}
