/**
 * @file
 * The search-strategy contract (docs/search.md):
 *
 *  - `--search bnb` returns bit-identical winners to the exhaustive
 *    search — same mapping, same score — over the full model zoo,
 *    both objectives, at every thread count, with deterministic tree
 *    counters;
 *  - ≥50 seeded random (layer, config) pairs agree the same way;
 *  - the warm-started branch and bound never changes the returned
 *    winner, only the work split;
 *  - annealing always returns a legal mapping when one exists, never
 *    beats the true optimum (it searches the same grid), and equal
 *    seeds reproduce equal results.
 */

#include <gtest/gtest.h>

#include <random>

#include "dataflow/mapping.hpp"
#include "mapper/cache.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

namespace {

double
scoreOf(const MappingChoice &c, Objective obj)
{
    return obj == Objective::MinEnergy ? c.energy.total() : c.edp();
}

void
expectSameWinners(const ModelMappingResult &a,
                  const ModelMappingResult &b)
{
    EXPECT_EQ(a.feasible, b.feasible);
    ASSERT_EQ(a.choices.size(), b.choices.size());
    for (size_t i = 0; i < a.choices.size(); ++i) {
        EXPECT_EQ(a.choices[i].mapping.toString(),
                  b.choices[i].mapping.toString())
            << i;
        // Bit-identical: EXPECT_EQ on doubles, no tolerance.
        EXPECT_EQ(a.choices[i].energy.total(),
                  b.choices[i].energy.total())
            << i;
        EXPECT_EQ(a.choices[i].runtime.cycles, b.choices[i].runtime.cycles)
            << i;
    }
    EXPECT_EQ(a.cost.energy.total(), b.cost.energy.total());
    EXPECT_EQ(a.cost.cycles, b.cost.cycles);
}

std::mt19937 &
rng(uint32_t seed)
{
    static std::mt19937 gen;
    gen.seed(seed);
    return gen;
}

int
pick(std::mt19937 &g, std::initializer_list<int> values)
{
    std::uniform_int_distribution<size_t> d(0, values.size() - 1);
    return *(values.begin() + d(g));
}

AcceleratorConfig
randomConfig(std::mt19937 &g)
{
    AcceleratorConfig cfg;
    cfg.package.chiplets = pick(g, {1, 2, 4, 8});
    cfg.chiplet.cores = pick(g, {1, 2, 4, 8});
    cfg.core.lanes = pick(g, {4, 8, 16});
    cfg.core.vectorSize = pick(g, {4, 8, 16});
    cfg.core.ol1Bytes = pick(g, {768, 1536, 3072});
    cfg.core.al1Bytes = pick(g, {800, 2048, 8192});
    cfg.core.wl1Bytes = pick(g, {8192, 18432, 65536});
    cfg.chiplet.al2Bytes = pick(g, {32768, 65536, 262144});
    cfg.validate();
    return cfg;
}

ConvLayer
randomLayer(std::mt19937 &g)
{
    if (pick(g, {0, 1, 2}) == 0) {
        return makeDepthwiseConv("fuzz-dw", pick(g, {7, 14, 28}),
                                 pick(g, {7, 14, 28}),
                                 pick(g, {32, 64, 128}), 3,
                                 pick(g, {1, 2}));
    }
    return makeConv("fuzz", pick(g, {7, 14, 28, 56}),
                    pick(g, {7, 14, 28, 56}), pick(g, {32, 64, 256}),
                    pick(g, {16, 64, 256}), pick(g, {1, 3}),
                    pick(g, {1, 3}), pick(g, {1, 2}));
}

} // namespace

/**
 * The headline contract over the whole zoo: for every network, both
 * objectives and thread counts {1, 2, 4}, branch and bound selects
 * exactly the mappings the flat exhaustive search selects, and its
 * tree counters are identical at every thread count.
 */
TEST(SearchModes, BnbMatchesExhaustiveOnZoo)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const Model models[] = {makeAlexNet(64), makeVgg16(64),
                            makeResNet50(64), makeDarkNet19(64),
                            makeMobileNetV2(64)};
    for (const Model &model : models) {
        for (Objective obj :
             {Objective::MinEnergy, Objective::MinEdp}) {
            SCOPED_TRACE(model.name() + " obj " +
                         std::to_string(static_cast<int>(obj)));
            SearchOptions ex;
            const ModelMappingResult exhaustive = mapModel(
                model, cfg, tech, SearchEffort::Fast, obj, ex);

            SearchOptions serial_bnb;
            serial_bnb.mode = SearchMode::Bnb;
            const ModelMappingResult serial = mapModel(
                model, cfg, tech, SearchEffort::Fast, obj, serial_bnb);
            expectSameWinners(exhaustive, serial);

            for (int threads : {2, 4}) {
                SCOPED_TRACE(threads);
                SearchOptions par_bnb;
                par_bnb.mode = SearchMode::Bnb;
                par_bnb.threads = threads;
                const ModelMappingResult parallel = mapModel(
                    model, cfg, tech, SearchEffort::Fast, obj, par_bnb);
                expectSameWinners(exhaustive, parallel);
                // Deterministic tree counters at any thread count.
                EXPECT_EQ(parallel.stats.evaluated,
                          serial.stats.evaluated);
                EXPECT_EQ(parallel.stats.pruned, serial.stats.pruned);
                EXPECT_EQ(parallel.stats.nodesOpened,
                          serial.stats.nodesOpened);
                EXPECT_EQ(parallel.stats.subtreesPruned,
                          serial.stats.subtreesPruned);
                EXPECT_EQ(parallel.stats.incumbentUpdates,
                          serial.stats.incumbentUpdates);
            }
        }
    }
}

class SearchModesDiffFuzz : public ::testing::TestWithParam<uint32_t>
{
};

/**
 * 5 seeds x 11 iterations x 2 objectives = 110 random differential
 * cases (>= the 50 the PR promises): bnb and exhaustive agree on the
 * winner bit for bit, and bnb never does more full evaluations.
 */
TEST_P(SearchModesDiffFuzz, BnbMatchesExhaustiveOnRandomCases)
{
    auto &g = rng(GetParam() * 2654435761u);
    const TechnologyModel &tech = defaultTech();
    for (int iter = 0; iter < 11; ++iter) {
        const AcceleratorConfig cfg = randomConfig(g);
        const ConvLayer layer = randomLayer(g);
        for (Objective obj :
             {Objective::MinEnergy, Objective::MinEdp}) {
            SearchOptions ex;
            SearchStats ex_stats;
            const auto exhaustive =
                searchLayer(layer, cfg, tech, SearchEffort::Fast, obj,
                            ex, &ex_stats);

            SearchOptions bnb;
            bnb.mode = SearchMode::Bnb;
            SearchStats bnb_stats;
            const auto guided =
                searchLayer(layer, cfg, tech, SearchEffort::Fast, obj,
                            bnb, &bnb_stats);

            ASSERT_EQ(exhaustive.has_value(), guided.has_value())
                << "seed " << GetParam() << " iter " << iter << " "
                << layer.toString();
            if (!exhaustive)
                continue;
            EXPECT_EQ(exhaustive->mapping.toString(),
                      guided->mapping.toString())
                << "seed " << GetParam() << " iter " << iter << " obj "
                << static_cast<int>(obj) << " " << layer.toString();
            EXPECT_EQ(scoreOf(*exhaustive, obj), scoreOf(*guided, obj));
            EXPECT_LE(bnb_stats.evaluated, ex_stats.evaluated)
                << "seed " << GetParam() << " iter " << iter;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchModesDiffFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

/**
 * Warm starts re-order work, never results: a shared cache holding a
 * sibling configuration's winners must leave every returned mapping
 * unchanged, and at least one search must actually consume a hint
 * (the sibling differs only in a buffer size, so its winner is a
 * legal leaf of the same grid).
 */
TEST(SearchModes, WarmStartNeverChangesWinner)
{
    const Model model = makeDarkNet19(64);
    const TechnologyModel &tech = defaultTech();
    AcceleratorConfig sibling = caseStudyConfig();
    AcceleratorConfig cfg = caseStudyConfig();
    sibling.core.wl1Bytes = cfg.core.wl1Bytes * 2;
    sibling.validate();

    SearchOptions bnb;
    bnb.mode = SearchMode::Bnb;

    // Cold reference: no cache, no hints.
    const ModelMappingResult cold =
        mapModel(model, cfg, tech, SearchEffort::Fast,
                 Objective::MinEnergy, bnb);

    // Warm run: the cache already holds the sibling config's winners
    // for every layer shape.
    MappingCache cache;
    (void)mapModel(model, sibling, tech, SearchEffort::Fast,
                   Objective::MinEnergy, bnb, &cache);
    SearchOptions warm = bnb;
    warm.warmStart = true;
    const ModelMappingResult warmed =
        mapModel(model, cfg, tech, SearchEffort::Fast,
                 Objective::MinEnergy, warm, &cache);

    expectSameWinners(cold, warmed);
    EXPECT_GT(warmed.stats.warmStarts, 0);
    // A hint can only come from a search that actually ran.
    EXPECT_LE(warmed.stats.warmStarts, warmed.stats.cacheMisses);

    // Cold runs never consume hints, warm-off runs never either.
    EXPECT_EQ(cold.stats.warmStarts, 0);
}

/** Anneal must key the cache per seed: two seeds, two entries. */
TEST(SearchModes, AnnealCacheKeysIncludeSeed)
{
    const Model model = Model("one", 8);
    Model m("one", 8);
    m.addLayer(makeConv("a", 14, 14, 64, 32, 3, 3, 1));
    MappingCache cache;
    SearchOptions a;
    a.mode = SearchMode::Anneal;
    a.annealSeed = 1;
    (void)mapModel(m, caseStudyConfig(), defaultTech(),
                   SearchEffort::Fast, Objective::MinEnergy, a, &cache);
    EXPECT_EQ(cache.size(), 1u);
    a.annealSeed = 2;
    (void)mapModel(m, caseStudyConfig(), defaultTech(),
                   SearchEffort::Fast, Objective::MinEnergy, a, &cache);
    EXPECT_EQ(cache.size(), 2u);
    // Exhaustive and bnb share one deterministic entry.
    SearchOptions ex;
    (void)mapModel(m, caseStudyConfig(), defaultTech(),
                   SearchEffort::Fast, Objective::MinEnergy, ex,
                   &cache);
    EXPECT_EQ(cache.size(), 3u);
    SearchOptions bnb;
    bnb.mode = SearchMode::Bnb;
    ModelMappingResult shared =
        mapModel(m, caseStudyConfig(), defaultTech(),
                 SearchEffort::Fast, Objective::MinEnergy, bnb, &cache);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(shared.stats.cacheHits, 1);
}

class AnnealFuzz : public ::testing::TestWithParam<uint32_t>
{
};

/**
 * Annealing legality and reproducibility on random cases: whenever
 * the exhaustive search finds a winner, anneal finds a legal mapping
 * whose score is no better than the optimum (same grid), and the same
 * seed reproduces the same mapping while runs stay independent of
 * each other.
 */
TEST_P(AnnealFuzz, LegalReproducibleNeverBeatsOptimum)
{
    auto &g = rng(GetParam() * 805306457u);
    const TechnologyModel &tech = defaultTech();
    for (int iter = 0; iter < 6; ++iter) {
        const AcceleratorConfig cfg = randomConfig(g);
        const ConvLayer layer = randomLayer(g);
        for (Objective obj :
             {Objective::MinEnergy, Objective::MinEdp}) {
            const auto best = searchLayer(
                layer, cfg, tech, SearchEffort::Fast, obj,
                SearchOptions{});

            SearchOptions an;
            an.mode = SearchMode::Anneal;
            an.annealSeed = 7u + GetParam();
            an.annealIterations = 120;
            SearchStats stats;
            const auto first = searchLayer(
                layer, cfg, tech, SearchEffort::Fast, obj, an, &stats);

            ASSERT_EQ(best.has_value(), first.has_value())
                << "seed " << GetParam() << " iter " << iter << " "
                << layer.toString();
            if (!best)
                continue;
            // Legal, and never better than the true optimum.
            EXPECT_EQ(checkMapping(layer, cfg, first->mapping), "")
                << first->mapping.toString();
            EXPECT_GE(scoreOf(*first, obj), scoreOf(*best, obj));
            // Work was bounded by the move budget plus the init scan.
            EXPECT_GT(stats.evaluated, 0);

            // Same seed, same result — bit for bit.
            const auto again = searchLayer(
                layer, cfg, tech, SearchEffort::Fast, obj, an);
            ASSERT_TRUE(again.has_value());
            EXPECT_EQ(first->mapping.toString(),
                      again->mapping.toString());
            EXPECT_EQ(scoreOf(*first, obj), scoreOf(*again, obj));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealFuzz,
                         ::testing::Values(1u, 2u, 3u));
