/**
 * @file
 * Tests for the loop-nest IR: span accumulation, trip products and
 * the nest lowering from mappings.
 */

#include <gtest/gtest.h>

#include "dataflow/loopnest.hpp"

using namespace nnbaton;

namespace {

LoopNest
simpleNest()
{
    // OC:4 | OH:3 | IC:2 over an atom of co=8, ci=8.
    LoopNest n;
    n.loops = {{Dim::OC, 4}, {Dim::OH, 3}, {Dim::IC, 2}};
    n.atom = TileSpan{};
    n.atom.co = 8;
    n.atom.ci = 8;
    return n;
}

} // namespace

TEST(TileSpan, DimAccess)
{
    TileSpan s;
    s.at(Dim::OH) = 7;
    s.at(Dim::KW) = 3;
    EXPECT_EQ(s.ho, 7);
    EXPECT_EQ(s.kw, 3);
    const TileSpan &c = s;
    EXPECT_EQ(c.at(Dim::OH), 7);
}

TEST(LoopNest, SpanBelowAccumulates)
{
    const LoopNest n = simpleNest();
    // Below everything (atom).
    EXPECT_EQ(n.spanBelow(3).co, 8);
    EXPECT_EQ(n.spanBelow(3).ci, 8);
    // Above IC loop: ci doubles.
    EXPECT_EQ(n.spanBelow(2).ci, 16);
    EXPECT_EQ(n.spanBelow(2).co, 8);
    // Above OH loop: ho = 3.
    EXPECT_EQ(n.spanBelow(1).ho, 3);
    // Above OC loop: co = 32.
    EXPECT_EQ(n.spanBelow(0).co, 32);
    EXPECT_EQ(n.spanBelow(0).ci, 16);
}

TEST(LoopNest, TripsAbove)
{
    const LoopNest n = simpleNest();
    EXPECT_EQ(n.tripsAbove(0), 1);
    EXPECT_EQ(n.tripsAbove(1), 4);
    EXPECT_EQ(n.tripsAbove(2), 12);
    EXPECT_EQ(n.tripsAbove(3), 24);
    EXPECT_EQ(n.totalTrips(), 24);
}

TEST(LoopNest, ToStringMentionsLoops)
{
    const std::string s = simpleNest().toString();
    EXPECT_NE(s.find("OC:4"), std::string::npos);
    EXPECT_NE(s.find("IC:2"), std::string::npos);
}

TEST(BuildNests, PerCoreStructure)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    m.pkgOrder = LoopOrder::ChannelPriority;
    m.chipOrder = LoopOrder::PlanePriority;
    const auto shapes = deriveShapes(layer, cfg, m);
    const NestSet nests = buildNests(layer, cfg, m, shapes);

    // Whole-nest spans must reconstruct the per-core workload: the
    // 56-wide plane rounds up to 64 under the uniform-tile model
    // (4 package trips x 2 chiplet trips x 8-wide core tiles).
    const TileSpan top = nests.perCore.spanBelow(0);
    EXPECT_EQ(top.ho, 64);
    EXPECT_EQ(top.wo, 64);
    EXPECT_EQ(top.co, 8);
    EXPECT_EQ(top.ci, 128);
    EXPECT_EQ(top.kh, 3);
    EXPECT_EQ(top.kw, 3);

    // The atom carries the spatial parallelism: L lanes, P vector.
    EXPECT_EQ(nests.perCore.atom.co, 8);
    EXPECT_EQ(nests.perCore.atom.ci, 8);

    // Core loops end ... KH, KW are present, output plane inner.
    const auto &loops = nests.perCore.loops;
    ASSERT_GE(loops.size(), 4u);
    EXPECT_EQ(loops.back().dim, Dim::OW);
    EXPECT_EQ(loops[loops.size() - 2].dim, Dim::OH);
}

TEST(BuildNests, PerChipletStructure)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    const auto shapes = deriveShapes(layer, cfg, m);
    const NestSet nests = buildNests(layer, cfg, m, shapes);

    // Atom is one chiplet tile with full ci/kernel.
    EXPECT_EQ(nests.perChiplet.atom.ho, 16);
    EXPECT_EQ(nests.perChiplet.atom.wo, 16);
    EXPECT_EQ(nests.perChiplet.atom.co, 64);
    EXPECT_EQ(nests.perChiplet.atom.ci, 128);
    // Top span covers the chiplet macro workload.
    const TileSpan top = nests.perChiplet.spanBelow(0);
    EXPECT_EQ(top.ho, 64); // 4 trips x 16 (ceil of 56)
    EXPECT_EQ(top.co, 64);
}

TEST(BuildNests, TemporalOrderControlsLoopPlacement)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layer = makeConv("t", 64, 64, 512, 64, 1, 1, 1);
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;

    m.pkgOrder = LoopOrder::ChannelPriority;
    auto nests = buildNests(layer, cfg, m, deriveShapes(layer, cfg, m));
    // Channel-priority: the OC trip is the innermost package loop.
    Dim first_pkg_c = Dim::OH;
    for (const auto &l : nests.perChiplet.loops)
        first_pkg_c = l.dim; // last loop
    EXPECT_EQ(first_pkg_c, Dim::OC);

    m.pkgOrder = LoopOrder::PlanePriority;
    nests = buildNests(layer, cfg, m, deriveShapes(layer, cfg, m));
    EXPECT_EQ(nests.perChiplet.loops.front().dim, Dim::OC);
}

TEST(BuildNests, UnitTripsAreElided)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    // Point-wise layer: no KH/KW loops; single chiplet tile.
    const ConvLayer layer = makeConv("t", 8, 8, 64, 64, 1, 1, 1);
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {8, 8, 16};
    m.hoC = 8;
    m.woC = 8;
    const auto nests =
        buildNests(layer, cfg, m, deriveShapes(layer, cfg, m));
    for (const auto &l : nests.perCore.loops) {
        EXPECT_GT(l.trips, 1);
        EXPECT_NE(l.dim, Dim::KH);
        EXPECT_NE(l.dim, Dim::KW);
    }
}

TEST(Dim, ToStringCoversAll)
{
    EXPECT_STREQ(toString(Dim::OH), "OH");
    EXPECT_STREQ(toString(Dim::OW), "OW");
    EXPECT_STREQ(toString(Dim::OC), "OC");
    EXPECT_STREQ(toString(Dim::IC), "IC");
    EXPECT_STREQ(toString(Dim::KH), "KH");
    EXPECT_STREQ(toString(Dim::KW), "KW");
}
