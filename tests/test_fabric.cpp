/**
 * @file
 * Tests for the distributed sweep fabric: backoff and endpoint
 * helpers, the lease table, the sweepUnit wire format, and the
 * coordinator end-to-end against in-process TCP workers.
 *
 * The acceptance bar (docs/distributed.md): a sweep sharded across
 * workers — including under injected transport faults, worker
 * crashes, and checkpoint resume — merges to bytes identical to the
 * single-process `pre` sweep.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baton/baton.hpp"
#include "baton/export.hpp"
#include "common/backoff.hpp"
#include "common/cancel.hpp"
#include "common/net.hpp"
#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/lease.hpp"
#include "fabric/wire.hpp"
#include "nn/parser.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "verif/fault.hpp"

using namespace nnbaton;
using namespace nnbaton::fabric;

namespace {

// The same tiny workload the serve tests use: small enough that a
// full sweep runs in seconds, wide enough to produce a feasible
// recommendation.
const char *kTinyModelRaw = "model tiny 32\n"
                            "conv c1 8 8 64 16 3 3 1\n"
                            "fc head 64 128\n";

Model
tinyModel()
{
    const ParseResult parsed = parseModelString(kTinyModelRaw);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    return *parsed.model;
}

/** Sweep options that match what a worker rebuilds for a sweepUnit
 *  request (dse effort derived from proportional, serial lanes), so
 *  the sweep fingerprint agrees end to end.  Proportional memory
 *  keeps the space small (~50 points) — units stay plentiful while
 *  every end-to-end sweep finishes in well under a second. */
DseOptions
sweepOptions()
{
    DseOptions opt;
    opt.totalMacs = 256;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    opt.objective = Objective::MinEnergy;
    opt.searchMode = SearchMode::Exhaustive;
    opt.threads = 1;
    return opt;
}

/** The lean pre-design export for @p sweep, with the run-dependent
 *  "resumed" counter zeroed so fresh and resumed runs compare equal
 *  when their points and winner are the same. */
std::string
leanPreBytes(const DseResult &sweep)
{
    PreDesignReport report;
    report.sweep = sweep;
    report.sweep.resumed = 0;
    if (auto best = report.sweep.bestEdp())
        report.recommended = report.sweep.points[*best];
    std::ostringstream ss;
    exportPreDesign(report, ss, ExportOptions::lean());
    return ss.str();
}

/** Single-process reference bytes, computed once. */
const std::string &
serialBaseline()
{
    static const std::string bytes = [] {
        const Model model = tinyModel();
        return leanPreBytes(explore(model, sweepOptions(),
                                    defaultTech()));
    }();
    return bytes;
}

/** N in-process serve daemons on kernel-assigned TCP ports. */
struct Fleet
{
    struct Worker
    {
        std::unique_ptr<serve::Server> server;
        std::thread thread;
    };
    std::vector<Worker> workers;
    std::vector<std::string> endpoints;

    explicit Fleet(int n)
    {
        for (int i = 0; i < n; ++i) {
            serve::ServerOptions opt;
            opt.tcpAddress = ":0";
            opt.threads = 2;
            auto server =
                std::make_unique<serve::Server>(std::move(opt));
            const Status started = server->start();
            EXPECT_TRUE(started.ok()) << started.toString();
            EXPECT_GT(server->tcpPort(), 0);
            endpoints.push_back("127.0.0.1:" +
                                std::to_string(server->tcpPort()));
            workers.push_back(Worker{std::move(server), {}});
            serve::Server *raw = workers.back().server.get();
            workers.back().thread = std::thread([raw] { raw->run(); });
        }
    }

    ~Fleet()
    {
        for (Worker &w : workers) {
            w.server->requestStop();
            if (w.thread.joinable())
                w.thread.join();
        }
    }
};

std::string
uniqueTempFile(const char *tag)
{
    return "/tmp/nnb-fabric-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".json";
}

} // namespace

// ---------------------------------------------------------------------
// Backoff.
// ---------------------------------------------------------------------

TEST(Backoff, DeterministicPerSeedAndBounded)
{
    BackoffPolicy policy;
    Backoff a(policy, 42);
    Backoff b(policy, 42);
    for (int i = 0; i < policy.maxRetries; ++i) {
        const int64_t delay = a.nextDelayMs();
        EXPECT_EQ(delay, b.nextDelayMs());
        // Within jitter bounds of the exponential base.
        const double base =
            std::min<double>(static_cast<double>(policy.maxDelayMs),
                             policy.initialDelayMs *
                                 std::pow(policy.multiplier, i));
        EXPECT_GE(delay, static_cast<int64_t>(
                             base * (1.0 - policy.jitter) - 1));
        EXPECT_LE(delay, static_cast<int64_t>(
                             base * (1.0 + policy.jitter) + 1));
    }
    EXPECT_TRUE(a.exhausted());
    a.reset();
    EXPECT_FALSE(a.exhausted());
}

TEST(Backoff, NoJitterGrowsExactlyAndCaps)
{
    BackoffPolicy policy;
    policy.initialDelayMs = 50;
    policy.maxDelayMs = 300;
    policy.multiplier = 2.0;
    policy.jitter = 0.0;
    policy.maxRetries = 5;
    Backoff backoff(policy, 1);
    EXPECT_EQ(backoff.nextDelayMs(), 50);
    EXPECT_EQ(backoff.nextDelayMs(), 100);
    EXPECT_EQ(backoff.nextDelayMs(), 200);
    EXPECT_EQ(backoff.nextDelayMs(), 300); // capped
    EXPECT_EQ(backoff.nextDelayMs(), 300);
}

TEST(Backoff, SleepWithCancelReturnsEarly)
{
    CancelToken token;
    token.requestCancel();
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(sleepWithCancel(10000, &token));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(elapsed, 2.0);
    EXPECT_TRUE(sleepWithCancel(1, nullptr));
}

// ---------------------------------------------------------------------
// Endpoint parsing.
// ---------------------------------------------------------------------

TEST(Net, ParsesTcpAndUnixEndpointForms)
{
    const Endpoint a = parseEndpoint("127.0.0.1:7070").value();
    EXPECT_TRUE(a.tcp);
    EXPECT_EQ(a.host, "127.0.0.1");
    EXPECT_EQ(a.port, 7070);
    EXPECT_EQ(a.toString(), "127.0.0.1:7070");

    const Endpoint b = parseEndpoint(":8080").value();
    EXPECT_TRUE(b.tcp);
    EXPECT_EQ(b.port, 8080);

    const Endpoint c = parseEndpoint("localhost:7070").value();
    EXPECT_TRUE(c.tcp);
    EXPECT_EQ(c.port, 7070);

    // ":0" is a valid bind endpoint (kernel-assigned port).
    EXPECT_EQ(parseEndpoint(":0").value().port, 0);

    const Endpoint d = parseEndpoint("/tmp/nnb.sock").value();
    EXPECT_FALSE(d.tcp);
    EXPECT_EQ(d.unixPath, "/tmp/nnb.sock");

    // No all-digit port suffix: a Unix socket path, not TCP.
    EXPECT_FALSE(parseEndpoint("no-port-here").value().tcp);

    EXPECT_FALSE(parseEndpoint("").ok());
    EXPECT_FALSE(parseEndpoint("host:99999").ok());
}

TEST(Net, ConnectToUnboundPortFailsFast)
{
    // Port 1 has no listener; the failure must be a Status, not a
    // hang, and must carry a retryable-classifiable code.
    const StatusOr<LineChannel> channel =
        connectLineChannel("127.0.0.1:1", 2.0);
    ASSERT_FALSE(channel.ok());
    EXPECT_TRUE(channel.status().code() == StatusCode::Unavailable ||
                channel.status().code() ==
                    StatusCode::DeadlineExceeded)
        << channel.status().toString();
}

// ---------------------------------------------------------------------
// Lease table.
// ---------------------------------------------------------------------

namespace {

std::vector<WorkUnit>
threeUnits()
{
    return {WorkUnit{0, 0, 2}, WorkUnit{1, 2, 4}, WorkUnit{2, 4, 5}};
}

} // namespace

TEST(LeaseTable, HandsOutPendingUnitsThenFinishes)
{
    LeaseTable table(threeUnits(), 30.0);
    EXPECT_EQ(table.claim(nullptr)->id, 0);
    EXPECT_EQ(table.claim(nullptr)->id, 1);
    EXPECT_EQ(table.claim(nullptr)->id, 2);
    EXPECT_TRUE(table.complete(0));
    EXPECT_TRUE(table.complete(1));
    EXPECT_FALSE(table.allDone());
    EXPECT_TRUE(table.complete(2));
    EXPECT_TRUE(table.allDone());
    EXPECT_EQ(table.claim(nullptr), std::nullopt);
    EXPECT_TRUE(table.incompleteUnits().empty());
}

TEST(LeaseTable, FirstCompletionWinsDuplicatesCounted)
{
    LeaseTable table({WorkUnit{0, 0, 1}}, 30.0);
    ASSERT_TRUE(table.claim(nullptr).has_value());
    EXPECT_TRUE(table.complete(0));
    EXPECT_FALSE(table.complete(0)); // late duplicate: dropped
    EXPECT_EQ(table.duplicateCompletions(), 1);
}

TEST(LeaseTable, ReleasedUnitIsImmediatelyReclaimable)
{
    LeaseTable table({WorkUnit{0, 0, 1}}, 30.0);
    ASSERT_EQ(table.claim(nullptr)->id, 0);
    table.release(0);
    // No lease wait: the failed claimer handed it straight back.
    EXPECT_EQ(table.claim(nullptr)->id, 0);
    EXPECT_EQ(table.leasesExpired(), 0);
}

TEST(LeaseTable, ExpiredLeaseIsStolen)
{
    LeaseTable table({WorkUnit{0, 0, 1}}, 0.05);
    ASSERT_EQ(table.claim(nullptr)->id, 0);
    // The holder went silent; after the TTL the unit is re-issued.
    const auto t0 = std::chrono::steady_clock::now();
    const std::optional<WorkUnit> stolen = table.claim(nullptr);
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(stolen->id, 0);
    EXPECT_EQ(table.leasesExpired(), 1);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_GE(waited, 0.04);
}

TEST(LeaseTable, CancelUnblocksWaitingClaim)
{
    LeaseTable table({WorkUnit{0, 0, 1}}, 60.0);
    ASSERT_TRUE(table.claim(nullptr).has_value());
    CancelToken token;
    std::optional<WorkUnit> got = WorkUnit{};
    std::thread waiter([&] { got = table.claim(&token); });
    token.requestCancel();
    waiter.join();
    EXPECT_EQ(got, std::nullopt);
    EXPECT_EQ(table.incompleteUnits().size(), 1u);
}

// ---------------------------------------------------------------------
// Wire format.
// ---------------------------------------------------------------------

TEST(FabricWire, RequestRoundTripsThroughServeParser)
{
    const Model model = tinyModel();
    const DseOptions opt = sweepOptions();
    const WorkUnit unit{3, 4, 8};
    const std::string fp = sweepFingerprint(model, opt);
    const std::string tfp = techFingerprintHex(defaultTech());
    const std::string line = encodeSweepUnitRequest(
        writeModelText(model), opt, defaultTech(), unit, fp, tfp);

    const auto parsed = serve::parseRequest(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const serve::ServeRequest &req = parsed.value();
    EXPECT_EQ(req.op, serve::Op::SweepUnit);
    EXPECT_EQ(req.unitId, 3);
    EXPECT_EQ(req.unitBegin, 4);
    EXPECT_EQ(req.unitEnd, 8);
    EXPECT_EQ(req.sweepFp, fp);
    EXPECT_EQ(req.techFp, tfp);
    EXPECT_EQ(req.macs, opt.totalMacs);
    EXPECT_TRUE(req.proportional);
    // The inline model text reproduces the model...
    const ParseResult echoed = parseModelString(req.modelText);
    ASSERT_TRUE(echoed.ok()) << echoed.error;
    EXPECT_EQ(echoed.model->name(), model.name());
    // ...and the technology projection reproduces the exact digest
    // the worker-side gate recomputes.
    EXPECT_EQ(req.tech.fingerprint(), defaultTech().fingerprint());
}

TEST(FabricWire, ParseRejectsCorruptFrames)
{
    const WorkUnit unit{0, 0, 1};
    const auto r = parseSweepUnitResponse("\x7fgarbage frame", unit,
                                          "FP", "TFP");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::DataLoss);
}

TEST(FabricWire, ParseLiftsEnvelopesBackToStatuses)
{
    const WorkUnit unit{0, 0, 1};
    const auto overloaded = parseSweepUnitResponse(
        serve::errorResponse(errUnavailable("overloaded")), unit, "FP",
        "TFP");
    ASSERT_FALSE(overloaded.ok());
    EXPECT_EQ(overloaded.status().code(), StatusCode::Unavailable);

    const auto mismatch = parseSweepUnitResponse(
        serve::errorResponse(
            errFailedPrecondition("fingerprint mismatch")),
        unit, "FP", "TFP");
    ASSERT_FALSE(mismatch.ok());
    EXPECT_EQ(mismatch.status().code(),
              StatusCode::FailedPrecondition);
}

TEST(FabricWire, ParseValidatesIdentityAndShape)
{
    const WorkUnit unit{1, 5, 6};
    const char *statsAllZero =
        "\"stats\":{\"evaluated\":0,\"pruned\":0,\"cacheHits\":0,"
        "\"cacheMisses\":0,\"nodesOpened\":0,\"subtreesPruned\":0,"
        "\"incumbentUpdates\":0,\"warmStarts\":0,\"refined\":0,"
        "\"refinedPruned\":0}";

    // Response for a different unit: never merged.
    const auto wrongUnit = parseSweepUnitResponse(
        std::string("{\"ok\":true,\"unitId\":9,\"fingerprint\":\"FP\","
                    "\"techFingerprint\":\"TFP\",\"entries\":[],") +
            statsAllZero + "}",
        unit, "FP", "TFP");
    ASSERT_FALSE(wrongUnit.ok());
    EXPECT_EQ(wrongUnit.status().code(),
              StatusCode::FailedPrecondition);

    // Fingerprint echo mismatch: the worker swept a different space.
    const auto wrongFp = parseSweepUnitResponse(
        std::string("{\"ok\":true,\"unitId\":1,\"fingerprint\":"
                    "\"OTHER\",\"techFingerprint\":\"TFP\","
                    "\"entries\":[],") +
            statsAllZero + "}",
        unit, "FP", "TFP");
    ASSERT_FALSE(wrongFp.ok());
    EXPECT_EQ(wrongFp.status().code(), StatusCode::FailedPrecondition);

    // Entry count must cover the unit exactly.
    const auto shortEntries = parseSweepUnitResponse(
        std::string("{\"ok\":true,\"unitId\":1,\"fingerprint\":\"FP\","
                    "\"techFingerprint\":\"TFP\",\"entries\":[],") +
            statsAllZero + "}",
        unit, "FP", "TFP");
    ASSERT_FALSE(shortEntries.ok());
    EXPECT_EQ(shortEntries.status().code(), StatusCode::DataLoss);

    // A well-formed single-entry response parses.
    const auto good = parseSweepUnitResponse(
        std::string("{\"ok\":true,\"unitId\":1,\"fingerprint\":\"FP\","
                    "\"techFingerprint\":\"TFP\",\"entries\":[{\"i\":5,"
                    "\"kind\":\"area_rejected\"}],") +
            statsAllZero + "}",
        unit, "FP", "TFP");
    ASSERT_TRUE(good.ok()) << good.status().toString();
    ASSERT_EQ(good.value().outcomes.size(), 1u);
    EXPECT_EQ(good.value().outcomes[0].kind,
              SweepPointOutcome::AreaRejected);
}

// ---------------------------------------------------------------------
// Coordinator end-to-end against in-process TCP workers.
// ---------------------------------------------------------------------

TEST(Fabric, DistributedSweepMatchesSerialBitForBit)
{
    Fleet fleet(3);
    FabricOptions fab;
    fab.workers = fleet.endpoints;
    fab.unitPoints = 2; // force several units per worker
    FabricStats stats;
    const Model model = tinyModel();
    const DseResult r = coordinateSweep(model, sweepOptions(),
                                        defaultTech(), fab, &stats);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
    EXPECT_GT(stats.units, 2);
    EXPECT_EQ(stats.unitsCompleted, stats.units);
    EXPECT_EQ(stats.localFallbackUnits, 0);
    EXPECT_EQ(stats.workersQuarantined, 0);
}

TEST(Fabric, CancelledSweepMarksRemainingSkipped)
{
    CancelToken token;
    token.requestCancel();
    DseOptions opt = sweepOptions();
    opt.cancel = &token;
    FabricOptions fab;
    fab.workers = {"127.0.0.1:1"}; // never reached: claim() cancels
    const Model model = tinyModel();
    const DseResult r =
        coordinateSweep(model, opt, defaultTech(), fab, nullptr);
    EXPECT_FALSE(r.complete);
    EXPECT_EQ(r.skipped, r.swept);
    EXPECT_TRUE(r.points.empty());
}

// ---------------------------------------------------------------------
// Chaos: injected transport faults, worker loss, crash recovery.
// ---------------------------------------------------------------------

namespace {

/** Run a distributed sweep with @p plan armed and small retry delays;
 *  returns the result and fills @p stats. */
DseResult
chaosSweep(const Fleet &fleet, const verif::FaultPlan &plan,
           FabricStats &stats, double ioTimeoutSeconds = 30.0)
{
    FabricOptions fab;
    fab.workers = fleet.endpoints;
    fab.unitPoints = 2;
    fab.worker.ioTimeoutSeconds = ioTimeoutSeconds;
    fab.worker.backoff.initialDelayMs = 5;
    const Model model = tinyModel();
    verif::armFaultPlan(plan);
    const DseResult r = coordinateSweep(model, sweepOptions(),
                                        defaultTech(), fab, &stats);
    verif::disarmFaultPlan();
    return r;
}

} // namespace

TEST(Chaos, DroppedConnectionIsRetriedToTheSameBytes)
{
    Fleet fleet(3);
    verif::FaultPlan plan;
    plan.dropConnAtUnit = 1;
    FabricStats stats;
    const DseResult r = chaosSweep(fleet, plan, stats);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
    EXPECT_GE(stats.retries, 1);
    EXPECT_EQ(stats.workersQuarantined, 0);
}

TEST(Chaos, CorruptFrameIsRetriedToTheSameBytes)
{
    Fleet fleet(3);
    verif::FaultPlan plan;
    plan.corruptFrameAtUnit = 0;
    FabricStats stats;
    const DseResult r = chaosSweep(fleet, plan, stats);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
    EXPECT_GE(stats.retries, 1);
}

TEST(Chaos, StalledWorkerTimesOutAndRecovers)
{
    Fleet fleet(3);
    verif::FaultPlan plan;
    plan.stallAtUnit = 0;
    plan.stallUnitMs = 800;
    FabricStats stats;
    // I/O budget well under the stall: the coordinator must treat
    // the wedged worker as failed and re-drive the unit.
    const DseResult r =
        chaosSweep(fleet, plan, stats, /*ioTimeoutSeconds=*/0.2);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
    EXPECT_GE(stats.retries, 1);
}

TEST(Chaos, KilledWorkerMidUnitIsQuarantinedAndUnitStolen)
{
    Fleet fleet(3);
    verif::FaultPlan plan;
    plan.killWorkerAtUnit = 0;
    FabricStats stats;
    FabricOptions fab;
    fab.workers = fleet.endpoints;
    fab.unitPoints = 2;
    fab.worker.ioTimeoutSeconds = 1.0; // dead server may still accept
    fab.worker.maxFailures = 2;
    fab.worker.backoff.initialDelayMs = 5;
    const Model model = tinyModel();
    verif::armFaultPlan(plan);
    const DseResult r = coordinateSweep(model, sweepOptions(),
                                        defaultTech(), fab, &stats);
    verif::disarmFaultPlan();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
    EXPECT_GE(stats.workersQuarantined, 1);
    EXPECT_EQ(stats.unitsCompleted, stats.units);
}

TEST(Chaos, EveryWorkerLostFallsBackToLocalEvaluation)
{
    FabricOptions fab;
    fab.workers = {"127.0.0.1:1", "127.0.0.1:2"}; // nothing listens
    fab.worker.maxFailures = 1;
    fab.worker.connectTimeoutSeconds = 1.0;
    fab.worker.backoff.initialDelayMs = 1;
    fab.unitPoints = 4;
    FabricStats stats;
    const Model model = tinyModel();
    const DseResult r = coordinateSweep(model, sweepOptions(),
                                        defaultTech(), fab, &stats);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
    EXPECT_EQ(stats.workersQuarantined, 2);
    EXPECT_EQ(stats.unitsCompleted, 0);
    EXPECT_EQ(stats.localFallbackUnits, stats.units);
}

TEST(Chaos, LocalPartialCheckpointResumesDistributed)
{
    const std::string ckpt = uniqueTempFile("resume-dist");
    std::remove(ckpt.c_str());

    // A local sweep interrupted mid-flight leaves a partial
    // checkpoint (the "coordinator killed mid-sweep" state).
    {
        DseOptions opt = sweepOptions();
        opt.checkpointPath = ckpt;
        opt.checkpointEvery = 1;
        CancelToken token;
        opt.cancel = &token;
        verif::FaultPlan plan;
        plan.cancelAfterPoints = 4;
        verif::armFaultPlan(plan);
        const Model model = tinyModel();
        const DseResult partial =
            explore(model, opt, defaultTech());
        verif::disarmFaultPlan();
        EXPECT_FALSE(partial.complete);
    }

    // Resuming that checkpoint distributed finishes the sweep to the
    // same bytes as an uninterrupted serial run.
    Fleet fleet(3);
    DseOptions opt = sweepOptions();
    opt.resumePath = ckpt;
    FabricOptions fab;
    fab.workers = fleet.endpoints;
    fab.unitPoints = 2;
    FabricStats stats;
    const Model model = tinyModel();
    const DseResult r =
        coordinateSweep(model, opt, defaultTech(), fab, &stats);
    std::remove(ckpt.c_str());
    EXPECT_TRUE(r.complete);
    EXPECT_GT(r.resumed, 0);
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
}

TEST(Chaos, DistributedCheckpointResumesLocally)
{
    const std::string ckpt = uniqueTempFile("resume-local");
    std::remove(ckpt.c_str());

    // A distributed sweep checkpoints in the same format a local one
    // reads: the two paths are interchangeable mid-sweep.
    {
        Fleet fleet(2);
        DseOptions opt = sweepOptions();
        opt.checkpointPath = ckpt;
        opt.checkpointEvery = 1;
        FabricOptions fab;
        fab.workers = fleet.endpoints;
        fab.unitPoints = 2;
        const Model model = tinyModel();
        const DseResult r = coordinateSweep(model, opt, defaultTech(),
                                            fab, nullptr);
        EXPECT_TRUE(r.complete);
    }

    DseOptions opt = sweepOptions();
    opt.resumePath = ckpt;
    const Model model = tinyModel();
    const DseResult r = explore(model, opt, defaultTech());
    std::remove(ckpt.c_str());
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.resumed, r.swept); // everything restored, nothing rerun
    EXPECT_EQ(leanPreBytes(r), serialBaseline());
}

// ---------------------------------------------------------------------
// Admission control and retryable envelopes.
// ---------------------------------------------------------------------

TEST(Chaos, ErrorEnvelopesCarryTheRetryableFlag)
{
    EXPECT_NE(serve::errorResponse(errUnavailable("overloaded"))
                  .find("\"retryable\":true"),
              std::string::npos);
    EXPECT_NE(serve::errorResponse(errDeadlineExceeded("slow"))
                  .find("\"retryable\":true"),
              std::string::npos);
    EXPECT_NE(serve::errorResponse(errInvalidArgument("bad"))
                  .find("\"retryable\":false"),
              std::string::npos);
    EXPECT_TRUE(serve::isRetryableCode(StatusCode::Unavailable));
    EXPECT_TRUE(serve::isRetryableCode(StatusCode::Cancelled));
    EXPECT_TRUE(serve::isRetryableCode(StatusCode::DeadlineExceeded));
    EXPECT_FALSE(serve::isRetryableCode(StatusCode::InvalidArgument));
    EXPECT_FALSE(
        serve::isRetryableCode(StatusCode::FailedPrecondition));
}

TEST(Chaos, OverloadedServiceRefusesHeavyWorkRetryably)
{
    serve::ServiceOptions opt;
    opt.maxInflight = 1;
    serve::EvalService service{opt};
    // The full (non-proportional) memory grid takes seconds to sweep
    // — plenty of time to observe the busy lane from outside.
    const std::string slowPre =
        "{\"op\":\"pre\",\"modelText\":\"model tiny 32\\nconv c1 8 8 "
        "64 16 3 3 1\\nfc head 64 128\\n\",\"macs\":32}";
    const std::string quickPre =
        "{\"op\":\"pre\",\"modelText\":\"model tiny 32\\nconv c1 8 8 "
        "64 16 3 3 1\\nfc head 64 128\\n\",\"macs\":256,"
        "\"proportional\":true}";

    // Hold the single evaluation lane busy with a real sweep...
    std::thread busy([&] {
        const std::string response =
            service.handleLine(slowPre).response;
        EXPECT_NE(response.rfind("{\"ok\":false", 0), 0u) << response;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // ...heavy work beyond the cap is refused with a retryable
    // envelope, while cheap ops still answer.
    const std::string refused =
        service.handleLine(quickPre).response;
    EXPECT_EQ(refused.rfind("{\"ok\":false", 0), 0u) << refused;
    EXPECT_NE(refused.find("\"code\":\"UNAVAILABLE\""),
              std::string::npos)
        << refused;
    EXPECT_NE(refused.find("\"retryable\":true"), std::string::npos);
    EXPECT_EQ(service.handleLine("{\"op\":\"ping\"}").response,
              "{\"pong\":true}");
    busy.join();

    // With the lane free again the same request is admitted.
    const std::string admitted =
        service.handleLine(quickPre).response;
    EXPECT_NE(admitted.rfind("{\"ok\":false", 0), 0u) << admitted;
}
