/**
 * @file
 * Randomised property tests (seeded, deterministic):
 *
 *  - the analytical C3P engine must agree with the brute-force
 *    coordinate-enumerating reference on random divisible loop nests
 *    across tensors and capacities;
 *  - every mapping candidate the enumerator produces for random
 *    layers/configs must be legal and satisfy the access-accounting
 *    invariants (exact output traffic, cold-tensor floors, capacity
 *    monotonicity);
 *  - the search's score lower bound must never exceed the exact score
 *    of any candidate, and the pruned search must return the same
 *    best mapping as the exhaustive one (pruning soundness).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

#include "c3p/access.hpp"
#include "mapper/bound.hpp"
#include "mapper/candidates.hpp"
#include "mapper/search.hpp"
#include "tech/technology.hpp"
#include "verif/interpreter.hpp"
#include "verif/random_mapping.hpp"
#include "verif/replay.hpp"

using namespace nnbaton;

namespace {

/** Deterministic RNG so failures are reproducible. */
std::mt19937 &
rng(uint32_t seed)
{
    static std::mt19937 gen;
    gen.seed(seed);
    return gen;
}

int
pick(std::mt19937 &g, std::initializer_list<int> values)
{
    std::uniform_int_distribution<size_t> d(0, values.size() - 1);
    return *(values.begin() + d(g));
}

/** A random small layer with a matching random nest. */
struct FuzzCase
{
    ConvLayer layer;
    LoopNest nest;
};

FuzzCase
randomNest(std::mt19937 &g)
{
    FuzzCase c;
    const int k = pick(g, {1, 3, 5});
    const int s = pick(g, {1, 2});
    const int atom_h = pick(g, {1, 2, 4});
    const int atom_w = pick(g, {1, 2, 4});
    const int atom_c = pick(g, {2, 4});
    const int atom_i = pick(g, {2, 4});
    const int th = pick(g, {1, 2, 3});
    const int tw = pick(g, {1, 2, 4});
    const int tc = pick(g, {1, 2, 3});
    const int ti = pick(g, {1, 2});

    c.layer = makeConv("fuzz", atom_h * th, atom_w * tw, atom_c * tc,
                       atom_i * ti, k, k, s);

    // Random loop order over the four dims (kernel loops sometimes).
    std::vector<Loop> loops;
    if (th > 1)
        loops.push_back({Dim::OH, th});
    if (tw > 1)
        loops.push_back({Dim::OW, tw});
    if (tc > 1)
        loops.push_back({Dim::OC, tc});
    if (ti > 1)
        loops.push_back({Dim::IC, ti});
    if (k > 1 && pick(g, {0, 1})) {
        loops.push_back({Dim::KH, k});
        loops.push_back({Dim::KW, k});
    }
    std::shuffle(loops.begin(), loops.end(), g);
    c.nest.loops = loops;
    c.nest.atom = TileSpan{};
    c.nest.atom.ho = atom_h;
    c.nest.atom.wo = atom_w;
    c.nest.atom.co = atom_c;
    c.nest.atom.ci = atom_i;
    // Kernel dims not covered by loops stay whole in the atom.
    bool kh_looped = false;
    for (const Loop &l : loops)
        kh_looped |= l.dim == Dim::KH;
    if (!kh_looped) {
        c.nest.atom.kh = k;
        c.nest.atom.kw = k;
    }
    return c;
}

} // namespace

class C3PFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(C3PFuzz, AnalyticalMatchesReferenceOnRandomNests)
{
    auto &g = rng(GetParam());
    for (int iter = 0; iter < 20; ++iter) {
        const FuzzCase c = randomNest(g);
        for (Tensor t : {Tensor::Weights, Tensor::Activations,
                         Tensor::Outputs}) {
            // Capacities at every boundary footprint +/- 1.
            for (size_t b = 0; b <= c.nest.loops.size(); ++b) {
                const int64_t fp =
                    footprintBytes(t, c.nest.spanBelow(b), c.layer);
                for (int64_t cap : {fp - 1, fp, fp + 7}) {
                    if (cap <= 0)
                        continue;
                    const auto ana =
                        analyzeBuffer(c.nest, t, c.layer, cap);
                    const auto ref =
                        referenceFills(c.nest, t, c.layer, cap);
                    ASSERT_EQ(ana.fillBytes, ref.fillBytes)
                        << "seed " << GetParam() << " iter " << iter
                        << " tensor " << toString(t) << " cap " << cap
                        << " nest " << c.nest.toString() << " layer "
                        << c.layer.toString();
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, C3PFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

class MappingFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(MappingFuzz, CandidatesLegalAndInvariantsHold)
{
    auto &g = rng(GetParam() * 977u);
    for (int iter = 0; iter < 4; ++iter) {
        AcceleratorConfig cfg;
        cfg.package.chiplets = pick(g, {1, 2, 4, 8});
        cfg.chiplet.cores = pick(g, {1, 2, 4, 8});
        cfg.core.lanes = pick(g, {4, 8, 16});
        cfg.core.vectorSize = pick(g, {4, 8, 16});
        cfg.core.ol1Bytes = pick(g, {768, 1536, 3072});
        cfg.core.al1Bytes = pick(g, {800, 2048, 8192});
        cfg.core.wl1Bytes = pick(g, {8192, 18432, 65536});
        cfg.chiplet.al2Bytes = pick(g, {32768, 65536, 262144});
        cfg.validate();

        const ConvLayer layer = makeConv(
            "fuzz", pick(g, {7, 14, 28, 56}), pick(g, {7, 14, 28, 56}),
            pick(g, {32, 64, 256}), pick(g, {16, 64, 256}),
            pick(g, {1, 3}), pick(g, {1, 3}), pick(g, {1, 2}));

        const auto cands =
            enumerateCandidates(layer, cfg, SearchEffort::Fast);
        for (const Mapping &m : cands) {
            ASSERT_EQ(checkMapping(layer, cfg, m), "")
                << "seed " << GetParam() << " " << m.toString();
            const auto a = analyzeMapping(layer, cfg, m);
            // Output traffic is exact regardless of mapping.
            EXPECT_EQ(a.counts.dramWriteBits,
                      layer.outputVolume() * 8);
            // Weights must be read from DRAM at least once.
            EXPECT_GE(a.counts.dramReadBits(),
                      layer.weightVolume() * 8);
            // Utilisation fractions stay in (0, 1].
            EXPECT_GT(a.laneUtilization, 0.0);
            EXPECT_LE(a.laneUtilization, 1.0);
            EXPECT_GT(a.vectorUtilization, 0.0);
            EXPECT_LE(a.vectorUtilization, 1.0);
            // No D2D traffic on a single chiplet.
            if (cfg.package.chiplets == 1)
                EXPECT_EQ(a.counts.d2dBits, 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

class CapacityMonotoneFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CapacityMonotoneFuzz, LargerBuffersNeverIncreaseTraffic)
{
    auto &g = rng(GetParam() * 31337u);
    const ConvLayer layer = makeConv(
        "fuzz", pick(g, {14, 28, 56}), pick(g, {14, 28, 56}),
        pick(g, {64, 256}), pick(g, {64, 128}), 3, 3, 1);
    AcceleratorConfig cfg = caseStudyConfig();

    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = cfg.chiplet.cores;
    m.chipletTile = {14, 14, 64};
    m.hoC = 4;
    m.woC = 4;
    if (!checkMapping(layer, cfg, m).empty())
        GTEST_SKIP();

    int64_t prev_dram = INT64_MAX;
    for (int64_t wl1 = 2048; wl1 <= 262144; wl1 *= 2) {
        cfg.core.wl1Bytes = wl1;
        const auto a = analyzeMapping(layer, cfg, m);
        EXPECT_LE(a.counts.dramReadBits(), prev_dram) << wl1;
        prev_dram = a.counts.dramReadBits();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapacityMonotoneFuzz,
                         ::testing::Values(7u, 11u, 19u));

namespace {

AcceleratorConfig
randomConfig(std::mt19937 &g)
{
    AcceleratorConfig cfg;
    cfg.package.chiplets = pick(g, {1, 2, 4, 8});
    cfg.chiplet.cores = pick(g, {1, 2, 4, 8});
    cfg.core.lanes = pick(g, {4, 8, 16});
    cfg.core.vectorSize = pick(g, {4, 8, 16});
    cfg.core.ol1Bytes = pick(g, {768, 1536, 3072});
    cfg.core.al1Bytes = pick(g, {800, 2048, 8192});
    cfg.core.wl1Bytes = pick(g, {8192, 18432, 65536});
    cfg.chiplet.al2Bytes = pick(g, {32768, 65536, 262144});
    cfg.validate();
    return cfg;
}

ConvLayer
randomLayer(std::mt19937 &g)
{
    // Every third layer depthwise; strided 1x1 shortcuts included
    // deliberately — their input footprint is the tricky case for the
    // activation floor in the bound.
    if (pick(g, {0, 1, 2}) == 0) {
        return makeDepthwiseConv("fuzz-dw", pick(g, {7, 14, 28}),
                                 pick(g, {7, 14, 28}),
                                 pick(g, {32, 64, 128}), 3,
                                 pick(g, {1, 2}));
    }
    return makeConv("fuzz", pick(g, {7, 14, 28, 56}),
                    pick(g, {7, 14, 28, 56}), pick(g, {32, 64, 256}),
                    pick(g, {16, 64, 256}), pick(g, {1, 3}),
                    pick(g, {1, 3}), pick(g, {1, 2}));
}

double
exactScore(const MappingChoice &c, Objective objective)
{
    return objective == Objective::MinEnergy ? c.energy.total()
                                             : c.edp();
}

} // namespace

class PruningFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(PruningFuzz, BoundNeverExceedsExactScore)
{
    auto &g = rng(GetParam() * 7919u);
    const TechnologyModel &tech = defaultTech();
    for (int iter = 0; iter < 3; ++iter) {
        const AcceleratorConfig cfg = randomConfig(g);
        const ConvLayer layer = randomLayer(g);
        const auto cands =
            enumerateCandidates(layer, cfg, SearchEffort::Fast);
        for (const Mapping &m : cands) {
            const MappingChoice c =
                evaluateMapping(layer, cfg, tech, m);
            for (Objective obj :
                 {Objective::MinEnergy, Objective::MinEdp}) {
                const double bound =
                    scoreLowerBound(layer, cfg, tech, m, obj);
                const double exact = exactScore(c, obj);
                // Soundness: allow only FP rounding slack.
                EXPECT_LE(bound, exact * (1.0 + 1e-9))
                    << "seed " << GetParam() << " iter " << iter
                    << " obj " << static_cast<int>(obj) << " layer "
                    << layer.toString() << " mapping " << m.toString();
                // The tier-2 refined bound must also stay a floor,
                // and never below the closed-form tier-1 bound it
                // sharpens (otherwise computing it was pointless).
                const double refined =
                    refinedScoreLowerBound(layer, cfg, tech, m, obj);
                EXPECT_LE(refined, exact * (1.0 + 1e-9))
                    << "refined bound exceeds exact: seed "
                    << GetParam() << " iter " << iter << " obj "
                    << static_cast<int>(obj) << " layer "
                    << layer.toString() << " mapping " << m.toString();
                EXPECT_GE(refined, bound * (1.0 - 1e-9))
                    << "refined bound looser than tier-1: seed "
                    << GetParam() << " iter " << iter << " obj "
                    << static_cast<int>(obj) << " layer "
                    << layer.toString() << " mapping " << m.toString();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_P(PruningFuzz, SubtreeBoundNeverExceedsAnyLeafScore)
{
    // The branch-and-bound analogue of the per-candidate check: a
    // subtree's bound must floor *every* leaf it covers, i.e. stay
    // below the minimum exact score over the subtree.
    auto &g = rng(GetParam() * 15485863u);
    const TechnologyModel &tech = defaultTech();
    for (int iter = 0; iter < 3; ++iter) {
        const AcceleratorConfig cfg = randomConfig(g);
        const ConvLayer layer = randomLayer(g);
        const CandidateSpace space(layer, cfg, SearchEffort::Fast);
        for (size_t s = 0; s < space.size(); ++s) {
            const auto leaves = space.expand(s);
            if (leaves.empty())
                continue;
            for (Objective obj :
                 {Objective::MinEnergy, Objective::MinEdp}) {
                const double bound = subtreeScoreLowerBound(
                    layer, cfg, tech, space.subtree(s), obj);
                double min_exact =
                    std::numeric_limits<double>::max();
                for (const CandidateSpace::Leaf &leaf : leaves) {
                    const MappingChoice c = evaluateMapping(
                        layer, cfg, tech, leaf.mapping);
                    min_exact =
                        std::min(min_exact, exactScore(c, obj));
                }
                EXPECT_LE(bound, min_exact * (1.0 + 1e-9))
                    << "seed " << GetParam() << " iter " << iter
                    << " subtree " << s << " obj "
                    << static_cast<int>(obj) << " layer "
                    << layer.toString();
            }
        }
    }
}

class PruningSearchFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(PruningSearchFuzz, PrunedSearchMatchesExhaustive)
{
    auto &g = rng(GetParam() * 104729u);
    const TechnologyModel &tech = defaultTech();
    for (int iter = 0; iter < 3; ++iter) {
        const AcceleratorConfig cfg = randomConfig(g);
        const ConvLayer layer = randomLayer(g);
        for (Objective obj :
             {Objective::MinEnergy, Objective::MinEdp}) {
            SearchOptions pruned_opt;
            pruned_opt.boundPruning = true;
            SearchStats pruned_stats;
            const auto pruned =
                searchLayer(layer, cfg, tech, SearchEffort::Fast, obj,
                            pruned_opt, &pruned_stats);

            SearchOptions full_opt;
            full_opt.boundPruning = false;
            SearchStats full_stats;
            const auto full =
                searchLayer(layer, cfg, tech, SearchEffort::Fast, obj,
                            full_opt, &full_stats);

            ASSERT_EQ(pruned.has_value(), full.has_value())
                << "seed " << GetParam() << " iter " << iter;
            if (!pruned)
                continue;
            // Same winner, bit-identical score.
            EXPECT_EQ(exactScore(*pruned, obj), exactScore(*full, obj))
                << layer.toString();
            EXPECT_EQ(pruned->mapping.toString(),
                      full->mapping.toString())
                << layer.toString();
            // Pruning only ever skips work.
            EXPECT_EQ(full_stats.pruned, 0);
            EXPECT_LE(pruned_stats.evaluated, full_stats.evaluated);
            EXPECT_EQ(pruned_stats.evaluated + pruned_stats.pruned,
                      full_stats.evaluated);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningSearchFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

namespace {

/**
 * A layer small enough that the coordinate-enumerating replay stays
 * cheap (its cost is the number of touched elements).
 */
ConvLayer
smallLayer(std::mt19937 &g)
{
    // Batch stays small so the coordinate enumeration (linear in
    // touched elements, hence in batch) remains cheap.
    const int batch = pick(g, {1, 1, 2, 3});
    switch (pick(g, {0, 1, 2, 3})) {
      case 0: {
        ConvLayer l = makeDepthwiseConv(
            "fuzz-dw", pick(g, {4, 7, 8}), pick(g, {4, 7, 8}),
            pick(g, {8, 16, 32}), 3, pick(g, {1, 2}));
        l.batch = batch;
        return l;
      }
      case 1:
        // Native GEMM, sometimes with a softmax-style vector tail.
        return makeGemm("fuzz-gemm", pick(g, {15, 24, 49, 64}),
                        pick(g, {8, 16, 32}), pick(g, {8, 16, 32}),
                        batch, pick(g, {0, 0, 3}));
      default: {
        ConvLayer l = makeConv(
            "fuzz", pick(g, {4, 7, 8, 14}), pick(g, {4, 7, 8, 14}),
            pick(g, {8, 16, 32}), pick(g, {8, 16, 32}),
            pick(g, {1, 3}), pick(g, {1, 3}), pick(g, {1, 2}));
        l.batch = batch;
        return l;
      }
    }
}

} // namespace

class ReplayFuzz : public ::testing::TestWithParam<uint32_t>
{
};

/**
 * The full-hierarchy differential check of this PR's tentpole: random
 * legal mappings (generator, not the candidate enumerator) on random
 * layers and buffer capacities must replay to bit-identical access
 * counts, cycles and energy.  Ten seeds x 50 mappings = 500 cases.
 */
TEST_P(ReplayFuzz, FullHierarchyReplayMatchesAnalyticalEngine)
{
    auto &g = rng(GetParam() * 48271u);
    const TechnologyModel &tech = defaultTech();
    int replayed = 0;
    for (int attempt = 0; attempt < 400 && replayed < 50; ++attempt) {
        const AcceleratorConfig cfg = randomConfig(g);
        const ConvLayer layer = smallLayer(g);
        const auto mapping = randomMapping(g, layer, cfg, 16);
        if (!mapping)
            continue;
        ++replayed;
        const DifferentialReport report =
            diffMapping(layer, cfg, tech, *mapping);
        if (!report.ok()) {
            // Shrink before reporting so the failure is actionable.
            DiffCase c{layer, cfg, *mapping};
            const DiffCase reduced = minimizeFailure(
                c, [&](const DiffCase &n) {
                    return !diffMapping(n.layer, n.cfg, tech,
                                        n.mapping)
                                .ok();
                });
            FAIL() << "seed " << GetParam() << " replay mismatch\n"
                   << report.toString() << "full case: "
                   << c.toString() << "\nminimised: "
                   << reduced.toString() << "\n"
                   << diffMapping(reduced.layer, reduced.cfg, tech,
                                  reduced.mapping)
                          .toString();
        }
    }
    // The generator must actually exercise the differential check.
    EXPECT_EQ(replayed, 50) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u));
