/**
 * @file
 * Tests for the mapping specification: derived per-level shapes and
 * the legality checker.
 */

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

using namespace nnbaton;

namespace {

ConvLayer
testLayer()
{
    return makeConv("t", 56, 56, 256, 128, 3, 3, 1);
}

Mapping
baseMapping()
{
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipSplit = {1, 1};
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    m.pkgOrder = LoopOrder::ChannelPriority;
    m.chipOrder = LoopOrder::ChannelPriority;
    return m;
}

} // namespace

TEST(DeriveShapes, ChannelPackageSplit)
{
    const auto cfg = caseStudyConfig();
    const auto s = deriveShapes(testLayer(), cfg, baseMapping());
    // C-type: full plane, co / 4 chiplets.
    EXPECT_EQ(s.chipletMacro.ho, 56);
    EXPECT_EQ(s.chipletMacro.wo, 56);
    EXPECT_EQ(s.chipletMacro.co, 64);
    // Package temporal trips: ceil(56/16)=4, ceil(56/16)=4, 64/64=1.
    EXPECT_EQ(s.pkgTripsH, 4);
    EXPECT_EQ(s.pkgTripsW, 4);
    EXPECT_EQ(s.pkgTripsC, 1);
    // Chiplet spatial C-type with 8 ways: 64/8 = 8 channels per core.
    EXPECT_EQ(s.coreMacro.co, 8);
    EXPECT_EQ(s.coreMacro.ho, 16);
    // Core tile: 8x8 plane, L=8 lanes.
    EXPECT_EQ(s.coreTile.ho, 8);
    EXPECT_EQ(s.coreTile.co, 8);
    EXPECT_EQ(s.chipTripsH, 2);
    EXPECT_EQ(s.chipTripsW, 2);
    EXPECT_EQ(s.chipTripsC, 1);
    EXPECT_EQ(s.coreTilesPerChiplet(), 4 * 4 * 2 * 2);
}

TEST(DeriveShapes, PlanePackageSplit)
{
    const auto cfg = caseStudyConfig();
    Mapping m = baseMapping();
    m.pkgSpatial = PackagePartition::Plane;
    m.pkgSplit = {2, 2};
    m.chipletTile = {28, 28, 64};
    const auto s = deriveShapes(testLayer(), cfg, m);
    EXPECT_EQ(s.chipletMacro.ho, 28);
    EXPECT_EQ(s.chipletMacro.wo, 28);
    EXPECT_EQ(s.chipletMacro.co, 256);
    EXPECT_EQ(s.pkgTripsC, 4); // 256 / 64
}

TEST(DeriveShapes, HybridChipletSplit)
{
    const auto cfg = caseStudyConfig();
    Mapping m = baseMapping();
    m.chipSpatial = ChipletPartition::Hybrid;
    m.chipChannelWays = 2;
    m.chipSplit = {2, 2};
    m.chipletTile = {16, 16, 64};
    const auto s = deriveShapes(testLayer(), cfg, m);
    EXPECT_EQ(s.coreMacro.ho, 8);
    EXPECT_EQ(s.coreMacro.wo, 8);
    EXPECT_EQ(s.coreMacro.co, 32);
    EXPECT_EQ(s.chipTripsC, 4); // 32 channels / 8 lanes
}

TEST(DeriveShapes, TileClampedToMacro)
{
    const auto cfg = caseStudyConfig();
    Mapping m = baseMapping();
    m.chipletTile = {512, 512, 4096}; // larger than the workload
    const auto s = deriveShapes(testLayer(), cfg, m);
    EXPECT_EQ(s.chipletTile.ho, 56);
    EXPECT_EQ(s.chipletTile.co, 64);
    EXPECT_EQ(s.pkgTrips(), 1);
}

TEST(CheckMapping, AcceptsLegal)
{
    EXPECT_EQ(checkMapping(testLayer(), caseStudyConfig(),
                           baseMapping()),
              "");
}

TEST(CheckMapping, RejectsOversizedCoreTile)
{
    Mapping m = baseMapping();
    m.hoC = 16;
    m.woC = 16; // 256 psums x 8 lanes x 24 bit > 1.5 KB O-L1
    EXPECT_NE(checkMapping(testLayer(), caseStudyConfig(), m), "");
}

TEST(CheckMapping, RejectsBadPackageSplit)
{
    Mapping m = baseMapping();
    m.pkgSpatial = PackagePartition::Plane;
    m.pkgSplit = {2, 1}; // covers 2 chiplets, not 4
    EXPECT_NE(checkMapping(testLayer(), caseStudyConfig(), m), "");
}

TEST(CheckMapping, RejectsChannelSplitOnNarrowLayer)
{
    const ConvLayer narrow = makeConv("n", 56, 56, 2, 16, 3, 3, 1);
    Mapping m = baseMapping();
    // C-type package split needs co >= chiplets.
    EXPECT_NE(checkMapping(narrow, caseStudyConfig(), m), "");
}

TEST(CheckMapping, RejectsInconsistentChipletWays)
{
    Mapping m = baseMapping();
    m.chipChannelWays = 4; // cw * pw = 4 != 8 cores
    EXPECT_NE(checkMapping(testLayer(), caseStudyConfig(), m), "");
    m = baseMapping();
    m.chipSpatial = ChipletPartition::Plane;
    m.chipChannelWays = 8; // P-type must have cw == 1
    EXPECT_NE(checkMapping(testLayer(), caseStudyConfig(), m), "");
    m = baseMapping();
    m.chipSpatial = ChipletPartition::Hybrid;
    m.chipChannelWays = 8;
    m.chipSplit = {1, 1}; // H-type needs both ways >= 2
    EXPECT_NE(checkMapping(testLayer(), caseStudyConfig(), m), "");
}

TEST(CheckMapping, RejectsAl1Overflow)
{
    // A 7x7/s2 kernel inflates the input slice beyond 800 B A-L1 for
    // an 8x8 core tile: (8-1)*2+7 = 21 -> 21*21*8 = 3528 B.
    const ConvLayer big = makeConv("b", 112, 112, 64, 16, 7, 7, 2);
    Mapping m = baseMapping();
    m.chipletTile = {16, 16, 16};
    m.chipChannelWays = 8;
    EXPECT_NE(checkMapping(big, caseStudyConfig(), m), "");
    // A 2x2 core tile fits: (2-1)*2+7 = 9 -> 9*9*8 = 648 B.
    m.hoC = 2;
    m.woC = 2;
    EXPECT_EQ(checkMapping(big, caseStudyConfig(), m), "");
}

TEST(Mapping, Labels)
{
    Mapping m = baseMapping();
    EXPECT_EQ(m.spatialLabel(), "(C,C)");
    m.pkgSpatial = PackagePartition::Plane;
    m.chipSpatial = ChipletPartition::Hybrid;
    EXPECT_EQ(m.spatialLabel(), "(P,H)");
    EXPECT_FALSE(m.toString().empty());
}

TEST(Mapping, EnumToStrings)
{
    EXPECT_STREQ(toString(PackagePartition::Channel), "C");
    EXPECT_STREQ(toString(PackagePartition::Plane), "P");
    EXPECT_STREQ(toString(ChipletPartition::Hybrid), "H");
    EXPECT_STREQ(toString(LoopOrder::ChannelPriority), "CP");
    EXPECT_STREQ(toString(LoopOrder::PlanePriority), "PP");
}

TEST(WorkShape, Volume)
{
    EXPECT_EQ((WorkShape{4, 5, 6}).volume(), 120);
    EXPECT_EQ((WorkShape{}).volume(), 0);
}
