/**
 * @file
 * Malformed-input fuzzing (seeded, deterministic): the JSON parser,
 * the strict CLI numeric parsers, the model-file loader and the sweep
 * checkpoint loader must reject arbitrary garbage with a structured
 * error — never crash, hang or silently accept it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>

#include "common/json.hpp"
#include "common/parse.hpp"
#include "common/status.hpp"
#include "dse/checkpoint.hpp"
#include "nn/parser.hpp"

using namespace nnbaton;

namespace {

std::string
tmpFile(const char *name, const std::string &contents)
{
    const std::string path = ::testing::TempDir() + name;
    FILE *f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    if (f) {
        std::fwrite(contents.data(), 1, contents.size(), f);
        std::fclose(f);
    }
    return path;
}

} // namespace

TEST(JsonFuzz, MalformedDocumentsAreRejected)
{
    const char *cases[] = {
        "",
        "   ",
        "{",
        "}",
        "[",
        "]",
        "{\"a\"",
        "{\"a\":}",
        "{\"a\":1,}",
        "{,}",
        "[1,]",
        "[1 2]",
        "{\"a\":1}{",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\u12g4\"",
        "tru",
        "nul",
        "1e",
        "1e+",
        "-",
        "--1",
        "0x10",
        "NaN",
        "Infinity",
        "{'single': 1}",
        "{\"dup\": 1 \"dup\": 2}",
    };
    for (const char *text : cases) {
        const JsonParseResult r = parseJson(text);
        EXPECT_FALSE(r.ok()) << "accepted: " << text;
        EXPECT_FALSE(r.error.empty()) << text;
    }
}

TEST(JsonFuzz, TruncationsOfAValidDocumentAreRejected)
{
    const std::string doc = "{\"a\": [1, 2.5, true, null], "
                            "\"b\": {\"c\": \"str\\n\", \"d\": -3e2}}";
    ASSERT_TRUE(parseJson(doc).ok());
    // Every strict prefix is malformed (none happens to be a shorter
    // valid document for this text).
    for (size_t n = 0; n + 1 < doc.size(); ++n) {
        const JsonParseResult r = parseJson(doc.substr(0, n));
        EXPECT_FALSE(r.ok()) << "prefix length " << n;
    }
}

TEST(JsonFuzz, DeepNestingHitsTheDepthGuardNotTheStack)
{
    const std::string deep(100000, '[');
    const JsonParseResult r = parseJson(deep);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("deep"), std::string::npos) << r.error;

    // At-the-limit nesting still parses.
    std::string ok;
    for (int i = 0; i < 100; ++i)
        ok += '[';
    for (int i = 0; i < 100; ++i)
        ok += ']';
    EXPECT_TRUE(parseJson(ok).ok());
}

TEST(JsonFuzz, RandomByteNoiseNeverCrashes)
{
    std::mt19937 gen(0xf00d);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> len(0, 64);
    for (int iter = 0; iter < 2000; ++iter) {
        std::string text;
        const int n = len(gen);
        for (int i = 0; i < n; ++i)
            text.push_back(static_cast<char>(byte(gen)));
        // Must terminate and either parse or report an offset inside
        // (or just past) the input.
        const JsonParseResult r = parseJson(text);
        if (!r.ok())
            EXPECT_LE(r.errorOffset, text.size());
    }
}

TEST(ParseFuzz, NumericFlagGarbageIsRejected)
{
    const char *bad[] = {
        "",     " ",    "x",        "12x",  "x12",  "1 2",  "-1",
        "0",    "+",    "1e",       "0x10", "␀",    "¹²",   " 1",
        "1 ",   "--2",  "99999999999999999999999999", "12.5",
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parsePositiveInt64("--n", text).ok()) << text;
        EXPECT_FALSE(parsePositiveInt("--n", text).ok()) << text;
    }
    // Int-range boundary: fits in 64 bits but not in int.
    EXPECT_TRUE(parsePositiveInt64("--n", "3000000000").ok());
    EXPECT_FALSE(parsePositiveInt("--n", "3000000000").ok());
    EXPECT_EQ(parsePositiveInt("--n", "3000000000").status().code(),
              StatusCode::InvalidArgument);

    const char *bad_double[] = {"", "x", "1x", "-1.5", "0",
                                "nan", "inf", "-inf", "1e999"};
    for (const char *text : bad_double)
        EXPECT_FALSE(parsePositiveDouble("--d", text).ok()) << text;
    EXPECT_DOUBLE_EQ(parsePositiveDouble("--d", "2.5").value(), 2.5);
    // Error messages name the flag so the CLI user knows what to fix.
    EXPECT_NE(parsePositiveInt("--threads", "x")
                  .status()
                  .message()
                  .find("--threads"),
              std::string::npos);
}

TEST(ModelFileFuzz, GarbageModelFilesAreStructuredErrors)
{
    EXPECT_EQ(loadModelFile(::testing::TempDir() + "missing_model.nn")
                  .status()
                  .code(),
              StatusCode::NotFound);

    const char *bad[] = {
        "",
        "conv a 1 1 1 1 1 1 1\n",          // layer before model line
        "model\n",                          // missing fields
        "model m 0\n",                      // non-positive resolution
        "model m 224\n",                    // no layers
        "model m 224\nmodel m 224\n",       // duplicate model line
        "model m 224\nconv a 1 2\n",        // wrong arity
        "model m 224\nconv a 1 1 1 1 1 1 x\n", // bad integer
        "model m 224\nwarp a 1 1\n",        // unknown layer kind
        "model m 224\nfc a -4 4\n",         // negative feature count
    };
    int idx = 0;
    for (const char *text : bad) {
        const std::string path = tmpFile(
            ("fuzz_model_" + std::to_string(idx++) + ".nn").c_str(),
            text);
        const StatusOr<Model> r = loadModelFile(path);
        EXPECT_FALSE(r.ok()) << text;
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument)
            << text;
        std::remove(path.c_str());
    }
}

TEST(CheckpointFuzz, GarbageCheckpointsAreDataLoss)
{
    const char *bad[] = {
        "",
        "not json at all",
        "[]",
        "42",
        "{}",
        "{\"format\": \"wrong\"}",
        "{\"format\": \"nn-baton-sweep-checkpoint\"}",
        "{\"format\": \"nn-baton-sweep-checkpoint\", \"version\": 99,"
        " \"fingerprint\": \"f\", \"complete\": true,"
        " \"entries\": []}",
        "{\"format\": \"nn-baton-sweep-checkpoint\", \"version\": 1,"
        " \"fingerprint\": \"f\", \"complete\": true,"
        " \"entries\": 7}",
        "{\"format\": \"nn-baton-sweep-checkpoint\", \"version\": 1,"
        " \"fingerprint\": \"f\", \"complete\": true,"
        " \"entries\": [{\"kind\": \"valid\"}]}",
    };
    int idx = 0;
    for (const char *text : bad) {
        const std::string path = tmpFile(
            ("fuzz_ckpt_" + std::to_string(idx++) + ".json").c_str(),
            text);
        const auto r = loadSweepCheckpoint(path);
        EXPECT_FALSE(r.ok()) << text;
        EXPECT_EQ(r.status().code(), StatusCode::DataLoss) << text;
        std::remove(path.c_str());
    }
}
