/**
 * @file
 * Unit tests for the thread-pool / parallel-for utility: index
 * coverage, serial degeneration, the nested-free guarantee, and
 * exception propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/status.hpp"

using namespace nnbaton;

TEST(HardwareThreads, AtLeastOne)
{
    EXPECT_GE(hardwareThreads(), 1);
}

TEST(ThreadPool, LaneCountIncludesCaller)
{
    EXPECT_EQ(ThreadPool(1).threads(), 1);
    EXPECT_EQ(ThreadPool(0).threads(), 1); // degenerates, never 0
    EXPECT_EQ(ThreadPool(4).threads(), 4);
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        constexpr int64_t n = 1000;
        std::vector<std::atomic<int>> visits(n);
        pool.parallelFor(n, [&](int64_t i) {
            visits[static_cast<size_t>(i)].fetch_add(1);
        });
        for (int64_t i = 0; i < n; ++i)
            ASSERT_EQ(visits[static_cast<size_t>(i)].load(), 1)
                << "threads " << threads << " index " << i;
    }
}

TEST(ThreadPool, EmptyAndNegativeRangesRunNothing)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](int64_t) { ++calls; });
    pool.parallelFor(-5, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleIndexRunsInlineOnCaller)
{
    ThreadPool pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran;
    pool.parallelFor(1, [&](int64_t) {
        ran = std::this_thread::get_id();
    });
    EXPECT_EQ(ran, caller);
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    for (int job = 0; job < 50; ++job)
        pool.parallelFor(10, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 50 * 45);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool outer(4);
    ThreadPool inner(4);
    std::atomic<int> nested_parallel{0};
    std::atomic<int64_t> inner_calls{0};
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    outer.parallelFor(8, [&](int64_t) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        const std::thread::id me = std::this_thread::get_id();
        inner.parallelFor(8, [&](int64_t) {
            ++inner_calls;
            // The nested-free guarantee: inner indices stay on the
            // thread that owns the outer index.
            if (std::this_thread::get_id() != me)
                ++nested_parallel;
        });
    });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    EXPECT_EQ(inner_calls.load(), 64);
    EXPECT_EQ(nested_parallel.load(), 0);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(pool.parallelFor(100,
                                      [&](int64_t i) {
                                          if (i == 42)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                     std::runtime_error)
            << "threads " << threads;
        // The pool survives a throwing job.
        std::atomic<int64_t> ok{0};
        pool.parallelFor(10, [&](int64_t) { ++ok; });
        EXPECT_EQ(ok.load(), 10);
    }
}

TEST(ThreadPool, StatusErrorCrossesTheJoinIntact)
{
    // The resilient sweep relies on a worker's StatusError arriving
    // at the caller with its code and message preserved (the pool
    // rethrows via std::exception_ptr, not a flattened copy).
    ThreadPool pool(4);
    try {
        pool.parallelFor(64, [&](int64_t i) {
            if (i == 17) {
                throwStatus(errUnavailable("lane fault at %d",
                                           static_cast<int>(i)));
            }
        });
        ADD_FAILURE() << "expected a StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::Unavailable);
        EXPECT_EQ(e.status().message(), "lane fault at 17");
    }
    // The pool survives and is reusable after the rethrow.
    std::atomic<int64_t> ok{0};
    pool.parallelFor(8, [&](int64_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, ExceptionAbandonsRemainingIndices)
{
    // Serial pool: indices run in order, so everything after the
    // throwing index must be skipped.
    ThreadPool pool(1);
    std::vector<int> visited;
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](int64_t i) {
                                      visited.push_back(
                                          static_cast<int>(i));
                                      if (i == 5)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(visited.size(), 6u);
}
