/**
 * @file
 * Tests for the design-space enumeration and the pre-design explorer.
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include "common/util.hpp"
#include "dse/explorer.hpp"
#include "dse/progress.hpp"
#include "dse/space.hpp"
#include "nn/model.hpp"

using namespace nnbaton;

TEST(EnumerateCompute, AllProductsMatch)
{
    for (int64_t macs : {1024, 2048, 4096}) {
        const auto all = enumerateCompute(macs);
        EXPECT_FALSE(all.empty()) << macs;
        for (const auto &c : all)
            EXPECT_EQ(c.totalMacs(), macs);
    }
}

TEST(EnumerateCompute, PaperCountFor2048)
{
    // Paper section VI-B.1 quotes "up to 63 possibilities"; that
    // count is not derivable from the table II option lists (P, L in
    // {2,4,8,16}, N_C in {1..16}, N_P in {1..8} give exactly 32
    // ordered factorisations of 2048).  We assert our grid's exact
    // count and record the discrepancy in EXPERIMENTS.md.
    EXPECT_EQ(enumerateCompute(2048).size(), 32u);
}

TEST(EnumerateCompute, ContainsPaperTopPick)
{
    // The 4-4-16-8 scheme (chiplet, core, lane, vector).
    bool found = false;
    for (const auto &c : enumerateCompute(2048)) {
        if (c.chiplets == 4 && c.cores == 4 && c.lanes == 16 &&
            c.vectorSize == 8) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(EnumerateMemory, WithinTableTwoRangesAndPruned)
{
    const auto mems = enumerateMemory();
    EXPECT_FALSE(mems.empty());
    EXPECT_LT(static_cast<int64_t>(mems.size()), memoryGridSize());
    for (const auto &m : mems) {
        EXPECT_GE(m.ol1Bytes, 48);
        EXPECT_LE(m.ol1Bytes, 144);
        EXPECT_GE(m.al1Bytes, 1_KB);
        EXPECT_LE(m.al1Bytes, 128_KB);
        EXPECT_GE(m.wl1Bytes, 2_KB);
        EXPECT_LE(m.wl1Bytes, 256_KB);
        EXPECT_GE(m.al2Bytes, 32_KB);
        EXPECT_LE(m.al2Bytes, 256_KB);
        EXPECT_LE(m.al1Bytes, m.al2Bytes); // validity pruning
    }
}

TEST(ProportionalMemory, AnchoredAtCaseStudy)
{
    // The 8-core, 8x8 configuration must reproduce the section VI-A
    // buffer sizes exactly.
    const MemoryAllocation m =
        proportionalMemory({4, 8, 8, 8});
    EXPECT_EQ(m.ol1Bytes, 1536);
    EXPECT_EQ(m.al1Bytes, 800);
    EXPECT_EQ(m.wl1Bytes, 18_KB);
    EXPECT_EQ(m.al2Bytes, 64_KB);
}

TEST(ProportionalMemory, ScalesWithCompute)
{
    const MemoryAllocation big =
        proportionalMemory({4, 4, 16, 8});
    EXPECT_EQ(big.ol1Bytes, 1536 * 2); // 16 lanes
    EXPECT_EQ(big.wl1Bytes, 36_KB);    // 128 MACs per core
    EXPECT_EQ(big.al2Bytes, 32_KB);    // 4 cores
}

TEST(MakeConfig, RoundTrips)
{
    const AcceleratorConfig cfg =
        makeConfig({4, 8, 8, 8}, proportionalMemory({4, 8, 8, 8}));
    EXPECT_EQ(cfg.computeId(), "4-8-8-8");
    EXPECT_EQ(cfg.core.wl1Bytes, 18_KB);
}

namespace {

/** A two-layer mini model so explorer tests stay fast. */
Model
miniModel()
{
    Model m("mini", 64);
    m.addLayer(makeConv("a", 32, 32, 128, 64, 3, 3, 1));
    m.addLayer(makeConv("b", 16, 16, 256, 128, 1, 1, 1));
    return m;
}

} // namespace

TEST(Explore, ProportionalSweepProducesPoints)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    const DseResult r = explore(miniModel(), opt, defaultTech());
    EXPECT_EQ(r.swept, 32);
    EXPECT_GT(r.points.size(), 0u);
    EXPECT_EQ(r.swept, static_cast<int64_t>(r.points.size()) +
                           r.areaRejected + r.infeasible);
    ASSERT_TRUE(r.bestEdp().has_value());
    ASSERT_TRUE(r.bestEnergy().has_value());
}

TEST(Explore, AreaConstraintRejectsLargeChiplets)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    const DseResult open = explore(miniModel(), opt, defaultTech());
    opt.areaLimitMm2 = 2.0;
    const DseResult tight = explore(miniModel(), opt, defaultTech());
    EXPECT_GT(tight.areaRejected, 0);
    EXPECT_LT(tight.points.size(), open.points.size());
    // Figure 14: no 1-chiplet design meets the 2 mm^2 budget.
    for (const auto &p : tight.points)
        EXPECT_GT(p.compute.chiplets, 1) << p.toString();
}

TEST(Explore, BestPointsAreOptimalWithinSweep)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    const DseResult r = explore(miniModel(), opt, defaultTech());
    ASSERT_TRUE(r.bestEdp());
    ASSERT_TRUE(r.bestEnergy());
    const double best_edp = r.points[*r.bestEdp()].edp();
    const double best_e =
        r.points[*r.bestEnergy()].cost.energy.total();
    for (const auto &p : r.points) {
        EXPECT_GE(p.edp(), best_edp - 1e-6);
        EXPECT_GE(p.cost.energy.total(), best_e - 1e-6);
    }
}

TEST(DesignPoint, ToStringHasIdAndArea)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    const DseResult r = explore(miniModel(), opt, defaultTech());
    ASSERT_FALSE(r.points.empty());
    const std::string s = r.points.front().toString();
    EXPECT_NE(s.find("mm2"), std::string::npos);
    EXPECT_NE(s.find("mJ"), std::string::npos);
}

TEST(ExploreDeath, UnreachableMacCountIsFatal)
{
    DseOptions opt;
    opt.totalMacs = 3000; // not a product of table II options
    expectStatusThrow(
        [&] { explore(miniModel(), opt, defaultTech()); },
        "compute allocation");
}

TEST(Progress, FreshRateExcludesRestoredPoints)
{
    // 100 of 120 points done, 90 of those restored from a checkpoint:
    // only the 10 fresh points took sweep time, so a 5-second run is
    // doing 2/s — counting restored points would report 20/s and an
    // ETA 10x too optimistic right after a resume.
    const ProgressStats s = computeProgressStats(100, 120, 90, 5.0);
    EXPECT_EQ(s.done, 100);
    EXPECT_EQ(s.total, 120);
    EXPECT_EQ(s.restored, 90);
    EXPECT_EQ(s.fresh, 10);
    EXPECT_EQ(s.remaining, 20);
    EXPECT_DOUBLE_EQ(s.pointsPerSec, 2.0);
    EXPECT_DOUBLE_EQ(s.etaSeconds, 10.0);
    EXPECT_FALSE(s.finished());
}

TEST(Progress, AllRestoredReportsUnknownEtaNotDivisionByZero)
{
    // Everything restored, nothing fresh yet: rate 0, ETA unknown
    // (reported as 0, never NaN/inf), and not "finished" while points
    // remain.
    const ProgressStats s = computeProgressStats(90, 120, 90, 3.0);
    EXPECT_EQ(s.fresh, 0);
    EXPECT_DOUBLE_EQ(s.pointsPerSec, 0.0);
    EXPECT_DOUBLE_EQ(s.etaSeconds, 0.0);
    EXPECT_FALSE(s.finished());
}

TEST(Progress, FinishedSweepHasZeroEta)
{
    const ProgressStats s = computeProgressStats(120, 120, 90, 7.0);
    EXPECT_EQ(s.remaining, 0);
    EXPECT_TRUE(s.finished());
    EXPECT_DOUBLE_EQ(s.etaSeconds, 0.0);
    EXPECT_DOUBLE_EQ(s.pointsPerSec, 30.0 / 7.0);
}

TEST(Progress, ClampsInconsistentCounterReads)
{
    // Relaxed atomics can momentarily read done < restored or
    // done > total; derived figures must clamp, never go negative.
    const ProgressStats torn = computeProgressStats(5, 120, 9, 2.0);
    EXPECT_EQ(torn.fresh, 0);
    EXPECT_GE(torn.pointsPerSec, 0.0);
    EXPECT_GE(torn.etaSeconds, 0.0);
    const ProgressStats over = computeProgressStats(130, 120, 0, 2.0);
    EXPECT_EQ(over.done, 120);
    EXPECT_EQ(over.remaining, 0);
    const ProgressStats zero = computeProgressStats(10, 120, 0, 0.0);
    EXPECT_DOUBLE_EQ(zero.pointsPerSec, 0.0);
    EXPECT_DOUBLE_EQ(zero.etaSeconds, 0.0);
}
