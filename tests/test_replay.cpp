/**
 * @file
 * Full-hierarchy differential replay (verif/replay.hpp): the
 * coordinate-enumerating replay must agree bit-for-bit with the
 * analytical engine on the case-study layers, the random-mapping
 * generator must only emit legal mappings, the shrinking minimiser
 * must reduce failing cases, and the reference interpreter must
 * reject invalid capacities (the PR's regression fix).
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include <algorithm>
#include <cstdint>
#include <random>

#include "baton/baton.hpp"
#include "common/metrics.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "verif/random_mapping.hpp"
#include "verif/replay.hpp"

using namespace nnbaton;

namespace {

/** The five figure-11/12 layers on the case-study hardware. */
std::vector<ConvLayer>
caseStudyLayers()
{
    const RepresentativeLayers rep = representativeLayers(224);
    return {rep.activationIntensive, rep.weightIntensive,
            rep.largeKernel, rep.pointWise, rep.common};
}

} // namespace

TEST(Replay, AgreesWithAnalyticalOnCaseStudySearchWinners)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    for (const ConvLayer &layer : caseStudyLayers()) {
        const auto choice =
            searchLayer(layer, cfg, tech, SearchEffort::Fast);
        ASSERT_TRUE(choice.has_value()) << layer.toString();
        const DifferentialReport report =
            diffMapping(layer, cfg, tech, choice->mapping);
        EXPECT_TRUE(report.ok())
            << layer.toString() << " mapping "
            << choice->mapping.toString() << "\n"
            << report.toString();
    }
}

TEST(Replay, AgreesOnDepthwiseLayers)
{
    // MobileNetV2-style depthwise blocks exercise the channel-indexed
    // activation enumeration (the interpreter's depthwise path).
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    for (int stride : {1, 2}) {
        const ConvLayer layer = makeDepthwiseConv(
            "dw", 28, 28, 96, 3, stride);
        const auto choice =
            searchLayer(layer, cfg, tech, SearchEffort::Fast);
        ASSERT_TRUE(choice.has_value()) << layer.toString();
        const DifferentialReport report =
            diffMapping(layer, cfg, tech, choice->mapping);
        EXPECT_TRUE(report.ok())
            << layer.toString() << "\n"
            << report.toString();
    }
}

TEST(Replay, AgreesUnderAblatedOptions)
{
    // The replay must track the composition switches, not just the
    // default dataflow.
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const ConvLayer layer = makeConv("abl", 28, 28, 128, 64, 3, 3, 1);
    const auto choice = searchLayer(layer, cfg, tech,
                                    SearchEffort::Fast);
    ASSERT_TRUE(choice.has_value());
    for (int mask = 0; mask < 8; ++mask) {
        AnalysisOptions opt;
        opt.rotationSharing = mask & 1;
        opt.wl1Pooling = mask & 2;
        opt.al2Multicast = mask & 4;
        const DifferentialReport report =
            diffMapping(layer, cfg, tech, choice->mapping, opt);
        EXPECT_TRUE(report.ok()) << "mask " << mask << "\n"
                                 << report.toString();
    }
}

TEST(Replay, CountsReplaysInMetrics)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const ConvLayer layer = makeConv("m", 14, 14, 64, 32, 3, 3, 1);
    const auto choice = searchLayer(layer, cfg, tech,
                                    SearchEffort::Fast);
    ASSERT_TRUE(choice.has_value());
    obs::Counter &replays =
        obs::MetricsRegistry::instance().counter("verif.replays");
    const int64_t before = replays.value();
    (void)diffMapping(layer, cfg, tech, choice->mapping);
    EXPECT_EQ(replays.value(), before + 1);
}

TEST(RandomMapping, DrawsAreLegalAndDeterministic)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layer = makeConv("r", 28, 28, 128, 64, 3, 3, 1);
    std::mt19937 gen(42);
    int found = 0;
    for (int i = 0; i < 100; ++i) {
        const auto m = randomMapping(gen, layer, cfg);
        if (!m)
            continue;
        ++found;
        EXPECT_EQ(checkMapping(layer, cfg, *m), "") << m->toString();
    }
    EXPECT_GT(found, 50);

    // Same seed, same sequence.
    std::mt19937 a(7), b(7);
    const auto ma = randomMapping(a, layer, cfg);
    const auto mb = randomMapping(b, layer, cfg);
    ASSERT_TRUE(ma && mb);
    EXPECT_EQ(ma->toString(), mb->toString());
}

TEST(Minimizer, ShrinksToMinimalFailingCase)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    DiffCase c;
    c.layer = makeConv("min", 56, 56, 256, 128, 3, 3, 2);
    c.cfg = cfg;
    std::mt19937 gen(3);
    const auto m = randomMapping(gen, c.layer, cfg);
    ASSERT_TRUE(m.has_value());
    c.mapping = *m;

    // Synthetic failure: any case with more than 32 output channels
    // "fails".  The minimiser must walk co down to the boundary while
    // keeping the case legal.
    const auto predicate = [](const DiffCase &n) {
        return n.layer.co > 32;
    };
    ASSERT_TRUE(predicate(c));
    const DiffCase reduced = minimizeFailure(c, predicate);
    EXPECT_TRUE(predicate(reduced));
    EXPECT_EQ(checkMapping(reduced.layer, reduced.cfg,
                           reduced.mapping),
              "");
    // 256 -> 128 -> 64 halvings stay failing; 33..64 is reachable.
    EXPECT_LE(reduced.layer.co, 64);
    // Unrelated extents shrink too (down to whatever the mapping's
    // spatial splits still permit).
    EXPECT_LT(reduced.layer.ho, c.layer.ho);
    EXPECT_EQ(reduced.layer.kh, 1);
}

TEST(Minimizer, ReturnsInputWhenNothingShrinks)
{
    DiffCase c;
    c.layer = makeConv("one", 1, 1, 1, 1, 1, 1, 1);
    c.cfg = caseStudyConfig();
    c.cfg.package.chiplets = 1;
    c.cfg.chiplet.cores = 1;
    c.mapping = Mapping{};
    c.mapping.chipSpatial = ChipletPartition::Channel;
    c.mapping.chipChannelWays = 1;
    c.mapping.chipletTile = {1, 1, 1};
    ASSERT_EQ(checkMapping(c.layer, c.cfg, c.mapping), "");
    int calls = 0;
    const DiffCase reduced = minimizeFailure(
        c, [&](const DiffCase &) {
            ++calls;
            return true;
        });
    // Only the buffer-capacity shrinks can still apply; the layer and
    // mapping are already minimal.
    EXPECT_EQ(reduced.layer.toString(), c.layer.toString());
}

TEST(InterpreterDeathTest, RejectsNonPositiveCapacity)
{
    // Regression: capacity_bytes flowed into the retention compare
    // unchecked, so 0 or negative capacities silently degenerated to
    // per-atom reloads instead of being reported as caller bugs.
    const ConvLayer layer = makeConv("cap", 4, 4, 8, 8, 3, 3, 1);
    LoopNest nest;
    nest.atom.ho = 4;
    nest.atom.wo = 4;
    nest.atom.co = 8;
    nest.atom.ci = 8;
    nest.atom.kh = 3;
    nest.atom.kw = 3;
    expectStatusThrow(
        [&] { referenceFills(nest, Tensor::Weights, layer, 0); },
        "capacity must be positive");
    expectStatusThrow(
        [&] { referenceFills(nest, Tensor::Weights, layer, -4096); },
        "capacity must be positive");
    expectStatusThrow(
        [&] {
            referenceFills(nest, Tensor::Weights, layer, INT64_MIN);
        },
        "capacity must be positive");
}

TEST(InterpreterDeathTest, AcceptsExtentsBeyondOldPackedCeiling)
{
    // Regression: the coordinate key used to pack 16-bit fields and
    // reject any extent >= 65536; the dense linearisation handles the
    // old boundary and well beyond it without aliasing.
    const ConvLayer layer = makeConv("big", 70000, 1, 1, 1, 1, 1, 1);
    LoopNest nest;
    nest.atom.ho = 70000;
    const ReferenceResult r =
        referenceFills(nest, Tensor::Outputs, layer, INT64_MAX / 2);
    EXPECT_EQ(r.fillBytes, 70000);

    const ConvLayer edge = makeConv("edge", 65536, 1, 1, 1, 1, 1, 1);
    LoopNest edge_nest;
    edge_nest.atom.ho = 65536;
    EXPECT_EQ(referenceFills(edge_nest, Tensor::Outputs, edge,
                             INT64_MAX / 2)
                  .fillBytes,
              65536);
}

TEST(InterpreterDeathTest, RejectsTrueLinearisationOverflow)
{
    // Extents whose product overflows the 64-bit key are reported as a
    // clear InvalidArgument instead of silently wrapping.
    ConvLayer layer = makeConv("huge", 1 << 30, 1 << 30, 1, 1, 1, 1, 1);
    layer.co = 1 << 30;
    layer.batch = 1 << 30;
    LoopNest nest;
    nest.atom.ho = 1 << 30;
    nest.atom.wo = 1 << 30;
    nest.atom.co = 1 << 30;
    nest.atom.b = 1 << 30;
    expectStatusThrow(
        [&] {
            referenceFills(nest, Tensor::Outputs, layer, INT64_MAX / 2);
        },
        "linearisation");
}

TEST(Linearizer, AccessCountsSurviveInt32ProductBoundary)
{
    // A batched transformer-scale GEMM whose access-count terms cross
    // the int32 boundary: 8 x 4096 x 4096 x 4096 MACs (2^39) and
    // 3.2e9 drain bits.  The composition must promote the int-typed
    // factors (chiplets, cores, ways, parts) to int64 before
    // multiplying; a 32-bit intermediate would wrap these counts
    // negative or alias them small.
    ConvLayer layer = makeConv("gemm4k", 1, 4096, 4096, 4096, 1, 1, 1);
    layer.batch = 8;
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto choice =
        searchLayer(layer, cfg, defaultTech(), SearchEffort::Sketch);
    ASSERT_TRUE(choice.has_value());
    const AccessCounts &c = choice->analysis.counts;

    const int64_t macs = 8ll * 4096 * 4096 * 4096; // 2^39
    EXPECT_EQ(c.macOps, macs);
    const int64_t outputs = 8ll * 4096 * 4096;
    EXPECT_EQ(c.ol1ReadBits, outputs * 24); // > INT32_MAX
    EXPECT_EQ(c.ol2WriteBits, outputs * 8);
    EXPECT_EQ(c.ol2ReadBits, outputs * 8);
    EXPECT_EQ(c.dramWriteBits, outputs * 8);
    const int64_t p =
        std::min<int64_t>(cfg.core.vectorSize, layer.ciPerGroup());
    EXPECT_EQ(c.ol1RmwBits, ((macs + p - 1) / p) * 24);

    // Every composed count is a sum of positive products; any int32
    // wraparound shows up as a negative or implausibly small field.
    EXPECT_GT(c.dramReadActBits, 0);
    EXPECT_GT(c.dramReadWeightBits, 0);
    EXPECT_GT(c.al2ReadBits, INT32_MAX);
    EXPECT_GT(c.al1ReadBits, INT32_MAX);
    EXPECT_GT(c.wl1ReadBits, 0);
    EXPECT_GT(c.wl1WriteBits, 0);
    EXPECT_GT(c.al2WriteBits, 0);
    EXPECT_GT(c.al1WriteBits, 0);
}
