#!/usr/bin/env bash
# End-to-end chaos test for the distributed sweep fabric
# (docs/distributed.md):
#   1. a sweep sharded across three `nn-baton serve --tcp` workers
#      produces JSON bit-identical to the single-process `pre` run —
#      even with one worker SIGKILLed mid-sweep (its units are
#      re-leased to the survivors);
#   2. a coordinator interrupted by SIGINT leaves a checkpoint that a
#      fresh coordinator resumes to the same bytes (crash recovery);
#   3. the fleet drains cleanly via the shutdown op.
#
# Usage: fabric_chaos.sh <path-to-nn-baton>
set -euo pipefail

BIN=${1:?usage: fabric_chaos.sh <path-to-nn-baton>}
DIR=$(mktemp -d)
WORKER_PIDS=()

cleanup() {
    # Kill whatever is left of the fleet on any exit, including
    # INT/TERM mid-test; escalate to KILL so the trap cannot hang.
    for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
        for _ in $(seq 20); do
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

fail() {
    echo "fabric_chaos: FAIL: $*" >&2
    exit 1
}

# The full (non-proportional) memory grid at --macs 32 is ~45k design
# points: a several-second sweep, so the kill signals below genuinely
# land mid-flight, while still finishing fast enough for CI.
cat > "$DIR/tiny.model" << 'EOF'
model tiny 32
conv c1 8 8 64 16 3 3 1
fc head 64 128
EOF
PRE_ARGS=(pre --model-file "$DIR/tiny.model" --macs 32 --no-obs)
# ~90 units of 500 points: every worker holds several leases over the
# run without drowning the wire in per-unit round trips.
UNIT_POINTS=500

# The lean export keeps the "resumed" counter (how many points a run
# restored from a checkpoint), which legitimately differs between a
# fresh and a resumed run of the same sweep; everything else must be
# bit-identical.
normalize() {
    sed 's/"resumed":[0-9]*/"resumed":0/' "$1"
}

# Reference bytes from the single-process sweep.
"$BIN" "${PRE_ARGS[@]}" --json "$DIR/serial.json" > /dev/null

# Start three TCP workers on kernel-assigned ports and collect their
# endpoints from the readiness lines.
ENDPOINTS=()
for i in 1 2 3; do
    "$BIN" serve --tcp :0 --threads 2 \
        > "$DIR/worker$i.log" 2>&1 &
    WORKER_PIDS+=($!)
done
WAIT_DEADLINE_S=60
for i in 1 2 3; do
    pid=${WORKER_PIDS[$((i - 1))]}
    SECONDS=0
    until grep -q 'listening on tcp port' "$DIR/worker$i.log" \
        2>/dev/null; do
        kill -0 "$pid" 2>/dev/null || {
            cat "$DIR/worker$i.log" >&2
            fail "worker $i died at startup"
        }
        if (( SECONDS >= WAIT_DEADLINE_S )); then
            cat "$DIR/worker$i.log" >&2
            fail "worker $i not ready within ${WAIT_DEADLINE_S}s"
        fi
        sleep 0.1
    done
    port=$(sed -n 's/.*listening on tcp port \([0-9]*\).*/\1/p' \
        "$DIR/worker$i.log")
    [[ -n "$port" ]] || fail "cannot parse worker $i port"
    ENDPOINTS+=("127.0.0.1:$port")
done
ALL_WORKERS=$(IFS=,; echo "${ENDPOINTS[*]}")

# 1. Distributed sweep with a worker SIGKILLed mid-flight: the
# coordinator must quarantine worker 2, re-lease its units and still
# merge to the serial bytes.
"$BIN" "${PRE_ARGS[@]}" --workers "$ALL_WORKERS" \
    --unit-points "$UNIT_POINTS" \
    --json "$DIR/dist.json" > "$DIR/dist.log" 2>&1 &
COORD_PID=$!
sleep 1
kill -9 "${WORKER_PIDS[1]}" 2>/dev/null || true
set +e
wait "$COORD_PID"
RC=$?
set -e
[[ $RC -eq 0 ]] || {
    cat "$DIR/dist.log" >&2
    fail "distributed pre exit $RC with a killed worker, want 0"
}
cmp <(normalize "$DIR/serial.json") <(normalize "$DIR/dist.json") \
    || fail "distributed sweep differs from the single-process run"

SURVIVORS="${ENDPOINTS[0]},${ENDPOINTS[2]}"

# 2. Coordinator killed mid-sweep: SIGINT once the checkpoint exists,
# then a fresh coordinator resumes from it.  If the sweep happened to
# finish before the signal landed, the resume run simply restores
# every point — either way the final bytes must match the serial run.
"$BIN" "${PRE_ARGS[@]}" --workers "$SURVIVORS" \
    --unit-points "$UNIT_POINTS" \
    --checkpoint "$DIR/ck.json" --checkpoint-every 2000 \
    --json "$DIR/part.json" > "$DIR/part.log" 2>&1 &
COORD_PID=$!
SECONDS=0
until [[ -s "$DIR/ck.json" ]]; do
    kill -0 "$COORD_PID" 2>/dev/null && \
        (( SECONDS < WAIT_DEADLINE_S )) || break
    sleep 0.05
done
kill -INT "$COORD_PID" 2>/dev/null || true
set +e
wait "$COORD_PID"
RC=$?
set -e
[[ $RC -eq 0 || $RC -eq 3 ]] || {
    cat "$DIR/part.log" >&2
    fail "interrupted coordinator exit $RC, want 0 or 3"
}
[[ -s "$DIR/ck.json" ]] || fail "no checkpoint after SIGINT"

"$BIN" "${PRE_ARGS[@]}" --workers "$SURVIVORS" \
    --unit-points "$UNIT_POINTS" \
    --resume "$DIR/ck.json" --json "$DIR/resumed.json" \
    > "$DIR/resume.log" 2>&1 \
    || { cat "$DIR/resume.log" >&2; fail "resume run failed"; }
cmp <(normalize "$DIR/serial.json") <(normalize "$DIR/resumed.json") \
    || fail "resumed sweep differs from the single-process run"

# 3. Drain the surviving workers cleanly.
for ep in "${ENDPOINTS[0]}" "${ENDPOINTS[2]}"; do
    "$BIN" request --socket "$ep" --request '{"op":"shutdown"}' \
        > /dev/null || fail "shutdown op failed for $ep"
done
for pid in "${WORKER_PIDS[0]}" "${WORKER_PIDS[2]}"; do
    wait "$pid" || fail "worker $pid did not exit 0 after shutdown"
done
WORKER_PIDS=()

echo "fabric_chaos: PASS"
