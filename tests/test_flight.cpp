/**
 * @file
 * Tests for the flight recorder: ring wraparound keeps only the
 * newest events, truncated dumps stay valid JSON, request ids flow
 * into recorded events, and the async-signal-safe fd writer produces
 * a parseable document.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/json.hpp"
#include "common/trace.hpp"

using namespace nnbaton;

namespace {

/** Scoped toggle so a failing test can't leave the recorder off. */
struct FlightOff
{
    FlightOff() { obs::setFlightRecorderEnabled(false); }
    ~FlightOff() { obs::setFlightRecorderEnabled(true); }
};

/** Parse a dump and return the calling thread's "events" array. */
const JsonValue *
eventsForThisThread(const JsonValue &recorder)
{
    const JsonValue *threads = recorder.find("threads");
    if (!threads || !threads->isArray())
        return nullptr;
    const double tid = static_cast<double>(obs::currentThreadTag());
    for (const JsonValue &t : threads->array) {
        const JsonValue *id = t.find("tid");
        if (id && id->isNumber() && id->number == tid)
            return t.find("events");
    }
    return nullptr;
}

} // namespace

TEST(Flight, EnabledByDefault)
{
    EXPECT_TRUE(obs::flightRecorderEnabled());
    EXPECT_GT(obs::flightRingCapacity(), 0u);
}

TEST(Flight, DisabledRecordsNothing)
{
    auto countNow = [] {
        std::ostringstream ss;
        obs::writeFlightRecorder(ss);
        const JsonParseResult parsed = parseJson(ss.str());
        EXPECT_TRUE(parsed.ok()) << parsed.error;
        const JsonValue *rec = parsed.value.find("flightRecorder");
        EXPECT_NE(rec, nullptr);
        const JsonValue *events = eventsForThisThread(*rec);
        return events ? events->array.size() : 0u;
    };
    // Prime the ring so this thread has a buffer, then freeze it.
    obs::flightMark("flight.test.prime");
    const size_t before = countNow();
    {
        FlightOff off;
        obs::flightMark("flight.test.should_not_appear");
        NNBATON_TRACE_SCOPE("flight.test.should_not_appear_either");
    }
    EXPECT_EQ(countNow(), before);
}

TEST(Flight, RingWrapsAndKeepsNewestEvents)
{
    const size_t cap = obs::flightRingCapacity();
    // Overfill the ring: only the newest `cap` marks survive.
    for (size_t i = 0; i < cap + 100; ++i)
        obs::flightMark("flight.test.wrap");
    obs::flightMark("flight.test.last");

    std::ostringstream ss;
    obs::writeFlightRecorder(ss);
    const JsonParseResult parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok())
        << parsed.error << " at offset " << parsed.errorOffset;
    const JsonValue *rec = parsed.value.find("flightRecorder");
    ASSERT_NE(rec, nullptr);
    const JsonValue *capacity = rec->find("capacity");
    ASSERT_NE(capacity, nullptr);
    EXPECT_EQ(capacity->number, static_cast<double>(cap));

    const JsonValue *events = eventsForThisThread(*rec);
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_LE(events->array.size(), cap);
    EXPECT_GE(events->array.size(), cap / 2); // ring is actually full
    // Oldest-first order: the very last event is the newest mark.
    ASSERT_FALSE(events->array.empty());
    const JsonValue *lastName = events->array.back().find("name");
    ASSERT_NE(lastName, nullptr);
    EXPECT_EQ(lastName->string, "flight.test.last");
}

TEST(Flight, TruncatedDumpIsValidAndCapped)
{
    const size_t cap = obs::flightRingCapacity();
    for (size_t i = 0; i < cap; ++i)
        obs::flightMark("flight.test.fill");

    std::ostringstream ss;
    JsonWriter j(ss);
    obs::writeFlightRecorderJson(j, 8);
    const JsonParseResult parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok())
        << parsed.error << " at offset " << parsed.errorOffset;

    const JsonValue *truncated = parsed.value.find("truncated");
    ASSERT_NE(truncated, nullptr);
    EXPECT_TRUE(truncated->boolean);
    const JsonValue *threads = parsed.value.find("threads");
    ASSERT_NE(threads, nullptr);
    for (const JsonValue &t : threads->array) {
        const JsonValue *events = t.find("events");
        ASSERT_NE(events, nullptr);
        EXPECT_LE(events->array.size(), 8u);
    }
}

TEST(Flight, EventsCarryTheRequestId)
{
    {
        obs::RequestIdScope ridScope(987654);
        NNBATON_TRACE_SCOPE("flight.test.with_rid");
    }
    std::ostringstream ss;
    obs::writeFlightRecorder(ss);
    const JsonParseResult parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue *rec = parsed.value.find("flightRecorder");
    ASSERT_NE(rec, nullptr);
    const JsonValue *events = eventsForThisThread(*rec);
    ASSERT_NE(events, nullptr);
    bool found = false;
    for (const JsonValue &e : events->array) {
        const JsonValue *name = e.find("name");
        const JsonValue *rid = e.find("rid");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(rid, nullptr);
        if (name->string == "flight.test.with_rid" &&
            rid->number == 987654.0)
            found = true;
    }
    EXPECT_TRUE(found);
    // Outside the scope the thread has no current request id.
    EXPECT_EQ(obs::currentRequestId(), 0u);
}

TEST(Flight, SignalSafeFdDumpParses)
{
    obs::flightMark("flight.test.fd");
    char path[] = "/tmp/nnbaton_flight_fd_XXXXXX";
    const int fd = ::mkstemp(path);
    ASSERT_GE(fd, 0);
    obs::writeFlightRecorderToFd(fd);
    ::close(fd);

    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    std::remove(path);

    const JsonParseResult parsed = parseJson(content.str());
    ASSERT_TRUE(parsed.ok())
        << parsed.error << " at offset " << parsed.errorOffset
        << "\n" << content.str();
    const JsonValue *rec = parsed.value.find("flightRecorder");
    ASSERT_NE(rec, nullptr);
    const JsonValue *safe = rec->find("signalSafe");
    ASSERT_NE(safe, nullptr);
    EXPECT_TRUE(safe->boolean);
    const JsonValue *events = eventsForThisThread(*rec);
    ASSERT_NE(events, nullptr);
    bool found = false;
    for (const JsonValue &e : events->array) {
        const JsonValue *name = e.find("name");
        if (name && name->string == "flight.test.fd")
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Flight, RequestIdsAreFreshAndScoped)
{
    const uint64_t a = obs::nextRequestId();
    const uint64_t b = obs::nextRequestId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    {
        obs::RequestIdScope outer(a);
        EXPECT_EQ(obs::currentRequestId(), a);
        {
            obs::RequestIdScope inner(b);
            EXPECT_EQ(obs::currentRequestId(), b);
        }
        EXPECT_EQ(obs::currentRequestId(), a);
    }
    EXPECT_EQ(obs::currentRequestId(), 0u);
}
