/**
 * @file
 * Tests for the technology model: table I anchors, figure 10 linear
 * fits and the area helpers.
 */

#include <gtest/gtest.h>

#include "common/util.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

TEST(TechnologyModel, TableOneAnchors)
{
    const TechnologyModel &t = defaultTech();
    EXPECT_DOUBLE_EQ(t.dramEnergyPerBit, 8.75);
    EXPECT_DOUBLE_EQ(t.d2dEnergyPerBit, 1.17);
    EXPECT_DOUBLE_EQ(t.rfEnergyPerBitRmw, 0.104);
    EXPECT_DOUBLE_EQ(t.macEnergyPerOp, 0.024);
}

TEST(TechnologyModel, SramFitHitsPublishedAnchors)
{
    // The figure 10 linear fit must run through the two table I SRAM
    // anchor points: 1 KB -> 0.30 pJ/bit, 32 KB -> 0.81 pJ/bit.
    const TechnologyModel &t = defaultTech();
    EXPECT_NEAR(t.sramEnergyPerBit(1_KB), 0.30, 1e-3);
    EXPECT_NEAR(t.sramEnergyPerBit(32_KB), 0.81, 1e-3);
}

TEST(TechnologyModel, SramEnergyMonotoneInSize)
{
    const TechnologyModel &t = defaultTech();
    double prev = 0.0;
    for (int64_t kb = 1; kb <= 256; kb *= 2) {
        const double e = t.sramEnergyPerBit(kb * 1024);
        EXPECT_GT(e, prev) << kb << " KB";
        prev = e;
    }
}

TEST(TechnologyModel, RelativeCostsMatchTableOne)
{
    // Table I relative-cost column (vs one 8-bit MAC op).
    const TechnologyModel &t = defaultTech();
    EXPECT_NEAR(t.dramEnergyPerBit / t.macEnergyPerOp, 364.58, 0.5);
    EXPECT_NEAR(t.d2dEnergyPerBit / t.macEnergyPerOp, 48.75, 0.5);
    EXPECT_NEAR(t.sramEnergyPerBit(32_KB) / t.macEnergyPerOp, 33.75,
                0.5);
    EXPECT_NEAR(t.sramEnergyPerBit(1_KB) / t.macEnergyPerOp, 12.5, 0.5);
    EXPECT_NEAR(t.rfEnergyPerBitRmw / t.macEnergyPerOp, 4.33, 0.05);
}

TEST(TechnologyModel, MacArea)
{
    const TechnologyModel &t = defaultTech();
    // 135.1 um^2 per MAC (paper section V-A).
    EXPECT_NEAR(t.macAreaMm2(1), 135.1e-6, 1e-9);
    EXPECT_NEAR(t.macAreaMm2(2048), 2048 * 135.1e-6, 1e-6);
}

TEST(TechnologyModel, AreaFitsMonotone)
{
    const TechnologyModel &t = defaultTech();
    EXPECT_GT(t.sramAreaMm2(64_KB), t.sramAreaMm2(32_KB));
    EXPECT_GT(t.rfAreaMm2(2_KB), t.rfAreaMm2(1_KB));
    EXPECT_GT(t.sramAreaMm2(1_KB), 0.0);
}

TEST(TechnologyModel, RfDenserPenaltyOverSram)
{
    // Flop-based register files cost more area per bit than SRAM.
    const TechnologyModel &t = defaultTech();
    EXPECT_GT(t.rfAreaMm2Kb.slope, t.sramAreaMm2Kb.slope);
}

TEST(TechnologyModel, CyclesToNs)
{
    const TechnologyModel &t = defaultTech();
    // 500 MHz -> 2 ns per cycle.
    EXPECT_DOUBLE_EQ(t.cyclesToNs(1), 2.0);
    EXPECT_DOUBLE_EQ(t.cyclesToNs(500000000), 1e9);
}

TEST(TechnologyModel, TableOneStringContainsRows)
{
    const std::string s = defaultTech().tableOneString();
    EXPECT_NE(s.find("DRAM access"), std::string::npos);
    EXPECT_NE(s.find("Die-to-die"), std::string::npos);
    EXPECT_NE(s.find("8bit MAC"), std::string::npos);
}

TEST(LinearFit, EvaluatesLine)
{
    const LinearFit f{1.0, 2.0};
    EXPECT_DOUBLE_EQ(f(0.0), 1.0);
    EXPECT_DOUBLE_EQ(f(3.0), 7.0);
}
