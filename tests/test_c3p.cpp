/**
 * @file
 * Tests for the C3P analysis engine: footprint functions, relevance,
 * the retention scan, and the paper's figure 6 worked examples.
 */

#include <gtest/gtest.h>

#include "c3p/analysis.hpp"
#include "c3p/footprint.hpp"

using namespace nnbaton;

namespace {

ConvLayer
layer3x3()
{
    return makeConv("t", 32, 32, 64, 64, 3, 3, 1);
}

} // namespace

TEST(Footprint, Weights)
{
    TileSpan s;
    s.co = 4;
    s.ci = 8;
    s.kh = 3;
    s.kw = 3;
    EXPECT_EQ(footprintBytes(Tensor::Weights, s, layer3x3()),
              4 * 8 * 3 * 3);
}

TEST(Footprint, ActivationsWithHalo)
{
    TileSpan s;
    s.ho = 8;
    s.wo = 8;
    s.ci = 16;
    s.kh = 3;
    s.kw = 3;
    // (8-1)*1+3 = 10 per axis.
    EXPECT_EQ(footprintBytes(Tensor::Activations, s, layer3x3()),
              10 * 10 * 16);
}

TEST(Footprint, ActivationsStride2)
{
    const ConvLayer l = makeConv("s", 32, 32, 16, 16, 7, 7, 2);
    TileSpan s;
    s.ho = 4;
    s.wo = 4;
    s.ci = 2;
    s.kh = 7;
    s.kw = 7;
    // (4-1)*2+7 = 13 per axis.
    EXPECT_EQ(footprintBytes(Tensor::Activations, s, l), 13 * 13 * 2);
}

TEST(Footprint, ActivationsPartialKernelSpan)
{
    TileSpan s;
    s.ho = 8;
    s.wo = 8;
    s.ci = 1;
    s.kh = 1; // only one kernel row in span
    s.kw = 3;
    EXPECT_EQ(footprintBytes(Tensor::Activations, s, layer3x3()),
              8 * 10 * 1);
}

TEST(Footprint, Outputs)
{
    TileSpan s;
    s.ho = 4;
    s.wo = 5;
    s.co = 6;
    EXPECT_EQ(footprintBytes(Tensor::Outputs, s, layer3x3()), 120);
}

TEST(Relevance, PerTensor)
{
    const ConvLayer dense = layer3x3();
    EXPECT_TRUE(isRelevant(Tensor::Weights, Dim::OC, dense));
    EXPECT_TRUE(isRelevant(Tensor::Weights, Dim::IC, dense));
    EXPECT_FALSE(isRelevant(Tensor::Weights, Dim::OH, dense));
    EXPECT_FALSE(isRelevant(Tensor::Weights, Dim::OW, dense));
    EXPECT_TRUE(isRelevant(Tensor::Activations, Dim::OH, dense));
    EXPECT_FALSE(isRelevant(Tensor::Activations, Dim::OC, dense));
    EXPECT_TRUE(isRelevant(Tensor::Outputs, Dim::OC, dense));
    EXPECT_FALSE(isRelevant(Tensor::Outputs, Dim::IC, dense));

    // Depthwise: the output-channel dimension selects input channels.
    const ConvLayer dw = makeDepthwiseConv("dw", 32, 32, 64, 3, 1);
    EXPECT_TRUE(isRelevant(Tensor::Activations, Dim::OC, dw));
}

/**
 * Paper figure 6(c), example 1: nest [W1, H1, C1] (outer to inner)
 * for W-L1.  C1 is the first critical position with Cc1 = C1 *
 * filters; a buffer below Cc1 reloads for every H1 x W1 iteration.
 */
TEST(C3P, PaperExampleOne)
{
    const ConvLayer l = layer3x3();
    LoopNest n;
    n.loops = {{Dim::OW, 4}, {Dim::OH, 4}, {Dim::IC, 8}};
    n.atom = TileSpan{};
    n.atom.co = 8;
    n.atom.ci = 8;
    n.atom.kh = 3;
    n.atom.kw = 3;
    const int64_t filters = 8 * 8 * 9;    // atom weights
    const int64_t cc1 = 8 * filters;      // C1 x filters

    // Buffer >= Cc1: weights stream once (A0).
    const auto big = analyzeBuffer(n, Tensor::Weights, l, cc1);
    EXPECT_EQ(big.fillBytes, cc1);
    EXPECT_DOUBLE_EQ(big.penalty(), 1.0);

    // Buffer < Cc1: the H1 x W1 = 16 region reloads everything.
    const auto small = analyzeBuffer(n, Tensor::Weights, l, cc1 - 1);
    EXPECT_EQ(small.fillBytes, cc1 * 16);
    EXPECT_DOUBLE_EQ(small.penalty(), 16.0);
}

/**
 * Paper figure 6(d), example 2: nest [C2, W1, H1, C1]; the minimal
 * no-penalty capacity depends only on Cp1 because Cp2 sits at the
 * boundary of the nest.
 */
TEST(C3P, PaperExampleTwo)
{
    const ConvLayer l = layer3x3();
    LoopNest n;
    n.loops = {{Dim::OC, 4}, {Dim::OW, 4}, {Dim::OH, 4}, {Dim::IC, 8}};
    n.atom = TileSpan{};
    n.atom.co = 8;
    n.atom.ci = 8;
    n.atom.kh = 3;
    n.atom.kw = 3;
    const int64_t filters = 8 * 8 * 9;
    const int64_t cc1 = 8 * filters; // weights below the C2 loop

    // Cc1 suffices: every C2 group is loaded exactly once -> A0.
    const auto fit = analyzeBuffer(n, Tensor::Weights, l, cc1);
    EXPECT_EQ(fit.fillBytes, 4 * cc1); // A0 = whole weight tensor
    EXPECT_DOUBLE_EQ(fit.penalty(), 1.0);

    // Larger capacities cannot reduce below A0.
    const auto huge = analyzeBuffer(n, Tensor::Weights, l, 100 * cc1);
    EXPECT_EQ(huge.fillBytes, fit.fillBytes);
}

/**
 * Paper figure 6(f), example 4: a bad case for A-L1 where Cc1 gives
 * no reuse — only holding the larger Cc2 footprint helps.
 */
TEST(C3P, PaperExampleFourBadCase)
{
    const ConvLayer l = layer3x3();
    // [IC(outer), OH, OW(inner)] with activations: the inner plane
    // loops are relevant, so a capacity between the OW-level and
    // IC-level footprints yields no reuse across IC... the relevant
    // check: fills with capacity just above the OW footprint equal
    // fills with the atom capacity (no benefit), until the full
    // IC-level footprint fits.
    LoopNest n;
    n.loops = {{Dim::IC, 8}, {Dim::OH, 8}, {Dim::OW, 8}};
    n.atom = TileSpan{};
    n.atom.ci = 8;
    n.atom.kh = 3;
    n.atom.kw = 3;

    const int64_t f_ow = footprintBytes(
        Tensor::Activations, n.spanBelow(2), l); // row of tiles
    const int64_t f_oh =
        footprintBytes(Tensor::Activations, n.spanBelow(1), l);
    const auto mid =
        analyzeBuffer(n, Tensor::Activations, l, f_ow);
    const auto top =
        analyzeBuffer(n, Tensor::Activations, l, f_oh);
    // Holding a full plane row reduces fills; holding the whole
    // IC-group plane reaches the intrinsic A0.
    EXPECT_GT(mid.fillBytes, top.fillBytes);
    EXPECT_EQ(top.fillBytes, top.intrinsicBytes);
}

TEST(C3P, IrrelevantLoopsAreFree)
{
    const ConvLayer l = layer3x3();
    // OC above IC for activations: OC is irrelevant, so a buffer
    // holding the IC-level footprint also retains across OC.
    LoopNest n;
    n.loops = {{Dim::OC, 8}, {Dim::IC, 4}};
    n.atom = TileSpan{};
    n.atom.ho = 4;
    n.atom.wo = 4;
    n.atom.ci = 16;
    n.atom.kh = 3;
    n.atom.kw = 3;
    // Holding the full-ci footprint retains across the irrelevant OC
    // loop for free: fills collapse to the intrinsic A0.
    const int64_t ic_fp =
        footprintBytes(Tensor::Activations, n.spanBelow(1), l);
    const auto r = analyzeBuffer(n, Tensor::Activations, l, ic_fp);
    EXPECT_EQ(r.fitBoundary, 0u);
    EXPECT_EQ(r.fillBytes, r.intrinsicBytes);

    // One byte less and the whole OC x IC product reloads the atom.
    const int64_t atom_fp =
        footprintBytes(Tensor::Activations, n.spanBelow(2), l);
    const auto small =
        analyzeBuffer(n, Tensor::Activations, l, ic_fp - 1);
    EXPECT_EQ(small.fillBytes, atom_fp * 8 * 4);
}

TEST(C3P, AtomLargerThanBufferDegenerates)
{
    const ConvLayer l = layer3x3();
    LoopNest n;
    n.loops = {{Dim::OH, 4}};
    n.atom = TileSpan{};
    n.atom.ho = 8;
    n.atom.wo = 8;
    n.atom.ci = 64;
    n.atom.kh = 3;
    n.atom.kw = 3;
    const auto r = analyzeBuffer(n, Tensor::Activations, l, 16);
    EXPECT_EQ(r.fitBoundary, n.loops.size());
    const int64_t atom_fp =
        footprintBytes(Tensor::Activations, n.spanBelow(1), l);
    EXPECT_EQ(r.fillBytes, atom_fp * 4);
}

TEST(C3P, CriticalPointsReportedInnermostFirst)
{
    const ConvLayer l = layer3x3();
    LoopNest n;
    n.loops = {{Dim::IC, 2}, {Dim::OH, 3}, {Dim::OC, 4}};
    n.atom = TileSpan{};
    n.atom.co = 2;
    n.atom.ci = 2;
    const auto r = analyzeBuffer(n, Tensor::Weights, l, 1 << 20);
    // Weight-relevant loops: IC (level 0) and OC (level 2).
    ASSERT_EQ(r.criticalPoints.size(), 2u);
    EXPECT_EQ(r.criticalPoints[0].boundary, 2u);
    EXPECT_EQ(r.criticalPoints[1].boundary, 0u);
    EXPECT_LT(r.criticalPoints[0].criticalCapacity,
              r.criticalPoints[1].criticalCapacity);
}

class C3PMonotone : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(C3PMonotone, FillsNonIncreasingInCapacity)
{
    const ConvLayer l = layer3x3();
    LoopNest n;
    n.loops = {{Dim::OC, 4}, {Dim::OH, 4}, {Dim::IC, 4}, {Dim::KH, 3},
               {Dim::OW, 8}};
    n.atom = TileSpan{};
    n.atom.ho = 2;
    n.atom.wo = 2;
    n.atom.co = 4;
    n.atom.ci = 4;
    n.atom.kw = 3;
    const int64_t cap = GetParam();
    for (Tensor t : {Tensor::Weights, Tensor::Activations,
                     Tensor::Outputs}) {
        const auto a = analyzeBuffer(n, t, l, cap);
        const auto b = analyzeBuffer(n, t, l, cap * 2);
        EXPECT_GE(a.fillBytes, b.fillBytes) << toString(t);
        EXPECT_GE(a.fillBytes, a.intrinsicBytes) << toString(t);
        EXPECT_GE(b.fillBytes, b.intrinsicBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(CapacitySweep, C3PMonotone,
                         ::testing::Values(16, 64, 256, 1024, 4096,
                                           16384, 65536));
