/**
 * @file
 * Tests for the runtime model: the closed-form estimator and the
 * per-tile simulator, and their agreement.
 */

#include <gtest/gtest.h>

#include "c3p/access.hpp"
#include "mapper/search.hpp"
#include "sim/runtime.hpp"

using namespace nnbaton;

namespace {

struct SimCase
{
    ConvLayer layer;
    AcceleratorConfig cfg;
    Mapping mapping;
    AccessAnalysis analysis;
};

SimCase
makeSetup(int ho = 56, int wo = 56, int co = 256, int ci = 128)
{
    SimCase s{makeConv("t", ho, wo, co, ci, 3, 3, 1), caseStudyConfig(),
            {}, {}};
    s.mapping.pkgSpatial = PackagePartition::Channel;
    s.mapping.chipSpatial = ChipletPartition::Channel;
    s.mapping.chipChannelWays = 8;
    s.mapping.chipletTile = {16, 16, 64};
    s.mapping.hoC = 8;
    s.mapping.woC = 8;
    s.analysis = analyzeMapping(s.layer, s.cfg, s.mapping);
    return s;
}

} // namespace

TEST(EstimateRuntime, ComputeCyclesMatchWorkload)
{
    const SimCase s = makeSetup();
    const RuntimeResult r =
        estimateRuntime(s.layer, s.cfg, s.analysis, defaultTech());
    // Per-core tile: 8x8 plane x 3x3 kernel x ceil(128/8) ci groups.
    const int64_t per_tile = 8 * 8 * 9 * 16;
    EXPECT_EQ(r.computeCycles,
              s.analysis.shapes.coreTilesPerChiplet() * per_tile);
    EXPECT_GE(r.cycles, r.computeCycles);
    EXPECT_EQ(r.stallCycles, r.cycles - r.computeCycles);
}

TEST(EstimateRuntime, UtilizationBounded)
{
    const SimCase s = makeSetup();
    const RuntimeResult r =
        estimateRuntime(s.layer, s.cfg, s.analysis, defaultTech());
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
}

TEST(EstimateRuntime, FullLanesNearFullUtilization)
{
    // A compute-bound layer with full lanes and vectors should be
    // close to 100% utilisation (only pipeline-fill overhead).
    const SimCase s = makeSetup(64, 64, 256, 128);
    const RuntimeResult r =
        estimateRuntime(s.layer, s.cfg, s.analysis, defaultTech());
    EXPECT_GT(r.utilization, 0.9);
}

TEST(EstimateRuntime, NarrowVectorHalvesUtilization)
{
    // ci = 4 on an 8-wide vector leaves half the slots idle.
    SimCase s{makeConv("t", 56, 56, 256, 4, 3, 3, 1), caseStudyConfig(),
            {}, {}};
    s.mapping.pkgSpatial = PackagePartition::Channel;
    s.mapping.chipSpatial = ChipletPartition::Channel;
    s.mapping.chipChannelWays = 8;
    s.mapping.chipletTile = {16, 16, 64};
    s.mapping.hoC = 8;
    s.mapping.woC = 8;
    s.analysis = analyzeMapping(s.layer, s.cfg, s.mapping);
    const RuntimeResult r =
        estimateRuntime(s.layer, s.cfg, s.analysis, defaultTech());
    EXPECT_LT(r.utilization, 0.55);
}

TEST(EstimateRuntime, BandwidthBoundLayerStalls)
{
    // Starve the DRAM: a huge point-wise layer with tiny compute per
    // bit moved; with 1 bit/cycle DRAM the design must stall.
    TechnologyModel tech = defaultTech();
    tech.dramBitsPerCycle = 1;
    const SimCase s = makeSetup(56, 56, 64, 64);
    const RuntimeResult slow =
        estimateRuntime(s.layer, s.cfg, s.analysis, tech);
    const RuntimeResult fast =
        estimateRuntime(s.layer, s.cfg, s.analysis, defaultTech());
    EXPECT_GT(slow.stallCycles, fast.stallCycles);
    EXPECT_GT(slow.cycles, fast.cycles);
    EXPECT_LT(slow.utilization, fast.utilization);
}

TEST(RuntimeSimulator, AgreesWithEstimatorOnDivisibleShapes)
{
    const SimCase s = makeSetup(64, 64, 256, 128);
    const RuntimeResult est =
        estimateRuntime(s.layer, s.cfg, s.analysis, defaultTech());
    const RuntimeSimulator sim(s.cfg, defaultTech());
    const RuntimeResult run = sim.run(s.layer, s.analysis);
    EXPECT_EQ(run.computeCycles, est.computeCycles);
    // Estimator and simulator agree within 1% on divisible shapes.
    EXPECT_NEAR(static_cast<double>(run.cycles),
                static_cast<double>(est.cycles),
                0.01 * static_cast<double>(est.cycles));
}

TEST(RuntimeSimulator, EdgeTilesReduceComputeVsEstimate)
{
    // 56 is not a multiple of 16: edge tiles are partial, so the
    // simulator's compute is at most the estimator's padded count.
    const SimCase s = makeSetup(56, 56, 256, 128);
    const RuntimeResult est =
        estimateRuntime(s.layer, s.cfg, s.analysis, defaultTech());
    const RuntimeSimulator sim(s.cfg, defaultTech());
    const RuntimeResult run = sim.run(s.layer, s.analysis);
    EXPECT_LE(run.computeCycles, est.computeCycles);
    EXPECT_GT(run.computeCycles, 0);
}

TEST(RuntimeResult, ToString)
{
    RuntimeResult r;
    r.cycles = 100;
    r.computeCycles = 90;
    r.stallCycles = 10;
    r.utilization = 0.5;
    const std::string s = r.toString();
    EXPECT_NE(s.find("100 cycles"), std::string::npos);
    EXPECT_NE(s.find("0.500"), std::string::npos);
}

TEST(EstimateRuntime, MoreChipletsShortenRuntime)
{
    // Same layer, same per-chiplet resources: the 4-chiplet system
    // must be faster than a 1-chiplet one (more parallel MACs).
    AcceleratorConfig small = caseStudyConfig();
    small.package.chiplets = 1;
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);

    Mapping m1;
    m1.pkgSpatial = PackagePartition::Channel;
    m1.chipSpatial = ChipletPartition::Channel;
    m1.chipChannelWays = 8;
    m1.chipletTile = {16, 16, 256};
    m1.hoC = 8;
    m1.woC = 8;
    const auto a1 = analyzeMapping(layer, small, m1);
    const auto r1 = estimateRuntime(layer, small, a1, defaultTech());

    const SimCase s4 = makeSetup();
    const auto r4 =
        estimateRuntime(s4.layer, s4.cfg, s4.analysis, defaultTech());
    EXPECT_GT(r1.cycles, r4.cycles);
}
