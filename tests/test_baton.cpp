/**
 * @file
 * Tests for the NN-Baton facade: post-design and pre-design flows and
 * the Simba comparison entry point.
 */

#include <gtest/gtest.h>

#include "baton/baton.hpp"

using namespace nnbaton;

namespace {

Model
miniModel()
{
    Model m("mini", 64);
    m.addLayer(makeConv("a", 32, 32, 128, 64, 3, 3, 1));
    m.addLayer(makeConv("b", 16, 16, 256, 128, 1, 1, 1));
    return m;
}

} // namespace

TEST(PostDesignFlow, ProducesPerLayerMappings)
{
    PostDesignFlow flow(caseStudyConfig(), defaultTech(),
                        SearchEffort::Fast);
    const PostDesignReport r = flow.run(miniModel());
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.modelName, "mini");
    ASSERT_EQ(r.mappings.size(), 2u);
    EXPECT_GT(r.cost.energy.total(), 0.0);
    const std::string s = r.toString();
    EXPECT_NE(s.find("Layer"), std::string::npos);
    EXPECT_NE(s.find("model total"), std::string::npos);
}

TEST(PostDesignFlow, RunLayerMatchesSearch)
{
    PostDesignFlow flow(caseStudyConfig());
    const ConvLayer l = makeConv("x", 28, 28, 256, 128, 3, 3, 1);
    const auto a = flow.runLayer(l);
    const auto b = searchLayer(l, caseStudyConfig(), defaultTech());
    ASSERT_TRUE(a && b);
    EXPECT_DOUBLE_EQ(a->energy.total(), b->energy.total());
}

TEST(PostDesignFlow, ConfigAccessor)
{
    PostDesignFlow flow(caseStudyConfig());
    EXPECT_EQ(flow.config().computeId(), "4-8-8-8");
}

TEST(PreDesignFlow, RecommendsAValidDesign)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    opt.areaLimitMm2 = 2.0;
    PreDesignFlow flow(opt);
    const PreDesignReport r = flow.run(miniModel());
    ASSERT_TRUE(r.recommended.has_value());
    EXPECT_GT(r.recommended->compute.chiplets, 1);
    const std::string s = r.toString();
    EXPECT_NE(s.find("recommended"), std::string::npos);
    EXPECT_NE(s.find("valid"), std::string::npos);
}

TEST(PreDesignFlow, NoDesignUnderImpossibleArea)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    opt.areaLimitMm2 = 0.1; // below even the PHY macros
    PreDesignFlow flow(opt);
    const PreDesignReport r = flow.run(miniModel());
    EXPECT_FALSE(r.recommended.has_value());
    EXPECT_NE(r.toString().find("no valid design"), std::string::npos);
}

TEST(CompareWithSimba, ReportsBothTools)
{
    const ComparisonReport r =
        compareWithSimba(miniModel(), caseStudyConfig());
    EXPECT_EQ(r.modelName, "mini");
    EXPECT_GT(r.batonEnergy.total(), 0.0);
    EXPECT_GT(r.simbaEnergy.total(), 0.0);
    // savings = 1 - baton/simba by definition.
    EXPECT_NEAR(r.savings(),
                1.0 - r.batonEnergy.total() / r.simbaEnergy.total(),
                1e-12);
}
