/**
 * @file
 * Tests for the energy model and the cost ledger.
 */

#include <gtest/gtest.h>

#include "cost/energy.hpp"
#include "cost/ledger.hpp"

using namespace nnbaton;

namespace {

AccessCounts
unitCounts()
{
    AccessCounts c;
    c.dramReadActBits = 700;
    c.dramReadWeightBits = 300;
    c.dramWriteBits = 500;
    c.d2dBits = 2000;
    c.nocBits = 100;
    c.al2ReadBits = 10;
    c.al2WriteBits = 20;
    c.al1ReadBits = 30;
    c.al1WriteBits = 40;
    c.wl1ReadBits = 50;
    c.wl1WriteBits = 60;
    c.ol1RmwBits = 70;
    c.ol1ReadBits = 80;
    c.ol2ReadBits = 90;
    c.ol2WriteBits = 100;
    c.macOps = 1000;
    c.ol2Bytes = 4096;
    return c;
}

} // namespace

TEST(ComputeEnergy, ComponentsFollowTechModel)
{
    const AccessCounts c = unitCounts();
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &t = defaultTech();
    const EnergyBreakdown e = computeEnergy(c, cfg, t);

    EXPECT_DOUBLE_EQ(e.dram, 1500 * t.dramEnergyPerBit);
    EXPECT_DOUBLE_EQ(e.d2d, 2000 * t.d2dEnergyPerBit);
    EXPECT_DOUBLE_EQ(e.noc, 100 * t.nocEnergyPerBit);
    EXPECT_DOUBLE_EQ(e.al2,
                     30 * t.sramEnergyPerBit(cfg.chiplet.al2Bytes));
    EXPECT_DOUBLE_EQ(e.al1,
                     70 * t.sramEnergyPerBit(cfg.core.al1Bytes));
    EXPECT_DOUBLE_EQ(e.wl1,
                     110 * t.sramEnergyPerBit(cfg.core.wl1Bytes));
    EXPECT_DOUBLE_EQ(e.ol1, 150 * t.rfEnergyPerBitRmw);
    EXPECT_DOUBLE_EQ(e.ol2, 190 * t.sramEnergyPerBit(4096));
    EXPECT_DOUBLE_EQ(e.mac, 1000 * t.macEnergyPerOp);
    EXPECT_NEAR(e.total(),
                e.dram + e.d2d + e.noc + e.al2 + e.al1 + e.wl1 + e.ol1 +
                    e.ol2 + e.mac,
                1e-9);
}

TEST(ComputeEnergy, TinyOl2ClampedToMinimumMacro)
{
    AccessCounts c = unitCounts();
    c.ol2Bytes = 8; // smaller than any real SRAM macro
    const EnergyBreakdown e =
        computeEnergy(c, caseStudyConfig(), defaultTech());
    EXPECT_DOUBLE_EQ(e.ol2,
                     190 * defaultTech().sramEnergyPerBit(1024));
}

TEST(EnergyBreakdown, AccumulateAndScale)
{
    EnergyBreakdown a;
    a.dram = 10;
    a.mac = 5;
    EnergyBreakdown b;
    b.dram = 1;
    b.d2d = 2;
    a += b;
    EXPECT_DOUBLE_EQ(a.dram, 11);
    EXPECT_DOUBLE_EQ(a.d2d, 2);
    EXPECT_DOUBLE_EQ(a.total(), 18);
    const EnergyBreakdown s = a * 2.0;
    EXPECT_DOUBLE_EQ(s.total(), 36);
    EXPECT_DOUBLE_EQ(s.mac, 10);
}

TEST(EnergyBreakdown, SramAggregate)
{
    EnergyBreakdown e;
    e.al2 = 1;
    e.al1 = 2;
    e.wl1 = 3;
    e.ol2 = 4;
    e.ol1 = 100; // RF is not SRAM
    EXPECT_DOUBLE_EQ(e.sram(), 10);
}

TEST(EnergyBreakdown, ToStringHasTotals)
{
    EnergyBreakdown e;
    e.dram = 2e9; // 2 mJ
    const std::string s = e.toString();
    EXPECT_NE(s.find("total 2.0000 mJ"), std::string::npos);
}

TEST(AccessCounts, DramBitsAndToString)
{
    const AccessCounts c = unitCounts();
    EXPECT_EQ(c.dramBits(), 1500);
    EXPECT_NE(c.toString().find("macs 1000"), std::string::npos);
}

TEST(ModelCost, AddAggregates)
{
    ModelCost mc;
    mc.modelName = "m";
    LayerCost a;
    a.layerName = "l1";
    a.energy.dram = 1e9;
    a.cycles = 1000;
    LayerCost b;
    b.layerName = "l2";
    b.energy.mac = 2e9;
    b.cycles = 500;
    mc.add(a);
    mc.add(b);
    EXPECT_EQ(mc.cycles, 1500);
    EXPECT_DOUBLE_EQ(mc.energy.total(), 3e9);
    EXPECT_EQ(mc.layers.size(), 2u);
    EXPECT_DOUBLE_EQ(mc.energyMj(), 3.0);
    // 1500 cycles at 0.5 GHz = 3 us = 0.003 ms.
    EXPECT_DOUBLE_EQ(mc.runtimeMs(0.5), 0.003);
    EXPECT_DOUBLE_EQ(mc.edp(), 3e9 * 1500);
}

TEST(LayerCost, Edp)
{
    LayerCost lc;
    lc.energy.dram = 10;
    lc.cycles = 7;
    EXPECT_DOUBLE_EQ(lc.edp(), 70);
}
