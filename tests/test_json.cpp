/**
 * @file
 * Tests for the JSON writer and the flow export functions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baton/baton.hpp"
#include "baton/export.hpp"
#include "common/json.hpp"

using namespace nnbaton;

TEST(JsonWriter, ObjectWithFields)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("a", 1);
    j.field("b", "x");
    j.field("c", true);
    j.endObject();
    EXPECT_EQ(ss.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(JsonWriter, NestedArraysAndObjects)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.key("list").beginArray();
    j.value(1).value(2);
    j.beginObject().field("k", 3).endObject();
    j.endArray();
    j.endObject();
    EXPECT_EQ(ss.str(), R"({"list":[1,2,{"k":3}]})");
}

TEST(JsonWriter, StringEscaping)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("s", "a\"b\\c\nd");
    j.endObject();
    EXPECT_EQ(ss.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, Doubles)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginArray();
    j.value(1.5);
    j.value(0.0);
    j.value(std::numeric_limits<double>::infinity()); // -> null
    j.endArray();
    EXPECT_EQ(ss.str(), "[1.5,0,null]");
}

TEST(JsonWriter, TopLevelValueSequenceInArray)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginArray().value("x").value(static_cast<int64_t>(-7)).endArray();
    EXPECT_EQ(ss.str(), R"(["x",-7])");
}

namespace {

/** Very small JSON structural validator: balanced braces/brackets
 *  outside strings, non-empty. */
bool
structurallyValid(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string && !s.empty();
}

} // namespace

TEST(JsonParser, RoundTripsWriterOutput)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("name", "conv\"1\"");
    j.field("count", 42);
    j.field("ratio", -1.25);
    j.field("ok", true);
    j.key("tiles").beginArray().value(4).value(8).endArray();
    j.key("nested").beginObject().field("deep", 7).endObject();
    j.endObject();

    const JsonParseResult r = parseJson(ss.str());
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_TRUE(r.value.isObject());
    EXPECT_EQ(r.value.find("name")->string, "conv\"1\"");
    EXPECT_DOUBLE_EQ(r.value.find("count")->number, 42.0);
    EXPECT_DOUBLE_EQ(r.value.find("ratio")->number, -1.25);
    EXPECT_TRUE(r.value.find("ok")->boolean);
    ASSERT_TRUE(r.value.find("tiles")->isArray());
    EXPECT_EQ(r.value.find("tiles")->array.size(), 2u);
    EXPECT_DOUBLE_EQ(r.value.find("nested")->find("deep")->number, 7.0);
}

TEST(JsonParser, ReportsErrors)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{\"a\":1").ok());
    EXPECT_FALSE(parseJson("{\"a\" 1}").ok());
    EXPECT_FALSE(parseJson("[1,2,]").ok());
    EXPECT_FALSE(parseJson("{} trailing").ok());
    EXPECT_FALSE(parseJson("nul").ok());
    const JsonParseResult r = parseJson("{\"a\":bogus}");
    EXPECT_FALSE(r.ok());
    EXPECT_GT(r.errorOffset, 0u);
}

TEST(JsonParser, AcceptsWhitespaceAndEscapes)
{
    const JsonParseResult r =
        parseJson(" { \"s\" : \"a\\n\\t\\u0041\" , \"n\" : null } \n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.value.find("s")->string, "a\n\tA");
    EXPECT_TRUE(r.value.find("n")->isNull());
}

TEST(Export, PostDesignJsonIsStructured)
{
    Model m("mini", 64);
    m.addLayer(makeConv("a", 32, 32, 128, 64, 3, 3, 1));
    PostDesignFlow flow(caseStudyConfig(), defaultTech(),
                        SearchEffort::Fast);
    const PostDesignReport report = flow.run(m);

    std::ostringstream ss;
    exportPostDesign(report, ss);
    const std::string out = ss.str();
    EXPECT_TRUE(structurallyValid(out)) << out;
    EXPECT_NE(out.find("\"model\":\"mini\""), std::string::npos);
    EXPECT_NE(out.find("\"layers\":["), std::string::npos);
    EXPECT_NE(out.find("\"spatial\""), std::string::npos);
    EXPECT_NE(out.find("\"temporal\""), std::string::npos);
    EXPECT_NE(out.find("\"chipletTile\""), std::string::npos);

    // The full export (including the observability block) parses.
    const JsonParseResult parsed = parseJson(out);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue *observability = parsed.value.find("observability");
    ASSERT_NE(observability, nullptr);
    EXPECT_NE(observability->find("profile"), nullptr);
    EXPECT_NE(observability->find("metrics"), nullptr);
}

TEST(Export, PreDesignJsonCarriesPoints)
{
    Model m("mini", 64);
    m.addLayer(makeConv("a", 32, 32, 128, 64, 3, 3, 1));
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Sketch;
    PreDesignFlow flow(opt);
    const PreDesignReport report = flow.run(m);

    std::ostringstream ss;
    exportPreDesign(report, ss);
    const std::string out = ss.str();
    EXPECT_TRUE(structurallyValid(out));
    EXPECT_NE(out.find("\"points\":["), std::string::npos);
    EXPECT_NE(out.find("\"recommended\""), std::string::npos);
    EXPECT_NE(out.find("\"chipletAreaMm2\""), std::string::npos);
}

TEST(Export, MappingJsonStandsAlone)
{
    Mapping m;
    m.pkgSpatial = PackagePartition::Plane;
    m.pkgSplit = {2, 2};
    m.chipSpatial = ChipletPartition::Hybrid;
    m.chipChannelWays = 2;
    m.chipSplit = {2, 2};
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    std::ostringstream ss;
    exportMapping(m, ss);
    const std::string out = ss.str();
    EXPECT_TRUE(structurallyValid(out));
    EXPECT_NE(out.find("\"package\":\"P\""), std::string::npos);
    EXPECT_NE(out.find("\"chiplet\":\"H\""), std::string::npos);
    EXPECT_NE(out.find("\"packagePattern\":\"2:2\""),
              std::string::npos);
}
