/**
 * @file
 * Transformer-era workloads: native GEMM layers, the lowered
 * attention block, and the batch dimension, verified from layer
 * construction through C3P accounting, energy, both search modes and
 * the coordinate-level differential replay.
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "cost/energy.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "nn/parser.hpp"
#include "verif/replay.hpp"

using namespace nnbaton;

namespace {

/** A mapping-search winner for @p layer on the case-study hardware. */
MappingChoice
winnerOf(const ConvLayer &layer, SearchMode mode = SearchMode::Exhaustive)
{
    SearchOptions opts;
    opts.mode = mode;
    const auto choice =
        searchLayer(layer, caseStudyConfig(), defaultTech(),
                    SearchEffort::Fast, Objective::MinEnergy, opts);
    EXPECT_TRUE(choice.has_value()) << layer.toString();
    return choice.value();
}

/** The lowered layers of one attention block plus a batched GEMM. */
std::vector<ConvLayer>
transformerLayers()
{
    Model m("t", 24);
    appendAttentionBlock(m, "a", 24, 96, 4, 2);
    m.addLayer(makeGemm("g", 48, 64, 96, 3, 2));
    return m.layers();
}

} // namespace

TEST(WorkloadsGemm, FactorsMIntoBalancedExactPlane)
{
    const ConvLayer sq = makeGemm("sq", 36, 8, 8);
    EXPECT_EQ(sq.ho, 6);
    EXPECT_EQ(sq.wo, 6);
    const ConvLayer rect = makeGemm("rect", 48, 8, 8);
    EXPECT_EQ(rect.ho, 6);
    EXPECT_EQ(rect.wo, 8);
    const ConvLayer prime = makeGemm("prime", 197, 8, 8);
    EXPECT_EQ(prime.ho, 1);
    EXPECT_EQ(prime.wo, 197);
    // The lowering is exact, never padded: MACs and outputs match the
    // native M x N x K workload.
    const ConvLayer g = makeGemm("g", 197, 64, 96, 5);
    EXPECT_EQ(g.macs(), 5LL * 197 * 64 * 96);
    EXPECT_EQ(g.outputVolume(), 5LL * 197 * 64);
    EXPECT_EQ(g.weightVolume(), 64LL * 96);
    EXPECT_TRUE(g.isPointWise());
}

TEST(WorkloadsGemm, ValidateRejectsInconsistentLowering)
{
    ConvLayer g = makeGemm("g", 48, 64, 96);
    g.gemmM = 47; // plane no longer covers M
    expectStatusThrow([&] { g.validate(); }, "GEMM");
    ConvLayer s = makeGemm("s", 48, 64, 96);
    s.kh = 3; // a GEMM has no kernel window
    expectStatusThrow([&] { s.validate(); }, "GEMM");
    expectStatusThrow([] { makeGemm("bad", 0, 8, 8); }, "GEMM M");
}

TEST(WorkloadsGemm, VectorOpsCountPostMacPasses)
{
    const ConvLayer g = makeGemm("g", 16, 16, 16, 4, 3);
    EXPECT_EQ(g.vectorOps(), 3 * g.outputVolume());
    const ConvLayer plain = makeGemm("p", 16, 16, 16, 4);
    EXPECT_EQ(plain.vectorOps(), 0);
    const ConvLayer conv = makeConv("c", 8, 8, 16, 16, 3, 3, 1);
    EXPECT_EQ(conv.vectorOps(), 0);
}

TEST(WorkloadsBatch, ScalesComputeButNotWeights)
{
    ConvLayer one = makeConv("b1", 14, 14, 16, 16, 3, 3, 1);
    ConvLayer four = one;
    four.batch = 4;
    EXPECT_EQ(four.macs(), 4 * one.macs());
    EXPECT_EQ(four.outputVolume(), 4 * one.outputVolume());
    EXPECT_EQ(four.inputVolume(), 4 * one.inputVolume());
    EXPECT_EQ(four.weightVolume(), one.weightVolume());
}

TEST(WorkloadsBatch, WeightFillsAreSharedAcrossSamples)
{
    // All weights fit in W-L1 for this layer, so the analytical fills
    // must not grow with the batch (the batch loop is outermost and
    // weights are batch-irrelevant), while activation fills and DRAM
    // output writes scale exactly linearly.
    const AcceleratorConfig cfg = caseStudyConfig();
    ConvLayer layer = makeConv("wb", 14, 14, 16, 16, 3, 3, 1);
    const Mapping mapping = winnerOf(layer).mapping;

    const AccessAnalysis a1 = analyzeMapping(layer, cfg, mapping);
    layer.batch = 4;
    const AccessAnalysis a4 = analyzeMapping(layer, cfg, mapping);

    EXPECT_EQ(a4.wl1.fillBytes, a1.wl1.fillBytes);
    EXPECT_EQ(a4.counts.dramReadWeightBits,
              a1.counts.dramReadWeightBits);
    EXPECT_EQ(a4.al2.fillBytes, 4 * a1.al2.fillBytes);
    EXPECT_EQ(a4.counts.dramWriteBits, 4 * a1.counts.dramWriteBits);
    EXPECT_EQ(a4.counts.macOps, 4 * a1.counts.macOps);
    EXPECT_EQ(a4.shapes.batchTrips, 4);
    EXPECT_EQ(a4.shapes.coreTilesPerChiplet(),
              4 * a1.shapes.coreTilesPerChiplet());
}

TEST(WorkloadsReplay, ExactEqualityOnGemmAttentionAndBatch)
{
    // The tentpole guarantee: every new layer shape must pass the
    // differential replay bit for bit (all access counts, fills,
    // cycles and energy).
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    for (const ConvLayer &layer : transformerLayers()) {
        const MappingChoice choice = winnerOf(layer);
        const DifferentialReport report =
            diffMapping(layer, cfg, tech, choice.mapping);
        EXPECT_TRUE(report.ok())
            << layer.toString() << " mapping "
            << choice.mapping.toString() << "\n"
            << report.toString();
    }
}

TEST(WorkloadsReplay, ExactEqualityUnderAblatedOptions)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const ConvLayer layer = makeGemm("abl", 48, 64, 96, 3, 2);
    const Mapping mapping = winnerOf(layer).mapping;
    for (int mask = 0; mask < 8; ++mask) {
        AnalysisOptions opt;
        opt.rotationSharing = mask & 1;
        opt.wl1Pooling = mask & 2;
        opt.al2Multicast = mask & 4;
        const DifferentialReport report =
            diffMapping(layer, cfg, tech, mapping, opt);
        EXPECT_TRUE(report.ok()) << "mask " << mask << "\n"
                                 << report.toString();
    }
}

TEST(WorkloadsSearch, ExhaustiveAndBnbAgreeOnTransformerLayers)
{
    // The branch-and-bound contract (bit-identical winners) must hold
    // on the new shapes: batched, plane-degenerate (prime M) and
    // vector-op-carrying layers all stress the bound's soundness.
    for (const ConvLayer &layer : transformerLayers()) {
        const MappingChoice ex = winnerOf(layer, SearchMode::Exhaustive);
        const MappingChoice bnb = winnerOf(layer, SearchMode::Bnb);
        EXPECT_EQ(ex.mapping.toString(), bnb.mapping.toString())
            << layer.toString();
        EXPECT_EQ(ex.energy.total(), bnb.energy.total())
            << layer.toString();
        EXPECT_EQ(ex.runtime.cycles, bnb.runtime.cycles)
            << layer.toString();
    }
    const MappingChoice prime =
        winnerOf(makeGemm("prime", 197, 64, 96));
    const MappingChoice prime_bnb =
        winnerOf(makeGemm("prime", 197, 64, 96), SearchMode::Bnb);
    EXPECT_EQ(prime.mapping.toString(), prime_bnb.mapping.toString());
    EXPECT_EQ(prime.energy.total(), prime_bnb.energy.total());
}

TEST(WorkloadsEnergy, VectorTermIsExactAndZeroForConv)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();

    const ConvLayer soft = makeGemm("soft", 24, 24, 16, 8, 3);
    const MappingChoice choice = winnerOf(soft);
    EXPECT_EQ(choice.analysis.counts.vectorOps, soft.vectorOps());
    EXPECT_DOUBLE_EQ(choice.energy.vector,
                     static_cast<double>(soft.vectorOps()) *
                         tech.vectorOpEnergyPerOp);
    EXPECT_GT(choice.energy.vector, 0.0);

    // Conv layers carry no post-ops, so the new term is exactly zero
    // and every pre-existing energy total is unchanged.
    const ConvLayer conv = makeConv("c", 14, 14, 64, 32, 3, 3, 1);
    const MappingChoice cc = winnerOf(conv);
    EXPECT_EQ(cc.analysis.counts.vectorOps, 0);
    EXPECT_EQ(cc.energy.vector, 0.0);
    (void)cfg;
}

TEST(WorkloadsZoo, BertAndVitBuildAndValidate)
{
    const Model bert = makeBertBase(128);
    // 12 encoders x (4 attention GEMMs + 2 FFN GEMMs).
    EXPECT_EQ(bert.layers().size(), 72u);
    for (const ConvLayer &l : bert.layers()) {
        EXPECT_NO_THROW(l.validate()) << l.toString();
        EXPECT_EQ(l.op, LayerOp::Gemm);
    }
    EXPECT_EQ(bert.layer("enc1_attn_scores").batch, 12);
    EXPECT_EQ(bert.layer("enc1_attn_scores").postOps, 3);
    EXPECT_EQ(bert.layer("enc1_attn_scores").gemmK, 64);
    EXPECT_EQ(bert.layer("enc1_ffn1").gemmN, 3072);

    const Model vit = makeVitB16(224);
    EXPECT_EQ(vit.layers().size(), 74u); // patch embed + 72 + head
    EXPECT_EQ(vit.layer("patch_embed").kh, 16);
    EXPECT_EQ(vit.layer("enc1_attn_qkv").gemmM, 197);
    EXPECT_TRUE(vit.layer("head").isPointWise());

    expectStatusThrow([] { makeVitB16(100); }, "multiple of 16");
    expectStatusThrow([] { makeBertBase(1); }, "sequence length");
}

TEST(WorkloadsZoo, ScaleBatchIsMultiplicative)
{
    Model bert = makeBertBase(128);
    bert.scaleBatch(4);
    EXPECT_EQ(bert.layer("enc1_attn_qkv").batch, 4);
    EXPECT_EQ(bert.layer("enc1_attn_scores").batch, 48);
    expectStatusThrow([&] { bert.scaleBatch(0); }, "batch factor");
}

TEST(WorkloadsZoo, ZooModelsReachableThroughParserRoundTrip)
{
    // The satellite contract: zoo transformers must survive the text
    // format (the CLI's models command dumps exactly this).
    for (const Model &m : {makeBertBase(128), makeVitB16(224)}) {
        const ParseResult r = parseModelString(writeModelText(m));
        ASSERT_TRUE(r.ok()) << m.name() << ": " << r.error;
        EXPECT_EQ(writeModelText(*r.model), writeModelText(m));
    }
}
