/**
 * @file
 * The parallel sweep engine's central promise: explore() and
 * mapModel() produce bit-identical results (points, scores, mapping
 * choices, and work counters) at any thread count, with or without
 * the shared cross-point cache.
 */

#include <gtest/gtest.h>

#include "dse/explorer.hpp"
#include "mapper/cache.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

namespace {

/** Small model with a repeated layer shape so the cache sees hits. */
Model
miniModel()
{
    Model m("mini", 64);
    m.addLayer(makeConv("a1", 32, 32, 128, 64, 3, 3, 1));
    m.addLayer(makeConv("b", 16, 16, 256, 128, 1, 1, 1));
    m.addLayer(makeConv("a2", 32, 32, 128, 64, 3, 3, 1));
    return m;
}

DseResult
sweep(int threads, bool pruning = true)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    opt.threads = threads;
    opt.boundPruning = pruning;
    return explore(miniModel(), opt, defaultTech());
}

void
expectIdentical(const DseResult &a, const DseResult &b)
{
    EXPECT_EQ(a.swept, b.swept);
    EXPECT_EQ(a.areaRejected, b.areaRejected);
    EXPECT_EQ(a.infeasible, b.infeasible);
    EXPECT_EQ(a.search.evaluated, b.search.evaluated);
    EXPECT_EQ(a.search.pruned, b.search.pruned);
    EXPECT_EQ(a.search.cacheHits, b.search.cacheHits);
    EXPECT_EQ(a.search.cacheMisses, b.search.cacheMisses);
    EXPECT_EQ(a.cacheEntries, b.cacheEntries);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); ++i) {
        const DesignPoint &p = a.points[i];
        const DesignPoint &q = b.points[i];
        EXPECT_EQ(p.compute.chiplets, q.compute.chiplets) << i;
        EXPECT_EQ(p.compute.cores, q.compute.cores) << i;
        EXPECT_EQ(p.compute.lanes, q.compute.lanes) << i;
        EXPECT_EQ(p.compute.vectorSize, q.compute.vectorSize) << i;
        EXPECT_EQ(p.memory.ol1Bytes, q.memory.ol1Bytes) << i;
        EXPECT_EQ(p.memory.al1Bytes, q.memory.al1Bytes) << i;
        EXPECT_EQ(p.memory.wl1Bytes, q.memory.wl1Bytes) << i;
        EXPECT_EQ(p.memory.al2Bytes, q.memory.al2Bytes) << i;
        // Bit-identical scores: EXPECT_EQ on doubles, no tolerance.
        EXPECT_EQ(p.cost.energy.total(), q.cost.energy.total()) << i;
        EXPECT_EQ(p.cost.cycles, q.cost.cycles) << i;
        EXPECT_EQ(p.edp(), q.edp()) << i;
    }
}

} // namespace

TEST(Determinism, ExploreParallelMatchesSerial)
{
    const DseResult serial = sweep(1);
    for (int threads : {2, 4}) {
        const DseResult parallel = sweep(threads);
        SCOPED_TRACE(threads);
        expectIdentical(serial, parallel);
    }
}

TEST(Determinism, ExplorePruningPreservesPoints)
{
    // Pruning may only skip full evaluations, never change any
    // surviving point's score or the chosen best.
    const DseResult pruned = sweep(1, /*pruning=*/true);
    const DseResult full = sweep(1, /*pruning=*/false);
    EXPECT_EQ(pruned.swept, full.swept);
    ASSERT_EQ(pruned.points.size(), full.points.size());
    for (size_t i = 0; i < pruned.points.size(); ++i) {
        EXPECT_EQ(pruned.points[i].cost.energy.total(),
                  full.points[i].cost.energy.total());
        EXPECT_EQ(pruned.points[i].edp(), full.points[i].edp());
    }
    EXPECT_LE(pruned.search.evaluated, full.search.evaluated);
    EXPECT_EQ(full.search.pruned, 0);
    EXPECT_EQ(pruned.search.evaluated + pruned.search.pruned,
              full.search.evaluated);
    ASSERT_EQ(pruned.bestEdp().has_value(), full.bestEdp().has_value());
    if (pruned.bestEdp())
        EXPECT_EQ(*pruned.bestEdp(), *full.bestEdp());
}

TEST(Determinism, ExploreCountersAreConsistent)
{
    const DseResult r = sweep(4);
    // The repeated layer shape hits the cache within each point, and
    // every lookup is either a hit or a miss.
    EXPECT_GT(r.search.cacheHits, 0);
    EXPECT_GT(r.search.cacheMisses, 0);
    // Each distinct (shape, config) was searched exactly once.
    EXPECT_EQ(r.search.cacheMisses, r.cacheEntries);
    EXPECT_GT(r.search.evaluated, 0);
}

TEST(Determinism, MapModelParallelMatchesSerial)
{
    const Model model = miniModel();
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();

    SearchOptions serial_opt;
    serial_opt.threads = 1;
    const ModelMappingResult serial =
        mapModel(model, cfg, tech, SearchEffort::Fast,
                 Objective::MinEnergy, serial_opt);

    for (int threads : {2, 4}) {
        SearchOptions par_opt;
        par_opt.threads = threads;
        const ModelMappingResult parallel =
            mapModel(model, cfg, tech, SearchEffort::Fast,
                     Objective::MinEnergy, par_opt);
        SCOPED_TRACE(threads);
        EXPECT_EQ(parallel.feasible, serial.feasible);
        EXPECT_EQ(parallel.stats.evaluated, serial.stats.evaluated);
        EXPECT_EQ(parallel.stats.pruned, serial.stats.pruned);
        EXPECT_EQ(parallel.stats.cacheHits, serial.stats.cacheHits);
        EXPECT_EQ(parallel.stats.cacheMisses,
                  serial.stats.cacheMisses);
        EXPECT_EQ(parallel.cost.energy.total(),
                  serial.cost.energy.total());
        EXPECT_EQ(parallel.cost.cycles, serial.cost.cycles);
        ASSERT_EQ(parallel.choices.size(), serial.choices.size());
        for (size_t i = 0; i < serial.choices.size(); ++i) {
            EXPECT_EQ(parallel.choices[i].mapping.toString(),
                      serial.choices[i].mapping.toString())
                << i;
            EXPECT_EQ(parallel.choices[i].energy.total(),
                      serial.choices[i].energy.total())
                << i;
        }
    }
}

TEST(Determinism, MapModelLegacyOverloadUnchanged)
{
    // The four-argument overload must behave exactly like the new one
    // with default options (serial, pruning on): existing callers see
    // identical results.
    const Model model = miniModel();
    const AcceleratorConfig cfg = caseStudyConfig();
    const ModelMappingResult legacy =
        mapModel(model, cfg, defaultTech(), SearchEffort::Fast);
    const ModelMappingResult current =
        mapModel(model, cfg, defaultTech(), SearchEffort::Fast,
                 Objective::MinEnergy, SearchOptions{});
    EXPECT_EQ(legacy.cost.energy.total(), current.cost.energy.total());
    EXPECT_EQ(legacy.cost.cycles, current.cost.cycles);
}

TEST(Determinism, TransformerLayersAcrossThreadsAndModes)
{
    // Transformer-era shapes (batched GEMMs, the lowered attention
    // block with its vector-op tail) must keep the bit-identical
    // promise at every thread count and under all three search
    // strategies; the repeated GEMM exercises the batch/postOps-aware
    // cache key on the way.
    Model m("tf", 24);
    appendAttentionBlock(m, "a", 24, 96, 4, 2);
    m.addLayer(makeGemm("g1", 48, 64, 96, 3, 2));
    m.addLayer(makeGemm("g2", 48, 64, 96, 3, 2)); // cache repeat
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();

    for (SearchMode mode : {SearchMode::Exhaustive, SearchMode::Bnb,
                            SearchMode::Anneal}) {
        SearchOptions base;
        base.mode = mode;
        base.threads = 1;
        const ModelMappingResult serial =
            mapModel(m, cfg, tech, SearchEffort::Fast,
                     Objective::MinEnergy, base);
        SCOPED_TRACE(static_cast<int>(mode));
        ASSERT_TRUE(serial.feasible);
        EXPECT_EQ(serial.stats.cacheHits, 1); // g2 repeats g1 exactly
        for (int threads : {2, 4}) {
            SearchOptions opt = base;
            opt.threads = threads;
            const ModelMappingResult parallel = mapModel(
                m, cfg, tech, SearchEffort::Fast, Objective::MinEnergy,
                opt);
            SCOPED_TRACE(threads);
            EXPECT_EQ(parallel.cost.energy.total(),
                      serial.cost.energy.total());
            EXPECT_EQ(parallel.cost.cycles, serial.cost.cycles);
            ASSERT_EQ(parallel.choices.size(), serial.choices.size());
            for (size_t i = 0; i < serial.choices.size(); ++i) {
                EXPECT_EQ(parallel.choices[i].mapping.toString(),
                          serial.choices[i].mapping.toString())
                    << i;
            }
        }
    }
}

TEST(Determinism, BatchChangesCacheKeyNotDeterminism)
{
    // Two layers identical except for batch must occupy distinct
    // cache entries (a batch-1 winner reused for batch-4 would break
    // replay), and the mapped totals must scale deterministically.
    Model m("bk", 16);
    m.addLayer(makeGemm("b1", 48, 64, 96, 1));
    m.addLayer(makeGemm("b4", 48, 64, 96, 4));
    MappingCache cache;
    const ModelMappingResult r =
        mapModel(m, caseStudyConfig(), defaultTech(),
                 SearchEffort::Fast, Objective::MinEnergy,
                 SearchOptions{}, &cache);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(r.stats.cacheHits, 0);
    EXPECT_EQ(r.stats.cacheMisses, 2);
}

TEST(Determinism, SharedCacheDoesNotChangeResults)
{
    const Model model = miniModel();
    const AcceleratorConfig cfg = caseStudyConfig();
    MappingCache cache;
    const ModelMappingResult fresh =
        mapModel(model, cfg, defaultTech(), SearchEffort::Fast,
                 Objective::MinEnergy, SearchOptions{}, &cache);
    // Two distinct shapes -> two entries, one hit for the repeat.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(fresh.stats.cacheMisses, 2);
    EXPECT_EQ(fresh.stats.cacheHits, 1);

    // A second run against the warmed cache: all hits, same cost,
    // and no new search work.
    const ModelMappingResult warmed =
        mapModel(model, cfg, defaultTech(), SearchEffort::Fast,
                 Objective::MinEnergy, SearchOptions{}, &cache);
    EXPECT_EQ(warmed.stats.cacheHits, 3);
    EXPECT_EQ(warmed.stats.cacheMisses, 0);
    EXPECT_EQ(warmed.stats.evaluated, 0);
    EXPECT_EQ(warmed.cost.energy.total(), fresh.cost.energy.total());
    EXPECT_EQ(warmed.cost.cycles, fresh.cost.cycles);
}
