/**
 * @file
 * Tests for candidate enumeration, the per-layer mapping search and
 * the whole-model post-design flow, plus the access-accounting
 * invariants the search relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "c3p/access.hpp"
#include "mapper/cache.hpp"
#include "mapper/candidates.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

TEST(Candidates, AllLegalAndCoverSpatialCombos)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto cands =
        enumerateCandidates(layer, cfg, SearchEffort::Exhaustive);
    ASSERT_FALSE(cands.empty());

    std::set<std::string> combos;
    for (const Mapping &m : cands) {
        EXPECT_EQ(checkMapping(layer, cfg, m), "") << m.toString();
        combos.insert(m.spatialLabel());
    }
    // All six spatial combinations appear for a wide, large layer.
    EXPECT_EQ(combos.size(), 6u) << "got only " << combos.size();
}

TEST(Candidates, PaperCaseDropsUnderfilledLanes)
{
    // Paper figure 11 removes (C,C) for conv layers with small output
    // channels: a 64-channel layer split 4 x 8 ways leaves 2 channels
    // per core against 8 lanes.
    const ConvLayer conv1 = makeConv("c", 224, 224, 64, 3, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto cands =
        enumerateCandidates(conv1, cfg, SearchEffort::Exhaustive);
    for (const Mapping &m : cands) {
        EXPECT_NE(m.spatialLabel(), "(C,C)") << m.toString();
    }
}

TEST(Candidates, FallbackWhenNothingFillsLanes)
{
    // A 4-channel layer cannot fill 8 lanes under any partition, so
    // the degraded candidates must be returned instead of nothing.
    const ConvLayer narrow = makeConv("n", 56, 56, 4, 64, 3, 3, 1);
    const auto cands = enumerateCandidates(narrow, caseStudyConfig(),
                                           SearchEffort::Exhaustive);
    EXPECT_FALSE(cands.empty());
}

TEST(Candidates, FastEffortIsSubsetSized)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto fast =
        enumerateCandidates(layer, cfg, SearchEffort::Fast);
    const auto full =
        enumerateCandidates(layer, cfg, SearchEffort::Exhaustive);
    EXPECT_FALSE(fast.empty());
    EXPECT_LT(fast.size(), full.size());
}

TEST(Candidates, FilteredEnumerationRespectsCombo)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const auto cands = enumerateCandidatesFor(
        layer, caseStudyConfig(), SearchEffort::Exhaustive,
        PackagePartition::Plane, ChipletPartition::Hybrid);
    ASSERT_FALSE(cands.empty());
    for (const Mapping &m : cands)
        EXPECT_EQ(m.spatialLabel(), "(P,H)");
}

TEST(AccessCounts, OutputTrafficIsExact)
{
    // Output-centric dataflow: every output crosses O-L2 and DRAM
    // exactly once at 8 bits, independent of the mapping.
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    for (const Mapping &m :
         enumerateCandidates(layer, cfg, SearchEffort::Fast)) {
        const auto a = analyzeMapping(layer, cfg, m);
        EXPECT_EQ(a.counts.dramWriteBits, layer.outputVolume() * 8);
        EXPECT_EQ(a.counts.ol2WriteBits, layer.outputVolume() * 8);
        EXPECT_EQ(a.counts.macOps, layer.macs());
    }
}

TEST(AccessCounts, DramReadsCoverColdTensors)
{
    // DRAM reads can never be below one cold pass over weights plus
    // the package's unique activation demand.
    const ConvLayer layer = makeConv("t", 28, 28, 512, 256, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    for (const Mapping &m :
         enumerateCandidates(layer, cfg, SearchEffort::Fast)) {
        const auto a = analyzeMapping(layer, cfg, m);
        EXPECT_GE(a.counts.dramReadBits(), layer.weightVolume() * 8)
            << m.toString();
    }
}

TEST(AccessCounts, RotationSharingSplitsDramAndD2d)
{
    // C-type package split shares activations: the ring must carry
    // (Np-1) copies of the A-L2 fill stream.
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    const auto a = analyzeMapping(layer, cfg, m);
    EXPECT_EQ(a.counts.d2dBits % 3, 0); // (Np-1) = 3 copies
    EXPECT_GT(a.counts.d2dBits, 0);
    // Same mapping on a single chiplet has no D2D at all.
    AcceleratorConfig one = cfg;
    one.package.chiplets = 1;
    Mapping m1 = m;
    m1.chipletTile.co = 256;
    const auto a1 = analyzeMapping(layer, one, m1);
    EXPECT_EQ(a1.counts.d2dBits, 0);
}

TEST(SearchLayer, FindsMappingForAllRepresentativeLayers)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(224);
    for (const ConvLayer *l :
         {&reps.activationIntensive, &reps.weightIntensive,
          &reps.largeKernel, &reps.pointWise, &reps.common}) {
        const auto best = searchLayer(*l, cfg, defaultTech());
        ASSERT_TRUE(best.has_value()) << l->name;
        EXPECT_GT(best->energy.total(), 0.0);
        EXPECT_GT(best->runtime.cycles, 0);
    }
}

TEST(SearchLayer, BestBeatsEveryFastCandidate)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto best = searchLayer(layer, cfg, defaultTech());
    ASSERT_TRUE(best.has_value());
    for (const Mapping &m :
         enumerateCandidates(layer, cfg, SearchEffort::Fast)) {
        const auto c = evaluateMapping(layer, cfg, defaultTech(), m);
        EXPECT_LE(best->energy.total(), c.energy.total() + 1e-6)
            << m.toString();
    }
}

TEST(SearchLayer, EdpObjectiveNeverWorseEdp)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto e = searchLayer(layer, cfg, defaultTech(),
                               SearchEffort::Exhaustive,
                               Objective::MinEnergy);
    const auto d = searchLayer(layer, cfg, defaultTech(),
                               SearchEffort::Exhaustive,
                               Objective::MinEdp);
    ASSERT_TRUE(e && d);
    EXPECT_LE(d->edp(), e->edp() + 1e-6);
    EXPECT_LE(e->energy.total(), d->energy.total() + 1e-6);
}

TEST(SearchLayerWithSpatial, RespectsRestriction)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const auto r = searchLayerWithSpatial(
        layer, caseStudyConfig(), defaultTech(),
        PackagePartition::Channel, ChipletPartition::Plane);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->mapping.spatialLabel(), "(C,P)");
}

TEST(MapModel, CoversAllLayersAndDedupsShapes)
{
    const Model model = makeResNet50(224);
    const auto r = mapModel(model, caseStudyConfig(), defaultTech(),
                            SearchEffort::Fast);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.choices.size(), model.layers().size());
    EXPECT_EQ(r.cost.layers.size(), model.layers().size());
    EXPECT_GT(r.cost.energy.total(), 0.0);
    EXPECT_GT(r.cost.cycles, 0);
    // Identical repeated blocks must produce identical choices.
    const auto &l = model.layers();
    for (size_t i = 0; i + 3 < l.size(); ++i) {
        for (size_t j = i + 1; j < l.size(); ++j) {
            if (l[i].ho == l[j].ho && l[i].wo == l[j].wo &&
                l[i].co == l[j].co && l[i].ci == l[j].ci &&
                l[i].kh == l[j].kh && l[i].stride == l[j].stride) {
                EXPECT_EQ(r.cost.layers[i].energy.total(),
                          r.cost.layers[j].energy.total());
            }
        }
    }
}

TEST(MapModel, LayerwiseStrategiesDiffer)
{
    // Paper section VI-A.1: NN-Baton picks distinct mapping
    // strategies layer-wise; a model with diverse layers must not end
    // up with a single spatial combo everywhere.
    const Model model = makeVgg16(224);
    const auto r = mapModel(model, caseStudyConfig(), defaultTech(),
                            SearchEffort::Fast);
    std::set<std::string> combos;
    for (const auto &c : r.choices)
        combos.insert(c.mapping.spatialLabel());
    EXPECT_GT(combos.size(), 1u);
}

TEST(AnalysisOptions, DisablingMechanismsNeverReducesEnergy)
{
    // Ablation invariants: each dataflow mechanism can only help (or
    // be neutral) for the mapping chosen with everything enabled.
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layers[] = {
        makeConv("wide", 28, 28, 512, 256, 3, 3, 1),
        makeConv("planar", 112, 112, 64, 32, 3, 3, 1),
    };
    for (const ConvLayer &layer : layers) {
        const auto best = searchLayer(layer, cfg, defaultTech());
        ASSERT_TRUE(best.has_value());
        const double full = best->energy.total();
        for (int knob = 0; knob < 3; ++knob) {
            AnalysisOptions o;
            if (knob == 0)
                o.rotationSharing = false;
            else if (knob == 1)
                o.wl1Pooling = false;
            else
                o.al2Multicast = false;
            const auto ablated = evaluateMapping(
                layer, cfg, defaultTech(), best->mapping, o);
            EXPECT_GE(ablated.energy.total(), full - 1e-6)
                << layer.name << " knob " << knob;
        }
    }
}

TEST(AnalysisOptions, RotationOffMovesTrafficToDram)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel; // activations shared
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    const auto with = analyzeMapping(layer, cfg, m);
    AnalysisOptions off;
    off.rotationSharing = false;
    const auto without = analyzeMapping(layer, cfg, m, off);
    EXPECT_GT(with.counts.d2dBits, 0);
    EXPECT_EQ(without.counts.d2dBits, 0);
    EXPECT_GT(without.counts.dramReadBits(), with.counts.dramReadBits());
}

TEST(MapModel, MobileNetV2DepthwiseFeasible)
{
    // The depthwise extension must map end to end.
    const Model model = makeMobileNetV2(224);
    const auto r = mapModel(model, caseStudyConfig(), defaultTech(),
                            SearchEffort::Fast);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.choices.size(), model.layers().size());
}

TEST(SearchLayer, DepthwiseActivationFootprintFollowsLanes)
{
    // For a depthwise layer the activation traffic tracks the output
    // channels; a sanity check that the analysis wires OC relevance.
    const ConvLayer dw = makeDepthwiseConv("dw", 56, 56, 144, 3, 1);
    const auto best =
        searchLayer(dw, caseStudyConfig(), defaultTech());
    ASSERT_TRUE(best.has_value());
    // Weight volume is tiny (co * 9), so weight DRAM must be small.
    EXPECT_LE(best->analysis.counts.dramReadBits(),
              (dw.inputVolume() * 16 + dw.weightVolume() * 64) * 8);
    EXPECT_EQ(best->analysis.counts.macOps, dw.macs());
}

// ---------------------------------------------------------------------
// MappingCache: technology keying and LRU eviction.  The cache outlives
// a single fixed-tech run in the serving daemon, so these invariants
// guard against cross-request aliasing and unbounded growth.
// ---------------------------------------------------------------------

TEST(MappingCache, KeyFoldsInTechnologyFingerprint)
{
    const ConvLayer layer = makeConv("t", 28, 28, 128, 64, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    TechnologyModel cheapDram = defaultTech();
    cheapDram.dramEnergyPerBit /= 2;

    const auto a = MappingCache::makeKey(
        layer, cfg, defaultTech(), SearchEffort::Fast,
        Objective::MinEnergy);
    const auto b = MappingCache::makeKey(
        layer, cfg, cheapDram, SearchEffort::Fast,
        Objective::MinEnergy);
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.techFingerprint, b.techFingerprint);

    // Every energy anchor and timing knob must perturb the digest.
    for (int knob = 0; knob < 4; ++knob) {
        TechnologyModel t = defaultTech();
        if (knob == 0)
            t.macEnergyPerOp *= 1.5;
        else if (knob == 1)
            t.frequencyGhz = 1.0;
        else if (knob == 2)
            t.sramEnergyPerBitKb.slope *= 1.01;
        else
            t.d2dBitsPerCycle *= 2;
        EXPECT_NE(t.fingerprint(), defaultTech().fingerprint())
            << "knob " << knob;
    }
}

TEST(MappingCache, SharedCacheServesTwoTechModelsCorrectly)
{
    // Regression: two clients sharing one daemon cache but using
    // different technology models must each get the energies a fresh
    // single-tech run computes — never each other's.
    const Model model = makeAlexNet(224);
    const AcceleratorConfig cfg = caseStudyConfig();
    TechnologyModel hot = defaultTech();
    hot.dramEnergyPerBit *= 3; // DRAM-dominated designs diverge hard

    SearchOptions search;
    MappingCache shared;
    const auto viaSharedA =
        mapModel(model, cfg, defaultTech(), SearchEffort::Fast,
                 Objective::MinEnergy, search, &shared);
    const auto viaSharedB =
        mapModel(model, cfg, hot, SearchEffort::Fast,
                 Objective::MinEnergy, search, &shared);
    const auto freshA = mapModel(model, cfg, defaultTech(),
                                 SearchEffort::Fast);
    const auto freshB = mapModel(model, cfg, hot, SearchEffort::Fast);

    EXPECT_DOUBLE_EQ(viaSharedA.cost.energy.total(),
                     freshA.cost.energy.total());
    EXPECT_DOUBLE_EQ(viaSharedB.cost.energy.total(),
                     freshB.cost.energy.total());
    // The perturbed model must actually produce a different total, or
    // the aliasing this test guards against would be invisible.
    EXPECT_NE(viaSharedA.cost.energy.total(),
              viaSharedB.cost.energy.total());

    // And re-running under the shared cache hits for every layer.
    const auto warm =
        mapModel(model, cfg, hot, SearchEffort::Fast,
                 Objective::MinEnergy, search, &shared);
    EXPECT_DOUBLE_EQ(warm.cost.energy.total(),
                     freshB.cost.energy.total());
    EXPECT_GT(warm.stats.cacheHits, 0);
    EXPECT_EQ(warm.stats.cacheMisses, 0);
}

TEST(MappingCache, LruEvictionHonoursByteCapacity)
{
    MappingCache cache;
    // Room for 4 entries per shard.
    const int64_t cap =
        4 * MappingCache::kEntryBytes * MappingCache::kShards;
    cache.setCapacity(cap);

    const ConvLayer base = makeConv("t", 28, 28, 128, 64, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    auto keyFor = [&](int ho) {
        MappingCache::Key k = MappingCache::makeKey(
            base, cfg, defaultTech(), SearchEffort::Fast,
            Objective::MinEnergy);
        k.ho = ho; // synthetic distinct shapes
        return k;
    };

    int computed = 0;
    auto compute = [&]() -> std::optional<MappingChoice> {
        ++computed;
        return std::nullopt; // value content is irrelevant here
    };
    const int kMany = 4 * static_cast<int>(MappingCache::kShards) * 8;
    for (int i = 0; i < kMany; ++i)
        (void)cache.lookupOrCompute(keyFor(i), compute);
    EXPECT_EQ(computed, kMany);
    EXPECT_GT(cache.evictions(), 0);
    EXPECT_LE(cache.bytes(), cap);
    EXPECT_LE(cache.size(),
              static_cast<size_t>(cap / MappingCache::kEntryBytes));

    // An evicted key recomputes (same result), a resident one hits.
    bool hit = true;
    (void)cache.lookupOrCompute(keyFor(0), compute, &hit);
    EXPECT_FALSE(hit); // key 0 was the coldest; long evicted
    (void)cache.lookupOrCompute(keyFor(0), compute, &hit);
    EXPECT_TRUE(hit);
    EXPECT_GT(cache.hits(), 0);
    EXPECT_GT(cache.misses(), 0);
}

TEST(MappingCache, UnboundedByDefaultNeverEvicts)
{
    MappingCache cache;
    const ConvLayer base = makeConv("t", 28, 28, 128, 64, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    for (int i = 0; i < 200; ++i) {
        MappingCache::Key k = MappingCache::makeKey(
            base, cfg, defaultTech(), SearchEffort::Fast,
            Objective::MinEnergy);
        k.ho = i;
        (void)cache.lookupOrCompute(
            k, []() -> std::optional<MappingChoice> {
                return std::nullopt;
            });
    }
    EXPECT_EQ(cache.size(), 200u);
    EXPECT_EQ(cache.evictions(), 0);
}
