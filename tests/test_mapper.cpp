/**
 * @file
 * Tests for candidate enumeration, the per-layer mapping search and
 * the whole-model post-design flow, plus the access-accounting
 * invariants the search relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "c3p/access.hpp"
#include "mapper/candidates.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"

using namespace nnbaton;

TEST(Candidates, AllLegalAndCoverSpatialCombos)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto cands =
        enumerateCandidates(layer, cfg, SearchEffort::Exhaustive);
    ASSERT_FALSE(cands.empty());

    std::set<std::string> combos;
    for (const Mapping &m : cands) {
        EXPECT_EQ(checkMapping(layer, cfg, m), "") << m.toString();
        combos.insert(m.spatialLabel());
    }
    // All six spatial combinations appear for a wide, large layer.
    EXPECT_EQ(combos.size(), 6u) << "got only " << combos.size();
}

TEST(Candidates, PaperCaseDropsUnderfilledLanes)
{
    // Paper figure 11 removes (C,C) for conv layers with small output
    // channels: a 64-channel layer split 4 x 8 ways leaves 2 channels
    // per core against 8 lanes.
    const ConvLayer conv1 = makeConv("c", 224, 224, 64, 3, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto cands =
        enumerateCandidates(conv1, cfg, SearchEffort::Exhaustive);
    for (const Mapping &m : cands) {
        EXPECT_NE(m.spatialLabel(), "(C,C)") << m.toString();
    }
}

TEST(Candidates, FallbackWhenNothingFillsLanes)
{
    // A 4-channel layer cannot fill 8 lanes under any partition, so
    // the degraded candidates must be returned instead of nothing.
    const ConvLayer narrow = makeConv("n", 56, 56, 4, 64, 3, 3, 1);
    const auto cands = enumerateCandidates(narrow, caseStudyConfig(),
                                           SearchEffort::Exhaustive);
    EXPECT_FALSE(cands.empty());
}

TEST(Candidates, FastEffortIsSubsetSized)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto fast =
        enumerateCandidates(layer, cfg, SearchEffort::Fast);
    const auto full =
        enumerateCandidates(layer, cfg, SearchEffort::Exhaustive);
    EXPECT_FALSE(fast.empty());
    EXPECT_LT(fast.size(), full.size());
}

TEST(Candidates, FilteredEnumerationRespectsCombo)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const auto cands = enumerateCandidatesFor(
        layer, caseStudyConfig(), SearchEffort::Exhaustive,
        PackagePartition::Plane, ChipletPartition::Hybrid);
    ASSERT_FALSE(cands.empty());
    for (const Mapping &m : cands)
        EXPECT_EQ(m.spatialLabel(), "(P,H)");
}

TEST(AccessCounts, OutputTrafficIsExact)
{
    // Output-centric dataflow: every output crosses O-L2 and DRAM
    // exactly once at 8 bits, independent of the mapping.
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    for (const Mapping &m :
         enumerateCandidates(layer, cfg, SearchEffort::Fast)) {
        const auto a = analyzeMapping(layer, cfg, m);
        EXPECT_EQ(a.counts.dramWriteBits, layer.outputVolume() * 8);
        EXPECT_EQ(a.counts.ol2WriteBits, layer.outputVolume() * 8);
        EXPECT_EQ(a.counts.macOps, layer.macs());
    }
}

TEST(AccessCounts, DramReadsCoverColdTensors)
{
    // DRAM reads can never be below one cold pass over weights plus
    // the package's unique activation demand.
    const ConvLayer layer = makeConv("t", 28, 28, 512, 256, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    for (const Mapping &m :
         enumerateCandidates(layer, cfg, SearchEffort::Fast)) {
        const auto a = analyzeMapping(layer, cfg, m);
        EXPECT_GE(a.counts.dramReadBits(), layer.weightVolume() * 8)
            << m.toString();
    }
}

TEST(AccessCounts, RotationSharingSplitsDramAndD2d)
{
    // C-type package split shares activations: the ring must carry
    // (Np-1) copies of the A-L2 fill stream.
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel;
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    const auto a = analyzeMapping(layer, cfg, m);
    EXPECT_EQ(a.counts.d2dBits % 3, 0); // (Np-1) = 3 copies
    EXPECT_GT(a.counts.d2dBits, 0);
    // Same mapping on a single chiplet has no D2D at all.
    AcceleratorConfig one = cfg;
    one.package.chiplets = 1;
    Mapping m1 = m;
    m1.chipletTile.co = 256;
    const auto a1 = analyzeMapping(layer, one, m1);
    EXPECT_EQ(a1.counts.d2dBits, 0);
}

TEST(SearchLayer, FindsMappingForAllRepresentativeLayers)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(224);
    for (const ConvLayer *l :
         {&reps.activationIntensive, &reps.weightIntensive,
          &reps.largeKernel, &reps.pointWise, &reps.common}) {
        const auto best = searchLayer(*l, cfg, defaultTech());
        ASSERT_TRUE(best.has_value()) << l->name;
        EXPECT_GT(best->energy.total(), 0.0);
        EXPECT_GT(best->runtime.cycles, 0);
    }
}

TEST(SearchLayer, BestBeatsEveryFastCandidate)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto best = searchLayer(layer, cfg, defaultTech());
    ASSERT_TRUE(best.has_value());
    for (const Mapping &m :
         enumerateCandidates(layer, cfg, SearchEffort::Fast)) {
        const auto c = evaluateMapping(layer, cfg, defaultTech(), m);
        EXPECT_LE(best->energy.total(), c.energy.total() + 1e-6)
            << m.toString();
    }
}

TEST(SearchLayer, EdpObjectiveNeverWorseEdp)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    const auto e = searchLayer(layer, cfg, defaultTech(),
                               SearchEffort::Exhaustive,
                               Objective::MinEnergy);
    const auto d = searchLayer(layer, cfg, defaultTech(),
                               SearchEffort::Exhaustive,
                               Objective::MinEdp);
    ASSERT_TRUE(e && d);
    EXPECT_LE(d->edp(), e->edp() + 1e-6);
    EXPECT_LE(e->energy.total(), d->energy.total() + 1e-6);
}

TEST(SearchLayerWithSpatial, RespectsRestriction)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const auto r = searchLayerWithSpatial(
        layer, caseStudyConfig(), defaultTech(),
        PackagePartition::Channel, ChipletPartition::Plane);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->mapping.spatialLabel(), "(C,P)");
}

TEST(MapModel, CoversAllLayersAndDedupsShapes)
{
    const Model model = makeResNet50(224);
    const auto r = mapModel(model, caseStudyConfig(), defaultTech(),
                            SearchEffort::Fast);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.choices.size(), model.layers().size());
    EXPECT_EQ(r.cost.layers.size(), model.layers().size());
    EXPECT_GT(r.cost.energy.total(), 0.0);
    EXPECT_GT(r.cost.cycles, 0);
    // Identical repeated blocks must produce identical choices.
    const auto &l = model.layers();
    for (size_t i = 0; i + 3 < l.size(); ++i) {
        for (size_t j = i + 1; j < l.size(); ++j) {
            if (l[i].ho == l[j].ho && l[i].wo == l[j].wo &&
                l[i].co == l[j].co && l[i].ci == l[j].ci &&
                l[i].kh == l[j].kh && l[i].stride == l[j].stride) {
                EXPECT_EQ(r.cost.layers[i].energy.total(),
                          r.cost.layers[j].energy.total());
            }
        }
    }
}

TEST(MapModel, LayerwiseStrategiesDiffer)
{
    // Paper section VI-A.1: NN-Baton picks distinct mapping
    // strategies layer-wise; a model with diverse layers must not end
    // up with a single spatial combo everywhere.
    const Model model = makeVgg16(224);
    const auto r = mapModel(model, caseStudyConfig(), defaultTech(),
                            SearchEffort::Fast);
    std::set<std::string> combos;
    for (const auto &c : r.choices)
        combos.insert(c.mapping.spatialLabel());
    EXPECT_GT(combos.size(), 1u);
}

TEST(AnalysisOptions, DisablingMechanismsNeverReducesEnergy)
{
    // Ablation invariants: each dataflow mechanism can only help (or
    // be neutral) for the mapping chosen with everything enabled.
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layers[] = {
        makeConv("wide", 28, 28, 512, 256, 3, 3, 1),
        makeConv("planar", 112, 112, 64, 32, 3, 3, 1),
    };
    for (const ConvLayer &layer : layers) {
        const auto best = searchLayer(layer, cfg, defaultTech());
        ASSERT_TRUE(best.has_value());
        const double full = best->energy.total();
        for (int knob = 0; knob < 3; ++knob) {
            AnalysisOptions o;
            if (knob == 0)
                o.rotationSharing = false;
            else if (knob == 1)
                o.wl1Pooling = false;
            else
                o.al2Multicast = false;
            const auto ablated = evaluateMapping(
                layer, cfg, defaultTech(), best->mapping, o);
            EXPECT_GE(ablated.energy.total(), full - 1e-6)
                << layer.name << " knob " << knob;
        }
    }
}

TEST(AnalysisOptions, RotationOffMovesTrafficToDram)
{
    const ConvLayer layer = makeConv("t", 56, 56, 256, 128, 3, 3, 1);
    const AcceleratorConfig cfg = caseStudyConfig();
    Mapping m;
    m.pkgSpatial = PackagePartition::Channel; // activations shared
    m.chipSpatial = ChipletPartition::Channel;
    m.chipChannelWays = 8;
    m.chipletTile = {16, 16, 64};
    m.hoC = 8;
    m.woC = 8;
    const auto with = analyzeMapping(layer, cfg, m);
    AnalysisOptions off;
    off.rotationSharing = false;
    const auto without = analyzeMapping(layer, cfg, m, off);
    EXPECT_GT(with.counts.d2dBits, 0);
    EXPECT_EQ(without.counts.d2dBits, 0);
    EXPECT_GT(without.counts.dramReadBits(), with.counts.dramReadBits());
}

TEST(MapModel, MobileNetV2DepthwiseFeasible)
{
    // The depthwise extension must map end to end.
    const Model model = makeMobileNetV2(224);
    const auto r = mapModel(model, caseStudyConfig(), defaultTech(),
                            SearchEffort::Fast);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.choices.size(), model.layers().size());
}

TEST(SearchLayer, DepthwiseActivationFootprintFollowsLanes)
{
    // For a depthwise layer the activation traffic tracks the output
    // channels; a sanity check that the analysis wires OC relevance.
    const ConvLayer dw = makeDepthwiseConv("dw", 56, 56, 144, 3, 1);
    const auto best =
        searchLayer(dw, caseStudyConfig(), defaultTech());
    ASSERT_TRUE(best.has_value());
    // Weight volume is tiny (co * 9), so weight DRAM must be small.
    EXPECT_LE(best->analysis.counts.dramReadBits(),
              (dw.inputVolume() * 16 + dw.weightVolume() * 64) * 8);
    EXPECT_EQ(best->analysis.counts.macOps, dw.macs());
}
