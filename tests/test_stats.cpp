/**
 * @file
 * Tests for the serving-grade metrics additions: histogram min/max
 * tracking, quantile estimation from the log2 buckets (exact cases
 * plus a property check against a sorted-vector oracle), the JSON
 * snapshot round-trip used by `nn-baton stats`, and a format lint of
 * the Prometheus text exposition.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"

using namespace nnbaton;

namespace {

/** Snapshot a standalone histogram (no registry involvement). */
obs::HistogramSnapshot
snapshotOf(const obs::Histogram &h, const std::string &name = "h")
{
    obs::HistogramSnapshot s;
    s.name = name;
    s.count = h.count();
    s.sum = h.sum();
    s.minValue = h.minValue();
    s.maxValue = h.maxValue();
    for (int b = 0; b < obs::Histogram::kBuckets; ++b)
        s.buckets[b] = h.bucketCount(b);
    return s;
}

/** Deterministic LCG so the property test needs no <random>. */
uint64_t
nextRand(uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
}

} // namespace

TEST(Stats, HistogramTracksMinAndMax)
{
    obs::Histogram h;
    EXPECT_EQ(h.minValue(), 0); // empty reads as 0, not INT64_MAX
    EXPECT_EQ(h.maxValue(), 0);
    h.record(42);
    EXPECT_EQ(h.minValue(), 42);
    EXPECT_EQ(h.maxValue(), 42);
    h.record(7);
    h.record(1000);
    EXPECT_EQ(h.minValue(), 7);
    EXPECT_EQ(h.maxValue(), 1000);
    h.reset();
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.minValue(), 0);
    EXPECT_EQ(h.maxValue(), 0);
}

TEST(Stats, QuantileEmptyAndEdges)
{
    obs::Histogram h;
    EXPECT_DOUBLE_EQ(snapshotOf(h).quantile(0.5), 0.0);
    h.record(3);
    h.record(900);
    const obs::HistogramSnapshot s = snapshotOf(h);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 3.0);   // q<=0 is the true min
    EXPECT_DOUBLE_EQ(s.quantile(-1.0), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 900.0); // q>=1 is the true max
    EXPECT_DOUBLE_EQ(s.quantile(2.0), 900.0);
}

TEST(Stats, QuantileExactWhenBucketHoldsOneDistinctValue)
{
    // All samples equal: the min/max clamp collapses the containing
    // bucket to the exact value for every q.
    obs::Histogram h;
    for (int i = 0; i < 10; ++i)
        h.record(5);
    const obs::HistogramSnapshot s = snapshotOf(h);
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(s.quantile(q), 5.0) << q;
}

TEST(Stats, QuantileExactWhenAllSamplesEqualAndNegative)
{
    // Negative recordings all land in bucket 0, whose nominal bounds
    // are [0, 0]; before both bounds were clamped into
    // [minValue, maxValue] a min==max histogram of -5s interpolated
    // between 0 (the unclamped nominal lower bound) and -5 instead of
    // collapsing to the exact value.
    obs::Histogram h;
    for (int i = 0; i < 10; ++i)
        h.record(-5);
    const obs::HistogramSnapshot s = snapshotOf(h);
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(s.quantile(q), -5.0) << q;
}

TEST(Stats, QuantileNegativeRangeStaysWithinObservedBounds)
{
    // Mixed negative samples share bucket 0; every estimate must stay
    // inside the observed [min, max] band.
    obs::Histogram h;
    h.record(-20);
    h.record(-10);
    h.record(-2);
    const obs::HistogramSnapshot s = snapshotOf(h);
    for (double q : {0.1, 0.5, 0.9}) {
        EXPECT_GE(s.quantile(q), -20.0) << q;
        EXPECT_LE(s.quantile(q), -2.0) << q;
    }
}

TEST(Stats, QuantileStaysWithinClampedBucketBounds)
{
    // Two values in different buckets: low quantiles resolve inside
    // the low bucket, high ones inside the high bucket with its upper
    // bound clamped to the observed max.
    obs::Histogram h;
    h.record(4);   // bucket [4,7]
    h.record(100); // bucket [64,127], clamped to [64,100]
    const obs::HistogramSnapshot s = snapshotOf(h);
    EXPECT_GE(s.quantile(0.25), 4.0);
    EXPECT_LE(s.quantile(0.25), 7.0);
    EXPECT_GE(s.quantile(0.75), 64.0);
    EXPECT_LE(s.quantile(0.75), 100.0);
}

TEST(Stats, QuantileInterpolatesInsideBucket)
{
    // Four samples in bucket [8,15] with min 8 and max 15: the
    // interpolation walks lo..hi linearly in rank.
    obs::Histogram h;
    h.record(8);
    h.record(10);
    h.record(12);
    h.record(15);
    const obs::HistogramSnapshot s = snapshotOf(h);
    // rank 2 of 4 -> frac 0.5 inside [8,15].
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 8.0 + 0.5 * 7.0);
    // The estimate error stays within the bucket.
    EXPECT_GE(s.quantile(0.9), 8.0);
    EXPECT_LE(s.quantile(0.9), 15.0);
}

TEST(Stats, QuantilePropertyAgainstSortedOracle)
{
    // For any sample set and q, the estimate must land inside the
    // bucket of the true (ceil-rank) order statistic, clamped to the
    // observed range — the documented error bound.
    uint64_t rng = 12345;
    obs::Histogram h;
    std::vector<int64_t> values;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = static_cast<int64_t>(nextRand(rng) % 10000);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    const obs::HistogramSnapshot s = snapshotOf(h);
    ASSERT_EQ(s.count, 1000);
    ASSERT_EQ(s.minValue, values.front());
    ASSERT_EQ(s.maxValue, values.back());

    for (double q : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const size_t rank = static_cast<size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const int64_t oracle = values[rank - 1];
        const int b = obs::Histogram::bucketIndex(oracle);
        const double lo = static_cast<double>(std::max(
            obs::Histogram::bucketLowerBound(b), s.minValue));
        const double hi = static_cast<double>(std::min(
            obs::Histogram::bucketUpperBound(b), s.maxValue));
        const double est = s.quantile(q);
        EXPECT_GE(est, lo) << "q=" << q << " oracle=" << oracle;
        EXPECT_LE(est, hi) << "q=" << q << " oracle=" << oracle;
    }
}

TEST(Stats, FormatMetricsShowsMinMaxAndQuantiles)
{
    obs::MetricsSnapshot snap;
    obs::Histogram h;
    h.record(3);
    h.record(80);
    snap.histograms.push_back(snapshotOf(h, "test.fmt_us"));
    const std::string table = obs::formatMetrics(snap);
    EXPECT_NE(table.find("test.fmt_us"), std::string::npos);
    EXPECT_NE(table.find("min 3"), std::string::npos);
    EXPECT_NE(table.find("max 80"), std::string::npos);
    EXPECT_NE(table.find("p50"), std::string::npos);
    EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST(Stats, JsonSnapshotRoundTripsThroughParser)
{
    // The scrape path: writeMetricsJson -> parseJson ->
    // metricsSnapshotFromJson must reproduce the snapshot, so
    // `nn-baton stats --format table|prom` renders from equal data.
    obs::MetricsSnapshot snap;
    snap.counters.emplace_back("test.rt.counter", 42);
    snap.gauges.emplace_back("test.rt.gauge", 1.5);
    obs::Histogram h;
    h.record(1);
    h.record(9);
    h.record(9);
    h.record(1000);
    snap.histograms.push_back(snapshotOf(h, "test.rt_us"));

    std::ostringstream ss;
    JsonWriter j(ss);
    obs::writeMetricsJson(j, snap);
    const JsonParseResult parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;

    const StatusOr<obs::MetricsSnapshot> roundOr =
        obs::metricsSnapshotFromJson(parsed.value);
    ASSERT_TRUE(roundOr.ok()) << roundOr.status().toString();
    const obs::MetricsSnapshot &round = roundOr.value();

    ASSERT_EQ(round.counters.size(), 1u);
    EXPECT_EQ(round.counters[0].first, "test.rt.counter");
    EXPECT_EQ(round.counters[0].second, 42);
    ASSERT_EQ(round.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(round.gauges[0].second, 1.5);
    ASSERT_EQ(round.histograms.size(), 1u);
    const obs::HistogramSnapshot &orig = snap.histograms[0];
    const obs::HistogramSnapshot &back = round.histograms[0];
    EXPECT_EQ(back.name, orig.name);
    EXPECT_EQ(back.count, orig.count);
    EXPECT_EQ(back.sum, orig.sum);
    EXPECT_EQ(back.minValue, orig.minValue);
    EXPECT_EQ(back.maxValue, orig.maxValue);
    for (int b = 0; b < obs::Histogram::kBuckets; ++b)
        EXPECT_EQ(back.buckets[b], orig.buckets[b]) << b;
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(back.quantile(q), orig.quantile(q)) << q;
}

TEST(Stats, JsonSnapshotRejectsDrift)
{
    const JsonParseResult notObject = parseJson("[1,2]");
    ASSERT_TRUE(notObject.ok());
    EXPECT_FALSE(obs::metricsSnapshotFromJson(notObject.value).ok());

    const JsonParseResult missing =
        parseJson("{\"counters\":{},\"gauges\":{}}");
    ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(obs::metricsSnapshotFromJson(missing.value).ok());

    const JsonParseResult badHist = parseJson(
        "{\"counters\":{},\"gauges\":{},"
        "\"histograms\":{\"h\":{\"count\":1}}}");
    ASSERT_TRUE(badHist.ok());
    EXPECT_FALSE(obs::metricsSnapshotFromJson(badHist.value).ok());
}

TEST(Stats, PrometheusExpositionLints)
{
    obs::MetricsSnapshot snap;
    snap.counters.emplace_back("serve.requests", 7);
    snap.gauges.emplace_back("dse.progress.eta_seconds", 12.5);
    obs::Histogram h;
    h.record(3);
    h.record(3);
    h.record(90);
    h.record(5000);
    snap.histograms.push_back(snapshotOf(h, "serve.request_us"));

    std::ostringstream ss;
    obs::writePrometheus(ss, snap);
    const std::string text = ss.str();

    // Line-by-line lint of the text exposition: every sample line is
    // `name[{labels}] value` with a legal metric name, every family
    // has a preceding # TYPE, bucket series are cumulative and end in
    // +Inf == count.
    std::istringstream lines(text);
    std::string line;
    std::vector<std::string> typedFamilies;
    int64_t lastCumulative = -1;
    bool sawInf = false, sawSum = false, sawCount = false;
    bool sawP50 = false, sawP90 = false, sawP99 = false;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line.rfind("# TYPE ", 0) == 0) {
            const size_t sp = line.find(' ', 7);
            ASSERT_NE(sp, std::string::npos) << line;
            typedFamilies.push_back(line.substr(7, sp - 7));
            const std::string kind = line.substr(sp + 1);
            EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                        kind == "histogram")
                << line;
            continue;
        }
        ASSERT_NE(line[0], '#') << "unknown comment: " << line;
        // Split "name{...} value" / "name value".
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        std::string series = line.substr(0, space);
        const std::string value = line.substr(space + 1);
        EXPECT_FALSE(value.empty()) << line;
        (void)std::stod(value); // throws (fails the test) if not numeric
        std::string labels;
        const size_t brace = series.find('{');
        if (brace != std::string::npos) {
            ASSERT_EQ(series.back(), '}') << line;
            labels = series.substr(brace);
            series = series.substr(0, brace);
        }
        // Legal metric name, prefixed with the exporter namespace.
        EXPECT_EQ(series.rfind("nnbaton_", 0), 0u) << line;
        for (char c : series) {
            EXPECT_TRUE((c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':')
                << line;
        }
        // Every series belongs to some # TYPE'd family seen before it.
        bool typed = false;
        for (const std::string &fam : typedFamilies) {
            if (series == fam || series == fam + "_bucket" ||
                series == fam + "_sum" || series == fam + "_count")
                typed = true;
        }
        EXPECT_TRUE(typed) << "untyped series: " << line;

        if (series == "nnbaton_serve_request_us_bucket") {
            const int64_t cum = std::stoll(value);
            EXPECT_GE(cum, lastCumulative) << line;
            lastCumulative = cum;
            if (labels == "{le=\"+Inf\"}") {
                sawInf = true;
                EXPECT_EQ(cum, 4);
            }
        }
        if (series == "nnbaton_serve_request_us_sum")
            sawSum = true;
        if (series == "nnbaton_serve_request_us_count") {
            sawCount = true;
            EXPECT_EQ(std::stoll(value), 4);
        }
        if (series == "nnbaton_serve_request_us_p50")
            sawP50 = true;
        if (series == "nnbaton_serve_request_us_p90")
            sawP90 = true;
        if (series == "nnbaton_serve_request_us_p99")
            sawP99 = true;
    }
    EXPECT_TRUE(sawInf);
    EXPECT_TRUE(sawSum);
    EXPECT_TRUE(sawCount);
    EXPECT_TRUE(sawP50);
    EXPECT_TRUE(sawP90);
    EXPECT_TRUE(sawP99);
    EXPECT_NE(std::find(typedFamilies.begin(), typedFamilies.end(),
                        "nnbaton_serve_requests_total"),
              typedFamilies.end());
}
