/**
 * @file
 * Tests for the hardware configuration and the chiplet area model.
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include "arch/area.hpp"
#include "arch/config.hpp"
#include "common/util.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

TEST(AcceleratorConfig, CaseStudyMatchesPaper)
{
    // Section VI-A.1: 4 chiplets, 8 cores, 8 lanes of 8-size vector
    // MAC, 1.5KB O-L1, 800B A-L1, 18KB W-L1 and 64KB A-L2.
    const AcceleratorConfig cfg = caseStudyConfig();
    EXPECT_EQ(cfg.package.chiplets, 4);
    EXPECT_EQ(cfg.chiplet.cores, 8);
    EXPECT_EQ(cfg.core.lanes, 8);
    EXPECT_EQ(cfg.core.vectorSize, 8);
    EXPECT_EQ(cfg.core.ol1Bytes, 1536);
    EXPECT_EQ(cfg.core.al1Bytes, 800);
    EXPECT_EQ(cfg.core.wl1Bytes, 18_KB);
    EXPECT_EQ(cfg.chiplet.al2Bytes, 64_KB);
    EXPECT_EQ(cfg.totalMacs(), 2048);
    EXPECT_EQ(cfg.macsPerChiplet(), 512);
    EXPECT_EQ(cfg.computeId(), "4-8-8-8");
}

TEST(CoreConfig, MaxCoreTilePlane)
{
    CoreConfig c;
    c.lanes = 8;
    c.ol1Bytes = 1536;
    // 1536B * 8 bits / (24-bit psums * 8 lanes) = 64 outputs.
    EXPECT_EQ(c.maxCoreTilePlane(24), 64);
    c.ol1Bytes = 48;
    EXPECT_EQ(c.maxCoreTilePlane(24), 2);
}

TEST(AcceleratorConfig, ToStringContainsId)
{
    const std::string s = caseStudyConfig().toString();
    EXPECT_NE(s.find("4-8-8-8"), std::string::npos);
    EXPECT_NE(s.find("2048"), std::string::npos);
}

TEST(ChipletArea, ComponentsSumToTotal)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const AreaBreakdown a =
        chipletArea(cfg, defaultTech(), defaultOl2Bytes(cfg));
    EXPECT_NEAR(a.total(),
                a.macs + a.sram + a.rf + a.grsPhy + a.ddrPhy, 1e-12);
    EXPECT_GT(a.macs, 0.0);
    EXPECT_GT(a.sram, 0.0);
    EXPECT_GT(a.rf, 0.0);
    EXPECT_FALSE(a.toString().empty());
}

TEST(ChipletArea, PhyMacrosMatchTech)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &t = defaultTech();
    const AreaBreakdown a = chipletArea(cfg, t, 16_KB);
    EXPECT_DOUBLE_EQ(a.grsPhy, t.grsPhyAreaMm2);
    EXPECT_DOUBLE_EQ(a.ddrPhy, t.ddrPhyAreaMm2);
}

TEST(ChipletArea, MacAreaScalesWithMacsPerChiplet)
{
    AcceleratorConfig cfg = caseStudyConfig();
    const AreaBreakdown a4 =
        chipletArea(cfg, defaultTech(), 16_KB);
    cfg.package.chiplets = 1; // same per-chiplet resources
    const AreaBreakdown a1 =
        chipletArea(cfg, defaultTech(), 16_KB);
    // MACs per chiplet unchanged -> identical chiplet area.
    EXPECT_DOUBLE_EQ(a4.macs, a1.macs);
}

TEST(ChipletArea, DoubleBufferedL1Counted)
{
    // A-L1/W-L1 are double SRAMs: doubling the core count must add
    // exactly 2 * (al1 + wl1) SRAM macros per extra core.
    AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &t = defaultTech();
    const double sram8 = chipletArea(cfg, t, 16_KB).sram;
    cfg.chiplet.cores = 9;
    const double sram9 = chipletArea(cfg, t, 16_KB).sram;
    const double delta = 2 * t.sramAreaMm2(cfg.core.al1Bytes) +
                         2 * t.sramAreaMm2(cfg.core.wl1Bytes);
    EXPECT_NEAR(sram9 - sram8, delta, 1e-9);
}

TEST(ChipletArea, CaseStudyFitsTwoMm2)
{
    // Figure 14: the 4-chiplet 512-MAC chiplet meets the 2 mm^2
    // budget (with the case-study buffer sizes).
    const AcceleratorConfig cfg = caseStudyConfig();
    const AreaBreakdown a =
        chipletArea(cfg, defaultTech(), defaultOl2Bytes(cfg));
    EXPECT_LT(a.total(), 2.0);
}

TEST(AcceleratorConfigDeath, RejectsBadShapes)
{
    AcceleratorConfig cfg = caseStudyConfig();
    cfg.package.chiplets = 16; // beyond the 1-8 ring range
    expectStatusThrow([&] { cfg.validate(); }, "ring");
    EXPECT_EQ(cfg.check().code(), StatusCode::InvalidArgument);
    cfg = caseStudyConfig();
    cfg.core.lanes = 0;
    expectStatusThrow([&] { cfg.validate(); }, "positive");
    cfg = caseStudyConfig();
    cfg.core.wl1Bytes = 0;
    expectStatusThrow([&] { cfg.validate(); }, "buffer");
    EXPECT_TRUE(caseStudyConfig().check().ok());
}

TEST(DefaultOl2Bytes, PositiveAndScalesWithCores)
{
    AcceleratorConfig cfg = caseStudyConfig();
    const int64_t b8 = defaultOl2Bytes(cfg);
    cfg.chiplet.cores = 16;
    const int64_t b16 = defaultOl2Bytes(cfg);
    EXPECT_GT(b8, 0);
    EXPECT_EQ(b16, 2 * b8);
}
