/**
 * @file
 * Tests for the inter-layer on-chip forwarding extension.
 */

#include <gtest/gtest.h>

#include "expect_status.hpp"

#include "baton/forwarding.hpp"

using namespace nnbaton;

namespace {

PostDesignReport
runPost(const Model &m)
{
    PostDesignFlow flow(caseStudyConfig(), defaultTech(),
                        SearchEffort::Fast);
    return flow.run(m);
}

} // namespace

TEST(Forwarding, SmallSequentialModelForwardsEverything)
{
    Model m("seq", 64);
    // 16x16x64 outputs = 16 KB, far below 4 x 64 KB A-L2.
    m.addLayer(makeConv("a", 16, 16, 64, 16, 3, 3, 1));
    m.addLayer(makeConv("b", 16, 16, 64, 64, 3, 3, 1));
    m.addLayer(makeConv("c", 16, 16, 128, 64, 1, 1, 1));
    const PostDesignReport report = runPost(m);
    const ForwardingReport f = analyzeForwarding(m, report);
    ASSERT_EQ(f.boundaries.size(), 2u);
    EXPECT_TRUE(f.boundaries[0].forwardable);
    EXPECT_TRUE(f.boundaries[1].forwardable);
    EXPECT_EQ(f.forwardedCount(), 2);
    EXPECT_LT(f.forwardedEnergyPj, f.baselineEnergyPj);
    EXPECT_GT(f.savings(), 0.0);
    EXPECT_LT(f.savings(), 1.0);
}

TEST(Forwarding, OversizedTensorIsNotForwardable)
{
    Model m("big", 512);
    // 256x256x64 outputs = 4 MB >> 256 KB on-chip A-L2.
    m.addLayer(makeConv("a", 256, 256, 64, 3, 3, 3, 1));
    m.addLayer(makeConv("b", 256, 256, 64, 64, 3, 3, 1));
    const PostDesignReport report = runPost(m);
    const ForwardingReport f = analyzeForwarding(m, report);
    ASSERT_EQ(f.boundaries.size(), 1u);
    EXPECT_FALSE(f.boundaries[0].forwardable);
    EXPECT_DOUBLE_EQ(f.forwardedEnergyPj, f.baselineEnergyPj);
    EXPECT_DOUBLE_EQ(f.savings(), 0.0);
}

TEST(Forwarding, ChannelMismatchIsNotSequential)
{
    Model m("branch", 64);
    m.addLayer(makeConv("a", 16, 16, 64, 16, 3, 3, 1));
    // Consumer reads 256 channels: not the producer's output alone
    // (e.g. a concatenated residual input).
    m.addLayer(makeConv("b", 16, 16, 64, 256, 1, 1, 1));
    const PostDesignReport report = runPost(m);
    const ForwardingReport f = analyzeForwarding(m, report);
    ASSERT_EQ(f.boundaries.size(), 1u);
    EXPECT_FALSE(f.boundaries[0].forwardable);
}

TEST(Forwarding, SavingsBoundedByDramShare)
{
    // Forwarding can never save more than the model's total DRAM
    // energy share.
    Model m("seq", 64);
    m.addLayer(makeConv("a", 16, 16, 64, 16, 3, 3, 1));
    m.addLayer(makeConv("b", 16, 16, 64, 64, 3, 3, 1));
    const PostDesignReport report = runPost(m);
    const ForwardingReport f = analyzeForwarding(m, report);
    EXPECT_LE(f.baselineEnergyPj - f.forwardedEnergyPj,
              report.cost.energy.dram + 1e-6);
}

TEST(Forwarding, DarkNetForwardsMidLayersAt224)
{
    // DarkNet-19 at 224 is sequential; its mid/late tensors fit the
    // 256 KB package A-L2 while the early planes do not.
    const Model m = makeDarkNet19(224);
    const PostDesignReport report = runPost(m);
    const ForwardingReport f = analyzeForwarding(m, report);
    EXPECT_GT(f.forwardedCount(), 4);
    EXPECT_LT(f.forwardedCount(),
              static_cast<int>(f.boundaries.size()));
    EXPECT_GT(f.savings(), 0.0);
}

TEST(ForwardingDeath, MismatchedReportIsFatal)
{
    Model a("a", 64);
    a.addLayer(makeConv("x", 16, 16, 64, 16, 3, 3, 1));
    Model b("b", 64);
    b.addLayer(makeConv("x", 16, 16, 64, 16, 3, 3, 1));
    b.addLayer(makeConv("y", 16, 16, 64, 64, 3, 3, 1));
    const PostDesignReport report = runPost(a);
    expectStatusThrow([&] { analyzeForwarding(b, report); },
                      "does not match");
}
