/**
 * @file
 * The incremental C3P evaluator (c3p/incremental.hpp) against the
 * full reference path: seeded random-walk fuzz over single-field
 * mapping diffs, enumeration-stream equality with a nonzero delta-hit
 * rate, the cross-check mode, the fast buffer scan against the
 * quadratic reference, and the arena candidate blocks against the
 * vector enumeration they replaced.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "baton/baton.hpp"
#include "c3p/incremental.hpp"
#include "mapper/candidates.hpp"
#include "mapper/search.hpp"
#include "verif/random_mapping.hpp"

using namespace nnbaton;

namespace {

std::mt19937 &
rng(uint32_t seed)
{
    static std::mt19937 gen;
    gen.seed(seed);
    return gen;
}

template <typename T>
T
pick(std::mt19937 &g, std::initializer_list<T> options)
{
    std::uniform_int_distribution<size_t> d(0, options.size() - 1);
    return *(options.begin() + d(g));
}

/** Random layer in the shape ranges the case-study config can run. */
ConvLayer
randomLayer(std::mt19937 &g)
{
    const int ho = pick(g, {7, 14, 28, 56});
    const int wo = pick(g, {7, 14, 28, 56});
    const int co = pick(g, {16, 64, 256, 512});
    const int ci = pick(g, {16, 64, 256});
    const int k = pick(g, {1, 3, 5});
    const int s = pick(g, {1, 2});
    return makeConv("fuzz", ho, wo, co, ci, k, k, s);
}

/** All comparable fields of one evaluation, bit-exact. */
void
expectChoicesIdentical(const MappingChoice &inc,
                       const MappingChoice &full,
                       const std::string &context)
{
    const AccessCounts &a = inc.analysis.counts;
    const AccessCounts &b = full.analysis.counts;
    EXPECT_EQ(a.dramReadActBits, b.dramReadActBits) << context;
    EXPECT_EQ(a.dramReadWeightBits, b.dramReadWeightBits) << context;
    EXPECT_EQ(a.dramWriteBits, b.dramWriteBits) << context;
    EXPECT_EQ(a.d2dBits, b.d2dBits) << context;
    EXPECT_EQ(a.nocBits, b.nocBits) << context;
    EXPECT_EQ(a.al2ReadBits, b.al2ReadBits) << context;
    EXPECT_EQ(a.al2WriteBits, b.al2WriteBits) << context;
    EXPECT_EQ(a.al1ReadBits, b.al1ReadBits) << context;
    EXPECT_EQ(a.al1WriteBits, b.al1WriteBits) << context;
    EXPECT_EQ(a.wl1ReadBits, b.wl1ReadBits) << context;
    EXPECT_EQ(a.wl1WriteBits, b.wl1WriteBits) << context;
    EXPECT_EQ(a.ol1RmwBits, b.ol1RmwBits) << context;
    EXPECT_EQ(a.ol1ReadBits, b.ol1ReadBits) << context;
    EXPECT_EQ(a.ol2ReadBits, b.ol2ReadBits) << context;
    EXPECT_EQ(a.ol2WriteBits, b.ol2WriteBits) << context;
    EXPECT_EQ(a.macOps, b.macOps) << context;
    EXPECT_EQ(a.vectorOps, b.vectorOps) << context;
    EXPECT_EQ(a.ol2Bytes, b.ol2Bytes) << context;
    EXPECT_EQ(inc.analysis.wl1.fillBytes, full.analysis.wl1.fillBytes)
        << context;
    EXPECT_EQ(inc.analysis.al1.fillBytes, full.analysis.al1.fillBytes)
        << context;
    EXPECT_EQ(inc.analysis.al2.fillBytes, full.analysis.al2.fillBytes)
        << context;
    // Energy and runtime are pure functions of the counts/analysis,
    // so bit-equality must carry through to the scores the search
    // ranks by.
    EXPECT_EQ(inc.energy.total(), full.energy.total()) << context;
    EXPECT_EQ(inc.runtime.cycles, full.runtime.cycles) << context;
    EXPECT_EQ(inc.edp(), full.edp()) << context;
}

/** Mutate exactly one mapping field (the diffs the analyzer covers —
 *  and, past legality walls, plenty it must fall back on). */
Mapping
mutateOneField(std::mt19937 &g, const Mapping &m, const ConvLayer &layer)
{
    Mapping out = m;
    switch (g() % 8) {
      case 0:
        out.chipletTile.ho = std::max(
            1, pick(g, {0, 1}) ? m.chipletTile.ho * 2
                               : m.chipletTile.ho / 2);
        break;
      case 1:
        out.chipletTile.wo = std::max(
            1, pick(g, {0, 1}) ? m.chipletTile.wo * 2
                               : m.chipletTile.wo / 2);
        break;
      case 2:
        out.chipletTile.co = std::max(
            1, pick(g, {0, 1}) ? m.chipletTile.co * 2
                               : m.chipletTile.co / 2);
        break;
      case 3:
        out.pkgOrder = m.pkgOrder == LoopOrder::ChannelPriority
                           ? LoopOrder::PlanePriority
                           : LoopOrder::ChannelPriority;
        break;
      case 4:
        out.chipOrder = m.chipOrder == LoopOrder::ChannelPriority
                            ? LoopOrder::PlanePriority
                            : LoopOrder::ChannelPriority;
        break;
      case 5:
        out.hoC = std::max(1, pick(g, {0, 1}) ? m.hoC * 2 : m.hoC / 2);
        break;
      case 6:
        out.woC = std::max(1, pick(g, {0, 1}) ? m.woC * 2 : m.woC / 2);
        break;
      default: {
        PlanarSplit flip{m.chipSplit.fw, m.chipSplit.fh};
        out.chipSplit = flip;
        break;
      }
    }
    (void)layer;
    return out;
}

} // namespace

TEST(IncrementalDelta, ClassifiesStructuredDiffs)
{
    Mapping base;
    base.chipletTile = {28, 28, 64};

    EXPECT_STREQ(toString(classifyMappingDelta(base, base)),
                 "loop-order"); // identical: every term reusable

    Mapping tile = base;
    tile.chipletTile.co = 128;
    EXPECT_EQ(classifyMappingDelta(base, tile),
              MappingDelta::TileFactor);

    Mapping order = base;
    order.pkgOrder = LoopOrder::PlanePriority;
    order.chipOrder = LoopOrder::PlanePriority;
    EXPECT_EQ(classifyMappingDelta(base, order),
              MappingDelta::LoopOrder);

    Mapping wrap = tile;
    wrap.chipOrder = LoopOrder::PlanePriority;
    EXPECT_EQ(classifyMappingDelta(base, wrap),
              MappingDelta::TileAndOrder);

    Mapping spatial = base;
    spatial.chipSplit = {2, 2};
    EXPECT_EQ(classifyMappingDelta(base, spatial),
              MappingDelta::SpatialSplit);

    // Two tile factors, or a spatial change on top of anything else,
    // is wider than the covered set.
    Mapping wide = tile;
    wide.chipletTile.ho = 14;
    EXPECT_EQ(classifyMappingDelta(base, wide),
              MappingDelta::Uncovered);
    Mapping mixed = spatial;
    mixed.chipletTile.co = 128;
    EXPECT_EQ(classifyMappingDelta(base, mixed),
              MappingDelta::Uncovered);
}

TEST(Incremental, EnumerationStreamMatchesFullEvaluation)
{
    // The exact stream the exhaustive search feeds the analyzer:
    // every candidate of a case-study layer in ascending-ordinal
    // order.  Results must be bit-identical and mostly delta-served.
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const RepresentativeLayers rep = representativeLayers(224);
    for (const ConvLayer &layer :
         {rep.common, rep.pointWise, rep.weightIntensive}) {
        CandidateBlock block;
        enumerateCandidatesInto(layer, cfg, SearchEffort::Fast, block);
        ASSERT_FALSE(block.empty()) << layer.toString();
        IncrementalAnalyzer inc(layer, cfg);
        for (size_t i = 0; i < block.size(); ++i) {
            const Mapping &m = block.mapping(i);
            expectChoicesIdentical(
                evaluateMappingIncremental(layer, cfg, tech, m, inc),
                evaluateMapping(layer, cfg, tech, m),
                layer.name + " " + m.toString());
        }
        const IncrementalStats &st = inc.stats();
        EXPECT_EQ(st.evaluations,
                  static_cast<int64_t>(block.size()));
        EXPECT_GT(st.deltaHits, 0) << layer.toString();
        EXPECT_GT(st.deltaHitRatio(), 0.5) << layer.toString();
        EXPECT_LT(st.fallbackRatio(), 0.5) << layer.toString();
    }
}

TEST(Incremental, CrossCheckModeValidatesEveryEvaluation)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layer = representativeLayers(224).common;
    CandidateBlock block;
    enumerateCandidatesInto(layer, cfg, SearchEffort::Sketch, block);
    ASSERT_FALSE(block.empty());
    IncrementalAnalyzer inc(layer, cfg);
    inc.setCrossCheck(true);
    for (size_t i = 0; i < block.size(); ++i)
        inc.analyze(block.mapping(i)); // panics on any divergence
    EXPECT_EQ(inc.stats().crossChecks, inc.stats().evaluations);
    EXPECT_GT(inc.stats().crossChecks, 0);
}

class IncrementalFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(IncrementalFuzz, RandomWalkMatchesFullEvaluation)
{
    // Random-walk fuzz: a chain of single-field mapping mutations
    // (legality-gated) through one stateful analyzer, each step
    // compared bit-for-bit against the independent full evaluation.
    // Failures shrink through the differential minimiser before being
    // reported.
    std::mt19937 &g = rng(GetParam());
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const ConvLayer layer = randomLayer(g);

    const std::optional<Mapping> start = randomMapping(g, layer, cfg);
    if (!start)
        GTEST_SKIP() << "no legal mapping for " << layer.toString();

    const auto diverges = [&](const DiffCase &dc) {
        IncrementalAnalyzer probe(dc.layer, dc.cfg);
        // Prime on the case's own mapping, then re-analyze so the
        // second pass takes the (identical-mapping) delta path.
        probe.analyze(dc.mapping);
        const AccessAnalysis via_delta = probe.analyze(dc.mapping);
        const AccessAnalysis full =
            analyzeMapping(dc.layer, dc.cfg, dc.mapping);
        return via_delta.counts.toString() != full.counts.toString();
    };

    IncrementalAnalyzer inc(layer, cfg);
    Mapping cur = *start;
    int accepted = 0;
    for (int step = 0; step < 120; ++step) {
        const Mapping next = mutateOneField(g, cur, layer);
        if (!checkMapping(layer, cfg, next).empty())
            continue; // illegal mutation; draw again from cur
        ++accepted;
        const MappingChoice via_inc =
            evaluateMappingIncremental(layer, cfg, tech, next, inc);
        const MappingChoice via_full =
            evaluateMapping(layer, cfg, tech, next);
        const bool same =
            via_inc.analysis.counts.toString() ==
                via_full.analysis.counts.toString() &&
            via_inc.energy.total() == via_full.energy.total() &&
            via_inc.runtime.cycles == via_full.runtime.cycles;
        if (!same) {
            const DiffCase shrunk =
                minimizeFailure({layer, cfg, next}, diverges);
            expectChoicesIdentical(via_inc, via_full,
                                   "shrunk to: " + shrunk.toString());
            FAIL() << "incremental != full; minimal case "
                   << shrunk.toString();
        }
        cur = next;
    }
    // The walk must actually exercise the delta path, not just
    // fall back on every step.
    if (accepted > 10)
        EXPECT_GT(inc.stats().deltaHits, 0) << layer.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalFuzz,
                         ::testing::Range(0u, 24u));

class BufferFastFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BufferFastFuzz, FastScanMatchesReferenceScan)
{
    // analyzeBufferFast() must be bit-identical to analyzeBuffer() on
    // every field, including the critical-point list, for the nests
    // real mappings lower to, across all three buffers and a ladder
    // of capacities spanning never-fits to always-fits.
    std::mt19937 &g = rng(GetParam() ^ 0x5eed);
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layer = randomLayer(g);
    const std::optional<Mapping> m = randomMapping(g, layer, cfg);
    if (!m)
        GTEST_SKIP() << "no legal mapping for " << layer.toString();
    const MappingShapes shapes = deriveShapes(layer, cfg, *m);
    const NestSet nests = buildNests(layer, cfg, *m, shapes);
    for (const LoopNest *nest : {&nests.perCore, &nests.perChiplet}) {
        for (Tensor t : {Tensor::Weights, Tensor::Activations,
                         Tensor::Outputs}) {
            for (int64_t cap = 1; cap <= (int64_t(1) << 40); cap <<= 4) {
                const ReuseResult ref =
                    analyzeBuffer(*nest, t, layer, cap);
                const ReuseResult fast =
                    analyzeBufferFast(*nest, t, layer, cap);
                ASSERT_EQ(fast.fillBytes, ref.fillBytes) << cap;
                ASSERT_EQ(fast.footprintAtFit, ref.footprintAtFit);
                ASSERT_EQ(fast.fitBoundary, ref.fitBoundary);
                ASSERT_EQ(fast.intrinsicBytes, ref.intrinsicBytes);
                ASSERT_EQ(fast.criticalPoints.size(),
                          ref.criticalPoints.size());
                for (size_t i = 0; i < ref.criticalPoints.size();
                     ++i) {
                    ASSERT_EQ(fast.criticalPoints[i].boundary,
                              ref.criticalPoints[i].boundary);
                    ASSERT_EQ(
                        fast.criticalPoints[i].criticalCapacity,
                        ref.criticalPoints[i].criticalCapacity);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferFastFuzz,
                         ::testing::Range(0u, 16u));

TEST(CandidateBlocks, BlockEnumerationMatchesVectorEnumeration)
{
    // The SoA block path must emit exactly the mappings the original
    // vector enumeration emits, in the same order, with strictly
    // ascending ordinals (the enumeration-neighbour contract the
    // incremental analyzer depends on).
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers rep = representativeLayers(224);
    for (const ConvLayer &layer : {rep.common, rep.activationIntensive}) {
        for (SearchEffort effort :
             {SearchEffort::Sketch, SearchEffort::Fast,
              SearchEffort::Exhaustive}) {
            const std::vector<Mapping> vec =
                enumerateCandidates(layer, cfg, effort);
            CandidateBlock block;
            enumerateCandidatesInto(layer, cfg, effort, block);
            ASSERT_EQ(block.size(), vec.size()) << layer.toString();
            for (size_t i = 0; i < vec.size(); ++i) {
                EXPECT_EQ(block.mapping(i).toString(),
                          vec[i].toString());
                if (i > 0) {
                    EXPECT_LT(block.ordinal(i - 1), block.ordinal(i));
                }
            }
        }
    }
}

TEST(CandidateBlocks, ExpandIntoMatchesExpandAndReusesStorage)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const ConvLayer layer = representativeLayers(224).common;
    const CandidateSpace space(layer, cfg, SearchEffort::Fast);
    ASSERT_GT(space.size(), 0u);
    CandidateBlock block; // one block reused across every subtree
    for (size_t i = 0; i < space.size(); ++i) {
        const std::vector<CandidateSpace::Leaf> leaves =
            space.expand(i);
        space.expandInto(i, block);
        ASSERT_EQ(block.size(), leaves.size()) << i;
        for (size_t k = 0; k < leaves.size(); ++k) {
            EXPECT_EQ(block.ordinal(k), leaves[k].ordinal);
            EXPECT_EQ(block.fullLane(k), leaves[k].fullLane);
            EXPECT_EQ(block.mapping(k).toString(),
                      leaves[k].mapping.toString());
        }
    }
}

TEST(CandidateBlocks, KeepOnlyFiltersInPlacePreservingOrder)
{
    CandidateBlock block;
    Mapping m;
    block.push(m, 3, true);
    block.push(m, 5, false);
    block.push(m, 9, true);
    block.push(m, 12, false);
    EXPECT_TRUE(block.anyFullLane());
    block.keepOnly(true);
    ASSERT_EQ(block.size(), 2u);
    EXPECT_EQ(block.ordinal(0), 3);
    EXPECT_EQ(block.ordinal(1), 9);
    EXPECT_TRUE(block.fullLane(0));
    block.clear();
    EXPECT_TRUE(block.empty());
    EXPECT_FALSE(block.anyFullLane());
}
