/**
 * @file
 * Tests for the observability layer: trace spans and their Chrome
 * JSON export (round-tripped through the common/json parser),
 * histogram bucket math at the boundaries, concurrent metric updates
 * under parallelFor, and agreement between the metrics registry and
 * the legacy SearchStats counters on a real DSE run.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/profile.hpp"
#include "common/trace.hpp"
#include "dse/explorer.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

namespace {

/** Scoped tracing toggle so a failing test can't leak tracing on. */
struct TracingOn
{
    TracingOn() { obs::setTracingEnabled(true); }
    ~TracingOn() { obs::setTracingEnabled(false); }
};

Model
miniModel()
{
    Model m("mini", 64);
    m.addLayer(makeConv("a1", 32, 32, 128, 64, 3, 3, 1));
    m.addLayer(makeConv("b", 16, 16, 256, 128, 1, 1, 1));
    m.addLayer(makeConv("a2", 32, 32, 128, 64, 3, 3, 1));
    return m;
}

DseResult
miniSweep(int threads, double progressSeconds = 0.0)
{
    DseOptions opt;
    opt.totalMacs = 2048;
    opt.proportionalMem = true;
    opt.effort = SearchEffort::Fast;
    opt.threads = threads;
    opt.detailedMetrics = true;
    opt.progressSeconds = progressSeconds;
    return explore(miniModel(), opt, defaultTech());
}

} // namespace

TEST(Trace, DisabledRecordsNothing)
{
    obs::setTracingEnabled(false);
    const size_t before = obs::snapshotTrace().size();
    {
        NNBATON_TRACE_SCOPE("test.should_not_appear");
    }
    EXPECT_EQ(obs::snapshotTrace().size(), before);
}

TEST(Trace, SpansNestAndCarryDurations)
{
    const size_t before = obs::snapshotTrace().size();
    {
        TracingOn on;
        NNBATON_TRACE_SCOPE("test.outer");
        {
            NNBATON_TRACE_SCOPE("test.inner");
        }
    }
    const std::vector<obs::TraceEvent> all = obs::snapshotTrace();
    ASSERT_GE(all.size(), before + 2);
    bool sawOuter = false, sawInner = false;
    for (size_t i = before; i < all.size(); ++i) {
        if (std::string(all[i].name) == "test.outer")
            sawOuter = true;
        if (std::string(all[i].name) == "test.inner")
            sawInner = true;
    }
    EXPECT_TRUE(sawOuter);
    EXPECT_TRUE(sawInner);
}

TEST(Trace, ChromeJsonRoundTripsThroughParser)
{
    {
        TracingOn on;
        NNBATON_TRACE_SCOPE("roundtrip.phase_a");
        {
            NNBATON_TRACE_SCOPE("roundtrip.phase_b");
        }
    }
    std::ostringstream ss;
    obs::writeChromeTrace(ss);

    const JsonParseResult parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error << " at offset "
                             << parsed.errorOffset;
    ASSERT_TRUE(parsed.value.isObject());

    const JsonValue *events = parsed.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GE(events->array.size(), 3u); // metadata + 2 spans

    bool sawA = false, sawB = false;
    for (const JsonValue &e : events->array) {
        ASSERT_TRUE(e.isObject());
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string != "X")
            continue;
        // Complete events must carry numeric ts/dur and a category.
        const JsonValue *ts = e.find("ts");
        const JsonValue *dur = e.find("dur");
        const JsonValue *cat = e.find("cat");
        const JsonValue *name = e.find("name");
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(dur, nullptr);
        ASSERT_NE(cat, nullptr);
        ASSERT_NE(name, nullptr);
        EXPECT_TRUE(ts->isNumber());
        EXPECT_TRUE(dur->isNumber());
        EXPECT_GE(dur->number, 0.0);
        if (name->string == "roundtrip.phase_a") {
            sawA = true;
            EXPECT_EQ(cat->string, "roundtrip");
        }
        if (name->string == "roundtrip.phase_b")
            sawB = true;
    }
    EXPECT_TRUE(sawA);
    EXPECT_TRUE(sawB);
}

TEST(Histogram, BucketIndexBoundaries)
{
    using H = obs::Histogram;
    EXPECT_EQ(H::bucketIndex(-5), 0);
    EXPECT_EQ(H::bucketIndex(0), 0);
    EXPECT_EQ(H::bucketIndex(1), 1);
    EXPECT_EQ(H::bucketIndex(2), 2);
    EXPECT_EQ(H::bucketIndex(3), 2);
    EXPECT_EQ(H::bucketIndex(4), 3);
    EXPECT_EQ(H::bucketIndex(7), 3);
    EXPECT_EQ(H::bucketIndex(8), 4);
    EXPECT_EQ(H::bucketIndex(1023), 10);
    EXPECT_EQ(H::bucketIndex(1024), 11);
    EXPECT_EQ(H::bucketIndex(std::numeric_limits<int64_t>::max()),
              H::kBuckets - 1);
}

TEST(Histogram, BucketBoundsAreConsistent)
{
    using H = obs::Histogram;
    for (int b = 1; b < H::kBuckets - 1; ++b) {
        const int64_t lo = H::bucketLowerBound(b);
        const int64_t hi = H::bucketUpperBound(b);
        EXPECT_EQ(H::bucketIndex(lo), b) << b;
        EXPECT_EQ(H::bucketIndex(hi), b) << b;
        if (b > 1)
            EXPECT_EQ(H::bucketLowerBound(b), H::bucketUpperBound(b - 1) + 1);
    }
    EXPECT_EQ(H::bucketUpperBound(H::kBuckets - 1),
              std::numeric_limits<int64_t>::max());
}

TEST(Histogram, RecordCountsSumAndBuckets)
{
    obs::Histogram h;
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(4);
    h.record(7);
    EXPECT_EQ(h.count(), 5);
    EXPECT_EQ(h.sum(), 15);
    EXPECT_EQ(h.bucketCount(0), 1);
    EXPECT_EQ(h.bucketCount(1), 1);
    EXPECT_EQ(h.bucketCount(2), 1);
    EXPECT_EQ(h.bucketCount(3), 2);
}

TEST(Metrics, ConcurrentIncrementsUnderParallelFor)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    obs::Counter &c = reg.counter("test.concurrent.counter");
    obs::Histogram &h = reg.histogram("test.concurrent.hist");
    c.reset();
    h.reset();

    constexpr int64_t kN = 20000;
    ThreadPool pool(4);
    pool.parallelFor(kN, [&](int64_t i) {
        c.add(1);
        h.record(i % 100);
    });
    EXPECT_EQ(c.value(), kN);
    EXPECT_EQ(h.count(), kN);
}

TEST(Metrics, RegistryTotalsMatchSearchStats)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.reset();

    const DseResult r = miniSweep(2);

    // The registry's counters are incremented at the same sites as
    // the deterministic SearchStats fields, so totals must agree.
    EXPECT_EQ(reg.counter("mapper.candidates.evaluated").value(),
              r.search.evaluated);
    EXPECT_EQ(reg.counter("mapper.candidates.pruned").value(),
              r.search.pruned);
    EXPECT_EQ(reg.counter("mapper.cache.hits").value(),
              r.search.cacheHits);
    EXPECT_EQ(reg.counter("mapper.cache.misses").value(),
              r.search.cacheMisses);
    EXPECT_EQ(reg.counter("dse.points.swept").value(), r.swept);

    // The per-shard split partitions the aggregate counts.
    int64_t shardHits = 0, shardMisses = 0;
    for (const auto &[name, v] :
         reg.snapshot().counters) {
        if (name.find("mapper.cache.shard") != 0)
            continue;
        if (name.find(".hits") != std::string::npos)
            shardHits += v;
        else
            shardMisses += v;
    }
    EXPECT_EQ(shardHits, r.search.cacheHits);
    EXPECT_EQ(shardMisses, r.search.cacheMisses);

    // Detailed metrics recorded one latency sample per layer search
    // and one per evaluated design point.
    const int64_t lookups = r.search.cacheHits + r.search.cacheMisses;
    EXPECT_EQ(reg.histogram("mapper.layer_search_us").count(), lookups);
    EXPECT_GT(reg.histogram("dse.point_latency_us").count(), 0);
}

TEST(Determinism, TracingDoesNotChangeResults)
{
    const DseResult plain = miniSweep(1);
    DseResult traced;
    {
        TracingOn on;
        traced = miniSweep(4);
    }
    EXPECT_EQ(plain.swept, traced.swept);
    EXPECT_EQ(plain.search.evaluated, traced.search.evaluated);
    EXPECT_EQ(plain.search.pruned, traced.search.pruned);
    ASSERT_EQ(plain.points.size(), traced.points.size());
    for (size_t i = 0; i < plain.points.size(); ++i) {
        EXPECT_EQ(plain.points[i].cost.energy.total(),
                  traced.points[i].cost.energy.total());
        EXPECT_EQ(plain.points[i].edp(), traced.points[i].edp());
    }
    // The traced parallel sweep covered every instrumented phase.
    std::set<std::string> phases;
    for (const obs::TraceEvent &e : obs::snapshotTrace())
        phases.insert(e.name);
    for (const char *expected :
         {"dse.explore", "dse.enumerate_space", "dse.design_point",
          "dse.collect", "mapper.map_model", "mapper.cache_lookup",
          "mapper.candidates", "mapper.pick_best",
          "mapper.bound_prune", "mapper.c3p_analysis"}) {
        EXPECT_TRUE(phases.count(expected)) << expected;
    }
}

TEST(Determinism, FullObservabilityStackDoesNotChangeResults)
{
    // Everything at once — tracing, the always-on flight recorder, a
    // very chatty progress heartbeat and detailed metrics — must be
    // observation-only: the parallel sweep returns the same results
    // and deterministic counters as a bare serial one.
    const DseResult plain = miniSweep(1);
    DseResult observed;
    {
        TracingOn on;
        obs::setFlightRecorderEnabled(true);
        observed = miniSweep(4, /*progressSeconds=*/0.01);
    }
    EXPECT_EQ(plain.swept, observed.swept);
    EXPECT_EQ(plain.infeasible, observed.infeasible);
    EXPECT_EQ(plain.areaRejected, observed.areaRejected);
    EXPECT_EQ(plain.search.evaluated, observed.search.evaluated);
    EXPECT_EQ(plain.search.pruned, observed.search.pruned);
    ASSERT_EQ(plain.points.size(), observed.points.size());
    for (size_t i = 0; i < plain.points.size(); ++i) {
        EXPECT_EQ(plain.points[i].cost.energy.total(),
                  observed.points[i].cost.energy.total());
        EXPECT_EQ(plain.points[i].edp(), observed.points[i].edp());
    }
    // The heartbeat left its gauges behind (done == total at exit).
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    EXPECT_DOUBLE_EQ(reg.gauge("dse.progress.done").value(),
                     reg.gauge("dse.progress.total").value());
    EXPECT_GT(reg.gauge("dse.progress.total").value(), 0.0);
}

TEST(Profile, AggregatesPerPhase)
{
    std::vector<obs::TraceEvent> events;
    events.push_back({"p.a", 1, 0, 2000});
    events.push_back({"p.a", 1, 5000, 4000});
    events.push_back({"p.b", 2, 0, 1000});
    const obs::ProfileReport report = obs::buildProfile(events);
    ASSERT_EQ(report.phases.size(), 2u);
    // Sorted by total time: p.a (6us) before p.b (1us).
    EXPECT_EQ(report.phases[0].name, "p.a");
    EXPECT_EQ(report.phases[0].count, 2);
    EXPECT_DOUBLE_EQ(report.phases[0].totalMs, 6e-3);
    EXPECT_DOUBLE_EQ(report.phases[0].meanUs, 3.0);
    EXPECT_DOUBLE_EQ(report.phases[0].maxUs, 4.0);
    EXPECT_EQ(report.phases[1].name, "p.b");

    // And the JSON form parses back.
    std::ostringstream ss;
    JsonWriter j(ss);
    obs::writeProfileJson(j, report);
    const JsonParseResult parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue *phases = parsed.value.find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_EQ(phases->array.size(), 2u);
}

TEST(Metrics, JsonSnapshotRoundTrips)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.counter("test.json.counter").add(42);
    reg.gauge("test.json.gauge").set(1.5);
    reg.histogram("test.json.hist").record(9);

    std::ostringstream ss;
    JsonWriter j(ss);
    obs::writeMetricsJson(j, reg.snapshot());
    const JsonParseResult parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;

    const JsonValue *counters = parsed.value.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *c = counters->find("test.json.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->number, 42.0);

    const JsonValue *hists = parsed.value.find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *h = hists->find("test.json.hist");
    ASSERT_NE(h, nullptr);
    const JsonValue *buckets = h->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_GE(buckets->array.size(), 1u);
}
