#!/usr/bin/env bash
# End-to-end smoke test for `nn-baton serve`:
#   1. the daemon comes up and answers a post-design request with
#      bytes identical to the one-shot CLI's --no-obs JSON export;
#   2. a malformed request gets a structured error envelope (and the
#      client exits non-zero), not a dropped connection;
#   3. the shutdown op stops the daemon cleanly (exit 0).
#
# Usage: serve_smoke.sh <path-to-nn-baton>
set -euo pipefail

BIN=${1:?usage: serve_smoke.sh <path-to-nn-baton>}
DIR=$(mktemp -d)
SOCK="$DIR/nnb.sock"
DAEMON_PID=

cleanup() {
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    exit 1
}

# A workload small enough for an exhaustive per-request search (and
# feasible on the default case-study hardware, so the CLI exits 0).
cat > "$DIR/tiny.model" << 'EOF'
model tiny 32
conv c1 8 8 64 16 3 3 1
fc head 64 128
EOF

# Reference bytes from the one-shot CLI.
"$BIN" post --model-file "$DIR/tiny.model" --no-obs \
    --json "$DIR/cli.json" > /dev/null

# Start the daemon and wait for the socket.
"$BIN" serve --socket "$SOCK" --threads 2 > "$DIR/serve.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    kill -0 "$DAEMON_PID" 2>/dev/null \
        || fail "daemon died at startup: $(cat "$DIR/serve.log")"
    sleep 0.1
done
[[ -S "$SOCK" ]] || fail "socket never appeared"

# 1. Post request -> bit-identical to the CLI export.
REQ='{"op":"post","modelText":"model tiny 32\nconv c1 8 8 64 16 3 3 1\nfc head 64 128\n"}'
"$BIN" request --socket "$SOCK" --request "$REQ" > "$DIR/serve.json"
cmp "$DIR/cli.json" "$DIR/serve.json" \
    || fail "served response differs from the one-shot CLI export"

# 2. Malformed request -> structured error, client exits non-zero.
set +e
"$BIN" request --socket "$SOCK" --request '][,' > "$DIR/err.json"
RC=$?
set -e
[[ $RC -eq 1 ]] || fail "malformed request: client exit $RC, want 1"
grep -q '"ok":false' "$DIR/err.json" \
    || fail "malformed request: no error envelope: $(cat "$DIR/err.json")"
grep -q '"code":"INVALID_ARGUMENT"' "$DIR/err.json" \
    || fail "malformed request: wrong code: $(cat "$DIR/err.json")"

# 3. Shutdown op stops the daemon with exit 0.
"$BIN" request --socket "$SOCK" --request '{"op":"shutdown"}' \
    > /dev/null
wait "$DAEMON_PID"
RC=$?
DAEMON_PID=
[[ $RC -eq 0 ]] || fail "daemon exit $RC after shutdown, want 0"

echo "serve_smoke: PASS"
