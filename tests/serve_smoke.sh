#!/usr/bin/env bash
# End-to-end smoke test for `nn-baton serve`:
#   1. the daemon comes up and answers a post-design request with
#      bytes identical to the one-shot CLI's --no-obs JSON export;
#   2. `nn-baton stats` scrapes request-latency quantiles and cache
#      counters from the live daemon in all three formats;
#   3. the access log holds one parseable JSON line per request and
#      the 1us SLO counted the post request as a violation;
#   4. a malformed request gets a structured error envelope (and the
#      client exits non-zero), not a dropped connection;
#   5. the shutdown op stops the daemon cleanly (exit 0).
#
# Usage: serve_smoke.sh <path-to-nn-baton>
set -euo pipefail

BIN=${1:?usage: serve_smoke.sh <path-to-nn-baton>}
DIR=$(mktemp -d)
SOCK="$DIR/nnb.sock"
DAEMON_PID=

cleanup() {
    # Runs on any exit, including INT/TERM mid-test: the daemon must
    # not outlive the test, and a stale socket file must not confuse
    # the next run.  TERM first; escalate to KILL if the daemon is
    # wedged so the trap itself cannot hang in wait.
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        for _ in $(seq 50); do
            kill -0 "$DAEMON_PID" 2>/dev/null || break
            sleep 0.1
        done
        kill -9 "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -f "$SOCK"
    rm -rf "$DIR"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    exit 1
}

# A workload small enough for an exhaustive per-request search (and
# feasible on the default case-study hardware, so the CLI exits 0).
cat > "$DIR/tiny.model" << 'EOF'
model tiny 32
conv c1 8 8 64 16 3 3 1
fc head 64 128
EOF

# Reference bytes from the one-shot CLI.
"$BIN" post --model-file "$DIR/tiny.model" --no-obs \
    --json "$DIR/cli.json" > /dev/null

# Start the daemon (with the observability stack on: a 1us SLO every
# request violates, and a per-request access log) and wait for the
# socket under a wall-clock deadline rather than a fixed poll count —
# on timeout the daemon's own output is the error message.
"$BIN" serve --socket "$SOCK" --threads 2 \
    --slo-us 1 --access-log "$DIR/access.log" \
    > "$DIR/serve.log" 2>&1 &
DAEMON_PID=$!
WAIT_DEADLINE_S=60
SECONDS=0
until [[ -S "$SOCK" ]]; do
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "--- daemon output ---" >&2
        cat "$DIR/serve.log" >&2
        fail "daemon died at startup"
    }
    if (( SECONDS >= WAIT_DEADLINE_S )); then
        echo "--- daemon output ---" >&2
        cat "$DIR/serve.log" >&2
        fail "socket did not appear within ${WAIT_DEADLINE_S}s"
    fi
    sleep 0.1
done
# The socket exists; a ping proves the accept loop is live too.
"$BIN" request --socket "$SOCK" --request '{"op":"ping"}' \
    | grep -q '"pong":true' || fail "daemon did not answer a ping"

# 1. Post request -> bit-identical to the CLI export.
REQ='{"op":"post","modelText":"model tiny 32\nconv c1 8 8 64 16 3 3 1\nfc head 64 128\n"}'
"$BIN" request --socket "$SOCK" --request "$REQ" > "$DIR/serve.json"
cmp "$DIR/cli.json" "$DIR/serve.json" \
    || fail "served response differs from the one-shot CLI export"

# 2. `nn-baton stats` scrapes the live daemon in all three formats.
"$BIN" stats --socket "$SOCK" --format table > "$DIR/stats.table"
grep -q 'serve.request_us' "$DIR/stats.table" \
    || fail "stats table misses serve.request_us: $(cat "$DIR/stats.table")"
grep -q 'p50' "$DIR/stats.table" \
    || fail "stats table misses quantiles"
grep -q 'serve.cache.miss' "$DIR/stats.table" \
    || fail "stats table misses cache counters"

"$BIN" stats --socket "$SOCK" --format json > "$DIR/stats.json"
grep -q '"histograms"' "$DIR/stats.json" \
    || fail "stats json misses histograms"
grep -q '"serve.request_us"' "$DIR/stats.json" \
    || fail "stats json misses serve.request_us"
grep -q '"p99"' "$DIR/stats.json" || fail "stats json misses p99"

"$BIN" stats --socket "$SOCK" --format prom > "$DIR/stats.prom"
grep -q '^# TYPE nnbaton_serve_request_us histogram' "$DIR/stats.prom" \
    || fail "prom exposition misses the latency histogram TYPE line"
grep -q '^nnbaton_serve_request_us_bucket{le="+Inf"} ' "$DIR/stats.prom" \
    || fail "prom exposition misses the +Inf bucket"
grep -q '^nnbaton_serve_request_us_p50 ' "$DIR/stats.prom" \
    || fail "prom exposition misses p50"
grep -q '^nnbaton_serve_requests_total ' "$DIR/stats.prom" \
    || fail "prom exposition misses the requests counter"
# Minimal lint: no sample line may have anything but name/labels/value.
if grep -vE '^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eEinf-]+)$' \
    "$DIR/stats.prom" > "$DIR/stats.lint"; then
    fail "prom exposition lint: $(cat "$DIR/stats.lint")"
fi

# 3. The access log audited every request so far, one JSON line each,
# and the 1us SLO flagged the slow post request.
grep -q '"op":"post"' "$DIR/access.log" \
    || fail "access log misses the post request: $(cat "$DIR/access.log")"
grep -q '"op":"ping"' "$DIR/access.log" \
    || fail "access log misses the ping"
grep -q '"outcome":"OK"' "$DIR/access.log" \
    || fail "access log misses outcomes"
grep -q 'nnbaton_serve_slo_violations_total [1-9]' "$DIR/stats.prom" \
    || fail "SLO violation not counted: $(grep slo "$DIR/stats.prom")"

# 4. Malformed request -> structured error, client exits non-zero.
set +e
"$BIN" request --socket "$SOCK" --request '][,' > "$DIR/err.json"
RC=$?
set -e
[[ $RC -eq 1 ]] || fail "malformed request: client exit $RC, want 1"
grep -q '"ok":false' "$DIR/err.json" \
    || fail "malformed request: no error envelope: $(cat "$DIR/err.json")"
grep -q '"code":"INVALID_ARGUMENT"' "$DIR/err.json" \
    || fail "malformed request: wrong code: $(cat "$DIR/err.json")"

# 5. Shutdown op stops the daemon with exit 0.
"$BIN" request --socket "$SOCK" --request '{"op":"shutdown"}' \
    > /dev/null
wait "$DAEMON_PID"
RC=$?
DAEMON_PID=
[[ $RC -eq 0 ]] || fail "daemon exit $RC after shutdown, want 0"

echo "serve_smoke: PASS"
