/**
 * @file
 * Property tests: the analytical C3P engine must agree with the
 * brute-force coordinate-enumerating reference interpreter on
 * divisible loop nests, across tensors, capacities and nest shapes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "c3p/analysis.hpp"
#include "verif/interpreter.hpp"

using namespace nnbaton;

namespace {

struct NestCase
{
    const char *name;
    ConvLayer layer;
    LoopNest nest;
};

/** A family of small, evenly divisible nests covering the dims. */
std::vector<NestCase>
nestCases()
{
    std::vector<NestCase> cases;

    {
        NestCase c{"weights_basic",
                   makeConv("l", 16, 16, 16, 16, 3, 3, 1), {}};
        c.nest.loops = {{Dim::OC, 4}, {Dim::OH, 4}, {Dim::OW, 4},
                        {Dim::IC, 2}};
        c.nest.atom = TileSpan{};
        c.nest.atom.ho = 4;
        c.nest.atom.wo = 4;
        c.nest.atom.co = 4;
        c.nest.atom.ci = 8;
        c.nest.atom.kh = 3;
        c.nest.atom.kw = 3;
        cases.push_back(c);
    }
    {
        NestCase c{"acts_halo_s1",
                   makeConv("l", 16, 16, 8, 8, 3, 3, 1), {}};
        c.nest.loops = {{Dim::IC, 2}, {Dim::OH, 4}, {Dim::OW, 4}};
        c.nest.atom = TileSpan{};
        c.nest.atom.ho = 4;
        c.nest.atom.wo = 4;
        c.nest.atom.ci = 4;
        c.nest.atom.kh = 3;
        c.nest.atom.kw = 3;
        cases.push_back(c);
    }
    {
        NestCase c{"acts_halo_s2_k7",
                   makeConv("l", 16, 16, 8, 4, 7, 7, 2), {}};
        c.nest.loops = {{Dim::OC, 2}, {Dim::OH, 4}, {Dim::OW, 2}};
        c.nest.atom = TileSpan{};
        c.nest.atom.ho = 4;
        c.nest.atom.wo = 8;
        c.nest.atom.ci = 4;
        c.nest.atom.co = 4;
        c.nest.atom.kh = 7;
        c.nest.atom.kw = 7;
        cases.push_back(c);
    }
    {
        NestCase c{"kernel_loops",
                   makeConv("l", 8, 8, 8, 8, 3, 3, 1), {}};
        c.nest.loops = {{Dim::IC, 2}, {Dim::KH, 3}, {Dim::KW, 3},
                        {Dim::OH, 8}, {Dim::OW, 8}};
        c.nest.atom = TileSpan{};
        c.nest.atom.ci = 4;
        c.nest.atom.co = 8;
        cases.push_back(c);
    }
    {
        NestCase c{"outputs_mixed",
                   makeConv("l", 8, 8, 32, 8, 1, 1, 1), {}};
        c.nest.loops = {{Dim::OC, 4}, {Dim::IC, 2}, {Dim::OH, 2},
                        {Dim::OW, 2}};
        c.nest.atom = TileSpan{};
        c.nest.atom.ho = 4;
        c.nest.atom.wo = 4;
        c.nest.atom.co = 8;
        c.nest.atom.ci = 4;
        cases.push_back(c);
    }
    return cases;
}

} // namespace

class C3PReference
    : public ::testing::TestWithParam<std::tuple<size_t, int>>
{
};

TEST_P(C3PReference, AnalyticalMatchesBruteForce)
{
    const auto [case_idx, cap_sel] = GetParam();
    const auto cases = nestCases();
    ASSERT_LT(case_idx, cases.size());
    const NestCase &c = cases[case_idx];

    for (Tensor t : {Tensor::Weights, Tensor::Activations,
                     Tensor::Outputs}) {
        // Pick capacities around every nest boundary's footprint so
        // each retention level is exercised, plus the selector-scaled
        // arbitrary value.
        std::vector<int64_t> caps;
        for (size_t b = 0; b <= c.nest.loops.size(); ++b) {
            const int64_t fp =
                footprintBytes(t, c.nest.spanBelow(b), c.layer);
            caps.push_back(fp);
            caps.push_back(fp - 1);
            caps.push_back(fp + 1);
        }
        caps.push_back(static_cast<int64_t>(cap_sel) * 100 + 1);

        for (int64_t cap : caps) {
            if (cap <= 0)
                continue;
            const auto ana =
                analyzeBuffer(c.nest, t, c.layer, cap);
            const auto ref = referenceFills(c.nest, t, c.layer, cap);
            EXPECT_EQ(ana.fillBytes, ref.fillBytes)
                << c.name << " tensor " << toString(t) << " cap "
                << cap;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllNests, C3PReference,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 2, 3, 4),
                       ::testing::Values(1, 7, 23)));

TEST(C3PReference, IntrinsicMatchesWholeNestEnumeration)
{
    // With an unbounded buffer the analytical intrinsic A0 must equal
    // the reference's unique-coordinate count of the whole nest.
    const auto cases = nestCases();
    for (const auto &c : cases) {
        for (Tensor t : {Tensor::Weights, Tensor::Activations,
                         Tensor::Outputs}) {
            const int64_t cap = 1LL << 40;
            const auto ana = analyzeBuffer(c.nest, t, c.layer, cap);
            const auto ref = referenceFills(c.nest, t, c.layer, cap);
            EXPECT_EQ(ana.intrinsicBytes, ref.fillBytes)
                << c.name << " " << toString(t);
            EXPECT_EQ(ref.retainedTiles, 1) << c.name;
        }
    }
}

TEST(C3PReference, RetainedTileCountMatchesTripsAboveFit)
{
    const auto cases = nestCases();
    for (const auto &c : cases) {
        for (Tensor t : {Tensor::Weights, Tensor::Activations}) {
            // Capacity exactly one atom: retained tiles = total trips.
            const int64_t atom_fp = footprintBytes(
                t, c.nest.spanBelow(c.nest.loops.size()), c.layer);
            const auto ref =
                referenceFills(c.nest, t, c.layer, atom_fp);
            const auto ana =
                analyzeBuffer(c.nest, t, c.layer, atom_fp);
            EXPECT_EQ(ref.retainedTiles,
                      c.nest.tripsAbove(ana.fitBoundary))
                << c.name << " " << toString(t);
        }
    }
}
