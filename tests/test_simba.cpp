/**
 * @file
 * Tests for the Simba weight-centric baseline model.
 */

#include <gtest/gtest.h>

#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "simba/simba.hpp"

using namespace nnbaton;

TEST(Simba, LegalArrangementForRepresentativeLayers)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(224);
    for (const ConvLayer *l :
         {&reps.activationIntensive, &reps.weightIntensive,
          &reps.largeKernel, &reps.pointWise, &reps.common}) {
        const SimbaLayerCost c = simbaLayerCost(*l, cfg, defaultTech());
        EXPECT_GT(c.energy.total(), 0.0) << l->name;
        EXPECT_GT(c.runtime.cycles, 0) << l->name;
        EXPECT_EQ(c.counts.macOps, l->macs()) << l->name;
        // Grid covers the resources.
        EXPECT_EQ(c.mapping.pkgRows * c.mapping.pkgCols,
                  cfg.package.chiplets);
        EXPECT_EQ(c.mapping.chipRows * c.mapping.chipCols,
                  cfg.chiplet.cores);
    }
}

TEST(Simba, PsumTrafficPresentWithRowSplit)
{
    // Whenever input channels are split across rows, 24-bit partial
    // sums must flow between cores or chiplets.
    const ConvLayer layer = makeConv("t", 28, 28, 512, 256, 3, 3, 1);
    const SimbaLayerCost c =
        simbaLayerCost(layer, caseStudyConfig(), defaultTech());
    if (c.mapping.chipRows > 1)
        EXPECT_GT(c.counts.nocBits, 0);
    if (c.mapping.pkgRows > 1)
        EXPECT_GT(c.counts.d2dBits, 0);
    EXPECT_GT(c.counts.nocBits + c.counts.d2dBits, 0);
}

TEST(Simba, OutputTrafficIsExact)
{
    const ConvLayer layer = makeConv("t", 28, 28, 512, 256, 3, 3, 1);
    const SimbaLayerCost c =
        simbaLayerCost(layer, caseStudyConfig(), defaultTech());
    EXPECT_EQ(c.counts.dramWriteBits, layer.outputVolume() * 8);
}

TEST(Simba, WeightsLoadedAtLeastOnce)
{
    const ConvLayer layer = makeConv("t", 28, 28, 512, 256, 3, 3, 1);
    const SimbaLayerCost c =
        simbaLayerCost(layer, caseStudyConfig(), defaultTech());
    EXPECT_GE(c.counts.dramReadBits(), layer.weightVolume() * 8);
}

TEST(Simba, SingleChipletHasNoD2dActivationShare)
{
    AcceleratorConfig one = caseStudyConfig();
    one.package.chiplets = 1;
    const ConvLayer layer = makeConv("t", 28, 28, 256, 128, 3, 3, 1);
    const SimbaLayerCost c = simbaLayerCost(layer, one, defaultTech());
    EXPECT_EQ(c.counts.d2dBits, 0);
    EXPECT_EQ(c.mapping.pkgRows, 1);
    EXPECT_EQ(c.mapping.pkgCols, 1);
}

TEST(Simba, PointWiseEdgeLayers)
{
    // 1x1 kernels have no halo: the weight-centric dataflow's
    // temporal plane tiling must not charge any redundant input
    // reloads, and the invariants must hold down to a 1x1 output map
    // (the FC-as-conv reorganisation).
    const AcceleratorConfig cfg = caseStudyConfig();
    for (const ConvLayer &layer :
         {makeConv("pw", 28, 28, 256, 64, 1, 1, 1),
          makeConv("pw-s2", 28, 28, 256, 64, 1, 1, 2),
          makeFullyConnected("fc", 1000, 2048)}) {
        const SimbaLayerCost c = simbaLayerCost(layer, cfg,
                                                defaultTech());
        EXPECT_EQ(c.counts.macOps, layer.macs()) << layer.name;
        EXPECT_EQ(c.counts.dramWriteBits, layer.outputVolume() * 8)
            << layer.name;
        EXPECT_GE(c.counts.dramReadBits(), layer.weightVolume() * 8)
            << layer.name;
        EXPECT_GT(c.runtime.cycles, 0) << layer.name;
        // Without a halo the input can never be read redundantly
        // beyond the spatial duplication across output-channel
        // columns of the grid.
        const int64_t max_dup =
            static_cast<int64_t>(cfg.package.chiplets) *
            cfg.chiplet.cores;
        EXPECT_LE(c.counts.dramReadActBits,
                  layer.inputVolume() * 8 * max_dup)
            << layer.name;
    }
}

TEST(Simba, StrideTwoEdgeLayers)
{
    // Stride-2 layers (downsampling convs and shortcut 1x1/s2) have
    // input footprints larger than the output plane; the baseline's
    // access accounting must stay consistent.
    const AcceleratorConfig cfg = caseStudyConfig();
    for (const ConvLayer &layer :
         {makeConv("s2", 56, 56, 128, 64, 3, 3, 2),
          makeConv("s2-k7", 112, 112, 64, 3, 7, 7, 2),
          makeConv("s2-pw", 28, 28, 512, 256, 1, 1, 2)}) {
        const SimbaLayerCost c = simbaLayerCost(layer, cfg,
                                                defaultTech());
        EXPECT_EQ(c.counts.macOps, layer.macs()) << layer.name;
        EXPECT_EQ(c.counts.dramWriteBits, layer.outputVolume() * 8)
            << layer.name;
        // The strided input footprint must be loaded at least once.
        EXPECT_GE(c.counts.dramReadActBits,
                  static_cast<int64_t>(layer.ho * layer.stride - 1) *
                      (layer.wo * layer.stride - 1) / 4)
            << layer.name;
        EXPECT_GT(c.energy.total(), 0.0) << layer.name;
        EXPECT_GT(c.runtime.cycles, c.runtime.computeCycles - 1)
            << layer.name;
    }
}

TEST(Simba, EdgeLayersBeatOrMatchNothingSmallerThanOneCore)
{
    // Degenerate single-core, single-chiplet hardware still yields a
    // legal 1x1 grid on edge layers.
    AcceleratorConfig tiny = caseStudyConfig();
    tiny.package.chiplets = 1;
    tiny.chiplet.cores = 1;
    const ConvLayer layer = makeConv("pw", 7, 7, 32, 16, 1, 1, 2);
    const SimbaLayerCost c = simbaLayerCost(layer, tiny, defaultTech());
    EXPECT_EQ(c.mapping.pkgRows * c.mapping.pkgCols, 1);
    EXPECT_EQ(c.mapping.chipRows * c.mapping.chipCols, 1);
    // No psum reduction across a 1x1 grid; nocBits stays nonzero
    // because input delivery rides the per-PE routers in Simba.
    EXPECT_EQ(c.counts.d2dBits, 0);
    EXPECT_GT(c.counts.nocBits, 0);
    EXPECT_EQ(c.counts.macOps, layer.macs());
}

TEST(Simba, ModelCostAggregates)
{
    const Model model = makeVgg16(224);
    const SimbaModelCost mc =
        simbaModelCost(model, caseStudyConfig(), defaultTech());
    EXPECT_EQ(mc.modelName, "VGG-16");
    EXPECT_GT(mc.energy.total(), 0.0);
    EXPECT_GT(mc.cycles, 0);

    // Aggregate exceeds any single layer.
    const SimbaLayerCost one = simbaLayerCost(
        model.layer("conv1"), caseStudyConfig(), defaultTech());
    EXPECT_GT(mc.energy.total(), one.energy.total());
}

TEST(Simba, MappingToString)
{
    SimbaMapping m{2, 2, 4, 2, 8, 16};
    EXPECT_EQ(m.toString(), "pkg 2x2 chip 4x2 tile 8x16");
}

/**
 * The headline behavioural claim of figure 12: on activation-heavy
 * large-feature-map layers, NN-Baton's output-centric dataflow beats
 * the weight-centric Simba dataflow (which reloads halos and moves
 * 24-bit psums across the package), while on weight-intensive and
 * point-wise layers the two are close.
 */
TEST(Simba, OutputCentricWinsOnActivationHeavyLayers)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(512);

    const auto baton =
        searchLayer(reps.activationIntensive, cfg, defaultTech());
    ASSERT_TRUE(baton.has_value());
    const SimbaLayerCost simba =
        simbaLayerCost(reps.activationIntensive, cfg, defaultTech());
    EXPECT_LT(baton->energy.total(), simba.energy.total());
}

TEST(Simba, CloseOnWeightIntensiveLayers)
{
    // Paper: "in layers with smaller feature sizes ... both perform
    // similarly".  Allow a generous band rather than equality.
    const AcceleratorConfig cfg = caseStudyConfig();
    const RepresentativeLayers reps = representativeLayers(224);
    const auto baton =
        searchLayer(reps.weightIntensive, cfg, defaultTech());
    ASSERT_TRUE(baton.has_value());
    const SimbaLayerCost simba =
        simbaLayerCost(reps.weightIntensive, cfg, defaultTech());
    const double ratio =
        baton->energy.total() / simba.energy.total();
    EXPECT_LT(ratio, 1.05);
    EXPECT_GT(ratio, 0.3);
}
