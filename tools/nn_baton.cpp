/**
 * @file
 * The NN-Baton command-line driver.
 *
 * Subcommands:
 *   post    — post-design flow: map a model on a hardware config and
 *             print (or JSON-export) the per-layer mapping strategy.
 *   pre     — pre-design flow: sweep the design space under MAC and
 *             area budgets and recommend a design.
 *   compare — evaluate the Simba weight-centric baseline against the
 *             NN-Baton mappings on the same hardware.
 *   models  — list the built-in model zoo (or dump one as text).
 *
 * Models come from the zoo (vgg16, resnet50, darknet19, alexnet,
 * mobilenetv2) or from a text description file via --model-file (see
 * nn/parser.hpp for the format).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baton/baton.hpp"
#include "baton/export.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "nn/parser.hpp"

using namespace nnbaton;

namespace {

struct Args
{
    std::string command;
    std::string model = "resnet50";
    std::string modelFile;
    std::string jsonPath;
    int resolution = 224;
    int64_t macs = 2048;
    double areaMm2 = 0.0;
    bool proportional = false;
    bool edpObjective = false;
    int threads = hardwareThreads();
    // Hardware overrides for `post` / `compare`.
    AcceleratorConfig config = caseStudyConfig();
};

void
usage()
{
    std::printf(
        "usage: nn-baton <command> [options]\n"
        "\n"
        "commands:\n"
        "  post     map a model on a hardware configuration\n"
        "  pre      explore the design space (chiplet granularity)\n"
        "  compare  Simba baseline vs NN-Baton on the same hardware\n"
        "  models   list the built-in model zoo / dump one as text\n"
        "\n"
        "options:\n"
        "  --model <name>        zoo model (vgg16 resnet50 darknet19\n"
        "                        alexnet mobilenetv2) [resnet50]\n"
        "  --model-file <path>   text model description instead\n"
        "  --resolution <n>      input resolution (224 or 512) [224]\n"
        "  --macs <n>            pre: required MAC units [2048]\n"
        "  --area <mm2>          pre: chiplet area budget [none]\n"
        "  --proportional        pre: memory proportional to compute\n"
        "  --edp                 optimise EDP instead of energy\n"
        "  --threads <n>         worker threads (1 = serial; results\n"
        "                        are identical) [hardware concurrency]\n"
        "  --chiplets/--cores/--lanes/--vector <n>\n"
        "                        post/compare hardware shape\n"
        "  --ol1/--al1/--wl1/--al2 <bytes>\n"
        "                        post/compare buffer sizes\n"
        "  --json <path>         write a JSON report\n");
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    if (argc < 2)
        return false;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string opt = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("option %s needs a value", opt.c_str());
            return argv[++i];
        };
        if (opt == "--model") {
            args.model = next();
        } else if (opt == "--model-file") {
            args.modelFile = next();
        } else if (opt == "--resolution") {
            args.resolution = std::atoi(next());
        } else if (opt == "--macs") {
            args.macs = std::atoll(next());
        } else if (opt == "--area") {
            args.areaMm2 = std::atof(next());
        } else if (opt == "--proportional") {
            args.proportional = true;
        } else if (opt == "--edp") {
            args.edpObjective = true;
        } else if (opt == "--threads") {
            args.threads = std::atoi(next());
            if (args.threads < 1)
                fatal("--threads needs a positive value");
        } else if (opt == "--chiplets") {
            args.config.package.chiplets = std::atoi(next());
        } else if (opt == "--cores") {
            args.config.chiplet.cores = std::atoi(next());
        } else if (opt == "--lanes") {
            args.config.core.lanes = std::atoi(next());
        } else if (opt == "--vector") {
            args.config.core.vectorSize = std::atoi(next());
        } else if (opt == "--ol1") {
            args.config.core.ol1Bytes = std::atoll(next());
        } else if (opt == "--al1") {
            args.config.core.al1Bytes = std::atoll(next());
        } else if (opt == "--wl1") {
            args.config.core.wl1Bytes = std::atoll(next());
        } else if (opt == "--al2") {
            args.config.chiplet.al2Bytes = std::atoll(next());
        } else if (opt == "--json") {
            args.jsonPath = next();
        } else if (opt == "--help" || opt == "-h") {
            return false;
        } else {
            fatal("unknown option %s (try --help)", opt.c_str());
        }
    }
    return true;
}

Model
loadModel(const Args &args)
{
    if (!args.modelFile.empty()) {
        ParseResult r = parseModelFile(args.modelFile);
        if (!r.ok())
            fatal("%s", r.error.c_str());
        return std::move(*r.model);
    }
    const std::string &n = args.model;
    const int res = args.resolution;
    if (n == "vgg16")
        return makeVgg16(res);
    if (n == "resnet50")
        return makeResNet50(res);
    if (n == "darknet19")
        return makeDarkNet19(res);
    if (n == "alexnet")
        return makeAlexNet(res);
    if (n == "mobilenetv2")
        return makeMobileNetV2(res);
    fatal("unknown model '%s'", n.c_str());
}

int
runPost(const Args &args)
{
    const Model model = loadModel(args);
    args.config.validate();
    PostDesignFlow flow(args.config, defaultTech(),
                        SearchEffort::Exhaustive,
                        args.edpObjective ? Objective::MinEdp
                                          : Objective::MinEnergy,
                        args.threads);
    const PostDesignReport report = flow.run(model);
    std::printf("%s", report.toString().c_str());
    if (!args.jsonPath.empty()) {
        std::ofstream out(args.jsonPath);
        if (!out)
            fatal("cannot write %s", args.jsonPath.c_str());
        exportPostDesign(report, out);
        std::printf("wrote %s\n", args.jsonPath.c_str());
    }
    return report.feasible ? 0 : 1;
}

int
runPre(const Args &args)
{
    const Model model = loadModel(args);
    DseOptions opt;
    opt.totalMacs = args.macs;
    opt.areaLimitMm2 = args.areaMm2;
    opt.proportionalMem = args.proportional;
    opt.effort = args.proportional ? SearchEffort::Fast
                                   : SearchEffort::Sketch;
    opt.objective = args.edpObjective ? Objective::MinEdp
                                      : Objective::MinEnergy;
    opt.threads = args.threads;
    PreDesignFlow flow(opt);
    const PreDesignReport report = flow.run(model);
    std::printf("%s", report.toString().c_str());
    if (!args.jsonPath.empty()) {
        std::ofstream out(args.jsonPath);
        if (!out)
            fatal("cannot write %s", args.jsonPath.c_str());
        exportPreDesign(report, out);
        std::printf("wrote %s\n", args.jsonPath.c_str());
    }
    return report.recommended ? 0 : 1;
}

int
runCompare(const Args &args)
{
    const Model model = loadModel(args);
    args.config.validate();
    const ComparisonReport r = compareWithSimba(model, args.config);
    std::printf("model %s on %s\n", r.modelName.c_str(),
                args.config.toString().c_str());
    std::printf("  simba : %s\n", r.simbaEnergy.toString().c_str());
    std::printf("  baton : %s\n", r.batonEnergy.toString().c_str());
    std::printf("  savings: %.1f%%\n", 100.0 * r.savings());
    return 0;
}

int
runModels(const Args &args)
{
    if (!args.model.empty() && args.model != "resnet50") {
        // Dump the requested model as a text description.
        std::printf("%s", writeModelText(loadModel(args)).c_str());
        return 0;
    }
    for (const char *name : {"alexnet", "vgg16", "resnet50",
                             "darknet19", "mobilenetv2"}) {
        Args a = args;
        a.model = name;
        const Model m = loadModel(a);
        std::printf("%-12s %2zu layers, %7.2f GMACs, %6.2f M weights\n",
                    name, m.layers().size(),
                    static_cast<double>(m.totalMacs()) * 1e-9,
                    static_cast<double>(m.totalWeights()) * 1e-6);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        usage();
        return 2;
    }
    if (args.command == "post")
        return runPost(args);
    if (args.command == "pre")
        return runPre(args);
    if (args.command == "compare")
        return runCompare(args);
    if (args.command == "models")
        return runModels(args);
    usage();
    return 2;
}
