/**
 * @file
 * The NN-Baton command-line driver.
 *
 * Subcommands:
 *   post    — post-design flow: map a model on a hardware config and
 *             print (or JSON-export) the per-layer mapping strategy.
 *   pre     — pre-design flow: sweep the design space under MAC and
 *             area budgets and recommend a design.
 *   compare — evaluate the Simba weight-centric baseline against the
 *             NN-Baton mappings on the same hardware.
 *   models  — list the built-in model zoo (or dump one as text).
 *   serve   — persistent evaluation daemon on a Unix-domain socket
 *             and/or a TCP port, answering JSON requests with a warm
 *             shared mapping cache (see docs/serving.md); a TCP
 *             listener makes the daemon a sweep-fabric worker.
 *   coordinate — distribute a pre-design sweep across serve workers
 *             (leases, retry/backoff, crash recovery; see
 *             docs/distributed.md).
 *   request — one-shot client for the serve daemon, with optional
 *             retry/backoff on retryable failures.
 *   stats   — scrape a live daemon's metrics registry and render it
 *             as a table, JSON, or Prometheus text exposition.
 *
 * Models come from the zoo (vgg16, resnet50, darknet19, alexnet,
 * mobilenetv2) or from a text description file via --model-file (see
 * nn/parser.hpp for the format).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <algorithm>
#include <set>

#include "baton/baton.hpp"
#include "baton/export.hpp"
#include "common/backoff.hpp"
#include "common/cancel.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/net.hpp"
#include "common/parallel.hpp"
#include "common/parse.hpp"
#include "common/profile.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"
#include "fabric/coordinator.hpp"
#include "nn/parser.hpp"
#include "serve/server.hpp"
#include "verif/random_mapping.hpp"
#include "verif/replay.hpp"

using namespace nnbaton;

namespace {

struct Args
{
    std::string command;
    std::string model = "resnet50";
    bool modelExplicit = false; //!< --model was passed (vs default)
    std::string modelFile;
    std::string jsonPath;
    std::string tracePath; //!< --trace: Chrome trace-event JSON output
    bool metrics = false;  //!< --metrics: stderr table + histograms
    double progressSeconds = 0; //!< --progress[=secs]: pre heartbeat
    bool verify = false;   //!< post: replay winners differentially
    int verifyBudget = 4;  //!< --verify-budget: mappings to replay
    int resolution = 224;
    int batch = 1; //!< --batch: multiply every layer's batch
    int64_t macs = 2048;
    double areaMm2 = 0.0;
    bool proportional = false;
    bool edpObjective = false;
    SearchMode searchMode = SearchMode::Exhaustive;
    uint64_t annealSeed = 1;    //!< --anneal-seed
    int annealIterations = 400; //!< --anneal-iters
    int threads = hardwareThreads();
    // Resilience options for long `pre` sweeps.
    std::string checkpointPath; //!< --checkpoint: snapshot file
    int checkpointEvery = 32;   //!< --checkpoint-every: flush period
    std::string resumePath;     //!< --resume: restore from snapshot
    double deadlineSeconds = 0; //!< --deadline: wall-clock budget
    bool strict = false;        //!< --strict: fail fast on poisoned
    bool noObs = false;         //!< --no-obs: lean JSON exports
    // Service options for `serve` / `request` / `stats`.
    std::string socketPath;          //!< --socket: Unix socket path
    std::string tcpAddress;          //!< serve: --tcp host:port
    int64_t cacheBytes = 256 << 20;  //!< --cache-bytes: LRU cap
    std::string requestBody;         //!< request: --request JSON line
    double timeoutSeconds = 30.0;    //!< request/stats: --timeout
    int retries = 0;                 //!< request: --retries budget
    // Fabric options for `pre --workers` / `coordinate`.
    std::string workersCsv;          //!< --workers a,b,c endpoints
    int64_t unitPoints = 0;          //!< --unit-points (0 = auto)
    double leaseSeconds = 60.0;      //!< --lease TTL in seconds
    int maxInflight = 0;             //!< serve: --max-inflight cap
    int64_t sloUs = 0;               //!< serve: --slo-us threshold
    std::string accessLogPath;       //!< serve: --access-log file
    std::string flightDumpPath;      //!< --flight-dump: crash/error dump
    std::string statsFormat = "table"; //!< stats: --format
    // Hardware overrides for `post` / `compare`.
    AcceleratorConfig config = caseStudyConfig();
};

void
usage()
{
    std::printf(
        "usage: nn-baton <command> [options]\n"
        "\n"
        "commands:\n"
        "  post     map a model on a hardware configuration\n"
        "  pre      explore the design space (chiplet granularity)\n"
        "  compare  Simba baseline vs NN-Baton on the same hardware\n"
        "  models   list the built-in model zoo / dump one as text\n"
        "  serve    persistent evaluation daemon (Unix socket and/or\n"
        "           TCP; a TCP listener is a sweep-fabric worker)\n"
        "  coordinate\n"
        "           distribute a pre sweep across serve workers\n"
        "  request  send one JSON request to a serve daemon\n"
        "  stats    scrape a serve daemon's metrics registry\n"
        "\n"
        "options:\n"
        "  --model <name>        zoo model (vgg16 resnet50 darknet19\n"
        "                        alexnet mobilenetv2 bert_base\n"
        "                        vit_b16) [resnet50]\n"
        "  --model-file <path>   text model description instead\n"
        "  --resolution <n>      input resolution (224 or 512; the\n"
        "                        sequence length for bert_base) [224]\n"
        "  --batch <n>           multiply every layer's batch [1]\n"
        "  --macs <n>            pre: required MAC units [2048]\n"
        "  --area <mm2>          pre: chiplet area budget [none]\n"
        "  --proportional        pre: memory proportional to compute\n"
        "  --edp                 optimise EDP instead of energy\n"
        "  --search <mode>       mapping search strategy: exhaustive,\n"
        "                        bnb (branch and bound; same winners,\n"
        "                        far fewer evaluations) or anneal\n"
        "                        (seeded simulated annealing,\n"
        "                        approximate) [exhaustive]\n"
        "  --anneal-seed <n>     anneal: RNG seed [1]\n"
        "  --anneal-iters <n>    anneal: moves per layer search [400]\n"
        "  --threads <n>         worker threads (1 = serial; results\n"
        "                        are identical) [hardware concurrency]\n"
        "  --chiplets/--cores/--lanes/--vector <n>\n"
        "                        post/compare hardware shape\n"
        "  --ol1/--al1/--wl1/--al2 <bytes>\n"
        "                        post/compare buffer sizes\n"
        "  --verify              post: replay the search winners\n"
        "                        through the coordinate-level verifier\n"
        "                        and fail on any analytical mismatch\n"
        "  --verify-budget <n>   post: unique mappings to replay,\n"
        "                        smallest layers first [4]\n"
        "  --json <path>         write a JSON report\n"
        "  --checkpoint <path>   pre: snapshot evaluated design\n"
        "                        points so an interrupted sweep can\n"
        "                        be resumed\n"
        "  --checkpoint-every <n>\n"
        "                        pre: flush the checkpoint every n\n"
        "                        completed points [32]\n"
        "  --resume <path>       pre: restore evaluated points from a\n"
        "                        checkpoint (same model and options)\n"
        "  --deadline <s>        stop gracefully after s seconds and\n"
        "                        report the partial result (exit 3)\n"
        "  --strict              pre: fail fast on the first poisoned\n"
        "                        design point instead of quarantining\n"
        "  --no-obs              omit run-dependent fields from JSON\n"
        "                        reports (stable, comparable bytes)\n"
        "  --socket <ep>         serve: Unix socket path to bind;\n"
        "                        request/stats: daemon endpoint (a\n"
        "                        socket path or host:port)\n"
        "  --tcp <host:port>     serve: also listen on TCP (\":0\"\n"
        "                        binds a kernel-assigned port)\n"
        "  --workers <eps>       pre/coordinate: comma-separated serve\n"
        "                        endpoints to shard the sweep across\n"
        "  --unit-points <n>     fabric: design points per leased work\n"
        "                        unit [auto]\n"
        "  --lease <s>           fabric: seconds before an unfinished\n"
        "                        unit is re-issued to another worker\n"
        "                        [60]\n"
        "  --timeout <s>         request/stats: per-I/O wall-clock\n"
        "                        budget [30]\n"
        "  --retries <n>         request: retry retryable failures up\n"
        "                        to n times with backoff; exit 4 when\n"
        "                        still failing retryably [0]\n"
        "  --cache-bytes <n>     serve: mapping-cache LRU capacity in\n"
        "                        bytes [268435456]\n"
        "  --max-inflight <n>    serve: refuse heavy requests beyond n\n"
        "                        evaluating concurrently with a\n"
        "                        retryable envelope [unlimited]\n"
        "  --request <json>      request: one JSON request line (reads\n"
        "                        stdin lines when omitted)\n"
        "  --slo-us <n>          serve: request-latency SLO; slower\n"
        "                        requests bump serve.slo.violations\n"
        "  --access-log <path>   serve: append one JSON line per\n"
        "                        request (docs/serving.md schema)\n"
        "  --flight-dump <path>  where a failed request or fatal\n"
        "                        signal dumps the flight recorder\n"
        "                        [serve: <socket>.flight.json]\n"
        "  --format <f>          stats: table, json or prom [table]\n"
        "  --progress[=secs]     pre: log points done/total, rate, ETA\n"
        "                        and cache/prune rates every period\n"
        "                        (and as dse.progress.* gauges) [5]\n"
        "  --trace <path>        write a Chrome trace-event JSON file\n"
        "                        (open in Perfetto / chrome://tracing)\n"
        "  --metrics             print the metrics table and per-phase\n"
        "                        profile to stderr at exit\n"
        "  --log-level <level>   debug, info, warn or quiet [info]\n");
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    if (argc < 2)
        return false;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string opt = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                throwStatus(errInvalidArgument(
                    "option %s needs a value", opt.c_str()));
            }
            return argv[++i];
        };
        const char *name = opt.c_str();
        if (opt == "--model") {
            args.model = next();
            args.modelExplicit = true;
        } else if (opt == "--model-file") {
            args.modelFile = next();
        } else if (opt == "--resolution") {
            args.resolution = parsePositiveInt(name, next()).value();
        } else if (opt == "--batch") {
            args.batch = parsePositiveInt(name, next()).value();
        } else if (opt == "--macs") {
            args.macs = parsePositiveInt64(name, next()).value();
        } else if (opt == "--area") {
            args.areaMm2 = parsePositiveDouble(name, next()).value();
        } else if (opt == "--proportional") {
            args.proportional = true;
        } else if (opt == "--edp") {
            args.edpObjective = true;
        } else if (opt == "--search") {
            const std::string mode = next();
            if (mode == "exhaustive") {
                args.searchMode = SearchMode::Exhaustive;
            } else if (mode == "bnb") {
                args.searchMode = SearchMode::Bnb;
            } else if (mode == "anneal") {
                args.searchMode = SearchMode::Anneal;
            } else {
                throwStatus(errInvalidArgument(
                    "--search expects exhaustive, bnb or anneal, "
                    "got '%s'",
                    mode.c_str()));
            }
        } else if (opt == "--anneal-seed") {
            args.annealSeed = static_cast<uint64_t>(
                parsePositiveInt64(name, next()).value());
        } else if (opt == "--anneal-iters") {
            args.annealIterations =
                parsePositiveInt(name, next()).value();
        } else if (opt == "--threads") {
            args.threads = parsePositiveInt(name, next()).value();
        } else if (opt == "--chiplets") {
            args.config.package.chiplets = parsePositiveInt(name, next()).value();
        } else if (opt == "--cores") {
            args.config.chiplet.cores = parsePositiveInt(name, next()).value();
        } else if (opt == "--lanes") {
            args.config.core.lanes = parsePositiveInt(name, next()).value();
        } else if (opt == "--vector") {
            args.config.core.vectorSize =
                parsePositiveInt(name, next()).value();
        } else if (opt == "--ol1") {
            args.config.core.ol1Bytes = parsePositiveInt64(name, next()).value();
        } else if (opt == "--al1") {
            args.config.core.al1Bytes = parsePositiveInt64(name, next()).value();
        } else if (opt == "--wl1") {
            args.config.core.wl1Bytes = parsePositiveInt64(name, next()).value();
        } else if (opt == "--al2") {
            args.config.chiplet.al2Bytes =
                parsePositiveInt64(name, next()).value();
        } else if (opt == "--json") {
            args.jsonPath = next();
        } else if (opt == "--checkpoint") {
            args.checkpointPath = next();
        } else if (opt == "--checkpoint-every") {
            args.checkpointEvery =
                parsePositiveInt(name, next()).value();
        } else if (opt == "--resume") {
            args.resumePath = next();
        } else if (opt == "--deadline") {
            args.deadlineSeconds =
                parsePositiveDouble(name, next()).value();
        } else if (opt == "--strict") {
            args.strict = true;
        } else if (opt == "--no-obs") {
            args.noObs = true;
        } else if (opt == "--socket") {
            args.socketPath = next();
        } else if (opt == "--tcp") {
            args.tcpAddress = next();
        } else if (opt == "--workers") {
            args.workersCsv = next();
        } else if (opt == "--unit-points") {
            args.unitPoints = parsePositiveInt64(name, next()).value();
        } else if (opt == "--lease") {
            args.leaseSeconds =
                parsePositiveDouble(name, next()).value();
        } else if (opt == "--timeout") {
            args.timeoutSeconds =
                parsePositiveDouble(name, next()).value();
        } else if (opt == "--retries") {
            args.retries = static_cast<int>(
                parsePositiveInt64(name, next()).value());
        } else if (opt == "--cache-bytes") {
            args.cacheBytes = parsePositiveInt64(name, next()).value();
        } else if (opt == "--max-inflight") {
            args.maxInflight = static_cast<int>(
                parsePositiveInt64(name, next()).value());
        } else if (opt == "--request") {
            args.requestBody = next();
        } else if (opt == "--slo-us") {
            args.sloUs = parsePositiveInt64(name, next()).value();
        } else if (opt == "--access-log") {
            args.accessLogPath = next();
        } else if (opt == "--flight-dump") {
            args.flightDumpPath = next();
        } else if (opt == "--format") {
            args.statsFormat = next();
            if (args.statsFormat != "table" &&
                args.statsFormat != "json" &&
                args.statsFormat != "prom") {
                throwStatus(errInvalidArgument(
                    "--format expects table, json or prom, got '%s'",
                    args.statsFormat.c_str()));
            }
        } else if (opt == "--progress") {
            args.progressSeconds = 5.0;
        } else if (opt.rfind("--progress=", 0) == 0) {
            args.progressSeconds =
                parsePositiveDouble("--progress",
                                    opt.c_str() + 11)
                    .value();
        } else if (opt == "--trace") {
            args.tracePath = next();
        } else if (opt == "--metrics") {
            args.metrics = true;
        } else if (opt == "--verify") {
            args.verify = true;
        } else if (opt == "--verify-budget") {
            args.verifyBudget = parsePositiveInt(name, next()).value();
        } else if (opt == "--log-level") {
            LogLevel level;
            const char *text = next();
            if (!parseLogLevel(text, level)) {
                throwStatus(errInvalidArgument(
                    "--log-level expects debug, info, warn or "
                    "quiet, got '%s'",
                    text));
            }
            setLogLevel(level);
        } else if (opt == "--help" || opt == "-h") {
            return false;
        } else {
            throwStatus(errInvalidArgument(
                "unknown option %s (try --help)", opt.c_str()));
        }
    }
    return true;
}

Model
loadModel(const Args &args)
{
    auto finish = [&](Model m) {
        if (args.batch > 1)
            m.scaleBatch(args.batch);
        return m;
    };
    if (!args.modelFile.empty())
        return finish(loadModelFile(args.modelFile).value());
    const std::string &n = args.model;
    const int res = args.resolution;
    if (n == "vgg16")
        return finish(makeVgg16(res));
    if (n == "resnet50")
        return finish(makeResNet50(res));
    if (n == "darknet19")
        return finish(makeDarkNet19(res));
    if (n == "alexnet")
        return finish(makeAlexNet(res));
    if (n == "mobilenetv2")
        return finish(makeMobileNetV2(res));
    if (n == "bert_base")
        return finish(makeBertBase(res));
    if (n == "vit_b16")
        return finish(makeVitB16(res));
    throwStatus(errInvalidArgument(
        "unknown model '%s' (try vgg16, resnet50, darknet19, alexnet, "
        "mobilenetv2, bert_base or vit_b16)",
        n.c_str()));
}

/**
 * Differentially verify the post-design search winners: replay the
 * cheapest unique (layer, mapping) pairs through the coordinate-level
 * interpreter and fail loudly if any analytical figure disagrees.  On
 * a mismatch the failing case is shrunk to a minimal reproducer
 * before reporting.
 */
int
runVerify(const Model &model, const PostDesignReport &report,
          const Args &args)
{
    struct Item
    {
        const ConvLayer *layer;
        const Mapping *mapping;
        int64_t volume;
    };
    std::vector<Item> items;
    std::set<std::string> seen;
    const std::vector<ConvLayer> &layers = model.layers();
    const size_t n = std::min(layers.size(), report.mappings.size());
    for (size_t i = 0; i < n; ++i) {
        const ConvLayer &l = layers[i];
        const Mapping &m = report.mappings[i].mapping;
        if (!seen.insert(l.toString() + "|" + m.toString()).second)
            continue; // repeated layer shape with the same winner
        items.push_back(
            {&l, &m,
             l.inputVolume() + l.weightVolume() + l.outputVolume()});
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const Item &a, const Item &b) {
                         return a.volume < b.volume;
                     });
    const size_t budget = std::min<size_t>(
        static_cast<size_t>(args.verifyBudget), items.size());

    for (size_t i = 0; i < budget; ++i) {
        const Item &it = items[i];
        const DifferentialReport diff = diffMapping(
            *it.layer, args.config, defaultTech(), *it.mapping);
        if (diff.ok()) {
            inform("verified %s against the replay interpreter",
                   it.layer->name.c_str());
            continue;
        }
        std::fprintf(stderr,
                     "VERIFY FAIL: layer %s mapping %s\n%s",
                     it.layer->toString().c_str(),
                     it.mapping->toString().c_str(),
                     diff.toString().c_str());
        DiffCase failing;
        failing.layer = *it.layer;
        failing.cfg = args.config;
        failing.mapping = *it.mapping;
        const DiffCase minimal = minimizeFailure(
            failing, [](const DiffCase &c) {
                return !diffMapping(c.layer, c.cfg, defaultTech(),
                                    c.mapping)
                            .ok();
            });
        std::fprintf(stderr, "minimal reproducer:\n%s",
                     minimal.toString().c_str());
        return 1;
    }
    std::printf("verify: %zu/%zu unique mappings replayed "
                "bit-identically (budget %d)\n",
                budget, items.size(), args.verifyBudget);
    return 0;
}

int
runPost(const Args &args)
{
    const Model model = loadModel(args);
    args.config.validate();
    SearchOptions search;
    search.threads = args.threads;
    search.mode = args.searchMode;
    search.annealSeed = args.annealSeed;
    search.annealIterations = args.annealIterations;
    search.detailedMetrics = args.metrics;
    PostDesignFlow flow(args.config, defaultTech(),
                        SearchEffort::Exhaustive,
                        args.edpObjective ? Objective::MinEdp
                                          : Objective::MinEnergy,
                        search);
    const PostDesignReport report = flow.run(model);
    std::printf("%s", report.toString().c_str());
    if (!args.jsonPath.empty()) {
        std::ofstream out(args.jsonPath);
        if (!out) {
            throwStatus(errUnavailable("cannot write %s",
                                       args.jsonPath.c_str()));
        }
        exportPostDesign(report, out,
                         args.noObs ? ExportOptions::lean()
                                    : ExportOptions{});
        std::printf("wrote %s\n", args.jsonPath.c_str());
    }
    if (args.verify) {
        if (!report.feasible) {
            throwStatus(errFailedPrecondition(
                "--verify needs a feasible mapping report"));
        }
        const int rc = runVerify(model, report, args);
        if (rc != 0)
            return rc;
    }
    return report.feasible ? 0 : 1;
}

int
runPre(const Args &args)
{
    const Model model = loadModel(args);
    DseOptions opt;
    opt.totalMacs = args.macs;
    opt.areaLimitMm2 = args.areaMm2;
    opt.proportionalMem = args.proportional;
    opt.effort = args.proportional ? SearchEffort::Fast
                                   : SearchEffort::Sketch;
    opt.objective = args.edpObjective ? Objective::MinEdp
                                      : Objective::MinEnergy;
    opt.searchMode = args.searchMode;
    opt.annealSeed = args.annealSeed;
    opt.annealIterations = args.annealIterations;
    opt.threads = args.threads;
    opt.detailedMetrics = args.metrics;
    opt.progressSeconds = args.progressSeconds;
    opt.strict = args.strict;
    opt.checkpointPath = args.checkpointPath;
    opt.checkpointEvery = args.checkpointEvery;
    opt.resumePath = args.resumePath;
    opt.cancel = &globalCancelToken();

    PreDesignReport report;
    if (!args.workersCsv.empty()) {
        // Distributed sweep: shard the same fingerprinted space
        // across serve workers.  The merged report is bit-identical
        // to the local path below (docs/distributed.md).
        fabric::FabricOptions fab;
        for (size_t at = 0; at < args.workersCsv.size();) {
            size_t comma = args.workersCsv.find(',', at);
            if (comma == std::string::npos)
                comma = args.workersCsv.size();
            if (comma > at)
                fab.workers.push_back(
                    args.workersCsv.substr(at, comma - at));
            at = comma + 1;
        }
        if (fab.workers.empty()) {
            throwStatus(errInvalidArgument(
                "--workers needs at least one endpoint"));
        }
        fab.unitPoints = args.unitPoints;
        fab.leaseSeconds = args.leaseSeconds;
        fabric::FabricStats fstats;
        report.sweep = fabric::coordinateSweep(model, opt,
                                               defaultTech(), fab,
                                               &fstats);
        if (auto best = report.sweep.bestEdp())
            report.recommended = report.sweep.points[*best];
        inform("fabric: %lld/%lld unit(s) completed remotely, "
               "%lld retries, %lld lease(s) expired, %lld worker(s) "
               "quarantined, %lld duplicate(s) dropped, %lld unit(s) "
               "evaluated locally",
               static_cast<long long>(fstats.unitsCompleted),
               static_cast<long long>(fstats.units),
               static_cast<long long>(fstats.retries),
               static_cast<long long>(fstats.leasesExpired),
               static_cast<long long>(fstats.workersQuarantined),
               static_cast<long long>(fstats.duplicateCompletions),
               static_cast<long long>(fstats.localFallbackUnits));
    } else {
        PreDesignFlow flow(opt);
        report = flow.run(model);
    }
    std::printf("%s", report.toString().c_str());
    if (!args.jsonPath.empty()) {
        std::ofstream out(args.jsonPath);
        if (!out) {
            throwStatus(errUnavailable("cannot write %s",
                                       args.jsonPath.c_str()));
        }
        exportPreDesign(report, out,
                        args.noObs ? ExportOptions::lean()
                                   : ExportOptions{});
        std::printf("wrote %s\n", args.jsonPath.c_str());
    }
    // A cut-short sweep still reports what it finished, but exits
    // with a distinct code so scripts can tell "partial" from both
    // success (0) and failure (1).
    if (!report.sweep.complete)
        return 3;
    return report.recommended ? 0 : 1;
}

int
runCompare(const Args &args)
{
    const Model model = loadModel(args);
    args.config.validate();
    const ComparisonReport r = compareWithSimba(model, args.config);
    std::printf("model %s on %s\n", r.modelName.c_str(),
                args.config.toString().c_str());
    std::printf("  simba : %s\n", r.simbaEnergy.toString().c_str());
    std::printf("  baton : %s\n", r.batonEnergy.toString().c_str());
    std::printf("  savings: %.1f%%\n", 100.0 * r.savings());
    return 0;
}

int
runModels(const Args &args)
{
    // Dump when a model was named explicitly — `--model resnet50`
    // must dump resnet50, not fall through to the summary table just
    // because the name matches the default.
    if (args.modelExplicit || !args.modelFile.empty()) {
        std::printf("%s", writeModelText(loadModel(args)).c_str());
        return 0;
    }
    for (const char *name : {"alexnet", "vgg16", "resnet50",
                             "darknet19", "mobilenetv2", "bert_base",
                             "vit_b16"}) {
        Args a = args;
        a.model = name;
        const Model m = loadModel(a);
        std::printf("%-12s %2zu layers, %7.2f GMACs, %6.2f M weights\n",
                    name, m.layers().size(),
                    static_cast<double>(m.totalMacs()) * 1e-9,
                    static_cast<double>(m.totalWeights()) * 1e-6);
    }
    return 0;
}

/**
 * Persistent evaluation daemon: bind the Unix socket and serve JSON
 * requests until a shutdown op or SIGINT/SIGTERM (see docs/serving.md
 * for the protocol).
 */
int
runServe(const Args &args)
{
    if (args.socketPath.empty() && args.tcpAddress.empty()) {
        throwStatus(errInvalidArgument(
            "serve needs --socket <path> and/or --tcp <host:port>"));
    }
    serve::ServerOptions opt;
    opt.socketPath = args.socketPath;
    opt.tcpAddress = args.tcpAddress;
    opt.threads = args.threads;
    opt.cancel = &globalCancelToken();
    opt.service.cacheBytes = args.cacheBytes;
    opt.service.maxInflight = args.maxInflight;
    opt.service.sloUs = args.sloUs;
    opt.service.accessLogPath = args.accessLogPath;
    // A daemon always has an on-error flight dump target so a failed
    // request leaves a postmortem behind without any extra flag.
    opt.service.flightDumpPath =
        !args.flightDumpPath.empty() ? args.flightDumpPath
        : !args.socketPath.empty()   ? args.socketPath + ".flight.json"
                                     : "nn-baton-serve.flight.json";
    serve::Server server(std::move(opt));
    throwIfError(server.start());
    // Stdout line so wrappers can wait for readiness; the resolved
    // TCP port matters for --tcp ":0" (kernel-assigned).
    std::string listening;
    if (!args.socketPath.empty())
        listening = args.socketPath;
    if (server.tcpPort() >= 0) {
        if (!listening.empty())
            listening += " and ";
        listening += strprintf("tcp port %d", server.tcpPort());
    }
    std::printf("nn-baton serve: listening on %s (%d lanes)\n",
                listening.c_str(), args.threads);
    std::fflush(stdout);
    const int64_t handled = server.run();
    inform("serve: handled %lld requests",
           static_cast<long long>(handled));
    return 0;
}

/**
 * One-shot client for the daemon: send --request (or every stdin
 * line) and print each response line.  Transport failures and
 * retryable {"ok":false,"retryable":true} envelopes (overload,
 * deadline) are retried --retries times with exponential backoff;
 * when they persist the exit code is 4, distinct from both success
 * (0) and a definitive error envelope (1), so wrappers can tell
 * "try again later" from "this request is wrong".
 */
int
runRequest(const Args &args)
{
    if (args.socketPath.empty()) {
        throwStatus(errInvalidArgument(
            "request needs --socket <endpoint>"));
    }
    LineChannel channel;
    BackoffPolicy policy;
    policy.maxRetries = args.retries;

    int rc = 0;
    auto roundTrip = [&](const std::string &request) {
        Backoff backoff(policy, /*seed=*/1);
        for (;;) {
            Status failure = Status::okStatus();
            std::string response;
            if (!channel.connected()) {
                StatusOr<LineChannel> fresh = connectLineChannel(
                    args.socketPath, args.timeoutSeconds);
                if (fresh.ok())
                    channel = std::move(fresh).value();
                else
                    failure = fresh.status();
            }
            if (failure.ok()) {
                failure = channel.sendLine(request,
                                           args.timeoutSeconds);
            }
            if (failure.ok()) {
                StatusOr<std::string> line =
                    channel.recvLine(args.timeoutSeconds);
                if (line.ok())
                    response = std::move(line).value();
                else
                    failure = line.status();
            }

            if (failure.ok()) {
                const bool envelope =
                    response.rfind("{\"ok\":false", 0) == 0;
                const bool retryable =
                    envelope && response.find("\"retryable\":true") !=
                                    std::string::npos;
                if (retryable && !backoff.exhausted()) {
                    warn("request: retryable failure (attempt %d): "
                         "%s",
                         backoff.attempts() + 1, response.c_str());
                    if (!sleepWithCancel(backoff.nextDelayMs(),
                                         &globalCancelToken())) {
                        rc = std::max(rc, 3);
                        return;
                    }
                    continue;
                }
                std::printf("%s\n", response.c_str());
                if (envelope)
                    rc = std::max(rc, retryable ? 4 : 1);
                return;
            }

            // Transport failure (refused, hung up, timed out): the
            // daemon may be restarting — retryable by definition.
            channel.close();
            if (backoff.exhausted()) {
                std::fprintf(stderr, "nn-baton: %s\n",
                             failure.toString().c_str());
                rc = std::max(rc, 4);
                return;
            }
            warn("request: %s (attempt %d); retrying",
                 failure.toString().c_str(), backoff.attempts() + 1);
            if (!sleepWithCancel(backoff.nextDelayMs(),
                                 &globalCancelToken())) {
                rc = std::max(rc, 3);
                return;
            }
        }
    };
    if (!args.requestBody.empty()) {
        roundTrip(args.requestBody);
    } else {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                roundTrip(line);
        }
    }
    return rc;
}

/**
 * Scrape a live daemon's metrics registry (the `metrics` op) and
 * render it as the metrics table, the raw JSON document, or the
 * Prometheus text exposition for a scrape endpoint to relay.
 */
int
runStats(const Args &args)
{
    if (args.socketPath.empty()) {
        throwStatus(
            errInvalidArgument("stats needs --socket <endpoint>"));
    }
    LineChannel channel =
        connectLineChannel(args.socketPath, args.timeoutSeconds)
            .value();
    throwIfError(
        channel.sendLine("{\"op\":\"metrics\"}", args.timeoutSeconds));
    const std::string response =
        channel.recvLine(args.timeoutSeconds).value();
    if (response.rfind("{\"ok\":false", 0) == 0) {
        std::fprintf(stderr, "nn-baton: %s\n", response.c_str());
        return 1;
    }
    if (args.statsFormat == "json") {
        std::printf("%s\n", response.c_str());
        return 0;
    }
    const JsonParseResult parsed = parseJson(response);
    if (!parsed.ok()) {
        throwStatus(errInternal("daemon sent malformed metrics: %s",
                                parsed.error.c_str()));
    }
    const obs::MetricsSnapshot snap =
        obs::metricsSnapshotFromJson(parsed.value).value();
    if (args.statsFormat == "prom")
        obs::writePrometheus(std::cout, snap);
    else
        std::fputs(obs::formatMetrics(snap).c_str(), stdout);
    return 0;
}

/** End-of-run observability output (--trace / --metrics). */
void
reportObservability(const Args &args)
{
    if (!args.tracePath.empty()) {
        obs::setTracingEnabled(false);
        std::ofstream out(args.tracePath);
        if (!out) {
            std::fprintf(stderr, "nn-baton: cannot write %s\n",
                         args.tracePath.c_str());
            return;
        }
        obs::writeChromeTrace(out);
        std::fprintf(stderr, "wrote trace to %s (open in Perfetto or "
                             "chrome://tracing)\n",
                     args.tracePath.c_str());
    }
    if (args.metrics) {
        const obs::ProfileReport profile = obs::buildProfile();
        if (!profile.empty())
            std::fputs(obs::formatProfile(profile).c_str(), stderr);
        std::fputs(
            obs::formatMetrics(
                obs::MetricsRegistry::instance().snapshot())
                .c_str(),
            stderr);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    try {
        if (!parseArgs(argc, argv, args)) {
            usage();
            return 2;
        }
    } catch (const StatusError &e) {
        std::fprintf(stderr, "nn-baton: %s\n",
                     e.status().message().c_str());
        return 2;
    }
    if (!args.tracePath.empty())
        obs::setTracingEnabled(true);

    // A fatal signal dumps the always-on flight recorder (recent
    // spans per thread) so even a crash leaves a postmortem.
    obs::installFlightSignalHandler(
        args.flightDumpPath.empty() ? "nn-baton.flight.json"
                                    : args.flightDumpPath.c_str());

    // One SIGINT/SIGTERM (or an expired --deadline) flips the global
    // cancel token; the flows poll it, finish in-flight work, flush
    // checkpoints and return a partial result.  A second signal kills
    // the process the usual way.
    installCancelSignalHandlers();
    if (args.deadlineSeconds > 0)
        globalCancelToken().setDeadlineAfter(args.deadlineSeconds);

    // Exit codes: 0 success, 1 error or infeasible, 2 usage,
    // 3 partial result (cancelled or past the deadline), 4 retryable
    // failure that persisted (request: daemon overloaded/unreachable
    // after --retries attempts).
    int rc = 2;
    try {
        if (args.command == "post")
            rc = runPost(args);
        else if (args.command == "pre")
            rc = runPre(args);
        else if (args.command == "coordinate") {
            if (args.workersCsv.empty()) {
                throwStatus(errInvalidArgument(
                    "coordinate needs --workers <ep,ep,...>"));
            }
            rc = runPre(args);
        }
        else if (args.command == "compare")
            rc = runCompare(args);
        else if (args.command == "models")
            rc = runModels(args);
        else if (args.command == "serve")
            rc = runServe(args);
        else if (args.command == "request")
            rc = runRequest(args);
        else if (args.command == "stats")
            rc = runStats(args);
        else {
            usage();
            return 2;
        }
    } catch (const StatusError &e) {
        // The library never exits; every error unwinds to here.
        std::fprintf(stderr, "nn-baton: %s\n", e.what());
        reportObservability(args); // still flush traces/metrics
        const StatusCode code = e.status().code();
        return (code == StatusCode::Cancelled ||
                code == StatusCode::DeadlineExceeded)
                   ? 3
                   : 1;
    }
    reportObservability(args);
    return rc;
}
