/**
 * @file
 * Golden regression corpus updater / checker.
 *
 * Regenerates pinned JSON snapshots of the bench-figure outputs
 * (table I and figures 7 / 10 / 12 / 15) from the library and diffs
 * them against the snapshots in tests/golden.  Every number
 * round-trips through
 * the JsonWriter's machine-stable formatting, so the comparison is
 * exact: any drift in the analytical models shows up as a failing
 * GoldenCorpus ctest entry with the JSON path of the first mismatch.
 *
 * Usage:
 *   golden_diff [--dir <path>] [--only <name>] [--update [--force]]
 *               [--list]
 *
 * --update refuses to overwrite a snapshot that exists and differs
 * unless --force is also given, printing the first drifting path it
 * would pin — re-pinning a golden number should never happen by
 * accident.
 *
 * Exit codes: 0 all snapshots match, 1 drift / missing snapshot /
 * refused update, 2 usage error.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baton/baton.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/status.hpp"
#include "dataflow/partition.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "simba/simba.hpp"
#include "tech/technology.hpp"

using namespace nnbaton;

namespace {

/** Near-square fh:fw ~ 1:1 split covering @p parts tiles (fig. 7). */
PlanarSplit
squareSplit(int parts)
{
    int fh = static_cast<int>(std::sqrt(static_cast<double>(parts)));
    while (parts % fh != 0)
        --fh;
    return {fh, parts / fh};
}

/** Stretched fh:fw ~ 1:4 split (fig. 7). */
PlanarSplit
rectSplit(int parts)
{
    int fh = static_cast<int>(std::sqrt(static_cast<double>(parts) / 4));
    fh = std::max(fh, 1);
    while (parts % fh != 0)
        --fh;
    return {fh, parts / fh};
}

PlanarSplit
clampSplit(PlanarSplit s, int ho, int wo)
{
    return {std::min(s.fh, ho), std::min(s.fw, wo)};
}

void
writeEnergy(JsonWriter &j, const EnergyBreakdown &e)
{
    j.beginObject();
    j.field("total", e.total());
    j.field("dram", e.dram);
    j.field("d2d", e.d2d);
    j.field("noc", e.noc);
    j.field("al2", e.al2);
    j.field("al1", e.al1);
    j.field("wl1", e.wl1);
    j.field("ol1", e.ol1);
    j.field("ol2", e.ol2);
    j.field("mac", e.mac);
    j.endObject();
}

/** Table I: per-operation energies and recomputed relative costs. */
void
genTable1(JsonWriter &j)
{
    const TechnologyModel &t = defaultTech();
    j.beginObject();
    j.key("energy_pj_per_bit").beginObject();
    j.field("dram", t.dramEnergyPerBit);
    j.field("d2d", t.d2dEnergyPerBit);
    j.field("l2_sram_32k", t.l2EnergyPerBitAt32K);
    j.field("l1_sram_1k", t.l1EnergyPerBitAt1K);
    j.field("rf_rmw", t.rfEnergyPerBitRmw);
    j.field("noc_hop", t.nocEnergyPerBit);
    j.endObject();
    j.field("mac_pj_per_op", t.macEnergyPerOp);
    // The paper's "relative cost" column recomputed from the anchors.
    j.key("relative_to_mac").beginObject();
    j.field("dram", t.dramEnergyPerBit / t.macEnergyPerOp);
    j.field("d2d", t.d2dEnergyPerBit / t.macEnergyPerOp);
    j.field("l2_sram_32k", t.l2EnergyPerBitAt32K / t.macEnergyPerOp);
    j.field("l1_sram_1k", t.l1EnergyPerBitAt1K / t.macEnergyPerOp);
    j.field("rf_rmw", t.rfEnergyPerBitRmw / t.macEnergyPerOp);
    j.endObject();
    j.key("area").beginObject();
    j.field("mac_um2", t.macAreaUm2);
    j.field("grs_phy_mm2", t.grsPhyAreaMm2);
    j.field("ddr_phy_mm2", t.ddrPhyAreaMm2);
    j.endObject();
    j.key("timing").beginObject();
    j.field("frequency_ghz", t.frequencyGhz);
    j.field("dram_bits_per_cycle", t.dramBitsPerCycle);
    j.field("d2d_bits_per_cycle", t.d2dBitsPerCycle);
    j.endObject();
    j.endObject();
}

/** Figure 7: halo redundancy of 1:1 vs 1:4 planar splits. */
void
genFig7(JsonWriter &j)
{
    const Model resnet = makeResNet50(512);
    const Model vgg = makeVgg16(512);
    const ConvLayer layers[] = {resnet.layer("conv1"),
                                vgg.layer("conv3")};
    j.beginObject();
    j.key("layers").beginArray();
    for (const ConvLayer &l : layers) {
        j.beginObject();
        j.field("name", l.name);
        j.field("kh", l.kh);
        j.field("kw", l.kw);
        j.field("stride", l.stride);
        j.field("ho", l.ho);
        j.field("wo", l.wo);
        j.key("rows").beginArray();
        for (int parts : {4, 16, 64, 256, 1024, 4096, 16384}) {
            const PlanarSplit sq =
                clampSplit(squareSplit(parts), l.ho, l.wo);
            const PlanarSplit re =
                clampSplit(rectSplit(parts), l.ho, l.wo);
            j.beginObject();
            j.field("tiles", parts);
            j.field("square_split", sq.toString());
            j.field("square_redundancy",
                    haloRedundancy(l.ho, l.wo, sq, l.kh, l.kw,
                                   l.stride));
            j.field("rect_split", re.toString());
            j.field("rect_redundancy",
                    haloRedundancy(l.ho, l.wo, re, l.kh, l.kw,
                                   l.stride));
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    j.endArray();
    j.endObject();
}

/** Figure 10: memory size vs energy / area linear fits. */
void
genFig10(JsonWriter &j)
{
    const TechnologyModel &t = defaultTech();
    j.beginObject();
    j.key("sram").beginArray();
    for (int kb : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
        const int64_t bytes = static_cast<int64_t>(kb) * 1024;
        j.beginObject();
        j.field("kb", kb);
        j.field("energy_pj_per_bit", t.sramEnergyPerBit(bytes));
        j.field("area_mm2", t.sramAreaMm2(bytes));
        j.endObject();
    }
    j.endArray();
    j.key("rf").beginArray();
    for (double kb : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0}) {
        j.beginObject();
        j.field("kb", kb);
        j.field("rmw_energy_pj_per_bit", t.rfEnergyPerBitRmw);
        j.field("area_mm2",
                t.rfAreaMm2(static_cast<int64_t>(kb * 1024)));
        j.endObject();
    }
    j.endArray();
    j.endObject();
}

/**
 * Figure 12: Simba baseline vs NN-Baton energy on the five
 * representative layers at 224 and 512 input resolution.  The search
 * runs at Fast effort so the corpus regenerates in seconds on one
 * core; the pinned numbers are absolute picojoules (the figure's
 * normalisation is a presentation detail).
 */
void
genFig12(JsonWriter &j)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    j.beginObject();
    j.key("resolutions").beginArray();
    for (int resolution : {224, 512}) {
        const RepresentativeLayers reps =
            representativeLayers(resolution);
        const struct
        {
            const ConvLayer *layer;
            const char *role;
        } cases[] = {
            {&reps.activationIntensive, "activation-intensive"},
            {&reps.weightIntensive, "weight-intensive"},
            {&reps.largeKernel, "large-kernel"},
            {&reps.pointWise, "point-wise"},
            {&reps.common, "common"},
        };
        j.beginObject();
        j.field("resolution", resolution);
        j.key("layers").beginArray();
        for (const auto &c : cases) {
            const SimbaLayerCost simba =
                simbaLayerCost(*c.layer, cfg, tech);
            const auto baton = searchLayer(*c.layer, cfg, tech,
                                           SearchEffort::Fast);
            if (!baton) {
                throwStatus(errInternal(
                    "fig12: no legal mapping for layer %s",
                    c.layer->name.c_str()));
            }
            j.beginObject();
            j.field("role", c.role);
            j.field("layer", c.layer->name);
            j.key("simba_energy_pj");
            writeEnergy(j, simba.energy);
            j.field("simba_cycles", simba.runtime.cycles);
            j.key("baton_energy_pj");
            writeEnergy(j, baton->energy);
            j.field("baton_cycles", baton->runtime.cycles);
            j.field("baton_mapping", baton->mapping.toString());
            j.field("normalized_total",
                    baton->energy.total() / simba.energy.total());
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    j.endArray();
    j.endObject();
}

/**
 * Figure 15 (reduced scale): the 4096-MAC table II sweep under the
 * 3 mm^2 chiplet-area budget for DarkNet19@224 only — the smallest of
 * the paper's three benchmarks, chosen so the corpus check stays
 * viable on a single core.  Pins the sweep statistics, deterministic
 * search counters, the per-chiplet-count point-cloud summary and the
 * recommended (min-EDP) design.
 */
void
genFig15(JsonWriter &j)
{
    const Model model = makeDarkNet19(224);
    DseOptions opt;
    opt.totalMacs = 4096;
    opt.areaLimitMm2 = 3.0;
    opt.effort = SearchEffort::Sketch;
    opt.objective = Objective::MinEdp;
    opt.threads = 1;
    const DseResult r = explore(model, opt, defaultTech());

    j.beginObject();
    j.field("model", model.name());
    j.field("resolution", model.inputResolution());
    j.key("sweep").beginObject();
    j.field("swept", r.swept);
    j.field("valid", static_cast<int64_t>(r.points.size()));
    j.field("area_rejected", r.areaRejected);
    j.field("infeasible", r.infeasible);
    j.endObject();
    j.key("search").beginObject();
    j.field("evaluated", r.search.evaluated);
    j.field("pruned", r.search.pruned);
    j.field("cache_hits", r.search.cacheHits);
    j.field("cache_misses", r.search.cacheMisses);
    j.field("cache_entries", r.cacheEntries);
    j.endObject();

    // The figure's colour classes: the valid cloud summarised per N_P.
    struct Class
    {
        int n = 0;
        double best_energy = 1e300;
        double best_runtime = 1e300;
    };
    std::map<int, Class> classes;
    for (const DesignPoint &p : r.points) {
        Class &c = classes[p.compute.chiplets];
        ++c.n;
        c.best_energy = std::min(c.best_energy, p.cost.energyMj());
        c.best_runtime = std::min(c.best_runtime, p.runtimeMs());
    }
    j.key("classes").beginArray();
    for (const auto &[np, c] : classes) {
        j.beginObject();
        j.field("chiplets", np);
        j.field("valid_points", c.n);
        j.field("best_energy_mj", c.best_energy);
        j.field("best_runtime_ms", c.best_runtime);
        j.endObject();
    }
    j.endArray();
    if (auto best = r.bestEdp()) {
        const DesignPoint &p = r.points[*best];
        j.key("optimum").beginObject();
        j.field("design", p.toString());
        j.field("energy_mj", p.cost.energyMj());
        j.field("runtime_ms", p.runtimeMs());
        j.field("edp", p.edp());
        j.endObject();
    }
    j.endObject();
}

/**
 * Energy writer for the transformer datasets: same fields as
 * writeEnergy plus the vector-ALU term (softmax post-ops).  The conv
 * corpora keep the original writer so their snapshots stay bitwise
 * stable — the object-size-exact diff would flag a new key as drift.
 */
void
writeEnergyWithVector(JsonWriter &j, const EnergyBreakdown &e)
{
    j.beginObject();
    j.field("total", e.total());
    j.field("dram", e.dram);
    j.field("d2d", e.d2d);
    j.field("noc", e.noc);
    j.field("al2", e.al2);
    j.field("al1", e.al1);
    j.field("wl1", e.wl1);
    j.field("ol1", e.ol1);
    j.field("ol2", e.ol2);
    j.field("mac", e.mac);
    j.field("vector", e.vector);
    j.endObject();
}

/** Per-layer search pin shared by the two transformer datasets. */
void
writeLayerChoice(JsonWriter &j, const ConvLayer &layer,
                 const AcceleratorConfig &cfg,
                 const TechnologyModel &tech)
{
    const auto choice = searchLayer(layer, cfg, tech, SearchEffort::Fast);
    if (!choice) {
        throwStatus(errInternal("no legal mapping for layer %s",
                                layer.name.c_str()));
    }
    j.beginObject();
    j.field("layer", layer.toString());
    j.field("macs", layer.macs());
    j.field("vector_ops", layer.vectorOps());
    j.key("energy_pj");
    writeEnergyWithVector(j, choice->energy);
    j.field("cycles", choice->runtime.cycles);
    j.field("mapping", choice->mapping.toString());
    j.endObject();
}

/** Whole-model mapping pin: totals plus deterministic counters. */
void
writeModelMapping(JsonWriter &j, const Model &model,
                  const AcceleratorConfig &cfg,
                  const TechnologyModel &tech)
{
    const ModelMappingResult r =
        mapModel(model, cfg, tech, SearchEffort::Fast);
    if (!r.feasible) {
        throwStatus(errInternal("model %s is infeasible",
                                model.name().c_str()));
    }
    j.beginObject();
    j.field("layers", static_cast<int64_t>(model.layers().size()));
    j.field("macs", model.totalMacs());
    j.field("weights", model.totalWeights());
    j.key("energy_pj");
    writeEnergyWithVector(j, r.cost.energy);
    j.field("cycles", r.cost.cycles);
    j.key("search").beginObject();
    j.field("evaluated", r.stats.evaluated);
    j.field("pruned", r.stats.pruned);
    j.field("cache_hits", r.stats.cacheHits);
    j.field("cache_misses", r.stats.cacheMisses);
    j.endObject();
    j.endObject();
}

/**
 * BERT-base encoder pin: the six distinct GEMMs of one encoder block
 * (the other eleven encoders repeat these shapes exactly — the
 * whole-model counters pin that the cache sees them as repeats), on
 * the paper's case-study hardware at sequence length 128.
 */
void
genBertEncoder(JsonWriter &j)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const Model bert = makeBertBase(128);
    j.beginObject();
    j.field("model", bert.name());
    j.field("sequence", bert.inputResolution());
    j.key("encoder_layers").beginArray();
    for (const char *suffix : {"_attn_qkv", "_attn_scores", "_attn_ctx",
                               "_attn_proj", "_ffn1", "_ffn2"}) {
        writeLayerChoice(j, bert.layer("enc1" + std::string(suffix)),
                         cfg, tech);
    }
    j.endArray();
    j.key("model_mapping");
    writeModelMapping(j, bert, cfg, tech);
    j.endObject();
}

/**
 * ViT-B/16 pin: the 16x16-stride patch-embedding convolution, one
 * encoder's GEMMs (197-token sequence — prime, so the GEMM plane
 * degenerates to 1x197), the classifier head, and a batch-4 variant
 * of the softmax-carrying scores GEMM to pin the batch accounting.
 */
void
genVit(JsonWriter &j)
{
    const AcceleratorConfig cfg = caseStudyConfig();
    const TechnologyModel &tech = defaultTech();
    const Model vit = makeVitB16(224);
    j.beginObject();
    j.field("model", vit.name());
    j.field("resolution", vit.inputResolution());
    j.key("layers").beginArray();
    for (const char *name : {"patch_embed", "enc1_attn_qkv",
                             "enc1_attn_scores", "enc1_attn_ctx",
                             "enc1_attn_proj", "enc1_ffn1", "enc1_ffn2",
                             "head"}) {
        writeLayerChoice(j, vit.layer(name), cfg, tech);
    }
    j.endArray();
    ConvLayer batched = vit.layer("enc1_attn_scores");
    batched.batch *= 4;
    batched.validate();
    j.key("scores_batch4");
    writeLayerChoice(j, batched, cfg, tech);
    j.key("model_mapping");
    writeModelMapping(j, vit, cfg, tech);
    j.endObject();
}

struct Dataset
{
    const char *name;
    void (*generate)(JsonWriter &);
};

const Dataset kDatasets[] = {
    {"table1", genTable1},
    {"fig7", genFig7},
    {"fig10", genFig10},
    {"fig12", genFig12},
    {"fig15", genFig15},
    {"bert_encoder", genBertEncoder},
    {"vit", genVit},
};

std::string
generate(const Dataset &d)
{
    std::ostringstream os;
    JsonWriter j(os);
    d.generate(j);
    os << "\n";
    return os.str();
}

/** Recursive exact comparison; returns the path of the first diff. */
bool
diffValues(const JsonValue &golden, const JsonValue &fresh,
           const std::string &path, std::string *where)
{
    if (golden.type != fresh.type) {
        *where = path + ": type mismatch";
        return false;
    }
    switch (golden.type) {
    case JsonValue::Type::Null:
        return true;
    case JsonValue::Type::Bool:
        if (golden.boolean != fresh.boolean) {
            *where = strprintf("%s: %s != %s", path.c_str(),
                               golden.boolean ? "true" : "false",
                               fresh.boolean ? "true" : "false");
            return false;
        }
        return true;
    case JsonValue::Type::Number:
        // Exact: both sides round-trip the writer's %.9g formatting.
        if (golden.number != fresh.number) {
            *where = strprintf("%s: %.17g != %.17g", path.c_str(),
                               golden.number, fresh.number);
            return false;
        }
        return true;
    case JsonValue::Type::String:
        if (golden.string != fresh.string) {
            *where =
                strprintf("%s: \"%s\" != \"%s\"", path.c_str(),
                          golden.string.c_str(), fresh.string.c_str());
            return false;
        }
        return true;
    case JsonValue::Type::Array:
        if (golden.array.size() != fresh.array.size()) {
            *where = strprintf("%s: array size %zu != %zu",
                               path.c_str(), golden.array.size(),
                               fresh.array.size());
            return false;
        }
        for (size_t i = 0; i < golden.array.size(); ++i)
            if (!diffValues(golden.array[i], fresh.array[i],
                            strprintf("%s[%zu]", path.c_str(), i),
                            where))
                return false;
        return true;
    case JsonValue::Type::Object:
        if (golden.object.size() != fresh.object.size()) {
            *where = strprintf("%s: object size %zu != %zu",
                               path.c_str(), golden.object.size(),
                               fresh.object.size());
            return false;
        }
        for (size_t i = 0; i < golden.object.size(); ++i) {
            if (golden.object[i].first != fresh.object[i].first) {
                *where = strprintf(
                    "%s: key \"%s\" != \"%s\"", path.c_str(),
                    golden.object[i].first.c_str(),
                    fresh.object[i].first.c_str());
                return false;
            }
            if (!diffValues(golden.object[i].second,
                            fresh.object[i].second,
                            path + "." + golden.object[i].first,
                            where))
                return false;
        }
        return true;
    }
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: golden_diff [--dir <path>] [--only <name>] "
        "[--update [--force]] [--list]\n"
        "  --dir <path>   golden corpus directory "
        "(default tests/golden)\n"
        "  --only <name>  restrict to one dataset\n"
        "  --update       rewrite the snapshots instead of checking\n"
        "  --force        allow --update to overwrite a snapshot "
        "that differs\n"
        "  --list         print the dataset names and exit\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
try {
    std::string dir = "tests/golden";
    std::string only;
    bool update = false;
    bool force = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--only" && i + 1 < argc) {
            only = argv[++i];
        } else if (arg == "--update") {
            update = true;
        } else if (arg == "--force") {
            force = true;
        } else if (arg == "--list") {
            for (const Dataset &d : kDatasets)
                std::printf("%s\n", d.name);
            return 0;
        } else {
            std::fprintf(stderr, "golden_diff: unknown argument %s\n",
                         arg.c_str());
            return usage();
        }
    }
    if (!only.empty()) {
        bool known = false;
        for (const Dataset &d : kDatasets)
            known = known || only == d.name;
        if (!known) {
            std::fprintf(stderr, "golden_diff: unknown dataset %s\n",
                         only.c_str());
            return usage();
        }
    }

    int failures = 0;
    for (const Dataset &d : kDatasets) {
        if (!only.empty() && only != d.name)
            continue;
        const std::string path = dir + "/" + d.name + ".json";
        const std::string fresh = generate(d);

        if (update) {
            // Re-pinning an existing, differing snapshot needs
            // --force: print the drift that is about to be pinned so
            // the update is a reviewed decision, not an accident.
            std::ifstream existing(path);
            if (existing) {
                std::ostringstream buf;
                buf << existing.rdbuf();
                const JsonParseResult golden = parseJson(buf.str());
                const JsonParseResult current = parseJson(fresh);
                std::string where = "snapshot unparsable";
                const bool same =
                    golden.ok() && current.ok() &&
                    diffValues(golden.value, current.value, d.name,
                               &where);
                if (same) {
                    std::printf("unchanged %s\n", path.c_str());
                    continue;
                }
                if (!force) {
                    std::fprintf(
                        stderr,
                        "REFUSED %s: snapshot exists and differs "
                        "(%s)\n"
                        "        re-run with --update --force to pin "
                        "the new numbers\n",
                        d.name, where.c_str());
                    ++failures;
                    continue;
                }
                std::printf("pinning %s: %s\n", d.name, where.c_str());
            }
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "golden_diff: cannot write %s\n",
                             path.c_str());
                return 1;
            }
            out << fresh;
            std::printf("updated %s\n", path.c_str());
            continue;
        }

        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr,
                         "FAIL %s: missing snapshot %s (run "
                         "golden_diff --update)\n",
                         d.name, path.c_str());
            ++failures;
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();

        const JsonParseResult golden = parseJson(buf.str());
        if (!golden.ok()) {
            std::fprintf(stderr, "FAIL %s: snapshot unparsable: %s\n",
                         d.name, golden.error.c_str());
            ++failures;
            continue;
        }
        const JsonParseResult current = parseJson(fresh);
        if (!current.ok()) {
            std::fprintf(stderr,
                         "golden_diff: generated invalid JSON for "
                         "%s: %s\n",
                         d.name, current.error.c_str());
            return 1;
        }

        std::string where;
        if (diffValues(golden.value, current.value, d.name, &where)) {
            std::printf("ok   %s\n", d.name);
        } else {
            std::fprintf(stderr,
                         "FAIL %s: drift at %s\n"
                         "     review, then re-pin with golden_diff "
                         "--update\n",
                         d.name, where.c_str());
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
} catch (const StatusError &e) {
    std::fprintf(stderr, "golden_diff: %s\n", e.what());
    return 1;
}
