/**
 * @file
 * 16 nm technology model: per-operation energies (paper table I),
 * linear SRAM/RF size-to-energy/area fits (paper figure 10), MAC and
 * PHY area, and bandwidth/frequency parameters for the runtime
 * simulator.
 *
 * Every constant is a named, overridable field so the model can be
 * recalibrated; defaults reproduce the paper's published anchors.
 */

#ifndef NNBATON_TECH_TECHNOLOGY_HPP
#define NNBATON_TECH_TECHNOLOGY_HPP

#include <cstdint>
#include <string>

namespace nnbaton {

/**
 * Linear model y = offset + slope * x fitted through published anchor
 * points (figure 10 shows SRAM/RF overheads are approximately linear
 * in size).
 */
struct LinearFit
{
    double offset = 0.0;
    double slope = 0.0;

    double operator()(double x) const { return offset + slope * x; }
};

/**
 * The 16 nm multichip technology model.
 *
 * Energies are picojoules, areas square millimetres, sizes bytes
 * unless stated otherwise.
 */
struct TechnologyModel
{
    /// @name Table I anchors (pJ/bit unless noted)
    /// @{
    double dramEnergyPerBit = 8.75;   //!< DRAM access via DDR PHY
    double d2dEnergyPerBit = 1.17;    //!< GRS die-to-die link (pair of PHYs)
    double l2EnergyPerBitAt32K = 0.81;  //!< 32 KB SRAM access
    double l1EnergyPerBitAt1K = 0.3;    //!< 1 KB SRAM access
    double rfEnergyPerBitRmw = 0.104;   //!< register read-modify-write
    double macEnergyPerOp = 0.024;      //!< 8-bit MAC, pJ/op
    /// @}

    /** Vector-ALU element operation (pJ/op) for post-MAC passes such
     *  as the softmax in attention scores.  Scaled from the MAC
     *  anchor: an 8-bit exp/normalise step costs roughly twice a MAC
     *  on the same datapath (not in table I, documented in
     *  DESIGN.md). */
    double vectorOpEnergyPerOp = 0.05;

    /** On-chip NoC hop energy (pJ/bit) for Simba-style psum routing;
     *  set to the 32 KB L2 access cost since each hop traverses the
     *  router buffering (not in table I, documented in DESIGN.md). */
    double nocEnergyPerBit = 0.81;

    /// @name Figure 10 linear fits
    /// SRAM access energy grows linearly with macro size; the fit runs
    /// through the two published anchors (1 KB -> 0.3, 32 KB -> 0.81).
    /// @{

    /** SRAM access energy (pJ/bit) as a function of macro size in KB. */
    LinearFit sramEnergyPerBitKb{0.28355, 0.016452};

    /** SRAM macro area (mm^2) as a function of size in KB.
     *  ~0.4 mm^2/MB 16 nm-class density plus a fixed periphery term,
     *  calibrated so the paper's area-constraint boundaries (figures
     *  14-15) reproduce; see DESIGN.md. */
    LinearFit sramAreaMm2Kb{0.002, 0.0004};

    /** RF (register) area (mm^2) per KB — denser logic but flop-based,
     *  roughly 4x SRAM cost per bit. */
    LinearFit rfAreaMm2Kb{0.0005, 0.0016};
    /// @}

    /// @name Compute and PHY area
    /// @{
    double macAreaUm2 = 135.1;   //!< one 8-bit MAC (paper section V-A)
    double grsPhyAreaMm2 = 0.38; //!< GRS D2D PHY macro per chiplet
    double ddrPhyAreaMm2 = 1.0;  //!< DDR PHY per chiplet (off-chip ifc)
    /// @}

    /// @name Timing
    /// @{
    double frequencyGhz = 0.5;      //!< core clock (500 MHz)
    int dramBitsPerCycle = 256;     //!< per-chiplet DRAM bandwidth (16 GB/s)
    int d2dBitsPerCycle = 128;      //!< per-link ring (GRS) bandwidth
    /// @}

    /// @name Datapath widths
    /// @{
    int dataBits = 8;  //!< activations and weights
    int psumBits = 24; //!< partial-sum accumulator width
    /// @}

    /** SRAM access energy in pJ/bit for a macro of @p bytes. */
    double sramEnergyPerBit(int64_t bytes) const;

    /** SRAM macro area in mm^2 for @p bytes. */
    double sramAreaMm2(int64_t bytes) const;

    /** Register-file area in mm^2 for @p bytes. */
    double rfAreaMm2(int64_t bytes) const;

    /** Area of @p count MAC units in mm^2. */
    double macAreaMm2(int64_t count) const;

    /** Nanoseconds for @p cycles at the configured frequency. */
    double cyclesToNs(int64_t cycles) const;

    /**
     * A 64-bit digest of every parameter a mapping evaluation can
     * depend on: the table I energy anchors, the SRAM/RF linear fits,
     * frequency, bandwidths and datapath widths.  Two models that
     * differ in any of these produce different fingerprints, so a
     * cache keyed on the fingerprint can never serve a result
     * computed under different technology assumptions
     * (MappingCache::Key folds this in).  Area parameters are
     * included too: they cost nothing and keep the digest total.
     */
    uint64_t fingerprint() const;

    /** Pretty-print table I from the model for the bench harness. */
    std::string tableOneString() const;
};

/** The default 16 nm model used throughout the evaluation. */
const TechnologyModel &defaultTech();

} // namespace nnbaton

#endif // NNBATON_TECH_TECHNOLOGY_HPP
