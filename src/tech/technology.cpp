#include "tech/technology.hpp"

#include <cstring>
#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace nnbaton {

double
TechnologyModel::sramEnergyPerBit(int64_t bytes) const
{
    if (bytes <= 0)
        panic("sramEnergyPerBit: non-positive size %lld",
              static_cast<long long>(bytes));
    return sramEnergyPerBitKb(static_cast<double>(bytes) / 1024.0);
}

double
TechnologyModel::sramAreaMm2(int64_t bytes) const
{
    return sramAreaMm2Kb(static_cast<double>(bytes) / 1024.0);
}

double
TechnologyModel::rfAreaMm2(int64_t bytes) const
{
    return rfAreaMm2Kb(static_cast<double>(bytes) / 1024.0);
}

double
TechnologyModel::macAreaMm2(int64_t count) const
{
    return static_cast<double>(count) * macAreaUm2 * 1e-6;
}

double
TechnologyModel::cyclesToNs(int64_t cycles) const
{
    return static_cast<double>(cycles) / frequencyGhz;
}

uint64_t
TechnologyModel::fingerprint() const
{
    // FNV-1a over the raw bit patterns, so models differing by even
    // one ULP in any parameter fingerprint differently.  Field order
    // is fixed; appending new fields keeps old digests distinct.
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    const auto mixDouble = [&](double v) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    mixDouble(dramEnergyPerBit);
    mixDouble(d2dEnergyPerBit);
    mixDouble(l2EnergyPerBitAt32K);
    mixDouble(l1EnergyPerBitAt1K);
    mixDouble(rfEnergyPerBitRmw);
    mixDouble(macEnergyPerOp);
    mixDouble(nocEnergyPerBit);
    mixDouble(sramEnergyPerBitKb.offset);
    mixDouble(sramEnergyPerBitKb.slope);
    mixDouble(sramAreaMm2Kb.offset);
    mixDouble(sramAreaMm2Kb.slope);
    mixDouble(rfAreaMm2Kb.offset);
    mixDouble(rfAreaMm2Kb.slope);
    mixDouble(macAreaUm2);
    mixDouble(grsPhyAreaMm2);
    mixDouble(ddrPhyAreaMm2);
    mixDouble(frequencyGhz);
    mix(static_cast<uint64_t>(dramBitsPerCycle) << 32 |
        static_cast<uint32_t>(d2dBitsPerCycle));
    mix(static_cast<uint64_t>(dataBits) << 32 |
        static_cast<uint32_t>(psumBits));
    mixDouble(vectorOpEnergyPerOp);
    return h;
}

std::string
TechnologyModel::tableOneString() const
{
    TextTable t({"Operation", "Energy (pJ/bit)", "Relative cost"});
    auto rel = [&](double e) { return e / macEnergyPerOp; };
    t.newRow().add("DRAM access").add(dramEnergyPerBit, 2)
        .add(rel(dramEnergyPerBit), 2);
    t.newRow().add("Die-to-die communication").add(d2dEnergyPerBit, 2)
        .add(rel(d2dEnergyPerBit), 2);
    t.newRow().add("L2 access (32KB SRAM)")
        .add(sramEnergyPerBit(32 * 1024), 2)
        .add(rel(sramEnergyPerBit(32 * 1024)), 2);
    t.newRow().add("L1 access (1KB SRAM)").add(sramEnergyPerBit(1024), 2)
        .add(rel(sramEnergyPerBit(1024)), 2);
    t.newRow().add("Register read-modify-write").add(rfEnergyPerBitRmw, 3)
        .add(rel(rfEnergyPerBitRmw), 2);
    t.newRow().add("8bit MAC (pJ/op)").add(macEnergyPerOp, 3).add(1.0, 2);

    std::ostringstream ss;
    t.print(ss);
    return ss.str();
}

const TechnologyModel &
defaultTech()
{
    static const TechnologyModel tech;
    return tech;
}

} // namespace nnbaton
