#include "serve/server.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "common/net.hpp"
#include "common/parallel.hpp"

namespace nnbaton {
namespace serve {

namespace {

/** Make the service options point at the server's stop token. */
ServiceOptions
withStop(ServiceOptions service, const CancelToken *stop)
{
    service.stop = stop;
    return service;
}

/** Write all of @p data, tolerating short writes; false on error. */
bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a client hanging up mid-response must error,
        // not SIGPIPE the daemon.
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(withStop(options_.service, &stopToken_))
{
    stopToken_.linkParent(options_.cancel);
}

Server::~Server()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(options_.socketPath.c_str());
    }
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
}

Status
Server::start()
{
    if (options_.socketPath.empty() && options_.tcpAddress.empty()) {
        return errInvalidArgument(
            "serve needs a Unix socket path and/or a TCP address");
    }
    if (!options_.socketPath.empty()) {
        Status s = startUnix();
        if (!s.ok())
            return s;
    }
    if (!options_.tcpAddress.empty()) {
        Status s = startTcp();
        if (!s.ok())
            return s;
    }
    return Status::okStatus();
}

Status
Server::startUnix()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.empty() ||
        options_.socketPath.size() >= sizeof(addr.sun_path)) {
        return errInvalidArgument(
            "socket path must be 1..%zu bytes, got %zu",
            sizeof(addr.sun_path) - 1, options_.socketPath.size());
    }
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
        return errUnavailable("socket: %s", std::strerror(errno));
    }
    // Replace a stale socket file from a previous run; a live daemon
    // on the same path loses its endpoint, so deployments give each
    // daemon its own path.
    ::unlink(options_.socketPath.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return errUnavailable("bind %s: %s",
                              options_.socketPath.c_str(),
                              std::strerror(err));
    }
    if (::listen(fd, 128) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(options_.socketPath.c_str());
        return errUnavailable("listen %s: %s",
                              options_.socketPath.c_str(),
                              std::strerror(err));
    }
    listenFd_ = fd;
    return Status::okStatus();
}

Status
Server::startTcp()
{
    StatusOr<Endpoint> parsed = parseEndpoint(options_.tcpAddress);
    if (!parsed.ok())
        return parsed.status();
    const Endpoint &ep = parsed.value();
    if (!ep.tcp) {
        return errInvalidArgument(
            "--tcp needs \"host:port\" or \":port\", got '%s'",
            options_.tcpAddress.c_str());
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(ep.port));
    const char *host =
        ep.host == "localhost" ? "127.0.0.1" : ep.host.c_str();
    if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
        return errInvalidArgument(
            "--tcp host '%s': expected a dotted-quad IPv4 address",
            ep.host.c_str());
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0)
        return errUnavailable("socket: %s", std::strerror(errno));
    // Restarted workers rebind the same port without waiting out
    // TIME_WAIT; the coordinator retries connect anyway.
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return errUnavailable("bind %s: %s",
                              options_.tcpAddress.c_str(),
                              std::strerror(err));
    }
    if (::listen(fd, 128) != 0) {
        const int err = errno;
        ::close(fd);
        return errUnavailable("listen %s: %s",
                              options_.tcpAddress.c_str(),
                              std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0) {
        tcpPort_ = ntohs(bound.sin_port);
    }
    tcpFd_ = fd;
    return Status::okStatus();
}

int64_t
Server::run()
{
    if (listenFd_ < 0 && tcpFd_ < 0)
        throwStatus(errFailedPrecondition("run() before start()"));
    const int lanes = options_.threads < 1 ? 1 : options_.threads;
    ThreadPool pool(lanes);
    // Every lane (workers + this thread) runs an accept loop until
    // the stop token fires; requests on different connections are
    // thus answered concurrently on the common/parallel pool.
    pool.parallelFor(lanes, [this](int64_t) { acceptLoop(); });
    return service_.requestsHandled();
}

void
Server::requestStop()
{
    stopToken_.requestCancel();
}

bool
Server::stopped() const
{
    return stopToken_.cancelled();
}

void
Server::acceptLoop()
{
    // One lane polls every configured listener (Unix and/or TCP);
    // whichever becomes readable first wins the accept race.
    pollfd fds[2];
    int nfds = 0;
    if (listenFd_ >= 0)
        fds[nfds++].fd = listenFd_;
    if (tcpFd_ >= 0)
        fds[nfds++].fd = tcpFd_;

    while (!stopped()) {
        for (int i = 0; i < nfds; ++i) {
            fds[i].events = POLLIN;
            fds[i].revents = 0;
        }
        const int ready = ::poll(fds, static_cast<nfds_t>(nfds),
                                 options_.pollMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: %s", std::strerror(errno));
            return;
        }
        if (ready == 0)
            continue;
        for (int i = 0; i < nfds; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            const int fd = ::accept(fds[i].fd, nullptr, nullptr);
            if (fd < 0) {
                // Another lane won the race for this connection.
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR || errno == ECONNABORTED)
                    continue;
                warn("serve: accept: %s", std::strerror(errno));
                return;
            }
            handleConnection(fd);
            ::close(fd);
        }
    }
}

void
Server::handleConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    while (!stopped()) {
        // Poll with a timeout so an idle connection cannot pin the
        // lane past a stop request.
        pollfd p{};
        p.fd = fd;
        p.events = POLLIN;
        const int ready = ::poll(&p, 1, options_.pollMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (ready == 0)
            continue;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (n == 0)
            return; // client closed
        buffer.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            HandleResult result = service_.handleLine(line);
            if (result.dropConnection) {
                // Injected transport fault: behave like a crash —
                // no response bytes, connection torn down, and for
                // the kill flavour the whole server goes with it.
                if (result.shutdown)
                    requestStop();
                return;
            }
            result.response.push_back('\n');
            if (!writeAll(fd, result.response))
                return;
            if (result.shutdown) {
                requestStop();
                return;
            }
        }
    }
}

} // namespace serve
} // namespace nnbaton
