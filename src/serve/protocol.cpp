#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "common/json.hpp"

namespace nnbaton {
namespace serve {

namespace {

/** A JSON number that is an exact positive integer within range. */
StatusOr<int64_t>
positiveInt(const std::string &name, const JsonValue &v)
{
    if (!v.isNumber()) {
        return errInvalidArgument("'%s' must be a number",
                                  name.c_str());
    }
    const double d = v.number;
    if (d <= 0 || d != std::floor(d) || d > 9.007199254740992e15) {
        return errInvalidArgument(
            "'%s' must be a positive integer, got %g", name.c_str(), d);
    }
    return static_cast<int64_t>(d);
}

/** A JSON number that is an exact integer >= 0. */
StatusOr<int64_t>
nonNegativeInt(const std::string &name, const JsonValue &v)
{
    if (!v.isNumber()) {
        return errInvalidArgument("'%s' must be a number",
                                  name.c_str());
    }
    const double d = v.number;
    if (d < 0 || d != std::floor(d) || d > 9.007199254740992e15) {
        return errInvalidArgument(
            "'%s' must be a non-negative integer, got %g",
            name.c_str(), d);
    }
    return static_cast<int64_t>(d);
}

StatusOr<int>
positiveInt32(const std::string &name, const JsonValue &v)
{
    StatusOr<int64_t> wide = positiveInt(name, v);
    if (!wide.ok())
        return wide.status();
    if (wide.value() > 0x7fffffff) {
        return errInvalidArgument("'%s' out of int range",
                                  name.c_str());
    }
    return static_cast<int>(wide.value());
}

StatusOr<double>
positiveDouble(const std::string &name, const JsonValue &v)
{
    if (!v.isNumber() || v.number <= 0 || !std::isfinite(v.number)) {
        return errInvalidArgument(
            "'%s' must be a positive finite number", name.c_str());
    }
    return v.number;
}

Status
parseConfig(const JsonValue &v, AcceleratorConfig &cfg)
{
    if (!v.isObject())
        return errInvalidArgument("'config' must be an object");
    for (const auto &[key, value] : v.object) {
        if (key == "chiplets") {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            cfg.package.chiplets = n.value();
        } else if (key == "cores") {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            cfg.chiplet.cores = n.value();
        } else if (key == "lanes") {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            cfg.core.lanes = n.value();
        } else if (key == "vectorSize") {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            cfg.core.vectorSize = n.value();
        } else if (key == "ol1Bytes") {
            StatusOr<int64_t> n = positiveInt(key, value);
            if (!n.ok())
                return n.status();
            cfg.core.ol1Bytes = n.value();
        } else if (key == "al1Bytes") {
            StatusOr<int64_t> n = positiveInt(key, value);
            if (!n.ok())
                return n.status();
            cfg.core.al1Bytes = n.value();
        } else if (key == "wl1Bytes") {
            StatusOr<int64_t> n = positiveInt(key, value);
            if (!n.ok())
                return n.status();
            cfg.core.wl1Bytes = n.value();
        } else if (key == "al2Bytes") {
            StatusOr<int64_t> n = positiveInt(key, value);
            if (!n.ok())
                return n.status();
            cfg.chiplet.al2Bytes = n.value();
        } else {
            return errInvalidArgument("unknown config member '%s'",
                                      key.c_str());
        }
    }
    return Status::okStatus();
}

Status
parseTech(const JsonValue &v, TechnologyModel &tech)
{
    if (!v.isObject())
        return errInvalidArgument("'tech' must be an object");
    for (const auto &[key, value] : v.object) {
        double *dbl = nullptr;
        int *i32 = nullptr;
        if (key == "dramEnergyPerBit")
            dbl = &tech.dramEnergyPerBit;
        else if (key == "d2dEnergyPerBit")
            dbl = &tech.d2dEnergyPerBit;
        else if (key == "l2EnergyPerBitAt32K")
            dbl = &tech.l2EnergyPerBitAt32K;
        else if (key == "l1EnergyPerBitAt1K")
            dbl = &tech.l1EnergyPerBitAt1K;
        else if (key == "rfEnergyPerBitRmw")
            dbl = &tech.rfEnergyPerBitRmw;
        else if (key == "macEnergyPerOp")
            dbl = &tech.macEnergyPerOp;
        else if (key == "nocEnergyPerBit")
            dbl = &tech.nocEnergyPerBit;
        else if (key == "sramEnergyOffset")
            dbl = &tech.sramEnergyPerBitKb.offset;
        else if (key == "sramEnergySlope")
            dbl = &tech.sramEnergyPerBitKb.slope;
        else if (key == "vectorOpEnergyPerOp")
            dbl = &tech.vectorOpEnergyPerOp;
        else if (key == "frequencyGhz")
            dbl = &tech.frequencyGhz;
        else if (key == "dramBitsPerCycle")
            i32 = &tech.dramBitsPerCycle;
        else if (key == "d2dBitsPerCycle")
            i32 = &tech.d2dBitsPerCycle;
        else if (key == "dataBits")
            i32 = &tech.dataBits;
        else if (key == "psumBits")
            i32 = &tech.psumBits;
        else {
            return errInvalidArgument("unknown tech member '%s'",
                                      key.c_str());
        }
        if (dbl) {
            StatusOr<double> d = positiveDouble(key, value);
            if (!d.ok())
                return d.status();
            *dbl = d.value();
        } else {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            *i32 = n.value();
        }
    }
    return Status::okStatus();
}

} // namespace

StatusOr<ServeRequest>
parseRequest(const std::string &line)
{
    const JsonParseResult parsed = parseJson(line);
    if (!parsed.ok()) {
        return errInvalidArgument("malformed request: %s at offset %zu",
                                  parsed.error.c_str(),
                                  parsed.errorOffset);
    }
    const JsonValue &root = parsed.value;
    if (!root.isObject())
        return errInvalidArgument("request must be a JSON object");

    ServeRequest req;
    req.config = caseStudyConfig();
    req.tech = defaultTech();

    const JsonValue *op = root.find("op");
    if (!op || !op->isString())
        return errInvalidArgument("request needs a string 'op'");
    if (op->string == "post")
        req.op = Op::Post;
    else if (op->string == "pre")
        req.op = Op::Pre;
    else if (op->string == "sweepUnit")
        req.op = Op::SweepUnit;
    else if (op->string == "stats")
        req.op = Op::Stats;
    else if (op->string == "metrics")
        req.op = Op::Metrics;
    else if (op->string == "flight")
        req.op = Op::Flight;
    else if (op->string == "ping")
        req.op = Op::Ping;
    else if (op->string == "shutdown")
        req.op = Op::Shutdown;
    else {
        return errInvalidArgument(
            "unknown op '%s' (post, pre, sweepUnit, stats, metrics, "
            "flight, ping, shutdown)",
            op->string.c_str());
    }

    bool modelNamed = false;
    for (const auto &[key, value] : root.object) {
        if (key == "op") {
            continue;
        } else if (key == "model") {
            if (!value.isString())
                return errInvalidArgument("'model' must be a string");
            req.model = value.string;
            modelNamed = true;
        } else if (key == "modelText") {
            if (!value.isString()) {
                return errInvalidArgument(
                    "'modelText' must be a string");
            }
            req.modelText = value.string;
        } else if (key == "resolution") {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            req.resolution = n.value();
        } else if (key == "batch") {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            req.batch = n.value();
        } else if (key == "config") {
            Status s = parseConfig(value, req.config);
            if (!s.ok())
                return s;
        } else if (key == "tech") {
            Status s = parseTech(value, req.tech);
            if (!s.ok())
                return s;
        } else if (key == "objective") {
            if (!value.isString() || (value.string != "energy" &&
                                      value.string != "edp")) {
                return errInvalidArgument(
                    "'objective' must be \"energy\" or \"edp\"");
            }
            req.edpObjective = value.string == "edp";
        } else if (key == "search") {
            if (!value.isString()) {
                return errInvalidArgument(
                    "'search' must be a string");
            }
            if (value.string == "exhaustive") {
                req.searchMode = SearchMode::Exhaustive;
            } else if (value.string == "bnb") {
                req.searchMode = SearchMode::Bnb;
            } else if (value.string == "anneal") {
                req.searchMode = SearchMode::Anneal;
            } else {
                return errInvalidArgument(
                    "'search' must be \"exhaustive\", \"bnb\" or "
                    "\"anneal\", got '%s'",
                    value.string.c_str());
            }
        } else if (key == "annealSeed") {
            StatusOr<int64_t> n = positiveInt(key, value);
            if (!n.ok())
                return n.status();
            req.annealSeed = static_cast<uint64_t>(n.value());
        } else if (key == "annealIterations") {
            StatusOr<int> n = positiveInt32(key, value);
            if (!n.ok())
                return n.status();
            req.annealIterations = n.value();
        } else if (key == "deadlineSeconds") {
            StatusOr<double> d = positiveDouble(key, value);
            if (!d.ok())
                return d.status();
            req.deadlineSeconds = d.value();
        } else if (key == "progressSeconds") {
            StatusOr<double> d = positiveDouble(key, value);
            if (!d.ok())
                return d.status();
            req.progressSeconds = d.value();
        } else if (key == "macs") {
            StatusOr<int64_t> n = positiveInt(key, value);
            if (!n.ok())
                return n.status();
            req.macs = n.value();
        } else if (key == "areaMm2") {
            StatusOr<double> d = positiveDouble(key, value);
            if (!d.ok())
                return d.status();
            req.areaMm2 = d.value();
        } else if (key == "proportional") {
            if (!value.isBool()) {
                return errInvalidArgument(
                    "'proportional' must be a boolean");
            }
            req.proportional = value.boolean;
        } else if (key == "unitId") {
            StatusOr<int64_t> n = nonNegativeInt(key, value);
            if (!n.ok())
                return n.status();
            req.unitId = n.value();
        } else if (key == "begin") {
            StatusOr<int64_t> n = nonNegativeInt(key, value);
            if (!n.ok())
                return n.status();
            req.unitBegin = n.value();
        } else if (key == "end") {
            StatusOr<int64_t> n = positiveInt(key, value);
            if (!n.ok())
                return n.status();
            req.unitEnd = n.value();
        } else if (key == "fingerprint") {
            if (!value.isString()) {
                return errInvalidArgument(
                    "'fingerprint' must be a string");
            }
            req.sweepFp = value.string;
        } else if (key == "techFingerprint") {
            if (!value.isString()) {
                return errInvalidArgument(
                    "'techFingerprint' must be a string");
            }
            req.techFp = value.string;
        } else {
            return errInvalidArgument("unknown request member '%s'",
                                      key.c_str());
        }
    }
    if (modelNamed && !req.modelText.empty()) {
        return errInvalidArgument(
            "'model' and 'modelText' are mutually exclusive");
    }
    if (req.op == Op::SweepUnit) {
        if (req.unitId < 0 || req.unitEnd <= req.unitBegin) {
            return errInvalidArgument(
                "sweepUnit needs unitId >= 0 and end > begin");
        }
        if (req.sweepFp.empty() || req.techFp.empty()) {
            return errInvalidArgument(
                "sweepUnit needs 'fingerprint' and 'techFingerprint'");
        }
    }
    return req;
}

const char *
toString(Op op)
{
    switch (op) {
      case Op::Post:
        return "post";
      case Op::Pre:
        return "pre";
      case Op::SweepUnit:
        return "sweepUnit";
      case Op::Stats:
        return "stats";
      case Op::Metrics:
        return "metrics";
      case Op::Flight:
        return "flight";
      case Op::Ping:
        return "ping";
      case Op::Shutdown:
        return "shutdown";
    }
    return "?";
}

bool
isRetryableCode(StatusCode code)
{
    // Transient conditions: the operation may succeed on another
    // worker or after backoff.  Everything else (bad request, wrong
    // fingerprint, internal bug) would fail identically on retry.
    return code == StatusCode::Unavailable ||
           code == StatusCode::Cancelled ||
           code == StatusCode::DeadlineExceeded;
}

std::string
errorResponse(const Status &status, uint64_t rid)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("ok", false);
    if (rid)
        j.field("rid", static_cast<int64_t>(rid));
    j.field("retryable", isRetryableCode(status.code()));
    j.key("error").beginObject();
    j.field("code", nnbaton::toString(status.code()));
    j.field("message", status.message());
    j.endObject();
    j.endObject();
    return ss.str();
}

} // namespace serve
} // namespace nnbaton
