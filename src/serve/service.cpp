#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "baton/baton.hpp"
#include "baton/export.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "dse/checkpoint.hpp"
#include "dse/slice.hpp"
#include "nn/parser.hpp"
#include "verif/fault.hpp"

namespace nnbaton {
namespace serve {

namespace {

/** Request-path instruments, registered once. */
struct ServeMetrics
{
    obs::Counter *requests;
    obs::Counter *errors;
    obs::Counter *cacheHit;
    obs::Counter *cacheMiss;
    obs::Counter *cacheEvicted;
    obs::Counter *sloViolations;
    obs::Counter *overloadRejected;
    obs::Counter *unitPoints;
    obs::Histogram *latencyUs;
    // Mapping-search work done on behalf of requests (SearchStats
    // mirrored per request; see mapper/search.hpp).
    obs::Counter *searchEvaluated;
    obs::Counter *searchPruned;
    obs::Counter *searchNodesOpened;
    obs::Counter *searchSubtreesPruned;
    obs::Counter *searchIncumbentUpdates;
    obs::Counter *searchWarmStarts;
    obs::Counter *searchRefined;
    obs::Counter *searchRefinedPruned;

    ServeMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        requests = &reg.counter("serve.requests");
        errors = &reg.counter("serve.errors");
        cacheHit = &reg.counter("serve.cache.hit");
        cacheMiss = &reg.counter("serve.cache.miss");
        cacheEvicted = &reg.counter("serve.cache.evicted");
        sloViolations = &reg.counter("serve.slo.violations");
        overloadRejected = &reg.counter("serve.overload.rejected");
        unitPoints = &reg.counter("serve.unit.points");
        latencyUs = &reg.histogram("serve.request_us");
        searchEvaluated = &reg.counter("serve.search.evaluated");
        searchPruned = &reg.counter("serve.search.pruned");
        searchNodesOpened = &reg.counter("serve.search.nodes_opened");
        searchSubtreesPruned =
            &reg.counter("serve.search.subtrees_pruned");
        searchIncumbentUpdates =
            &reg.counter("serve.search.incumbent_updates");
        searchWarmStarts = &reg.counter("serve.search.warm_starts");
        searchRefined = &reg.counter("serve.search.refined");
        searchRefinedPruned =
            &reg.counter("serve.search.refined_pruned");
    }

    void recordSearch(const SearchStats &s) const
    {
        searchEvaluated->add(s.evaluated);
        searchPruned->add(s.pruned);
        searchNodesOpened->add(s.nodesOpened);
        searchSubtreesPruned->add(s.subtreesPruned);
        searchIncumbentUpdates->add(s.incumbentUpdates);
        searchWarmStarts->add(s.warmStarts);
        searchRefined->add(s.refined);
        searchRefinedPruned->add(s.refinedPruned);
    }
};

ServeMetrics &
serveMetrics()
{
    static ServeMetrics m;
    return m;
}

/** Resolve the request's workload (zoo name or inline text). */
Model
loadRequestModel(const ServeRequest &req)
{
    auto finish = [&](Model m) {
        if (req.batch > 1)
            m.scaleBatch(req.batch);
        return m;
    };
    if (!req.modelText.empty()) {
        ParseResult parsed = parseModelString(req.modelText);
        if (!parsed.ok()) {
            throwStatus(errInvalidArgument("modelText: %s",
                                           parsed.error.c_str()));
        }
        return finish(std::move(*parsed.model));
    }
    const std::string &n = req.model;
    if (n == "vgg16")
        return finish(makeVgg16(req.resolution));
    if (n == "resnet50")
        return finish(makeResNet50(req.resolution));
    if (n == "darknet19")
        return finish(makeDarkNet19(req.resolution));
    if (n == "alexnet")
        return finish(makeAlexNet(req.resolution));
    if (n == "mobilenetv2")
        return finish(makeMobileNetV2(req.resolution));
    if (n == "bert_base")
        return finish(makeBertBase(req.resolution));
    if (n == "vit_b16")
        return finish(makeVitB16(req.resolution));
    throwStatus(errInvalidArgument(
        "unknown model '%s' (try vgg16, resnet50, darknet19, alexnet, "
        "mobilenetv2, bert_base or vit_b16)",
        n.c_str()));
}

/** Strip exportPostDesign/exportPreDesign's trailing newline so the
 *  transport owns line framing. */
std::string
oneLine(std::ostringstream &ss)
{
    std::string s = ss.str();
    while (!s.empty() && s.back() == '\n')
        s.pop_back();
    return s;
}

} // namespace

EvalService::EvalService(ServiceOptions options) : options_(options)
{
    cache_.setCapacity(options_.cacheBytes);
    if (options_.sloUs > 0) {
        obs::MetricsRegistry::instance()
            .gauge("serve.slo.threshold_us")
            .set(static_cast<double>(options_.sloUs));
    }
    if (!options_.accessLogPath.empty()) {
        accessLog_ = std::fopen(options_.accessLogPath.c_str(), "a");
        if (!accessLog_) {
            warn("cannot open access log '%s'; access logging off",
                 options_.accessLogPath.c_str());
        }
    }
}

EvalService::~EvalService()
{
    if (accessLog_)
        std::fclose(accessLog_);
}

HandleResult
EvalService::handleLine(const std::string &line)
{
    // The rid scope opens before the trace scope so the request span
    // (recorded at scope exit) carries the id too.
    const uint64_t rid = obs::nextRequestId();
    obs::RequestIdScope ridScope(rid);
    NNBATON_TRACE_SCOPE("serve.request");
    ServeMetrics &m = serveMetrics();
    m.requests->add();
    requests_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = obs::traceNowNs();

    RequestAudit audit;
    audit.rid = rid;
    audit.bytesIn = line.size();

    HandleResult out;
    try {
        ServeRequest req = parseRequest(line).value();
        audit.op = toString(req.op);

        // Chaos hooks: a FaultPlan can make this worker misbehave at
        // the transport level for a specific sweep unit — exactly the
        // failures the coordinator's lease/retry machinery must
        // absorb.  No-ops unless a test armed a plan.
        if (req.op == Op::SweepUnit && verif::faultPlanArmed()) {
            int64_t stallMs = 0;
            switch (verif::injectTransportFault(req.unitId, &stallMs)) {
              case verif::TransportFault::DropConnection:
                audit.outcome = "DROPPED";
                out.dropConnection = true;
                break;
              case verif::TransportFault::KillWorker:
                audit.outcome = "KILLED";
                out.dropConnection = true;
                out.shutdown = true;
                break;
              case verif::TransportFault::CorruptFrame:
                audit.outcome = "CORRUPTED";
                out.response = "\x7fgarbage frame, not protocol JSON";
                break;
              case verif::TransportFault::Stall:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(stallMs));
                break;
              case verif::TransportFault::None:
                break;
            }
            if (out.dropConnection || !out.response.empty()) {
                writeAccessLog(audit);
                return out;
            }
        }

        // Admission control: heavy evaluations beyond the configured
        // concurrency answer a retryable UNAVAILABLE immediately —
        // the caller backs off or re-leases elsewhere — instead of
        // queueing without bound behind a busy lane.
        const bool heavy = req.op == Op::Post || req.op == Op::Pre ||
                           req.op == Op::SweepUnit;
        struct InflightSlot
        {
            std::atomic<int> *counter = nullptr;
            ~InflightSlot()
            {
                if (counter)
                    counter->fetch_sub(1, std::memory_order_relaxed);
            }
        } slot;
        if (heavy && options_.maxInflight > 0) {
            const int running =
                inflight_.fetch_add(1, std::memory_order_relaxed);
            slot.counter = &inflight_;
            if (running >= options_.maxInflight) {
                m.overloadRejected->add();
                throwStatus(errUnavailable(
                    "overloaded: %d request(s) already evaluating "
                    "(max %d); retry with backoff",
                    running, options_.maxInflight));
            }
        }

        // Per-request cancellation: the request deadline (capped by
        // the service maximum) plus the service-wide stop token.
        CancelToken cancel;
        cancel.linkParent(options_.stop);
        double deadline =
            std::min(req.deadlineSeconds, options_.maxDeadlineSeconds);
        if ((req.op == Op::Pre || req.op == Op::SweepUnit) &&
            req.deadlineSeconds <= 0)
            deadline = options_.maxDeadlineSeconds; // always bounded
        if (deadline > 0)
            cancel.setDeadlineAfter(deadline);

        switch (req.op) {
          case Op::Post:
            out.response = runPost(req, cancel, audit);
            break;
          case Op::Pre:
            out.response = runPre(req, cancel, audit);
            break;
          case Op::SweepUnit:
            out.response = runSweepUnit(req, cancel, audit);
            break;
          case Op::Stats:
            out.response = runStats();
            break;
          case Op::Metrics:
            out.response = runMetrics();
            break;
          case Op::Flight:
            out.response = runFlight();
            break;
          case Op::Ping:
            out.response = "{\"pong\":true}";
            break;
          case Op::Shutdown:
            out.response = "{\"shuttingDown\":true}";
            out.shutdown = true;
            break;
        }
    } catch (const StatusError &e) {
        m.errors->add();
        errors_.fetch_add(1, std::memory_order_relaxed);
        audit.outcome = nnbaton::toString(e.status().code());
        out.response = errorResponse(e.status(), rid);
        dumpFlightOnError(rid, e.status());
    } catch (const std::exception &e) {
        m.errors->add();
        errors_.fetch_add(1, std::memory_order_relaxed);
        const Status status = errInternal("unexpected: %s", e.what());
        audit.outcome = nnbaton::toString(status.code());
        out.response = errorResponse(status, rid);
        dumpFlightOnError(rid, status);
    }

    // Mirror the shared cache's eviction total into the serve counter
    // (exchange keeps concurrent deltas from double-counting).
    const int64_t evictions = cache_.evictions();
    const int64_t seen = evictionsSeen_.exchange(
        evictions, std::memory_order_relaxed);
    if (evictions > seen)
        m.cacheEvicted->add(evictions - seen);

    const int64_t us =
        static_cast<int64_t>((obs::traceNowNs() - t0) / 1000);
    m.latencyUs->record(us);
    if (options_.sloUs > 0 && us > options_.sloUs)
        m.sloViolations->add();

    audit.durationUs = us;
    audit.bytesOut = out.response.size();
    writeAccessLog(audit);
    return out;
}

std::string
EvalService::runPost(const ServeRequest &req, CancelToken &cancel,
                     RequestAudit &audit)
{
    NNBATON_TRACE_SCOPE("serve.post");
    const Model model = loadRequestModel(req);
    req.config.validate();

    SearchOptions search;
    search.threads = 1; // concurrency lives across requests
    search.cancel = &cancel;
    search.mode = req.searchMode;
    search.annealSeed = req.annealSeed;
    search.annealIterations = req.annealIterations;
    // The daemon has no deterministic-counter contract across its
    // request history, so it takes the warm-start speedup: seed each
    // branch-and-bound from any resident same-shape winner.
    search.warmStart = req.searchMode == SearchMode::Bnb;
    PostDesignFlow flow(req.config, req.tech, SearchEffort::Exhaustive,
                        req.edpObjective ? Objective::MinEdp
                                         : Objective::MinEnergy,
                        search);
    const PostDesignReport report = flow.run(model, &cache_);
    serveMetrics().cacheHit->add(report.stats.cacheHits);
    serveMetrics().cacheMiss->add(report.stats.cacheMisses);
    serveMetrics().recordSearch(report.stats);
    audit.search = nnbaton::toString(req.searchMode);
    audit.cacheHits = report.stats.cacheHits;
    audit.cacheMisses = report.stats.cacheMisses;

    std::ostringstream ss;
    exportPostDesign(report, ss, ExportOptions::lean());
    return oneLine(ss);
}

std::string
EvalService::runPre(const ServeRequest &req, CancelToken &cancel,
                    RequestAudit &audit)
{
    NNBATON_TRACE_SCOPE("serve.pre");
    const Model model = loadRequestModel(req);

    DseOptions opt;
    opt.totalMacs = req.macs;
    opt.areaLimitMm2 = req.areaMm2;
    opt.proportionalMem = req.proportional;
    opt.effort = req.proportional ? SearchEffort::Fast
                                  : SearchEffort::Sketch;
    opt.objective = req.edpObjective ? Objective::MinEdp
                                     : Objective::MinEnergy;
    opt.searchMode = req.searchMode;
    opt.annealSeed = req.annealSeed;
    opt.annealIterations = req.annealIterations;
    opt.warmStart = req.searchMode == SearchMode::Bnb; // see runPost
    opt.threads = 1; // concurrency lives across requests
    opt.cancel = &cancel;
    opt.cache = &cache_;
    opt.progressSeconds = req.progressSeconds;
    PreDesignFlow flow(opt, req.tech);
    const PreDesignReport report = flow.run(model);
    serveMetrics().cacheHit->add(report.sweep.search.cacheHits);
    serveMetrics().cacheMiss->add(report.sweep.search.cacheMisses);
    serveMetrics().recordSearch(report.sweep.search);
    audit.search = nnbaton::toString(req.searchMode);
    audit.cacheHits = report.sweep.search.cacheHits;
    audit.cacheMisses = report.sweep.search.cacheMisses;

    std::ostringstream ss;
    exportPreDesign(report, ss, ExportOptions::lean());
    return oneLine(ss);
}

std::string
EvalService::runSweepUnit(const ServeRequest &req, CancelToken &cancel,
                          RequestAudit &audit)
{
    NNBATON_TRACE_SCOPE("serve.sweep_unit");
    const Model model = loadRequestModel(req);

    // The same DseOptions the one-shot `pre` path builds, so the
    // canonical task enumeration and per-point evaluation are
    // byte-for-byte those of a local sweep.
    DseOptions opt;
    opt.totalMacs = req.macs;
    opt.areaLimitMm2 = req.areaMm2;
    opt.proportionalMem = req.proportional;
    opt.effort = req.proportional ? SearchEffort::Fast
                                  : SearchEffort::Sketch;
    opt.objective = req.edpObjective ? Objective::MinEdp
                                     : Objective::MinEnergy;
    opt.searchMode = req.searchMode;
    opt.annealSeed = req.annealSeed;
    opt.annealIterations = req.annealIterations;
    opt.warmStart = req.searchMode == SearchMode::Bnb; // see runPost
    opt.threads = 1; // concurrency lives across requests
    opt.cancel = &cancel;
    opt.cache = &cache_;

    // Identity gate before any evaluation.  A worker that computes a
    // different sweep fingerprint (other build, other model zoo) or
    // technology digest would return points from a different design
    // space; FAILED_PRECONDITION is deliberately non-retryable so the
    // coordinator quarantines this worker instead of retrying into
    // the same wrong answer.
    const std::string fp = sweepFingerprint(model, opt);
    if (fp != req.sweepFp) {
        throwStatus(errFailedPrecondition(
            "sweepUnit %lld: sweep fingerprint mismatch (worker "
            "\"%s\" != coordinator \"%s\")",
            static_cast<long long>(req.unitId), fp.c_str(),
            req.sweepFp.c_str()));
    }
    const std::string techFp = strprintf(
        "%016llx",
        static_cast<unsigned long long>(req.tech.fingerprint()));
    if (techFp != req.techFp) {
        throwStatus(errFailedPrecondition(
            "sweepUnit %lld: technology fingerprint mismatch (worker "
            "%s != coordinator %s)",
            static_cast<long long>(req.unitId), techFp.c_str(),
            req.techFp.c_str()));
    }

    const std::vector<SweepTask> tasks = enumerateSweepTasks(opt);
    if (req.unitEnd > static_cast<int64_t>(tasks.size())) {
        throwStatus(errFailedPrecondition(
            "sweepUnit %lld: range [%lld, %lld) exceeds the %zu-task "
            "enumeration",
            static_cast<long long>(req.unitId),
            static_cast<long long>(req.unitBegin),
            static_cast<long long>(req.unitEnd), tasks.size()));
    }

    std::vector<SweepPointOutcome> outcomes =
        evaluateSweepSlice(model, opt, req.tech, tasks, req.unitBegin,
                           req.unitEnd, cache_);

    // A unit is atomic: all points or none.  When the deadline or a
    // shutdown interrupted the slice, answer with the (retryable)
    // cancellation status so the coordinator re-leases the whole unit
    // rather than merging a partial one.
    SearchStats stats;
    for (const SweepPointOutcome &out : outcomes) {
        if (out.kind == SweepPointOutcome::Skipped)
            throwStatus(cancel.toStatus());
        stats += out.stats;
    }
    serveMetrics().cacheHit->add(stats.cacheHits);
    serveMetrics().cacheMiss->add(stats.cacheMisses);
    serveMetrics().recordSearch(stats);
    serveMetrics().unitPoints->add(
        static_cast<int64_t>(outcomes.size()));
    audit.search = nnbaton::toString(req.searchMode);
    audit.cacheHits = stats.cacheHits;
    audit.cacheMisses = stats.cacheMisses;

    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("ok", true);
    j.field("unitId", req.unitId);
    j.field("fingerprint", fp);
    j.field("techFingerprint", techFp);
    j.key("entries").beginArray();
    for (size_t k = 0; k < outcomes.size(); ++k) {
        const SweepPointOutcome &out = outcomes[k];
        j.beginObject();
        j.field("i", req.unitBegin + static_cast<int64_t>(k));
        switch (out.kind) {
          case SweepPointOutcome::AreaRejected:
            j.field("kind", checkpointKindName(
                                CheckpointEntry::Kind::AreaRejected));
            break;
          case SweepPointOutcome::Infeasible:
            j.field("kind", checkpointKindName(
                                CheckpointEntry::Kind::Infeasible));
            break;
          case SweepPointOutcome::Valid:
            j.field("kind",
                    checkpointKindName(CheckpointEntry::Kind::Valid));
            j.key("point");
            writeDesignPointJson(j, out.point);
            break;
          case SweepPointOutcome::Poisoned:
            j.field("kind", "poisoned");
            j.field("error", out.error);
            break;
          case SweepPointOutcome::Skipped:
            break; // unreachable: thrown above
        }
        j.endObject();
    }
    j.endArray();
    j.key("stats").beginObject();
    j.field("evaluated", stats.evaluated);
    j.field("pruned", stats.pruned);
    j.field("cacheHits", stats.cacheHits);
    j.field("cacheMisses", stats.cacheMisses);
    j.field("nodesOpened", stats.nodesOpened);
    j.field("subtreesPruned", stats.subtreesPruned);
    j.field("incumbentUpdates", stats.incumbentUpdates);
    j.field("warmStarts", stats.warmStarts);
    j.field("refined", stats.refined);
    j.field("refinedPruned", stats.refinedPruned);
    j.endObject();
    j.endObject();
    return ss.str();
}

std::string
EvalService::runStats()
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("requests", requests_.load(std::memory_order_relaxed));
    j.field("errors", errors_.load(std::memory_order_relaxed));
    j.key("cache").beginObject();
    j.field("entries", static_cast<int64_t>(cache_.size()));
    j.field("bytes", cache_.bytes());
    j.field("capacityBytes", cache_.capacityBytes());
    j.field("hits", cache_.hits());
    j.field("misses", cache_.misses());
    j.field("evictions", cache_.evictions());
    j.endObject();
    j.endObject();
    return ss.str();
}

std::string
EvalService::runMetrics()
{
    std::ostringstream ss;
    JsonWriter j(ss);
    writeMetricsJson(j, obs::MetricsRegistry::instance().snapshot());
    return ss.str();
}

std::string
EvalService::runFlight()
{
    std::ostringstream ss;
    obs::writeFlightRecorder(ss);
    return oneLine(ss);
}

void
EvalService::writeAccessLog(const RequestAudit &audit)
{
    if (!accessLog_)
        return;
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("ts", wallClockIso8601());
    j.field("rid", static_cast<int64_t>(audit.rid));
    j.field("op", audit.op);
    j.field("outcome", audit.outcome);
    j.field("durationUs", audit.durationUs);
    j.field("bytesIn", static_cast<int64_t>(audit.bytesIn));
    j.field("bytesOut", static_cast<int64_t>(audit.bytesOut));
    j.field("cacheHits", audit.cacheHits);
    j.field("cacheMisses", audit.cacheMisses);
    j.field("search", audit.search);
    j.endObject();
    // One fwrite per line so concurrent lanes never interleave bytes.
    const std::string lineOut = ss.str() + "\n";
    std::fwrite(lineOut.data(), 1, lineOut.size(), accessLog_);
    std::fflush(accessLog_);
}

void
EvalService::dumpFlightOnError(uint64_t rid, const Status &status)
{
    obs::flightMark("serve.request.error");
    if (options_.flightDumpPath.empty())
        return;
    std::ofstream out(options_.flightDumpPath, std::ios::trunc);
    if (!out) {
        warn("cannot write flight dump '%s'",
             options_.flightDumpPath.c_str());
        return;
    }
    JsonWriter j(out);
    j.beginObject();
    j.field("failedRequestId", static_cast<int64_t>(rid));
    j.field("error", status.toString());
    j.key("flightRecorder");
    obs::writeFlightRecorderJson(j);
    j.endObject();
    out << "\n";
}

} // namespace serve
} // namespace nnbaton
