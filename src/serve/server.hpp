/**
 * @file
 * Unix-domain-socket transport for the persistent evaluation service
 * (`nn-baton serve`).
 *
 * The server binds a SOCK_STREAM socket, then drives N accept/handle
 * lanes on the existing common/parallel ThreadPool: run() issues one
 * blocking parallelFor(lanes) whose body is an accept loop, so every
 * pool lane (including the caller) serves connections concurrently.
 * Inside a lane the mapping search runs serially (the pool is
 * nested-free), which keeps thread counts flat no matter how many
 * clients connect — throughput scales across requests, exactly the
 * shape a heavy-traffic deployment wants.
 *
 * Each connection carries any number of newline-delimited requests;
 * responses come back one line each, in order.  The listening socket
 * is non-blocking and every lane polls it with a short timeout, so a
 * stop request (SIGINT / SIGTERM via the wired CancelToken, or a
 * client's {"op":"shutdown"}) is observed within one poll interval;
 * in-flight evaluations are interrupted through the linked
 * per-request tokens.
 */

#ifndef NNBATON_SERVE_SERVER_HPP
#define NNBATON_SERVE_SERVER_HPP

#include <atomic>
#include <string>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "serve/service.hpp"

namespace nnbaton {
namespace serve {

/** Transport configuration. */
struct ServerOptions
{
    /** Filesystem path of the Unix socket (empty = no Unix listener;
     *  at least one of socketPath / tcpAddress must be set). */
    std::string socketPath;

    /** TCP listen address "host:port" or ":port" (--tcp; empty = no
     *  TCP listener).  TCP is what lets a fabric coordinator shard a
     *  sweep across machines; both listeners serve the same
     *  EvalService and cache. */
    std::string tcpAddress;

    /** Accept/handle lanes (including the thread calling run());
     *  also the number of requests evaluated concurrently. */
    int threads = 2;

    /** External stop (SIGINT); the server also stops on a shutdown
     *  request.  Borrowed, may be null. */
    CancelToken *cancel = nullptr;

    /** Listen-socket poll period for stop checks. */
    int pollMs = 50;

    ServiceOptions service;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and listen on options.socketPath (an existing socket file
     * at that path is replaced) and/or options.tcpAddress.  Must
     * succeed before run().
     */
    Status start();

    /** After start(): the port the TCP listener actually bound
     *  (useful with ":0" — the kernel picks a free port); -1 when
     *  no TCP listener is configured. */
    int tcpPort() const { return tcpPort_; }

    /**
     * Serve until stopped; blocks the calling thread (which works as
     * one of the lanes).  Returns the number of requests handled.
     */
    int64_t run();

    /** Ask the accept lanes to wind down (thread-safe). */
    void requestStop();

    /** The underlying service (tests inspect cache counters). */
    const EvalService &service() const { return service_; }

  private:
    Status startUnix();
    Status startTcp();
    void acceptLoop();
    void handleConnection(int fd);
    bool stopped() const;

    ServerOptions options_;
    CancelToken stopToken_; //!< fired by requestStop / shutdown op;
                            //!< chained under options.cancel
    EvalService service_;   //!< links request tokens to stopToken_
    int listenFd_ = -1;     //!< Unix listener (-1 when disabled)
    int tcpFd_ = -1;        //!< TCP listener (-1 when disabled)
    int tcpPort_ = -1;      //!< bound TCP port after start()
};

} // namespace serve
} // namespace nnbaton

#endif // NNBATON_SERVE_SERVER_HPP
