/**
 * @file
 * The evaluation core of the persistent service: request in, response
 * line out, independent of any transport so it unit-tests without
 * sockets.
 *
 * One EvalService owns the process-wide MappingCache.  Every request
 * evaluates against it, so repeated layer shapes across requests —
 * the millions-of-users steady state is mostly repeated shapes — are
 * served from warm search results.  The cache key carries the
 * TechnologyModel fingerprint, so requests overriding energy anchors
 * or clock can never alias a cached result computed under different
 * technology assumptions; an LRU byte cap keeps a long-lived daemon's
 * footprint bounded.
 *
 * Responses are bit-identical to the equivalent one-shot CLI
 * invocation (post/pre with `--no-obs`): the evaluation path is the
 * same PostDesignFlow / explore() code, the cache is compute-once and
 * deterministic, and the lean export omits everything run-dependent.
 *
 * Each request runs under its own CancelToken: the request's
 * `deadlineSeconds` (capped by the service maximum, which always
 * bounds pre-design sweeps) arms the deadline, and the token is
 * linked under the service-wide stop token so shutdown interrupts
 * in-flight work.  Failures come back as structured Status envelopes,
 * never as a dropped connection.
 */

#ifndef NNBATON_SERVE_SERVICE_HPP
#define NNBATON_SERVE_SERVICE_HPP

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/cancel.hpp"
#include "mapper/cache.hpp"
#include "serve/protocol.hpp"

namespace nnbaton {
namespace serve {

/** Service policy knobs. */
struct ServiceOptions
{
    /** LRU byte cap for the shared mapping cache (0 = unbounded). */
    int64_t cacheBytes = 256ll << 20;

    /** Hard per-request wall-clock cap.  Pre-design sweeps always run
     *  under min(request deadline, this); post queries only get a
     *  deadline when the request asks for one. */
    double maxDeadlineSeconds = 300.0;

    /** Request-latency SLO in microseconds (--slo-us; 0 disables).
     *  Requests slower than this bump serve.slo.violations, so a
     *  scrape of the metrics op reads SLO compliance directly. */
    int64_t sloUs = 0;

    /** Access-log file (--access-log; empty disables): one structured
     *  JSON line per request, appended with a single fwrite. */
    std::string accessLogPath;

    /** Where a request error dumps the flight recorder
     *  (--flight-dump; empty disables the on-error dump). */
    std::string flightDumpPath;

    /** Service-wide stop token (borrowed, may be null).  Linked under
     *  every per-request token so shutdown interrupts evaluations. */
    const CancelToken *stop = nullptr;

    /** Admission control: maximum heavy requests (post / pre /
     *  sweepUnit) evaluating concurrently; excess requests are
     *  answered immediately with a retryable UNAVAILABLE envelope
     *  instead of queueing unboundedly (0 = unlimited).  Cheap ops
     *  (ping, stats, ...) are never refused. */
    int maxInflight = 0;
};

/** One handled request: the response line plus control flow. */
struct HandleResult
{
    std::string response; //!< one line, no trailing newline
    bool shutdown = false; //!< request asked the daemon to stop

    /** Close the connection without sending `response` — the
     *  transport-fault injection path (a crashed worker, from the
     *  coordinator's point of view). */
    bool dropConnection = false;
};

class EvalService
{
  public:
    explicit EvalService(ServiceOptions options);
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Handle one request line and return the response line.  Never
     * throws: every failure becomes a structured error envelope.
     * Thread-safe; called concurrently by the transport lanes.
     */
    HandleResult handleLine(const std::string &line);

    /** The shared cache (tests inspect hit/eviction counters). */
    const MappingCache &cache() const { return cache_; }

    int64_t requestsHandled() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    /** Per-request facts the access log records (docs/serving.md). */
    struct RequestAudit
    {
        uint64_t rid = 0;
        const char *op = "invalid"; //!< wire op, or "invalid"
        const char *search = "";    //!< post/pre: the search mode
        int64_t cacheHits = 0;      //!< post/pre: this request's hits
        int64_t cacheMisses = 0;
        std::string outcome = "OK"; //!< "OK" or the StatusCode name
        size_t bytesIn = 0;
        size_t bytesOut = 0;
        int64_t durationUs = 0;
    };

    std::string runPost(const ServeRequest &req, CancelToken &cancel,
                        RequestAudit &audit);
    std::string runPre(const ServeRequest &req, CancelToken &cancel,
                       RequestAudit &audit);
    std::string runSweepUnit(const ServeRequest &req,
                             CancelToken &cancel, RequestAudit &audit);
    std::string runStats();
    std::string runMetrics();
    std::string runFlight();

    /** Append one JSON line; single fwrite so lanes never interleave. */
    void writeAccessLog(const RequestAudit &audit);

    /** Dump the flight recorder after a failed request (when
     *  flightDumpPath is set), tagged with the failing rid. */
    void dumpFlightOnError(uint64_t rid, const Status &status);

    ServiceOptions options_;
    MappingCache cache_;
    std::FILE *accessLog_ = nullptr; //!< owned; null when disabled
    std::atomic<int64_t> requests_{0};
    std::atomic<int64_t> errors_{0};
    std::atomic<int64_t> evictionsSeen_{0};
    std::atomic<int> inflight_{0}; //!< heavy ops currently evaluating
};

} // namespace serve
} // namespace nnbaton

#endif // NNBATON_SERVE_SERVICE_HPP
