/**
 * @file
 * Wire protocol of the persistent evaluation service (`nn-baton
 * serve`): newline-delimited JSON over a Unix-domain socket.
 *
 * Each request is one JSON object on one line; each response is one
 * line.  Success responses are the *bare result document* — exactly
 * the bytes the equivalent one-shot CLI invocation writes with
 * `--no-obs` — so callers can diff a served answer against the
 * offline tool.  Error responses are enveloped (with the failing
 * request's id so it can be matched against access-log lines and
 * flight-recorder dumps):
 *
 * @code
 *   {"ok":false,"rid":42,
 *    "error":{"code":"INVALID_ARGUMENT","message":"..."}}
 * @endcode
 *
 * Result documents never carry a top-level "ok" member, so one
 * `find("ok")` distinguishes the two shapes.
 *
 * Request schema (see docs/serving.md for the full reference):
 *
 * @code
 *   {"op":"post" | "pre" | "sweepUnit" | "stats" | "metrics"
 *         | "flight" | "ping" | "shutdown",
 *    "model":"resnet50",            // zoo name, or instead:
 *    "modelText":"model m 32\n...", // inline text-format model
 *    "resolution":224,
 *    "batch":1,                     // multiplies every layer's batch
 *    "config":{"chiplets":4,"cores":8,"lanes":8,"vectorSize":8,
 *              "ol1Bytes":1536,"al1Bytes":800,"wl1Bytes":18432,
 *              "al2Bytes":65536},   // post: hardware overrides
 *    "tech":{"macEnergyPerOp":0.024,"frequencyGhz":0.5,...},
 *    "objective":"energy" | "edp",
 *    "search":"exhaustive" | "bnb" | "anneal",  // docs/search.md
 *    "annealSeed":1,"annealIterations":400,     // anneal only
 *    "deadlineSeconds":30,          // per-request budget
 *    "macs":2048,"areaMm2":3.0,"proportional":false,  // pre only
 *    "progressSeconds":5,           // pre: heartbeat to daemon stderr
 *    "unitId":7,"begin":0,"end":32, // sweepUnit: leased task slice
 *    "fingerprint":"...",           // sweepUnit: sweepFingerprint()
 *    "techFingerprint":"1a2b..."}   // sweepUnit: tech identity (hex)
 * @endcode
 *
 * "sweepUnit" (docs/distributed.md) evaluates tasks [begin, end) of
 * the canonical sweep enumeration for the given pre-design options and
 * answers {"ok":true,"unitId":...,"entries":[...],"stats":{...}} —
 * entry points use the same %.17g serialisation as checkpoints, so the
 * coordinator's merge is bit-identical to a local sweep.
 *
 * "metrics" answers with the bare writeMetricsJson document (the
 * whole obs registry: counters, gauges, histograms with quantiles) —
 * what `nn-baton stats` renders; "flight" answers with the flight
 * recorder dump ({"flightRecorder":...}, docs/observability.md).
 *
 * Unknown members are rejected (InvalidArgument) so typos fail loudly
 * instead of silently evaluating something else.
 */

#ifndef NNBATON_SERVE_PROTOCOL_HPP
#define NNBATON_SERVE_PROTOCOL_HPP

#include <string>

#include "arch/config.hpp"
#include "common/status.hpp"
#include "mapper/search.hpp"
#include "tech/technology.hpp"

namespace nnbaton {
namespace serve {

/** Request kinds the service understands. */
enum class Op
{
    Post,      //!< post-design mapping query on fixed hardware
    Pre,       //!< bounded pre-design sweep
    SweepUnit, //!< one leased slice of a distributed sweep
    Stats,     //!< service + cache counters
    Metrics,   //!< full obs metrics registry (the `stats` CLI scrape)
    Flight,    //!< flight-recorder dump (recent spans per thread)
    Ping,      //!< liveness probe
    Shutdown,  //!< answer, then stop the daemon
};

/** The wire name of @p op ("post", "metrics", ...). */
const char *toString(Op op);

/** A parsed request with defaults matching the one-shot CLI. */
struct ServeRequest
{
    Op op = Op::Ping;

    // Workload: a zoo model name or an inline text-format model.
    std::string model = "resnet50";
    std::string modelText;
    int resolution = 224;
    int batch = 1; //!< multiplies every layer's batch (CLI --batch)

    // Hardware (post) — starts from the paper's case-study config.
    AcceleratorConfig config;

    // Technology — defaultTech() plus any per-request overrides.
    TechnologyModel tech;

    // Pre-design sweep bounds.
    int64_t macs = 2048;
    double areaMm2 = 0.0;
    bool proportional = false;

    bool edpObjective = false;

    // Mapping-search strategy ("search" / "annealSeed" /
    // "annealIterations" members; docs/search.md).
    SearchMode searchMode = SearchMode::Exhaustive;
    uint64_t annealSeed = 1;
    int annealIterations = 400;

    double deadlineSeconds = 0.0; //!< <= 0: server default applies

    /** Pre-sweep heartbeat period (DseOptions::progressSeconds);
     *  <= 0 disables.  Lines go to the daemon's stderr and the
     *  dse.progress.* gauges, scrapeable via the metrics op. */
    double progressSeconds = 0.0;

    // Distributed sweep unit (op "sweepUnit"; docs/distributed.md).
    // The coordinator names the leased slice [unitBegin, unitEnd) of
    // the canonical task enumeration and pins the sweep identity the
    // worker must reproduce: the sweep fingerprint (model + options)
    // and the technology fingerprint.  A worker whose local
    // enumeration disagrees answers FAILED_PRECONDITION instead of
    // silently evaluating a different space.
    int64_t unitId = -1;        //!< coordinator-assigned unit id
    int64_t unitBegin = 0;      //!< first task index (inclusive)
    int64_t unitEnd = 0;        //!< past-the-end task index
    std::string sweepFp;        //!< expected sweepFingerprint()
    std::string techFp;         //!< expected tech fingerprint (hex)
};

/** Parse one request line; strict about types and member names. */
StatusOr<ServeRequest> parseRequest(const std::string &line);

/**
 * Serialise a Status as the one-line error envelope; a nonzero
 * @p rid identifies the failing request for postmortem correlation.
 * The envelope carries "retryable": true for transient conditions
 * (UNAVAILABLE / CANCELLED / DEADLINE_EXCEEDED) that a client may
 * retry with backoff, false for definitive rejections.
 */
std::string errorResponse(const Status &status, uint64_t rid = 0);

/** True when a failure with @p code is worth retrying elsewhere or
 *  later (the coordinator's re-lease / backoff predicate). */
bool isRetryableCode(StatusCode code);

} // namespace serve
} // namespace nnbaton

#endif // NNBATON_SERVE_PROTOCOL_HPP
