/**
 * @file
 * The output-centric hierarchical mapping description (paper section
 * IV-A, figures 4 and 5).
 *
 * A layer's output cube HO x WO x CO is carved up by:
 *  1. a package-level spatial primitive (C-type or P-type) over the
 *     N_P chiplets,
 *  2. a package-level temporal primitive iterating each chiplet's
 *     macro workload in chiplet tiles HOt x WOt x COt,
 *  3. a chiplet-level spatial primitive (C-, P- or H-type) over the
 *     N_C cores,
 *  4. a chiplet-level temporal primitive iterating each core's macro
 *     workload in core tiles HOc x WOc x L, and
 *  5. the weight-stationary core loops (CI, KH, KW, OH, OW), with the
 *     rotating primitive streaming the shared tensor around the ring.
 */

#ifndef NNBATON_DATAFLOW_MAPPING_HPP
#define NNBATON_DATAFLOW_MAPPING_HPP

#include <cstdint>
#include <string>

#include "arch/config.hpp"
#include "dataflow/partition.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** Package-level spatial partition dimension (figure 5 (a)-(b)). */
enum class PackagePartition
{
    Channel, //!< C-type: chiplets take disjoint CO slices, share inputs
    Plane,   //!< P-type: chiplets take disjoint HO/WO tiles, share weights
};

/** Chiplet-level spatial partition (figure 5 (c)-(e)). */
enum class ChipletPartition
{
    Channel, //!< all cores differ in CO
    Plane,   //!< all cores differ in the output plane
    Hybrid,  //!< H-type: split both CO and the plane simultaneously
};

/** Temporal loop-unrolling priority (figure 6(a)). */
enum class LoopOrder
{
    ChannelPriority, //!< C dimension in the inner loop (weights reused)
    PlanePriority,   //!< H-W dimensions in the inner loop (acts reused)
};

const char *toString(PackagePartition p);
const char *toString(ChipletPartition p);
const char *toString(LoopOrder o);

/** An output-cube slice (all extents in output elements). */
struct WorkShape
{
    int ho = 0;
    int wo = 0;
    int co = 0;

    int64_t volume() const
    {
        return static_cast<int64_t>(ho) * wo * co;
    }
};

/** A complete per-layer mapping specification. */
struct Mapping
{
    // Package-level spatial primitive.
    PackagePartition pkgSpatial = PackagePartition::Channel;
    PlanarSplit pkgSplit; //!< used when pkgSpatial == Plane

    // Chiplet-level spatial primitive.
    ChipletPartition chipSpatial = ChipletPartition::Channel;
    int chipChannelWays = 1; //!< cw: cores that differ in CO
    PlanarSplit chipSplit;   //!< pw = chipSplit.parts(): plane ways

    // Package-level temporal primitive: single chiplet workload.
    WorkShape chipletTile;
    LoopOrder pkgOrder = LoopOrder::ChannelPriority;

    // Chiplet-level temporal primitive: single core workload plane
    // (the channel extent of a core tile is the lane count L).
    int hoC = 1;
    int woC = 1;
    LoopOrder chipOrder = LoopOrder::ChannelPriority;

    /** Compact textual form, e.g. "(C,H) T(28x28x64) c(8x8) CP/PP". */
    std::string toString() const;

    /** The spatial-combo label used on the x-axis of figure 11. */
    std::string spatialLabel() const;
};

/**
 * Derived per-level workload shapes for a (layer, config, mapping)
 * triple.  All counts use ceiling division; edge tiles are modelled at
 * full size (documented approximation, see DESIGN.md section 4).
 */
struct MappingShapes
{
    WorkShape chipletMacro; //!< per-chiplet workload after pkg spatial
    WorkShape chipletTile;  //!< single chiplet workload (temporal unit)
    WorkShape coreMacro;    //!< per-core share of one chiplet tile
    WorkShape coreTile;     //!< single core workload (hoC x woC x L)

    // Package-temporal trip counts over the chiplet macro workload.
    int pkgTripsH = 1;
    int pkgTripsW = 1;
    int pkgTripsC = 1;

    // Chiplet-temporal trip counts over the core macro workload.
    int chipTripsH = 1;
    int chipTripsW = 1;
    int chipTripsC = 1;

    // Batch trips of the outermost temporal loop (one per sample).
    int batchTrips = 1;

    int64_t pkgTrips() const
    {
        return static_cast<int64_t>(pkgTripsH) * pkgTripsW * pkgTripsC;
    }

    int64_t chipTrips() const
    {
        return static_cast<int64_t>(chipTripsH) * chipTripsW * chipTripsC;
    }

    /** Core tiles executed per chiplet for the whole layer (every
     *  sample of the batch). */
    int64_t coreTilesPerChiplet() const
    {
        return static_cast<int64_t>(batchTrips) * pkgTrips() *
               chipTrips();
    }
};

/**
 * Compute the derived shapes.  Throws StatusError(InvalidArgument) if
 * the mapping is malformed for the configuration; use checkMapping()
 * first for a soft answer.
 */
MappingShapes deriveShapes(const ConvLayer &layer,
                           const AcceleratorConfig &cfg,
                           const Mapping &mapping);

/**
 * Soft legality check (paper's candidate pruning): spatial factors
 * must fit the workload, the chiplet tile must cover the core split,
 * O-L1 must hold a core tile of partial sums, A-L1 one input slice,
 * and W-L1 one vector-step of weights.
 *
 * @return empty string if legal, else a human-readable reason.
 */
std::string checkMapping(const ConvLayer &layer,
                         const AcceleratorConfig &cfg,
                         const Mapping &mapping, int psum_bits = 24);

} // namespace nnbaton

#endif // NNBATON_DATAFLOW_MAPPING_HPP
