/**
 * @file
 * Planar (H x W) partition-pattern math (paper sections IV-C, figures
 * 7 and 8).
 *
 * Splitting the output plane into tiles makes adjacent tiles consume
 * overlapping input rows/columns (the halo) whenever stride < kernel.
 * The pattern — how many cuts along H vs W for the same tile count —
 * changes the total redundant input access and the number of
 * consumers that share each halo element (DRAM conflict degree).
 */

#ifndef NNBATON_DATAFLOW_PARTITION_HPP
#define NNBATON_DATAFLOW_PARTITION_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace nnbaton {

/** A planar split into fh x fw near-equal tiles. */
struct PlanarSplit
{
    int fh = 1; //!< number of cuts along the output height
    int fw = 1; //!< number of cuts along the output width

    int parts() const { return fh * fw; }

    /** Aspect string like "1:4" or "2:2". */
    std::string toString() const;

    bool operator==(const PlanarSplit &) const = default;
};

/**
 * Split extent @p n into @p f near-equal chunks (sizes differ by at
 * most one).  Returns the chunk sizes; f may exceed n, in which case
 * trailing chunks are zero-sized and dropped.
 */
std::vector<int> splitExtent(int n, int f);

/**
 * Exact total input-plane elements consumed when an ho x wo output
 * plane is tiled fh x fw and every tile independently loads its full
 * input footprint ((t-1)*s + k per axis).
 */
int64_t tiledInputPlane(int ho, int wo, const PlanarSplit &split, int kh,
                        int kw, int stride);

/**
 * Redundant-access ratio of a tiled load relative to the exact input
 * plane: (tiled - exact) / exact.  This is the y-axis of figure 7.
 */
double haloRedundancy(int ho, int wo, const PlanarSplit &split, int kh,
                      int kw, int stride);

/**
 * The maximum number of tiles that consume any single input element
 * under the split — the DRAM access-conflict degree of figure 8
 * (square 2x2 split: 4 at the centre; 1x4 stripes: at most 2).
 */
int maxHaloSharers(int ho, int wo, const PlanarSplit &split, int kh,
                   int kw, int stride);

/**
 * All splits of @p parts tiles that fit an ho x wo plane, ordered with
 * the most square first (the paper prefers square patterns for
 * temporal tiles).
 */
std::vector<PlanarSplit> enumerateSplits(int parts, int ho, int wo);

} // namespace nnbaton

#endif // NNBATON_DATAFLOW_PARTITION_HPP
