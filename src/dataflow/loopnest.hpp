/**
 * @file
 * Temporal loop-nest IR.
 *
 * A mapping is lowered to per-buffer temporal loop nests; the C3P
 * engine then scans footprints over nest boundaries.  Loops are listed
 * outermost first.  The "atom" is the tile enclosed below the
 * innermost loop; spans accumulate multiplicatively as the scan moves
 * outward.
 */

#ifndef NNBATON_DATAFLOW_LOOPNEST_HPP
#define NNBATON_DATAFLOW_LOOPNEST_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** Loop dimensions of the seven-dim nest handled by the framework. */
enum class Dim
{
    OH, //!< output rows
    OW, //!< output columns
    OC, //!< output channels
    IC, //!< input channels
    KH, //!< kernel rows
    KW, //!< kernel columns
    B,  //!< batch samples (irrelevant to weights)
};

const char *toString(Dim d);

/** One temporal loop. */
struct Loop
{
    Dim dim;
    int64_t trips;
};

/** Extents of a tile along each dimension. */
struct TileSpan
{
    int64_t ho = 1;
    int64_t wo = 1;
    int64_t co = 1;
    int64_t ci = 1;
    int64_t kh = 1;
    int64_t kw = 1;
    int64_t b = 1;

    int64_t &at(Dim d);
    int64_t at(Dim d) const;
};

/** A temporal loop nest with its innermost atom tile. */
struct LoopNest
{
    std::vector<Loop> loops; //!< outermost first
    TileSpan atom;           //!< tile enclosed below the last loop

    /**
     * Tile spans enclosed below boundary @p b.  Boundary b sits above
     * loops[b]; boundary loops.size() is the atom itself, boundary 0
     * encloses the whole nest.
     */
    TileSpan spanBelow(size_t b) const;

    /** Product of trip counts of loops above boundary @p b. */
    int64_t tripsAbove(size_t b) const;

    /** Total iterations of the whole nest. */
    int64_t totalTrips() const { return tripsAbove(loops.size()); }

    /** e.g. "OC:4 OH:7 OW:7 | IC:8 KH:3 KW:3 OH:8 OW:8". */
    std::string toString() const;
};

/**
 * The per-buffer nests derived from a mapping (see DESIGN.md
 * section 4):
 * - perCore drives W-L1 and A-L1 analysis: package-temporal +
 *   chiplet-temporal + weight-stationary core loops, unit atom with
 *   the spatial core-tile spans (lanes along OC, vector size along
 *   IC).
 * - perChiplet drives A-L2 analysis: package-temporal loops over
 *   chiplet-tile atoms.
 */
struct NestSet
{
    LoopNest perCore;
    LoopNest perChiplet;
};

/** Lower a mapping to its per-buffer loop nests. */
NestSet buildNests(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   const Mapping &mapping, const MappingShapes &shapes);

/**
 * buildNests() into caller-owned storage: @p out's loop vectors are
 * cleared and refilled in place, so a caller evaluating a candidate
 * stream (the incremental evaluator) pays the allocation once and
 * reuses the capacity for every subsequent rebuild.
 */
void buildNestsInto(const ConvLayer &layer, const AcceleratorConfig &cfg,
                    const Mapping &mapping, const MappingShapes &shapes,
                    NestSet &out);

} // namespace nnbaton

#endif // NNBATON_DATAFLOW_LOOPNEST_HPP
