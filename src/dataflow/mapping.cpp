#include "dataflow/mapping.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/util.hpp"

namespace nnbaton {

const char *
toString(PackagePartition p)
{
    switch (p) {
      case PackagePartition::Channel:
        return "C";
      case PackagePartition::Plane:
        return "P";
    }
    panic("bad PackagePartition");
}

const char *
toString(ChipletPartition p)
{
    switch (p) {
      case ChipletPartition::Channel:
        return "C";
      case ChipletPartition::Plane:
        return "P";
      case ChipletPartition::Hybrid:
        return "H";
    }
    panic("bad ChipletPartition");
}

const char *
toString(LoopOrder o)
{
    switch (o) {
      case LoopOrder::ChannelPriority:
        return "CP";
      case LoopOrder::PlanePriority:
        return "PP";
    }
    panic("bad LoopOrder");
}

std::string
Mapping::spatialLabel() const
{
    return strprintf("(%s,%s)", nnbaton::toString(pkgSpatial),
                     nnbaton::toString(chipSpatial));
}

std::string
Mapping::toString() const
{
    return strprintf("%s T(%dx%dx%d) c(%dx%d) %s/%s pkg%s chip%s cw%d",
                     spatialLabel().c_str(), chipletTile.ho, chipletTile.wo,
                     chipletTile.co, hoC, woC,
                     nnbaton::toString(pkgOrder),
                     nnbaton::toString(chipOrder), pkgSplit.toString().c_str(),
                     chipSplit.toString().c_str(), chipChannelWays);
}

MappingShapes
deriveShapes(const ConvLayer &layer, const AcceleratorConfig &cfg,
             const Mapping &m)
{
    MappingShapes s;
    s.batchTrips = layer.batch;
    const int np = cfg.package.chiplets;

    // 1. Package spatial: chiplet macro workload.
    if (m.pkgSpatial == PackagePartition::Channel) {
        s.chipletMacro = {layer.ho, layer.wo,
                          static_cast<int>(ceilDiv(layer.co, np))};
    } else {
        if (m.pkgSplit.parts() != np) {
            throwStatus(errInvalidArgument(
                "package split %s does not cover %d chiplets",
                m.pkgSplit.toString().c_str(), np));
        }
        s.chipletMacro = {static_cast<int>(ceilDiv(layer.ho, m.pkgSplit.fh)),
                          static_cast<int>(ceilDiv(layer.wo, m.pkgSplit.fw)),
                          layer.co};
    }

    // 2. Package temporal: chiplet tile, clamped to the macro workload.
    s.chipletTile = {std::min(m.chipletTile.ho, s.chipletMacro.ho),
                     std::min(m.chipletTile.wo, s.chipletMacro.wo),
                     std::min(m.chipletTile.co, s.chipletMacro.co)};
    s.pkgTripsH =
        static_cast<int>(ceilDiv(s.chipletMacro.ho, s.chipletTile.ho));
    s.pkgTripsW =
        static_cast<int>(ceilDiv(s.chipletMacro.wo, s.chipletTile.wo));
    s.pkgTripsC =
        static_cast<int>(ceilDiv(s.chipletMacro.co, s.chipletTile.co));

    // 3. Chiplet spatial: the core macro workload.
    const int cw = m.chipChannelWays;
    const int pw = m.chipSplit.parts();
    s.coreMacro = {static_cast<int>(ceilDiv(s.chipletTile.ho, m.chipSplit.fh)),
                   static_cast<int>(ceilDiv(s.chipletTile.wo, m.chipSplit.fw)),
                   static_cast<int>(ceilDiv(s.chipletTile.co, cw))};
    if (cw * pw != cfg.chiplet.cores) {
        throwStatus(errInvalidArgument(
            "chiplet split cw=%d x pw=%d != %d cores", cw, pw,
            cfg.chiplet.cores));
    }

    // 4. Chiplet temporal: core tiles of hoC x woC x L.
    s.coreTile = {std::min(m.hoC, s.coreMacro.ho),
                  std::min(m.woC, s.coreMacro.wo),
                  std::min(cfg.core.lanes, s.coreMacro.co)};
    s.chipTripsH = static_cast<int>(ceilDiv(s.coreMacro.ho, s.coreTile.ho));
    s.chipTripsW = static_cast<int>(ceilDiv(s.coreMacro.wo, s.coreTile.wo));
    s.chipTripsC = static_cast<int>(ceilDiv(s.coreMacro.co, s.coreTile.co));
    return s;
}

std::string
checkMapping(const ConvLayer &layer, const AcceleratorConfig &cfg,
             const Mapping &m, int psum_bits)
{
    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;
    const int cw = m.chipChannelWays;
    const int pw = m.chipSplit.parts();

    // Spatial primitives must cover the parallel units exactly.
    if (m.pkgSpatial == PackagePartition::Plane) {
        if (m.pkgSplit.parts() != np)
            return "package planar split does not cover the chiplets";
        if (m.pkgSplit.fh > layer.ho || m.pkgSplit.fw > layer.wo)
            return "package planar split exceeds the output plane";
    } else {
        if (layer.co < np)
            return "fewer output channels than chiplets for C-type";
    }

    if (cw * pw != nc)
        return "chiplet split does not cover the cores";
    switch (m.chipSpatial) {
      case ChipletPartition::Channel:
        if (pw != 1)
            return "C-type chiplet split must have pw == 1";
        break;
      case ChipletPartition::Plane:
        if (cw != 1)
            return "P-type chiplet split must have cw == 1";
        break;
      case ChipletPartition::Hybrid:
        if (cw < 2 || pw < 2)
            return "H-type chiplet split needs both ways >= 2";
        break;
    }

    MappingShapes s = deriveShapes(layer, cfg, m);
    if (s.chipletTile.co < cw)
        return "chiplet tile has fewer channels than channel ways";
    if (s.chipletTile.ho < m.chipSplit.fh ||
        s.chipletTile.wo < m.chipSplit.fw) {
        return "chiplet tile plane smaller than the core split";
    }

    // O-L1 must hold one core tile of partial sums for all lanes.
    const int64_t ol1_bits =
        static_cast<int64_t>(s.coreTile.ho) * s.coreTile.wo *
        cfg.core.lanes * psum_bits;
    if (ol1_bits > cfg.core.ol1Bytes * 8)
        return "O-L1 cannot hold a core tile of partial sums";

    // A-L1 must hold at least one vector-step input slice of the tile.
    const int64_t al1_min =
        static_cast<int64_t>(inputExtent(s.coreTile.ho, layer.kh,
                                         layer.stride)) *
        inputExtent(s.coreTile.wo, layer.kw, layer.stride) *
        std::min(cfg.core.vectorSize, layer.ciPerGroup());
    if (al1_min > cfg.core.al1Bytes)
        return "A-L1 cannot hold one input slice of the core tile";

    // W-L1 must hold at least one vector step of weights.
    if (static_cast<int64_t>(cfg.core.lanes) * cfg.core.vectorSize >
        cfg.core.wl1Bytes) {
        return "W-L1 cannot hold one vector step of weights";
    }
    return "";
}

} // namespace nnbaton
