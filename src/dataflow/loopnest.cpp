#include "dataflow/loopnest.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "common/util.hpp"

namespace nnbaton {

const char *
toString(Dim d)
{
    switch (d) {
      case Dim::OH:
        return "OH";
      case Dim::OW:
        return "OW";
      case Dim::OC:
        return "OC";
      case Dim::IC:
        return "IC";
      case Dim::KH:
        return "KH";
      case Dim::KW:
        return "KW";
      case Dim::B:
        return "B";
    }
    panic("bad Dim");
}

int64_t &
TileSpan::at(Dim d)
{
    switch (d) {
      case Dim::OH:
        return ho;
      case Dim::OW:
        return wo;
      case Dim::OC:
        return co;
      case Dim::IC:
        return ci;
      case Dim::KH:
        return kh;
      case Dim::KW:
        return kw;
      case Dim::B:
        return b;
    }
    panic("bad Dim");
}

int64_t
TileSpan::at(Dim d) const
{
    return const_cast<TileSpan *>(this)->at(d);
}

TileSpan
LoopNest::spanBelow(size_t b) const
{
    if (b > loops.size())
        panic("spanBelow: boundary %zu beyond nest", b);
    TileSpan span = atom;
    for (size_t i = b; i < loops.size(); ++i)
        span.at(loops[i].dim) *= loops[i].trips;
    return span;
}

int64_t
LoopNest::tripsAbove(size_t b) const
{
    if (b > loops.size())
        panic("tripsAbove: boundary %zu beyond nest", b);
    int64_t trips = 1;
    for (size_t i = 0; i < b; ++i)
        trips *= loops[i].trips;
    return trips;
}

std::string
LoopNest::toString() const
{
    std::ostringstream ss;
    for (const auto &l : loops)
        ss << nnbaton::toString(l.dim) << ":" << l.trips << " ";
    ss << "| atom " << atom.ho << "x" << atom.wo << "x" << atom.co
       << " ci" << atom.ci << " k" << atom.kh << "x" << atom.kw;
    if (atom.b > 1)
        ss << " b" << atom.b;
    return ss.str();
}

namespace {

/** Append H/W/C temporal loops in the order the primitive dictates. */
void
appendTemporal(std::vector<Loop> &loops, LoopOrder order, int64_t th,
               int64_t tw, int64_t tc)
{
    auto push = [&](Dim d, int64_t trips) {
        if (trips > 1)
            loops.push_back({d, trips});
    };
    if (order == LoopOrder::ChannelPriority) {
        // Channel in the inner loop: weights switch fastest.
        push(Dim::OH, th);
        push(Dim::OW, tw);
        push(Dim::OC, tc);
    } else {
        // Plane in the inner loop: activations switch fastest.
        push(Dim::OC, tc);
        push(Dim::OH, th);
        push(Dim::OW, tw);
    }
}

} // namespace

NestSet
buildNests(const ConvLayer &layer, const AcceleratorConfig &cfg,
           const Mapping &mapping, const MappingShapes &shapes)
{
    NestSet nests;
    buildNestsInto(layer, cfg, mapping, shapes, nests);
    return nests;
}

void
buildNestsInto(const ConvLayer &layer, const AcceleratorConfig &cfg,
               const Mapping &mapping, const MappingShapes &shapes,
               NestSet &nests)
{
    nests.perCore.loops.clear();
    nests.perChiplet.loops.clear();

    // ---- per-core nest: pkg-temporal + chip-temporal + core loops ----
    // The batch loop sits outermost on every nest: samples are
    // processed one after another, so weights (batch-irrelevant) are
    // reused across its trips whenever they fit below it, while the
    // activation/output footprints multiply by its span.
    LoopNest &core = nests.perCore;
    if (layer.batch > 1)
        core.loops.push_back({Dim::B, layer.batch});
    appendTemporal(core.loops, mapping.pkgOrder, shapes.pkgTripsH,
                   shapes.pkgTripsW, shapes.pkgTripsC);
    appendTemporal(core.loops, mapping.chipOrder, shapes.chipTripsH,
                   shapes.chipTripsW, shapes.chipTripsC);

    // Weight-stationary core loops: weights (IC, KH, KW) outer, the
    // output tile swept inside.  The rotating primitive chunks the IC
    // loop across the ring but does not change its footprint behaviour
    // (DESIGN.md section 4), so it is modelled as a single IC loop.
    const int p =
        std::min<int>(cfg.core.vectorSize, layer.ciPerGroup());
    const int64_t ic_trips = ceilDiv(layer.ciPerGroup(), p);
    if (ic_trips > 1)
        core.loops.push_back({Dim::IC, ic_trips});
    if (layer.kh > 1)
        core.loops.push_back({Dim::KH, layer.kh});
    if (layer.kw > 1)
        core.loops.push_back({Dim::KW, layer.kw});
    if (shapes.coreTile.ho > 1)
        core.loops.push_back({Dim::OH, shapes.coreTile.ho});
    if (shapes.coreTile.wo > 1)
        core.loops.push_back({Dim::OW, shapes.coreTile.wo});

    core.atom = TileSpan{};
    core.atom.co = shapes.coreTile.co; // L lanes in parallel
    core.atom.ci = p;                  // P-wide vector in parallel

    // ---- per-chiplet nest: pkg-temporal loops over chiplet tiles ----
    LoopNest &chip = nests.perChiplet;
    if (layer.batch > 1)
        chip.loops.push_back({Dim::B, layer.batch});
    appendTemporal(chip.loops, mapping.pkgOrder, shapes.pkgTripsH,
                   shapes.pkgTripsW, shapes.pkgTripsC);
    chip.atom = TileSpan{};
    chip.atom.ho = shapes.chipletTile.ho;
    chip.atom.wo = shapes.chipletTile.wo;
    chip.atom.co = shapes.chipletTile.co;
    chip.atom.ci = layer.ciPerGroup();
    chip.atom.kh = layer.kh;
    chip.atom.kw = layer.kw;
}

} // namespace nnbaton
