#include "dataflow/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/util.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

std::string
PlanarSplit::toString() const
{
    return std::to_string(fh) + ":" + std::to_string(fw);
}

std::vector<int>
splitExtent(int n, int f)
{
    if (n < 0 || f <= 0)
        panic("splitExtent(%d, %d): bad arguments", n, f);
    std::vector<int> chunks;
    int base = n / f;
    int rem = n % f;
    for (int i = 0; i < f; ++i) {
        int size = base + (i < rem ? 1 : 0);
        if (size > 0)
            chunks.push_back(size);
    }
    return chunks;
}

int64_t
tiledInputPlane(int ho, int wo, const PlanarSplit &split, int kh, int kw,
                int stride)
{
    int64_t total = 0;
    for (int th : splitExtent(ho, split.fh)) {
        for (int tw : splitExtent(wo, split.fw)) {
            total += static_cast<int64_t>(inputExtent(th, kh, stride)) *
                     inputExtent(tw, kw, stride);
        }
    }
    return total;
}

double
haloRedundancy(int ho, int wo, const PlanarSplit &split, int kh, int kw,
               int stride)
{
    const double exact = static_cast<double>(inputExtent(ho, kh, stride)) *
                         inputExtent(wo, kw, stride);
    const double tiled = static_cast<double>(
        tiledInputPlane(ho, wo, split, kh, kw, stride));
    return (tiled - exact) / exact;
}

int
maxHaloSharers(int ho, int wo, const PlanarSplit &split, int kh, int kw,
               int stride)
{
    // An input element is shared along an axis by consecutive tiles
    // whose footprints overlap.  With footprint (t-1)*s + k and pitch
    // t*s, the overlap is k - s elements; an element can fall inside
    // ceil((k - s) / (t*s)) + 1 consecutive footprints at most (and no
    // more than the number of tiles on that axis).
    auto axis_sharers = [&](int extent, int parts, int k) {
        if (parts <= 1)
            return 1;
        const auto chunks = splitExtent(extent, parts);
        const int t = chunks.back(); // smallest chunk bounds the pitch
        const int overlap = k - stride;
        if (overlap <= 0)
            return 1;
        const int span =
            1 + static_cast<int>(ceilDiv(overlap, int64_t(t) * stride));
        return std::min<int>(span, static_cast<int>(chunks.size()));
    };
    return axis_sharers(ho, split.fh, kh) * axis_sharers(wo, split.fw, kw);
}

std::vector<PlanarSplit>
enumerateSplits(int parts, int ho, int wo)
{
    std::vector<PlanarSplit> out;
    for (auto [fh, fw] : factorPairs(parts)) {
        if (fh <= ho && fw <= wo)
            out.push_back(PlanarSplit{fh, fw});
    }
    std::sort(out.begin(), out.end(),
              [](const PlanarSplit &a, const PlanarSplit &b) {
                  int da = std::abs(a.fh - a.fw);
                  int db = std::abs(b.fh - b.fw);
                  if (da != db)
                      return da < db;
                  return a.fh < b.fh;
              });
    return out;
}

} // namespace nnbaton
