/**
 * @file
 * The directional ring NoP rotation schedule (paper figure 3).
 *
 * With a C-type package partition the chiplets share activations:
 * each chiplet holds 1/N_P of the input channels, computes on its
 * chunk, then writes the chunk through to the next chiplet; after
 * N_P - 1 transfers every chiplet has seen the whole tensor.  P-type
 * partitions rotate weights the same way.  This module computes the
 * exact per-step schedule — bits per link, cycles per step, and the
 * overlap with compute — used by the runtime simulator and the ring
 * ablation.
 */

#ifndef NNBATON_SIM_RING_HPP
#define NNBATON_SIM_RING_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace nnbaton {

/** One rotation step: every chiplet forwards its chunk simultaneously. */
struct RotationStep
{
    int step = 0;            //!< 0-based step index (1..N_P-1 transfer)
    int64_t bitsPerLink = 0; //!< bits written through each ring link
    int64_t cycles = 0;      //!< cycles at the given link bandwidth
};

/** A complete rotation of one shared-tensor working set. */
struct RotationPlan
{
    int chiplets = 1;
    int64_t chunkBits = 0;  //!< shared-tensor bits resident per chiplet
    std::vector<RotationStep> steps;

    /** Total bits crossing each ring link for the full rotation. */
    int64_t bitsPerLink() const;

    /** Total bits crossing all N_P links. */
    int64_t totalBits() const;

    /** Cycles for the full rotation if nothing overlaps it. */
    int64_t totalCycles() const;

    /**
     * Cycles NOT hidden behind compute when each step overlaps the
     * computation of the freshly received chunk.
     */
    int64_t exposedCycles(int64_t compute_cycles_per_chunk) const;

    std::string toString() const;
};

/**
 * Plan the rotation of a shared working set of @p shared_bits total
 * across @p chiplets, with @p link_bits_per_cycle ring bandwidth.
 * Each chiplet starts with shared_bits / chiplets resident; N_P - 1
 * steps circulate the remainder.  A single chiplet needs no rotation.
 */
RotationPlan planRotation(int chiplets, int64_t shared_bits,
                          int link_bits_per_cycle);

} // namespace nnbaton

#endif // NNBATON_SIM_RING_HPP
