#include "sim/runtime.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/util.hpp"

namespace nnbaton {

std::string
RuntimeResult::toString() const
{
    return strprintf("%lld cycles (compute %lld, stall %lld), util %.3f",
                     static_cast<long long>(cycles),
                     static_cast<long long>(computeCycles),
                     static_cast<long long>(stallCycles), utilization);
}

namespace {

/** Per-layer machine parameters shared by estimator and simulator. */
struct Phases
{
    int64_t tiles = 0;           //!< core tiles per chiplet
    int64_t computePerTile = 0;  //!< cycles to compute one core tile
    int64_t dramPerTile = 0;     //!< cycles to stream one tile's DRAM IO
    int64_t ringPerTile = 0;     //!< cycles of ring rotation per tile
};

/** Cycles to compute one core tile (the dense / depthwise split). */
int64_t
computeCyclesPerTile(const ConvLayer &layer,
                     const AcceleratorConfig &cfg,
                     const MappingShapes &s)
{
    // Dense layers reduce the input channels over the P-wide vector;
    // depthwise layers pack the kernel window into the vector instead.
    if (layer.isDepthwise()) {
        return static_cast<int64_t>(s.coreTile.ho) * s.coreTile.wo *
               ceilDiv(static_cast<int64_t>(layer.kh) * layer.kw,
                       cfg.core.vectorSize);
    }
    const int p = std::min<int>(cfg.core.vectorSize, layer.ciPerGroup());
    return static_cast<int64_t>(s.coreTile.ho) * s.coreTile.wo *
           layer.kh * layer.kw * ceilDiv(layer.ciPerGroup(), p);
}

Phases
derivePhases(const ConvLayer &layer, const AcceleratorConfig &cfg,
             const AccessAnalysis &a, const TechnologyModel &tech)
{
    Phases ph;
    const MappingShapes &s = a.shapes;
    ph.tiles = s.coreTilesPerChiplet();
    ph.computePerTile = computeCyclesPerTile(layer, cfg, s);

    // DRAM traffic is spread over the N_P DDR PHYs (crossbar).
    const int np = cfg.package.chiplets;
    const int64_t dram_per_chiplet =
        ceilDiv(a.counts.dramReadBits() + a.counts.dramWriteBits, np);
    ph.dramPerTile =
        ceilDiv(ceilDiv(dram_per_chiplet, ph.tiles),
                tech.dramBitsPerCycle);

    // Ring traffic is spread over the N_P directional links.
    const int64_t ring_per_link = np > 1 ? ceilDiv(a.counts.d2dBits, np)
                                         : 0;
    ph.ringPerTile = ceilDiv(ceilDiv(ring_per_link, ph.tiles),
                             tech.d2dBitsPerCycle);
    return ph;
}

} // namespace

int64_t
computeCycles(const ConvLayer &layer, const AcceleratorConfig &cfg,
              const MappingShapes &shapes)
{
    return shapes.coreTilesPerChiplet() *
           computeCyclesPerTile(layer, cfg, shapes);
}

RuntimeResult
estimateRuntime(const ConvLayer &layer, const AcceleratorConfig &cfg,
                const AccessAnalysis &analysis,
                const TechnologyModel &tech)
{
    const Phases ph = derivePhases(layer, cfg, analysis, tech);
    RuntimeResult r;
    r.computeCycles = ph.tiles * ph.computePerTile;
    const int64_t tile_latency =
        std::max({ph.computePerTile, ph.dramPerTile, ph.ringPerTile});
    r.cycles = ph.tiles * tile_latency + ph.dramPerTile; // pipeline fill
    r.stallCycles = r.cycles - r.computeCycles;
    const double peak =
        static_cast<double>(cfg.totalMacs()) * r.cycles;
    r.utilization =
        peak > 0 ? static_cast<double>(layer.macs()) / peak : 0.0;
    return r;
}

RuntimeResult
RuntimeSimulator::run(const ConvLayer &layer,
                      const AccessAnalysis &analysis) const
{
    const Phases ph = derivePhases(layer, cfg_, analysis, tech_);
    const MappingShapes &s = analysis.shapes;

    // Walk the chiplet-temporal tile schedule explicitly.  Tiles on
    // the trailing edge of each dimension may be partial; compute
    // shrinks accordingly while loads are already amortised per tile.
    RuntimeResult r;
    int64_t now = ph.dramPerTile; // first-tile load (pipeline fill)
    const int p =
        std::min<int>(cfg_.core.vectorSize, layer.ciPerGroup());

    // Batch samples replay the whole package-temporal schedule once
    // each (outermost loop), exactly like the analytical tile count.
    const int64_t outer =
        static_cast<int64_t>(s.batchTrips) * s.pkgTrips();
    for (int64_t o = 0; o < outer; ++o) {
        for (int th = 0; th < s.chipTripsH; ++th) {
            const int ho = std::min<int>(
                s.coreTile.ho, s.coreMacro.ho - th * s.coreTile.ho);
            for (int tw = 0; tw < s.chipTripsW; ++tw) {
                const int wo = std::min<int>(
                    s.coreTile.wo, s.coreMacro.wo - tw * s.coreTile.wo);
                for (int tc = 0; tc < s.chipTripsC; ++tc) {
                    const int64_t compute =
                        layer.isDepthwise()
                            ? static_cast<int64_t>(std::max(ho, 1)) *
                                  std::max(wo, 1) *
                                  ceilDiv(static_cast<int64_t>(
                                              layer.kh) *
                                              layer.kw,
                                          cfg_.core.vectorSize)
                            : static_cast<int64_t>(std::max(ho, 1)) *
                                  std::max(wo, 1) * layer.kh *
                                  layer.kw *
                                  ceilDiv(layer.ciPerGroup(), p);
                    r.computeCycles += compute;
                    now += std::max({compute, ph.dramPerTile,
                                     ph.ringPerTile});
                }
            }
        }
    }
    r.cycles = now;
    r.stallCycles = r.cycles - r.computeCycles;
    const double peak =
        static_cast<double>(cfg_.totalMacs()) * r.cycles;
    r.utilization =
        peak > 0 ? static_cast<double>(layer.macs()) / peak : 0.0;
    return r;
}

} // namespace nnbaton
