/**
 * @file
 * Runtime model (paper section V-C: "We establish a simulator to
 * obtain the runtime for a specific workload").
 *
 * Two implementations share one machine model:
 *  - estimateRuntime(): closed-form cycle estimate used inside the
 *    mapping search and the DSE sweeps (O(1) per evaluation);
 *  - RuntimeSimulator: a per-tile phase simulator with double-buffered
 *    load/compute overlap, ring-rotation steps, and edge tiles, used
 *    for the final reported numbers and to validate the estimate.
 *
 * Runtime depends on the total MAC count and the achieved utilisation
 * (lane/vector padding plus transfer-bound stalls), exactly the two
 * factors the paper names.
 */

#ifndef NNBATON_SIM_RUNTIME_HPP
#define NNBATON_SIM_RUNTIME_HPP

#include <cstdint>
#include <string>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** Runtime result for one layer. */
struct RuntimeResult
{
    int64_t cycles = 0;        //!< total cycles at the core clock
    int64_t computeCycles = 0; //!< pure compute, no stalls
    int64_t stallCycles = 0;   //!< transfer-bound stall cycles
    double utilization = 0.0;  //!< effective MACs / (peak MACs * cycles)

    std::string toString() const;
};

/** Closed-form runtime estimate for an analysed mapping. */
RuntimeResult estimateRuntime(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const AccessAnalysis &analysis,
                              const TechnologyModel &tech);

/**
 * Pure compute cycles (no stalls) for a mapping's derived shapes: the
 * core-tile count times the per-tile vector-MAC issue count.  This is
 * a hard floor on estimateRuntime()'s cycle count (which models edge
 * tiles at full size, like the shapes), which is what the mapping
 * search's score-bound pruning needs (mapper/bound.hpp).  The phase
 * simulator shrinks edge tiles and may report fewer compute cycles;
 * the search never scores with the simulator.
 */
int64_t computeCycles(const ConvLayer &layer,
                      const AcceleratorConfig &cfg,
                      const MappingShapes &shapes);

/**
 * Per-tile phase simulator.
 *
 * Each chiplet runs its core-tile schedule; a tile's next-tile loads
 * (DRAM) and rotation steps (ring) overlap the current tile's compute
 * thanks to the double-buffered A-L1/W-L1, so the tile latency is the
 * max of the three phases.  The first tile pays its load latency in
 * full (pipeline fill) and the last output drain is overlapped except
 * for the final write-back.
 */
class RuntimeSimulator
{
  public:
    RuntimeSimulator(const AcceleratorConfig &cfg,
                     const TechnologyModel &tech)
        : cfg_(cfg), tech_(tech)
    {
    }

    /** Simulate one layer under an analysed mapping. */
    RuntimeResult run(const ConvLayer &layer,
                      const AccessAnalysis &analysis) const;

  private:
    const AcceleratorConfig &cfg_;
    const TechnologyModel &tech_;
};

} // namespace nnbaton

#endif // NNBATON_SIM_RUNTIME_HPP
