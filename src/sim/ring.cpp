#include "sim/ring.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "common/util.hpp"

namespace nnbaton {

int64_t
RotationPlan::bitsPerLink() const
{
    int64_t bits = 0;
    for (const RotationStep &s : steps)
        bits += s.bitsPerLink;
    return bits;
}

int64_t
RotationPlan::totalBits() const
{
    return bitsPerLink() * chiplets;
}

int64_t
RotationPlan::totalCycles() const
{
    int64_t cycles = 0;
    for (const RotationStep &s : steps)
        cycles += s.cycles;
    return cycles;
}

int64_t
RotationPlan::exposedCycles(int64_t compute_cycles_per_chunk) const
{
    // Each step's transfer overlaps the compute on the chunk that
    // just arrived (write-through into the double buffer); only the
    // excess of transfer over compute is exposed.
    int64_t exposed = 0;
    for (const RotationStep &s : steps)
        exposed += std::max<int64_t>(0, s.cycles -
                                            compute_cycles_per_chunk);
    return exposed;
}

std::string
RotationPlan::toString() const
{
    std::ostringstream ss;
    ss << chiplets << " chiplets, chunk " << chunkBits << " bits, "
       << steps.size() << " steps, " << totalCycles() << " cycles";
    return ss.str();
}

RotationPlan
planRotation(int chiplets, int64_t shared_bits, int link_bits_per_cycle)
{
    if (chiplets < 1)
        panic("planRotation: bad chiplet count %d", chiplets);
    if (shared_bits < 0 || link_bits_per_cycle <= 0)
        panic("planRotation: bad bits/bandwidth");

    RotationPlan plan;
    plan.chiplets = chiplets;
    plan.chunkBits = ceilDiv(shared_bits, chiplets);
    if (chiplets == 1)
        return plan; // everything is already local

    for (int step = 0; step < chiplets - 1; ++step) {
        RotationStep s;
        s.step = step;
        s.bitsPerLink = plan.chunkBits;
        s.cycles = ceilDiv(plan.chunkBits, link_bits_per_cycle);
        plan.steps.push_back(s);
    }
    return plan;
}

} // namespace nnbaton
