/**
 * @file
 * The pre-design flow: sweep the table II space under MAC-count and
 * chiplet-area budgets, evaluate each design with the optimal
 * per-layer mapping, and report energy / runtime / EDP (paper
 * sections IV-D and VI-B).
 */

#ifndef NNBATON_DSE_EXPLORER_HPP
#define NNBATON_DSE_EXPLORER_HPP

#include <optional>
#include <string>
#include <vector>

#include "arch/area.hpp"
#include "common/cancel.hpp"
#include "cost/ledger.hpp"
#include "dse/space.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** One evaluated hardware design. */
struct DesignPoint
{
    ComputeAllocation compute;
    MemoryAllocation memory;
    AreaBreakdown area; //!< per-chiplet area
    ModelCost cost;     //!< whole-model cost with optimal mappings
    double clockGhz = 0.5; //!< core clock used for runtime reporting,
                           //!< taken from the TechnologyModel

    double edp() const { return cost.edp(); }

    /** Runtime in milliseconds at the technology model's clock. */
    double runtimeMs() const { return cost.runtimeMs(clockGhz); }

    /** e.g. "2-8-16-16 | A-L1 32K W-L1 144K A-L2 64K | 2.86mm2". */
    std::string toString() const;
};

/** Sweep options. */
struct DseOptions
{
    int64_t totalMacs = 2048;       //!< required MAC units
    double areaLimitMm2 = 0.0;      //!< per-chiplet; <= 0: unconstrained
    bool proportionalMem = false;   //!< figure 14 mode (vs table II grid)
    SearchEffort effort = SearchEffort::Fast;
    Objective objective = Objective::MinEnergy;

    /** Worker lanes for the sweep (including the caller); <= 1 runs
     *  serially.  Results are bit-identical across thread counts. */
    int threads = 1;

    /** Score-bound pruning inside the mapping search (sound). */
    bool boundPruning = true;

    /** Per-layer search strategy (docs/search.md).  Bnb sweeps visit
     *  the same winners as Exhaustive with far fewer evaluations;
     *  Anneal is approximate and seeded. */
    SearchMode searchMode = SearchMode::Exhaustive;

    /** RNG seed / move budget for SearchMode::Anneal. */
    uint64_t annealSeed = 1;
    int annealIterations = 400;

    /** Seed each Bnb layer search from a resident same-shape cache
     *  entry (SearchOptions::warmStart).  Winners never change, but
     *  the evaluated/pruned split then depends on cache history, so
     *  deterministic-counter sweeps must leave this off; the serving
     *  daemon turns it on. */
    bool warmStart = false;

    /** Record latency histograms (per design point and per layer
     *  search) into the obs metrics registry (the --metrics CLI
     *  flag).  Observation only: never changes results. */
    bool detailedMetrics = false;

    /**
     * Progress heartbeat period in seconds (--progress[=secs]; <= 0
     * disables).  A sweep-side thread logs points done/total,
     * points/sec, ETA and cache-hit / prune rates every period and
     * mirrors them as dse.progress.* gauges, so a long sweep (or a
     * fleet worker's daemon) is monitorable mid-flight.  Observation
     * only: never changes results.
     */
    double progressSeconds = 0.0;

    /**
     * Fail-fast mode (--strict): the first design point whose
     * evaluation throws aborts the whole sweep by rethrowing.  The
     * default quarantines such points into DseResult::poisoned and
     * keeps sweeping.
     */
    bool strict = false;

    /** Checkpoint file; empty disables checkpointing. */
    std::string checkpointPath;

    /** Flush the checkpoint every N completed design points (the
     *  final flush always happens). */
    int checkpointEvery = 32;

    /** Resume from this checkpoint; empty starts fresh.  Throws
     *  StatusError(FailedPrecondition) when the file was written for
     *  a different model or options. */
    std::string resumePath;

    /**
     * Cooperative cancellation (deadline / SIGINT).  Borrowed, may be
     * null.  Once it fires, remaining design points are skipped, the
     * sweep finishes collection and returns with complete == false.
     */
    CancelToken *cancel = nullptr;

    /**
     * Shared mapping cache (borrowed, may be null).  The sweep
     * defaults to a private cache scoped to one explore() call; a
     * long-lived caller (the serving daemon) passes its process-wide
     * cache here so layer searches stay warm across sweeps.  The key
     * includes the technology fingerprint, so sharing across tech
     * models is safe.  Search hit/miss counters then reflect the
     * cache's prior contents instead of starting cold.
     */
    MappingCache *cache = nullptr;
};

/** A design point whose evaluation threw (quarantined, not fatal). */
struct PoisonedPoint
{
    ComputeAllocation compute;
    MemoryAllocation memory;
    int64_t sweepIndex = 0; //!< position in the deterministic sweep
                            //!< order — rerun with the same options to
                            //!< reproduce
    std::string error;      //!< the captured Status, stringified
};

/** Sweep result. */
struct DseResult
{
    std::vector<DesignPoint> points; //!< valid designs
    int64_t swept = 0;               //!< combos considered
    int64_t areaRejected = 0;        //!< failed the area budget
    int64_t infeasible = 0;          //!< no legal mapping for a layer

    /** Mapping-search work counters, summed over the sweep.  The
     *  compute-once cache and fixed-block pruning keep these
     *  deterministic across thread counts. */
    SearchStats search;

    /** Wall-clock seconds spent in explore() (not deterministic). */
    double elapsedSeconds = 0.0;

    /** Distinct (layer shape, config) searches in the shared cache. */
    int64_t cacheEntries = 0;

    /** Design points whose evaluation threw, quarantined with the
     *  error (empty under --strict, which rethrows instead). */
    std::vector<PoisonedPoint> poisoned;

    /** Points not evaluated because cancellation / deadline fired. */
    int64_t skipped = 0;

    /** Points restored from a --resume checkpoint (their search work
     *  counters are not re-counted; see dse/checkpoint.hpp). */
    int64_t resumed = 0;

    /** False when the sweep was cut short (skipped > 0). */
    bool complete = true;

    /** Index of the minimum-EDP point, if any. */
    std::optional<size_t> bestEdp() const;

    /** Index of the minimum-energy point, if any. */
    std::optional<size_t> bestEnergy() const;
};

/**
 * Run the pre-design sweep for @p model.
 *
 * Resilience: a design point whose evaluation throws is quarantined
 * into DseResult::poisoned (unless options.strict), a fired
 * options.cancel token skips the remaining points and marks the
 * result incomplete, and options.checkpointPath / resumePath persist
 * and restore evaluated points so an interrupted sweep resumed with
 * identical options reproduces the same points, classification counts
 * and winner bit-for-bit.
 */
DseResult explore(const Model &model, const DseOptions &options,
                  const TechnologyModel &tech);

} // namespace nnbaton

#endif // NNBATON_DSE_EXPLORER_HPP
