/**
 * @file
 * The pre-design flow: sweep the table II space under MAC-count and
 * chiplet-area budgets, evaluate each design with the optimal
 * per-layer mapping, and report energy / runtime / EDP (paper
 * sections IV-D and VI-B).
 */

#ifndef NNBATON_DSE_EXPLORER_HPP
#define NNBATON_DSE_EXPLORER_HPP

#include <optional>
#include <string>
#include <vector>

#include "arch/area.hpp"
#include "cost/ledger.hpp"
#include "dse/space.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** One evaluated hardware design. */
struct DesignPoint
{
    ComputeAllocation compute;
    MemoryAllocation memory;
    AreaBreakdown area; //!< per-chiplet area
    ModelCost cost;     //!< whole-model cost with optimal mappings

    double edp() const { return cost.edp(); }

    /** e.g. "2-8-16-16 | A-L1 32K W-L1 144K A-L2 64K | 2.86mm2". */
    std::string toString() const;
};

/** Sweep options. */
struct DseOptions
{
    int64_t totalMacs = 2048;       //!< required MAC units
    double areaLimitMm2 = 0.0;      //!< per-chiplet; <= 0: unconstrained
    bool proportionalMem = false;   //!< figure 14 mode (vs table II grid)
    SearchEffort effort = SearchEffort::Fast;
    Objective objective = Objective::MinEnergy;
};

/** Sweep result. */
struct DseResult
{
    std::vector<DesignPoint> points; //!< valid designs
    int64_t swept = 0;               //!< combos considered
    int64_t areaRejected = 0;        //!< failed the area budget
    int64_t infeasible = 0;          //!< no legal mapping for a layer

    /** Index of the minimum-EDP point, if any. */
    std::optional<size_t> bestEdp() const;

    /** Index of the minimum-energy point, if any. */
    std::optional<size_t> bestEnergy() const;
};

/** Run the pre-design sweep for @p model. */
DseResult explore(const Model &model, const DseOptions &options,
                  const TechnologyModel &tech);

} // namespace nnbaton

#endif // NNBATON_DSE_EXPLORER_HPP
