/**
 * @file
 * Sweep checkpoints: periodic JSON snapshots of evaluated design
 * points so a long pre-design sweep survives interruption
 * (--checkpoint / --resume in the CLI).
 *
 * A checkpoint stores, per evaluated design point, its classification
 * (valid / area-rejected / infeasible) and — for valid points — the
 * full DesignPoint including the per-layer cost ledger, with doubles
 * serialised at %.17g so a resumed sweep reproduces bit-identical
 * points and winner.  Poisoned and skipped points are deliberately
 * not recorded: a resume retries them.
 *
 * Search work counters (SearchStats) are NOT checkpointed.  Their
 * cache-hit/miss attribution depends on which design point populated
 * a shared cache entry first, which a partial run has already decided
 * differently than a fresh one would; restored points therefore
 * contribute no counters, and the determinism guarantee covers the
 * points, classification counts and recommended winner only.
 *
 * Writes are atomic: the snapshot is written to "<path>.tmp" and
 * renamed over the target, so a kill mid-write leaves the previous
 * checkpoint intact (the kill/resume test exercises exactly this).
 */

#ifndef NNBATON_DSE_CHECKPOINT_HPP
#define NNBATON_DSE_CHECKPOINT_HPP

#include <mutex>
#include <string>
#include <unordered_map>

#include "common/json.hpp"
#include "common/status.hpp"
#include "dse/explorer.hpp"
#include "dse/slice.hpp"

namespace nnbaton {

/** One recorded design-point outcome. */
struct CheckpointEntry
{
    enum class Kind
    {
        AreaRejected,
        Infeasible,
        Valid,
    };
    Kind kind = Kind::AreaRejected;
    DesignPoint point; //!< populated only when kind == Valid
};

/** A (possibly partial) sweep snapshot. */
struct SweepCheckpoint
{
    /** Guards against resuming with a different model or options. */
    std::string fingerprint;

    /** True when the snapshot covers the whole sweep. */
    bool complete = false;

    /** Outcomes keyed by designPointKey(). */
    std::unordered_map<std::string, CheckpointEntry> entries;
};

/** Stable identity of a design point within a sweep,
 *  e.g. "4-8-8-8|1536|800|18432|65536". */
std::string designPointKey(const ComputeAllocation &compute,
                           const MemoryAllocation &memory);

/** Stable identity of a sweep: model plus every option that shapes
 *  the space or the scores (threads excluded — results are
 *  thread-count independent). */
std::string sweepFingerprint(const Model &model,
                             const DseOptions &options);

/**
 * Atomically write @p checkpoint to @p path (tmp file + rename).
 * Returns errUnavailable on I/O failure — the sweep engine counts the
 * failure and keeps going rather than losing completed work.
 */
Status saveSweepCheckpoint(const std::string &path,
                           const SweepCheckpoint &checkpoint);

/**
 * Load a checkpoint: errNotFound when @p path cannot be opened,
 * errDataLoss when the contents are not a valid checkpoint document.
 * Fingerprint matching is the caller's job (the explorer rejects a
 * mismatch with errFailedPrecondition).
 */
StatusOr<SweepCheckpoint> loadSweepCheckpoint(const std::string &path);

/**
 * Serialise a full DesignPoint (doubles at %.17g).  One serialisation
 * shared by the checkpoint file and the fabric's sweepUnit responses —
 * the same bytes travel both paths, so a distributed sweep and a
 * checkpoint resume reconstruct identical points.
 */
void writeDesignPointJson(JsonWriter &j, const DesignPoint &point);

/** Inverse of writeDesignPointJson; errDataLoss on malformed input. */
Status readDesignPointJson(const JsonValue &value, DesignPoint &point);

/** Wire/file name of an entry kind ("valid", "area_rejected", ...). */
const char *checkpointKindName(CheckpointEntry::Kind kind);

/** Parse a kind name; false when @p name is not a known kind. */
bool parseCheckpointKind(const std::string &name,
                         CheckpointEntry::Kind &out);

/**
 * Shared checkpoint state: sweep workers (local pool lanes or fabric
 * unit completions) append their settled outcome under the mutex and
 * every checkpointEvery completions the current snapshot is flushed
 * (atomically) to disk.  Poisoned and skipped points are not recorded
 * — a resume retries them.
 */
class CheckpointSink
{
  public:
    CheckpointSink(std::string path, int every, std::string fingerprint)
        : path_(std::move(path)), every_(every < 1 ? 1 : every)
    {
        state_.fingerprint = std::move(fingerprint);
    }

    bool enabled() const { return !path_.empty(); }

    /** Seed with entries restored from a --resume checkpoint so a
     *  later resume of THIS run still sees them. */
    void seed(const std::string &key, const CheckpointEntry &entry);

    /** Record a completed point; flushes every N completions. */
    void record(const std::string &key, const SweepPointOutcome &out);

    /** Final flush; @p complete marks a full (uninterrupted) sweep. */
    void finish(bool complete);

  private:
    void flushLocked();

    const std::string path_;
    const int every_;
    std::mutex mutex_;
    SweepCheckpoint state_;
    int sinceFlush_ = 0;
};

} // namespace nnbaton

#endif // NNBATON_DSE_CHECKPOINT_HPP
