/**
 * @file
 * Sweep checkpoints: periodic JSON snapshots of evaluated design
 * points so a long pre-design sweep survives interruption
 * (--checkpoint / --resume in the CLI).
 *
 * A checkpoint stores, per evaluated design point, its classification
 * (valid / area-rejected / infeasible) and — for valid points — the
 * full DesignPoint including the per-layer cost ledger, with doubles
 * serialised at %.17g so a resumed sweep reproduces bit-identical
 * points and winner.  Poisoned and skipped points are deliberately
 * not recorded: a resume retries them.
 *
 * Search work counters (SearchStats) are NOT checkpointed.  Their
 * cache-hit/miss attribution depends on which design point populated
 * a shared cache entry first, which a partial run has already decided
 * differently than a fresh one would; restored points therefore
 * contribute no counters, and the determinism guarantee covers the
 * points, classification counts and recommended winner only.
 *
 * Writes are atomic: the snapshot is written to "<path>.tmp" and
 * renamed over the target, so a kill mid-write leaves the previous
 * checkpoint intact (the kill/resume test exercises exactly this).
 */

#ifndef NNBATON_DSE_CHECKPOINT_HPP
#define NNBATON_DSE_CHECKPOINT_HPP

#include <string>
#include <unordered_map>

#include "common/status.hpp"
#include "dse/explorer.hpp"

namespace nnbaton {

/** One recorded design-point outcome. */
struct CheckpointEntry
{
    enum class Kind
    {
        AreaRejected,
        Infeasible,
        Valid,
    };
    Kind kind = Kind::AreaRejected;
    DesignPoint point; //!< populated only when kind == Valid
};

/** A (possibly partial) sweep snapshot. */
struct SweepCheckpoint
{
    /** Guards against resuming with a different model or options. */
    std::string fingerprint;

    /** True when the snapshot covers the whole sweep. */
    bool complete = false;

    /** Outcomes keyed by designPointKey(). */
    std::unordered_map<std::string, CheckpointEntry> entries;
};

/** Stable identity of a design point within a sweep,
 *  e.g. "4-8-8-8|1536|800|18432|65536". */
std::string designPointKey(const ComputeAllocation &compute,
                           const MemoryAllocation &memory);

/** Stable identity of a sweep: model plus every option that shapes
 *  the space or the scores (threads excluded — results are
 *  thread-count independent). */
std::string sweepFingerprint(const Model &model,
                             const DseOptions &options);

/**
 * Atomically write @p checkpoint to @p path (tmp file + rename).
 * Returns errUnavailable on I/O failure — the sweep engine counts the
 * failure and keeps going rather than losing completed work.
 */
Status saveSweepCheckpoint(const std::string &path,
                           const SweepCheckpoint &checkpoint);

/**
 * Load a checkpoint: errNotFound when @p path cannot be opened,
 * errDataLoss when the contents are not a valid checkpoint document.
 * Fingerprint matching is the caller's job (the explorer rejects a
 * mismatch with errFailedPrecondition).
 */
StatusOr<SweepCheckpoint> loadSweepCheckpoint(const std::string &path);

} // namespace nnbaton

#endif // NNBATON_DSE_CHECKPOINT_HPP
