/**
 * @file
 * Resume-aware progress arithmetic for the sweep heartbeat.
 *
 * Pure functions only: the explorer's heartbeat thread feeds in the
 * raw counters and the wall-clock elapsed time, and renders whatever
 * comes back.  Keeping the arithmetic out of the thread makes the
 * --resume behaviour unit-testable — the historical bug class here is
 * a restored checkpoint inflating points/sec (restored points count as
 * "done" but took no sweep time this run) and an ETA that divides by
 * zero or reports "done" while points remain.
 */

#ifndef NNBATON_DSE_PROGRESS_HPP
#define NNBATON_DSE_PROGRESS_HPP

#include <algorithm>
#include <cstdint>

namespace nnbaton {

/** One heartbeat's derived figures. */
struct ProgressStats
{
    int64_t done = 0;     //!< points complete, restored included
    int64_t total = 0;    //!< points in the sweep
    int64_t restored = 0; //!< points seeded from the resume checkpoint
    int64_t fresh = 0;    //!< points actually computed this run
    int64_t remaining = 0;

    /** Throughput of *this run*: fresh points over elapsed time.
     *  Restored points are excluded — they cost no sweep time, so
     *  counting them would inflate the rate right after a resume. */
    double pointsPerSec = 0.0;

    /** Remaining work over this run's fresh rate; 0 when finished and
     *  also 0 (unknown) before the first fresh point lands. */
    double etaSeconds = 0.0;

    bool finished() const { return remaining == 0; }
};

/**
 * Derive heartbeat figures from raw counters.  @p done includes the
 * @p restored points (the worker counter starts at the restored
 * count); negative inputs and done < restored are clamped rather than
 * propagated so a torn relaxed-atomic read can never produce a
 * negative rate or ETA.
 */
inline ProgressStats
computeProgressStats(int64_t done, int64_t total, int64_t restored,
                     double elapsed_seconds)
{
    ProgressStats s;
    s.total = std::max<int64_t>(0, total);
    s.done = std::clamp<int64_t>(done, 0, s.total);
    s.restored = std::clamp<int64_t>(restored, 0, s.done);
    s.fresh = s.done - s.restored;
    s.remaining = s.total - s.done;
    s.pointsPerSec =
        elapsed_seconds > 0.0
            ? static_cast<double>(s.fresh) / elapsed_seconds
            : 0.0;
    s.etaSeconds = s.remaining > 0 && s.pointsPerSec > 0.0
                       ? static_cast<double>(s.remaining) /
                             s.pointsPerSec
                       : 0.0;
    return s;
}

} // namespace nnbaton

#endif // NNBATON_DSE_PROGRESS_HPP
