/**
 * @file
 * The sweep decomposed into its order-independent pieces, so one
 * design-point evaluation pipeline serves three callers:
 *
 *  - explore() (dse/explorer.cpp), the single-process sweep;
 *  - the serve daemon's `sweepUnit` op, which evaluates one
 *    contiguous slice of the fingerprinted task list on behalf of a
 *    remote coordinator;
 *  - the fabric coordinator's local fallback and final merge.
 *
 * The contract that makes distribution safe: enumerateSweepTasks() is
 * a pure function of DseOptions (deterministic order), every task is
 * evaluated independently, and collectSweepOutcomes() folds a full
 * outcome vector into a DseResult in task order.  Any partition of
 * the index space, evaluated anywhere, merges back bit-identically to
 * the serial sweep.
 */

#ifndef NNBATON_DSE_SLICE_HPP
#define NNBATON_DSE_SLICE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "mapper/cache.hpp"

namespace nnbaton {

/** One enumerated design point, in deterministic sweep order. */
struct SweepTask
{
    ComputeAllocation compute;
    MemoryAllocation memory;
};

/**
 * The full task list for @p options: the table II grid (or the
 * proportional-memory diagonal) flattened in the canonical order that
 * indexes checkpoints, work units and poisoned-point reports.  Throws
 * StatusError(InvalidArgument) when no compute allocation yields the
 * requested MAC count.
 */
std::vector<SweepTask> enumerateSweepTasks(const DseOptions &options);

/** Per-design-point evaluation outcome, kept in sweep order so any
 *  parallel or distributed collection is bit-identical to serial. */
struct SweepPointOutcome
{
    enum Kind
    {
        AreaRejected,
        Infeasible,
        Valid,
        Poisoned, //!< evaluation threw; quarantined with the error
        Skipped,  //!< not evaluated (cancellation / deadline)
    };
    Kind kind = AreaRejected;
    DesignPoint point;
    SearchStats stats;
    std::string error;     //!< Poisoned only: the captured Status
    bool restored = false; //!< prefilled from a checkpoint
};

/**
 * Evaluate one task.  Propagates exceptions (the caller owns
 * quarantine policy); honours options.cancel through the mapping
 * search.
 */
SweepPointOutcome evaluateSweepPoint(const Model &model,
                                     const DseOptions &options,
                                     const TechnologyModel &tech,
                                     const SweepTask &task,
                                     MappingCache &cache);

/**
 * Evaluate the contiguous slice [begin, end) of @p tasks serially,
 * returning end-begin outcomes (slot i holds task begin+i).  Faults
 * are quarantined as Poisoned (or rethrown under options.strict) and
 * a fired options.cancel marks the remaining slots Skipped — the same
 * policy as explore(), so a slice evaluated remotely merges without
 * translation.  Each point passes through verif::injectPointFault
 * with its absolute sweep index, keeping FaultPlan semantics aligned
 * between local and distributed runs.
 */
std::vector<SweepPointOutcome>
evaluateSweepSlice(const Model &model, const DseOptions &options,
                   const TechnologyModel &tech,
                   const std::vector<SweepTask> &tasks, int64_t begin,
                   int64_t end, MappingCache &cache);

/**
 * Fold a full outcome vector (one slot per task, sweep order) into a
 * DseResult: points, classification counters, poisoned list, summed
 * SearchStats and the complete flag.  cacheEntries / elapsedSeconds
 * are the caller's to fill.  Consumes the outcomes (points are moved
 * out).
 */
DseResult collectSweepOutcomes(const std::vector<SweepTask> &tasks,
                               std::vector<SweepPointOutcome> &outcomes);

} // namespace nnbaton

#endif // NNBATON_DSE_SLICE_HPP
