#include "dse/slice.hpp"

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"
#include "verif/fault.hpp"

namespace nnbaton {

std::vector<SweepTask>
enumerateSweepTasks(const DseOptions &options)
{
    NNBATON_TRACE_SCOPE("dse.enumerate_space");
    std::vector<SweepTask> tasks;
    const auto computes = enumerateCompute(options.totalMacs);
    if (computes.empty()) {
        throwStatus(errInvalidArgument(
            "explore: no table II compute allocation yields %lld MACs",
            static_cast<long long>(options.totalMacs)));
    }

    std::vector<MemoryAllocation> memories;
    if (!options.proportionalMem)
        memories = enumerateMemory();

    for (const ComputeAllocation &compute : computes) {
        if (options.proportionalMem) {
            tasks.push_back({compute, proportionalMemory(compute)});
            continue;
        }
        for (const MemoryAllocation &memory : memories)
            tasks.push_back({compute, memory});
    }
    return tasks;
}

SweepPointOutcome
evaluateSweepPoint(const Model &model, const DseOptions &options,
                   const TechnologyModel &tech, const SweepTask &task,
                   MappingCache &cache)
{
    NNBATON_TRACE_SCOPE("dse.design_point");

    SweepPointOutcome out;
    AcceleratorConfig cfg = makeConfig(task.compute, task.memory);
    AreaBreakdown area = chipletArea(cfg, tech, defaultOl2Bytes(cfg));
    if (options.areaLimitMm2 > 0.0 &&
        area.total() > options.areaLimitMm2) {
        out.kind = SweepPointOutcome::AreaRejected;
        return out;
    }
    SearchOptions search;
    search.threads = 1; // point-level parallelism only (nested-free)
    search.boundPruning = options.boundPruning;
    search.mode = options.searchMode;
    search.annealSeed = options.annealSeed;
    search.annealIterations = options.annealIterations;
    search.warmStart = options.warmStart;
    search.detailedMetrics = options.detailedMetrics;
    search.cancel = options.cancel;
    const uint64_t t0 = options.detailedMetrics ? obs::traceNowNs() : 0;
    ModelMappingResult mapped =
        mapModel(model, cfg, tech, options.effort, options.objective,
                 search, &cache);
    if (options.detailedMetrics) {
        static obs::Histogram &m_point_us =
            obs::MetricsRegistry::instance().histogram(
                "dse.point_latency_us");
        m_point_us.record(
            static_cast<int64_t>((obs::traceNowNs() - t0) / 1000));
    }
    out.stats = mapped.stats;
    if (!mapped.feasible) {
        out.kind = SweepPointOutcome::Infeasible;
        return out;
    }
    out.kind = SweepPointOutcome::Valid;
    out.point.compute = task.compute;
    out.point.memory = task.memory;
    out.point.area = area;
    out.point.cost = std::move(mapped.cost);
    out.point.clockGhz = tech.frequencyGhz;
    return out;
}

std::vector<SweepPointOutcome>
evaluateSweepSlice(const Model &model, const DseOptions &options,
                   const TechnologyModel &tech,
                   const std::vector<SweepTask> &tasks, int64_t begin,
                   int64_t end, MappingCache &cache)
{
    if (begin < 0 || end < begin ||
        end > static_cast<int64_t>(tasks.size())) {
        throwStatus(errInvalidArgument(
            "evaluateSweepSlice: [%lld, %lld) out of range for %zu "
            "tasks",
            static_cast<long long>(begin), static_cast<long long>(end),
            tasks.size()));
    }
    std::vector<SweepPointOutcome> outcomes(
        static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) {
        SweepPointOutcome &out = outcomes[static_cast<size_t>(i - begin)];
        if (options.cancel && options.cancel->cancelled()) {
            out.kind = SweepPointOutcome::Skipped;
            continue;
        }
        try {
            verif::injectPointFault(i);
            out = evaluateSweepPoint(model, options, tech,
                                     tasks[static_cast<size_t>(i)],
                                     cache);
        } catch (const StatusError &e) {
            const StatusCode code = e.status().code();
            if (code == StatusCode::Cancelled ||
                code == StatusCode::DeadlineExceeded) {
                out = SweepPointOutcome();
                out.kind = SweepPointOutcome::Skipped;
                continue;
            }
            if (options.strict)
                throw;
            out = SweepPointOutcome();
            out.kind = SweepPointOutcome::Poisoned;
            out.error = e.status().toString();
        } catch (const std::exception &e) {
            if (options.strict)
                throw;
            out = SweepPointOutcome();
            out.kind = SweepPointOutcome::Poisoned;
            out.error = e.what();
        }
        verif::notifyPointCompleted(options.cancel);
    }
    return outcomes;
}

DseResult
collectSweepOutcomes(const std::vector<SweepTask> &tasks,
                     std::vector<SweepPointOutcome> &outcomes)
{
    NNBATON_TRACE_SCOPE("dse.collect");
    DseResult result;
    for (size_t i = 0; i < outcomes.size(); ++i) {
        SweepPointOutcome &out = outcomes[i];
        ++result.swept;
        result.search += out.stats;
        if (out.restored)
            ++result.resumed;
        switch (out.kind) {
        case SweepPointOutcome::AreaRejected:
            ++result.areaRejected;
            break;
        case SweepPointOutcome::Infeasible:
            ++result.infeasible;
            break;
        case SweepPointOutcome::Valid:
            result.points.push_back(std::move(out.point));
            break;
        case SweepPointOutcome::Poisoned:
            result.poisoned.push_back(
                {tasks[i].compute, tasks[i].memory,
                 static_cast<int64_t>(i), std::move(out.error)});
            break;
        case SweepPointOutcome::Skipped:
            ++result.skipped;
            break;
        }
    }
    result.complete = result.skipped == 0;
    return result;
}

} // namespace nnbaton
