#include "dse/space.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/util.hpp"

namespace nnbaton {

namespace {

const int kVectorOptions[] = {2, 4, 8, 16};
const int kLaneOptions[] = {2, 4, 8, 16};
const int kCoreOptions[] = {1, 2, 4, 8, 16};
const int kChipletOptions[] = {1, 2, 4, 8};

const int64_t kOl1Options[] = {48, 96, 144};

/** Sizes from @p lo to @p hi: powers of two plus the 1.5x rungs the
 *  paper's linear memory model enables (e.g. 72 KB, 144 KB). */
std::vector<int64_t>
sizeLadder(int64_t lo, int64_t hi, bool with_mid)
{
    std::vector<int64_t> out;
    for (int64_t v = lo; v <= hi; v *= 2) {
        out.push_back(v);
        if (with_mid && v * 3 / 2 <= hi)
            out.push_back(v * 3 / 2);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

std::vector<ComputeAllocation>
enumerateCompute(int64_t total_macs)
{
    std::vector<ComputeAllocation> out;
    for (int np : kChipletOptions)
        for (int nc : kCoreOptions)
            for (int l : kLaneOptions)
                for (int p : kVectorOptions) {
                    ComputeAllocation c{np, nc, l, p};
                    if (c.totalMacs() == total_macs)
                        out.push_back(c);
                }
    return out;
}

std::vector<MemoryAllocation>
enumerateMemory()
{
    std::vector<MemoryAllocation> out;
    for (int64_t ol1 : kOl1Options)
        for (int64_t al1 : sizeLadder(1_KB, 128_KB, false))
            for (int64_t wl1 : sizeLadder(2_KB, 256_KB, true))
                for (int64_t al2 : sizeLadder(32_KB, 256_KB, true)) {
                    if (al1 > al2)
                        continue; // invalid: core buffer exceeds shared
                    out.push_back({ol1, al1, wl1, al2});
                }
    return out;
}

int64_t
memoryGridSize()
{
    return static_cast<int64_t>(std::size(kOl1Options)) *
           static_cast<int64_t>(sizeLadder(1_KB, 128_KB, false).size()) *
           static_cast<int64_t>(sizeLadder(2_KB, 256_KB, true).size()) *
           static_cast<int64_t>(sizeLadder(32_KB, 256_KB, true).size());
}

MemoryAllocation
proportionalMemory(const ComputeAllocation &compute)
{
    MemoryAllocation m;
    m.ol1Bytes = 1536 * compute.lanes / 8;
    m.al1Bytes = 800 * compute.vectorSize / 8;
    m.wl1Bytes = 18_KB * compute.lanes * compute.vectorSize / 64;
    m.al2Bytes = 8_KB * compute.cores;
    return m;
}

AcceleratorConfig
makeConfig(const ComputeAllocation &compute,
           const MemoryAllocation &memory)
{
    AcceleratorConfig cfg;
    cfg.package.chiplets = compute.chiplets;
    cfg.chiplet.cores = compute.cores;
    cfg.core.lanes = compute.lanes;
    cfg.core.vectorSize = compute.vectorSize;
    cfg.core.ol1Bytes = memory.ol1Bytes;
    cfg.core.al1Bytes = memory.al1Bytes;
    cfg.core.wl1Bytes = memory.wl1Bytes;
    cfg.chiplet.al2Bytes = memory.al2Bytes;
    cfg.validate();
    return cfg;
}

} // namespace nnbaton
