/**
 * @file
 * The pre-design exploration space (paper table II): computation
 * resources (vector size P, lanes L, cores N_C, chiplets N_P) and
 * memory footprints (O-L1, A-L1, W-L1, A-L2).
 */

#ifndef NNBATON_DSE_SPACE_HPP
#define NNBATON_DSE_SPACE_HPP

#include <cstdint>
#include <vector>

#include "arch/config.hpp"

namespace nnbaton {

/** One compute allocation (N_P, N_C, L, P). */
struct ComputeAllocation
{
    int chiplets = 1;
    int cores = 1;
    int lanes = 1;
    int vectorSize = 1;

    int64_t totalMacs() const
    {
        return static_cast<int64_t>(chiplets) * cores * lanes *
               vectorSize;
    }
};

/** One memory allocation (bytes). */
struct MemoryAllocation
{
    int64_t ol1Bytes = 0;
    int64_t al1Bytes = 0;
    int64_t wl1Bytes = 0;
    int64_t al2Bytes = 0;
};

/**
 * All table II compute allocations whose MAC product equals
 * @p total_macs: P, L in {2,4,8,16}, N_C in {1,2,4,8,16}, N_P in
 * {1,2,4,8}.
 */
std::vector<ComputeAllocation> enumerateCompute(int64_t total_macs);

/**
 * The table II memory grid: O-L1 {48,96,144} B, A-L1 {1..128} KB and
 * W-L1 {2..256} KB in power-of-two steps, A-L2 {32..256} KB.  The
 * paper's validity pruning (a core's A-L1 must not exceed the shared
 * A-L2) is applied here.
 */
std::vector<MemoryAllocation> enumerateMemory();

/** Total table II memory grid size before pruning. */
int64_t memoryGridSize();

/**
 * Memory scaled proportionally to the compute resources (figure 14:
 * "we assemble the memory hierarchy with buffer sizes proportional to
 * the computation resources"), anchored at the section VI-A case
 * study (8 lanes x 8 vector, 8 cores: 1.5 KB O-L1, 800 B A-L1, 18 KB
 * W-L1, 64 KB A-L2).
 */
MemoryAllocation proportionalMemory(const ComputeAllocation &compute);

/** Assemble a full AcceleratorConfig from the two allocations. */
AcceleratorConfig makeConfig(const ComputeAllocation &compute,
                             const MemoryAllocation &memory);

} // namespace nnbaton

#endif // NNBATON_DSE_SPACE_HPP
