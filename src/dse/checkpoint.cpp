#include "dse/checkpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "verif/fault.hpp"

namespace nnbaton {

namespace {

constexpr const char *kFormat = "nn-baton-sweep-checkpoint";
constexpr int kVersion = 1;

void
writeEnergyArray(JsonWriter &j, const EnergyBreakdown &e)
{
    j.beginArray();
    j.valueExact(e.dram)
        .valueExact(e.d2d)
        .valueExact(e.noc)
        .valueExact(e.al2)
        .valueExact(e.al1)
        .valueExact(e.wl1)
        .valueExact(e.ol1)
        .valueExact(e.ol2)
        .valueExact(e.mac);
    j.endArray();
}

} // namespace

const char *
checkpointKindName(CheckpointEntry::Kind kind)
{
    switch (kind) {
    case CheckpointEntry::Kind::AreaRejected:
        return "area_rejected";
    case CheckpointEntry::Kind::Infeasible:
        return "infeasible";
    case CheckpointEntry::Kind::Valid:
        return "valid";
    }
    return "unknown";
}

bool
parseCheckpointKind(const std::string &name, CheckpointEntry::Kind &out)
{
    if (name == "area_rejected")
        out = CheckpointEntry::Kind::AreaRejected;
    else if (name == "infeasible")
        out = CheckpointEntry::Kind::Infeasible;
    else if (name == "valid")
        out = CheckpointEntry::Kind::Valid;
    else
        return false;
    return true;
}

void
writeDesignPointJson(JsonWriter &j, const DesignPoint &p)
{
    j.beginObject();
    j.key("compute").beginArray();
    j.value(p.compute.chiplets)
        .value(p.compute.cores)
        .value(p.compute.lanes)
        .value(p.compute.vectorSize);
    j.endArray();
    j.key("memory").beginArray();
    j.value(p.memory.ol1Bytes)
        .value(p.memory.al1Bytes)
        .value(p.memory.wl1Bytes)
        .value(p.memory.al2Bytes);
    j.endArray();
    j.key("area").beginArray();
    j.valueExact(p.area.macs)
        .valueExact(p.area.sram)
        .valueExact(p.area.rf)
        .valueExact(p.area.grsPhy)
        .valueExact(p.area.ddrPhy);
    j.endArray();
    j.fieldExact("clockGhz", p.clockGhz);
    j.key("cost").beginObject();
    j.field("model", p.cost.modelName);
    j.field("cycles", p.cost.cycles);
    j.key("energy");
    writeEnergyArray(j, p.cost.energy);
    j.key("layers").beginArray();
    for (const LayerCost &l : p.cost.layers) {
        j.beginObject();
        j.field("name", l.layerName);
        j.field("cycles", l.cycles);
        j.fieldExact("utilization", l.utilization);
        j.key("energy");
        writeEnergyArray(j, l.energy);
        j.endObject();
    }
    j.endArray();
    j.endObject(); // cost
    j.endObject(); // point
}

namespace {

Status
readEnergyArray(const JsonValue *v, EnergyBreakdown &out,
                const char *where)
{
    if (v == nullptr || !v->isArray() || v->array.size() != 9)
        return errDataLoss("checkpoint: bad energy array in %s", where);
    for (const JsonValue &n : v->array) {
        if (!n.isNumber())
            return errDataLoss("checkpoint: non-numeric energy in %s",
                               where);
    }
    out.dram = v->array[0].number;
    out.d2d = v->array[1].number;
    out.noc = v->array[2].number;
    out.al2 = v->array[3].number;
    out.al1 = v->array[4].number;
    out.wl1 = v->array[5].number;
    out.ol1 = v->array[6].number;
    out.ol2 = v->array[7].number;
    out.mac = v->array[8].number;
    return Status::okStatus();
}

Status
readNumberArray(const JsonValue *v, size_t n, const char *where,
                double *out)
{
    if (v == nullptr || !v->isArray() || v->array.size() != n)
        return errDataLoss("checkpoint: bad %s array", where);
    for (size_t i = 0; i < n; ++i) {
        if (!v->array[i].isNumber())
            return errDataLoss("checkpoint: non-numeric %s entry",
                               where);
        out[i] = v->array[i].number;
    }
    return Status::okStatus();
}

} // namespace

Status
readDesignPointJson(const JsonValue &v, DesignPoint &p)
{
    if (!v.isObject())
        return errDataLoss("checkpoint: point is not an object");

    double compute[4], memory[4], area[5];
    Status s = readNumberArray(v.find("compute"), 4, "compute", compute);
    if (!s.ok())
        return s;
    s = readNumberArray(v.find("memory"), 4, "memory", memory);
    if (!s.ok())
        return s;
    s = readNumberArray(v.find("area"), 5, "area", area);
    if (!s.ok())
        return s;
    p.compute.chiplets = static_cast<int>(compute[0]);
    p.compute.cores = static_cast<int>(compute[1]);
    p.compute.lanes = static_cast<int>(compute[2]);
    p.compute.vectorSize = static_cast<int>(compute[3]);
    p.memory.ol1Bytes = static_cast<int64_t>(memory[0]);
    p.memory.al1Bytes = static_cast<int64_t>(memory[1]);
    p.memory.wl1Bytes = static_cast<int64_t>(memory[2]);
    p.memory.al2Bytes = static_cast<int64_t>(memory[3]);
    p.area.macs = area[0];
    p.area.sram = area[1];
    p.area.rf = area[2];
    p.area.grsPhy = area[3];
    p.area.ddrPhy = area[4];

    const JsonValue *clock = v.find("clockGhz");
    if (clock == nullptr || !clock->isNumber())
        return errDataLoss("checkpoint: point missing clockGhz");
    p.clockGhz = clock->number;

    const JsonValue *cost = v.find("cost");
    if (cost == nullptr || !cost->isObject())
        return errDataLoss("checkpoint: point missing cost");
    const JsonValue *model = cost->find("model");
    const JsonValue *cycles = cost->find("cycles");
    if (model == nullptr || !model->isString() || cycles == nullptr ||
        !cycles->isNumber()) {
        return errDataLoss("checkpoint: malformed cost record");
    }
    p.cost.modelName = model->string;
    p.cost.cycles = static_cast<int64_t>(cycles->number);
    s = readEnergyArray(cost->find("energy"), p.cost.energy, "cost");
    if (!s.ok())
        return s;

    const JsonValue *layers = cost->find("layers");
    if (layers == nullptr || !layers->isArray())
        return errDataLoss("checkpoint: cost missing layers");
    p.cost.layers.clear();
    p.cost.layers.reserve(layers->array.size());
    for (const JsonValue &lv : layers->array) {
        if (!lv.isObject())
            return errDataLoss("checkpoint: layer cost not an object");
        LayerCost lc;
        const JsonValue *name = lv.find("name");
        const JsonValue *lcycles = lv.find("cycles");
        const JsonValue *util = lv.find("utilization");
        if (name == nullptr || !name->isString() || lcycles == nullptr ||
            !lcycles->isNumber() || util == nullptr ||
            !util->isNumber()) {
            return errDataLoss("checkpoint: malformed layer cost");
        }
        lc.layerName = name->string;
        lc.cycles = static_cast<int64_t>(lcycles->number);
        lc.utilization = util->number;
        s = readEnergyArray(lv.find("energy"), lc.energy, "layer");
        if (!s.ok())
            return s;
        p.cost.layers.push_back(std::move(lc));
    }
    return Status::okStatus();
}

std::string
designPointKey(const ComputeAllocation &compute,
               const MemoryAllocation &memory)
{
    return strprintf("%d-%d-%d-%d|%lld|%lld|%lld|%lld", compute.chiplets,
                     compute.cores, compute.lanes, compute.vectorSize,
                     static_cast<long long>(memory.ol1Bytes),
                     static_cast<long long>(memory.al1Bytes),
                     static_cast<long long>(memory.wl1Bytes),
                     static_cast<long long>(memory.al2Bytes));
}

std::string
sweepFingerprint(const Model &model, const DseOptions &options)
{
    // The anneal seed only matters when that mode is active; keying
    // it unconditionally would reject resumes between deterministic
    // sweeps that merely carried different (unused) seeds.
    return strprintf(
        "%s|%d|%lld|%.17g|%d|%d|%d|%s|%llu", model.name().c_str(),
        model.inputResolution(),
        static_cast<long long>(options.totalMacs), options.areaLimitMm2,
        options.proportionalMem ? 1 : 0,
        static_cast<int>(options.effort),
        static_cast<int>(options.objective),
        toString(options.searchMode),
        options.searchMode == SearchMode::Anneal
            ? static_cast<unsigned long long>(options.annealSeed)
            : 0ull);
}

Status
saveSweepCheckpoint(const std::string &path,
                    const SweepCheckpoint &checkpoint)
{
    if (verif::injectCheckpointWriteFailure())
        return errUnavailable("injected checkpoint write failure");

    // Keys are emitted in sorted order purely so the file is diffable;
    // load order does not matter.
    std::vector<const std::string *> keys;
    keys.reserve(checkpoint.entries.size());
    for (const auto &kv : checkpoint.entries)
        keys.push_back(&kv.first);
    std::sort(keys.begin(), keys.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });

    std::ostringstream body;
    JsonWriter j(body);
    j.beginObject();
    j.field("format", kFormat);
    j.field("version", kVersion);
    j.field("fingerprint", checkpoint.fingerprint);
    j.field("complete", checkpoint.complete);
    j.key("entries").beginArray();
    for (const std::string *key : keys) {
        const CheckpointEntry &e = checkpoint.entries.at(*key);
        j.beginObject();
        j.field("key", *key);
        j.field("kind", checkpointKindName(e.kind));
        if (e.kind == CheckpointEntry::Kind::Valid) {
            j.key("point");
            writeDesignPointJson(j, e.point);
        }
        j.endObject();
    }
    j.endArray();
    j.endObject();
    body << "\n";

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            return errUnavailable("cannot open %s for writing: %s",
                                  tmp.c_str(), std::strerror(errno));
        }
        os << body.str();
        os.flush();
        if (!os) {
            return errUnavailable("short write to %s: %s", tmp.c_str(),
                                  std::strerror(errno));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return errUnavailable("cannot rename %s over %s: %s",
                              tmp.c_str(), path.c_str(),
                              std::strerror(err));
    }
    return Status::okStatus();
}

StatusOr<SweepCheckpoint>
loadSweepCheckpoint(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return errNotFound("cannot open checkpoint %s", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();

    JsonParseResult parsed = parseJson(buf.str());
    if (!parsed.ok()) {
        return errDataLoss("checkpoint %s: %s (offset %zu)",
                           path.c_str(), parsed.error.c_str(),
                           parsed.errorOffset);
    }
    const JsonValue &root = parsed.value;
    const JsonValue *format = root.find("format");
    const JsonValue *version = root.find("version");
    if (format == nullptr || !format->isString() ||
        format->string != kFormat) {
        return errDataLoss("checkpoint %s: not a sweep checkpoint",
                           path.c_str());
    }
    if (version == nullptr || !version->isNumber() ||
        static_cast<int>(version->number) != kVersion) {
        return errDataLoss("checkpoint %s: unsupported version",
                           path.c_str());
    }

    SweepCheckpoint out;
    const JsonValue *fingerprint = root.find("fingerprint");
    const JsonValue *complete = root.find("complete");
    const JsonValue *entries = root.find("entries");
    if (fingerprint == nullptr || !fingerprint->isString() ||
        complete == nullptr || !complete->isBool() ||
        entries == nullptr || !entries->isArray()) {
        return errDataLoss("checkpoint %s: malformed document",
                           path.c_str());
    }
    out.fingerprint = fingerprint->string;
    out.complete = complete->boolean;

    for (const JsonValue &ev : entries->array) {
        if (!ev.isObject())
            return errDataLoss("checkpoint %s: entry not an object",
                               path.c_str());
        const JsonValue *key = ev.find("key");
        const JsonValue *kind = ev.find("kind");
        if (key == nullptr || !key->isString() || kind == nullptr ||
            !kind->isString()) {
            return errDataLoss("checkpoint %s: malformed entry",
                               path.c_str());
        }
        CheckpointEntry entry;
        if (!parseCheckpointKind(kind->string, entry.kind)) {
            return errDataLoss("checkpoint %s: unknown kind '%s'",
                               path.c_str(), kind->string.c_str());
        }
        if (entry.kind == CheckpointEntry::Kind::Valid) {
            const JsonValue *point = ev.find("point");
            if (point == nullptr)
                return errDataLoss("checkpoint %s: valid entry "
                                   "missing point",
                                   path.c_str());
            Status s = readDesignPointJson(*point, entry.point);
            if (!s.ok())
                return s.withContext("checkpoint " + path);
        }
        out.entries.emplace(key->string, std::move(entry));
    }
    return out;
}

void
CheckpointSink::seed(const std::string &key,
                     const CheckpointEntry &entry)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    state_.entries.emplace(key, entry);
}

void
CheckpointSink::record(const std::string &key,
                       const SweepPointOutcome &out)
{
    if (!enabled())
        return;
    CheckpointEntry entry;
    switch (out.kind) {
    case SweepPointOutcome::AreaRejected:
        entry.kind = CheckpointEntry::Kind::AreaRejected;
        break;
    case SweepPointOutcome::Infeasible:
        entry.kind = CheckpointEntry::Kind::Infeasible;
        break;
    case SweepPointOutcome::Valid:
        entry.kind = CheckpointEntry::Kind::Valid;
        entry.point = out.point;
        break;
    case SweepPointOutcome::Poisoned:
    case SweepPointOutcome::Skipped:
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    state_.entries.emplace(key, std::move(entry));
    if (++sinceFlush_ >= every_)
        flushLocked();
}

void
CheckpointSink::finish(bool complete)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    state_.complete = complete;
    flushLocked();
}

void
CheckpointSink::flushLocked()
{
    sinceFlush_ = 0;
    Status s = saveSweepCheckpoint(path_, state_);
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    if (s.ok()) {
        reg.counter("dse.checkpoint.writes").add(1);
    } else {
        // Losing a checkpoint must not lose the sweep: count it, warn
        // with the target path and errno detail, and keep going.
        reg.counter("dse.checkpoint.failures").add(1);
        warn("checkpoint write to %s failed: %s", path_.c_str(),
             s.toString().c_str());
    }
}

} // namespace nnbaton
