#include "dse/explorer.hpp"

#include <chrono>
#include <limits>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "mapper/cache.hpp"

namespace nnbaton {

std::string
DesignPoint::toString() const
{
    return strprintf(
        "%d-%d-%d-%d | O-L1 %lldB A-L1 %lldK W-L1 %lldK A-L2 %lldK | "
        "%.2f mm2 | %.3f mJ %.3f ms",
        compute.chiplets, compute.cores, compute.lanes,
        compute.vectorSize, static_cast<long long>(memory.ol1Bytes),
        static_cast<long long>(memory.al1Bytes / 1024),
        static_cast<long long>(memory.wl1Bytes / 1024),
        static_cast<long long>(memory.al2Bytes / 1024), area.total(),
        cost.energyMj(), runtimeMs());
}

std::optional<size_t>
DseResult::bestEdp() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].edp() < best_v) {
            best_v = points[i].edp();
            best = i;
        }
    }
    return best;
}

std::optional<size_t>
DseResult::bestEnergy() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].cost.energy.total() < best_v) {
            best_v = points[i].cost.energy.total();
            best = i;
        }
    }
    return best;
}

namespace {

/** Per-design-point evaluation outcome, kept in sweep order so the
 *  parallel collection is bit-identical to the serial one. */
struct PointOutcome
{
    enum Kind
    {
        AreaRejected,
        Infeasible,
        Valid,
    };
    Kind kind = AreaRejected;
    DesignPoint point;
    SearchStats stats;
};

PointOutcome
evaluatePoint(const Model &model, const DseOptions &options,
              const TechnologyModel &tech,
              const ComputeAllocation &compute,
              const MemoryAllocation &memory, MappingCache &cache)
{
    NNBATON_TRACE_SCOPE("dse.design_point");

    PointOutcome out;
    AcceleratorConfig cfg = makeConfig(compute, memory);
    AreaBreakdown area = chipletArea(cfg, tech, defaultOl2Bytes(cfg));
    if (options.areaLimitMm2 > 0.0 &&
        area.total() > options.areaLimitMm2) {
        out.kind = PointOutcome::AreaRejected;
        return out;
    }
    SearchOptions search;
    search.threads = 1; // point-level parallelism only (nested-free)
    search.boundPruning = options.boundPruning;
    search.detailedMetrics = options.detailedMetrics;
    const uint64_t t0 = options.detailedMetrics ? obs::traceNowNs() : 0;
    ModelMappingResult mapped =
        mapModel(model, cfg, tech, options.effort, options.objective,
                 search, &cache);
    if (options.detailedMetrics) {
        static obs::Histogram &m_point_us =
            obs::MetricsRegistry::instance().histogram(
                "dse.point_latency_us");
        m_point_us.record(
            static_cast<int64_t>((obs::traceNowNs() - t0) / 1000));
    }
    out.stats = mapped.stats;
    if (!mapped.feasible) {
        out.kind = PointOutcome::Infeasible;
        return out;
    }
    out.kind = PointOutcome::Valid;
    out.point.compute = compute;
    out.point.memory = memory;
    out.point.area = area;
    out.point.cost = std::move(mapped.cost);
    out.point.clockGhz = tech.frequencyGhz;
    return out;
}

} // namespace

DseResult
explore(const Model &model, const DseOptions &options,
        const TechnologyModel &tech)
{
    NNBATON_TRACE_SCOPE("dse.explore");
    const auto start = std::chrono::steady_clock::now();

    DseResult result;

    // Flatten the sweep into an index space first; the evaluation
    // order then no longer matters and the collection pass below
    // reproduces the serial ordering exactly.
    struct Task
    {
        ComputeAllocation compute;
        MemoryAllocation memory;
    };
    std::vector<Task> tasks;
    {
        NNBATON_TRACE_SCOPE("dse.enumerate_space");
        const auto computes = enumerateCompute(options.totalMacs);
        if (computes.empty()) {
            fatal(
                "explore: no table II compute allocation yields %lld "
                "MACs",
                static_cast<long long>(options.totalMacs));
        }

        std::vector<MemoryAllocation> memories;
        if (!options.proportionalMem)
            memories = enumerateMemory();

        for (const ComputeAllocation &compute : computes) {
            if (options.proportionalMem) {
                tasks.push_back({compute, proportionalMemory(compute)});
                continue;
            }
            for (const MemoryAllocation &memory : memories)
                tasks.push_back({compute, memory});
        }
    }
    debugLog("explore: %zu design points to evaluate on %d lane(s)",
             tasks.size(), options.threads);

    // One mapping cache serves every design point: swept points share
    // layer shapes (repeated ResNet-50 blocks) and the table II grid
    // revisits each compute geometry across memory allocations, so
    // most lookups hit.  The cache is thread-safe and compute-once.
    MappingCache cache;
    std::vector<PointOutcome> outcomes(tasks.size());
    ThreadPool pool(options.threads);
    pool.parallelFor(static_cast<int64_t>(tasks.size()),
                     [&](int64_t i) {
                         outcomes[i] = evaluatePoint(
                             model, options, tech, tasks[i].compute,
                             tasks[i].memory, cache);
                     });

    // Deterministic collection in sweep order.
    {
        NNBATON_TRACE_SCOPE("dse.collect");
        for (PointOutcome &out : outcomes) {
            ++result.swept;
            result.search += out.stats;
            switch (out.kind) {
            case PointOutcome::AreaRejected:
                ++result.areaRejected;
                break;
            case PointOutcome::Infeasible:
                ++result.infeasible;
                break;
            case PointOutcome::Valid:
                result.points.push_back(std::move(out.point));
                break;
            }
        }
    }
    result.cacheEntries = static_cast<int64_t>(cache.size());

    // Sweep-level metrics, mirrored once per explore() call.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.counter("dse.points.swept").add(result.swept);
    reg.counter("dse.points.valid")
        .add(static_cast<int64_t>(result.points.size()));
    reg.counter("dse.points.area_rejected").add(result.areaRejected);
    reg.counter("dse.points.infeasible").add(result.infeasible);
    reg.gauge("dse.cache_entries")
        .set(static_cast<double>(result.cacheEntries));
    result.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

} // namespace nnbaton
