#include "dse/explorer.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"
#include "dse/checkpoint.hpp"
#include "dse/progress.hpp"
#include "dse/slice.hpp"
#include "mapper/cache.hpp"
#include "verif/fault.hpp"

namespace nnbaton {

std::string
DesignPoint::toString() const
{
    return strprintf(
        "%d-%d-%d-%d | O-L1 %lldB A-L1 %lldK W-L1 %lldK A-L2 %lldK | "
        "%.2f mm2 | %.3f mJ %.3f ms",
        compute.chiplets, compute.cores, compute.lanes,
        compute.vectorSize, static_cast<long long>(memory.ol1Bytes),
        static_cast<long long>(memory.al1Bytes / 1024),
        static_cast<long long>(memory.wl1Bytes / 1024),
        static_cast<long long>(memory.al2Bytes / 1024), area.total(),
        cost.energyMj(), runtimeMs());
}

std::optional<size_t>
DseResult::bestEdp() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].edp() < best_v) {
            best_v = points[i].edp();
            best = i;
        }
    }
    return best;
}

std::optional<size_t>
DseResult::bestEnergy() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].cost.energy.total() < best_v) {
            best_v = points[i].cost.energy.total();
            best = i;
        }
    }
    return best;
}

DseResult
explore(const Model &model, const DseOptions &options,
        const TechnologyModel &tech)
{
    NNBATON_TRACE_SCOPE("dse.explore");
    const auto start = std::chrono::steady_clock::now();

    // Flatten the sweep into an index space first; the evaluation
    // order then no longer matters and the collection pass below
    // reproduces the serial ordering exactly.  The same enumeration
    // feeds the fabric coordinator, which is what lets a distributed
    // sweep merge bit-identically with this one.
    const std::vector<SweepTask> tasks = enumerateSweepTasks(options);
    debugLog("explore: %zu design points to evaluate on %d lane(s)",
             tasks.size(), options.threads);

    const std::string fingerprint = sweepFingerprint(model, options);
    CheckpointSink sink(options.checkpointPath, options.checkpointEvery,
                        fingerprint);

    std::vector<SweepPointOutcome> outcomes(tasks.size());

    // Restore previously evaluated points before spawning workers.
    int64_t resumedPoints = 0;
    if (!options.resumePath.empty()) {
        SweepCheckpoint restored =
            loadSweepCheckpoint(options.resumePath).value();
        if (restored.fingerprint != fingerprint) {
            throwStatus(errFailedPrecondition(
                "resume checkpoint %s was written for a different "
                "sweep (its fingerprint \"%s\" != \"%s\")",
                options.resumePath.c_str(),
                restored.fingerprint.c_str(), fingerprint.c_str()));
        }
        for (size_t i = 0; i < tasks.size(); ++i) {
            const std::string key =
                designPointKey(tasks[i].compute, tasks[i].memory);
            auto it = restored.entries.find(key);
            if (it == restored.entries.end())
                continue;
            SweepPointOutcome &out = outcomes[i];
            out.restored = true;
            switch (it->second.kind) {
            case CheckpointEntry::Kind::AreaRejected:
                out.kind = SweepPointOutcome::AreaRejected;
                break;
            case CheckpointEntry::Kind::Infeasible:
                out.kind = SweepPointOutcome::Infeasible;
                break;
            case CheckpointEntry::Kind::Valid:
                out.kind = SweepPointOutcome::Valid;
                out.point = it->second.point;
                break;
            }
            sink.seed(key, it->second);
            ++resumedPoints;
        }
        inform("resume: restored %lld of %zu design points from %s",
               static_cast<long long>(resumedPoints), tasks.size(),
               options.resumePath.c_str());
    }

    // Progress heartbeat (--progress): workers bump relaxed atomics,
    // a sweep-side thread turns them into a log line and
    // dse.progress.* gauges every period.  Observation only — the
    // counters feed nothing back into the sweep.
    std::atomic<int64_t> progressDone{resumedPoints};
    std::atomic<int64_t> progressHits{0};
    std::atomic<int64_t> progressMisses{0};
    std::atomic<int64_t> progressEvaluated{0};
    std::atomic<int64_t> progressPruned{0};
    const auto emitProgress = [&] {
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   start)
                                   .count();
        const ProgressStats ps = computeProgressStats(
            progressDone.load(std::memory_order_relaxed),
            static_cast<int64_t>(tasks.size()), resumedPoints,
            elapsed);
        const int64_t hits =
            progressHits.load(std::memory_order_relaxed);
        const int64_t misses =
            progressMisses.load(std::memory_order_relaxed);
        const int64_t evaluated =
            progressEvaluated.load(std::memory_order_relaxed);
        const int64_t pruned =
            progressPruned.load(std::memory_order_relaxed);
        const double hitRate =
            hits + misses
                ? static_cast<double>(hits) / (hits + misses)
                : 0.0;
        const double pruneRate =
            evaluated + pruned
                ? static_cast<double>(pruned) / (evaluated + pruned)
                : 0.0;
        inform("progress: %lld/%lld points (%lld restored), %.1f/s, "
               "eta %.0fs, cache hit %.1f%%, pruned %.1f%%",
               static_cast<long long>(ps.done),
               static_cast<long long>(ps.total),
               static_cast<long long>(ps.restored), ps.pointsPerSec,
               ps.etaSeconds, 100.0 * hitRate, 100.0 * pruneRate);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        reg.gauge("dse.progress.done")
            .set(static_cast<double>(ps.done));
        reg.gauge("dse.progress.total")
            .set(static_cast<double>(ps.total));
        reg.gauge("dse.progress.restored")
            .set(static_cast<double>(ps.restored));
        reg.gauge("dse.progress.points_per_sec").set(ps.pointsPerSec);
        reg.gauge("dse.progress.eta_seconds").set(ps.etaSeconds);
        reg.gauge("dse.progress.cache_hit_rate").set(hitRate);
        reg.gauge("dse.progress.prune_rate").set(pruneRate);
    };
    // RAII so a --strict rethrow from the pool cannot leak a thread
    // still referencing this frame.
    struct Heartbeat
    {
        std::mutex m;
        std::condition_variable cv;
        bool stopRequested = false;
        std::thread thread;

        void
        stop()
        {
            if (!thread.joinable())
                return;
            {
                std::lock_guard<std::mutex> lock(m);
                stopRequested = true;
            }
            cv.notify_all();
            thread.join();
        }

        ~Heartbeat() { stop(); }
    } heartbeat;
    if (options.progressSeconds > 0) {
        heartbeat.thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(heartbeat.m);
            const auto period = std::chrono::duration<double>(
                options.progressSeconds);
            while (!heartbeat.cv.wait_for(
                lock, period,
                [&] { return heartbeat.stopRequested; })) {
                emitProgress();
            }
        });
    }

    // One mapping cache serves every design point: swept points share
    // layer shapes (repeated ResNet-50 blocks) and the table II grid
    // revisits each compute geometry across memory allocations, so
    // most lookups hit.  The cache is thread-safe and compute-once.
    MappingCache localCache;
    MappingCache &cache = options.cache ? *options.cache : localCache;
    ThreadPool pool(options.threads);
    pool.parallelFor(
        static_cast<int64_t>(tasks.size()), [&](int64_t i) {
            SweepPointOutcome &out = outcomes[i];
            if (out.restored)
                return;
            if (options.cancel && options.cancel->cancelled()) {
                out.kind = SweepPointOutcome::Skipped;
                progressDone.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            try {
                verif::injectPointFault(i);
                out = evaluateSweepPoint(model, options, tech, tasks[i],
                                         cache);
            } catch (const StatusError &e) {
                const StatusCode code = e.status().code();
                if (code == StatusCode::Cancelled ||
                    code == StatusCode::DeadlineExceeded) {
                    out = SweepPointOutcome();
                    out.kind = SweepPointOutcome::Skipped;
                    return;
                }
                if (options.strict)
                    throw;
                out = SweepPointOutcome();
                out.kind = SweepPointOutcome::Poisoned;
                out.error = e.status().toString();
            } catch (const std::exception &e) {
                if (options.strict)
                    throw;
                out = SweepPointOutcome();
                out.kind = SweepPointOutcome::Poisoned;
                out.error = e.what();
            }
            sink.record(designPointKey(tasks[i].compute,
                                       tasks[i].memory),
                        out);
            progressDone.fetch_add(1, std::memory_order_relaxed);
            progressHits.fetch_add(out.stats.cacheHits,
                                   std::memory_order_relaxed);
            progressMisses.fetch_add(out.stats.cacheMisses,
                                     std::memory_order_relaxed);
            progressEvaluated.fetch_add(out.stats.evaluated,
                                        std::memory_order_relaxed);
            progressPruned.fetch_add(out.stats.pruned,
                                     std::memory_order_relaxed);
            verif::notifyPointCompleted(options.cancel);
        });

    if (options.progressSeconds > 0) {
        heartbeat.stop();
        emitProgress(); // final 100% line and gauge values
    }

    // Deterministic collection in sweep order.
    DseResult result = collectSweepOutcomes(tasks, outcomes);
    result.cacheEntries = static_cast<int64_t>(cache.size());
    sink.finish(result.complete);

    if (!result.poisoned.empty()) {
        warn("explore: %zu design point(s) poisoned (first: %s)",
             result.poisoned.size(),
             result.poisoned.front().error.c_str());
    }
    if (!result.complete) {
        warn("explore: stopped early (%lld of %lld points skipped): %s",
             static_cast<long long>(result.skipped),
             static_cast<long long>(result.swept),
             options.cancel
                 ? options.cancel->toStatus().toString().c_str()
                 : "cancelled");
    }

    // Sweep-level metrics, mirrored once per explore() call.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.counter("dse.points.swept").add(result.swept);
    reg.counter("dse.points.valid")
        .add(static_cast<int64_t>(result.points.size()));
    reg.counter("dse.points.area_rejected").add(result.areaRejected);
    reg.counter("dse.points.infeasible").add(result.infeasible);
    reg.counter("dse.points.poisoned")
        .add(static_cast<int64_t>(result.poisoned.size()));
    reg.counter("dse.points.skipped").add(result.skipped);
    reg.counter("dse.points.resumed").add(result.resumed);
    reg.gauge("dse.cache_entries")
        .set(static_cast<double>(result.cacheEntries));
    result.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

} // namespace nnbaton
