#include "dse/explorer.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"
#include "dse/checkpoint.hpp"
#include "mapper/cache.hpp"
#include "verif/fault.hpp"

namespace nnbaton {

std::string
DesignPoint::toString() const
{
    return strprintf(
        "%d-%d-%d-%d | O-L1 %lldB A-L1 %lldK W-L1 %lldK A-L2 %lldK | "
        "%.2f mm2 | %.3f mJ %.3f ms",
        compute.chiplets, compute.cores, compute.lanes,
        compute.vectorSize, static_cast<long long>(memory.ol1Bytes),
        static_cast<long long>(memory.al1Bytes / 1024),
        static_cast<long long>(memory.wl1Bytes / 1024),
        static_cast<long long>(memory.al2Bytes / 1024), area.total(),
        cost.energyMj(), runtimeMs());
}

std::optional<size_t>
DseResult::bestEdp() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].edp() < best_v) {
            best_v = points[i].edp();
            best = i;
        }
    }
    return best;
}

std::optional<size_t>
DseResult::bestEnergy() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].cost.energy.total() < best_v) {
            best_v = points[i].cost.energy.total();
            best = i;
        }
    }
    return best;
}

namespace {

/** Per-design-point evaluation outcome, kept in sweep order so the
 *  parallel collection is bit-identical to the serial one. */
struct PointOutcome
{
    enum Kind
    {
        AreaRejected,
        Infeasible,
        Valid,
        Poisoned, //!< evaluation threw; quarantined with the error
        Skipped,  //!< not evaluated (cancellation / deadline)
    };
    Kind kind = AreaRejected;
    DesignPoint point;
    SearchStats stats;
    std::string error; //!< Poisoned only: the captured Status
    bool restored = false; //!< prefilled from a --resume checkpoint
};

PointOutcome
evaluatePoint(const Model &model, const DseOptions &options,
              const TechnologyModel &tech,
              const ComputeAllocation &compute,
              const MemoryAllocation &memory, MappingCache &cache)
{
    NNBATON_TRACE_SCOPE("dse.design_point");

    PointOutcome out;
    AcceleratorConfig cfg = makeConfig(compute, memory);
    AreaBreakdown area = chipletArea(cfg, tech, defaultOl2Bytes(cfg));
    if (options.areaLimitMm2 > 0.0 &&
        area.total() > options.areaLimitMm2) {
        out.kind = PointOutcome::AreaRejected;
        return out;
    }
    SearchOptions search;
    search.threads = 1; // point-level parallelism only (nested-free)
    search.boundPruning = options.boundPruning;
    search.mode = options.searchMode;
    search.annealSeed = options.annealSeed;
    search.annealIterations = options.annealIterations;
    search.warmStart = options.warmStart;
    search.detailedMetrics = options.detailedMetrics;
    search.cancel = options.cancel;
    const uint64_t t0 = options.detailedMetrics ? obs::traceNowNs() : 0;
    ModelMappingResult mapped =
        mapModel(model, cfg, tech, options.effort, options.objective,
                 search, &cache);
    if (options.detailedMetrics) {
        static obs::Histogram &m_point_us =
            obs::MetricsRegistry::instance().histogram(
                "dse.point_latency_us");
        m_point_us.record(
            static_cast<int64_t>((obs::traceNowNs() - t0) / 1000));
    }
    out.stats = mapped.stats;
    if (!mapped.feasible) {
        out.kind = PointOutcome::Infeasible;
        return out;
    }
    out.kind = PointOutcome::Valid;
    out.point.compute = compute;
    out.point.memory = memory;
    out.point.area = area;
    out.point.cost = std::move(mapped.cost);
    out.point.clockGhz = tech.frequencyGhz;
    return out;
}

/**
 * Shared checkpoint state: workers append their settled outcome under
 * the mutex and every checkpointEvery completions the current
 * snapshot is flushed (atomically) to disk.  Poisoned and skipped
 * points are not recorded — a resume retries them.
 */
class CheckpointSink
{
  public:
    CheckpointSink(std::string path, int every, std::string fingerprint)
        : path_(std::move(path)), every_(every < 1 ? 1 : every)
    {
        state_.fingerprint = std::move(fingerprint);
    }

    bool enabled() const { return !path_.empty(); }

    /** Seed with entries restored from a --resume checkpoint so a
     *  later resume of THIS run still sees them. */
    void
    seed(const std::string &key, const CheckpointEntry &entry)
    {
        if (!enabled())
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        state_.entries.emplace(key, entry);
    }

    /** Record a completed point; flushes every N completions. */
    void
    record(const std::string &key, const PointOutcome &out)
    {
        if (!enabled())
            return;
        CheckpointEntry entry;
        switch (out.kind) {
        case PointOutcome::AreaRejected:
            entry.kind = CheckpointEntry::Kind::AreaRejected;
            break;
        case PointOutcome::Infeasible:
            entry.kind = CheckpointEntry::Kind::Infeasible;
            break;
        case PointOutcome::Valid:
            entry.kind = CheckpointEntry::Kind::Valid;
            entry.point = out.point;
            break;
        case PointOutcome::Poisoned:
        case PointOutcome::Skipped:
            return;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        state_.entries.emplace(key, std::move(entry));
        if (++sinceFlush_ >= every_)
            flushLocked();
    }

    /** Final flush; @p complete marks a full (uninterrupted) sweep. */
    void
    finish(bool complete)
    {
        if (!enabled())
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        state_.complete = complete;
        flushLocked();
    }

  private:
    void
    flushLocked()
    {
        sinceFlush_ = 0;
        Status s = saveSweepCheckpoint(path_, state_);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        if (s.ok()) {
            reg.counter("dse.checkpoint.writes").add(1);
        } else {
            // Losing a checkpoint must not lose the sweep: count it,
            // warn once per failure and keep going.
            reg.counter("dse.checkpoint.failures").add(1);
            warn("checkpoint write failed: %s", s.toString().c_str());
        }
    }

    const std::string path_;
    const int every_;
    std::mutex mutex_;
    SweepCheckpoint state_;
    int sinceFlush_ = 0;
};

} // namespace

DseResult
explore(const Model &model, const DseOptions &options,
        const TechnologyModel &tech)
{
    NNBATON_TRACE_SCOPE("dse.explore");
    const auto start = std::chrono::steady_clock::now();

    DseResult result;

    // Flatten the sweep into an index space first; the evaluation
    // order then no longer matters and the collection pass below
    // reproduces the serial ordering exactly.
    struct Task
    {
        ComputeAllocation compute;
        MemoryAllocation memory;
    };
    std::vector<Task> tasks;
    {
        NNBATON_TRACE_SCOPE("dse.enumerate_space");
        const auto computes = enumerateCompute(options.totalMacs);
        if (computes.empty()) {
            throwStatus(errInvalidArgument(
                "explore: no table II compute allocation yields %lld "
                "MACs",
                static_cast<long long>(options.totalMacs)));
        }

        std::vector<MemoryAllocation> memories;
        if (!options.proportionalMem)
            memories = enumerateMemory();

        for (const ComputeAllocation &compute : computes) {
            if (options.proportionalMem) {
                tasks.push_back({compute, proportionalMemory(compute)});
                continue;
            }
            for (const MemoryAllocation &memory : memories)
                tasks.push_back({compute, memory});
        }
    }
    debugLog("explore: %zu design points to evaluate on %d lane(s)",
             tasks.size(), options.threads);

    const std::string fingerprint = sweepFingerprint(model, options);
    CheckpointSink sink(options.checkpointPath, options.checkpointEvery,
                        fingerprint);

    std::vector<PointOutcome> outcomes(tasks.size());

    // Restore previously evaluated points before spawning workers.
    if (!options.resumePath.empty()) {
        SweepCheckpoint restored =
            loadSweepCheckpoint(options.resumePath).value();
        if (restored.fingerprint != fingerprint) {
            throwStatus(errFailedPrecondition(
                "resume checkpoint %s was written for a different "
                "sweep (its fingerprint \"%s\" != \"%s\")",
                options.resumePath.c_str(),
                restored.fingerprint.c_str(), fingerprint.c_str()));
        }
        for (size_t i = 0; i < tasks.size(); ++i) {
            const std::string key =
                designPointKey(tasks[i].compute, tasks[i].memory);
            auto it = restored.entries.find(key);
            if (it == restored.entries.end())
                continue;
            PointOutcome &out = outcomes[i];
            out.restored = true;
            switch (it->second.kind) {
            case CheckpointEntry::Kind::AreaRejected:
                out.kind = PointOutcome::AreaRejected;
                break;
            case CheckpointEntry::Kind::Infeasible:
                out.kind = PointOutcome::Infeasible;
                break;
            case CheckpointEntry::Kind::Valid:
                out.kind = PointOutcome::Valid;
                out.point = it->second.point;
                break;
            }
            sink.seed(key, it->second);
            ++result.resumed;
        }
        inform("resume: restored %lld of %zu design points from %s",
               static_cast<long long>(result.resumed), tasks.size(),
               options.resumePath.c_str());
    }

    // Progress heartbeat (--progress): workers bump relaxed atomics,
    // a sweep-side thread turns them into a log line and
    // dse.progress.* gauges every period.  Observation only — the
    // counters feed nothing back into the sweep.
    std::atomic<int64_t> progressDone{result.resumed};
    std::atomic<int64_t> progressHits{0};
    std::atomic<int64_t> progressMisses{0};
    std::atomic<int64_t> progressEvaluated{0};
    std::atomic<int64_t> progressPruned{0};
    const int64_t resumedPoints = result.resumed;
    const auto emitProgress = [&] {
        const int64_t done =
            progressDone.load(std::memory_order_relaxed);
        const int64_t total = static_cast<int64_t>(tasks.size());
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   start)
                                   .count();
        const int64_t fresh = done - resumedPoints;
        const double rate = elapsed > 0 ? fresh / elapsed : 0.0;
        const double etaSeconds =
            rate > 0 ? (total - done) / rate : 0.0;
        const int64_t hits =
            progressHits.load(std::memory_order_relaxed);
        const int64_t misses =
            progressMisses.load(std::memory_order_relaxed);
        const int64_t evaluated =
            progressEvaluated.load(std::memory_order_relaxed);
        const int64_t pruned =
            progressPruned.load(std::memory_order_relaxed);
        const double hitRate =
            hits + misses
                ? static_cast<double>(hits) / (hits + misses)
                : 0.0;
        const double pruneRate =
            evaluated + pruned
                ? static_cast<double>(pruned) / (evaluated + pruned)
                : 0.0;
        inform("progress: %lld/%lld points, %.1f/s, eta %.0fs, "
               "cache hit %.1f%%, pruned %.1f%%",
               static_cast<long long>(done),
               static_cast<long long>(total), rate, etaSeconds,
               100.0 * hitRate, 100.0 * pruneRate);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        reg.gauge("dse.progress.done")
            .set(static_cast<double>(done));
        reg.gauge("dse.progress.total")
            .set(static_cast<double>(total));
        reg.gauge("dse.progress.points_per_sec").set(rate);
        reg.gauge("dse.progress.eta_seconds").set(etaSeconds);
        reg.gauge("dse.progress.cache_hit_rate").set(hitRate);
        reg.gauge("dse.progress.prune_rate").set(pruneRate);
    };
    // RAII so a --strict rethrow from the pool cannot leak a thread
    // still referencing this frame.
    struct Heartbeat
    {
        std::mutex m;
        std::condition_variable cv;
        bool stopRequested = false;
        std::thread thread;

        void
        stop()
        {
            if (!thread.joinable())
                return;
            {
                std::lock_guard<std::mutex> lock(m);
                stopRequested = true;
            }
            cv.notify_all();
            thread.join();
        }

        ~Heartbeat() { stop(); }
    } heartbeat;
    if (options.progressSeconds > 0) {
        heartbeat.thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(heartbeat.m);
            const auto period = std::chrono::duration<double>(
                options.progressSeconds);
            while (!heartbeat.cv.wait_for(
                lock, period,
                [&] { return heartbeat.stopRequested; })) {
                emitProgress();
            }
        });
    }

    // One mapping cache serves every design point: swept points share
    // layer shapes (repeated ResNet-50 blocks) and the table II grid
    // revisits each compute geometry across memory allocations, so
    // most lookups hit.  The cache is thread-safe and compute-once.
    MappingCache localCache;
    MappingCache &cache = options.cache ? *options.cache : localCache;
    ThreadPool pool(options.threads);
    pool.parallelFor(
        static_cast<int64_t>(tasks.size()), [&](int64_t i) {
            PointOutcome &out = outcomes[i];
            if (out.restored)
                return;
            if (options.cancel && options.cancel->cancelled()) {
                out.kind = PointOutcome::Skipped;
                progressDone.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            try {
                verif::injectPointFault(i);
                out = evaluatePoint(model, options, tech,
                                    tasks[i].compute, tasks[i].memory,
                                    cache);
            } catch (const StatusError &e) {
                const StatusCode code = e.status().code();
                if (code == StatusCode::Cancelled ||
                    code == StatusCode::DeadlineExceeded) {
                    out = PointOutcome();
                    out.kind = PointOutcome::Skipped;
                    return;
                }
                if (options.strict)
                    throw;
                out = PointOutcome();
                out.kind = PointOutcome::Poisoned;
                out.error = e.status().toString();
            } catch (const std::exception &e) {
                if (options.strict)
                    throw;
                out = PointOutcome();
                out.kind = PointOutcome::Poisoned;
                out.error = e.what();
            }
            sink.record(designPointKey(tasks[i].compute,
                                       tasks[i].memory),
                        out);
            progressDone.fetch_add(1, std::memory_order_relaxed);
            progressHits.fetch_add(out.stats.cacheHits,
                                   std::memory_order_relaxed);
            progressMisses.fetch_add(out.stats.cacheMisses,
                                     std::memory_order_relaxed);
            progressEvaluated.fetch_add(out.stats.evaluated,
                                        std::memory_order_relaxed);
            progressPruned.fetch_add(out.stats.pruned,
                                     std::memory_order_relaxed);
            verif::notifyPointCompleted(options.cancel);
        });

    if (options.progressSeconds > 0) {
        heartbeat.stop();
        emitProgress(); // final 100% line and gauge values
    }

    // Deterministic collection in sweep order.
    {
        NNBATON_TRACE_SCOPE("dse.collect");
        for (size_t i = 0; i < outcomes.size(); ++i) {
            PointOutcome &out = outcomes[i];
            ++result.swept;
            result.search += out.stats;
            switch (out.kind) {
            case PointOutcome::AreaRejected:
                ++result.areaRejected;
                break;
            case PointOutcome::Infeasible:
                ++result.infeasible;
                break;
            case PointOutcome::Valid:
                result.points.push_back(std::move(out.point));
                break;
            case PointOutcome::Poisoned:
                result.poisoned.push_back(
                    {tasks[i].compute, tasks[i].memory,
                     static_cast<int64_t>(i), std::move(out.error)});
                break;
            case PointOutcome::Skipped:
                ++result.skipped;
                break;
            }
        }
    }
    result.complete = result.skipped == 0;
    result.cacheEntries = static_cast<int64_t>(cache.size());
    sink.finish(result.complete);

    if (!result.poisoned.empty()) {
        warn("explore: %zu design point(s) poisoned (first: %s)",
             result.poisoned.size(),
             result.poisoned.front().error.c_str());
    }
    if (!result.complete) {
        warn("explore: stopped early (%lld of %lld points skipped): %s",
             static_cast<long long>(result.skipped),
             static_cast<long long>(result.swept),
             options.cancel
                 ? options.cancel->toStatus().toString().c_str()
                 : "cancelled");
    }

    // Sweep-level metrics, mirrored once per explore() call.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.counter("dse.points.swept").add(result.swept);
    reg.counter("dse.points.valid")
        .add(static_cast<int64_t>(result.points.size()));
    reg.counter("dse.points.area_rejected").add(result.areaRejected);
    reg.counter("dse.points.infeasible").add(result.infeasible);
    reg.counter("dse.points.poisoned")
        .add(static_cast<int64_t>(result.poisoned.size()));
    reg.counter("dse.points.skipped").add(result.skipped);
    reg.counter("dse.points.resumed").add(result.resumed);
    reg.gauge("dse.cache_entries")
        .set(static_cast<double>(result.cacheEntries));
    result.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

} // namespace nnbaton
