#include "dse/explorer.hpp"

#include <limits>

#include "common/logging.hpp"

namespace nnbaton {

std::string
DesignPoint::toString() const
{
    return strprintf(
        "%d-%d-%d-%d | O-L1 %lldB A-L1 %lldK W-L1 %lldK A-L2 %lldK | "
        "%.2f mm2 | %.3f mJ %.3f ms",
        compute.chiplets, compute.cores, compute.lanes,
        compute.vectorSize, static_cast<long long>(memory.ol1Bytes),
        static_cast<long long>(memory.al1Bytes / 1024),
        static_cast<long long>(memory.wl1Bytes / 1024),
        static_cast<long long>(memory.al2Bytes / 1024), area.total(),
        cost.energyMj(), cost.runtimeMs(0.5));
}

std::optional<size_t>
DseResult::bestEdp() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].edp() < best_v) {
            best_v = points[i].edp();
            best = i;
        }
    }
    return best;
}

std::optional<size_t>
DseResult::bestEnergy() const
{
    std::optional<size_t> best;
    double best_v = std::numeric_limits<double>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].cost.energy.total() < best_v) {
            best_v = points[i].cost.energy.total();
            best = i;
        }
    }
    return best;
}

DseResult
explore(const Model &model, const DseOptions &options,
        const TechnologyModel &tech)
{
    DseResult result;
    const auto computes = enumerateCompute(options.totalMacs);
    if (computes.empty()) {
        fatal("explore: no table II compute allocation yields %lld MACs",
              static_cast<long long>(options.totalMacs));
    }

    std::vector<MemoryAllocation> memories;
    if (!options.proportionalMem)
        memories = enumerateMemory();

    for (const ComputeAllocation &compute : computes) {
        std::vector<MemoryAllocation> proportional;
        if (options.proportionalMem)
            proportional.push_back(proportionalMemory(compute));
        const std::vector<MemoryAllocation> &mems =
            options.proportionalMem ? proportional : memories;
        for (const MemoryAllocation &memory : mems) {
            ++result.swept;
            AcceleratorConfig cfg = makeConfig(compute, memory);
            AreaBreakdown area =
                chipletArea(cfg, tech, defaultOl2Bytes(cfg));
            if (options.areaLimitMm2 > 0.0 &&
                area.total() > options.areaLimitMm2) {
                ++result.areaRejected;
                continue;
            }
            ModelMappingResult mapped = mapModel(
                model, cfg, tech, options.effort, options.objective);
            if (!mapped.feasible) {
                ++result.infeasible;
                continue;
            }
            DesignPoint point;
            point.compute = compute;
            point.memory = memory;
            point.area = area;
            point.cost = std::move(mapped.cost);
            result.points.push_back(std::move(point));
        }
    }
    return result;
}

} // namespace nnbaton
