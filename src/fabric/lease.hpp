/**
 * @file
 * The coordinator's lease table: which sweep units are pending,
 * leased, or done.
 *
 * Work stealing falls out of the lease discipline.  claim() hands out
 * pending units first; when none remain it re-issues the unit whose
 * lease expired longest ago — covering both crashed workers (their
 * lease times out and another worker finishes the unit) and
 * stragglers (a stalled worker's unit is re-evaluated elsewhere; the
 * first completion wins).  complete() is idempotent: exactly one
 * caller gets `true` per unit and owns writing the merged outcome,
 * so a late duplicate from a slow worker can never race the winner's
 * writes — it is counted and dropped.
 *
 * All waiting happens on the internal condition variable with short
 * timeouts, re-checking cancellation and lease expiry, so a
 * coordinator with every worker wedged still makes progress (claim
 * returns the expired unit to whoever asks next).
 */

#ifndef NNBATON_FABRIC_LEASE_HPP
#define NNBATON_FABRIC_LEASE_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/cancel.hpp"
#include "fabric/wire.hpp"

namespace nnbaton {
namespace fabric {

class LeaseTable
{
  public:
    /** @p leaseSeconds is how long a claimed unit stays exclusively
     *  leased before it becomes claimable again. */
    LeaseTable(std::vector<WorkUnit> units, double leaseSeconds);

    /**
     * Claim the next unit to evaluate: a pending unit if any, else
     * the longest-expired lease (re-issue; bumps leasesExpired).
     * Blocks while every incomplete unit holds a live lease, waking
     * when one completes, a lease expires, or @p cancel fires.
     * Returns nullopt when every unit is complete or the wait was
     * cancelled.
     */
    std::optional<WorkUnit> claim(const CancelToken *cancel);

    /**
     * Return a claimed unit to the pending pool immediately (the
     * claimer hit a failure and is not going to finish it); other
     * workers can pick it up without waiting out the lease.
     */
    void release(int64_t unitId);

    /**
     * Record @p unitId finished.  True for the first completion —
     * the caller owns merging the unit's outcomes; false for
     * duplicates (counted, dropped).
     */
    bool complete(int64_t unitId);

    /** True once every unit has completed. */
    bool allDone() const;

    /** Units never completed (cancelled sweep); sweep-order. */
    std::vector<WorkUnit> incompleteUnits() const;

    int64_t leasesExpired() const;
    int64_t duplicateCompletions() const;

  private:
    enum class State
    {
        Pending,
        Leased,
        Done,
    };
    struct Slot
    {
        WorkUnit unit;
        State state = State::Pending;
        std::chrono::steady_clock::time_point leaseDeadline{};
    };

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    std::vector<Slot> slots_;
    const std::chrono::steady_clock::duration leaseTtl_;
    int64_t done_ = 0;
    int64_t leasesExpired_ = 0;
    int64_t duplicates_ = 0;
};

} // namespace fabric
} // namespace nnbaton

#endif // NNBATON_FABRIC_LEASE_HPP
