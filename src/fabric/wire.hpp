/**
 * @file
 * Wire encoding of the coordinator ↔ worker exchange for one sweep
 * unit, layered on the serve daemon's newline-delimited JSON protocol
 * (serve/protocol.hpp, op "sweepUnit").
 *
 * The request ships the workload as inline model text (round-tripped
 * through nn/parser.hpp) plus every DseOptions member that shapes the
 * design space, and pins the sweep + technology fingerprints the
 * worker must reproduce before evaluating anything.  The response is
 * parsed back into SweepPointOutcome slots and validated against the
 * request: wrong unit id, wrong fingerprint, wrong entry count or a
 * malformed frame all become Statuses the worker client can act on —
 * never silently merged points.
 */

#ifndef NNBATON_FABRIC_WIRE_HPP
#define NNBATON_FABRIC_WIRE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dse/slice.hpp"
#include "tech/technology.hpp"

namespace nnbaton {
namespace fabric {

/** One leased slice [begin, end) of the canonical task enumeration. */
struct WorkUnit
{
    int64_t id = -1;
    int64_t begin = 0;
    int64_t end = 0;

    int64_t points() const { return end - begin; }
};

/** The fixed %016llx rendering of TechnologyModel::fingerprint(). */
std::string techFingerprintHex(const TechnologyModel &tech);

/**
 * Encode the sweepUnit request line for @p unit.  @p modelText is the
 * writeModelText() serialisation of the sweep's model; @p sweepFp the
 * coordinator-computed sweepFingerprint(); @p techFp the hex tech
 * digest.  Technology overrides travel in the "tech" member so the
 * worker evaluates under the coordinator's exact anchors.
 */
std::string encodeSweepUnitRequest(const std::string &modelText,
                                   const DseOptions &options,
                                   const TechnologyModel &tech,
                                   const WorkUnit &unit,
                                   const std::string &sweepFp,
                                   const std::string &techFp);

/** A parsed, validated unit response. */
struct SweepUnitResult
{
    /** One outcome per task in [unit.begin, unit.end), in order. */
    std::vector<SweepPointOutcome> outcomes;

    /** The unit's aggregated mapping-search counters. */
    SearchStats stats;
};

/**
 * Parse and validate a worker's response line for @p unit.
 *
 *  - error envelopes come back as their Status (retryable
 *    UNAVAILABLE / CANCELLED / DEADLINE_EXCEEDED, or a definitive
 *    code like FAILED_PRECONDITION);
 *  - malformed frames (chaos-injected corruption, truncation) come
 *    back as errDataLoss;
 *  - a well-formed response for the wrong unit or fingerprint comes
 *    back as errFailedPrecondition.
 */
StatusOr<SweepUnitResult>
parseSweepUnitResponse(const std::string &line, const WorkUnit &unit,
                       const std::string &sweepFp,
                       const std::string &techFp);

} // namespace fabric
} // namespace nnbaton

#endif // NNBATON_FABRIC_WIRE_HPP
