#include "fabric/lease.hpp"

#include <algorithm>

namespace nnbaton {
namespace fabric {

namespace {

using SteadyClock = std::chrono::steady_clock;

} // namespace

LeaseTable::LeaseTable(std::vector<WorkUnit> units, double leaseSeconds)
    : leaseTtl_(std::chrono::duration_cast<SteadyClock::duration>(
          std::chrono::duration<double>(
              leaseSeconds > 0 ? leaseSeconds : 1.0)))
{
    slots_.reserve(units.size());
    for (WorkUnit &unit : units)
        slots_.push_back(Slot{unit, State::Pending, {}});
}

std::optional<WorkUnit>
LeaseTable::claim(const CancelToken *cancel)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (cancel && cancel->cancelled())
            return std::nullopt;
        if (done_ == static_cast<int64_t>(slots_.size()))
            return std::nullopt;

        const auto now = SteadyClock::now();
        Slot *pick = nullptr;
        for (Slot &slot : slots_) {
            if (slot.state == State::Pending) {
                pick = &slot;
                break;
            }
        }
        bool expired = false;
        if (pick == nullptr) {
            // No pending work: steal the longest-expired lease, if
            // any (its holder crashed or stalled past the TTL).
            for (Slot &slot : slots_) {
                if (slot.state != State::Leased ||
                    slot.leaseDeadline > now)
                    continue;
                if (pick == nullptr ||
                    slot.leaseDeadline < pick->leaseDeadline)
                    pick = &slot;
            }
            expired = pick != nullptr;
        }
        if (pick != nullptr) {
            if (expired)
                ++leasesExpired_;
            pick->state = State::Leased;
            pick->leaseDeadline = now + leaseTtl_;
            return pick->unit;
        }

        // Every incomplete unit holds a live lease.  Sleep until the
        // nearest lease can expire (or a completion wakes us), then
        // re-evaluate; the extra cancellation poll bounds shutdown
        // latency.
        auto wake = now + leaseTtl_;
        for (const Slot &slot : slots_) {
            if (slot.state == State::Leased)
                wake = std::min(wake, slot.leaseDeadline);
        }
        wake = std::min(wake, now + std::chrono::milliseconds(100));
        cv_.wait_until(lock, wake);
    }
}

void
LeaseTable::release(int64_t unitId)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Slot &slot : slots_) {
            if (slot.unit.id != unitId)
                continue;
            if (slot.state == State::Leased)
                slot.state = State::Pending;
            break;
        }
    }
    cv_.notify_all();
}

bool
LeaseTable::complete(int64_t unitId)
{
    bool first = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Slot &slot : slots_) {
            if (slot.unit.id != unitId)
                continue;
            if (slot.state == State::Done) {
                ++duplicates_;
            } else {
                slot.state = State::Done;
                ++done_;
                first = true;
            }
            break;
        }
    }
    cv_.notify_all();
    return first;
}

bool
LeaseTable::allDone() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_ == static_cast<int64_t>(slots_.size());
}

std::vector<WorkUnit>
LeaseTable::incompleteUnits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<WorkUnit> out;
    for (const Slot &slot : slots_) {
        if (slot.state != State::Done)
            out.push_back(slot.unit);
    }
    return out;
}

int64_t
LeaseTable::leasesExpired() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return leasesExpired_;
}

int64_t
LeaseTable::duplicateCompletions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return duplicates_;
}

} // namespace fabric
} // namespace nnbaton
