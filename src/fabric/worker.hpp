/**
 * @file
 * The coordinator's view of one remote worker: a `nn-baton serve`
 * daemon reachable over TCP (or a Unix socket for same-host tests).
 *
 * callUnit() owns the failure policy for a single endpoint:
 *
 *  - transient failures (connect refused, dropped connection, I/O
 *    timeout, corrupted frame, retryable {"ok":false} envelopes such
 *    as admission-control overload) are retried on a fresh connection
 *    after exponential backoff with jitter;
 *  - each failed attempt counts toward a consecutive-failure budget;
 *    exhausting it quarantines the worker — the fabric stops handing
 *    it units and its current unit is released for work stealing;
 *  - non-retryable failures (fingerprint mismatch, invalid request)
 *    quarantine immediately: a worker that disagrees about the design
 *    space cannot be allowed to poison the merged result;
 *  - any success resets the failure budget and the backoff schedule.
 *
 * The backoff stream is seeded from the endpoint string, so retry
 * jitter is deterministic per worker and reproducible in tests.
 */

#ifndef NNBATON_FABRIC_WORKER_HPP
#define NNBATON_FABRIC_WORKER_HPP

#include <cstdint>
#include <string>

#include "common/backoff.hpp"
#include "common/cancel.hpp"
#include "common/net.hpp"
#include "fabric/wire.hpp"

namespace nnbaton {
namespace fabric {

/** Per-worker failure/retry policy. */
struct WorkerPolicy
{
    /** Wall-clock budget for establishing a connection. */
    double connectTimeoutSeconds = 5.0;

    /** Per-line I/O budget; also bounds how long a stalled worker
     *  can hold this lane before the attempt fails. */
    double ioTimeoutSeconds = 30.0;

    /** Consecutive failed attempts before quarantine. */
    int maxFailures = 3;

    /** Backoff between retryable failures. */
    BackoffPolicy backoff;
};

class WorkerClient
{
  public:
    WorkerClient(std::string endpoint, WorkerPolicy policy);

    const std::string &endpoint() const { return endpoint_; }
    bool quarantined() const { return quarantined_; }
    int64_t retries() const { return retries_; }

    /**
     * Evaluate @p unit on this worker: send @p requestLine, receive
     * and validate the response, applying the retry/backoff policy
     * above.  On a non-OK return (other than cancellation) the
     * worker is quarantined and the caller should release the unit
     * for other workers.  @p cancel aborts waits between retries.
     */
    StatusOr<SweepUnitResult> callUnit(const std::string &requestLine,
                                       const WorkUnit &unit,
                                       const std::string &sweepFp,
                                       const std::string &techFp,
                                       const CancelToken *cancel);

  private:
    /** One attempt: connect if needed, send, receive. */
    StatusOr<std::string> attempt(const std::string &requestLine);

    const std::string endpoint_;
    const WorkerPolicy policy_;
    LineChannel channel_;
    Backoff backoff_;
    int consecutiveFailures_ = 0;
    int64_t retries_ = 0;
    bool quarantined_ = false;
};

} // namespace fabric
} // namespace nnbaton

#endif // NNBATON_FABRIC_WORKER_HPP
