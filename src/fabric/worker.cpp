#include "fabric/worker.hpp"

#include <functional>

#include "common/logging.hpp"
#include "serve/protocol.hpp"

namespace nnbaton {
namespace fabric {

namespace {

/** Failures worth retrying on the same worker.  The serve-level
 *  retryable set (overload, cancellation, deadline) plus DataLoss:
 *  a corrupted frame is a transport accident, not the worker's
 *  opinion, and a fresh connection usually clears it. */
bool
retryableFailure(const Status &status)
{
    return serve::isRetryableCode(status.code()) ||
           status.code() == StatusCode::DataLoss;
}

} // namespace

WorkerClient::WorkerClient(std::string endpoint, WorkerPolicy policy)
    : endpoint_(std::move(endpoint)), policy_(policy),
      // Seeded from the endpoint string: each worker gets its own
      // deterministic jitter stream, so retry storms desynchronise
      // across workers yet tests replay exactly.
      backoff_(policy.backoff, std::hash<std::string>{}(endpoint_))
{
}

StatusOr<std::string>
WorkerClient::attempt(const std::string &requestLine)
{
    if (!channel_.connected()) {
        StatusOr<LineChannel> channel = connectLineChannel(
            endpoint_, policy_.connectTimeoutSeconds);
        if (!channel.ok())
            return channel.status();
        channel_ = std::move(channel).value();
    }
    Status sent = channel_.sendLine(requestLine,
                                    policy_.ioTimeoutSeconds);
    if (!sent.ok()) {
        channel_.close();
        return sent;
    }
    StatusOr<std::string> line =
        channel_.recvLine(policy_.ioTimeoutSeconds);
    if (!line.ok()) {
        // The connection is in an unknown framing state (half a
        // response may still be in flight); drop it so the next
        // attempt starts clean.
        channel_.close();
        return line.status();
    }
    return line;
}

StatusOr<SweepUnitResult>
WorkerClient::callUnit(const std::string &requestLine,
                       const WorkUnit &unit, const std::string &sweepFp,
                       const std::string &techFp,
                       const CancelToken *cancel)
{
    for (;;) {
        if (cancel && cancel->cancelled())
            return errCancelled("fabric: sweep cancelled");

        Status failure = Status::okStatus();
        StatusOr<std::string> line = attempt(requestLine);
        if (line.ok()) {
            StatusOr<SweepUnitResult> result = parseSweepUnitResponse(
                line.value(), unit, sweepFp, techFp);
            if (result.ok()) {
                consecutiveFailures_ = 0;
                backoff_.reset();
                return result;
            }
            failure = result.status();
            if (failure.code() == StatusCode::DataLoss) {
                // Corrupt frame: subsequent bytes on this connection
                // cannot be trusted to line up with requests.
                channel_.close();
            }
        } else {
            failure = line.status();
        }

        if (!retryableFailure(failure)) {
            // The worker answered coherently but wrongly (fingerprint
            // mismatch, unknown op): it disagrees about the design
            // space and must not be asked again.
            quarantined_ = true;
            return failure.withContext(
                strprintf("worker %s quarantined", endpoint_.c_str()));
        }

        ++retries_;
        ++consecutiveFailures_;
        if (consecutiveFailures_ >= policy_.maxFailures) {
            quarantined_ = true;
            return failure.withContext(strprintf(
                "worker %s quarantined after %d consecutive failures",
                endpoint_.c_str(), consecutiveFailures_));
        }
        const int64_t delayMs = backoff_.nextDelayMs();
        debugLog("fabric: worker %s unit %lld failed (%s); retry in "
                 "%lldms",
                 endpoint_.c_str(), static_cast<long long>(unit.id),
                 failure.toString().c_str(),
                 static_cast<long long>(delayMs));
        if (!sleepWithCancel(delayMs, cancel))
            return errCancelled("fabric: sweep cancelled");
    }
}

} // namespace fabric
} // namespace nnbaton
