#include "fabric/wire.hpp"

#include <sstream>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "dse/checkpoint.hpp"
#include "mapper/search.hpp"

namespace nnbaton {
namespace fabric {

namespace {

/** Lift an error envelope back into the Status it carried.  The
 *  retryable codes round-trip exactly (the coordinator's backoff
 *  predicate keys on them); everything else collapses to the
 *  non-retryable FAILED_PRECONDITION. */
Status
statusFromEnvelope(const JsonValue &root)
{
    std::string code = "?";
    std::string message = "worker error";
    if (const JsonValue *error = root.find("error");
        error && error->isObject()) {
        if (const JsonValue *c = error->find("code");
            c && c->isString())
            code = c->string;
        if (const JsonValue *m = error->find("message");
            m && m->isString())
            message = m->string;
    }
    if (code == "UNAVAILABLE")
        return errUnavailable("worker: %s", message.c_str());
    if (code == "CANCELLED")
        return errCancelled("worker: %s", message.c_str());
    if (code == "DEADLINE_EXCEEDED")
        return errDeadlineExceeded("worker: %s", message.c_str());
    return errFailedPrecondition("worker: %s: %s", code.c_str(),
                                 message.c_str());
}

StatusOr<int64_t>
statInt(const JsonValue &stats, const char *name)
{
    const JsonValue *v = stats.find(name);
    if (v == nullptr || !v->isNumber())
        return errDataLoss("unit response: bad stats member '%s'",
                           name);
    return static_cast<int64_t>(v->number);
}

} // namespace

std::string
techFingerprintHex(const TechnologyModel &tech)
{
    return strprintf(
        "%016llx",
        static_cast<unsigned long long>(tech.fingerprint()));
}

std::string
encodeSweepUnitRequest(const std::string &modelText,
                       const DseOptions &options,
                       const TechnologyModel &tech,
                       const WorkUnit &unit,
                       const std::string &sweepFp,
                       const std::string &techFp)
{
    std::ostringstream ss;
    JsonWriter j(ss);
    j.beginObject();
    j.field("op", "sweepUnit");
    j.field("modelText", modelText);
    j.field("macs", options.totalMacs);
    if (options.areaLimitMm2 > 0)
        j.fieldExact("areaMm2", options.areaLimitMm2);
    j.field("proportional", options.proportionalMem);
    j.field("objective", options.objective == Objective::MinEdp
                             ? "edp"
                             : "energy");
    j.field("search", nnbaton::toString(options.searchMode));
    if (options.searchMode == SearchMode::Anneal) {
        j.field("annealSeed",
                static_cast<int64_t>(options.annealSeed));
        j.field("annealIterations",
                static_cast<int64_t>(options.annealIterations));
    }
    // The technology anchors travel explicitly so the worker scores
    // under the coordinator's exact model; the fingerprint gate on
    // the worker rejects anything this projection cannot express.
    j.key("tech").beginObject();
    j.fieldExact("dramEnergyPerBit", tech.dramEnergyPerBit);
    j.fieldExact("d2dEnergyPerBit", tech.d2dEnergyPerBit);
    j.fieldExact("l2EnergyPerBitAt32K", tech.l2EnergyPerBitAt32K);
    j.fieldExact("l1EnergyPerBitAt1K", tech.l1EnergyPerBitAt1K);
    j.fieldExact("rfEnergyPerBitRmw", tech.rfEnergyPerBitRmw);
    j.fieldExact("macEnergyPerOp", tech.macEnergyPerOp);
    j.fieldExact("nocEnergyPerBit", tech.nocEnergyPerBit);
    j.fieldExact("sramEnergyOffset", tech.sramEnergyPerBitKb.offset);
    j.fieldExact("sramEnergySlope", tech.sramEnergyPerBitKb.slope);
    j.fieldExact("vectorOpEnergyPerOp", tech.vectorOpEnergyPerOp);
    j.fieldExact("frequencyGhz", tech.frequencyGhz);
    j.field("dramBitsPerCycle", tech.dramBitsPerCycle);
    j.field("d2dBitsPerCycle", tech.d2dBitsPerCycle);
    j.field("dataBits", tech.dataBits);
    j.field("psumBits", tech.psumBits);
    j.endObject();
    j.field("unitId", unit.id);
    j.field("begin", unit.begin);
    j.field("end", unit.end);
    j.field("fingerprint", sweepFp);
    j.field("techFingerprint", techFp);
    j.endObject();
    return ss.str();
}

StatusOr<SweepUnitResult>
parseSweepUnitResponse(const std::string &line, const WorkUnit &unit,
                       const std::string &sweepFp,
                       const std::string &techFp)
{
    const JsonParseResult parsed = parseJson(line);
    if (!parsed.ok()) {
        return errDataLoss("unit %lld: corrupt response frame: %s",
                           static_cast<long long>(unit.id),
                           parsed.error.c_str());
    }
    const JsonValue &root = parsed.value;
    if (!root.isObject()) {
        return errDataLoss("unit %lld: response is not an object",
                           static_cast<long long>(unit.id));
    }
    const JsonValue *ok = root.find("ok");
    if (ok == nullptr || !ok->isBool()) {
        return errDataLoss("unit %lld: response missing 'ok'",
                           static_cast<long long>(unit.id));
    }
    if (!ok->boolean)
        return statusFromEnvelope(root);

    const JsonValue *unitId = root.find("unitId");
    const JsonValue *fp = root.find("fingerprint");
    const JsonValue *tfp = root.find("techFingerprint");
    const JsonValue *entries = root.find("entries");
    const JsonValue *stats = root.find("stats");
    if (unitId == nullptr || !unitId->isNumber() || fp == nullptr ||
        !fp->isString() || tfp == nullptr || !tfp->isString() ||
        entries == nullptr || !entries->isArray() ||
        stats == nullptr || !stats->isObject()) {
        return errDataLoss("unit %lld: malformed response document",
                           static_cast<long long>(unit.id));
    }
    if (static_cast<int64_t>(unitId->number) != unit.id) {
        return errFailedPrecondition(
            "unit %lld: response is for unit %lld",
            static_cast<long long>(unit.id),
            static_cast<long long>(unitId->number));
    }
    // Fingerprint echo: the worker proved it enumerated the same
    // space before evaluating; a mismatch here means the response
    // was built against a different sweep and must not be merged.
    if (fp->string != sweepFp || tfp->string != techFp) {
        return errFailedPrecondition(
            "unit %lld: response fingerprints do not match the sweep",
            static_cast<long long>(unit.id));
    }
    if (static_cast<int64_t>(entries->array.size()) != unit.points()) {
        return errDataLoss(
            "unit %lld: expected %lld entries, got %zu",
            static_cast<long long>(unit.id),
            static_cast<long long>(unit.points()),
            entries->array.size());
    }

    SweepUnitResult result;
    result.outcomes.resize(entries->array.size());
    for (size_t k = 0; k < entries->array.size(); ++k) {
        const JsonValue &ev = entries->array[k];
        if (!ev.isObject()) {
            return errDataLoss("unit %lld: entry %zu not an object",
                               static_cast<long long>(unit.id), k);
        }
        const JsonValue *index = ev.find("i");
        const JsonValue *kind = ev.find("kind");
        if (index == nullptr || !index->isNumber() ||
            kind == nullptr || !kind->isString()) {
            return errDataLoss("unit %lld: malformed entry %zu",
                               static_cast<long long>(unit.id), k);
        }
        if (static_cast<int64_t>(index->number) !=
            unit.begin + static_cast<int64_t>(k)) {
            return errDataLoss(
                "unit %lld: entry %zu is for index %lld, expected "
                "%lld",
                static_cast<long long>(unit.id), k,
                static_cast<long long>(index->number),
                static_cast<long long>(unit.begin +
                                       static_cast<int64_t>(k)));
        }
        SweepPointOutcome &out = result.outcomes[k];
        CheckpointEntry::Kind parsedKind;
        if (parseCheckpointKind(kind->string, parsedKind)) {
            switch (parsedKind) {
            case CheckpointEntry::Kind::AreaRejected:
                out.kind = SweepPointOutcome::AreaRejected;
                break;
            case CheckpointEntry::Kind::Infeasible:
                out.kind = SweepPointOutcome::Infeasible;
                break;
            case CheckpointEntry::Kind::Valid: {
                out.kind = SweepPointOutcome::Valid;
                const JsonValue *point = ev.find("point");
                if (point == nullptr) {
                    return errDataLoss(
                        "unit %lld: valid entry %zu missing point",
                        static_cast<long long>(unit.id), k);
                }
                Status s = readDesignPointJson(*point, out.point);
                if (!s.ok()) {
                    return s.withContext(strprintf(
                        "unit %lld entry %zu",
                        static_cast<long long>(unit.id), k));
                }
                break;
            }
            }
        } else if (kind->string == "poisoned") {
            out.kind = SweepPointOutcome::Poisoned;
            if (const JsonValue *error = ev.find("error");
                error && error->isString()) {
                out.error = error->string;
            }
        } else {
            return errDataLoss("unit %lld: unknown entry kind '%s'",
                               static_cast<long long>(unit.id),
                               kind->string.c_str());
        }
    }

    struct
    {
        const char *name;
        int64_t SearchStats::*member;
    } kStatMembers[] = {
        {"evaluated", &SearchStats::evaluated},
        {"pruned", &SearchStats::pruned},
        {"cacheHits", &SearchStats::cacheHits},
        {"cacheMisses", &SearchStats::cacheMisses},
        {"nodesOpened", &SearchStats::nodesOpened},
        {"subtreesPruned", &SearchStats::subtreesPruned},
        {"incumbentUpdates", &SearchStats::incumbentUpdates},
        {"warmStarts", &SearchStats::warmStarts},
        {"refined", &SearchStats::refined},
        {"refinedPruned", &SearchStats::refinedPruned},
    };
    for (const auto &member : kStatMembers) {
        StatusOr<int64_t> v = statInt(*stats, member.name);
        if (!v.ok())
            return v.status();
        result.stats.*(member.member) = v.value();
    }
    return result;
}

} // namespace fabric
} // namespace nnbaton
