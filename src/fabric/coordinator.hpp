/**
 * @file
 * The distributed sweep coordinator: the fault-tolerant counterpart of
 * explore() (dse/explorer.hpp) that shards the fingerprinted design
 * space across `nn-baton serve` workers instead of local threads.
 *
 * The determinism contract is inherited from dse/slice.hpp: the
 * coordinator enumerates the same task list as a local sweep, leases
 * contiguous units of it to workers (fabric/lease.hpp), validates
 * every response against the sweep and technology fingerprints
 * (fabric/wire.hpp), and folds the completed outcome vector with the
 * same collectSweepOutcomes() a local sweep uses — so the merged
 * report is bit-identical to a single-process run no matter how units
 * were scattered, retried, stolen or re-evaluated.
 *
 * Fault tolerance, by layer:
 *
 *  - per-attempt: WorkerClient retries transient failures with
 *    exponential backoff and quarantines misbehaving endpoints;
 *  - per-unit: leases expire and units are re-issued to other
 *    workers (work stealing), first completion wins;
 *  - per-sweep: when every worker is quarantined the remaining units
 *    degrade to local in-process evaluation, and the coordinator's
 *    checkpoint (same format as --checkpoint, interchangeable with a
 *    local sweep's) lets a killed coordinator resume mid-sweep.
 */

#ifndef NNBATON_FABRIC_COORDINATOR_HPP
#define NNBATON_FABRIC_COORDINATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "fabric/worker.hpp"
#include "nn/model.hpp"
#include "tech/technology.hpp"

namespace nnbaton {
namespace fabric {

/** Coordinator knobs. */
struct FabricOptions
{
    /** Worker endpoints ("host:port" or Unix socket paths). */
    std::vector<std::string> workers;

    /** Design points per leased unit; <= 0 picks a size that gives
     *  each worker several units to steal from. */
    int64_t unitPoints = 0;

    /** Lease TTL before an unfinished unit becomes stealable.  Should
     *  comfortably exceed a unit's evaluation time; expiry is the
     *  crash/straggler recovery path, not the common case. */
    double leaseSeconds = 60.0;

    /** Per-worker connect/IO/retry/quarantine policy. */
    WorkerPolicy worker;

    /** Evaluate units left over after every worker is lost (or none
     *  were given) in-process instead of failing the sweep. */
    bool localFallback = true;
};

/** What the fabric did, for logs / tests / metrics. */
struct FabricStats
{
    int64_t units = 0;             //!< work units in the sweep
    int64_t unitsDispatched = 0;   //!< claim → worker call attempts
    int64_t unitsCompleted = 0;    //!< first completions by workers
    int64_t retries = 0;           //!< worker attempt retries
    int64_t leasesExpired = 0;     //!< re-issues of expired leases
    int64_t workersQuarantined = 0;
    int64_t duplicateCompletions = 0; //!< late finishes, dropped
    int64_t localFallbackUnits = 0;   //!< units evaluated in-process
};

/**
 * Run the pre-design sweep for @p model distributed across
 * @p fabric.workers.  Honours the same DseOptions resilience surface
 * as explore(): checkpointPath / resumePath (same file format — the
 * two are interchangeable), cancel, strict (local fallback only;
 * remote workers always quarantine poisoned points).  Throws
 * StatusError like explore() does for unusable inputs.
 */
DseResult coordinateSweep(const Model &model, const DseOptions &options,
                          const TechnologyModel &tech,
                          const FabricOptions &fabric,
                          FabricStats *statsOut = nullptr);

} // namespace fabric
} // namespace nnbaton

#endif // NNBATON_FABRIC_COORDINATOR_HPP
