#include "fabric/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "dse/checkpoint.hpp"
#include "dse/slice.hpp"
#include "fabric/lease.hpp"
#include "fabric/wire.hpp"
#include "mapper/cache.hpp"
#include "nn/parser.hpp"

namespace nnbaton {
namespace fabric {

namespace {

/** Unit size when the caller did not pick one: small enough that
 *  every worker gets several units (so stealing has something to
 *  steal and a crashed worker forfeits little work), large enough
 *  that framing cost stays negligible. */
int64_t
autoUnitPoints(int64_t remaining, size_t workers)
{
    const int64_t lanes = static_cast<int64_t>(workers ? workers : 1);
    return std::clamp<int64_t>(remaining / (lanes * 4), 1, 32);
}

} // namespace

DseResult
coordinateSweep(const Model &model, const DseOptions &options,
                const TechnologyModel &tech,
                const FabricOptions &fabric, FabricStats *statsOut)
{
    const auto start = std::chrono::steady_clock::now();

    // Identical enumeration and identity to explore(): the unit
    // space is a partition of the same index space a local sweep
    // walks, which is the whole bit-identity argument.
    const std::vector<SweepTask> tasks = enumerateSweepTasks(options);
    const std::string fingerprint = sweepFingerprint(model, options);
    const std::string techFp = techFingerprintHex(tech);
    const std::string modelText = writeModelText(model);

    CheckpointSink sink(options.checkpointPath, options.checkpointEvery,
                        fingerprint);
    std::vector<SweepPointOutcome> outcomes(tasks.size());

    // Resume exactly like explore() — the checkpoint formats are the
    // same file, so a sweep started locally can finish distributed
    // and vice versa.
    int64_t resumedPoints = 0;
    if (!options.resumePath.empty()) {
        SweepCheckpoint restored =
            loadSweepCheckpoint(options.resumePath).value();
        if (restored.fingerprint != fingerprint) {
            throwStatus(errFailedPrecondition(
                "resume checkpoint %s was written for a different "
                "sweep (its fingerprint \"%s\" != \"%s\")",
                options.resumePath.c_str(),
                restored.fingerprint.c_str(), fingerprint.c_str()));
        }
        for (size_t i = 0; i < tasks.size(); ++i) {
            const std::string key =
                designPointKey(tasks[i].compute, tasks[i].memory);
            auto it = restored.entries.find(key);
            if (it == restored.entries.end())
                continue;
            SweepPointOutcome &out = outcomes[i];
            out.restored = true;
            switch (it->second.kind) {
            case CheckpointEntry::Kind::AreaRejected:
                out.kind = SweepPointOutcome::AreaRejected;
                break;
            case CheckpointEntry::Kind::Infeasible:
                out.kind = SweepPointOutcome::Infeasible;
                break;
            case CheckpointEntry::Kind::Valid:
                out.kind = SweepPointOutcome::Valid;
                out.point = it->second.point;
                break;
            }
            sink.seed(key, it->second);
            ++resumedPoints;
        }
        inform("fabric: restored %lld of %zu design points from %s",
               static_cast<long long>(resumedPoints), tasks.size(),
               options.resumePath.c_str());
    }

    // Chunk the un-restored index runs into contiguous work units.
    const int64_t remaining =
        static_cast<int64_t>(tasks.size()) - resumedPoints;
    const int64_t unitPoints =
        fabric.unitPoints > 0
            ? fabric.unitPoints
            : autoUnitPoints(remaining, fabric.workers.size());
    std::vector<WorkUnit> units;
    for (int64_t i = 0; i < static_cast<int64_t>(tasks.size());) {
        if (outcomes[i].restored) {
            ++i;
            continue;
        }
        int64_t end = i;
        while (end < static_cast<int64_t>(tasks.size()) &&
               !outcomes[end].restored &&
               end - i < unitPoints)
            ++end;
        units.push_back(WorkUnit{
            static_cast<int64_t>(units.size()), i, end});
        i = end;
    }
    inform("fabric: %zu unit(s) of <=%lld point(s) across %zu "
           "worker(s)",
           units.size(), static_cast<long long>(unitPoints),
           fabric.workers.size());

    FabricStats stats;
    stats.units = static_cast<int64_t>(units.size());

    LeaseTable table(units, fabric.leaseSeconds);
    std::mutex mergeMutex;
    SearchStats remoteStats;
    std::atomic<int64_t> dispatched{0};
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> retriesTotal{0};
    std::atomic<int64_t> quarantined{0};

    const auto workerMain = [&](const std::string &endpoint) {
        WorkerClient client(endpoint, fabric.worker);
        while (std::optional<WorkUnit> unit =
                   table.claim(options.cancel)) {
            dispatched.fetch_add(1, std::memory_order_relaxed);
            const std::string request = encodeSweepUnitRequest(
                modelText, options, tech, *unit, fingerprint, techFp);
            StatusOr<SweepUnitResult> result = client.callUnit(
                request, *unit, fingerprint, techFp, options.cancel);
            if (result.ok()) {
                // First completion wins; the winner is the only
                // writer of this unit's outcome slots and checkpoint
                // entries, so a late duplicate can never tear them.
                if (!table.complete(unit->id))
                    continue;
                SweepUnitResult unitResult = std::move(result).value();
                for (int64_t k = 0; k < unit->points(); ++k) {
                    const int64_t i = unit->begin + k;
                    outcomes[i] = std::move(
                        unitResult.outcomes[static_cast<size_t>(k)]);
                    sink.record(designPointKey(tasks[i].compute,
                                               tasks[i].memory),
                                outcomes[i]);
                }
                {
                    std::lock_guard<std::mutex> lock(mergeMutex);
                    remoteStats += unitResult.stats;
                }
                completed.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            // This worker is not going to finish the unit: hand it
            // back immediately so a peer can steal it without
            // waiting out the lease.
            table.release(unit->id);
            if (client.quarantined()) {
                warn("fabric: %s", result.status().toString().c_str());
                quarantined.fetch_add(1, std::memory_order_relaxed);
            }
            break; // quarantined or cancelled — this lane is done
        }
        retriesTotal.fetch_add(client.retries(),
                               std::memory_order_relaxed);
    };

    std::vector<std::thread> lanes;
    lanes.reserve(fabric.workers.size());
    if (!units.empty()) {
        for (const std::string &endpoint : fabric.workers)
            lanes.emplace_back(workerMain, endpoint);
    }
    for (std::thread &lane : lanes)
        lane.join();

    // Whatever the fleet did not finish (every worker quarantined,
    // or no workers at all) degrades to in-process evaluation —
    // same slice evaluator the serve daemon runs, same outcomes.
    MappingCache localCache;
    MappingCache &cache = options.cache ? *options.cache : localCache;
    const auto cancelledNow = [&] {
        return options.cancel && options.cancel->cancelled();
    };
    std::vector<WorkUnit> leftover = table.incompleteUnits();
    if (!leftover.empty() && !cancelledNow()) {
        if (!fabric.localFallback) {
            sink.finish(false);
            throwStatus(errUnavailable(
                "fabric: %zu unit(s) unfinished and every worker "
                "lost (local fallback disabled)",
                leftover.size()));
        }
        warn("fabric: evaluating %zu leftover unit(s) locally",
             leftover.size());
        for (const WorkUnit &unit : leftover) {
            if (cancelledNow())
                break;
            std::vector<SweepPointOutcome> local = evaluateSweepSlice(
                model, options, tech, tasks, unit.begin, unit.end,
                cache);
            for (int64_t k = 0; k < unit.points(); ++k) {
                const int64_t i = unit.begin + k;
                outcomes[i] =
                    std::move(local[static_cast<size_t>(k)]);
                sink.record(designPointKey(tasks[i].compute,
                                           tasks[i].memory),
                            outcomes[i]);
            }
            table.complete(unit.id);
            ++stats.localFallbackUnits;
        }
        leftover = table.incompleteUnits();
    }

    // A cancelled sweep leaves units unfinished; their slots must be
    // Skipped explicitly (the default outcome kind means something
    // else) so the collection pass counts them as such.
    for (const WorkUnit &unit : leftover) {
        for (int64_t i = unit.begin; i < unit.end; ++i) {
            if (!outcomes[i].restored)
                outcomes[i].kind = SweepPointOutcome::Skipped;
        }
    }

    DseResult result = collectSweepOutcomes(tasks, outcomes);
    result.search += remoteStats;
    result.cacheEntries = static_cast<int64_t>(cache.size());
    sink.finish(result.complete);

    stats.unitsDispatched = dispatched.load();
    stats.unitsCompleted = completed.load();
    stats.retries = retriesTotal.load();
    stats.leasesExpired = table.leasesExpired();
    stats.workersQuarantined = quarantined.load();
    stats.duplicateCompletions = table.duplicateCompletions();

    if (!result.poisoned.empty()) {
        warn("fabric: %zu design point(s) poisoned (first: %s)",
             result.poisoned.size(),
             result.poisoned.front().error.c_str());
    }
    if (!result.complete) {
        warn("fabric: stopped early (%lld of %lld points skipped): %s",
             static_cast<long long>(result.skipped),
             static_cast<long long>(result.swept),
             options.cancel
                 ? options.cancel->toStatus().toString().c_str()
                 : "cancelled");
    }

    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.counter("fabric.units.dispatched").add(stats.unitsDispatched);
    reg.counter("fabric.units.completed").add(stats.unitsCompleted);
    reg.counter("fabric.units.local_fallback")
        .add(stats.localFallbackUnits);
    reg.counter("fabric.retries").add(stats.retries);
    reg.counter("fabric.leases.expired").add(stats.leasesExpired);
    reg.counter("fabric.workers.quarantined")
        .add(stats.workersQuarantined);
    reg.counter("fabric.duplicate_completions")
        .add(stats.duplicateCompletions);

    result.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (statsOut != nullptr)
        *statsOut = stats;
    return result;
}

} // namespace fabric
} // namespace nnbaton
