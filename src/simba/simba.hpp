/**
 * @file
 * Simba baseline: the weight-centric dataflow of the MICRO 2019
 * multi-chip-module accelerator, modelled with the same cost
 * accounting as NN-Baton (paper section VI-A.2: same memory sizes and
 * computation resources, controller/RISC-V omitted, memory read/write
 * plus die-to-die communication counted).
 *
 * Weight-centric means the spatial mapping centres on the weight
 * dimensions: input channels are split across PE/chiplet rows, output
 * channels across columns (paper figure 4 (c)-(d)).  Partial sums
 * (24-bit) are accumulated from row to row across cores (NoC) and
 * chiplets (NoP).  The planar dimensions are handled only temporally,
 * so halo regions are reloaded per temporal tile.  The temporal tiling
 * is chosen best-case for Simba inside its weight-centric space so
 * the comparison isolates the dataflow style.
 */

#ifndef NNBATON_SIMBA_SIMBA_HPP
#define NNBATON_SIMBA_SIMBA_HPP

#include <string>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "cost/energy.hpp"
#include "nn/model.hpp"
#include "sim/runtime.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** The Simba spatial arrangement chosen for a layer. */
struct SimbaMapping
{
    int pkgRows = 2;  //!< chiplet rows (input-channel split)
    int pkgCols = 2;  //!< chiplet columns (output-channel split)
    int chipRows = 4; //!< core rows per chiplet (input-channel split)
    int chipCols = 2; //!< core columns per chiplet (output-channel split)
    int hoT = 1;      //!< temporal tile rows
    int woT = 1;      //!< temporal tile columns

    std::string toString() const;
};

/** Evaluated Simba cost for one layer. */
struct SimbaLayerCost
{
    SimbaMapping mapping;
    AccessCounts counts;
    EnergyBreakdown energy; //!< pJ
    RuntimeResult runtime;
};

/**
 * Evaluate a layer under the best weight-centric Simba mapping
 * (exhaustive over grid arrangements and temporal tiles).
 */
SimbaLayerCost simbaLayerCost(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech);

/** Whole-model Simba cost (sums the per-layer best mappings). */
struct SimbaModelCost
{
    std::string modelName;
    EnergyBreakdown energy;
    int64_t cycles = 0;
};

SimbaModelCost simbaModelCost(const Model &model,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech);

} // namespace nnbaton

#endif // NNBATON_SIMBA_SIMBA_HPP
