#include "simba/simba.hpp"

#include <algorithm>
#include <optional>

#include "c3p/analysis.hpp"
#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/util.hpp"
#include "dataflow/loopnest.hpp"

namespace nnbaton {

std::string
SimbaMapping::toString() const
{
    return strprintf("pkg %dx%d chip %dx%d tile %dx%d", pkgRows, pkgCols,
                     chipRows, chipCols, hoT, woT);
}

namespace {

/** Derived per-level extents for one Simba arrangement. */
struct SimbaShapes
{
    int ciChip = 1; //!< input channels per chiplet row
    int ciCore = 1; //!< input channels per core row
    int coCore = 1; //!< output channels per core column
    int icTrips = 1;
    int ocTrips = 1;
    int thTrips = 1;
    int twTrips = 1;
};

SimbaShapes
deriveSimba(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const SimbaMapping &m)
{
    SimbaShapes s;
    // Depthwise layers have one reducible input channel per output;
    // the CI-split rows cannot be filled (a known weakness of the
    // weight-centric arrangement).
    s.ciChip = static_cast<int>(
        ceilDiv(layer.ciPerGroup(), m.pkgRows));
    s.ciCore = static_cast<int>(ceilDiv(s.ciChip, m.chipRows));
    const int co_chip = static_cast<int>(ceilDiv(layer.co, m.pkgCols));
    s.coCore = static_cast<int>(ceilDiv(co_chip, m.chipCols));
    s.icTrips = static_cast<int>(
        ceilDiv(s.ciCore, std::min(cfg.core.vectorSize, s.ciCore)));
    s.ocTrips = static_cast<int>(
        ceilDiv(s.coCore, std::min(cfg.core.lanes, s.coCore)));
    s.thTrips = static_cast<int>(ceilDiv(layer.ho, m.hoT));
    s.twTrips = static_cast<int>(ceilDiv(layer.wo, m.woT));
    return s;
}

/** Evaluate one Simba arrangement; nullopt if illegal. */
std::optional<SimbaLayerCost>
evaluateSimba(const ConvLayer &layer, const AcceleratorConfig &cfg,
              const TechnologyModel &tech, const SimbaMapping &m,
              bool plane_outer)
{
    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;
    if (m.pkgRows * m.pkgCols != np || m.chipRows * m.chipCols != nc)
        return std::nullopt;

    const SimbaShapes s = deriveSimba(layer, cfg, m);
    const int lane_active = std::min(cfg.core.lanes, s.coCore);
    const int vec_active = std::min(cfg.core.vectorSize, s.ciCore);

    // O-L1 must hold a temporal tile of partial sums.
    if (static_cast<int64_t>(m.hoT) * m.woT * cfg.core.lanes * 24 >
        cfg.core.ol1Bytes * 8) {
        return std::nullopt;
    }
    // A-L1 must hold one vector-step input slice.
    if (static_cast<int64_t>(inputExtent(m.hoT, layer.kh, layer.stride)) *
            inputExtent(m.woT, layer.kw, layer.stride) * vec_active >
        cfg.core.al1Bytes) {
        return std::nullopt;
    }

    // ---- per-PE nest for W-L1 / A-L1 ------------------------------
    LoopNest pe;
    auto push = [](LoopNest &n, Dim d, int64_t trips) {
        if (trips > 1)
            n.loops.push_back({d, trips});
    };
    if (plane_outer) {
        push(pe, Dim::OH, s.thTrips);
        push(pe, Dim::OW, s.twTrips);
        push(pe, Dim::OC, s.ocTrips);
    } else {
        push(pe, Dim::OC, s.ocTrips);
        push(pe, Dim::OH, s.thTrips);
        push(pe, Dim::OW, s.twTrips);
    }
    push(pe, Dim::IC, s.icTrips);
    push(pe, Dim::KH, layer.kh);
    push(pe, Dim::KW, layer.kw);
    push(pe, Dim::OH, m.hoT);
    push(pe, Dim::OW, m.woT);
    pe.atom = TileSpan{};
    pe.atom.co = lane_active;
    pe.atom.ci = vec_active;

    // ---- per-chiplet nest for the global buffer (A-L2 role) --------
    LoopNest gb;
    if (plane_outer) {
        push(gb, Dim::OH, s.thTrips);
        push(gb, Dim::OW, s.twTrips);
        push(gb, Dim::OC, s.ocTrips);
    } else {
        push(gb, Dim::OC, s.ocTrips);
        push(gb, Dim::OH, s.thTrips);
        push(gb, Dim::OW, s.twTrips);
    }
    gb.atom = TileSpan{};
    gb.atom.ho = m.hoT;
    gb.atom.wo = m.woT;
    gb.atom.co = lane_active * m.chipCols;
    gb.atom.ci = s.ciChip;
    gb.atom.kh = layer.kh;
    gb.atom.kw = layer.kw;

    const ReuseResult wl1 =
        analyzeBuffer(pe, Tensor::Weights, layer, cfg.core.wl1Bytes);
    const ReuseResult al1 =
        analyzeBuffer(pe, Tensor::Activations, layer, cfg.core.al1Bytes);
    const ReuseResult al2 =
        analyzeBuffer(gb, Tensor::Activations, layer,
                      cfg.chiplet.al2Bytes);

    SimbaLayerCost out;
    out.mapping = m;
    AccessCounts &c = out.counts;
    const int64_t macs = layer.macs();
    const int64_t outv = layer.outputVolume();

    // Weights: disjoint across every PE.
    c.dramReadWeightBits += wl1.fillBytes * 8 * nc * np;
    c.wl1WriteBits += wl1.fillBytes * 8 * nc * np;
    const int64_t tiles_per_pe =
        static_cast<int64_t>(s.thTrips) * s.twTrips * s.ocTrips;
    c.wl1ReadBits += tiles_per_pe * lane_active * s.ciCore * layer.kh *
                     layer.kw * 8 * nc * np;

    // Activations: a chiplet row shares one input slice; within a
    // chiplet, a core row's stream is multicast across the columns.
    c.dramReadActBits += al2.fillBytes * 8 * m.pkgRows;
    c.d2dBits += al2.fillBytes * 8 * m.pkgRows * (m.pkgCols - 1);
    c.al2WriteBits += al2.fillBytes * 8 * np;
    c.al2ReadBits += al1.fillBytes * 8 * m.chipRows * np;
    c.al1WriteBits += al1.fillBytes * 8 * nc * np;
    c.al1ReadBits += macs * 8 / std::max(1, lane_active);

    // Partial sums: 24-bit hops down the rows (NoC) and across the
    // chiplet rows (NoP), once per output element per temporal
    // input-channel pass (the systolic accumulation of figure 4(c)).
    const int active_chip_rows =
        std::min<int>(m.chipRows, s.ciChip);
    const int active_pkg_rows =
        std::min<int>(m.pkgRows, layer.ciPerGroup());
    c.nocBits += outv * 24 * (active_chip_rows - 1) * s.icTrips;
    // Across chiplets each die first accumulates its local CI share,
    // then the partial outputs reduce once over the NoP.
    c.d2dBits += outv * 24 * (active_pkg_rows - 1);
    // Input delivery rides the same router network (the unified
    // NoC interface with per-PE routers), one hop per delivered byte,
    // unlike NN-Baton's central-bus multicast.
    c.nocBits += al1.fillBytes * 8 * nc * np;

    c.macOps = macs;
    // Post-MAC vector work (softmax) is mapping-independent — the
    // baseline pays the same bill as NN-Baton.
    c.vectorOps = layer.vectorOps();
    c.ol1RmwBits += ceilDiv(macs, std::max(1, vec_active)) * 24;
    c.ol1ReadBits += outv * 24;
    c.ol2WriteBits += outv * 8;
    c.ol2ReadBits += outv * 8;
    c.dramWriteBits += outv * 8;
    c.ol2Bytes = static_cast<int64_t>(m.hoT) * m.woT * lane_active *
                 m.chipCols;

    out.energy = computeEnergy(c, cfg, tech);

    // Runtime: same double-buffered phase model as the NN-Baton
    // estimator, with psum hops riding the ring budget.
    const int64_t tiles = std::max<int64_t>(tiles_per_pe, 1);
    const int64_t compute_per_tile =
        static_cast<int64_t>(m.hoT) * m.woT * layer.kh * layer.kw *
        s.icTrips;
    const int64_t dram_per_tile =
        ceilDiv(ceilDiv(c.dramBits(), np), tiles * tech.dramBitsPerCycle);
    const int64_t ring_per_tile =
        np > 1 ? ceilDiv(ceilDiv(c.d2dBits, np),
                         tiles * tech.d2dBitsPerCycle)
               : 0;
    RuntimeResult &r = out.runtime;
    r.computeCycles = tiles * compute_per_tile;
    r.cycles = tiles * std::max({compute_per_tile, dram_per_tile,
                                 ring_per_tile}) +
               dram_per_tile;
    r.stallCycles = r.cycles - r.computeCycles;
    const double peak = static_cast<double>(cfg.totalMacs()) * r.cycles;
    r.utilization = peak > 0 ? static_cast<double>(macs) / peak : 0.0;
    return out;
}

} // namespace

namespace {

/**
 * Simba's basic dataflow uses a fixed near-square grid with input
 * channels down the rows and output channels across the columns
 * (e.g. the 2x2 package of the 4-chiplet prototype, 4x2 cores per
 * chiplet); rows >= cols since CI leads the systolic reduction.
 */
std::pair<int, int>
fixedGrid(int units)
{
    // The smallest rows >= cols factorisation is the most square one.
    int rows = units;
    for (auto [a, b] : factorPairs(units)) {
        if (a >= b && a < rows)
            rows = a;
    }
    return {rows, units / rows};
}

} // namespace

SimbaLayerCost
simbaLayerCost(const ConvLayer &layer, const AcceleratorConfig &cfg,
               const TechnologyModel &tech)
{
    std::optional<SimbaLayerCost> best;
    const int64_t max_plane = cfg.core.maxCoreTilePlane(24);

    const auto [pkg_rows, pkg_cols] = fixedGrid(cfg.package.chiplets);
    const auto [chip_rows, chip_cols] = fixedGrid(cfg.chiplet.cores);
    {
        {
            const int pr = pkg_rows, pc = pkg_cols;
            const int cr = chip_rows, cc = chip_cols;
            // Temporal tiles: Simba rasters the plane, preferring wide
            // stripes; enumerate power-of-two heights with the widest
            // legal width each.
            for (int hot = 1;
                 hot <= std::min<int64_t>(layer.ho, max_plane);
                 hot *= 2) {
                int wot = static_cast<int>(
                    std::min<int64_t>(layer.wo, max_plane / hot));
                for (; wot >= 1; wot /= 2) {
                    SimbaMapping m{pr, pc, cr, cc, hot, wot};
                    for (bool plane_outer : {true, false}) {
                        auto cost = evaluateSimba(layer, cfg, tech, m,
                                                  plane_outer);
                        if (!cost)
                            continue;
                        if (!best || cost->energy.total() <
                                         best->energy.total()) {
                            best = std::move(cost);
                        }
                    }
                    if (wot == 1)
                        break;
                }
            }
        }
    }
    if (!best) {
        throwStatus(errInvalidArgument(
            "simbaLayerCost: no legal Simba arrangement for %s on %s",
            layer.name.c_str(), cfg.computeId().c_str()));
    }
    return *best;
}

SimbaModelCost
simbaModelCost(const Model &model, const AcceleratorConfig &cfg,
               const TechnologyModel &tech)
{
    SimbaModelCost total;
    total.modelName = model.name();
    for (const ConvLayer &layer : model.layers()) {
        SimbaLayerCost lc = simbaLayerCost(layer, cfg, tech);
        total.energy += lc.energy;
        total.cycles += lc.runtime.cycles;
    }
    return total;
}

} // namespace nnbaton
