#include "baton/forwarding.hpp"

#include <map>

#include "common/logging.hpp"
#include "common/status.hpp"

namespace nnbaton {

int
ForwardingReport::forwardedCount() const
{
    int n = 0;
    for (const ForwardingBoundary &b : boundaries)
        n += b.forwardable ? 1 : 0;
    return n;
}

namespace {

/**
 * A boundary is sequential when the consumer's input cube matches the
 * producer's output cube (same channels and plane) — residual side
 * branches and reshaped classifier heads fail this check.
 */
bool
isSequentialBoundary(const ConvLayer &producer, const ConvLayer &consumer)
{
    if (consumer.ci != producer.co)
        return false;
    // Allow pooling/stride between layers: the consumer's input plane
    // must not exceed what the producer makes.
    return consumer.hi() <= producer.ho * 2 + consumer.kh &&
           consumer.wi() <= producer.wo * 2 + consumer.kw;
}

} // namespace

ForwardingReport
analyzeForwarding(const Model &model, const PostDesignReport &report,
                  const TechnologyModel &tech)
{
    if (report.cost.layers.size() != model.layers().size()) {
        throwStatus(errInvalidArgument(
            "analyzeForwarding: report does not match model %s",
            model.name().c_str()));
    }

    ForwardingReport out;
    out.baselineEnergyPj = report.cost.energy.total();
    out.forwardedEnergyPj = out.baselineEnergyPj;

    const AcceleratorConfig &cfg = report.config;
    const int64_t on_chip_capacity =
        static_cast<int64_t>(cfg.package.chiplets) *
        cfg.chiplet.al2Bytes;

    // Count consumers per producer channel width to catch branching
    // models (several layers reading the same tensor).
    std::map<std::string, int> consumers;
    const auto &layers = model.layers();
    for (size_t i = 0; i + 1 < layers.size(); ++i) {
        ForwardingBoundary b;
        b.producer = layers[i].name;
        b.consumer = layers[i + 1].name;
        b.tensorBytes = layers[i].outputVolume();

        const bool fits = b.tensorBytes <= on_chip_capacity;
        const bool sequential =
            isSequentialBoundary(layers[i], layers[i + 1]);
        b.forwardable = fits && sequential;

        if (b.forwardable) {
            // Avoided DRAM traffic: the producer's 8-bit store and the
            // consumer's unique activation reload (bounded by the
            // actual analysed activation DRAM traffic).
            const MappingChoice &prod = report.mappings[i];
            const MappingChoice &cons = report.mappings[i + 1];
            const int64_t store_bits = prod.analysis.counts.dramWriteBits;
            const int64_t reload_bits =
                std::min(cons.analysis.counts.dramReadActBits,
                         b.tensorBytes * 8);
            // The tensor still crosses the ring once when the consumer
            // shares activations package-wide (C-type), charged at
            // D2D cost; the A-L2 writes are already counted in the
            // consumer's baseline.
            const bool consumer_shares =
                cons.mapping.pkgSpatial == PackagePartition::Channel &&
                cfg.package.chiplets > 1;
            const int64_t ring_bits =
                consumer_shares
                    ? b.tensorBytes * 8 * (cfg.package.chiplets - 1)
                    : 0;
            const double saved =
                static_cast<double>(store_bits + reload_bits) *
                    tech.dramEnergyPerBit -
                static_cast<double>(ring_bits) * tech.d2dEnergyPerBit;
            b.savedEnergyPj = std::max(0.0, saved);
            out.forwardedEnergyPj -= b.savedEnergyPj;
        }
        out.boundaries.push_back(std::move(b));
    }
    return out;
}

} // namespace nnbaton
