#include "baton/export.hpp"

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"

namespace nnbaton {

namespace {

/**
 * The shared observability block: the per-phase profile aggregated
 * from any collected trace spans (empty when tracing was off) and a
 * snapshot of the metrics registry, so an exported report carries the
 * cost of producing it.
 */
void
writeObservability(JsonWriter &j)
{
    j.beginObject();
    j.key("profile");
    obs::writeProfileJson(j, obs::buildProfile());
    j.key("metrics");
    obs::writeMetricsJson(j,
                          obs::MetricsRegistry::instance().snapshot());
    j.endObject();
}

void
writeMapping(JsonWriter &j, const Mapping &m)
{
    j.beginObject();
    j.key("spatial").beginObject();
    j.field("package", toString(m.pkgSpatial));
    j.field("packagePattern", m.pkgSplit.toString());
    j.field("chiplet", toString(m.chipSpatial));
    j.field("chipletChannelWays", m.chipChannelWays);
    j.field("chipletPattern", m.chipSplit.toString());
    j.endObject();

    j.key("temporal").beginObject();
    j.field("packageOrder", toString(m.pkgOrder));
    j.field("chipletOrder", toString(m.chipOrder));
    j.key("chipletTile").beginArray();
    j.value(m.chipletTile.ho).value(m.chipletTile.wo).value(
        m.chipletTile.co);
    j.endArray();
    j.key("coreTilePlane").beginArray();
    j.value(m.hoC).value(m.woC);
    j.endArray();
    j.endObject();
    j.endObject();
}

void
writeEnergy(JsonWriter &j, const EnergyBreakdown &e)
{
    j.beginObject();
    j.field("total_pj", e.total());
    j.field("dram_pj", e.dram);
    j.field("d2d_pj", e.d2d);
    j.field("noc_pj", e.noc);
    j.field("al2_pj", e.al2);
    j.field("al1_pj", e.al1);
    j.field("wl1_pj", e.wl1);
    j.field("ol1_pj", e.ol1);
    j.field("ol2_pj", e.ol2);
    j.field("mac_pj", e.mac);
    j.endObject();
}

void
writeConfig(JsonWriter &j, const AcceleratorConfig &cfg)
{
    j.beginObject();
    j.field("chiplets", cfg.package.chiplets);
    j.field("cores", cfg.chiplet.cores);
    j.field("lanes", cfg.core.lanes);
    j.field("vectorSize", cfg.core.vectorSize);
    j.field("ol1Bytes", cfg.core.ol1Bytes);
    j.field("al1Bytes", cfg.core.al1Bytes);
    j.field("wl1Bytes", cfg.core.wl1Bytes);
    j.field("al2Bytes", cfg.chiplet.al2Bytes);
    j.endObject();
}

} // namespace

void
exportMapping(const Mapping &mapping, std::ostream &os)
{
    JsonWriter j(os);
    writeMapping(j, mapping);
}

void
exportPostDesign(const PostDesignReport &report, std::ostream &os,
                 const ExportOptions &options)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("model", report.modelName);
    j.field("feasible", report.feasible);
    j.key("hardware");
    writeConfig(j, report.config);
    j.field("total_energy_pj", report.cost.energy.total());
    j.field("total_cycles", report.cost.cycles);

    j.key("layers").beginArray();
    for (size_t i = 0; i < report.mappings.size(); ++i) {
        const MappingChoice &c = report.mappings[i];
        j.beginObject();
        j.field("name", report.cost.layers[i].layerName);
        j.key("mapping");
        writeMapping(j, c.mapping);
        j.key("energy");
        writeEnergy(j, c.energy);
        j.field("cycles", c.runtime.cycles);
        j.field("utilization", c.runtime.utilization);
        j.endObject();
    }
    j.endArray();
    if (options.observability) {
        j.key("observability");
        writeObservability(j);
    }
    j.endObject();
    os << "\n";
}

void
exportPreDesign(const PreDesignReport &report, std::ostream &os,
                const ExportOptions &options)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("swept", report.sweep.swept);
    j.field("areaRejected", report.sweep.areaRejected);
    j.field("infeasible", report.sweep.infeasible);
    j.field("complete", report.sweep.complete);
    j.field("skipped", report.sweep.skipped);
    j.field("resumed", report.sweep.resumed);
    if (options.runCounters) {
        j.key("search").beginObject();
        j.field("evaluated", report.sweep.search.evaluated);
        j.field("pruned", report.sweep.search.pruned);
        j.field("cacheHits", report.sweep.search.cacheHits);
        j.field("cacheMisses", report.sweep.search.cacheMisses);
        j.field("cacheEntries", report.sweep.cacheEntries);
        j.endObject();
        j.field("elapsedSeconds", report.sweep.elapsedSeconds);
    }

    j.key("points").beginArray();
    for (const DesignPoint &p : report.sweep.points) {
        j.beginObject();
        j.key("compute").beginArray();
        j.value(p.compute.chiplets)
            .value(p.compute.cores)
            .value(p.compute.lanes)
            .value(p.compute.vectorSize);
        j.endArray();
        j.key("memory").beginObject();
        j.field("ol1Bytes", p.memory.ol1Bytes);
        j.field("al1Bytes", p.memory.al1Bytes);
        j.field("wl1Bytes", p.memory.wl1Bytes);
        j.field("al2Bytes", p.memory.al2Bytes);
        j.endObject();
        j.field("chipletAreaMm2", p.area.total());
        j.field("energy_pj", p.cost.energy.total());
        j.field("cycles", p.cost.cycles);
        j.field("edp", p.edp());
        j.endObject();
    }
    j.endArray();

    j.key("poisoned").beginArray();
    for (const PoisonedPoint &p : report.sweep.poisoned) {
        j.beginObject();
        j.field("sweepIndex", p.sweepIndex);
        j.key("compute").beginArray();
        j.value(p.compute.chiplets)
            .value(p.compute.cores)
            .value(p.compute.lanes)
            .value(p.compute.vectorSize);
        j.endArray();
        j.key("memory").beginObject();
        j.field("ol1Bytes", p.memory.ol1Bytes);
        j.field("al1Bytes", p.memory.al1Bytes);
        j.field("wl1Bytes", p.memory.wl1Bytes);
        j.field("al2Bytes", p.memory.al2Bytes);
        j.endObject();
        j.field("error", p.error);
        j.endObject();
    }
    j.endArray();

    if (report.recommended) {
        j.key("recommended").beginObject();
        j.key("compute").beginArray();
        j.value(report.recommended->compute.chiplets)
            .value(report.recommended->compute.cores)
            .value(report.recommended->compute.lanes)
            .value(report.recommended->compute.vectorSize);
        j.endArray();
        j.field("edp", report.recommended->edp());
        j.endObject();
    }
    if (options.observability) {
        j.key("observability");
        writeObservability(j);
    }
    j.endObject();
    os << "\n";
}

} // namespace nnbaton
