/**
 * @file
 * Inter-layer on-chip forwarding analysis (an extension beyond the
 * paper's layer-wise flow; the paper's related-work section points at
 * Tangram-style cross-layer dataflows as the natural next step).
 *
 * In the baseline flow every layer's outputs take the
 * O-L2 -> DRAM -> A-L2 round trip.  When a layer boundary is
 * *forwardable* — the producer's output fits in the package's
 * combined A-L2 capacity and the consumer reads it as activations —
 * the DRAM store and reload can be skipped; the 8-bit tensor moves
 * O-L2 -> A-L2 on chip instead (plus ring traffic when the consumer's
 * partition needs data produced on other chiplets).
 *
 * The analysis is conservative: a boundary is only forwardable when
 * the whole output tensor fits on chip, the consumer consumes exactly
 * the producer's output (sequential models; residual side inputs
 * disqualify the boundary), and both layers are feasible.
 */

#ifndef NNBATON_BATON_FORWARDING_HPP
#define NNBATON_BATON_FORWARDING_HPP

#include <string>
#include <vector>

#include "baton/baton.hpp"

namespace nnbaton {

/** One layer boundary in the forwarding analysis. */
struct ForwardingBoundary
{
    std::string producer;
    std::string consumer;
    bool forwardable = false;
    int64_t tensorBytes = 0;    //!< producer output volume
    double savedEnergyPj = 0.0; //!< DRAM round trip avoided (net of
                                //!< the extra on-chip/ring traffic)
};

/** Whole-model forwarding report. */
struct ForwardingReport
{
    std::vector<ForwardingBoundary> boundaries;
    double baselineEnergyPj = 0.0;  //!< post-design energy, no fusion
    double forwardedEnergyPj = 0.0; //!< with forwardable boundaries

    /** Fraction of energy saved by forwarding. */
    double savings() const
    {
        return baselineEnergyPj > 0.0
                   ? 1.0 - forwardedEnergyPj / baselineEnergyPj
                   : 0.0;
    }

    /** Count of forwardable boundaries. */
    int forwardedCount() const;
};

/**
 * Analyse inter-layer forwarding for @p report (a finished
 * post-design run of a *sequential* model — each layer consumes its
 * predecessor's output).  Models with residual branches should pass
 * sequential = false for the affected boundaries via the layer-name
 * check; the zoo's VGG/DarkNet/AlexNet tables are sequential.
 */
ForwardingReport analyzeForwarding(const Model &model,
                                   const PostDesignReport &report,
                                   const TechnologyModel &tech =
                                       defaultTech());

} // namespace nnbaton

#endif // NNBATON_BATON_FORWARDING_HPP
