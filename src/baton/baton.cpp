#include "baton/baton.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace nnbaton {

std::string
PostDesignReport::toString() const
{
    std::ostringstream ss;
    ss << "Post-design mapping for " << modelName << " on "
       << config.toString() << "\n";
    TextTable t({"Layer", "Spatial", "Pattern", "Chiplet tile", "Core",
                 "Orders", "Energy (mJ)", "Cycles", "Util"});
    for (size_t i = 0; i < mappings.size(); ++i) {
        const MappingChoice &c = mappings[i];
        const Mapping &m = c.mapping;
        t.newRow()
            .add(cost.layers[i].layerName)
            .add(m.spatialLabel())
            .add(m.pkgSplit.toString() + "/" + m.chipSplit.toString())
            .add(strprintf("%dx%dx%d", m.chipletTile.ho, m.chipletTile.wo,
                           m.chipletTile.co))
            .add(strprintf("%dx%d", m.hoC, m.woC))
            .add(std::string(nnbaton::toString(m.pkgOrder)) + "/" +
                 nnbaton::toString(m.chipOrder))
            .add(c.energy.total() * 1e-9, 4)
            .add(static_cast<int64_t>(c.runtime.cycles))
            .add(c.runtime.utilization, 3);
    }
    t.print(ss);
    ss << strprintf("model total: %.4f mJ, %.3f ms\n", cost.energyMj(),
                    cost.runtimeMs(clockGhz));
    return ss.str();
}

PostDesignReport
PostDesignFlow::run(const Model &model, MappingCache *cache) const
{
    ModelMappingResult mapped =
        mapModel(model, cfg_, tech_, effort_, objective_, search_,
                 cache);
    if (!mapped.feasible) {
        warn("post-design: %s has layers with no legal mapping on %s",
             model.name().c_str(), cfg_.computeId().c_str());
    }
    PostDesignReport report;
    report.modelName = model.name();
    report.config = cfg_;
    report.cost = std::move(mapped.cost);
    report.mappings = std::move(mapped.choices);
    report.stats = mapped.stats;
    report.feasible = mapped.feasible;
    report.clockGhz = tech_.frequencyGhz;
    return report;
}

std::optional<MappingChoice>
PostDesignFlow::runLayer(const ConvLayer &layer) const
{
    return searchLayer(layer, cfg_, tech_, effort_, objective_,
                       search_);
}

std::string
PreDesignReport::toString() const
{
    std::ostringstream ss;
    ss << strprintf(
        "Pre-design sweep: %lld combos, %lld valid, %lld over area, "
        "%lld infeasible\n",
        static_cast<long long>(sweep.swept),
        static_cast<long long>(sweep.points.size()),
        static_cast<long long>(sweep.areaRejected),
        static_cast<long long>(sweep.infeasible));
    ss << strprintf(
        "mapping search: %lld candidates evaluated, %lld pruned, "
        "%lld cache hits / %lld misses, %.2f s\n",
        static_cast<long long>(sweep.search.evaluated),
        static_cast<long long>(sweep.search.pruned),
        static_cast<long long>(sweep.search.cacheHits),
        static_cast<long long>(sweep.search.cacheMisses),
        sweep.elapsedSeconds);
    if (sweep.resumed > 0) {
        ss << strprintf("resumed: %lld points restored from checkpoint\n",
                        static_cast<long long>(sweep.resumed));
    }
    if (!sweep.poisoned.empty()) {
        ss << strprintf("poisoned: %lld design point(s) quarantined\n",
                        static_cast<long long>(sweep.poisoned.size()));
        for (const PoisonedPoint &p : sweep.poisoned) {
            ss << strprintf("  [%lld] %d-%d-%d-%d: %s\n",
                            static_cast<long long>(p.sweepIndex),
                            p.compute.chiplets, p.compute.cores,
                            p.compute.lanes, p.compute.vectorSize,
                            p.error.c_str());
        }
    }
    if (!sweep.complete) {
        ss << strprintf(
            "PARTIAL result: %lld of %lld points skipped "
            "(cancelled or past deadline)\n",
            static_cast<long long>(sweep.skipped),
            static_cast<long long>(sweep.swept));
    }
    if (recommended) {
        ss << "recommended (min EDP): " << recommended->toString()
           << "\n";
    } else {
        ss << "no valid design found\n";
    }
    return ss.str();
}

PreDesignReport
PreDesignFlow::run(const Model &model) const
{
    PreDesignReport report;
    report.sweep = explore(model, options_, tech_);
    if (auto best = report.sweep.bestEdp())
        report.recommended = report.sweep.points[*best];
    return report;
}

ComparisonReport
compareWithSimba(const Model &model, const AcceleratorConfig &cfg,
                 const TechnologyModel &tech)
{
    ComparisonReport report;
    report.modelName = model.name();
    report.batonEnergy =
        mapModel(model, cfg, tech, SearchEffort::Exhaustive,
                 Objective::MinEnergy)
            .cost.energy;
    report.simbaEnergy = simbaModelCost(model, cfg, tech).energy;
    return report;
}

} // namespace nnbaton
