/**
 * @file
 * NN-Baton public facade: the pre-design and post-design flows of
 * paper figure 9.
 *
 * - PostDesignFlow: given a fixed hardware configuration, produce the
 *   per-layer mapping strategy (spatial partition dimension and
 *   pattern, temporal loop order and counts) plus energy/runtime
 *   reports usable by a hardware compiler.
 * - PreDesignFlow: given MAC-count and area budgets, sweep the design
 *   space and recommend the chiplet granularity and the computation /
 *   memory allocation.
 *
 * Quickstart:
 * @code
 *   using namespace nnbaton;
 *   Model model = makeResNet50(224);
 *   PostDesignFlow post(caseStudyConfig());
 *   PostDesignReport report = post.run(model);
 *   std::cout << report.toString();
 * @endcode
 */

#ifndef NNBATON_BATON_BATON_HPP
#define NNBATON_BATON_BATON_HPP

#include <string>
#include <vector>

#include "arch/area.hpp"
#include "dse/explorer.hpp"
#include "mapper/search.hpp"
#include "nn/model.hpp"
#include "simba/simba.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** Post-design flow output for one model. */
struct PostDesignReport
{
    std::string modelName;
    AcceleratorConfig config;
    ModelCost cost;
    std::vector<MappingChoice> mappings; //!< per layer, model order
    SearchStats stats;   //!< work counters for this run (not exported)
    bool feasible = true;
    double clockGhz = 0.5; //!< core clock used for runtime reporting,
                           //!< taken from the TechnologyModel

    /** Multi-line human-readable mapping strategy table. */
    std::string toString() const;
};

/** The post-design flow: workload orchestration on fixed hardware. */
class PostDesignFlow
{
  public:
    explicit PostDesignFlow(AcceleratorConfig cfg,
                            const TechnologyModel &tech = defaultTech(),
                            SearchEffort effort = SearchEffort::Exhaustive,
                            Objective objective = Objective::MinEnergy,
                            int threads = 1)
        : cfg_(std::move(cfg)), tech_(tech), effort_(effort),
          objective_(objective)
    {
        search_.threads = threads;
        cfg_.validate();
    }

    /** Full execution-options variant (threads, pruning, metrics). */
    PostDesignFlow(AcceleratorConfig cfg, const TechnologyModel &tech,
                   SearchEffort effort, Objective objective,
                   const SearchOptions &search)
        : cfg_(std::move(cfg)), tech_(tech), effort_(effort),
          objective_(objective), search_(search)
    {
        cfg_.validate();
    }

    /**
     * Map every layer of @p model and report.  When @p cache is
     * non-null the per-layer memoization uses that shared (thread-
     * safe, tech-keyed) cache, so a long-lived caller — the serving
     * daemon — reuses search results across runs; results are
     * identical either way.
     */
    PostDesignReport run(const Model &model,
                         MappingCache *cache = nullptr) const;

    /** Map a single layer. */
    std::optional<MappingChoice> runLayer(const ConvLayer &layer) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    AcceleratorConfig cfg_;
    const TechnologyModel &tech_;
    SearchEffort effort_;
    Objective objective_;
    SearchOptions search_; //!< execution options; results identical
                           //!< at any thread count
};

/** Pre-design flow output. */
struct PreDesignReport
{
    DseResult sweep;
    std::optional<DesignPoint> recommended; //!< min-EDP valid design

    /** Human-readable recommendation plus sweep statistics. */
    std::string toString() const;
};

/** The pre-design flow: chiplet-granularity exploration. */
class PreDesignFlow
{
  public:
    explicit PreDesignFlow(DseOptions options,
                           const TechnologyModel &tech = defaultTech())
        : options_(options), tech_(tech)
    {
    }

    /** Sweep the space for @p model and recommend a design. */
    PreDesignReport run(const Model &model) const;

    const DseOptions &options() const { return options_; }

  private:
    DseOptions options_;
    const TechnologyModel &tech_;
};

/** Simba-vs-NN-Baton comparison for one model (figure 13). */
struct ComparisonReport
{
    std::string modelName;
    EnergyBreakdown batonEnergy;
    EnergyBreakdown simbaEnergy;

    /** 1 - baton/simba, the paper's headline savings metric. */
    double savings() const
    {
        return 1.0 - batonEnergy.total() / simbaEnergy.total();
    }
};

/** Run both tools on the same configuration and compare. */
ComparisonReport compareWithSimba(const Model &model,
                                  const AcceleratorConfig &cfg,
                                  const TechnologyModel &tech =
                                      defaultTech());

} // namespace nnbaton

#endif // NNBATON_BATON_BATON_HPP
