/**
 * @file
 * Machine-readable export of the NN-Baton flows (paper section IV-D:
 * "The reported information can be potentially used for the
 * optimization of the hardware compiler").
 *
 * The post-design JSON carries, per layer, the spatial primitives
 * (partition dimension + pattern), the temporal primitives (loop
 * orders + tile shapes, i.e. the loop counts), and the evaluated
 * energy breakdown and runtime.  The pre-design JSON carries every
 * valid design point of a sweep for external plotting (figure 15
 * style scatter data).
 */

#ifndef NNBATON_BATON_EXPORT_HPP
#define NNBATON_BATON_EXPORT_HPP

#include <ostream>

#include "baton/baton.hpp"

namespace nnbaton {

/**
 * Export shaping.  The default carries the observability block
 * (profile + metrics snapshot) and, for sweeps, wall-clock and
 * cache-work counters.  `lean()` drops everything run-dependent so
 * the bytes are a pure function of the inputs — the serving daemon
 * emits lean exports, which is what makes a served response
 * bit-identical to the equivalent one-shot CLI invocation
 * (`--no-obs`) regardless of cache warmth or timing.
 */
struct ExportOptions
{
    bool observability = true; //!< profile + metrics snapshot block
    bool runCounters = true;   //!< pre: elapsedSeconds + search block

    static ExportOptions lean()
    {
        ExportOptions o;
        o.observability = false;
        o.runCounters = false;
        return o;
    }
};

/** Write a post-design report (per-layer mapping strategy) as JSON. */
void exportPostDesign(const PostDesignReport &report, std::ostream &os,
                      const ExportOptions &options = {});

/** Write a pre-design sweep (all valid design points) as JSON. */
void exportPreDesign(const PreDesignReport &report, std::ostream &os,
                     const ExportOptions &options = {});

/** Write one mapping as JSON (the compiler-facing record). */
void exportMapping(const Mapping &mapping, std::ostream &os);

} // namespace nnbaton

#endif // NNBATON_BATON_EXPORT_HPP
