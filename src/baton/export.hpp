/**
 * @file
 * Machine-readable export of the NN-Baton flows (paper section IV-D:
 * "The reported information can be potentially used for the
 * optimization of the hardware compiler").
 *
 * The post-design JSON carries, per layer, the spatial primitives
 * (partition dimension + pattern), the temporal primitives (loop
 * orders + tile shapes, i.e. the loop counts), and the evaluated
 * energy breakdown and runtime.  The pre-design JSON carries every
 * valid design point of a sweep for external plotting (figure 15
 * style scatter data).
 */

#ifndef NNBATON_BATON_EXPORT_HPP
#define NNBATON_BATON_EXPORT_HPP

#include <ostream>

#include "baton/baton.hpp"

namespace nnbaton {

/** Write a post-design report (per-layer mapping strategy) as JSON. */
void exportPostDesign(const PostDesignReport &report, std::ostream &os);

/** Write a pre-design sweep (all valid design points) as JSON. */
void exportPreDesign(const PreDesignReport &report, std::ostream &os);

/** Write one mapping as JSON (the compiler-facing record). */
void exportMapping(const Mapping &mapping, std::ostream &os);

} // namespace nnbaton

#endif // NNBATON_BATON_EXPORT_HPP
