/**
 * @file
 * Cost records aggregating energy and runtime per layer and per model.
 */

#ifndef NNBATON_COST_LEDGER_HPP
#define NNBATON_COST_LEDGER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cost/energy.hpp"

namespace nnbaton {

/** Cost of one layer under one mapping. */
struct LayerCost
{
    std::string layerName;
    EnergyBreakdown energy; //!< pJ
    int64_t cycles = 0;     //!< runtime at the core clock
    double utilization = 0.0; //!< effective MAC utilisation

    /** Energy-delay product in pJ * cycles. */
    double edp() const { return energy.total() * cycles; }
};

/** Aggregated cost of a whole model. */
struct ModelCost
{
    std::string modelName;
    EnergyBreakdown energy; //!< pJ summed over layers
    int64_t cycles = 0;     //!< cycles summed over layers
    std::vector<LayerCost> layers;

    double edp() const { return energy.total() * cycles; }

    /** Add a layer's cost to the aggregate. */
    void add(LayerCost cost);

    /** Runtime in milliseconds at @p frequency_ghz. */
    double runtimeMs(double frequency_ghz) const
    {
        return static_cast<double>(cycles) / frequency_ghz * 1e-6;
    }

    /** Total energy in millijoules. */
    double energyMj() const { return energy.total() * 1e-9; }
};

} // namespace nnbaton

#endif // NNBATON_COST_LEDGER_HPP
