/**
 * @file
 * Energy model: converts C3P access counts into picojoules using the
 * technology model (paper table I and figure 10 fits).
 */

#ifndef NNBATON_COST_ENERGY_HPP
#define NNBATON_COST_ENERGY_HPP

#include <string>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** Per-component energy for one layer (picojoules). */
struct EnergyBreakdown
{
    double dram = 0.0;
    double d2d = 0.0;
    double noc = 0.0; //!< on-chip NoC hops (Simba psum traffic)
    double al2 = 0.0;
    double al1 = 0.0;
    double wl1 = 0.0;
    double ol1 = 0.0;
    double ol2 = 0.0;
    double mac = 0.0;
    double vector = 0.0; //!< post-MAC vector-ALU work (softmax)

    double total() const
    {
        return dram + d2d + noc + al2 + al1 + wl1 + ol1 + ol2 + mac +
               vector;
    }

    /** Sum of the SRAM levels (A-L2 + O-L2 + A-L1 + W-L1). */
    double sram() const { return al2 + al1 + wl1 + ol2; }

    EnergyBreakdown &operator+=(const EnergyBreakdown &other);
    EnergyBreakdown operator*(double scale) const;

    /** One line, mJ units. */
    std::string toString() const;
};

/**
 * Energy for @p counts on configuration @p cfg.
 *
 * SRAM access energies follow the figure 10 linear size fit evaluated
 * at each buffer's configured macro size; W-L1 uses its base (single
 * core) macro size even when pooled, since pooling merges macros
 * rather than enlarging them.
 */
EnergyBreakdown computeEnergy(const AccessCounts &counts,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech);

} // namespace nnbaton

#endif // NNBATON_COST_ENERGY_HPP
