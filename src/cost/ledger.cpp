#include "cost/ledger.hpp"

namespace nnbaton {

void
ModelCost::add(LayerCost cost)
{
    energy += cost.energy;
    cycles += cost.cycles;
    layers.push_back(std::move(cost));
}

} // namespace nnbaton
