#include "cost/energy.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nnbaton {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    dram += other.dram;
    d2d += other.d2d;
    noc += other.noc;
    al2 += other.al2;
    al1 += other.al1;
    wl1 += other.wl1;
    ol1 += other.ol1;
    ol2 += other.ol2;
    mac += other.mac;
    vector += other.vector;
    return *this;
}

EnergyBreakdown
EnergyBreakdown::operator*(double scale) const
{
    EnergyBreakdown e = *this;
    e.dram *= scale;
    e.d2d *= scale;
    e.noc *= scale;
    e.al2 *= scale;
    e.al1 *= scale;
    e.wl1 *= scale;
    e.ol1 *= scale;
    e.ol2 *= scale;
    e.mac *= scale;
    e.vector *= scale;
    return e;
}

std::string
EnergyBreakdown::toString() const
{
    const double mj = 1e-9; // pJ -> mJ
    return strprintf(
        "total %.4f mJ (dram %.4f, d2d %.4f, noc %.4f, al2 %.4f, "
        "al1 %.4f, wl1 %.4f, ol1 %.4f, ol2 %.4f, mac %.4f, vec %.4f)",
        total() * mj, dram * mj, d2d * mj, noc * mj, al2 * mj, al1 * mj,
        wl1 * mj, ol1 * mj, ol2 * mj, mac * mj, vector * mj);
}

EnergyBreakdown
computeEnergy(const AccessCounts &counts, const AcceleratorConfig &cfg,
              const TechnologyModel &tech)
{
    EnergyBreakdown e;
    e.dram = counts.dramBits() * tech.dramEnergyPerBit;
    e.d2d = counts.d2dBits * tech.d2dEnergyPerBit;
    e.noc = counts.nocBits * tech.nocEnergyPerBit;
    e.al2 = (counts.al2ReadBits + counts.al2WriteBits) *
            tech.sramEnergyPerBit(cfg.chiplet.al2Bytes);
    e.al1 = (counts.al1ReadBits + counts.al1WriteBits) *
            tech.sramEnergyPerBit(cfg.core.al1Bytes);
    e.wl1 = (counts.wl1ReadBits + counts.wl1WriteBits) *
            tech.sramEnergyPerBit(cfg.core.wl1Bytes);
    e.ol1 = (counts.ol1RmwBits + counts.ol1ReadBits) *
            tech.rfEnergyPerBitRmw;
    e.ol2 = (counts.ol2ReadBits + counts.ol2WriteBits) *
            tech.sramEnergyPerBit(std::max<int64_t>(counts.ol2Bytes, 1024));
    e.mac = counts.macOps * tech.macEnergyPerOp;
    e.vector = counts.vectorOps * tech.vectorOpEnergyPerOp;
    return e;
}

} // namespace nnbaton
