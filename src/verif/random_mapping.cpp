#include "verif/random_mapping.hpp"

#include <algorithm>
#include <vector>

#include "common/util.hpp"
#include "dataflow/partition.hpp"

namespace nnbaton {

namespace {

int
uniform(std::mt19937 &gen, int lo, int hi)
{
    if (hi <= lo)
        return lo;
    return std::uniform_int_distribution<int>(lo, hi)(gen);
}

template <typename T>
const T &
pickOne(std::mt19937 &gen, const std::vector<T> &values)
{
    return values[static_cast<size_t>(
        uniform(gen, 0, static_cast<int>(values.size()) - 1))];
}

/** One random draw; may be illegal — the caller retries. */
Mapping
drawMapping(std::mt19937 &gen, const ConvLayer &layer,
            const AcceleratorConfig &cfg)
{
    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;
    Mapping m;

    m.pkgSpatial = uniform(gen, 0, 1) ? PackagePartition::Plane
                                      : PackagePartition::Channel;
    if (m.pkgSpatial == PackagePartition::Plane) {
        const auto splits = enumerateSplits(np, layer.ho, layer.wo);
        if (splits.empty())
            m.pkgSpatial = PackagePartition::Channel;
        else
            m.pkgSplit = pickOne(gen, splits);
    }

    switch (uniform(gen, 0, 2)) {
      case 0:
        m.chipSpatial = ChipletPartition::Channel;
        m.chipChannelWays = nc;
        m.chipSplit = {1, 1};
        break;
      case 1: {
        m.chipSpatial = ChipletPartition::Plane;
        m.chipChannelWays = 1;
        const auto pairs = factorPairs(nc);
        const auto &fp = pickOne(gen, pairs);
        m.chipSplit = {fp.first, fp.second};
        break;
      }
      default: {
        std::vector<std::pair<int, int>> hybrid;
        for (const auto &[cw, pw] : factorPairs(nc)) {
            if (cw >= 2 && pw >= 2)
                hybrid.push_back({cw, pw});
        }
        if (hybrid.empty()) {
            m.chipSpatial = ChipletPartition::Channel;
            m.chipChannelWays = nc;
            m.chipSplit = {1, 1};
            break;
        }
        m.chipSpatial = ChipletPartition::Hybrid;
        const auto &ways = pickOne(gen, hybrid);
        m.chipChannelWays = ways.first;
        const auto planes = factorPairs(ways.second);
        const auto &pp = pickOne(gen, planes);
        m.chipSplit = {pp.first, pp.second};
        break;
      }
    }

    // Macro extents the chiplet tile is drawn from (mirrors the
    // package-spatial carve; deriveShapes clamps, checkMapping
    // rejects uncoverable draws).
    const int macro_ho =
        m.pkgSpatial == PackagePartition::Plane
            ? static_cast<int>(ceilDiv(layer.ho, m.pkgSplit.fh))
            : layer.ho;
    const int macro_wo =
        m.pkgSpatial == PackagePartition::Plane
            ? static_cast<int>(ceilDiv(layer.wo, m.pkgSplit.fw))
            : layer.wo;
    const int macro_co =
        m.pkgSpatial == PackagePartition::Channel
            ? static_cast<int>(ceilDiv(layer.co, np))
            : layer.co;

    m.chipletTile.ho = uniform(gen, m.chipSplit.fh, macro_ho);
    m.chipletTile.wo = uniform(gen, m.chipSplit.fw, macro_wo);
    m.chipletTile.co = uniform(gen, m.chipChannelWays, macro_co);
    m.hoC = uniform(
        gen, 1,
        static_cast<int>(ceilDiv(m.chipletTile.ho, m.chipSplit.fh)));
    m.woC = uniform(
        gen, 1,
        static_cast<int>(ceilDiv(m.chipletTile.wo, m.chipSplit.fw)));
    m.pkgOrder = uniform(gen, 0, 1) ? LoopOrder::PlanePriority
                                    : LoopOrder::ChannelPriority;
    m.chipOrder = uniform(gen, 0, 1) ? LoopOrder::PlanePriority
                                     : LoopOrder::ChannelPriority;
    return m;
}

} // namespace

std::optional<Mapping>
randomMapping(std::mt19937 &gen, const ConvLayer &layer,
              const AcceleratorConfig &cfg, int max_attempts)
{
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        const Mapping m = drawMapping(gen, layer, cfg);
        if (checkMapping(layer, cfg, m).empty())
            return m;
    }
    return std::nullopt;
}

std::string
DiffCase::toString() const
{
    return strprintf("layer %s | config %s | mapping %s",
                     layer.toString().c_str(), cfg.toString().c_str(),
                     mapping.toString().c_str());
}

namespace {

/** A structurally sane case that the analytical engine accepts. */
bool
isLegal(const DiffCase &c)
{
    const ConvLayer &l = c.layer;
    if (l.ho < 1 || l.wo < 1 || l.co < 1 || l.ci < 1 || l.kh < 1 ||
        l.kw < 1 || l.stride < 1 || l.groups < 1 || l.batch < 1 ||
        l.postOps < 0)
        return false;
    if (l.ci % l.groups != 0)
        return false;
    if (l.groups > 1 && !l.isDepthwise())
        return false;
    return checkMapping(c.layer, c.cfg, c.mapping).empty();
}

int
halved(int v)
{
    return std::max(1, v / 2);
}

/**
 * The shrink moves, most aggressive first.  Each returns the modified
 * case; moves that produce an identical or illegal case are skipped
 * by the minimisation loop.
 */
std::vector<DiffCase>
shrinkCandidates(const DiffCase &c)
{
    std::vector<DiffCase> out;
    auto push = [&](auto &&mutate) {
        DiffCase next = c;
        mutate(next);
        out.push_back(std::move(next));
    };

    push([](DiffCase &n) {
        // Demote a GEMM to the plain conv it lowers to, so the plane
        // shrink moves below apply (a gemm's toString renders MxNxK,
        // which the plane moves would not change).
        n.layer.op = LayerOp::Conv;
        n.layer.gemmM = n.layer.gemmN = n.layer.gemmK = 0;
    });
    push([](DiffCase &n) { n.layer.batch = halved(n.layer.batch); });
    push([](DiffCase &n) { n.layer.postOps = 0; });
    push([](DiffCase &n) { n.layer.ho = halved(n.layer.ho); });
    push([](DiffCase &n) { n.layer.wo = halved(n.layer.wo); });
    push([](DiffCase &n) {
        // Depthwise layers keep co == ci == groups.
        n.layer.co = halved(n.layer.co);
        if (n.layer.isDepthwise() || n.layer.groups > 1) {
            n.layer.ci = n.layer.co;
            n.layer.groups = n.layer.co;
        }
    });
    push([](DiffCase &n) {
        if (n.layer.groups == 1)
            n.layer.ci = halved(n.layer.ci);
    });
    push([](DiffCase &n) {
        n.layer.kh = 1;
        n.layer.kw = 1;
        n.layer.stride = 1;
    });
    push([](DiffCase &n) { n.layer.kh = 1; });
    push([](DiffCase &n) { n.layer.kw = 1; });
    push([](DiffCase &n) { n.layer.stride = 1; });

    push([](DiffCase &n) {
        n.mapping.chipletTile.ho = halved(n.mapping.chipletTile.ho);
    });
    push([](DiffCase &n) {
        n.mapping.chipletTile.wo = halved(n.mapping.chipletTile.wo);
    });
    push([](DiffCase &n) {
        n.mapping.chipletTile.co = halved(n.mapping.chipletTile.co);
    });
    push([](DiffCase &n) { n.mapping.hoC = halved(n.mapping.hoC); });
    push([](DiffCase &n) { n.mapping.woC = halved(n.mapping.woC); });

    push([](DiffCase &n) {
        n.cfg.core.wl1Bytes = std::max<int64_t>(
            1, n.cfg.core.wl1Bytes / 2);
    });
    push([](DiffCase &n) {
        n.cfg.core.al1Bytes = std::max<int64_t>(
            1, n.cfg.core.al1Bytes / 2);
    });
    push([](DiffCase &n) {
        n.cfg.chiplet.al2Bytes = std::max<int64_t>(
            1, n.cfg.chiplet.al2Bytes / 2);
    });
    return out;
}

bool
sameCase(const DiffCase &a, const DiffCase &b)
{
    return a.toString() == b.toString();
}

} // namespace

DiffCase
minimizeFailure(const DiffCase &failing,
                const std::function<bool(const DiffCase &)> &still_fails)
{
    DiffCase best = failing;
    // Greedy fixpoint: retry the whole move list after every accepted
    // shrink; bounded so a pathological predicate cannot loop forever.
    for (int round = 0; round < 256; ++round) {
        bool improved = false;
        for (const DiffCase &cand : shrinkCandidates(best)) {
            if (sameCase(cand, best) || !isLegal(cand))
                continue;
            if (still_fails(cand)) {
                best = cand;
                improved = true;
                break;
            }
        }
        if (!improved)
            break;
    }
    return best;
}

} // namespace nnbaton
