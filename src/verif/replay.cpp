#include "verif/replay.hpp"

#include <algorithm>
#include <array>

#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/util.hpp"
#include "dataflow/loopnest.hpp"
#include "mapper/search.hpp"
#include "sim/runtime.hpp"

namespace nnbaton {

namespace {

/**
 * Unique tensor coordinates one tile of @p span touches, counted by
 * the reference interpreter on a loop-less nest (capacity large enough
 * to always retain).  No footprint formula involved.
 */
int64_t
countTileCoordinates(Tensor tensor, const TileSpan &span,
                     const ConvLayer &layer)
{
    LoopNest tile;
    tile.atom = span;
    return referenceFills(tile, tensor, layer, INT64_MAX / 2).fillBytes;
}

/**
 * Vector-MAC issue slots needed to compute one core tile, counted by
 * literally stepping the weight-stationary schedule: dense layers
 * sweep the kernel window and the input channels in P-wide steps per
 * output position; depthwise layers pack the kernel window into the
 * vector instead.
 */
int64_t
countIssuesPerTile(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   const WorkShape &core_tile)
{
    int64_t issues = 0;
    for (int h = 0; h < core_tile.ho; ++h) {
        for (int w = 0; w < core_tile.wo; ++w) {
            if (layer.isDepthwise()) {
                int64_t taps =
                    static_cast<int64_t>(layer.kh) * layer.kw;
                while (taps > 0) {
                    ++issues;
                    taps -= cfg.core.vectorSize;
                }
                continue;
            }
            const int p = std::min<int>(cfg.core.vectorSize,
                                        layer.ciPerGroup());
            for (int kh = 0; kh < layer.kh; ++kh) {
                for (int kw = 0; kw < layer.kw; ++kw) {
                    for (int ci = 0; ci < layer.ciPerGroup(); ci += p)
                        ++issues;
                }
            }
        }
    }
    return issues;
}

} // namespace

ReplayResult
replayMapping(const ConvLayer &layer, const AcceleratorConfig &cfg,
              const TechnologyModel &tech, const Mapping &mapping,
              const AnalysisOptions &options)
{
    NNBATON_TRACE_SCOPE("verif.replay");
    static obs::Counter &replays =
        obs::MetricsRegistry::instance().counter("verif.replays");
    replays.add();

    const std::string reason = checkMapping(layer, cfg, mapping);
    if (!reason.empty()) {
        throwStatus(errInvalidArgument(
            "replayMapping(%s, %s): illegal mapping: %s",
            layer.name.c_str(), mapping.toString().c_str(),
            reason.c_str()));
    }

    ReplayResult r;
    r.shapes = deriveShapes(layer, cfg, mapping);
    const MappingShapes &s = r.shapes;
    const NestSet nests = buildNests(layer, cfg, mapping, s);

    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;
    const int cw = mapping.chipChannelWays;
    const int pw = mapping.chipSplit.parts();
    const int p =
        std::min<int>(cfg.core.vectorSize, layer.ciPerGroup());

    // --- measured per-level fills (coordinate enumeration) -----------
    const int64_t wl1_capacity =
        cfg.core.wl1Bytes * (options.wl1Pooling ? pw : 1);
    const ReferenceResult wl1 = referenceFills(
        nests.perCore, Tensor::Weights, layer, wl1_capacity);
    const ReferenceResult al1 = referenceFills(
        nests.perCore, Tensor::Activations, layer, cfg.core.al1Bytes);
    const ReferenceResult al2 =
        referenceFills(nests.perChiplet, Tensor::Activations, layer,
                       cfg.chiplet.al2Bytes);
    r.wl1 = {wl1.fillBytes, wl1.retainedTiles};
    r.al1 = {al1.fillBytes, al1.retainedTiles};
    r.al2 = {al2.fillBytes, al2.retainedTiles};

    // --- explicit core-tile schedule walk ----------------------------
    // Walk the package-temporal and chiplet-temporal primitives tile
    // by tile in the mapping's priority order; the analytical engine
    // only ever multiplies trip counts.
    auto tripsInOrder = [](LoopOrder order, int th, int tw,
                           int tc) -> std::array<int, 3> {
        if (order == LoopOrder::ChannelPriority)
            return {th, tw, tc};
        return {tc, th, tw};
    };
    const auto pkg = tripsInOrder(mapping.pkgOrder, s.pkgTripsH,
                                  s.pkgTripsW, s.pkgTripsC);
    const auto chip = tripsInOrder(mapping.chipOrder, s.chipTripsH,
                                   s.chipTripsW, s.chipTripsC);
    for (int bt = 0; bt < s.batchTrips; ++bt)
        for (int a = 0; a < pkg[0]; ++a)
            for (int b = 0; b < pkg[1]; ++b)
                for (int c = 0; c < pkg[2]; ++c)
                    for (int d = 0; d < chip[0]; ++d)
                        for (int e = 0; e < chip[1]; ++e)
                            for (int f = 0; f < chip[2]; ++f)
                                ++r.tilesWalked;

    // --- access composition over the measured fills ------------------
    // The tensor the package spatial primitive shares rotates over the
    // ring: one DRAM load plus (N_P - 1) die-to-die forwards.
    AccessCounts &c = r.counts;
    const bool acts_rotate = options.rotationSharing && np > 1 &&
        mapping.pkgSpatial == PackagePartition::Channel;
    const bool weights_rotate = options.rotationSharing && np > 1 &&
        mapping.pkgSpatial == PackagePartition::Plane;

    // Weights: each of the cw weight streams of a chiplet fills its
    // (pooled) W-L1 with the measured fill bytes; without pooling all
    // nc cores fill privately.
    const int64_t w_chip_bits =
        wl1.fillBytes * (options.wl1Pooling ? cw : nc) * 8;
    c.dramReadWeightBits =
        weights_rotate ? w_chip_bits : w_chip_bits * np;
    if (weights_rotate)
        c.d2dBits += w_chip_bits * (np - 1);
    c.wl1WriteBits = w_chip_bits * np;
    // Each walked core tile re-reads its weight coordinates from W-L1
    // once per stream group.
    TileSpan w_tile;
    w_tile.co = s.coreTile.co;
    w_tile.ci = layer.ciPerGroup();
    w_tile.kh = layer.kh;
    w_tile.kw = layer.kw;
    const int64_t w_tile_elems =
        countTileCoordinates(Tensor::Weights, w_tile, layer);
    c.wl1ReadBits = r.tilesWalked * cw * w_tile_elems * 8 * np;

    // Activations: DRAM -> (ring) -> A-L2 -> A-L1 -> PE.
    const int64_t a2_chip_bits = al2.fillBytes * 8;
    c.dramReadActBits = acts_rotate ? a2_chip_bits : a2_chip_bits * np;
    if (acts_rotate)
        c.d2dBits += a2_chip_bits * (np - 1);
    c.al2WriteBits = a2_chip_bits * np;
    c.al2ReadBits =
        al1.fillBytes * (options.al2Multicast ? pw : nc) * 8 * np;
    c.al1WriteBits = al1.fillBytes * nc * 8 * np;

    // PE-side reads and MACs, reconstructed from the issue walk: every
    // vector issue consumes one P-wide activation vector shared by the
    // active lanes.
    const int64_t issues_per_tile =
        countIssuesPerTile(layer, cfg, s.coreTile);
    const int64_t macs = static_cast<int64_t>(layer.batch) * layer.ho *
                         layer.wo * layer.co * layer.ciPerGroup() *
                         layer.kh * layer.kw;
    c.macOps = macs;
    c.al1ReadBits = macs * 8 / std::max(1, s.coreTile.co);

    // Outputs: one 24-bit accumulation per vector-MAC result, one
    // requantisation drain, exactly one externalised output copy.
    const int64_t out_elems = static_cast<int64_t>(layer.batch) *
                              layer.ho * layer.wo * layer.co;
    // Post-MAC vector passes (softmax) touch each output element once
    // per pass; recomputed here from the walked output volume.
    c.vectorOps = out_elems * layer.postOps;
    c.ol1RmwBits = ceilDiv(macs, p) * 24;
    c.ol1ReadBits = out_elems * 24;
    c.ol2WriteBits = out_elems * 8;
    c.ol2ReadBits = out_elems * 8;
    c.dramWriteBits = out_elems * 8;
    c.ol2Bytes = static_cast<int64_t>(s.chipletTile.ho) *
                 s.chipletTile.wo * s.chipletTile.co;

    // --- cycle replay: per-tile max of the pipelined phases ----------
    // Each walked tile overlaps its compute with the next tile's DRAM
    // and ring transfers (double buffering); the first tile pays its
    // load in full.
    const int64_t dram_per_chiplet = ceilDiv(c.dramBits(), np);
    const int64_t dram_per_tile =
        ceilDiv(ceilDiv(dram_per_chiplet, r.tilesWalked),
                tech.dramBitsPerCycle);
    const int64_t ring_per_tile =
        np > 1 ? ceilDiv(ceilDiv(ceilDiv(c.d2dBits, np), r.tilesWalked),
                         tech.d2dBitsPerCycle)
               : 0;
    int64_t now = dram_per_tile; // pipeline fill
    for (int64_t t = 0; t < r.tilesWalked; ++t) {
        r.computeCycles += issues_per_tile;
        now += std::max({issues_per_tile, dram_per_tile, ring_per_tile});
    }
    r.cycles = now;

    r.energy = computeEnergy(c, cfg, tech);
    return r;
}

std::string
DifferentialReport::toString() const
{
    std::string out;
    for (const FieldDiff &d : diffs) {
        out += strprintf("  %-22s analytical %.17g != replay %.17g\n",
                         d.field.c_str(), d.analytical, d.replayed);
    }
    return out;
}

DifferentialReport
diffMapping(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech, const Mapping &mapping,
            const AnalysisOptions &options)
{
    DifferentialReport report;
    report.replay = replayMapping(layer, cfg, tech, mapping, options);
    const MappingChoice choice =
        evaluateMapping(layer, cfg, tech, mapping, options);

    auto check = [&](const char *field, double analytical,
                     double replayed) {
        if (analytical != replayed)
            report.diffs.push_back({field, analytical, replayed});
    };
    const AccessCounts &a = choice.analysis.counts;
    const AccessCounts &r = report.replay.counts;
    check("dramReadActBits", a.dramReadActBits, r.dramReadActBits);
    check("dramReadWeightBits", a.dramReadWeightBits,
          r.dramReadWeightBits);
    check("dramWriteBits", a.dramWriteBits, r.dramWriteBits);
    check("d2dBits", a.d2dBits, r.d2dBits);
    check("nocBits", a.nocBits, r.nocBits);
    check("al2ReadBits", a.al2ReadBits, r.al2ReadBits);
    check("al2WriteBits", a.al2WriteBits, r.al2WriteBits);
    check("al1ReadBits", a.al1ReadBits, r.al1ReadBits);
    check("al1WriteBits", a.al1WriteBits, r.al1WriteBits);
    check("wl1ReadBits", a.wl1ReadBits, r.wl1ReadBits);
    check("wl1WriteBits", a.wl1WriteBits, r.wl1WriteBits);
    check("ol1RmwBits", a.ol1RmwBits, r.ol1RmwBits);
    check("ol1ReadBits", a.ol1ReadBits, r.ol1ReadBits);
    check("ol2ReadBits", a.ol2ReadBits, r.ol2ReadBits);
    check("ol2WriteBits", a.ol2WriteBits, r.ol2WriteBits);
    check("macOps", a.macOps, r.macOps);
    check("vectorOps", a.vectorOps, r.vectorOps);
    check("ol2Bytes", a.ol2Bytes, r.ol2Bytes);

    check("wl1.fillBytes", choice.analysis.wl1.fillBytes,
          report.replay.wl1.fillBytes);
    check("al1.fillBytes", choice.analysis.al1.fillBytes,
          report.replay.al1.fillBytes);
    check("al2.fillBytes", choice.analysis.al2.fillBytes,
          report.replay.al2.fillBytes);
    check("schedule.tiles",
          static_cast<double>(
              choice.analysis.shapes.coreTilesPerChiplet()),
          static_cast<double>(report.replay.tilesWalked));

    check("cycles", static_cast<double>(choice.runtime.cycles),
          static_cast<double>(report.replay.cycles));
    check("computeCycles",
          static_cast<double>(choice.runtime.computeCycles),
          static_cast<double>(report.replay.computeCycles));
    check("energy.total", choice.energy.total(),
          report.replay.energy.total());

    if (!report.ok()) {
        static obs::Counter &mismatches =
            obs::MetricsRegistry::instance().counter(
                "verif.mismatches");
        mismatches.add();
    }
    return report;
}

} // namespace nnbaton
