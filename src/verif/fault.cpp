#include "verif/fault.hpp"

#include <atomic>
#include <mutex>

#include "common/cancel.hpp"
#include "common/status.hpp"

namespace nnbaton {
namespace verif {

namespace {

// armed_ is the fast-path gate: hooks bail on one relaxed load when
// no test has armed a plan.  The mutable countdown state lives behind
// a mutex — fault injection is test-only, so contention is irrelevant.
std::atomic<bool> armed{false};
std::mutex planMutex;
FaultPlan plan;
int64_t searchBlockCountdown = -1;
int64_t completedPoints = 0;

} // namespace

void
armFaultPlan(const FaultPlan &p)
{
    std::lock_guard<std::mutex> lock(planMutex);
    plan = p;
    searchBlockCountdown = p.failAtSearchBlock;
    completedPoints = 0;
    armed.store(true, std::memory_order_release);
}

void
disarmFaultPlan()
{
    std::lock_guard<std::mutex> lock(planMutex);
    plan = FaultPlan{};
    searchBlockCountdown = -1;
    completedPoints = 0;
    armed.store(false, std::memory_order_release);
}

bool
faultPlanArmed()
{
    return armed.load(std::memory_order_relaxed);
}

void
injectPointFault(int64_t index)
{
    if (!faultPlanArmed())
        return;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(planMutex);
        fire = plan.failAtPoint >= 0 && index == plan.failAtPoint;
    }
    if (fire) {
        throwStatus(errInternal(
            "injected fault at design point %lld",
            static_cast<long long>(index)));
    }
}

void
injectSearchBlockFault()
{
    if (!faultPlanArmed())
        return;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(planMutex);
        if (searchBlockCountdown >= 0 && searchBlockCountdown-- == 0)
            fire = true;
    }
    if (fire)
        throwStatus(errInternal("injected fault inside mapping search"));
}

bool
injectCheckpointWriteFailure()
{
    if (!faultPlanArmed())
        return false;
    std::lock_guard<std::mutex> lock(planMutex);
    if (!plan.failNextCheckpointWrite)
        return false;
    plan.failNextCheckpointWrite = false;
    return true;
}

void
notifyPointCompleted(CancelToken *cancel)
{
    if (!faultPlanArmed() || cancel == nullptr)
        return;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(planMutex);
        if (plan.cancelAfterPoints >= 0 &&
            ++completedPoints == plan.cancelAfterPoints) {
            fire = true;
        }
    }
    if (fire)
        cancel->requestCancel();
}

TransportFault
injectTransportFault(int64_t unitId, int64_t *stallMs)
{
    if (!faultPlanArmed() || unitId < 0)
        return TransportFault::None;
    std::lock_guard<std::mutex> lock(planMutex);
    if (plan.killWorkerAtUnit == unitId) {
        plan.killWorkerAtUnit = -1;
        return TransportFault::KillWorker;
    }
    if (plan.dropConnAtUnit == unitId) {
        plan.dropConnAtUnit = -1;
        return TransportFault::DropConnection;
    }
    if (plan.corruptFrameAtUnit == unitId) {
        plan.corruptFrameAtUnit = -1;
        return TransportFault::CorruptFrame;
    }
    if (plan.stallAtUnit == unitId) {
        plan.stallAtUnit = -1;
        if (stallMs)
            *stallMs = plan.stallUnitMs;
        return TransportFault::Stall;
    }
    return TransportFault::None;
}

} // namespace verif
} // namespace nnbaton
