/**
 * @file
 * Randomised legal-mapping generation and failing-case minimisation
 * for the differential verifier.
 *
 * randomMapping() draws package/chiplet spatial primitives, tile
 * shapes and loop orders at random and retries until checkMapping()
 * accepts, giving the fuzz suite coverage of mapping corners the
 * candidate enumerator never emits (non-divisible tiles, skewed
 * splits, mixed loop orders).
 *
 * minimizeFailure() greedily shrinks a failing (layer, config,
 * mapping) triple — halving layer extents, collapsing kernels and
 * strides, shrinking tiles and buffer capacities — while a caller
 * predicate keeps reporting failure, so a differential mismatch is
 * reported as a minimal loop nest instead of a full-size layer.
 */

#ifndef NNBATON_VERIF_RANDOM_MAPPING_HPP
#define NNBATON_VERIF_RANDOM_MAPPING_HPP

#include <functional>
#include <optional>
#include <random>
#include <string>

#include "arch/config.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/**
 * Draw a random mapping that passes checkMapping() for (layer, cfg).
 * Returns std::nullopt if no legal mapping was found within
 * @p max_attempts draws (tiny layers on large packages can make the
 * space empty).  Deterministic for a given generator state.
 */
std::optional<Mapping> randomMapping(std::mt19937 &gen,
                                     const ConvLayer &layer,
                                     const AcceleratorConfig &cfg,
                                     int max_attempts = 64);

/** A self-contained differential test case. */
struct DiffCase
{
    ConvLayer layer;
    AcceleratorConfig cfg;
    Mapping mapping;

    /** Reproduction one-liner: layer, config and mapping. */
    std::string toString() const;
};

/**
 * Greedily shrink @p failing while @p still_fails holds.  Every
 * candidate shrink is validated with checkMapping() before the
 * predicate runs, so the result is always a legal case; the input is
 * returned unchanged when no shrink preserves the failure.
 */
DiffCase minimizeFailure(const DiffCase &failing,
                         const std::function<bool(const DiffCase &)>
                             &still_fails);

} // namespace nnbaton

#endif // NNBATON_VERIF_RANDOM_MAPPING_HPP
