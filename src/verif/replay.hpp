/**
 * @file
 * Full-hierarchy differential verification of the analytical engine.
 *
 * replayMapping() re-executes a complete Mapping across the package /
 * chiplet / core levels for all three tensors: per-level fill traffic
 * is measured by the coordinate-enumerating reference interpreter
 * (verif/interpreter.hpp, input halos included), the core-tile
 * schedule is walked tile by tile, and the access composition, DRAM
 * traffic, cycle count and energy are reconstructed from those
 * measurements with code that shares no closed-form footprint or trip
 * math with c3p/access.cpp or sim/runtime.cpp.  diffMapping() then
 * compares every access-count field, the cycle counts and the energy
 * total against the analytical engine and reports each mismatch.
 *
 * Intended for tests and the `nn-baton post --verify` mode; cost is
 * proportional to the number of touched tensor elements, so replay
 * budgets should prefer small layers (see tools/nn_baton.cpp).
 */

#ifndef NNBATON_VERIF_REPLAY_HPP
#define NNBATON_VERIF_REPLAY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "cost/energy.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"
#include "tech/technology.hpp"
#include "verif/interpreter.hpp"

namespace nnbaton {

/** One buffer level's replayed fill measurement. */
struct LevelReplay
{
    int64_t fillBytes = 0;     //!< bytes filled from the parent level
    int64_t retainedTiles = 0; //!< retained subtrees seen by the walk
};

/** Everything the full-hierarchy replay measures for one mapping. */
struct ReplayResult
{
    AccessCounts counts;  //!< independently composed access counts
    MappingShapes shapes; //!< derived shapes (shared mapping semantics)
    LevelReplay wl1;      //!< per-core W-L1 (pooled capacity)
    LevelReplay al1;      //!< per-core A-L1
    LevelReplay al2;      //!< per-chiplet A-L2

    int64_t tilesWalked = 0;   //!< core tiles counted by the schedule walk
    int64_t cycles = 0;        //!< total cycles (pipeline-fill included)
    int64_t computeCycles = 0; //!< pure compute cycles
    EnergyBreakdown energy;    //!< energy of the replayed counts
};

/**
 * Replay @p mapping end to end.  The mapping must pass checkMapping();
 * throws StatusError otherwise (same contract as analyzeMapping()).
 */
ReplayResult replayMapping(const ConvLayer &layer,
                           const AcceleratorConfig &cfg,
                           const TechnologyModel &tech,
                           const Mapping &mapping,
                           const AnalysisOptions &options = {});

/** One analytical-vs-replay field mismatch. */
struct FieldDiff
{
    std::string field;
    double analytical = 0.0;
    double replayed = 0.0;
};

/** Outcome of one differential comparison. */
struct DifferentialReport
{
    std::vector<FieldDiff> diffs; //!< empty when the engines agree
    ReplayResult replay;

    bool ok() const { return diffs.empty(); }

    /** Multi-line mismatch table (empty string when ok). */
    std::string toString() const;
};

/**
 * Run both engines on (layer, cfg, mapping) and compare every access
 * count, the cycle counts and the energy total bit-for-bit.  Bumps
 * the obs counters verif.replays / verif.mismatches.
 */
DifferentialReport diffMapping(const ConvLayer &layer,
                               const AcceleratorConfig &cfg,
                               const TechnologyModel &tech,
                               const Mapping &mapping,
                               const AnalysisOptions &options = {});

} // namespace nnbaton

#endif // NNBATON_VERIF_REPLAY_HPP
