/**
 * @file
 * Brute-force reference model for the C3P analysis.
 *
 * The interpreter walks a loop nest recursively and, at each subtree,
 * decides at runtime whether the buffer can retain that subtree's
 * tensor tile (the same all-or-nothing retention semantics the paper's
 * C3P methodology encodes).  When a subtree is retained, its fill
 * traffic is measured by *exhaustively enumerating the unique element
 * coordinates* the subtree touches — no closed-form footprint math is
 * shared with the analytical engine, so agreement between the two is a
 * real check of the footprint formulas, halo handling and trip
 * products.
 *
 * Intended for tests on small nests; complexity is the number of
 * touched elements.
 */

#ifndef NNBATON_VERIF_INTERPRETER_HPP
#define NNBATON_VERIF_INTERPRETER_HPP

#include <cstdint>

#include "c3p/footprint.hpp"
#include "dataflow/loopnest.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** Reference result. */
struct ReferenceResult
{
    int64_t fillBytes = 0;     //!< total bytes filled from the parent
    int64_t retainedTiles = 0; //!< number of retained subtrees
};

/**
 * Replay @p nest for @p tensor with a buffer of @p capacity_bytes and
 * measure fill traffic by coordinate enumeration.
 */
ReferenceResult referenceFills(const LoopNest &nest, Tensor tensor,
                               const ConvLayer &layer,
                               int64_t capacity_bytes);

} // namespace nnbaton

#endif // NNBATON_VERIF_INTERPRETER_HPP
