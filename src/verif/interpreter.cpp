#include "verif/interpreter.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/status.hpp"

namespace nnbaton {

namespace {

/** Per-dimension start offset of the current subtree, in atoms' units. */
struct Offsets
{
    int64_t ho = 0;
    int64_t wo = 0;
    int64_t co = 0;
    int64_t ci = 0;
    int64_t kh = 0;
    int64_t kw = 0;
    int64_t b = 0;

    int64_t &at(Dim d)
    {
        switch (d) {
          case Dim::OH:
            return ho;
          case Dim::OW:
            return wo;
          case Dim::OC:
            return co;
          case Dim::IC:
            return ci;
          case Dim::KH:
            return kh;
          case Dim::KW:
            return kw;
          case Dim::B:
            return b;
        }
        panic("bad Dim");
    }
};

/**
 * Dense linearisation of 4D coordinates into one int64 key, with
 * strides derived from the actual per-dimension extents (transformer
 * layers blow far past any fixed per-field width; seq * d_model alone
 * exceeds 16 bits).  Construction fails with InvalidArgument only when
 * the extent product genuinely overflows 64 bits.
 */
struct Linearizer
{
    int64_t e1 = 1, e2 = 1, e3 = 1;
    bool valid = false;

    static StatusOr<Linearizer>
    make(int64_t e0, int64_t e1, int64_t e2, int64_t e3)
    {
        const int64_t cap = INT64_MAX;
        int64_t product = 1;
        for (int64_t e : {e0, e1, e2, e3}) {
            if (e <= 0)
                e = 1;
            if (product > cap / e) {
                return errInvalidArgument(
                    "referenceFills: coordinate extents "
                    "%lld x %lld x %lld x %lld overflow the 64-bit "
                    "linearisation",
                    static_cast<long long>(e0),
                    static_cast<long long>(e1),
                    static_cast<long long>(e2),
                    static_cast<long long>(e3));
            }
            product *= e;
        }
        Linearizer l;
        l.e1 = std::max<int64_t>(e1, 1);
        l.e2 = std::max<int64_t>(e2, 1);
        l.e3 = std::max<int64_t>(e3, 1);
        l.valid = true;
        return l;
    }

    int64_t key(int64_t a, int64_t b, int64_t c, int64_t d) const
    {
        return ((a * e1 + b) * e2 + c) * e3 + d;
    }
};

/**
 * Enumerate the unique element coordinates of @p tensor touched by the
 * tile [offset, offset + span) and insert them into @p seen; returns
 * the number of newly inserted elements (bytes, 8-bit elements).
 */
int64_t
enumerateTile(Tensor tensor, const Offsets &off, const TileSpan &span,
              const ConvLayer &layer, const Linearizer &lin,
              std::unordered_set<int64_t> &seen)
{
    int64_t added = 0;
    auto touch = [&](int64_t a, int64_t b, int64_t c, int64_t d) {
        if (seen.insert(lin.key(a, b, c, d)).second)
            ++added;
    };

    switch (tensor) {
      case Tensor::Weights:
        // Weight coordinates carry no batch index: a retained subtree
        // spanning several samples dedupes them, matching the
        // batch-irrelevance of the analytical footprint.
        for (int64_t co = off.co; co < off.co + span.co; ++co)
            for (int64_t ci = off.ci; ci < off.ci + span.ci; ++ci)
                for (int64_t kh = off.kh; kh < off.kh + span.kh; ++kh)
                    for (int64_t kw = off.kw; kw < off.kw + span.kw;
                         ++kw)
                        touch(co, ci, kh, kw);
        break;
      case Tensor::Activations: {
        const int s = layer.stride;
        const int64_t kh_span = std::min<int64_t>(span.kh, layer.kh);
        const int64_t kw_span = std::min<int64_t>(span.kw, layer.kw);
        const int64_t row0 = off.ho * s + off.kh;
        const int64_t row1 = (off.ho + span.ho - 1) * s + off.kh +
                             kh_span;
        const int64_t col0 = off.wo * s + off.kw;
        const int64_t col1 = (off.wo + span.wo - 1) * s + off.kw +
                             kw_span;
        // Depthwise layers select input channels through the output
        // channel index (one input channel per output channel); dense
        // layers walk the IC span.
        const int64_t ch0 = layer.isDepthwise() ? off.co : off.ci;
        const int64_t chn = layer.isDepthwise()
                                ? std::min<int64_t>(layer.ci, span.co)
                                : span.ci;
        for (int64_t b = off.b; b < off.b + span.b; ++b)
            for (int64_t ch = ch0; ch < ch0 + chn; ++ch)
                for (int64_t r = row0; r < row1; ++r)
                    for (int64_t c = col0; c < col1; ++c)
                        touch(b, ch, r, c);
        break;
      }
      case Tensor::Outputs:
        for (int64_t b = off.b; b < off.b + span.b; ++b)
            for (int64_t co = off.co; co < off.co + span.co; ++co)
                for (int64_t h = off.ho; h < off.ho + span.ho; ++h)
                    for (int64_t w = off.wo; w < off.wo + span.wo; ++w)
                        touch(b, co, h, w);
        break;
    }
    return added;
}

struct Walker
{
    const LoopNest &nest;
    Tensor tensor;
    const ConvLayer &layer;
    Linearizer lin;
    int64_t capacity;
    ReferenceResult result;

    void
    visit(size_t level, Offsets off)
    {
        const TileSpan span = nest.spanBelow(level);
        if (footprintBytes(tensor, span, layer) <= capacity) {
            // Retain this whole subtree: measure its unique touches.
            std::unordered_set<int64_t> seen;
            result.fillBytes +=
                enumerateTile(tensor, off, span, layer, lin, seen);
            result.retainedTiles += 1;
            return;
        }
        if (level == nest.loops.size()) {
            // Even the atom does not fit: every iteration reloads it.
            std::unordered_set<int64_t> seen;
            result.fillBytes +=
                enumerateTile(tensor, off, span, layer, lin, seen);
            result.retainedTiles += 1;
            return;
        }
        const Loop &loop = nest.loops[level];
        const int64_t step = nest.spanBelow(level + 1).at(loop.dim);
        for (int64_t i = 0; i < loop.trips; ++i) {
            Offsets child = off;
            child.at(loop.dim) = off.at(loop.dim) + i * step;
            visit(level + 1, child);
        }
    }
};

/** The per-tensor coordinate extents the dense linearisation packs. */
StatusOr<Linearizer>
makeLinearizer(Tensor tensor, const TileSpan &full, const ConvLayer &layer)
{
    switch (tensor) {
      case Tensor::Weights:
        return Linearizer::make(full.co, full.ci, full.kh, full.kw);
      case Tensor::Activations: {
        // Input rows/cols include the halo of the outermost span.
        const int64_t rows =
            (full.ho - 1) * layer.stride +
            std::min<int64_t>(full.kh, layer.kh);
        const int64_t cols =
            (full.wo - 1) * layer.stride +
            std::min<int64_t>(full.kw, layer.kw);
        // Depthwise layers address channels through the CO index.
        const int64_t channels = std::max(full.ci, full.co);
        return Linearizer::make(full.b, channels, rows, cols);
      }
      case Tensor::Outputs:
        return Linearizer::make(full.b, full.co, full.ho, full.wo);
    }
    panic("bad Tensor");
}

} // namespace

ReferenceResult
referenceFills(const LoopNest &nest, Tensor tensor, const ConvLayer &layer,
               int64_t capacity_bytes)
{
    if (capacity_bytes <= 0) {
        throwStatus(errInvalidArgument(
            "referenceFills: capacity must be positive, got %lld bytes",
            static_cast<long long>(capacity_bytes)));
    }
    // Dense strides are derived from the nest's outermost span, so any
    // extents whose product fits in 64 bits linearise exactly; only a
    // genuine overflow is rejected (with the nest in the message).
    const TileSpan full = nest.spanBelow(0);
    StatusOr<Linearizer> lin = makeLinearizer(tensor, full, layer);
    if (!lin.ok()) {
        throwStatus(errInvalidArgument(
            "%s (nest %s)", lin.status().message().c_str(),
            nest.toString().c_str()));
    }
    Walker w{nest, tensor, layer, lin.value(), capacity_bytes, {}};
    w.visit(0, Offsets{});
    return w.result;
}

} // namespace nnbaton
