#include "verif/interpreter.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/status.hpp"

namespace nnbaton {

namespace {

/** Per-dimension start offset of the current subtree, in atoms' units. */
struct Offsets
{
    int64_t ho = 0;
    int64_t wo = 0;
    int64_t co = 0;
    int64_t ci = 0;
    int64_t kh = 0;
    int64_t kw = 0;

    int64_t &at(Dim d)
    {
        switch (d) {
          case Dim::OH:
            return ho;
          case Dim::OW:
            return wo;
          case Dim::OC:
            return co;
          case Dim::IC:
            return ci;
          case Dim::KH:
            return kh;
          case Dim::KW:
            return kw;
        }
        panic("bad Dim");
    }
};

/**
 * Enumerate the unique element coordinates of @p tensor touched by the
 * tile [offset, offset + span) and insert them into @p seen; returns
 * the number of newly inserted elements (bytes, 8-bit elements).
 */
int64_t
enumerateTile(Tensor tensor, const Offsets &off, const TileSpan &span,
              const ConvLayer &layer, std::unordered_set<int64_t> &seen)
{
    int64_t added = 0;
    auto touch = [&](int64_t a, int64_t b, int64_t c, int64_t d) {
        // Linearise with generous strides; extents in this model are
        // far below 1 << 16.
        const int64_t key =
            ((a * 65536 + b) * 65536 + c) * 65536 + d;
        if (seen.insert(key).second)
            ++added;
    };

    switch (tensor) {
      case Tensor::Weights:
        for (int64_t co = off.co; co < off.co + span.co; ++co)
            for (int64_t ci = off.ci; ci < off.ci + span.ci; ++ci)
                for (int64_t kh = off.kh; kh < off.kh + span.kh; ++kh)
                    for (int64_t kw = off.kw; kw < off.kw + span.kw;
                         ++kw)
                        touch(co, ci, kh, kw);
        break;
      case Tensor::Activations: {
        const int s = layer.stride;
        const int64_t kh_span = std::min<int64_t>(span.kh, layer.kh);
        const int64_t kw_span = std::min<int64_t>(span.kw, layer.kw);
        const int64_t row0 = off.ho * s + off.kh;
        const int64_t row1 = (off.ho + span.ho - 1) * s + off.kh +
                             kh_span;
        const int64_t col0 = off.wo * s + off.kw;
        const int64_t col1 = (off.wo + span.wo - 1) * s + off.kw +
                             kw_span;
        // Depthwise layers select input channels through the output
        // channel index (one input channel per output channel); dense
        // layers walk the IC span.
        const int64_t ch0 = layer.isDepthwise() ? off.co : off.ci;
        const int64_t chn = layer.isDepthwise()
                                ? std::min<int64_t>(layer.ci, span.co)
                                : span.ci;
        for (int64_t ch = ch0; ch < ch0 + chn; ++ch)
            for (int64_t r = row0; r < row1; ++r)
                for (int64_t c = col0; c < col1; ++c)
                    touch(ch, r, c, 0);
        break;
      }
      case Tensor::Outputs:
        for (int64_t co = off.co; co < off.co + span.co; ++co)
            for (int64_t h = off.ho; h < off.ho + span.ho; ++h)
                for (int64_t w = off.wo; w < off.wo + span.wo; ++w)
                    touch(co, h, w, 0);
        break;
    }
    return added;
}

struct Walker
{
    const LoopNest &nest;
    Tensor tensor;
    const ConvLayer &layer;
    int64_t capacity;
    ReferenceResult result;

    void
    visit(size_t level, Offsets off)
    {
        const TileSpan span = nest.spanBelow(level);
        if (footprintBytes(tensor, span, layer) <= capacity) {
            // Retain this whole subtree: measure its unique touches.
            std::unordered_set<int64_t> seen;
            result.fillBytes +=
                enumerateTile(tensor, off, span, layer, seen);
            result.retainedTiles += 1;
            return;
        }
        if (level == nest.loops.size()) {
            // Even the atom does not fit: every iteration reloads it.
            std::unordered_set<int64_t> seen;
            result.fillBytes +=
                enumerateTile(tensor, off, span, layer, seen);
            result.retainedTiles += 1;
            return;
        }
        const Loop &loop = nest.loops[level];
        const int64_t step = nest.spanBelow(level + 1).at(loop.dim);
        for (int64_t i = 0; i < loop.trips; ++i) {
            Offsets child = off;
            child.at(loop.dim) = off.at(loop.dim) + i * step;
            visit(level + 1, child);
        }
    }
};

} // namespace

ReferenceResult
referenceFills(const LoopNest &nest, Tensor tensor, const ConvLayer &layer,
               int64_t capacity_bytes)
{
    if (capacity_bytes <= 0) {
        throwStatus(errInvalidArgument(
            "referenceFills: capacity must be positive, got %lld bytes",
            static_cast<long long>(capacity_bytes)));
    }
    // The coordinate key packs four 16-bit fields; reject nests whose
    // extents (including the input halo) would alias under that
    // linearisation instead of silently under-counting.
    const TileSpan full = nest.spanBelow(0);
    const int64_t bound = 65536;
    const int64_t rows = (full.ho - 1) * layer.stride + full.kh +
                         layer.kh;
    const int64_t cols = (full.wo - 1) * layer.stride + full.kw +
                         layer.kw;
    if (full.ho >= bound || full.wo >= bound || full.co >= bound ||
        full.ci >= bound || full.kh >= bound || full.kw >= bound ||
        rows >= bound || cols >= bound) {
        throwStatus(errInvalidArgument(
            "referenceFills: nest extents exceed the 16-bit "
            "coordinate linearisation (nest %s)",
            nest.toString().c_str()));
    }
    Walker w{nest, tensor, layer, capacity_bytes, {}};
    w.visit(0, Offsets{});
    return w.result;
}

} // namespace nnbaton
