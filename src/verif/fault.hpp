/**
 * @file
 * Test-only fault injection for the resilience machinery.
 *
 * The checkpoint/resume, quarantine and cancellation paths only fire
 * when something goes wrong, so the resilience tests need a way to
 * make things go wrong deterministically.  A FaultPlan armed via
 * armFaultPlan() asks the sweep to fail at a specific design point,
 * fail the next checkpoint write, throw from inside the mapping
 * search, or request cancellation after N completed points (the
 * kill/resume determinism test uses the latter to interrupt a sweep
 * at a seeded-random checkpoint boundary).
 *
 * Production code pays one relaxed atomic load per hook when no plan
 * is armed.  Plans are process-global; tests arm and disarm them
 * around a single sweep and never run armed sweeps concurrently.
 */

#ifndef NNBATON_VERIF_FAULT_HPP
#define NNBATON_VERIF_FAULT_HPP

#include <cstdint>

namespace nnbaton {

class CancelToken;

namespace verif {

/** What to break, and where.  -1 disables the respective fault. */
struct FaultPlan
{
    /** Throw from evaluating the design point with this sweep index. */
    int64_t failAtPoint = -1;

    /** Throw from inside pickBest() at this prune-block poll (a
     *  global countdown across all searches, decremented per poll). */
    int64_t failAtSearchBlock = -1;

    /** Request cancellation on the sweep's token once this many
     *  design points have completed. */
    int64_t cancelAfterPoints = -1;

    /** Make the next checkpoint write fail (cleared once it fires). */
    bool failNextCheckpointWrite = false;

    // Transport faults for the distributed sweep fabric.  Each fires
    // once when a worker receives the sweepUnit with the matching
    // coordinator-assigned unit id, then clears, so the coordinator's
    // retry/re-lease path gets a healthy worker on the next attempt
    // (killWorkerAtUnit is the exception — the worker stays down and
    // the unit must be re-leased elsewhere).

    /** Drop the connection without answering this unit. */
    int64_t dropConnAtUnit = -1;

    /** Stall this unit's response by stallUnitMs before answering
     *  (past the coordinator's I/O timeout = a wedged worker). */
    int64_t stallAtUnit = -1;
    int64_t stallUnitMs = 0;

    /** Answer this unit with a corrupted (non-protocol) frame. */
    int64_t corruptFrameAtUnit = -1;

    /** Kill the worker mid-unit: drop the connection AND stop the
     *  whole server, as a crash would. */
    int64_t killWorkerAtUnit = -1;
};

/** Install @p plan process-wide (overwrites any previous plan). */
void armFaultPlan(const FaultPlan &plan);

/** Remove the armed plan; all hooks become no-ops again. */
void disarmFaultPlan();

/** True while a plan is armed (one relaxed atomic load). */
bool faultPlanArmed();

/**
 * Sweep-engine hooks.  Each is a no-op unless a plan is armed and the
 * corresponding fault matches.
 */

/** Throws StatusError(Internal) when @p index == failAtPoint. */
void injectPointFault(int64_t index);

/** Throws StatusError(Internal) when the armed search-block countdown
 *  reaches zero. */
void injectSearchBlockFault();

/** True when the next checkpoint write should fail; clears the
 *  one-shot flag as it fires. */
bool injectCheckpointWriteFailure();

/** Called after each completed design point; requests cancellation on
 *  @p cancel once cancelAfterPoints points have completed. */
void notifyPointCompleted(CancelToken *cancel);

/** What the transport should do to the sweepUnit with @p unitId. */
enum class TransportFault
{
    None,
    DropConnection, //!< close without answering
    Stall,          //!< sleep stallMs, then answer normally
    CorruptFrame,   //!< answer with a garbage frame
    KillWorker,     //!< drop the connection and stop the server
};

/**
 * Consume the armed transport fault matching @p unitId, if any
 * (one-shot: the matched fault clears as it fires).  For Stall,
 * @p stallMs receives the armed delay.
 */
TransportFault injectTransportFault(int64_t unitId, int64_t *stallMs);

} // namespace verif
} // namespace nnbaton

#endif // NNBATON_VERIF_FAULT_HPP
