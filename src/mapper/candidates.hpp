/**
 * @file
 * Candidate mapping enumeration for the post-design search (paper
 * section V-C: "The mapping analysis engine adopts exhaustive search
 * to evaluate hundreds of cases, including partition patterns with
 * different height-width ratios and loop transformation of various
 * spatial-temporal combinations").
 */

#ifndef NNBATON_MAPPER_CANDIDATES_HPP
#define NNBATON_MAPPER_CANDIDATES_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/config.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** Search effort: exhaustive for case studies, fast for model runs,
 *  sketch for the wide pre-design sweeps. */
enum class SearchEffort
{
    Exhaustive, //!< all spatial patterns, dense tile ladder
    Fast,       //!< near-square patterns, sparse tile ladder
    Sketch,     //!< square-only patterns, endpoints-only ladder
};

/**
 * A batch of enumerated candidates in structure-of-arrays layout: the
 * mappings, their flat-enumeration ordinals and their lane-class flags
 * live in three parallel arrays.  Blocks are reused across refills —
 * clear() keeps the capacity — so a search that expands subtrees one
 * after another pays the candidate-storage allocation once instead of
 * once per subtree (the per-expand vector<Leaf> it replaces).
 * Candidates keep ascending-ordinal (enumeration-neighbour) order,
 * which is what makes the incremental evaluator's delta path hit.
 */
class CandidateBlock
{
  public:
    void clear()
    {
        mappings_.clear();
        ordinals_.clear();
        fullLane_.clear();
    }

    void reserve(size_t n)
    {
        mappings_.reserve(n);
        ordinals_.reserve(n);
        fullLane_.reserve(n);
    }

    size_t size() const { return mappings_.size(); }
    bool empty() const { return mappings_.empty(); }

    void push(const Mapping &m, int64_t ordinal, bool full_lane)
    {
        mappings_.push_back(m);
        ordinals_.push_back(ordinal);
        fullLane_.push_back(full_lane ? 1 : 0);
    }

    const Mapping &mapping(size_t i) const { return mappings_[i]; }
    int64_t ordinal(size_t i) const { return ordinals_[i]; }
    bool fullLane(size_t i) const { return fullLane_[i] != 0; }

    bool anyFullLane() const
    {
        for (uint8_t f : fullLane_) {
            if (f)
                return true;
        }
        return false;
    }

    /** Compact in place to one lane class, preserving order. */
    void keepOnly(bool full_lane);

  private:
    std::vector<Mapping> mappings_;
    std::vector<int64_t> ordinals_;
    std::vector<uint8_t> fullLane_;
};

/**
 * Enumerate legal mapping candidates for @p layer on @p cfg.
 *
 * All six spatial combinations (2 package x 3 chiplet types), all four
 * temporal order pairs, the planar-pattern aspect ratios, and a
 * power-of-two tile ladder are covered.  Candidates that under-fill
 * the MAC lanes (per-core channel span < L) are dropped whenever at
 * least one full-lane candidate exists, mirroring the paper's removal
 * of mismatched (C,C) options for small-channel layers.
 */
std::vector<Mapping> enumerateCandidates(const ConvLayer &layer,
                                         const AcceleratorConfig &cfg,
                                         SearchEffort effort);

/**
 * Enumerate candidates restricted to one (package, chiplet) spatial
 * combination — used by the figure 11 study that compares the six
 * spatial partition strategies with the best temporal choice each.
 */
std::vector<Mapping>
enumerateCandidatesFor(const ConvLayer &layer,
                       const AcceleratorConfig &cfg, SearchEffort effort,
                       PackagePartition pkg, ChipletPartition chip);

class CandidateSpace;

/**
 * enumerateCandidates() in block form: all legal leaves of @p space in
 * ascending ordinal order, reduced to the preferred lane class
 * (full-lane when any exists, the degraded class otherwise).  @p out
 * is cleared and refilled; reusing one block across layers amortises
 * the candidate-storage allocation to zero on the search hot path.
 */
void enumerateCandidatesInto(const CandidateSpace &space,
                             CandidateBlock &out);

/** Convenience overload constructing the space internally. */
void enumerateCandidatesInto(const ConvLayer &layer,
                             const AcceleratorConfig &cfg,
                             SearchEffort effort, CandidateBlock &out);

/**
 * The candidate space as a lazily expanded tree (the generator/cursor
 * behind the branch-and-bound search, docs/search.md).
 *
 * Level 1 fixes a *subtree*: one spatial skeleton (package and
 * chiplet partition primitives with their planar splits and channel
 * ways) plus one (hoC, woC) core-tile plane.  Everything the subtree
 * shares — the per-chiplet macro workload, the tile-ladder bases and
 * rungs — is precomputed so mapper/bound can floor the whole subtree
 * without materialising a single leaf.  Level 2 expands a subtree
 * into *leaves*: the chiplet-tile ladder cross the four temporal
 * order pairs, legality-checked on demand.
 *
 * Every potential leaf — legal or not — owns a unique *ordinal*, its
 * position in the flat enumeration order (subtree-major, then
 * fh → fw → fc → pkgOrder → chipOrder).  enumerateCandidates() emits
 * legal leaves in exactly ascending-ordinal order, so "smallest
 * ordinal wins score ties" reproduces the flat search's first-wins
 * tie-breaking no matter in which order a search visits the tree.
 */
class CandidateSpace
{
  public:
    /** One (spatial skeleton, core-tile plane) subtree. */
    struct Subtree
    {
        // Spatial skeleton.
        PackagePartition pkg = PackagePartition::Channel;
        PlanarSplit pkgSplit;
        ChipletPartition chip = ChipletPartition::Channel;
        int cw = 1;
        PlanarSplit chipSplit;
        // Core-tile plane.
        int hoC = 1, woC = 1;
        // Per-chiplet macro workload under the package split.
        WorkShape macro;
        // Chiplet-tile ladder: tile = min(base * rung, macro).
        int baseH = 1, baseW = 1, baseC = 1;
        std::vector<int> ladderH, ladderW, ladderC;
        // Position of the subtree's first (grid) leaf in the flat
        // enumeration order.
        int64_t firstOrdinal = 0;

        /** Grid size (legal and illegal leaves alike). */
        int64_t gridLeaves() const
        {
            return static_cast<int64_t>(ladderH.size()) *
                   static_cast<int64_t>(ladderW.size()) *
                   static_cast<int64_t>(ladderC.size()) * 4;
        }
    };

    /** One legality-checked candidate. */
    struct Leaf
    {
        Mapping mapping;
        int64_t ordinal = 0; //!< flat enumeration position (unique)
        bool fullLane = false; //!< per-core CO span fills the lanes
    };

    CandidateSpace(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   SearchEffort effort);
    CandidateSpace(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   SearchEffort effort, PackagePartition pkg,
                   ChipletPartition chip);

    size_t size() const { return subtrees_.size(); }
    const Subtree &subtree(size_t i) const { return subtrees_[i]; }

    /** Total grid leaves over all subtrees. */
    int64_t gridLeaves() const { return gridLeaves_; }

    /** Expand subtree @p i into its legal leaves, ascending ordinal.
     *  Both lane classes are returned; callers filter. */
    std::vector<Leaf> expand(size_t i) const;

    /** expand() into a caller-owned block: @p out is cleared and
     *  refilled in place (capacity retained across calls). */
    void expandInto(size_t i, CandidateBlock &out) const;

    /** Materialise one grid coordinate of subtree @p i (indices into
     *  the ladders, @p order in [0,4) as pkgOrder*2 + chipOrder).
     *  std::nullopt when the mapping is illegal. */
    std::optional<Leaf> makeLeaf(size_t i, size_t ih, size_t iw,
                                 size_t ic, size_t order) const;

    /** Find @p mapping in the grid (warm-start membership test):
     *  the leaf with identical mapping fields, or std::nullopt when
     *  this space never enumerates it. */
    std::optional<Leaf> locate(const Mapping &mapping) const;

  private:
    const ConvLayer layer_;
    const AcceleratorConfig cfg_;
    std::vector<Subtree> subtrees_;
    int64_t gridLeaves_ = 0;
};

} // namespace nnbaton

#endif // NNBATON_MAPPER_CANDIDATES_HPP
