/**
 * @file
 * Candidate mapping enumeration for the post-design search (paper
 * section V-C: "The mapping analysis engine adopts exhaustive search
 * to evaluate hundreds of cases, including partition patterns with
 * different height-width ratios and loop transformation of various
 * spatial-temporal combinations").
 */

#ifndef NNBATON_MAPPER_CANDIDATES_HPP
#define NNBATON_MAPPER_CANDIDATES_HPP

#include <vector>

#include "arch/config.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** Search effort: exhaustive for case studies, fast for model runs,
 *  sketch for the wide pre-design sweeps. */
enum class SearchEffort
{
    Exhaustive, //!< all spatial patterns, dense tile ladder
    Fast,       //!< near-square patterns, sparse tile ladder
    Sketch,     //!< square-only patterns, endpoints-only ladder
};

/**
 * Enumerate legal mapping candidates for @p layer on @p cfg.
 *
 * All six spatial combinations (2 package x 3 chiplet types), all four
 * temporal order pairs, the planar-pattern aspect ratios, and a
 * power-of-two tile ladder are covered.  Candidates that under-fill
 * the MAC lanes (per-core channel span < L) are dropped whenever at
 * least one full-lane candidate exists, mirroring the paper's removal
 * of mismatched (C,C) options for small-channel layers.
 */
std::vector<Mapping> enumerateCandidates(const ConvLayer &layer,
                                         const AcceleratorConfig &cfg,
                                         SearchEffort effort);

/**
 * Enumerate candidates restricted to one (package, chiplet) spatial
 * combination — used by the figure 11 study that compares the six
 * spatial partition strategies with the best temporal choice each.
 */
std::vector<Mapping>
enumerateCandidatesFor(const ConvLayer &layer,
                       const AcceleratorConfig &cfg, SearchEffort effort,
                       PackagePartition pkg, ChipletPartition chip);

} // namespace nnbaton

#endif // NNBATON_MAPPER_CANDIDATES_HPP
