/**
 * @file
 * Candidate mapping enumeration for the post-design search (paper
 * section V-C: "The mapping analysis engine adopts exhaustive search
 * to evaluate hundreds of cases, including partition patterns with
 * different height-width ratios and loop transformation of various
 * spatial-temporal combinations").
 */

#ifndef NNBATON_MAPPER_CANDIDATES_HPP
#define NNBATON_MAPPER_CANDIDATES_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/config.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** Search effort: exhaustive for case studies, fast for model runs,
 *  sketch for the wide pre-design sweeps. */
enum class SearchEffort
{
    Exhaustive, //!< all spatial patterns, dense tile ladder
    Fast,       //!< near-square patterns, sparse tile ladder
    Sketch,     //!< square-only patterns, endpoints-only ladder
};

/**
 * Enumerate legal mapping candidates for @p layer on @p cfg.
 *
 * All six spatial combinations (2 package x 3 chiplet types), all four
 * temporal order pairs, the planar-pattern aspect ratios, and a
 * power-of-two tile ladder are covered.  Candidates that under-fill
 * the MAC lanes (per-core channel span < L) are dropped whenever at
 * least one full-lane candidate exists, mirroring the paper's removal
 * of mismatched (C,C) options for small-channel layers.
 */
std::vector<Mapping> enumerateCandidates(const ConvLayer &layer,
                                         const AcceleratorConfig &cfg,
                                         SearchEffort effort);

/**
 * Enumerate candidates restricted to one (package, chiplet) spatial
 * combination — used by the figure 11 study that compares the six
 * spatial partition strategies with the best temporal choice each.
 */
std::vector<Mapping>
enumerateCandidatesFor(const ConvLayer &layer,
                       const AcceleratorConfig &cfg, SearchEffort effort,
                       PackagePartition pkg, ChipletPartition chip);

/**
 * The candidate space as a lazily expanded tree (the generator/cursor
 * behind the branch-and-bound search, docs/search.md).
 *
 * Level 1 fixes a *subtree*: one spatial skeleton (package and
 * chiplet partition primitives with their planar splits and channel
 * ways) plus one (hoC, woC) core-tile plane.  Everything the subtree
 * shares — the per-chiplet macro workload, the tile-ladder bases and
 * rungs — is precomputed so mapper/bound can floor the whole subtree
 * without materialising a single leaf.  Level 2 expands a subtree
 * into *leaves*: the chiplet-tile ladder cross the four temporal
 * order pairs, legality-checked on demand.
 *
 * Every potential leaf — legal or not — owns a unique *ordinal*, its
 * position in the flat enumeration order (subtree-major, then
 * fh → fw → fc → pkgOrder → chipOrder).  enumerateCandidates() emits
 * legal leaves in exactly ascending-ordinal order, so "smallest
 * ordinal wins score ties" reproduces the flat search's first-wins
 * tie-breaking no matter in which order a search visits the tree.
 */
class CandidateSpace
{
  public:
    /** One (spatial skeleton, core-tile plane) subtree. */
    struct Subtree
    {
        // Spatial skeleton.
        PackagePartition pkg = PackagePartition::Channel;
        PlanarSplit pkgSplit;
        ChipletPartition chip = ChipletPartition::Channel;
        int cw = 1;
        PlanarSplit chipSplit;
        // Core-tile plane.
        int hoC = 1, woC = 1;
        // Per-chiplet macro workload under the package split.
        WorkShape macro;
        // Chiplet-tile ladder: tile = min(base * rung, macro).
        int baseH = 1, baseW = 1, baseC = 1;
        std::vector<int> ladderH, ladderW, ladderC;
        // Position of the subtree's first (grid) leaf in the flat
        // enumeration order.
        int64_t firstOrdinal = 0;

        /** Grid size (legal and illegal leaves alike). */
        int64_t gridLeaves() const
        {
            return static_cast<int64_t>(ladderH.size()) *
                   static_cast<int64_t>(ladderW.size()) *
                   static_cast<int64_t>(ladderC.size()) * 4;
        }
    };

    /** One legality-checked candidate. */
    struct Leaf
    {
        Mapping mapping;
        int64_t ordinal = 0; //!< flat enumeration position (unique)
        bool fullLane = false; //!< per-core CO span fills the lanes
    };

    CandidateSpace(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   SearchEffort effort);
    CandidateSpace(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   SearchEffort effort, PackagePartition pkg,
                   ChipletPartition chip);

    size_t size() const { return subtrees_.size(); }
    const Subtree &subtree(size_t i) const { return subtrees_[i]; }

    /** Total grid leaves over all subtrees. */
    int64_t gridLeaves() const { return gridLeaves_; }

    /** Expand subtree @p i into its legal leaves, ascending ordinal.
     *  Both lane classes are returned; callers filter. */
    std::vector<Leaf> expand(size_t i) const;

    /** Materialise one grid coordinate of subtree @p i (indices into
     *  the ladders, @p order in [0,4) as pkgOrder*2 + chipOrder).
     *  std::nullopt when the mapping is illegal. */
    std::optional<Leaf> makeLeaf(size_t i, size_t ih, size_t iw,
                                 size_t ic, size_t order) const;

    /** Find @p mapping in the grid (warm-start membership test):
     *  the leaf with identical mapping fields, or std::nullopt when
     *  this space never enumerates it. */
    std::optional<Leaf> locate(const Mapping &mapping) const;

  private:
    const ConvLayer layer_;
    const AcceleratorConfig cfg_;
    std::vector<Subtree> subtrees_;
    int64_t gridLeaves_ = 0;
};

} // namespace nnbaton

#endif // NNBATON_MAPPER_CANDIDATES_HPP
