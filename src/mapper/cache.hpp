/**
 * @file
 * A thread-safe, cross-design-point cache for per-layer mapping
 * search results.
 *
 * The pre-design sweep runs a full mapping search for every surviving
 * design point, and each model re-visits the same layer shapes many
 * times (ResNet-50's repeated residual blocks dominate the workload).
 * Hoisting the memoization out of mapModel() and keying it on (layer
 * shape, relevant configuration fields, effort, objective) lets one
 * cache serve the whole sweep — including the parallel sweep, where
 * many worker threads look up the same key concurrently.
 *
 * Entries are compute-once: the first thread to miss a key runs the
 * search while later arrivals block on that entry, so every unique
 * key is searched exactly once regardless of thread count.  That
 * keeps the evaluated/pruned counters deterministic and bit-identical
 * between serial and parallel runs.
 *
 * The map is sharded by key hash to keep lock hold times short; entry
 * values are immutable after publication, so readers need no lock.
 */

#ifndef NNBATON_MAPPER_CACHE_HPP
#define NNBATON_MAPPER_CACHE_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "arch/config.hpp"
#include "mapper/search.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

class MappingCache
{
  public:
    /**
     * Everything the per-layer search result depends on: the layer
     * shape (including grouping) and the configuration knobs visible
     * to candidate enumeration, the C3P accounting and the cost
     * models, plus the search effort and objective.
     */
    struct Key
    {
        // Layer shape.
        int ho = 0, wo = 0, co = 0, ci = 0;
        int kh = 0, kw = 0, stride = 0, groups = 0;
        // Hardware configuration.
        int chiplets = 0, cores = 0, lanes = 0, vectorSize = 0;
        int64_t ol1Bytes = 0, al1Bytes = 0, wl1Bytes = 0, al2Bytes = 0;
        // Search parameters.
        int effort = 0, objective = 0;

        bool operator==(const Key &) const = default;
    };

    static Key makeKey(const ConvLayer &layer,
                       const AcceleratorConfig &cfg, SearchEffort effort,
                       Objective objective);

    /**
     * Return the cached search result for the key, computing it with
     * @p search on a miss.  @p search runs at most once per key
     * across all threads; concurrent arrivals for the same key block
     * until the value is published.  Sets @p was_hit (when non-null)
     * to false only for the caller that ran the search.
     *
     * The returned reference stays valid for the cache's lifetime.
     */
    const std::optional<MappingChoice> &lookupOrCompute(
        const Key &key,
        const std::function<std::optional<MappingChoice>()> &search,
        bool *was_hit = nullptr);

    /** Number of distinct keys currently cached. */
    size_t size() const;

    /** Shard count (public so metrics can name per-shard counters). */
    static constexpr size_t kShards = 16;

  private:
    struct Entry
    {
        std::once_flag once;
        std::optional<MappingChoice> value;
    };

    struct KeyHash
    {
        size_t operator()(const Key &key) const;
    };

    struct Shard
    {
        mutable std::mutex m;
        std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> map;
    };

    std::array<Shard, kShards> shards_;
};

} // namespace nnbaton

#endif // NNBATON_MAPPER_CACHE_HPP
