/**
 * @file
 * A thread-safe, cross-design-point cache for per-layer mapping
 * search results.
 *
 * The pre-design sweep runs a full mapping search for every surviving
 * design point, and each model re-visits the same layer shapes many
 * times (ResNet-50's repeated residual blocks dominate the workload).
 * Hoisting the memoization out of mapModel() and keying it on (layer
 * shape, relevant configuration fields, technology fingerprint,
 * effort, objective) lets one cache serve the whole sweep — including
 * the parallel sweep, where many worker threads look up the same key
 * concurrently — and, since the key carries the TechnologyModel
 * digest, a cache that outlives a single fixed-tech run (the
 * `nn-baton serve` daemon) can never return a result computed under
 * different pJ/bit anchors or clock.
 *
 * Entries are compute-once while resident: the first thread to miss a
 * key runs the search while later arrivals block on that entry, so
 * every unique key is searched at most once per residency regardless
 * of thread count.  With the default unbounded capacity nothing is
 * ever evicted and the evaluated/pruned counters stay deterministic
 * and bit-identical between serial and parallel runs (the sweep
 * engine relies on this).
 *
 * setCapacity() arms least-recently-used eviction under an
 * approximate byte cap for long-lived caches (the serving daemon):
 * each shard owns an LRU list and sheds published entries from its
 * tail once the resident estimate exceeds its share of the cap.
 * Evicted keys are simply recomputed on the next miss — results never
 * change, only the amount of work saved.
 *
 * The map is sharded by key hash to keep lock hold times short; entry
 * values are immutable after publication and handed out by value, so
 * a result stays usable after its entry is evicted.
 */

#ifndef NNBATON_MAPPER_CACHE_HPP
#define NNBATON_MAPPER_CACHE_HPP

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "arch/config.hpp"
#include "mapper/search.hpp"
#include "nn/layer.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

class MappingCache
{
  public:
    /**
     * Everything the per-layer search result depends on: the layer
     * shape (including grouping), the configuration knobs visible to
     * candidate enumeration, the C3P accounting and the cost models,
     * the technology model digest, plus the search effort and
     * objective.
     */
    struct Key
    {
        // Layer shape.  `batch` and `postOps` change the accounting;
        // the op tag (conv vs gemm) does not — equivalent lowered
        // shapes deliberately share entries.
        int ho = 0, wo = 0, co = 0, ci = 0;
        int kh = 0, kw = 0, stride = 0, groups = 0;
        int batch = 1, postOps = 0;
        // Hardware configuration.
        int chiplets = 0, cores = 0, lanes = 0, vectorSize = 0;
        int64_t ol1Bytes = 0, al1Bytes = 0, wl1Bytes = 0, al2Bytes = 0;
        // Technology model (energy anchors, fits, clock, widths).
        uint64_t techFingerprint = 0;
        // Search parameters.  `mode` is 0 for Exhaustive *and* Bnb —
        // they return bit-identical winners by contract, so sharing
        // entries across the two is sound (and lets a bnb run reuse
        // an exhaustive run's work).  Anneal results depend on the
        // seed, so they key as mode 1 plus the seed.
        int effort = 0, objective = 0;
        int mode = 0;
        uint64_t annealSeed = 0;

        bool operator==(const Key &) const = default;
    };

    static Key makeKey(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech, SearchEffort effort,
                       Objective objective,
                       SearchMode mode = SearchMode::Exhaustive,
                       uint64_t annealSeed = 0);

    /**
     * Return the cached search result for the key, computing it with
     * @p search on a miss.  While an entry is resident @p search runs
     * at most once for its key across all threads; concurrent
     * arrivals block until the value is published.  Sets @p was_hit
     * (when non-null) to false only for the caller that ran the
     * search.  Returned by value so the result survives eviction.
     */
    std::optional<MappingChoice> lookupOrCompute(
        const Key &key,
        const std::function<std::optional<MappingChoice>()> &search,
        bool *was_hit = nullptr);

    /**
     * Warm-start lookup: the winning mapping of some *published*
     * deterministic-mode entry with the same layer shape, technology
     * and objective as @p key but a different configuration or
     * effort, or std::nullopt when none is resident.  Best-effort by
     * design — what it finds depends on the cache's current contents
     * — so callers must treat the result as a search-order hint only,
     * never as an answer (mapper/bnb.hpp's warm start re-derives
     * legality and membership in its own grid).
     */
    std::optional<Mapping> findShapeMatch(const Key &key) const;

    /**
     * Arm LRU eviction: keep the resident-byte estimate under
     * @p max_bytes (split evenly across shards); 0 restores the
     * default unbounded behaviour.  Entries already resident stay
     * until a subsequent insertion pushes their shard over its share.
     */
    void setCapacity(int64_t max_bytes);

    /** The configured byte cap (0 = unbounded). */
    int64_t capacityBytes() const
    {
        return capacityBytes_.load(std::memory_order_relaxed);
    }

    /** Number of distinct keys currently cached. */
    size_t size() const;

    /** Approximate resident bytes (fixed per-entry estimate). */
    int64_t bytes() const;

    /** Entries evicted so far (0 while unbounded). */
    int64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /** Lifetime lookup counters (process-wide metrics mirror these). */
    int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    int64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /**
     * Per-entry resident-byte estimate.  MappingChoice is a flat
     * aggregate (no heap members), so entry weight is dominated by the
     * key, the value and the map/list node overhead.
     */
    static constexpr int64_t kEntryBytes = 512;

    /** Shard count (public so metrics can name per-shard counters). */
    static constexpr size_t kShards = 16;

  private:
    struct Entry
    {
        std::once_flag once;
        std::optional<MappingChoice> value;
        bool published = false;      //!< set under the shard lock after
                                     //!< the search finished
        std::list<Key>::iterator lruIt; //!< position in the shard LRU
    };

    struct KeyHash
    {
        size_t operator()(const Key &key) const;
    };

    struct Shard
    {
        mutable std::mutex m;
        std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> map;
        std::list<Key> lru; //!< most-recently-used first
        int64_t bytes = 0;  //!< published entries * kEntryBytes
    };

    /** Drop published tail entries until @p shard fits its share of
     *  the cap.  Caller holds the shard lock. */
    void evictLocked(Shard &shard);

    std::array<Shard, kShards> shards_;
    std::atomic<int64_t> capacityBytes_{0};
    std::atomic<int64_t> evictions_{0};
    std::atomic<int64_t> hits_{0};
    std::atomic<int64_t> misses_{0};
};

} // namespace nnbaton

#endif // NNBATON_MAPPER_CACHE_HPP
