#include "mapper/candidates.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/util.hpp"

namespace nnbaton {

namespace {

/** Spatial skeleton of a candidate before temporal choices. */
struct Skeleton
{
    PackagePartition pkg;
    PlanarSplit pkgSplit;
    ChipletPartition chip;
    int cw;
    PlanarSplit chipSplit;
};

std::vector<Skeleton>
enumerateSkeletons(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   SearchEffort effort, bool has_pkg_filter,
                   PackagePartition pkg_filter, bool has_chip_filter,
                   ChipletPartition chip_filter)
{
    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;

    // Package-level options.
    struct PkgOpt
    {
        PackagePartition pkg;
        PlanarSplit split;
    };
    std::vector<PkgOpt> pkg_opts;
    if (!has_pkg_filter || pkg_filter == PackagePartition::Channel)
        pkg_opts.push_back({PackagePartition::Channel, {1, 1}});
    if (np > 1 && (!has_pkg_filter ||
                   pkg_filter == PackagePartition::Plane)) {
        auto splits = enumerateSplits(np, layer.ho, layer.wo);
        const size_t keep =
            effort == SearchEffort::Exhaustive ? splits.size()
            : effort == SearchEffort::Fast     ? 2
                                               : 1;
        if (splits.size() > keep)
            splits.resize(keep);
        for (const auto &sp : splits)
            pkg_opts.push_back({PackagePartition::Plane, sp});
    }

    // Chiplet-level options.
    struct ChipOpt
    {
        ChipletPartition chip;
        int cw;
        PlanarSplit split;
    };
    std::vector<ChipOpt> chip_opts;
    auto want_chip = [&](ChipletPartition c) {
        return !has_chip_filter || chip_filter == c;
    };
    if (want_chip(ChipletPartition::Channel))
        chip_opts.push_back({ChipletPartition::Channel, nc, {1, 1}});
    if (nc > 1 && want_chip(ChipletPartition::Plane)) {
        auto splits = enumerateSplits(nc, layer.ho, layer.wo);
        const size_t keep =
            effort == SearchEffort::Exhaustive ? splits.size()
            : effort == SearchEffort::Fast     ? 2
                                               : 1;
        if (splits.size() > keep)
            splits.resize(keep);
        for (const auto &sp : splits)
            chip_opts.push_back({ChipletPartition::Plane, 1, sp});
    }
    if (nc > 3 && want_chip(ChipletPartition::Hybrid)) {
        // Sketch keeps only the most balanced channel/plane split.
        std::vector<int> cws;
        for (int cw : divisors(nc)) {
            if (cw >= 2 && cw < nc)
                cws.push_back(cw);
        }
        if (effort == SearchEffort::Sketch && cws.size() > 1)
            cws = {cws[cws.size() / 2]};
        for (int cw : cws) {
            const int pw = nc / cw;
            auto splits = enumerateSplits(pw, layer.ho, layer.wo);
            if (splits.empty())
                continue;
            size_t take = effort == SearchEffort::Exhaustive
                              ? std::min<size_t>(2, splits.size())
                              : 1;
            for (size_t i = 0; i < take && i < splits.size(); ++i) {
                chip_opts.push_back(
                    {ChipletPartition::Hybrid, cw, splits[i]});
            }
        }
    }

    std::vector<Skeleton> out;
    for (const auto &po : pkg_opts) {
        for (const auto &co : chip_opts) {
            out.push_back(
                {po.pkg, po.split, co.chip, co.cw, co.split});
        }
    }
    return out;
}

/** Power-of-two values up to @p limit (always includes limit). */
std::vector<int>
pow2Ladder(int limit, SearchEffort effort)
{
    std::vector<int> out;
    for (int v = 1; v < limit; v *= 2)
        out.push_back(v);
    out.push_back(limit);
    if (effort == SearchEffort::Sketch && out.size() > 2)
        return {out.front(), out.back()};
    if (effort == SearchEffort::Fast && out.size() > 3) {
        // Keep 1, a mid rung and the limit.
        std::vector<int> fast{out.front(), out[out.size() / 2],
                              out.back()};
        return fast;
    }
    return out;
}

/** Candidate (hoC, woC) core-tile planes respecting O-L1 and A-L1. */
std::vector<std::pair<int, int>>
coreTilePlanes(const ConvLayer &layer, const AcceleratorConfig &cfg,
               SearchEffort effort)
{
    const int64_t max_plane = cfg.core.maxCoreTilePlane(24);
    std::vector<std::pair<int, int>> out;
    auto fits_al1 = [&](int h, int w) {
        const int64_t need =
            static_cast<int64_t>(inputExtent(h, layer.kh, layer.stride)) *
            inputExtent(w, layer.kw, layer.stride) *
            std::min(cfg.core.vectorSize, layer.ciPerGroup());
        return need <= cfg.core.al1Bytes;
    };
    for (int h = 1; h <= std::min(layer.ho, 64); h *= 2) {
        for (int w : {h, h / 2, h * 2, 1}) {
            if (w < 1 || w > std::min(layer.wo, 64))
                continue;
            if (static_cast<int64_t>(h) * w > max_plane)
                continue;
            if (!fits_al1(h, w))
                continue;
            if (std::find(out.begin(), out.end(),
                          std::make_pair(h, w)) == out.end()) {
                out.emplace_back(h, w);
            }
        }
    }
    if (out.empty())
        return out;
    // Largest tiles first: fewer, bigger tiles amortise loads better.
    std::sort(out.begin(), out.end(), [](auto a, auto b) {
        return a.first * a.second > b.first * b.second;
    });
    const size_t cap = effort == SearchEffort::Exhaustive ? 8
                       : effort == SearchEffort::Fast     ? 3
                                                          : 2;
    if (out.size() > cap)
        out.resize(cap);
    return out;
}

} // namespace

static std::vector<Mapping>
enumerateImpl(const ConvLayer &layer, const AcceleratorConfig &cfg,
              SearchEffort effort, bool has_pkg, PackagePartition pkg,
              bool has_chip, ChipletPartition chip)
{
    std::vector<Mapping> full_lane;
    std::vector<Mapping> degraded;

    const auto skeletons = enumerateSkeletons(layer, cfg, effort, has_pkg,
                                              pkg, has_chip, chip);
    const auto planes = coreTilePlanes(layer, cfg, effort);
    const LoopOrder orders[] = {LoopOrder::ChannelPriority,
                                LoopOrder::PlanePriority};

    for (const auto &sk : skeletons) {
        // Macro workload per chiplet under this package split.
        const int macro_ho =
            sk.pkg == PackagePartition::Plane
                ? static_cast<int>(ceilDiv(layer.ho, sk.pkgSplit.fh))
                : layer.ho;
        const int macro_wo =
            sk.pkg == PackagePartition::Plane
                ? static_cast<int>(ceilDiv(layer.wo, sk.pkgSplit.fw))
                : layer.wo;
        const int macro_co =
            sk.pkg == PackagePartition::Channel
                ? static_cast<int>(ceilDiv(layer.co,
                                           cfg.package.chiplets))
                : layer.co;

        for (auto [hoc, woc] : planes) {
            // Chiplet tiles grow from the core split in power-of-two
            // steps along the plane and in lane multiples along CO.
            const int base_h = hoc * sk.chipSplit.fh;
            const int base_w = woc * sk.chipSplit.fw;
            const int base_c = cfg.core.lanes * sk.cw;
            const auto mh =
                pow2Ladder(std::max(1, macro_ho / base_h), effort);
            const auto mw =
                pow2Ladder(std::max(1, macro_wo / base_w), effort);
            const auto mc =
                pow2Ladder(std::max(1, macro_co / base_c), effort);
            for (int fh : mh) {
                for (int fw : mw) {
                    for (int fc : mc) {
                        Mapping m;
                        m.pkgSpatial = sk.pkg;
                        m.pkgSplit = sk.pkgSplit;
                        m.chipSpatial = sk.chip;
                        m.chipChannelWays = sk.cw;
                        m.chipSplit = sk.chipSplit;
                        m.chipletTile = {
                            std::min(base_h * fh, macro_ho),
                            std::min(base_w * fw, macro_wo),
                            std::min(base_c * fc, macro_co)};
                        m.hoC = hoc;
                        m.woC = woc;
                        for (LoopOrder po : orders) {
                            for (LoopOrder co_ : orders) {
                                m.pkgOrder = po;
                                m.chipOrder = co_;
                                if (!checkMapping(layer, cfg, m).empty())
                                    continue;
                                const auto sh =
                                    deriveShapes(layer, cfg, m);
                                const bool full =
                                    sh.coreMacro.co >= cfg.core.lanes;
                                (full ? full_lane : degraded)
                                    .push_back(m);
                            }
                        }
                    }
                }
            }
        }
    }
    // Prefer candidates that fill the lanes; fall back when the layer
    // is too narrow for any to exist.
    return full_lane.empty() ? degraded : full_lane;
}

std::vector<Mapping>
enumerateCandidates(const ConvLayer &layer, const AcceleratorConfig &cfg,
                    SearchEffort effort)
{
    return enumerateImpl(layer, cfg, effort, false,
                         PackagePartition::Channel, false,
                         ChipletPartition::Channel);
}

std::vector<Mapping>
enumerateCandidatesFor(const ConvLayer &layer,
                       const AcceleratorConfig &cfg, SearchEffort effort,
                       PackagePartition pkg, ChipletPartition chip)
{
    return enumerateImpl(layer, cfg, effort, true, pkg, true, chip);
}

} // namespace nnbaton
