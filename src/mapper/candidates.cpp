#include "mapper/candidates.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/util.hpp"

namespace nnbaton {

namespace {

/** Spatial skeleton of a candidate before temporal choices. */
struct Skeleton
{
    PackagePartition pkg;
    PlanarSplit pkgSplit;
    ChipletPartition chip;
    int cw;
    PlanarSplit chipSplit;
};

std::vector<Skeleton>
enumerateSkeletons(const ConvLayer &layer, const AcceleratorConfig &cfg,
                   SearchEffort effort, bool has_pkg_filter,
                   PackagePartition pkg_filter, bool has_chip_filter,
                   ChipletPartition chip_filter)
{
    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;

    // Package-level options.
    struct PkgOpt
    {
        PackagePartition pkg;
        PlanarSplit split;
    };
    std::vector<PkgOpt> pkg_opts;
    if (!has_pkg_filter || pkg_filter == PackagePartition::Channel)
        pkg_opts.push_back({PackagePartition::Channel, {1, 1}});
    if (np > 1 && (!has_pkg_filter ||
                   pkg_filter == PackagePartition::Plane)) {
        auto splits = enumerateSplits(np, layer.ho, layer.wo);
        const size_t keep =
            effort == SearchEffort::Exhaustive ? splits.size()
            : effort == SearchEffort::Fast     ? 2
                                               : 1;
        if (splits.size() > keep)
            splits.resize(keep);
        for (const auto &sp : splits)
            pkg_opts.push_back({PackagePartition::Plane, sp});
    }

    // Chiplet-level options.
    struct ChipOpt
    {
        ChipletPartition chip;
        int cw;
        PlanarSplit split;
    };
    std::vector<ChipOpt> chip_opts;
    auto want_chip = [&](ChipletPartition c) {
        return !has_chip_filter || chip_filter == c;
    };
    if (want_chip(ChipletPartition::Channel))
        chip_opts.push_back({ChipletPartition::Channel, nc, {1, 1}});
    if (nc > 1 && want_chip(ChipletPartition::Plane)) {
        auto splits = enumerateSplits(nc, layer.ho, layer.wo);
        const size_t keep =
            effort == SearchEffort::Exhaustive ? splits.size()
            : effort == SearchEffort::Fast     ? 2
                                               : 1;
        if (splits.size() > keep)
            splits.resize(keep);
        for (const auto &sp : splits)
            chip_opts.push_back({ChipletPartition::Plane, 1, sp});
    }
    if (nc > 3 && want_chip(ChipletPartition::Hybrid)) {
        // Sketch keeps only the most balanced channel/plane split.
        std::vector<int> cws;
        for (int cw : divisors(nc)) {
            if (cw >= 2 && cw < nc)
                cws.push_back(cw);
        }
        if (effort == SearchEffort::Sketch && cws.size() > 1)
            cws = {cws[cws.size() / 2]};
        for (int cw : cws) {
            const int pw = nc / cw;
            auto splits = enumerateSplits(pw, layer.ho, layer.wo);
            if (splits.empty())
                continue;
            size_t take = effort == SearchEffort::Exhaustive
                              ? std::min<size_t>(2, splits.size())
                              : 1;
            for (size_t i = 0; i < take && i < splits.size(); ++i) {
                chip_opts.push_back(
                    {ChipletPartition::Hybrid, cw, splits[i]});
            }
        }
    }

    std::vector<Skeleton> out;
    for (const auto &po : pkg_opts) {
        for (const auto &co : chip_opts) {
            out.push_back(
                {po.pkg, po.split, co.chip, co.cw, co.split});
        }
    }
    return out;
}

/** Power-of-two values up to @p limit (always includes limit). */
std::vector<int>
pow2Ladder(int limit, SearchEffort effort)
{
    std::vector<int> out;
    for (int v = 1; v < limit; v *= 2)
        out.push_back(v);
    out.push_back(limit);
    if (effort == SearchEffort::Sketch && out.size() > 2)
        return {out.front(), out.back()};
    if (effort == SearchEffort::Fast && out.size() > 3) {
        // Keep 1, a mid rung and the limit.
        std::vector<int> fast{out.front(), out[out.size() / 2],
                              out.back()};
        return fast;
    }
    return out;
}

/** Candidate (hoC, woC) core-tile planes respecting O-L1 and A-L1. */
std::vector<std::pair<int, int>>
coreTilePlanes(const ConvLayer &layer, const AcceleratorConfig &cfg,
               SearchEffort effort)
{
    const int64_t max_plane = cfg.core.maxCoreTilePlane(24);
    std::vector<std::pair<int, int>> out;
    auto fits_al1 = [&](int h, int w) {
        const int64_t need =
            static_cast<int64_t>(inputExtent(h, layer.kh, layer.stride)) *
            inputExtent(w, layer.kw, layer.stride) *
            std::min(cfg.core.vectorSize, layer.ciPerGroup());
        return need <= cfg.core.al1Bytes;
    };
    for (int h = 1; h <= std::min(layer.ho, 64); h *= 2) {
        for (int w : {h, h / 2, h * 2, 1}) {
            if (w < 1 || w > std::min(layer.wo, 64))
                continue;
            if (static_cast<int64_t>(h) * w > max_plane)
                continue;
            if (!fits_al1(h, w))
                continue;
            if (std::find(out.begin(), out.end(),
                          std::make_pair(h, w)) == out.end()) {
                out.emplace_back(h, w);
            }
        }
    }
    if (out.empty())
        return out;
    // Largest tiles first: fewer, bigger tiles amortise loads better.
    std::sort(out.begin(), out.end(), [](auto a, auto b) {
        return a.first * a.second > b.first * b.second;
    });
    const size_t cap = effort == SearchEffort::Exhaustive ? 8
                       : effort == SearchEffort::Fast     ? 3
                                                          : 2;
    if (out.size() > cap)
        out.resize(cap);
    return out;
}

/** The two loop orders in grid-index order (index 0 and 1). */
constexpr LoopOrder kOrders[] = {LoopOrder::ChannelPriority,
                                 LoopOrder::PlanePriority};

std::vector<CandidateSpace::Subtree>
buildSubtrees(const ConvLayer &layer, const AcceleratorConfig &cfg,
              SearchEffort effort, bool has_pkg, PackagePartition pkg,
              bool has_chip, ChipletPartition chip)
{
    std::vector<CandidateSpace::Subtree> out;
    const auto skeletons = enumerateSkeletons(layer, cfg, effort,
                                              has_pkg, pkg, has_chip,
                                              chip);
    const auto planes = coreTilePlanes(layer, cfg, effort);
    int64_t ordinal = 0;
    for (const auto &sk : skeletons) {
        // Macro workload per chiplet under this package split.
        const int macro_ho =
            sk.pkg == PackagePartition::Plane
                ? static_cast<int>(ceilDiv(layer.ho, sk.pkgSplit.fh))
                : layer.ho;
        const int macro_wo =
            sk.pkg == PackagePartition::Plane
                ? static_cast<int>(ceilDiv(layer.wo, sk.pkgSplit.fw))
                : layer.wo;
        const int macro_co =
            sk.pkg == PackagePartition::Channel
                ? static_cast<int>(ceilDiv(layer.co,
                                           cfg.package.chiplets))
                : layer.co;
        for (auto [hoc, woc] : planes) {
            CandidateSpace::Subtree st;
            st.pkg = sk.pkg;
            st.pkgSplit = sk.pkgSplit;
            st.chip = sk.chip;
            st.cw = sk.cw;
            st.chipSplit = sk.chipSplit;
            st.hoC = hoc;
            st.woC = woc;
            st.macro = {macro_ho, macro_wo, macro_co};
            // Chiplet tiles grow from the core split in power-of-two
            // steps along the plane and in lane multiples along CO.
            st.baseH = hoc * sk.chipSplit.fh;
            st.baseW = woc * sk.chipSplit.fw;
            st.baseC = cfg.core.lanes * sk.cw;
            st.ladderH =
                pow2Ladder(std::max(1, macro_ho / st.baseH), effort);
            st.ladderW =
                pow2Ladder(std::max(1, macro_wo / st.baseW), effort);
            st.ladderC =
                pow2Ladder(std::max(1, macro_co / st.baseC), effort);
            st.firstOrdinal = ordinal;
            ordinal += st.gridLeaves();
            out.push_back(std::move(st));
        }
    }
    return out;
}

} // namespace

void
CandidateBlock::keepOnly(bool full_lane)
{
    const uint8_t want = full_lane ? 1 : 0;
    size_t w = 0;
    for (size_t r = 0; r < mappings_.size(); ++r) {
        if (fullLane_[r] != want)
            continue;
        if (w != r) {
            mappings_[w] = mappings_[r];
            ordinals_[w] = ordinals_[r];
            fullLane_[w] = fullLane_[r];
        }
        ++w;
    }
    mappings_.resize(w);
    ordinals_.resize(w);
    fullLane_.resize(w);
}

CandidateSpace::CandidateSpace(const ConvLayer &layer,
                               const AcceleratorConfig &cfg,
                               SearchEffort effort)
    : layer_(layer), cfg_(cfg),
      subtrees_(buildSubtrees(layer, cfg, effort, false,
                              PackagePartition::Channel, false,
                              ChipletPartition::Channel))
{
    if (!subtrees_.empty()) {
        const Subtree &last = subtrees_.back();
        gridLeaves_ = last.firstOrdinal + last.gridLeaves();
    }
}

CandidateSpace::CandidateSpace(const ConvLayer &layer,
                               const AcceleratorConfig &cfg,
                               SearchEffort effort, PackagePartition pkg,
                               ChipletPartition chip)
    : layer_(layer), cfg_(cfg),
      subtrees_(
          buildSubtrees(layer, cfg, effort, true, pkg, true, chip))
{
    if (!subtrees_.empty()) {
        const Subtree &last = subtrees_.back();
        gridLeaves_ = last.firstOrdinal + last.gridLeaves();
    }
}

std::optional<CandidateSpace::Leaf>
CandidateSpace::makeLeaf(size_t i, size_t ih, size_t iw, size_t ic,
                         size_t order) const
{
    const Subtree &st = subtrees_[i];
    Mapping m;
    m.pkgSpatial = st.pkg;
    m.pkgSplit = st.pkgSplit;
    m.chipSpatial = st.chip;
    m.chipChannelWays = st.cw;
    m.chipSplit = st.chipSplit;
    m.chipletTile = {
        std::min(st.baseH * st.ladderH[ih], st.macro.ho),
        std::min(st.baseW * st.ladderW[iw], st.macro.wo),
        std::min(st.baseC * st.ladderC[ic], st.macro.co)};
    m.hoC = st.hoC;
    m.woC = st.woC;
    m.pkgOrder = kOrders[order / 2];
    m.chipOrder = kOrders[order % 2];
    if (!checkMapping(layer_, cfg_, m).empty())
        return std::nullopt;
    Leaf leaf;
    leaf.mapping = m;
    leaf.ordinal =
        st.firstOrdinal +
        static_cast<int64_t>(
            ((ih * st.ladderW.size() + iw) * st.ladderC.size() + ic) *
                4 +
            order);
    const MappingShapes sh = deriveShapes(layer_, cfg_, m);
    leaf.fullLane = sh.coreMacro.co >= cfg_.core.lanes;
    return leaf;
}

std::vector<CandidateSpace::Leaf>
CandidateSpace::expand(size_t i) const
{
    CandidateBlock block;
    expandInto(i, block);
    std::vector<Leaf> out;
    out.reserve(block.size());
    for (size_t k = 0; k < block.size(); ++k)
        out.push_back(
            {block.mapping(k), block.ordinal(k), block.fullLane(k)});
    return out;
}

void
CandidateSpace::expandInto(size_t i, CandidateBlock &out) const
{
    out.clear();
    const Subtree &st = subtrees_[i];
    for (size_t ih = 0; ih < st.ladderH.size(); ++ih) {
        for (size_t iw = 0; iw < st.ladderW.size(); ++iw) {
            for (size_t ic = 0; ic < st.ladderC.size(); ++ic) {
                for (size_t order = 0; order < 4; ++order) {
                    if (auto leaf = makeLeaf(i, ih, iw, ic, order)) {
                        out.push(leaf->mapping, leaf->ordinal,
                                 leaf->fullLane);
                    }
                }
            }
        }
    }
}

std::optional<CandidateSpace::Leaf>
CandidateSpace::locate(const Mapping &mapping) const
{
    const auto sameSplit = [](const PlanarSplit &a,
                              const PlanarSplit &b) {
        return a.fh == b.fh && a.fw == b.fw;
    };
    const size_t order =
        (mapping.pkgOrder == LoopOrder::PlanePriority ? 2u : 0u) +
        (mapping.chipOrder == LoopOrder::PlanePriority ? 1u : 0u);
    for (size_t i = 0; i < subtrees_.size(); ++i) {
        const Subtree &st = subtrees_[i];
        if (st.pkg != mapping.pkgSpatial ||
            !sameSplit(st.pkgSplit, mapping.pkgSplit) ||
            st.chip != mapping.chipSpatial ||
            st.cw != mapping.chipChannelWays ||
            !sameSplit(st.chipSplit, mapping.chipSplit) ||
            st.hoC != mapping.hoC || st.woC != mapping.woC)
            continue;
        // Ladder rungs can clamp to the same tile extent; the first
        // match is the one flat enumeration emits first (smallest
        // ordinal), which is what first-wins tie-breaking preserves.
        for (size_t ih = 0; ih < st.ladderH.size(); ++ih) {
            if (std::min(st.baseH * st.ladderH[ih], st.macro.ho) !=
                mapping.chipletTile.ho)
                continue;
            for (size_t iw = 0; iw < st.ladderW.size(); ++iw) {
                if (std::min(st.baseW * st.ladderW[iw],
                             st.macro.wo) != mapping.chipletTile.wo)
                    continue;
                for (size_t ic = 0; ic < st.ladderC.size(); ++ic) {
                    if (std::min(st.baseC * st.ladderC[ic],
                                 st.macro.co) !=
                        mapping.chipletTile.co)
                        continue;
                    if (auto leaf = makeLeaf(i, ih, iw, ic, order))
                        return leaf;
                }
            }
        }
    }
    return std::nullopt;
}

void
enumerateCandidatesInto(const CandidateSpace &space, CandidateBlock &out)
{
    out.clear();
    CandidateBlock scratch;
    for (size_t i = 0; i < space.size(); ++i) {
        space.expandInto(i, scratch);
        for (size_t k = 0; k < scratch.size(); ++k) {
            out.push(scratch.mapping(k), scratch.ordinal(k),
                     scratch.fullLane(k));
        }
    }
    // Prefer candidates that fill the lanes; fall back when the layer
    // is too narrow for any to exist.  keepOnly preserves ascending
    // ordinal order, so the block stays an enumeration-neighbour
    // stream either way.
    if (out.anyFullLane())
        out.keepOnly(true);
}

void
enumerateCandidatesInto(const ConvLayer &layer,
                        const AcceleratorConfig &cfg, SearchEffort effort,
                        CandidateBlock &out)
{
    enumerateCandidatesInto(CandidateSpace(layer, cfg, effort), out);
}

static std::vector<Mapping>
collectFromSpace(const CandidateSpace &space)
{
    CandidateBlock block;
    enumerateCandidatesInto(space, block);
    std::vector<Mapping> out;
    out.reserve(block.size());
    for (size_t i = 0; i < block.size(); ++i)
        out.push_back(block.mapping(i));
    return out;
}

std::vector<Mapping>
enumerateCandidates(const ConvLayer &layer, const AcceleratorConfig &cfg,
                    SearchEffort effort)
{
    return collectFromSpace(CandidateSpace(layer, cfg, effort));
}

std::vector<Mapping>
enumerateCandidatesFor(const ConvLayer &layer,
                       const AcceleratorConfig &cfg, SearchEffort effort,
                       PackagePartition pkg, ChipletPartition chip)
{
    return collectFromSpace(
        CandidateSpace(layer, cfg, effort, pkg, chip));
}

} // namespace nnbaton
