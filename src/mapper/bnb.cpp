#include "mapper/bnb.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <random>
#include <unordered_map>
#include <vector>

#include "c3p/incremental.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"
#include "mapper/bound.hpp"
#include "verif/fault.hpp"

namespace nnbaton {

namespace {

/** Same slack as the exhaustive path (mapper/search.cpp): a bound may
 *  prune only when it clears the incumbent by more than float noise. */
constexpr double kPruneMargin = 1.0 + 1e-9;

/** Evaluation block cap.  Blocks ramp 1 -> 2 -> 4 -> 8 so the first
 *  (best-bound) leaf becomes the incumbent after a single evaluation,
 *  then widen for parallel throughput.  Must stay constant: block
 *  boundaries are where the incumbent refreshes, so they are part of
 *  the deterministic search schedule. */
constexpr size_t kBnbBlock = 8;

double
scoreOf(const MappingChoice &c, Objective objective)
{
    return objective == Objective::MinEnergy ? c.energy.total()
                                             : c.edp();
}

/**
 * An open node of the best-bound-first queue: either one unexpanded
 * subtree (subtree >= 0) or one concrete leaf.  Nodes are popped in
 * ascending (bound, ordinal) order; ordinals are unique across live
 * nodes (a subtree's firstOrdinal lies in its own leaf range and the
 * subtree node dies when expanded), so the order is strict and the
 * pop sequence deterministic.
 */
struct Node
{
    double bound = 0.0;
    int64_t ordinal = 0;
    int64_t subtree = -1; //!< >= 0: unexpanded subtree index
    Mapping mapping;      //!< leaf payload when subtree < 0
};

struct NodeAfter
{
    bool operator()(const Node &a, const Node &b) const
    {
        if (a.bound != b.bound)
            return a.bound > b.bound;
        return a.ordinal > b.ordinal;
    }
};

using OpenQueue =
    std::priority_queue<Node, std::vector<Node>, NodeAfter>;

/** The evolving best-so-far with the flat search's tie-breaking:
 *  lexicographic minimum of (score, enumeration ordinal). */
struct Incumbent
{
    std::optional<MappingChoice> choice;
    double score = std::numeric_limits<double>::max();
    int64_t ordinal = std::numeric_limits<int64_t>::max();

    bool accept(double s, int64_t ord) const
    {
        return !choice || s < score || (s == score && ord < ordinal);
    }
};

struct BnbCounters
{
    int64_t evaluated = 0;
    int64_t pruned = 0;
    int64_t nodesOpened = 0;
    int64_t subtreesPruned = 0;
    int64_t incumbentUpdates = 0;
    int64_t refined = 0;
    int64_t refinedPruned = 0;
};

/**
 * Drain @p open best-bound-first.  Expanding a subtree splits its
 * legal leaves by lane class: the wanted class feeds the queue, the
 * other is stashed into @p rejected_class (phase B input).  Pruning —
 * of leaves and of whole subtrees — only happens against an existing
 * incumbent, so "no incumbent at the end" proves the wanted class is
 * empty everywhere, not just unexplored.
 */
void
drainQueue(const ConvLayer &layer, const AcceleratorConfig &cfg,
           const TechnologyModel &tech, const CandidateSpace &space,
           Objective objective, const SearchOptions &search,
           ThreadPool *pool, IncrementalAnalyzer *inc, OpenQueue &open,
           bool want_full_lane,
           std::vector<CandidateSpace::Leaf> *rejected_class,
           int64_t skip_ordinal, Incumbent &best, BnbCounters &c)
{
    const bool prune = search.boundPruning;
    std::vector<Node> batch;
    std::vector<MappingChoice> slots;
    CandidateBlock expanded; // reused across subtree expansions
    size_t block_cap = 1;

    while (!open.empty()) {
        // Cancellation and fault-injection granularity: one poll per
        // evaluation block, mirroring the exhaustive path.
        if (search.cancel && search.cancel->cancelled())
            throwStatus(search.cancel->toStatus());
        if (verif::faultPlanArmed())
            verif::injectSearchBlockFault();

        batch.clear();
        while (!open.empty() && batch.size() < block_cap) {
            Node node = open.top();
            open.pop();
            if (node.subtree >= 0) {
                if (prune && best.choice &&
                    node.bound >= best.score * kPruneMargin) {
                    ++c.subtreesPruned;
                    continue;
                }
                ++c.nodesOpened;
                NNBATON_TRACE_SCOPE("mapper.bnb_expand");
                space.expandInto(static_cast<size_t>(node.subtree),
                                 expanded);
                for (size_t k = 0; k < expanded.size(); ++k) {
                    if (expanded.ordinal(k) == skip_ordinal)
                        continue; // warm-start hint, already evaluated
                    if (expanded.fullLane(k) != want_full_lane) {
                        if (rejected_class) {
                            rejected_class->push_back(
                                {expanded.mapping(k),
                                 expanded.ordinal(k),
                                 expanded.fullLane(k)});
                        }
                        continue;
                    }
                    Node ln;
                    ln.bound = scoreLowerBound(layer, cfg, tech,
                                               expanded.mapping(k),
                                               objective);
                    ln.ordinal = expanded.ordinal(k);
                    ln.mapping = expanded.mapping(k);
                    open.push(std::move(ln));
                }
                continue;
            }
            if (prune && best.choice &&
                node.bound >= best.score * kPruneMargin) {
                ++c.pruned;
                continue;
            }
            // Tier-2: a popped leaf that the closed-form bound could
            // not cut gets the refined (reuse-analysis) bound — about
            // two thirds of a full evaluation, but exact on every
            // fill count, so reload-heavy candidates whose traffic
            // the compulsory-miss floor underestimates die here
            // instead of being fully evaluated.
            if (prune && best.choice) {
                ++c.refined;
                const double refined = refinedScoreLowerBound(
                    layer, cfg, tech, node.mapping, objective);
                if (refined >= best.score * kPruneMargin) {
                    ++c.refinedPruned;
                    continue;
                }
            }
            batch.push_back(std::move(node));
        }
        if (batch.empty())
            continue;

        {
            NNBATON_TRACE_SCOPE("mapper.c3p_analysis");
            slots.resize(batch.size());
            if (pool) {
                pool->parallelFor(
                    static_cast<int64_t>(batch.size()),
                    [&](int64_t j) {
                        slots[static_cast<size_t>(j)] =
                            evaluateMapping(
                                layer, cfg, tech,
                                batch[static_cast<size_t>(j)]
                                    .mapping);
                    });
            } else if (inc) {
                for (size_t j = 0; j < batch.size(); ++j) {
                    slots[j] = evaluateMappingIncremental(
                        layer, cfg, tech, batch[j].mapping, *inc);
                }
            } else {
                for (size_t j = 0; j < batch.size(); ++j) {
                    slots[j] = evaluateMapping(layer, cfg, tech,
                                               batch[j].mapping);
                }
            }
        }
        c.evaluated += static_cast<int64_t>(batch.size());

        for (size_t j = 0; j < batch.size(); ++j) {
            const double score = scoreOf(slots[j], objective);
            if (best.accept(score, batch[j].ordinal)) {
                best.choice = std::move(slots[j]);
                best.score = score;
                best.ordinal = batch[j].ordinal;
                ++c.incumbentUpdates;
            }
        }
        block_cap = std::min(block_cap * 2, kBnbBlock);
    }
}

void
mirrorMetrics(const BnbCounters &c)
{
    static obs::Counter &m_evaluated =
        obs::MetricsRegistry::instance().counter(
            "mapper.candidates.evaluated");
    static obs::Counter &m_pruned =
        obs::MetricsRegistry::instance().counter(
            "mapper.candidates.pruned");
    static obs::Counter &m_nodes =
        obs::MetricsRegistry::instance().counter(
            "mapper.bnb.nodes_opened");
    static obs::Counter &m_subtrees =
        obs::MetricsRegistry::instance().counter(
            "mapper.bnb.subtrees_pruned");
    static obs::Counter &m_refined =
        obs::MetricsRegistry::instance().counter("mapper.bnb.refined");
    static obs::Counter &m_refined_pruned =
        obs::MetricsRegistry::instance().counter(
            "mapper.bnb.refined_pruned");
    m_evaluated.add(c.evaluated);
    m_pruned.add(c.pruned);
    m_nodes.add(c.nodesOpened);
    m_subtrees.add(c.subtreesPruned);
    m_refined.add(c.refined);
    m_refined_pruned.add(c.refinedPruned);
}

/** Deterministic per-(layer, config) fingerprint mixed into the
 *  annealing seed so distinct layers walk distinct move sequences. */
uint64_t
layerConfigFingerprint(const ConvLayer &layer,
                       const AcceleratorConfig &cfg)
{
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(layer.ho) << 32 |
        static_cast<uint32_t>(layer.wo));
    mix(static_cast<uint64_t>(layer.co) << 32 |
        static_cast<uint32_t>(layer.ci));
    mix(static_cast<uint64_t>(layer.kh) << 32 |
        static_cast<uint32_t>(layer.kw));
    mix(static_cast<uint64_t>(layer.stride) << 32 |
        static_cast<uint32_t>(layer.groups));
    mix(static_cast<uint64_t>(cfg.package.chiplets) << 32 |
        static_cast<uint32_t>(cfg.chiplet.cores));
    mix(static_cast<uint64_t>(cfg.core.lanes) << 32 |
        static_cast<uint32_t>(cfg.core.vectorSize));
    mix(static_cast<uint64_t>(cfg.core.ol1Bytes));
    mix(static_cast<uint64_t>(cfg.core.al1Bytes));
    mix(static_cast<uint64_t>(cfg.core.wl1Bytes));
    mix(static_cast<uint64_t>(cfg.chiplet.al2Bytes));
    return h;
}

} // namespace

std::optional<MappingChoice>
searchBranchAndBound(const ConvLayer &layer,
                     const AcceleratorConfig &cfg,
                     const TechnologyModel &tech,
                     const CandidateSpace &space, Objective objective,
                     const SearchOptions &search, ThreadPool *pool,
                     SearchStats *stats, const Mapping *warm_hint)
{
    NNBATON_TRACE_SCOPE("mapper.bnb");

    Incumbent best;
    BnbCounters c;
    int64_t skip_ordinal = -1;
    int64_t warm_starts = 0;

    // One incremental analyzer spans both phases: the queue pops in
    // best-bound (not enumeration) order, so many diffs fall back to
    // the full analysis, but intra-subtree runs still hit the delta
    // path.  Serial only — parallel lanes keep the full evaluation.
    std::optional<IncrementalAnalyzer> inc;
    if (!pool)
        inc.emplace(layer, cfg);

    // Warm start: a cached winner from a sibling configuration is
    // only usable if it is a leaf of *this* grid (same skeleton,
    // plane and ladder point, legal here) — then evaluating it first
    // is just a reordering of the schedule and cannot change the
    // winner.  Degraded-lane hints are dropped: they only compete
    // when no full-lane candidate exists, which is unknown up front.
    if (warm_hint) {
        if (auto located = space.locate(*warm_hint);
            located && located->fullLane) {
            MappingChoice hint_choice =
                evaluateMapping(layer, cfg, tech, located->mapping);
            best.choice = std::move(hint_choice);
            best.score = scoreOf(*best.choice, objective);
            best.ordinal = located->ordinal;
            skip_ordinal = located->ordinal;
            ++c.evaluated;
            ++c.incumbentUpdates;
            ++warm_starts;
        }
    }

    // Phase A: the full-lane class, subtrees opened lazily in
    // best-bound-first order.
    OpenQueue open;
    for (size_t i = 0; i < space.size(); ++i) {
        Node n;
        n.bound = subtreeScoreLowerBound(layer, cfg, tech,
                                         space.subtree(i), objective);
        n.ordinal = space.subtree(i).firstOrdinal;
        n.subtree = static_cast<int64_t>(i);
        open.push(std::move(n));
    }
    std::vector<CandidateSpace::Leaf> degraded;
    drainQueue(layer, cfg, tech, space, objective, search, pool,
               inc ? &*inc : nullptr, open, /*want_full_lane=*/true,
               &degraded, skip_ordinal, best, c);

    // Phase B: no full-lane incumbent means no pruning happened, so
    // every subtree was expanded and `degraded` holds the complete
    // fallback class — search it the same way.
    if (!best.choice && !degraded.empty()) {
        OpenQueue fallback;
        for (CandidateSpace::Leaf &leaf : degraded) {
            Node n;
            n.bound = scoreLowerBound(layer, cfg, tech, leaf.mapping,
                                      objective);
            n.ordinal = leaf.ordinal;
            n.mapping = std::move(leaf.mapping);
            fallback.push(std::move(n));
        }
        drainQueue(layer, cfg, tech, space, objective, search, pool,
                   inc ? &*inc : nullptr, fallback,
                   /*want_full_lane=*/false,
                   /*rejected_class=*/nullptr, skip_ordinal, best, c);
    }

    if (stats) {
        stats->evaluated += c.evaluated;
        stats->pruned += c.pruned;
        stats->nodesOpened += c.nodesOpened;
        stats->subtreesPruned += c.subtreesPruned;
        stats->incumbentUpdates += c.incumbentUpdates;
        stats->warmStarts += warm_starts;
        stats->refined += c.refined;
        stats->refinedPruned += c.refinedPruned;
    }
    mirrorMetrics(c);
    if (inc)
        mirrorIncrementalMetrics(inc->stats());
    return best.choice;
}

std::optional<MappingChoice>
searchAnneal(const ConvLayer &layer, const AcceleratorConfig &cfg,
             const TechnologyModel &tech, const CandidateSpace &space,
             Objective objective, const SearchOptions &search,
             SearchStats *stats)
{
    NNBATON_TRACE_SCOPE("mapper.anneal");
    if (space.size() == 0)
        return std::nullopt;

    // Deterministic start state: the first legal leaf in enumeration
    // order (so a zero-iteration anneal still returns something
    // legal, and equal seeds walk from equal states).
    struct Coord
    {
        size_t subtree = 0, ih = 0, iw = 0, ic = 0, order = 0;
    };
    Coord cur;
    std::optional<CandidateSpace::Leaf> init;
    for (size_t i = 0; i < space.size() && !init; ++i) {
        const CandidateSpace::Subtree &st = space.subtree(i);
        for (size_t ih = 0; ih < st.ladderH.size() && !init; ++ih) {
            for (size_t iw = 0; iw < st.ladderW.size() && !init;
                 ++iw) {
                for (size_t ic = 0; ic < st.ladderC.size() && !init;
                     ++ic) {
                    for (size_t order = 0; order < 4 && !init;
                         ++order) {
                        init = space.makeLeaf(i, ih, iw, ic, order);
                        if (init)
                            cur = {i, ih, iw, ic, order};
                    }
                }
            }
        }
    }
    if (!init)
        return std::nullopt;

    // The anneal walk is serial and its moves are single-coordinate —
    // exactly the diffs the incremental analyzer covers.
    IncrementalAnalyzer inc(layer, cfg);
    int64_t evaluated = 0;
    const auto evalLeaf = [&](const CandidateSpace::Leaf &leaf) {
        ++evaluated;
        return evaluateMappingIncremental(layer, cfg, tech,
                                          leaf.mapping, inc);
    };

    MappingChoice cur_choice = evalLeaf(*init);
    double cur_score = scoreOf(cur_choice, objective);
    MappingChoice best_choice = cur_choice;
    double best_score = cur_score;
    int64_t best_ordinal = init->ordinal;
    int64_t incumbent_updates = 1;

    // Scores are deterministic per ordinal, so revisited states skip
    // the full C3P evaluation (the evaluated counter stays a count of
    // full analyses, matching the other modes' semantics).
    std::unordered_map<int64_t, double> memo;
    memo.emplace(init->ordinal, cur_score);

    std::mt19937_64 rng(search.annealSeed ^
                        layerConfigFingerprint(layer, cfg));
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    // Geometric cooling from a tenth of the initial score down three
    // decades across the iteration budget.
    const int iters = std::max(1, search.annealIterations);
    double temp = std::max(cur_score * 0.1, 1e-12);
    const double alpha = std::pow(1e-3, 1.0 / iters);

    const auto step = [&](size_t idx, size_t size, bool up) {
        if (up)
            return idx + 1 < size ? idx + 1 : idx;
        return idx > 0 ? idx - 1 : idx;
    };

    for (int it = 0; it < iters; ++it, temp *= alpha) {
        if ((it & 31) == 0 && search.cancel &&
            search.cancel->cancelled())
            throwStatus(search.cancel->toStatus());

        Coord next = cur;
        const CandidateSpace::Subtree *st =
            &space.subtree(cur.subtree);
        switch (rng() % 5) {
          case 0: {
            next.subtree = static_cast<size_t>(rng() % space.size());
            st = &space.subtree(next.subtree);
            next.ih = std::min(next.ih, st->ladderH.size() - 1);
            next.iw = std::min(next.iw, st->ladderW.size() - 1);
            next.ic = std::min(next.ic, st->ladderC.size() - 1);
            break;
          }
          case 1:
            next.ih = step(next.ih, st->ladderH.size(), rng() & 1);
            break;
          case 2:
            next.iw = step(next.iw, st->ladderW.size(), rng() & 1);
            break;
          case 3:
            next.ic = step(next.ic, st->ladderC.size(), rng() & 1);
            break;
          default:
            next.order = static_cast<size_t>(rng() % 4);
            break;
        }

        const std::optional<CandidateSpace::Leaf> leaf =
            space.makeLeaf(next.subtree, next.ih, next.iw, next.ic,
                           next.order);
        if (!leaf)
            continue; // illegal move; keep cooling

        double score;
        std::optional<MappingChoice> choice;
        if (const auto seen = memo.find(leaf->ordinal);
            seen != memo.end()) {
            score = seen->second;
        } else {
            choice = evalLeaf(*leaf);
            score = scoreOf(*choice, objective);
            memo.emplace(leaf->ordinal, score);
        }

        if (score < best_score ||
            (score == best_score && leaf->ordinal < best_ordinal)) {
            best_choice = choice ? *choice : evalLeaf(*leaf);
            best_score = score;
            best_ordinal = leaf->ordinal;
            ++incumbent_updates;
        }

        const double delta = score - cur_score;
        if (delta <= 0.0 ||
            uniform(rng) < std::exp(-delta / std::max(temp, 1e-300))) {
            cur = next;
            cur_score = score;
        }
    }

    if (stats) {
        stats->evaluated += evaluated;
        stats->incumbentUpdates += incumbent_updates;
    }
    static obs::Counter &m_evaluated =
        obs::MetricsRegistry::instance().counter(
            "mapper.candidates.evaluated");
    m_evaluated.add(evaluated);
    mirrorIncrementalMetrics(inc.stats());
    return best_choice;
}

} // namespace nnbaton
