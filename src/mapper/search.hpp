/**
 * @file
 * The post-design mapping search: for a fixed hardware configuration,
 * find the per-layer mapping minimising energy (or EDP) by exhaustive
 * evaluation of the candidate space (paper sections IV-D, V-C).
 */

#ifndef NNBATON_MAPPER_SEARCH_HPP
#define NNBATON_MAPPER_SEARCH_HPP

#include <optional>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "cost/energy.hpp"
#include "cost/ledger.hpp"
#include "mapper/candidates.hpp"
#include "nn/model.hpp"
#include "sim/runtime.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** Search objective. */
enum class Objective
{
    MinEnergy, //!< minimise total energy (the paper's default)
    MinEdp,    //!< minimise energy-delay product
};

/** A fully evaluated mapping for one layer. */
struct MappingChoice
{
    Mapping mapping;
    AccessAnalysis analysis;
    EnergyBreakdown energy; //!< pJ
    RuntimeResult runtime;

    double edp() const { return energy.total() * runtime.cycles; }
};

/** Evaluate one specific mapping (no search). */
MappingChoice evaluateMapping(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech,
                              const Mapping &mapping,
                              const AnalysisOptions &options = {});

/**
 * Search the best mapping for one layer.  Returns std::nullopt when
 * no legal candidate exists (the configuration cannot run the layer).
 */
std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech,
            SearchEffort effort = SearchEffort::Exhaustive,
            Objective objective = Objective::MinEnergy);

/**
 * Search the best mapping for one layer restricted to a spatial
 * combination (figure 11 study).
 */
std::optional<MappingChoice>
searchLayerWithSpatial(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech, PackagePartition pkg,
                       ChipletPartition chip,
                       SearchEffort effort = SearchEffort::Exhaustive,
                       Objective objective = Objective::MinEnergy);

/** Whole-model mapping result. */
struct ModelMappingResult
{
    ModelCost cost;
    std::vector<MappingChoice> choices; //!< one per layer, model order
    bool feasible = true; //!< false if any layer had no legal mapping
};

/**
 * Map every layer of @p model with a per-layer search.  Layers with
 * identical shapes share one search (ResNet-style repeated blocks),
 * which the result re-expands to model order.
 */
ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech,
         SearchEffort effort = SearchEffort::Exhaustive,
         Objective objective = Objective::MinEnergy);

} // namespace nnbaton

#endif // NNBATON_MAPPER_SEARCH_HPP
