/**
 * @file
 * The post-design mapping search: for a fixed hardware configuration,
 * find the per-layer mapping minimising energy (or EDP) by exhaustive
 * evaluation of the candidate space (paper sections IV-D, V-C).
 */

#ifndef NNBATON_MAPPER_SEARCH_HPP
#define NNBATON_MAPPER_SEARCH_HPP

#include <optional>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "common/cancel.hpp"
#include "cost/energy.hpp"
#include "cost/ledger.hpp"
#include "mapper/candidates.hpp"
#include "nn/model.hpp"
#include "sim/runtime.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

class MappingCache; // mapper/cache.hpp
class ThreadPool;   // common/parallel.hpp

/** Search objective. */
enum class Objective
{
    MinEnergy, //!< minimise total energy (the paper's default)
    MinEdp,    //!< minimise energy-delay product
};

/**
 * Work counters for the mapping search.  All four are deterministic:
 * pruning decisions are made at fixed block boundaries independent of
 * the thread count, and the cross-design-point cache computes every
 * unique key exactly once, so serial and parallel runs report
 * identical totals.
 */
struct SearchStats
{
    int64_t evaluated = 0;   //!< candidates given the full C3P analysis
    int64_t pruned = 0;      //!< candidates skipped by the score bound
    int64_t cacheHits = 0;   //!< layer searches served from the cache
    int64_t cacheMisses = 0; //!< layer searches actually run

    SearchStats &operator+=(const SearchStats &other)
    {
        evaluated += other.evaluated;
        pruned += other.pruned;
        cacheHits += other.cacheHits;
        cacheMisses += other.cacheMisses;
        return *this;
    }
};

/** Execution options for the mapping search. */
struct SearchOptions
{
    /** Total threads (including the caller); <= 1 runs serially.
     *  Results are bit-identical across thread counts. */
    int threads = 1;

    /** Skip candidates whose cheap score lower bound (mapper/
     *  bound.hpp) cannot beat the incumbent.  Sound: never changes
     *  the selected mapping. */
    bool boundPruning = true;

    /** Record latency histograms (per-layer search time) into the
     *  obs metrics registry (the --metrics CLI flag).  Observation
     *  only: adds clock reads but never changes results. */
    bool detailedMetrics = false;

    /**
     * Cooperative cancellation, polled at prune-block boundaries and
     * between layers.  Borrowed, may be null.  A fired token unwinds
     * the search with StatusError(Cancelled / DeadlineExceeded); the
     * sweep engine maps that to a skipped design point.
     */
    const CancelToken *cancel = nullptr;
};

/** A fully evaluated mapping for one layer. */
struct MappingChoice
{
    Mapping mapping;
    AccessAnalysis analysis;
    EnergyBreakdown energy; //!< pJ
    RuntimeResult runtime;

    double edp() const { return energy.total() * runtime.cycles; }
};

/** Evaluate one specific mapping (no search). */
MappingChoice evaluateMapping(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech,
                              const Mapping &mapping,
                              const AnalysisOptions &options = {});

/**
 * Search the best mapping for one layer.  Returns std::nullopt when
 * no legal candidate exists (the configuration cannot run the layer).
 */
std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech,
            SearchEffort effort = SearchEffort::Exhaustive,
            Objective objective = Objective::MinEnergy);

/**
 * searchLayer() with explicit execution options: candidate evaluation
 * parallelised across @p search.threads lanes and (optionally)
 * score-bound pruned.  @p stats, when non-null, accumulates work
 * counters.
 */
std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech, SearchEffort effort,
            Objective objective, const SearchOptions &search,
            SearchStats *stats = nullptr);

/**
 * Search the best mapping for one layer restricted to a spatial
 * combination (figure 11 study).
 */
std::optional<MappingChoice>
searchLayerWithSpatial(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech, PackagePartition pkg,
                       ChipletPartition chip,
                       SearchEffort effort = SearchEffort::Exhaustive,
                       Objective objective = Objective::MinEnergy);

/** Whole-model mapping result. */
struct ModelMappingResult
{
    ModelCost cost;
    std::vector<MappingChoice> choices; //!< one per layer, model order
    bool feasible = true; //!< false if any layer had no legal mapping
    SearchStats stats;    //!< work counters for this call
};

/**
 * Map every layer of @p model with a per-layer search.  Layers with
 * identical shapes share one search (ResNet-style repeated blocks),
 * which the result re-expands to model order.
 */
ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech,
         SearchEffort effort = SearchEffort::Exhaustive,
         Objective objective = Objective::MinEnergy);

/**
 * mapModel() with explicit execution options.  When @p cache is
 * non-null the per-layer memoization uses that (thread-safe,
 * cross-design-point) cache instead of a private one, so repeated
 * shapes are searched once per unique (shape, config) across every
 * caller sharing the cache — the DSE sweep's dominant saving.
 */
ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech, SearchEffort effort,
         Objective objective, const SearchOptions &search,
         MappingCache *cache = nullptr);

} // namespace nnbaton

#endif // NNBATON_MAPPER_SEARCH_HPP
