/**
 * @file
 * The post-design mapping search: for a fixed hardware configuration,
 * find the per-layer mapping minimising energy (or EDP) by exhaustive
 * evaluation of the candidate space (paper sections IV-D, V-C).
 */

#ifndef NNBATON_MAPPER_SEARCH_HPP
#define NNBATON_MAPPER_SEARCH_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "common/cancel.hpp"
#include "cost/energy.hpp"
#include "cost/ledger.hpp"
#include "mapper/candidates.hpp"
#include "nn/model.hpp"
#include "sim/runtime.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

class MappingCache;        // mapper/cache.hpp
class ThreadPool;          // common/parallel.hpp
class IncrementalAnalyzer; // c3p/incremental.hpp

/** Search objective. */
enum class Objective
{
    MinEnergy, //!< minimise total energy (the paper's default)
    MinEdp,    //!< minimise energy-delay product
};

/**
 * Search strategy over the candidate tree (docs/search.md).
 *
 * Exhaustive and Bnb return bit-identical winners: the branch-and-
 * bound search only skips candidates its lower bound proves cannot
 * win, and ties break on the candidate's position in enumeration
 * order in both modes.  Anneal is an opt-in stochastic mode whose
 * result depends on SearchOptions::annealSeed.
 */
enum class SearchMode
{
    Exhaustive, //!< flat enumerate-then-evaluate with per-candidate
                //!< bound pruning (the historical default)
    Bnb,        //!< best-bound-first branch and bound over the lazy
                //!< candidate tree; same winner, far fewer evaluations
    Anneal,     //!< seeded simulated annealing; approximate
};

const char *toString(SearchMode mode);

/**
 * Work counters for the mapping search.  All counters are
 * deterministic: pruning decisions are made at fixed block boundaries
 * independent of the thread count, and the cross-design-point cache
 * computes every unique key exactly once, so serial and parallel runs
 * report identical totals.
 */
struct SearchStats
{
    int64_t evaluated = 0;   //!< candidates given the full C3P analysis
    int64_t pruned = 0;      //!< candidates skipped by the score bound
    int64_t cacheHits = 0;   //!< layer searches served from the cache
    int64_t cacheMisses = 0; //!< layer searches actually run

    // Branch-and-bound tree counters (zero in the other modes).
    int64_t nodesOpened = 0;      //!< subtrees expanded into leaves
    int64_t subtreesPruned = 0;   //!< subtrees discarded unexpanded
    int64_t incumbentUpdates = 0; //!< times the best-so-far improved
    int64_t warmStarts = 0;       //!< searches seeded from a cache hit
    int64_t refined = 0;          //!< tier-2 refined bounds computed
    int64_t refinedPruned = 0;    //!< candidates cut by the tier-2 bound

    SearchStats &operator+=(const SearchStats &other)
    {
        evaluated += other.evaluated;
        pruned += other.pruned;
        cacheHits += other.cacheHits;
        cacheMisses += other.cacheMisses;
        nodesOpened += other.nodesOpened;
        subtreesPruned += other.subtreesPruned;
        incumbentUpdates += other.incumbentUpdates;
        warmStarts += other.warmStarts;
        refined += other.refined;
        refinedPruned += other.refinedPruned;
        return *this;
    }
};

/** Execution options for the mapping search. */
struct SearchOptions
{
    /** Total threads (including the caller); <= 1 runs serially.
     *  Results are bit-identical across thread counts. */
    int threads = 1;

    /** Skip candidates whose cheap score lower bound (mapper/
     *  bound.hpp) cannot beat the incumbent.  Sound: never changes
     *  the selected mapping. */
    bool boundPruning = true;

    /** Search strategy (docs/search.md).  Bnb matches Exhaustive's
     *  winner bit for bit; Anneal is approximate and seeded. */
    SearchMode mode = SearchMode::Exhaustive;

    /**
     * Seed the branch-and-bound incumbent from a cache entry for the
     * same layer shape under a different configuration when one is
     * resident (the hinted mapping is located in this search's own
     * candidate grid and evaluated first, so the returned winner
     * never changes).  Off by default: a tighter early incumbent
     * shifts the evaluated/pruned split by whatever happens to be
     * cached, so deterministic-counter contexts (the parallel sweep)
     * must leave this off.  The serving daemon turns it on.
     */
    bool warmStart = false;

    /** RNG seed for SearchMode::Anneal; the per-layer RNG mixes this
     *  with the layer/config fingerprint so equal seeds reproduce
     *  equal results. */
    uint64_t annealSeed = 1;

    /** Annealing move budget per layer search. */
    int annealIterations = 400;

    /** Record latency histograms (per-layer search time) into the
     *  obs metrics registry (the --metrics CLI flag).  Observation
     *  only: adds clock reads but never changes results. */
    bool detailedMetrics = false;

    /**
     * Cooperative cancellation, polled at prune-block boundaries and
     * between layers.  Borrowed, may be null.  A fired token unwinds
     * the search with StatusError(Cancelled / DeadlineExceeded); the
     * sweep engine maps that to a skipped design point.
     */
    const CancelToken *cancel = nullptr;
};

/** A fully evaluated mapping for one layer. */
struct MappingChoice
{
    Mapping mapping;
    AccessAnalysis analysis;
    EnergyBreakdown energy; //!< pJ
    RuntimeResult runtime;

    double edp() const { return energy.total() * runtime.cycles; }
};

/** Evaluate one specific mapping (no search). */
MappingChoice evaluateMapping(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech,
                              const Mapping &mapping,
                              const AnalysisOptions &options = {});

/**
 * evaluateMapping() through the delta-aware incremental evaluator:
 * @p state carries the previous candidate's cached per-level C3P
 * terms, so enumeration-neighbour candidates skip most of the
 * analysis.  Bit-identical to evaluateMapping() on legal mappings
 * (the serial search lanes use this; see c3p/incremental.hpp).
 */
MappingChoice evaluateMappingIncremental(const ConvLayer &layer,
                                         const AcceleratorConfig &cfg,
                                         const TechnologyModel &tech,
                                         const Mapping &mapping,
                                         IncrementalAnalyzer &state);

/**
 * evaluateMappingIncremental() writing into caller-owned storage, so
 * a hot evaluation loop that feeds the same @p out slot back in keeps
 * the analysis vectors' capacity and allocates nothing in the steady
 * state.  All fields are fully (re)assigned.
 */
void evaluateMappingIncrementalInto(const ConvLayer &layer,
                                    const AcceleratorConfig &cfg,
                                    const TechnologyModel &tech,
                                    const Mapping &mapping,
                                    IncrementalAnalyzer &state,
                                    MappingChoice &out);

/**
 * Search the best mapping for one layer.  Returns std::nullopt when
 * no legal candidate exists (the configuration cannot run the layer).
 */
std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech,
            SearchEffort effort = SearchEffort::Exhaustive,
            Objective objective = Objective::MinEnergy);

/**
 * searchLayer() with explicit execution options: candidate evaluation
 * parallelised across @p search.threads lanes and (optionally)
 * score-bound pruned.  @p stats, when non-null, accumulates work
 * counters.
 */
std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech, SearchEffort effort,
            Objective objective, const SearchOptions &search,
            SearchStats *stats = nullptr);

/**
 * Search the best mapping for one layer restricted to a spatial
 * combination (figure 11 study).
 */
std::optional<MappingChoice>
searchLayerWithSpatial(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech, PackagePartition pkg,
                       ChipletPartition chip,
                       SearchEffort effort = SearchEffort::Exhaustive,
                       Objective objective = Objective::MinEnergy);

/** Whole-model mapping result. */
struct ModelMappingResult
{
    ModelCost cost;
    std::vector<MappingChoice> choices; //!< one per layer, model order
    bool feasible = true; //!< false if any layer had no legal mapping
    SearchStats stats;    //!< work counters for this call
};

/**
 * Map every layer of @p model with a per-layer search.  Layers with
 * identical shapes share one search (ResNet-style repeated blocks),
 * which the result re-expands to model order.
 */
ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech,
         SearchEffort effort = SearchEffort::Exhaustive,
         Objective objective = Objective::MinEnergy);

/**
 * mapModel() with explicit execution options.  When @p cache is
 * non-null the per-layer memoization uses that (thread-safe,
 * cross-design-point) cache instead of a private one, so repeated
 * shapes are searched once per unique (shape, config) across every
 * caller sharing the cache — the DSE sweep's dominant saving.
 */
ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech, SearchEffort effort,
         Objective objective, const SearchOptions &search,
         MappingCache *cache = nullptr);

} // namespace nnbaton

#endif // NNBATON_MAPPER_SEARCH_HPP
