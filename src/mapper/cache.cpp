#include "mapper/cache.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace nnbaton {

namespace {

/**
 * Cache observability: aggregate and per-shard hit/miss counters plus
 * the eviction count, registered once and cached so the per-lookup
 * cost is a few relaxed atomic increments.  The per-shard split shows
 * whether the key hash spreads the sweep's load (a hot shard means
 * serialized lookups).
 */
struct CacheMetrics
{
    obs::Counter *hits;
    obs::Counter *misses;
    obs::Counter *evicted;
    std::array<obs::Counter *, MappingCache::kShards> shardHits;
    std::array<obs::Counter *, MappingCache::kShards> shardMisses;

    CacheMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        hits = &reg.counter("mapper.cache.hits");
        misses = &reg.counter("mapper.cache.misses");
        evicted = &reg.counter("mapper.cache.evicted");
        for (size_t s = 0; s < MappingCache::kShards; ++s) {
            shardHits[s] = &reg.counter(
                strprintf("mapper.cache.shard%02zu.hits", s));
            shardMisses[s] = &reg.counter(
                strprintf("mapper.cache.shard%02zu.misses", s));
        }
    }
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

} // namespace

MappingCache::Key
MappingCache::makeKey(const ConvLayer &layer,
                      const AcceleratorConfig &cfg,
                      const TechnologyModel &tech, SearchEffort effort,
                      Objective objective, SearchMode mode,
                      uint64_t annealSeed)
{
    Key k;
    k.ho = layer.ho;
    k.wo = layer.wo;
    k.co = layer.co;
    k.ci = layer.ci;
    k.kh = layer.kh;
    k.kw = layer.kw;
    k.stride = layer.stride;
    k.groups = layer.groups;
    k.batch = layer.batch;
    k.postOps = layer.postOps;
    k.chiplets = cfg.package.chiplets;
    k.cores = cfg.chiplet.cores;
    k.lanes = cfg.core.lanes;
    k.vectorSize = cfg.core.vectorSize;
    k.ol1Bytes = cfg.core.ol1Bytes;
    k.al1Bytes = cfg.core.al1Bytes;
    k.wl1Bytes = cfg.core.wl1Bytes;
    k.al2Bytes = cfg.chiplet.al2Bytes;
    k.techFingerprint = tech.fingerprint();
    k.effort = static_cast<int>(effort);
    k.objective = static_cast<int>(objective);
    // Exhaustive and Bnb share entries (bit-identical winners);
    // Anneal keys separately, per seed.
    if (mode == SearchMode::Anneal) {
        k.mode = 1;
        k.annealSeed = annealSeed;
    }
    return k;
}

size_t
MappingCache::KeyHash::operator()(const Key &key) const
{
    // FNV-1a over the key fields; collisions only cost a comparison.
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(key.ho) << 32 |
        static_cast<uint32_t>(key.wo));
    mix(static_cast<uint64_t>(key.co) << 32 |
        static_cast<uint32_t>(key.ci));
    mix(static_cast<uint64_t>(key.kh) << 32 |
        static_cast<uint32_t>(key.kw));
    mix(static_cast<uint64_t>(key.stride) << 32 |
        static_cast<uint32_t>(key.groups));
    mix(static_cast<uint64_t>(key.batch) << 32 |
        static_cast<uint32_t>(key.postOps));
    mix(static_cast<uint64_t>(key.chiplets) << 32 |
        static_cast<uint32_t>(key.cores));
    mix(static_cast<uint64_t>(key.lanes) << 32 |
        static_cast<uint32_t>(key.vectorSize));
    mix(static_cast<uint64_t>(key.ol1Bytes));
    mix(static_cast<uint64_t>(key.al1Bytes));
    mix(static_cast<uint64_t>(key.wl1Bytes));
    mix(static_cast<uint64_t>(key.al2Bytes));
    mix(key.techFingerprint);
    mix(static_cast<uint64_t>(key.effort) << 32 |
        static_cast<uint32_t>(key.objective));
    mix(static_cast<uint64_t>(key.mode));
    mix(key.annealSeed);
    return static_cast<size_t>(h);
}

std::optional<Mapping>
MappingCache::findShapeMatch(const Key &key) const
{
    NNBATON_TRACE_SCOPE("mapper.cache_shape_match");
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.m);
        // The LRU list front-to-back gives a deterministic scan order
        // for a given lookup history (recently used siblings first).
        for (const Key &k : shard.lru) {
            if (k.ho != key.ho || k.wo != key.wo || k.co != key.co ||
                k.ci != key.ci || k.kh != key.kh || k.kw != key.kw ||
                k.stride != key.stride || k.groups != key.groups ||
                k.batch != key.batch || k.postOps != key.postOps)
                continue;
            if (k.techFingerprint != key.techFingerprint ||
                k.objective != key.objective || k.mode != 0)
                continue;
            if (k == key)
                continue; // the caller's own key is a plain hit
            const auto it = shard.map.find(k);
            if (it == shard.map.end() || !it->second->published ||
                !it->second->value)
                continue;
            return it->second->value->mapping;
        }
    }
    return std::nullopt;
}

std::optional<MappingChoice>
MappingCache::lookupOrCompute(
    const Key &key,
    const std::function<std::optional<MappingChoice>()> &search,
    bool *was_hit)
{
    const size_t shard_idx = KeyHash{}(key) % kShards;
    Shard &shard = shards_[shard_idx];
    std::shared_ptr<Entry> entry;
    {
        NNBATON_TRACE_SCOPE("mapper.cache_lookup");
        std::lock_guard<std::mutex> lock(shard.m);
        std::shared_ptr<Entry> &slot = shard.map[key];
        if (!slot) {
            slot = std::make_shared<Entry>();
            shard.lru.push_front(key);
            slot->lruIt = shard.lru.begin();
        } else {
            // Touch: most-recently-used entries live at the front.
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             slot->lruIt);
        }
        entry = slot;
    }
    bool computed = false;
    std::call_once(entry->once, [&] {
        entry->value = search();
        computed = true;
    });
    if (computed) {
        // Publish: account the entry's bytes and shed LRU tails if
        // the shard is now over its share of the cap.  The entry may
        // have been evicted while the search ran (another thread
        // pushed the shard over); it is then simply not re-accounted.
        std::lock_guard<std::mutex> lock(shard.m);
        auto it = shard.map.find(key);
        if (it != shard.map.end() && it->second == entry) {
            entry->published = true;
            shard.bytes += kEntryBytes;
            evictLocked(shard);
        }
    }
    CacheMetrics &cm = cacheMetrics();
    (computed ? cm.misses : cm.hits)->add();
    (computed ? cm.shardMisses : cm.shardHits)[shard_idx]->add();
    (computed ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    if (was_hit)
        *was_hit = !computed;
    return entry->value;
}

void
MappingCache::evictLocked(Shard &shard)
{
    const int64_t cap = capacityBytes_.load(std::memory_order_relaxed);
    if (cap <= 0)
        return;
    const int64_t share =
        std::max<int64_t>(cap / static_cast<int64_t>(kShards),
                          kEntryBytes);
    auto it = shard.lru.end();
    while (shard.bytes > share && it != shard.lru.begin()) {
        --it;
        auto slot = shard.map.find(*it);
        if (slot == shard.map.end() || !slot->second->published)
            continue; // still being computed (or stale); skip
        shard.map.erase(slot);
        it = shard.lru.erase(it);
        shard.bytes -= kEntryBytes;
        evictions_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().evicted->add();
    }
}

void
MappingCache::setCapacity(int64_t max_bytes)
{
    capacityBytes_.store(max_bytes < 0 ? 0 : max_bytes,
                         std::memory_order_relaxed);
    if (max_bytes > 0) {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.m);
            evictLocked(shard);
        }
    }
}

size_t
MappingCache::size() const
{
    size_t n = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.m);
        n += shard.map.size();
    }
    return n;
}

int64_t
MappingCache::bytes() const
{
    int64_t n = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.m);
        n += shard.bytes;
    }
    return n;
}

} // namespace nnbaton
