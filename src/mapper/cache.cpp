#include "mapper/cache.hpp"

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace nnbaton {

namespace {

/**
 * Cache observability: aggregate and per-shard hit/miss counters,
 * registered once and cached so the per-lookup cost is two relaxed
 * atomic increments.  The per-shard split shows whether the key hash
 * spreads the sweep's load (a hot shard means serialized lookups).
 */
struct CacheMetrics
{
    obs::Counter *hits;
    obs::Counter *misses;
    std::array<obs::Counter *, MappingCache::kShards> shardHits;
    std::array<obs::Counter *, MappingCache::kShards> shardMisses;

    CacheMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        hits = &reg.counter("mapper.cache.hits");
        misses = &reg.counter("mapper.cache.misses");
        for (size_t s = 0; s < MappingCache::kShards; ++s) {
            shardHits[s] = &reg.counter(
                strprintf("mapper.cache.shard%02zu.hits", s));
            shardMisses[s] = &reg.counter(
                strprintf("mapper.cache.shard%02zu.misses", s));
        }
    }
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

} // namespace

MappingCache::Key
MappingCache::makeKey(const ConvLayer &layer,
                      const AcceleratorConfig &cfg, SearchEffort effort,
                      Objective objective)
{
    Key k;
    k.ho = layer.ho;
    k.wo = layer.wo;
    k.co = layer.co;
    k.ci = layer.ci;
    k.kh = layer.kh;
    k.kw = layer.kw;
    k.stride = layer.stride;
    k.groups = layer.groups;
    k.chiplets = cfg.package.chiplets;
    k.cores = cfg.chiplet.cores;
    k.lanes = cfg.core.lanes;
    k.vectorSize = cfg.core.vectorSize;
    k.ol1Bytes = cfg.core.ol1Bytes;
    k.al1Bytes = cfg.core.al1Bytes;
    k.wl1Bytes = cfg.core.wl1Bytes;
    k.al2Bytes = cfg.chiplet.al2Bytes;
    k.effort = static_cast<int>(effort);
    k.objective = static_cast<int>(objective);
    return k;
}

size_t
MappingCache::KeyHash::operator()(const Key &key) const
{
    // FNV-1a over the key fields; collisions only cost a comparison.
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(key.ho) << 32 |
        static_cast<uint32_t>(key.wo));
    mix(static_cast<uint64_t>(key.co) << 32 |
        static_cast<uint32_t>(key.ci));
    mix(static_cast<uint64_t>(key.kh) << 32 |
        static_cast<uint32_t>(key.kw));
    mix(static_cast<uint64_t>(key.stride) << 32 |
        static_cast<uint32_t>(key.groups));
    mix(static_cast<uint64_t>(key.chiplets) << 32 |
        static_cast<uint32_t>(key.cores));
    mix(static_cast<uint64_t>(key.lanes) << 32 |
        static_cast<uint32_t>(key.vectorSize));
    mix(static_cast<uint64_t>(key.ol1Bytes));
    mix(static_cast<uint64_t>(key.al1Bytes));
    mix(static_cast<uint64_t>(key.wl1Bytes));
    mix(static_cast<uint64_t>(key.al2Bytes));
    mix(static_cast<uint64_t>(key.effort) << 32 |
        static_cast<uint32_t>(key.objective));
    return static_cast<size_t>(h);
}

const std::optional<MappingChoice> &
MappingCache::lookupOrCompute(
    const Key &key,
    const std::function<std::optional<MappingChoice>()> &search,
    bool *was_hit)
{
    const size_t shard_idx = KeyHash{}(key) % kShards;
    Shard &shard = shards_[shard_idx];
    std::shared_ptr<Entry> entry;
    {
        NNBATON_TRACE_SCOPE("mapper.cache_lookup");
        std::lock_guard<std::mutex> lock(shard.m);
        std::shared_ptr<Entry> &slot = shard.map[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    bool computed = false;
    std::call_once(entry->once, [&] {
        entry->value = search();
        computed = true;
    });
    CacheMetrics &cm = cacheMetrics();
    (computed ? cm.misses : cm.hits)->add();
    (computed ? cm.shardMisses : cm.shardHits)[shard_idx]->add();
    if (was_hit)
        *was_hit = !computed;
    return entry->value;
}

size_t
MappingCache::size() const
{
    size_t n = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.m);
        n += shard.map.size();
    }
    return n;
}

} // namespace nnbaton
