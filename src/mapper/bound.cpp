#include "mapper/bound.hpp"

#include <algorithm>

#include "common/util.hpp"
#include "sim/runtime.hpp"

namespace nnbaton {

namespace {

/**
 * Input-footprint bits of one output slice: the contiguous
 * halo-inclusive input extent the C3P footprint model charges for
 * producing @p shape, which floors every activation fill of a buffer
 * whose nest covers that slice.  Grouped layers scale the channel
 * need by the output-channel share (a floor of the groups actually
 * touched).
 */
double
actFootprintBits(const ConvLayer &layer, const WorkShape &shape)
{
    const double hi = inputExtent(shape.ho, layer.kh, layer.stride);
    const double wi = inputExtent(shape.wo, layer.kw, layer.stride);
    const double ci =
        layer.groups == 1
            ? static_cast<double>(layer.ci)
            : static_cast<double>(layer.ci) * shape.co / layer.co;
    return hi * wi * ci * 8.0;
}

} // namespace

double
energyLowerBound(const ConvLayer &layer, const AcceleratorConfig &cfg,
                 const TechnologyModel &tech, const Mapping &mapping,
                 const AnalysisOptions &options)
{
    const MappingShapes s = deriveShapes(layer, cfg, mapping);

    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;
    const int cw = mapping.chipChannelWays;
    const int pw = mapping.chipSplit.parts();
    const bool chan = mapping.pkgSpatial == PackagePartition::Channel;

    const double w_bits = layer.weightVolume() * 8.0;
    const double out_bits = layer.outputVolume() * 8.0;
    const int64_t macs = layer.macs();

    // The accounting analyses one representative chiplet / core and
    // multiplies by N_P (resp. N_C), so the cold-miss floor of each
    // fill count is the representative macro's input footprint.
    const double chip_act = actFootprintBits(layer, s.chipletMacro);
    const double core_act = actFootprintBits(layer, s.coreMacro);

    const bool acts_shared = options.rotationSharing && chan && np > 1;
    const bool weights_shared =
        options.rotationSharing && !chan && np > 1;

    EnergyBreakdown e;

    // DRAM: outputs are written exactly once; weights are compulsory
    // (>= one read of every weight regardless of sharing); the shared
    // activations of a rotating C-type split hit DRAM from one
    // chiplet only, otherwise every chiplet loads its own need.
    const double dram_act =
        acts_shared ? chip_act : chip_act * np;
    e.dram = (dram_act + w_bits + out_bits) * tech.dramEnergyPerBit;

    // Ring: rotation forwards the shared tensor (N_P - 1) times.
    double d2d = 0.0;
    if (acts_shared)
        d2d = chip_act * (np - 1);
    else if (weights_shared)
        d2d = w_bits * (np - 1);
    e.d2d = d2d * tech.d2dEnergyPerBit;

    // A-L2: each of the N_P chiplets writes its macro's input once;
    // reads are floored by the per-core fills (pw planar streams per
    // chiplet thanks to multicast).
    e.al2 = (chip_act * np + core_act * pw * np) *
            tech.sramEnergyPerBit(cfg.chiplet.al2Bytes);

    // A-L1 writes: all N_C cores fill their macro's input at least
    // once.  Reads are exact: the active lanes share one P-wide
    // activation vector per cycle (c3p/access.cpp).
    const double al1_w = core_act * nc * np;
    // Integer division mirrors the accounting exactly; rounding up
    // here could push the bound above the true score.
    const double al1_r = static_cast<double>(
        macs * 8 / std::max(1, s.coreTile.co));
    e.al1 = (al1_w + al1_r) * tech.sramEnergyPerBit(cfg.core.al1Bytes);

    // W-L1 writes: every weight enters some pool at least once; a
    // P-type package split replicates the full set per chiplet.
    // Reads are exact: each core tile consumes its weights once.
    const double wl1_w = w_bits * ((!chan && np > 1) ? np : 1);
    const double w_per_tile = static_cast<double>(s.coreTile.co) *
                              layer.ciPerGroup() * layer.kh * layer.kw;
    const double wl1_r = static_cast<double>(s.coreTilesPerChiplet()) *
                         cw * w_per_tile * 8.0 * np;
    e.wl1 = (wl1_w + wl1_r) * tech.sramEnergyPerBit(cfg.core.wl1Bytes);

    // O-L1 and O-L2 are exact closed forms of the accounting.
    const int p = std::min<int>(cfg.core.vectorSize, layer.ciPerGroup());
    e.ol1 = (ceilDiv(macs, p) * 24.0 + layer.outputVolume() * 24.0) *
            tech.rfEnergyPerBitRmw;
    e.ol2 = 2.0 * out_bits *
            tech.sramEnergyPerBit(
                std::max<int64_t>(s.chipletTile.volume(), 1024));

    e.mac = static_cast<double>(macs) * tech.macEnergyPerOp;
    return e.total();
}

double
scoreLowerBound(const ConvLayer &layer, const AcceleratorConfig &cfg,
                const TechnologyModel &tech, const Mapping &mapping,
                Objective objective, const AnalysisOptions &options)
{
    const double energy =
        energyLowerBound(layer, cfg, tech, mapping, options);
    if (objective == Objective::MinEnergy)
        return energy;
    const MappingShapes s = deriveShapes(layer, cfg, mapping);
    return energy *
           static_cast<double>(computeCycles(layer, cfg, s));
}

} // namespace nnbaton
