#include "mapper/bound.hpp"

#include <algorithm>

#include "common/util.hpp"
#include "cost/energy.hpp"
#include "sim/runtime.hpp"

namespace nnbaton {

namespace {

/**
 * Input bits actually touched producing one output slice, the floor
 * of every activation fill of a buffer whose nest covers that slice.
 * Per dimension this is the halo-inclusive extent (ho-1)*s + kh while
 * windows overlap, but once the stride exceeds the kernel the windows
 * are disjoint and only ho*kh rows are ever read — the extent then
 * counts skipped-over rows and stops being a floor (the access
 * accounting charges touched elements only), so take the smaller.
 * Grouped layers scale the channel need by the output-channel share
 * (a floor of the groups actually touched).
 */
double
actFootprintBits(const ConvLayer &layer, const WorkShape &shape)
{
    const double hi =
        std::min(inputExtent(shape.ho, layer.kh, layer.stride),
                 shape.ho * layer.kh);
    const double wi =
        std::min(inputExtent(shape.wo, layer.kw, layer.stride),
                 shape.wo * layer.kw);
    const double ci =
        layer.groups == 1
            ? static_cast<double>(layer.ci)
            : static_cast<double>(layer.ci) * shape.co / layer.co;
    return hi * wi * ci * 8.0;
}

/**
 * Cycle floor shared by both EDP bounds.  estimateRuntime() streams
 * each chiplet's DRAM share through its PHY and its ring share
 * through its link (tile latency is the max of the phases, summed
 * over tiles), so total cycles >= traffic / (N_P * port width) for
 * either port — and >= the exact compute cycles.  Feeding the
 * *bounded* traffic (never more than the accounted bits) keeps the
 * floor sound.
 */
double
cycleFloor(const AcceleratorConfig &cfg, const TechnologyModel &tech,
           double compute_cycles, double dram_bits, double d2d_bits)
{
    const double np = cfg.package.chiplets;
    const double dram =
        dram_bits / (np * static_cast<double>(tech.dramBitsPerCycle));
    const double ring =
        cfg.package.chiplets > 1
            ? d2d_bits /
                  (np * static_cast<double>(tech.d2dBitsPerCycle))
            : 0.0;
    return std::max({compute_cycles, dram, ring});
}

} // namespace

namespace {

/** Energy floor plus the DRAM / ring traffic floors it was built
 *  from (the EDP bound reuses the traffic for its cycle floor). */
struct EnergyFloor
{
    double energy = 0.0;
    double dramBits = 0.0;
    double d2dBits = 0.0;
};

EnergyFloor
energyFloorOf(const ConvLayer &layer, const AcceleratorConfig &cfg,
              const TechnologyModel &tech, const MappingShapes &s,
              const Mapping &mapping, const AnalysisOptions &options)
{

    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;
    const int cw = mapping.chipChannelWays;
    const int pw = mapping.chipSplit.parts();
    const bool chan = mapping.pkgSpatial == PackagePartition::Channel;

    const double w_bits = layer.weightVolume() * 8.0;
    const double out_bits = layer.outputVolume() * 8.0;
    const int64_t macs = layer.macs();

    // The accounting analyses one representative chiplet / core and
    // multiplies by N_P (resp. N_C), so the cold-miss floor of each
    // fill count is the representative macro's input footprint.
    const double chip_act = actFootprintBits(layer, s.chipletMacro);
    const double core_act = actFootprintBits(layer, s.coreMacro);

    const bool acts_shared = options.rotationSharing && chan && np > 1;
    const bool weights_shared =
        options.rotationSharing && !chan && np > 1;

    EnergyBreakdown e;

    // DRAM: outputs are written exactly once; weights are compulsory
    // (>= one read of every weight regardless of sharing); the shared
    // activations of a rotating C-type split hit DRAM from one
    // chiplet only, otherwise every chiplet loads its own need.
    const double dram_act =
        acts_shared ? chip_act : chip_act * np;
    e.dram = (dram_act + w_bits + out_bits) * tech.dramEnergyPerBit;

    // Ring: rotation forwards the shared tensor (N_P - 1) times.
    double d2d = 0.0;
    if (acts_shared)
        d2d = chip_act * (np - 1);
    else if (weights_shared)
        d2d = w_bits * (np - 1);
    e.d2d = d2d * tech.d2dEnergyPerBit;

    // A-L2: each of the N_P chiplets writes its macro's input once;
    // reads are floored by the per-core fills (pw planar streams per
    // chiplet thanks to multicast).
    e.al2 = (chip_act * np + core_act * pw * np) *
            tech.sramEnergyPerBit(cfg.chiplet.al2Bytes);

    // A-L1 writes: all N_C cores fill their macro's input at least
    // once.  Reads are exact: the active lanes share one P-wide
    // activation vector per cycle (c3p/access.cpp).
    const double al1_w = core_act * nc * np;
    // Integer division mirrors the accounting exactly; rounding up
    // here could push the bound above the true score.
    const double al1_r = static_cast<double>(
        macs * 8 / std::max(1, s.coreTile.co));
    e.al1 = (al1_w + al1_r) * tech.sramEnergyPerBit(cfg.core.al1Bytes);

    // W-L1 writes: every weight enters some pool at least once; a
    // P-type package split replicates the full set per chiplet.
    // Reads are exact: each core tile consumes its weights once.
    const double wl1_w = w_bits * ((!chan && np > 1) ? np : 1);
    const double w_per_tile = static_cast<double>(s.coreTile.co) *
                              layer.ciPerGroup() * layer.kh * layer.kw;
    const double wl1_r = static_cast<double>(s.coreTilesPerChiplet()) *
                         cw * w_per_tile * 8.0 * np;
    e.wl1 = (wl1_w + wl1_r) * tech.sramEnergyPerBit(cfg.core.wl1Bytes);

    // O-L1 and O-L2 are exact closed forms of the accounting.
    const int p = std::min<int>(cfg.core.vectorSize, layer.ciPerGroup());
    e.ol1 = (ceilDiv(macs, p) * 24.0 + layer.outputVolume() * 24.0) *
            tech.rfEnergyPerBitRmw;
    e.ol2 = 2.0 * out_bits *
            tech.sramEnergyPerBit(
                std::max<int64_t>(s.chipletTile.volume(), 1024));

    e.mac = static_cast<double>(macs) * tech.macEnergyPerOp;
    // Vector-ALU passes are mapping-independent, so the exact term is
    // free tightness.
    e.vector = static_cast<double>(layer.vectorOps()) *
               tech.vectorOpEnergyPerOp;
    return EnergyFloor{e.total(), dram_act + w_bits + out_bits, d2d};
}

} // namespace

double
energyLowerBound(const ConvLayer &layer, const AcceleratorConfig &cfg,
                 const TechnologyModel &tech, const Mapping &mapping,
                 const AnalysisOptions &options)
{
    const MappingShapes s = deriveShapes(layer, cfg, mapping);
    return energyFloorOf(layer, cfg, tech, s, mapping, options).energy;
}

double
scoreLowerBound(const ConvLayer &layer, const AcceleratorConfig &cfg,
                const TechnologyModel &tech, const Mapping &mapping,
                Objective objective, const AnalysisOptions &options)
{
    const MappingShapes s = deriveShapes(layer, cfg, mapping);
    const EnergyFloor f =
        energyFloorOf(layer, cfg, tech, s, mapping, options);
    if (objective == Objective::MinEnergy)
        return f.energy;
    return f.energy *
           cycleFloor(cfg, tech,
                      static_cast<double>(computeCycles(layer, cfg, s)),
                      f.dramBits, f.d2dBits);
}

double
subtreeScoreLowerBound(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech,
                       const CandidateSpace::Subtree &st,
                       Objective objective,
                       const AnalysisOptions &options)
{
    const int np = cfg.package.chiplets;
    const int nc = cfg.chiplet.cores;
    const int cw = st.cw;
    const int pw = st.chipSplit.parts();
    const bool chan = st.pkg == PackagePartition::Channel;

    const double w_bits = layer.weightVolume() * 8.0;
    const double out_bits = layer.outputVolume() * 8.0;
    const int64_t macs = layer.macs();

    // Reachable chiplet-tile range: ladders ascend and tiles clamp to
    // the macro, so the componentwise extremes are the first and last
    // rungs.  Every term below takes its minimum over [tile_min,
    // tile_max]; the ladder-dependent quantities are all monotone in
    // the tile, so the extremes bound the whole grid.
    const auto clampTile = [&](int rh, int rw, int rc) {
        return WorkShape{std::min(st.baseH * rh, st.macro.ho),
                         std::min(st.baseW * rw, st.macro.wo),
                         std::min(st.baseC * rc, st.macro.co)};
    };
    const WorkShape tile_min =
        clampTile(st.ladderH.front(), st.ladderW.front(),
                  st.ladderC.front());
    const WorkShape tile_max =
        clampTile(st.ladderH.back(), st.ladderW.back(),
                  st.ladderC.back());
    const auto coreMacroOf = [&](const WorkShape &t) {
        return WorkShape{
            static_cast<int>(ceilDiv(t.ho, st.chipSplit.fh)),
            static_cast<int>(ceilDiv(t.wo, st.chipSplit.fw)),
            static_cast<int>(ceilDiv(t.co, cw))};
    };
    const WorkShape cm_min = coreMacroOf(tile_min);
    const WorkShape cm_max = coreMacroOf(tile_max);

    // The macro workload is fixed across the subtree, so the DRAM and
    // ring terms are the same floors as the per-candidate bound; the
    // per-core fills are floored at the smallest reachable core macro.
    const double chip_act = actFootprintBits(layer, st.macro);
    const double core_act_min = actFootprintBits(layer, cm_min);

    const bool acts_shared = options.rotationSharing && chan && np > 1;
    const bool weights_shared =
        options.rotationSharing && !chan && np > 1;

    EnergyBreakdown e;
    const double dram_act = acts_shared ? chip_act : chip_act * np;
    e.dram = (dram_act + w_bits + out_bits) * tech.dramEnergyPerBit;

    double d2d = 0.0;
    if (acts_shared)
        d2d = chip_act * (np - 1);
    else if (weights_shared)
        d2d = w_bits * (np - 1);
    e.d2d = d2d * tech.d2dEnergyPerBit;

    e.al2 = (chip_act * np + core_act_min * pw * np) *
            tech.sramEnergyPerBit(cfg.chiplet.al2Bytes);

    // A-L1 reads shrink as the per-core channel span widens, so the
    // widest reachable span floors them (integer division as in the
    // accounting).
    const double al1_w = core_act_min * nc * np;
    const int co_max =
        std::max(1, std::min<int>(cfg.core.lanes, cm_max.co));
    const double al1_r = static_cast<double>(macs * 8 / co_max);
    e.al1 = (al1_w + al1_r) * tech.sramEnergyPerBit(cfg.core.al1Bytes);

    // W-L1 reads: the trip-count product telescopes to at least one
    // pass over the chiplet macro's weights per chiplet
    // (coreTilesPerChiplet * cw * coreTile.co >= macro.co for every
    // ladder point), which is the compulsory floor.
    const double wl1_w = w_bits * ((!chan && np > 1) ? np : 1);
    const double wl1_r = static_cast<double>(st.macro.co) *
                         layer.ciPerGroup() * layer.kh * layer.kw *
                         8.0 * np;
    e.wl1 = (wl1_w + wl1_r) * tech.sramEnergyPerBit(cfg.core.wl1Bytes);

    const int p = std::min<int>(cfg.core.vectorSize, layer.ciPerGroup());
    e.ol1 = (ceilDiv(macs, p) * 24.0 + layer.outputVolume() * 24.0) *
            tech.rfEnergyPerBitRmw;
    // The SRAM fit is affine in the buffer size, so the cheaper of
    // the two extreme tile volumes floors the O-L2 energy per bit
    // whatever the slope's sign.
    e.ol2 = 2.0 * out_bits *
            std::min(tech.sramEnergyPerBit(std::max<int64_t>(
                         tile_min.volume(), 1024)),
                     tech.sramEnergyPerBit(std::max<int64_t>(
                         tile_max.volume(), 1024)));

    e.mac = static_cast<double>(macs) * tech.macEnergyPerOp;
    e.vector = static_cast<double>(layer.vectorOps()) *
               tech.vectorOpEnergyPerOp;
    const double energy = e.total();
    if (objective == Objective::MinEnergy)
        return energy;

    // Compute-cycle floor: the H/W trip-count products telescope to
    // macro extent over the chiplet planar split (the C trips are >=
    // 1), and the per-tile kernel factor is mapping-independent.
    double per_tile;
    if (layer.isDepthwise()) {
        per_tile = static_cast<double>(
            ceilDiv(static_cast<int64_t>(layer.kh) * layer.kw,
                    cfg.core.vectorSize));
    } else {
        per_tile = static_cast<double>(layer.kh) * layer.kw *
                   static_cast<double>(ceilDiv(layer.ciPerGroup(), p));
    }
    const double cycles_floor =
        (static_cast<double>(st.macro.ho) / st.chipSplit.fh) *
        (static_cast<double>(st.macro.wo) / st.chipSplit.fw) * per_tile;
    return energy * cycleFloor(cfg, tech, cycles_floor,
                               dram_act + w_bits + out_bits, d2d);
}

double
refinedScoreLowerBound(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech,
                       const Mapping &mapping, Objective objective,
                       const AnalysisOptions &options)
{
    // Exact fills and counts from the real accounting, so the energy
    // term equals the evaluation's bit-for-bit; only the cycle term
    // stays a floor (see the header).  The estimator's cycles are
    // tiles * max(phases) + fill >= each phase total, so the un-ceiled
    // per-port traffic quotients below can never exceed them.
    const AccessAnalysis a =
        analyzeMappingUnchecked(layer, cfg, mapping, options);
    const double energy = computeEnergy(a.counts, cfg, tech).total();
    if (objective == Objective::MinEnergy)
        return energy;
    return energy *
           cycleFloor(
               cfg, tech,
               static_cast<double>(computeCycles(layer, cfg, a.shapes)),
               static_cast<double>(a.counts.dramBits()),
               static_cast<double>(a.counts.d2dBits));
}

} // namespace nnbaton
