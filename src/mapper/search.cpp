#include "mapper/search.hpp"

#include <limits>
#include <memory>
#include <vector>

#include "c3p/incremental.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"
#include "mapper/bnb.hpp"
#include "mapper/bound.hpp"
#include "mapper/cache.hpp"
#include "verif/fault.hpp"

namespace nnbaton {

const char *
toString(SearchMode mode)
{
    switch (mode) {
      case SearchMode::Exhaustive:
        return "exhaustive";
      case SearchMode::Bnb:
        return "bnb";
      case SearchMode::Anneal:
        return "anneal";
    }
    panic("bad SearchMode");
}

MappingChoice
evaluateMapping(const ConvLayer &layer, const AcceleratorConfig &cfg,
                const TechnologyModel &tech, const Mapping &mapping,
                const AnalysisOptions &options)
{
    MappingChoice choice;
    choice.mapping = mapping;
    choice.analysis = analyzeMapping(layer, cfg, mapping, options);
    choice.energy = computeEnergy(choice.analysis.counts, cfg, tech);
    choice.runtime = estimateRuntime(layer, cfg, choice.analysis, tech);
    return choice;
}

MappingChoice
evaluateMappingIncremental(const ConvLayer &layer,
                           const AcceleratorConfig &cfg,
                           const TechnologyModel &tech,
                           const Mapping &mapping,
                           IncrementalAnalyzer &state)
{
    MappingChoice choice;
    evaluateMappingIncrementalInto(layer, cfg, tech, mapping, state,
                                   choice);
    return choice;
}

void
evaluateMappingIncrementalInto(const ConvLayer &layer,
                               const AcceleratorConfig &cfg,
                               const TechnologyModel &tech,
                               const Mapping &mapping,
                               IncrementalAnalyzer &state,
                               MappingChoice &out)
{
    out.mapping = mapping;
    state.analyzeInto(mapping, out.analysis);
    out.energy = computeEnergy(out.analysis.counts, cfg, tech);
    out.runtime = estimateRuntime(layer, cfg, out.analysis, tech);
}

namespace {

/**
 * Candidates are consumed in fixed blocks: pruning decisions use the
 * incumbent frozen at the block boundary, so they depend only on the
 * candidate order — never on the thread count or timing — and the
 * parallel search is bit-identical to the serial one (counters
 * included).  The block size trades pruning strength (incumbent
 * refreshes) against parallel width; it must stay a constant.
 */
constexpr size_t kPruneBlock = 32;

/** Relative slack before a bound may prune, absorbing the rounding
 *  difference between the bound's and the accounting's float paths
 *  when a floor is exactly tight. */
constexpr double kPruneMargin = 1.0 + 1e-9;

double
scoreOf(const MappingChoice &c, Objective objective)
{
    return objective == Objective::MinEnergy ? c.energy.total()
                                             : c.edp();
}

std::optional<MappingChoice>
pickBest(const ConvLayer &layer, const AcceleratorConfig &cfg,
         const TechnologyModel &tech, const CandidateBlock &candidates,
         Objective objective, const SearchOptions &search,
         ThreadPool *pool, SearchStats *stats)
{
    NNBATON_TRACE_SCOPE("mapper.pick_best");

    SearchStats local;
    SearchStats &st = stats ? *stats : local;
    const bool prune = search.boundPruning;
    int64_t evaluated_here = 0;
    int64_t pruned_here = 0;

    std::optional<MappingChoice> best;
    double best_score = std::numeric_limits<double>::max();

    // The serial lane walks the block in ascending-ordinal order — an
    // enumeration-neighbour stream — so it evaluates through the
    // delta-aware incremental analyzer.  The parallel lanes hand out
    // indices nondeterministically and keep the full evaluation
    // (results are bit-identical either way, so the serial/parallel
    // determinism contract is unaffected).
    std::optional<IncrementalAnalyzer> inc;
    if (!pool)
        inc.emplace(layer, cfg);

    const size_t n = candidates.size();
    std::vector<MappingChoice> slots(std::min(n, kPruneBlock));
    std::vector<size_t> survivors;
    survivors.reserve(kPruneBlock);

    for (size_t base = 0; base < n; base += kPruneBlock) {
        // Cancellation granularity: one poll per prune block, so a
        // fired deadline stops even a single huge layer search within
        // ~kPruneBlock evaluations.  Unwinding here is safe: the
        // compute-once cache does not latch an entry whose factory
        // throws, so a later (post-resume) search recomputes it.
        if (search.cancel && search.cancel->cancelled())
            throwStatus(search.cancel->toStatus());
        if (verif::faultPlanArmed())
            verif::injectSearchBlockFault();

        const size_t count = std::min(kPruneBlock, n - base);

        // Pruning pass against the block-boundary incumbent.
        {
            NNBATON_TRACE_SCOPE("mapper.bound_prune");
            survivors.clear();
            for (size_t i = 0; i < count; ++i) {
                if (prune && best &&
                    scoreLowerBound(layer, cfg, tech,
                                    candidates.mapping(base + i),
                                    objective) >=
                        best_score * kPruneMargin) {
                    ++pruned_here;
                    continue;
                }
                survivors.push_back(i);
            }
        }

        // Full evaluation of the survivors, parallel when a pool is
        // available (indices write disjoint slots; no ordering).
        {
            NNBATON_TRACE_SCOPE("mapper.c3p_analysis");
            if (pool) {
                pool->parallelFor(
                    static_cast<int64_t>(survivors.size()),
                    [&](int64_t j) {
                        const size_t i =
                            survivors[static_cast<size_t>(j)];
                        slots[i] = evaluateMapping(
                            layer, cfg, tech,
                            candidates.mapping(base + i));
                    });
            } else {
                for (const size_t i : survivors) {
                    evaluateMappingIncrementalInto(
                        layer, cfg, tech, candidates.mapping(base + i),
                        *inc, slots[i]);
                }
            }
        }
        evaluated_here += static_cast<int64_t>(survivors.size());

        // Deterministic reduction in candidate order; strict '<'
        // keeps the earliest candidate on score ties, matching the
        // serial search.
        for (const size_t i : survivors) {
            const double score = scoreOf(slots[i], objective);
            if (!best || score < best_score) {
                best = std::move(slots[i]);
                best_score = score;
            }
        }
    }

    st.evaluated += evaluated_here;
    st.pruned += pruned_here;

    // Mirror the SearchStats work counters into the metrics registry
    // (totals stay equal by construction) and keep a histogram of how
    // many candidates the bound killed per search — the pruning
    // effectiveness distribution.
    static obs::Counter &m_evaluated =
        obs::MetricsRegistry::instance().counter(
            "mapper.candidates.evaluated");
    static obs::Counter &m_pruned =
        obs::MetricsRegistry::instance().counter(
            "mapper.candidates.pruned");
    static obs::Histogram &m_prune_hist =
        obs::MetricsRegistry::instance().histogram(
            "mapper.prune.pruned_per_search");
    m_evaluated.add(evaluated_here);
    m_pruned.add(pruned_here);
    if (prune)
        m_prune_hist.record(pruned_here);
    if (inc)
        mirrorIncrementalMetrics(inc->stats());

    return best;
}

/**
 * Strategy dispatch for one layer search.  @p warm_hint (Bnb only) is
 * a cached winner from a sibling configuration, or null.
 */
std::optional<MappingChoice>
runLayerSearch(const ConvLayer &layer, const AcceleratorConfig &cfg,
               const TechnologyModel &tech, SearchEffort effort,
               Objective objective, const SearchOptions &search,
               ThreadPool *pool, SearchStats *stats,
               const Mapping *warm_hint)
{
    switch (search.mode) {
      case SearchMode::Exhaustive: {
        CandidateBlock candidates;
        {
            NNBATON_TRACE_SCOPE("mapper.candidates");
            enumerateCandidatesInto(layer, cfg, effort, candidates);
        }
        return pickBest(layer, cfg, tech, candidates, objective,
                        search, pool, stats);
      }
      case SearchMode::Bnb: {
        const CandidateSpace space(layer, cfg, effort);
        return searchBranchAndBound(layer, cfg, tech, space, objective,
                                    search, pool, stats, warm_hint);
      }
      case SearchMode::Anneal: {
        const CandidateSpace space(layer, cfg, effort);
        return searchAnneal(layer, cfg, tech, space, objective, search,
                            stats);
      }
    }
    panic("bad SearchMode");
}

} // namespace

std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech, SearchEffort effort,
            Objective objective)
{
    return searchLayer(layer, cfg, tech, effort, objective,
                       SearchOptions{});
}

std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech, SearchEffort effort,
            Objective objective, const SearchOptions &search,
            SearchStats *stats)
{
    std::unique_ptr<ThreadPool> pool;
    if (search.threads > 1 && !ThreadPool::inParallelRegion())
        pool = std::make_unique<ThreadPool>(search.threads);
    return runLayerSearch(layer, cfg, tech, effort, objective, search,
                          pool.get(), stats, /*warm_hint=*/nullptr);
}

std::optional<MappingChoice>
searchLayerWithSpatial(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech, PackagePartition pkg,
                       ChipletPartition chip, SearchEffort effort,
                       Objective objective)
{
    CandidateBlock candidates;
    enumerateCandidatesInto(CandidateSpace(layer, cfg, effort, pkg, chip),
                            candidates);
    return pickBest(layer, cfg, tech, candidates, objective,
                    SearchOptions{}, /*pool=*/nullptr,
                    /*stats=*/nullptr);
}

ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech, SearchEffort effort,
         Objective objective)
{
    return mapModel(model, cfg, tech, effort, objective,
                    SearchOptions{});
}

ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech, SearchEffort effort,
         Objective objective, const SearchOptions &search,
         MappingCache *cache)
{
    NNBATON_TRACE_SCOPE("mapper.map_model");

    ModelMappingResult result;
    result.cost.modelName = model.name();

    // Layers with identical shapes (repeated residual blocks) share
    // one search result.  Without an external cache, a private one
    // scopes the memoization to this call, as before.
    MappingCache private_cache;
    MappingCache &shared = cache ? *cache : private_cache;

    std::unique_ptr<ThreadPool> pool;
    if (search.threads > 1 && !ThreadPool::inParallelRegion())
        pool = std::make_unique<ThreadPool>(search.threads);

    static obs::Histogram &m_layer_us =
        obs::MetricsRegistry::instance().histogram(
            "mapper.layer_search_us");

    for (const ConvLayer &layer : model.layers()) {
        if (search.cancel && search.cancel->cancelled())
            throwStatus(search.cancel->toStatus());
        const MappingCache::Key key =
            MappingCache::makeKey(layer, cfg, tech, effort, objective,
                                  search.mode, search.annealSeed);
        const uint64_t t0 =
            search.detailedMetrics ? obs::traceNowNs() : 0;
        bool hit = false;
        const std::optional<MappingChoice> choice =
            shared.lookupOrCompute(
                key,
                [&] {
                    // Warm start (opt-in): seed the B&B incumbent from
                    // a published sibling-config winner for this layer
                    // shape.  Hint only — the winner never changes.
                    std::optional<Mapping> hint;
                    if (search.warmStart &&
                        search.mode == SearchMode::Bnb)
                        hint = shared.findShapeMatch(key);
                    return runLayerSearch(layer, cfg, tech, effort,
                                          objective, search, pool.get(),
                                          &result.stats,
                                          hint ? &*hint : nullptr);
                },
                &hit);
        ++(hit ? result.stats.cacheHits : result.stats.cacheMisses);
        if (search.detailedMetrics) {
            m_layer_us.record(static_cast<int64_t>(
                (obs::traceNowNs() - t0) / 1000));
        }

        if (!choice) {
            // The caller decides whether infeasibility is worth
            // reporting (the DSE sweeps hit this by design).
            result.feasible = false;
            continue;
        }
        LayerCost lc;
        lc.layerName = layer.name;
        lc.energy = choice->energy;
        lc.cycles = choice->runtime.cycles;
        lc.utilization = choice->runtime.utilization;
        result.cost.add(std::move(lc));
        result.choices.push_back(*choice);
    }
    return result;
}

} // namespace nnbaton
