#include "mapper/search.hpp"

#include <map>
#include <tuple>

#include "common/logging.hpp"

namespace nnbaton {

MappingChoice
evaluateMapping(const ConvLayer &layer, const AcceleratorConfig &cfg,
                const TechnologyModel &tech, const Mapping &mapping,
                const AnalysisOptions &options)
{
    MappingChoice choice;
    choice.mapping = mapping;
    choice.analysis = analyzeMapping(layer, cfg, mapping, options);
    choice.energy = computeEnergy(choice.analysis.counts, cfg, tech);
    choice.runtime = estimateRuntime(layer, cfg, choice.analysis, tech);
    return choice;
}

namespace {

std::optional<MappingChoice>
pickBest(const ConvLayer &layer, const AcceleratorConfig &cfg,
         const TechnologyModel &tech,
         const std::vector<Mapping> &candidates, Objective objective)
{
    std::optional<MappingChoice> best;
    for (const Mapping &m : candidates) {
        MappingChoice c = evaluateMapping(layer, cfg, tech, m);
        const double score = objective == Objective::MinEnergy
                                 ? c.energy.total()
                                 : c.edp();
        if (!best) {
            best = std::move(c);
            continue;
        }
        const double best_score = objective == Objective::MinEnergy
                                      ? best->energy.total()
                                      : best->edp();
        if (score < best_score)
            best = std::move(c);
    }
    return best;
}

} // namespace

std::optional<MappingChoice>
searchLayer(const ConvLayer &layer, const AcceleratorConfig &cfg,
            const TechnologyModel &tech, SearchEffort effort,
            Objective objective)
{
    return pickBest(layer, cfg, tech,
                    enumerateCandidates(layer, cfg, effort), objective);
}

std::optional<MappingChoice>
searchLayerWithSpatial(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech, PackagePartition pkg,
                       ChipletPartition chip, SearchEffort effort,
                       Objective objective)
{
    return pickBest(
        layer, cfg, tech,
        enumerateCandidatesFor(layer, cfg, effort, pkg, chip), objective);
}

ModelMappingResult
mapModel(const Model &model, const AcceleratorConfig &cfg,
         const TechnologyModel &tech, SearchEffort effort,
         Objective objective)
{
    ModelMappingResult result;
    result.cost.modelName = model.name();

    // Layers with identical shapes (repeated residual blocks) share
    // one search result.
    using ShapeKey = std::tuple<int, int, int, int, int, int, int>;
    std::map<ShapeKey, std::optional<MappingChoice>> cache;

    for (const ConvLayer &layer : model.layers()) {
        const ShapeKey key{layer.ho, layer.wo, layer.co, layer.ci,
                           layer.kh, layer.kw, layer.stride};
        auto it = cache.find(key);
        if (it == cache.end()) {
            it = cache.emplace(key, searchLayer(layer, cfg, tech, effort,
                                                objective))
                     .first;
        }
        if (!it->second) {
            // The caller decides whether infeasibility is worth
            // reporting (the DSE sweeps hit this by design).
            result.feasible = false;
            continue;
        }
        const MappingChoice &choice = *it->second;
        LayerCost lc;
        lc.layerName = layer.name;
        lc.energy = choice.energy;
        lc.cycles = choice.runtime.cycles;
        lc.utilization = choice.runtime.utilization;
        result.cost.add(std::move(lc));
        result.choices.push_back(choice);
    }
    return result;
}

} // namespace nnbaton
