/**
 * @file
 * Cheap score lower bounds for the mapping search (score-bound
 * pruning).
 *
 * Evaluating one candidate runs the full C3P accounting — legality
 * check, loop-nest lowering and three buffer analyses — before the
 * energy and runtime models.  The bound below costs only
 * deriveShapes() plus closed-form arithmetic, yet is a provable lower
 * bound on the exact score, so pickBest() can skip any candidate
 * whose bound cannot beat the incumbent without changing the search
 * result.
 *
 * The bound combines
 *  - exact terms that the accounting computes in closed form anyway
 *    (MAC ops, O-L1 read-modify-writes and drains, O-L2 traffic,
 *    W-L1 PE-side reads, A-L1 PE-side reads, DRAM output writes), and
 *  - compulsory-traffic floors for everything that depends on the
 *    buffer analyses: every distinct element a level consumes must be
 *    filled at least once (cold misses), so tensor volumes — times
 *    the spatial replication factors the mapping fixes (chiplets
 *    needing the full input under a C-type package split, channel-way
 *    cores each ingesting their planar stream, ring rotation hops) —
 *    floor the fill counts.
 *
 * Under-estimation is safe (weaker pruning); over-estimation would
 * change search results, so every term here must stay a true floor
 * of src/c3p/access.cpp's accounting.  tests/test_fuzz.cpp asserts
 * bound <= exact score across randomized layers, configurations and
 * whole candidate sets.
 */

#ifndef NNBATON_MAPPER_BOUND_HPP
#define NNBATON_MAPPER_BOUND_HPP

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "dataflow/mapping.hpp"
#include "mapper/search.hpp"
#include "nn/layer.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/**
 * Lower bound on the total energy (pJ) of evaluating @p mapping for
 * @p layer on @p cfg under @p options.  The mapping must be legal
 * (checkMapping() empty), as guaranteed for enumerated candidates.
 */
double energyLowerBound(const ConvLayer &layer,
                        const AcceleratorConfig &cfg,
                        const TechnologyModel &tech,
                        const Mapping &mapping,
                        const AnalysisOptions &options = {});

/**
 * Lower bound on the pickBest() score of @p mapping: total energy for
 * Objective::MinEnergy, energy times the compute-cycle floor for
 * Objective::MinEdp.
 */
double scoreLowerBound(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech,
                       const Mapping &mapping, Objective objective,
                       const AnalysisOptions &options = {});

} // namespace nnbaton

#endif // NNBATON_MAPPER_BOUND_HPP
