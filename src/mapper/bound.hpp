/**
 * @file
 * Cheap score lower bounds for the mapping search (score-bound
 * pruning).
 *
 * Evaluating one candidate runs the full C3P accounting — legality
 * check, loop-nest lowering and three buffer analyses — before the
 * energy and runtime models.  The bound below costs only
 * deriveShapes() plus closed-form arithmetic, yet is a provable lower
 * bound on the exact score, so pickBest() can skip any candidate
 * whose bound cannot beat the incumbent without changing the search
 * result.
 *
 * The bound combines
 *  - exact terms that the accounting computes in closed form anyway
 *    (MAC ops, O-L1 read-modify-writes and drains, O-L2 traffic,
 *    W-L1 PE-side reads, A-L1 PE-side reads, DRAM output writes), and
 *  - compulsory-traffic floors for everything that depends on the
 *    buffer analyses: every distinct element a level consumes must be
 *    filled at least once (cold misses), so tensor volumes — times
 *    the spatial replication factors the mapping fixes (chiplets
 *    needing the full input under a C-type package split, channel-way
 *    cores each ingesting their planar stream, ring rotation hops) —
 *    floor the fill counts.
 *
 * Under-estimation is safe (weaker pruning); over-estimation would
 * change search results, so every term here must stay a true floor
 * of src/c3p/access.cpp's accounting.  tests/test_fuzz.cpp asserts
 * bound <= exact score across randomized layers, configurations and
 * whole candidate sets.
 */

#ifndef NNBATON_MAPPER_BOUND_HPP
#define NNBATON_MAPPER_BOUND_HPP

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "dataflow/mapping.hpp"
#include "mapper/candidates.hpp"
#include "mapper/search.hpp"
#include "nn/layer.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/**
 * Lower bound on the total energy (pJ) of evaluating @p mapping for
 * @p layer on @p cfg under @p options.  The mapping must be legal
 * (checkMapping() empty), as guaranteed for enumerated candidates.
 */
double energyLowerBound(const ConvLayer &layer,
                        const AcceleratorConfig &cfg,
                        const TechnologyModel &tech,
                        const Mapping &mapping,
                        const AnalysisOptions &options = {});

/**
 * Lower bound on the pickBest() score of @p mapping: total energy for
 * Objective::MinEnergy, energy times the compute-cycle floor for
 * Objective::MinEdp.
 */
double scoreLowerBound(const ConvLayer &layer,
                       const AcceleratorConfig &cfg,
                       const TechnologyModel &tech,
                       const Mapping &mapping, Objective objective,
                       const AnalysisOptions &options = {});

/**
 * Lower bound on the score of *every* leaf of @p subtree — the
 * branch-level floor the branch-and-bound search prunes whole
 * subtrees with before materialising a single candidate.
 *
 * A subtree fixes the spatial skeleton and the core-tile plane, so
 * the per-chiplet macro workload (and with it the DRAM, ring and MAC
 * terms) is already exact, while the chiplet-tile ladder is still
 * free.  Each ladder-dependent term is replaced by its minimum over
 * the ladder range: activation fills at the largest reachable tile
 * (cold-miss floors shrink as tiles grow), the O-L2 energy-per-bit at
 * the smallest reachable tile (the SRAM fit grows with size), the
 * A-L1 PE-side reads at the widest reachable per-core channel span,
 * and the W-L1 reads at the compulsory one-pass floor.  Every term is
 * <= the corresponding term of scoreLowerBound() for every leaf, so
 * subtreeScoreLowerBound <= min over the subtree's leaves of the
 * exact score (tests/test_fuzz.cpp asserts exactly this).
 */
double subtreeScoreLowerBound(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech,
                              const CandidateSpace::Subtree &subtree,
                              Objective objective,
                              const AnalysisOptions &options = {});

/**
 * Tier-2 ("refined") score lower bound: runs the real reuse analyses
 * (analyzeMappingUnchecked — exact fill counts for all three buffers,
 * hence the exact energy), but keeps the runtime floored: the cycle
 * term is max(compute cycles, DRAM traffic / package PHY width, ring
 * traffic / link width) with none of the estimator's per-tile ceils
 * or its pipeline-fill cycle, so the result stays strictly a lower
 * bound of the exact score.
 *
 * This costs roughly two thirds of a full evaluation (it skips the
 * legality check, the energy/runtime report construction and the
 * utilisation model), so the branch-and-bound search only computes it
 * for candidates that already survived the closed-form tier-1 bound,
 * where it prunes the large class of reload-heavy candidates whose
 * traffic the compulsory-miss floors cannot see.  @p mapping must be
 * legal (checkMapping() empty), as enumerated candidates are.
 */
double refinedScoreLowerBound(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const TechnologyModel &tech,
                              const Mapping &mapping,
                              Objective objective,
                              const AnalysisOptions &options = {});

} // namespace nnbaton

#endif // NNBATON_MAPPER_BOUND_HPP
