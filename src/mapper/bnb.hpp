/**
 * @file
 * The guided strategies over the lazy candidate tree: best-bound-first
 * branch and bound (bit-identical to exhaustive search) and seeded
 * simulated annealing (approximate, opt-in).  See docs/search.md for
 * the tree structure and the bound-safety argument.
 */

#ifndef NNBATON_MAPPER_BNB_HPP
#define NNBATON_MAPPER_BNB_HPP

#include <optional>

#include "mapper/candidates.hpp"
#include "mapper/search.hpp"

namespace nnbaton {

class ThreadPool; // common/parallel.hpp

/**
 * Best-bound-first branch and bound over @p space.
 *
 * Returns exactly the mapping the flat exhaustive search selects —
 * same winner, bit-identical evaluation — while opening subtrees
 * lazily and pruning whole branches whose subtree bound cannot beat
 * the incumbent.  Deterministic at any thread count: nodes are popped
 * in (bound, ordinal) order, evaluation happens in fixed-size blocks,
 * and score ties break on the smallest enumeration ordinal (the flat
 * search's first-wins rule).
 *
 * @p warm_hint, when non-null, is located in this space's own grid
 * and evaluated first as the starting incumbent (counted in
 * SearchStats::warmStarts); a hint that is not a grid leaf here is
 * ignored, so the returned winner never changes.
 */
std::optional<MappingChoice>
searchBranchAndBound(const ConvLayer &layer,
                     const AcceleratorConfig &cfg,
                     const TechnologyModel &tech,
                     const CandidateSpace &space, Objective objective,
                     const SearchOptions &search, ThreadPool *pool,
                     SearchStats *stats,
                     const Mapping *warm_hint = nullptr);

/**
 * Seeded simulated annealing over @p space: random single-coordinate
 * moves on the candidate grid (subtree, ladder rungs, order pair)
 * with geometric cooling.  The RNG is seeded from
 * SearchOptions::annealSeed mixed with the layer/config fingerprint,
 * so equal seeds reproduce equal results.  Always returns a legal
 * mapping when one exists, but not necessarily the optimum.
 */
std::optional<MappingChoice>
searchAnneal(const ConvLayer &layer, const AcceleratorConfig &cfg,
             const TechnologyModel &tech, const CandidateSpace &space,
             Objective objective, const SearchOptions &search,
             SearchStats *stats);

} // namespace nnbaton

#endif // NNBATON_MAPPER_BNB_HPP
