/**
 * @file
 * Chiplet area model (paper section V-A): SRAM + RF + MAC units +
 * off-chip PHYs; controller and other IP are ignored as in the paper.
 */

#ifndef NNBATON_ARCH_AREA_HPP
#define NNBATON_ARCH_AREA_HPP

#include "arch/config.hpp"
#include "tech/technology.hpp"

namespace nnbaton {

/** Per-component chiplet area breakdown in mm^2. */
struct AreaBreakdown
{
    double macs = 0.0;   //!< MAC array
    double sram = 0.0;   //!< A-L1 + W-L1 + A-L2 + O-L2 SRAM macros
    double rf = 0.0;     //!< O-L1 accumulation registers
    double grsPhy = 0.0; //!< D2D (GRS) PHY
    double ddrPhy = 0.0; //!< off-chip DDR PHY

    double total() const { return macs + sram + rf + grsPhy + ddrPhy; }

    std::string toString() const;
};

/**
 * Area of one chiplet of @p cfg under @p tech.
 *
 * @param ol2_bytes size of the derived O-L2 collector buffer; the DSE
 *        sizes it to the largest single-chiplet-workload output a
 *        configuration can be asked to hold.
 */
AreaBreakdown chipletArea(const AcceleratorConfig &cfg,
                          const TechnologyModel &tech, int64_t ol2_bytes);

/**
 * A practical default O-L2 size: one full core-tile output per core
 * at 8 bits, scaled by 4x planar headroom.  Used when the exact
 * workload is unknown (pre-design sweeps).
 */
int64_t defaultOl2Bytes(const AcceleratorConfig &cfg);

} // namespace nnbaton

#endif // NNBATON_ARCH_AREA_HPP
