/**
 * @file
 * The universal three-level multichip hardware model (paper section
 * III, figure 2): package -> chiplet -> core, with the per-level
 * memory components.
 *
 * - core: L lanes of P-size vector MAC (weight stationary), A-L1 and
 *   W-L1 double-buffered SRAMs, O-L1 accumulation registers.
 * - chiplet: N_C cores, shared activation buffer A-L2, output collector
 *   O-L2, central bus with multicast, GRS D2D interface, DDR PHY.
 * - package: N_P chiplets on a directional ring NoP, N_P DRAMs behind
 *   a crossbar.
 */

#ifndef NNBATON_ARCH_CONFIG_HPP
#define NNBATON_ARCH_CONFIG_HPP

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace nnbaton {

/** Per-core compute and memory resources. */
struct CoreConfig
{
    int lanes = 8;        //!< L: output-channel parallelism
    int vectorSize = 8;   //!< P: input-channel parallelism per lane
    int64_t al1Bytes = 800;       //!< A-L1 activation buffer
    int64_t wl1Bytes = 18 * 1024; //!< W-L1 weight buffer
    int64_t ol1Bytes = 1536;      //!< O-L1 accumulation registers

    /** MAC units in the core (L x P). */
    int64_t macs() const
    {
        return static_cast<int64_t>(lanes) * vectorSize;
    }

    /**
     * Maximum output-tile plane (HOc x WOc) the O-L1 registers can
     * accumulate at @p psum_bits precision for all L lanes.
     */
    int64_t maxCoreTilePlane(int psum_bits) const
    {
        return ol1Bytes * 8 / (static_cast<int64_t>(psum_bits) * lanes);
    }
};

/** Per-chiplet resources. */
struct ChipletConfig
{
    int cores = 8;                 //!< N_C cores on the central bus
    int64_t al2Bytes = 64 * 1024;  //!< shared activation buffer A-L2
    // The O-L2 size is derived: it matches the output volume of one
    // chiplet workload (paper section V-C), so it is not a free knob.
};

/** Package-level resources. */
struct PackageConfig
{
    int chiplets = 4; //!< N_P chiplets on the directional ring NoP
    // One DRAM per chiplet behind a crossbar, as in the paper.
};

/** The complete accelerator configuration. */
struct AcceleratorConfig
{
    PackageConfig package;
    ChipletConfig chiplet;
    CoreConfig core;

    /** Total MAC units in the system. */
    int64_t totalMacs() const
    {
        return static_cast<int64_t>(package.chiplets) * chiplet.cores *
               core.macs();
    }

    /** MAC units per chiplet. */
    int64_t macsPerChiplet() const
    {
        return static_cast<int64_t>(chiplet.cores) * core.macs();
    }

    /** Check resource counts; errInvalidArgument describing the first
     *  violation, OK otherwise. */
    Status check() const;

    /** check(), but throwing the error as a StatusError. */
    void validate() const;

    /** Compact id, e.g. "4-8-8-8" = (chiplets, cores, lanes, vector). */
    std::string computeId() const;

    /** Full description including buffer sizes. */
    std::string toString() const;
};

/**
 * The hardware configuration used throughout the case studies of
 * section VI-A: 4 chiplets, 8 cores, 8 lanes of 8-size vector MAC,
 * 1.5 KB O-L1, 800 B A-L1, 18 KB W-L1 and 64 KB A-L2.
 */
AcceleratorConfig caseStudyConfig();

} // namespace nnbaton

#endif // NNBATON_ARCH_CONFIG_HPP
