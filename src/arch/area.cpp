#include "arch/area.hpp"

#include "common/logging.hpp"

namespace nnbaton {

std::string
AreaBreakdown::toString() const
{
    return strprintf(
        "total %.3f mm^2 (mac %.3f, sram %.3f, rf %.3f, grs %.3f, "
        "ddr %.3f)",
        total(), macs, sram, rf, grsPhy, ddrPhy);
}

AreaBreakdown
chipletArea(const AcceleratorConfig &cfg, const TechnologyModel &tech,
            int64_t ol2_bytes)
{
    AreaBreakdown a;
    a.macs = tech.macAreaMm2(cfg.macsPerChiplet());

    // A-L1 and W-L1 are double-buffered SRAMs (two macros each).
    const int nc = cfg.chiplet.cores;
    a.sram += nc * 2 * tech.sramAreaMm2(cfg.core.al1Bytes);
    a.sram += nc * 2 * tech.sramAreaMm2(cfg.core.wl1Bytes);
    a.sram += tech.sramAreaMm2(cfg.chiplet.al2Bytes);
    a.sram += tech.sramAreaMm2(ol2_bytes);

    a.rf = nc * tech.rfAreaMm2(cfg.core.ol1Bytes);

    a.grsPhy = tech.grsPhyAreaMm2;
    a.ddrPhy = tech.ddrPhyAreaMm2;
    return a;
}

int64_t
defaultOl2Bytes(const AcceleratorConfig &cfg)
{
    // One 8-bit core-tile output per core with 4x planar headroom.
    const int64_t tile = cfg.core.maxCoreTilePlane(24) * cfg.core.lanes;
    return 4 * tile * cfg.chiplet.cores;
}

} // namespace nnbaton
