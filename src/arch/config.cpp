#include "arch/config.hpp"

#include "common/logging.hpp"
#include "common/status.hpp"

namespace nnbaton {

Status
AcceleratorConfig::check() const
{
    if (package.chiplets < 1 || package.chiplets > 8) {
        return errInvalidArgument(
            "chiplet count %d outside the 1-8 ring-NoP range",
            package.chiplets);
    }
    if (chiplet.cores < 1) {
        return errInvalidArgument("core count %d must be positive",
                                  chiplet.cores);
    }
    if (core.lanes < 1 || core.vectorSize < 1) {
        return errInvalidArgument("core shape %dx%d must be positive",
                                  core.lanes, core.vectorSize);
    }
    if (core.al1Bytes <= 0 || core.wl1Bytes <= 0 || core.ol1Bytes <= 0 ||
        chiplet.al2Bytes <= 0) {
        return errInvalidArgument("all buffer sizes must be positive");
    }
    return Status::okStatus();
}

void
AcceleratorConfig::validate() const
{
    throwIfError(check());
}

std::string
AcceleratorConfig::computeId() const
{
    return strprintf("%d-%d-%d-%d", package.chiplets, chiplet.cores,
                     core.lanes, core.vectorSize);
}

std::string
AcceleratorConfig::toString() const
{
    return strprintf(
        "%s: %lld MACs | O-L1 %lldB A-L1 %lldB W-L1 %lldB A-L2 %lldB",
        computeId().c_str(), static_cast<long long>(totalMacs()),
        static_cast<long long>(core.ol1Bytes),
        static_cast<long long>(core.al1Bytes),
        static_cast<long long>(core.wl1Bytes),
        static_cast<long long>(chiplet.al2Bytes));
}

AcceleratorConfig
caseStudyConfig()
{
    AcceleratorConfig cfg;
    cfg.package.chiplets = 4;
    cfg.chiplet.cores = 8;
    cfg.core.lanes = 8;
    cfg.core.vectorSize = 8;
    cfg.core.ol1Bytes = 1536;
    cfg.core.al1Bytes = 800;
    cfg.core.wl1Bytes = 18 * 1024;
    cfg.chiplet.al2Bytes = 64 * 1024;
    cfg.validate();
    return cfg;
}

} // namespace nnbaton
