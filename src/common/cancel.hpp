/**
 * @file
 * Cooperative cancellation for long-running sweeps and searches.
 *
 * A CancelToken combines an explicit cancel flag (set by a SIGINT /
 * SIGTERM handler or programmatically) with an optional wall-clock
 * deadline.  Inner loops poll cancelled() — a relaxed atomic load
 * plus, when a deadline is armed, one steady_clock read — and unwind
 * with StatusCode::Cancelled / DeadlineExceeded.  The sweep engine
 * treats an unwound design point as "skipped", finishes the points
 * already in flight, flushes checkpoints/traces and returns a partial
 * result marked complete=false, so a Ctrl-C never discards completed
 * work.
 *
 * Tokens are passive: nothing is ever blocked on one, so a token may
 * be shared by any number of threads and polled at any granularity.
 */

#ifndef NNBATON_COMMON_CANCEL_HPP
#define NNBATON_COMMON_CANCEL_HPP

#include <atomic>
#include <cstdint>

#include "common/status.hpp"

namespace nnbaton {

class CancelToken
{
  public:
    /** Request cancellation (async-signal-safe: one atomic store). */
    void requestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /** Arm a wall-clock deadline @p seconds from now (<= 0 fires
     *  immediately); overwrites any earlier deadline. */
    void setDeadlineAfter(double seconds);

    /** Drop the flag and the deadline (tests reuse tokens). */
    void reset();

    /**
     * Chain this token under @p parent (borrowed; may be null to
     * unlink): cancelled() then also reports true once the parent
     * fires.  The serving daemon links every per-request deadline
     * token under its shutdown token so SIGTERM interrupts in-flight
     * evaluations too.  The parent must outlive this token.
     */
    void linkParent(const CancelToken *parent)
    {
        parent_.store(parent, std::memory_order_relaxed);
    }

    /** True once cancelled or past the deadline. */
    bool cancelled() const;

    /**
     * OK while running; errCancelled / errDeadlineExceeded once
     * cancelled().  The sweep engine converts the non-OK codes into
     * skipped (not poisoned) design points.
     */
    Status toStatus() const;

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<int64_t> deadlineNs_{0}; //!< steady_clock ns; 0 = none
    std::atomic<const CancelToken *> parent_{nullptr}; //!< borrowed
};

/**
 * The process-wide token the CLI wires into flows so one SIGINT stops
 * every running sweep.  Library code never consults it implicitly —
 * it only honours tokens passed in through options.
 */
CancelToken &globalCancelToken();

/**
 * Route SIGINT and SIGTERM to globalCancelToken().requestCancel().
 * Called by the CLI drivers; safe to call more than once.  A second
 * SIGINT after cancellation is requested falls back to the default
 * disposition, so a wedged run can still be killed.
 */
void installCancelSignalHandlers();

} // namespace nnbaton

#endif // NNBATON_COMMON_CANCEL_HPP
