/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * rows/series of the paper's tables and figures.
 */

#ifndef NNBATON_COMMON_TABLE_HPP
#define NNBATON_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace nnbaton {

/**
 * A simple column-aligned text table.  Cells are strings; numeric
 * convenience adders format with a fixed precision.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    TextTable &newRow();

    /** Append a string cell to the current row. */
    TextTable &add(const std::string &cell);

    /** Append an integer cell. */
    TextTable &add(int64_t value);

    /** Append a floating-point cell with @p precision decimals. */
    TextTable &add(double value, int precision = 3);

    /** Render the table, column-aligned, to @p os. */
    void print(std::ostream &os) const;

    /** Render the table as CSV to @p os. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nnbaton

#endif // NNBATON_COMMON_TABLE_HPP
