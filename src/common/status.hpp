/**
 * @file
 * Structured error propagation for the library.
 *
 * A Status carries an error code plus a human-readable message that
 * accumulates context as it crosses subsystem boundaries
 * (withContext() prepends "doing X: " the way errno wrappers do).
 * StatusOr<T> is the value-or-error return type for fallible
 * constructors and I/O.  StatusError wraps a Status into an exception
 * so deep call paths (mapping derivation inside a sweep worker,
 * config validation inside a zoo builder) can signal user errors
 * without every intermediate frame growing a Status return.
 *
 * Ownership of process exit: the library never calls exit()/abort().
 * Errors either return as Status/StatusOr or unwind as StatusError;
 * only the CLI drivers under tools/ translate them into exit codes.
 * The sweep engine additionally quarantines StatusError thrown by a
 * worker into a poisoned-point report instead of failing the run (see
 * dse/explorer.hpp).
 */

#ifndef NNBATON_COMMON_STATUS_HPP
#define NNBATON_COMMON_STATUS_HPP

#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace nnbaton {

/** Error codes, loosely following the absl/gRPC canonical set. */
enum class StatusCode
{
    Ok = 0,
    Cancelled,          //!< caller asked to stop (SIGINT, CancelToken)
    InvalidArgument,    //!< malformed input or configuration
    NotFound,           //!< named entity or file absent
    DeadlineExceeded,   //!< wall-clock budget expired
    FailedPrecondition, //!< valid input, wrong state (e.g. stale file)
    DataLoss,           //!< file present but unreadable / corrupt
    Internal,           //!< library invariant violation (a bug)
    Unavailable,        //!< transient environment failure (I/O)
};

/** Upper-case canonical name, e.g. "INVALID_ARGUMENT". */
const char *toString(StatusCode code);

/** An error code plus a context-chained message; default is OK. */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status okStatus() { return Status(); }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** A copy with "context: " prepended; OK stays OK. */
    Status withContext(const std::string &context) const;

    /** "INVALID_ARGUMENT: chiplet count 16 outside ..." (or "OK"). */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** printf-style constructors for the non-OK codes. */
Status errCancelled(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status errInvalidArgument(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status errNotFound(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status errDeadlineExceeded(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status errFailedPrecondition(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status errDataLoss(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status errInternal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status errUnavailable(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** A Status travelling as an exception. */
class StatusError : public std::exception
{
  public:
    explicit StatusError(Status status)
        : status_(std::move(status)), what_(status_.toString())
    {
    }

    const Status &status() const { return status_; }

    const char *what() const noexcept override { return what_.c_str(); }

  private:
    Status status_;
    std::string what_;
};

/** Throw @p status as a StatusError (always throws; @p status must
 *  not be OK — an OK status is upgraded to an Internal error). */
[[noreturn]] void throwStatus(Status status);

/** Throw a StatusError when @p status is not OK; no-op otherwise. */
inline void
throwIfError(const Status &status)
{
    if (!status.ok())
        throwStatus(status);
}

/**
 * Value-or-Status.  value() on an error throws the carried Status as
 * a StatusError, so call sites may either branch on ok() or let the
 * error unwind.
 */
template <typename T>
class StatusOr
{
  public:
    StatusOr(Status status) : status_(std::move(status)) {} // NOLINT
    StatusOr(T value) // NOLINT
        : value_(std::move(value))
    {
    }

    bool ok() const { return value_.has_value(); }

    /** The carried error (OK when a value is present). */
    const Status &status() const { return status_; }

    T &value() &
    {
        ensure();
        return *value_;
    }
    const T &value() const &
    {
        ensure();
        return *value_;
    }
    T &&value() &&
    {
        ensure();
        return std::move(*value_);
    }

    T *operator->()
    {
        ensure();
        return &*value_;
    }
    const T *operator->() const
    {
        ensure();
        return &*value_;
    }

  private:
    void ensure() const
    {
        if (!value_.has_value())
            throwStatus(status_);
    }

    Status status_;
    std::optional<T> value_;
};

} // namespace nnbaton

#endif // NNBATON_COMMON_STATUS_HPP
