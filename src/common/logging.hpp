/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * fatal() is for user errors (bad configuration, invalid arguments) and
 * exits with code 1; panic() is for internal invariant violations and
 * aborts.  inform()/warn() print status without stopping the program.
 *
 * All reporting functions are thread-safe: each message is formatted
 * into a single buffer and written with one stdio call, so output
 * from parallel sweep workers never interleaves mid-line.  Verbosity
 * is controlled by an atomic log level (setLogLevel / --log-level).
 */

#ifndef NNBATON_COMMON_LOGGING_HPP
#define NNBATON_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace nnbaton {

/** Message severities, in increasing order of importance. */
enum class LogLevel
{
    Debug = 0, //!< debugLog(): extra detail for developers
    Info = 1,  //!< inform(): normal progress (the default level)
    Warn = 2,  //!< warn(): suspicious but recoverable
    Quiet = 3, //!< only fatal()/panic() (which always print)
};

/** Set the minimum severity that gets printed (atomic, thread-safe). */
void setLogLevel(LogLevel level);

/** The current minimum printed severity. */
LogLevel logLevel();

/**
 * Parse "debug" / "info" / "warn" / "quiet" into a level.  Returns
 * false (leaving @p out untouched) for anything else.
 */
bool parseLogLevel(const std::string &name, LogLevel &out);

/** Print a debug message to stderr (prefixed "debug:"). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr (prefixed "info:"). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr (prefixed "warn:"). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user error (bad configuration or arguments) and exit(1).
 * Use for conditions that are the caller's fault, not a library bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 * Use for conditions that should never happen regardless of input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Enable/disable inform() output (benches silence it).  Kept as a
 * shim over setLogLevel: enabled maps to Info, disabled to Warn.
 */
void setInformEnabled(bool enabled);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace nnbaton

#endif // NNBATON_COMMON_LOGGING_HPP
