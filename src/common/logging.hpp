/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * fatal() is for user errors (bad configuration, invalid arguments) and
 * exits with code 1; panic() is for internal invariant violations and
 * aborts.  inform()/warn() print status without stopping the program.
 */

#ifndef NNBATON_COMMON_LOGGING_HPP
#define NNBATON_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace nnbaton {

/** Print an informational message to stderr (prefixed "info:"). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr (prefixed "warn:"). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user error (bad configuration or arguments) and exit(1).
 * Use for conditions that are the caller's fault, not a library bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 * Use for conditions that should never happen regardless of input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace nnbaton

#endif // NNBATON_COMMON_LOGGING_HPP
